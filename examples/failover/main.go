// Failover example: the gibraltar-suez ATM trunk fails while the panama
// nodes are loaded. Measurement-driven selection places the FFT inside the
// one healthy, idle component; a placement straddling the failed trunk
// stalls forever. A trace recorder captures the run's timeline.
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"nodeselect/internal/experiment"
	"nodeselect/internal/netsim"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/trace"
)

func main() {
	res, err := experiment.RunFailover(experiment.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatFailover(res))
	fmt.Println()

	// Replay a small slice of the scenario with tracing on, to show the
	// observability layer: the failure event and the first application
	// steps.
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	g := net.Graph()
	rec := trace.NewRecorder(g, nil, 24)
	net.SetObserver(rec.Observe)

	// One background transfer, the trunk failure, and a cross-trunk
	// application flow that stalls until repair.
	net.StartFlow(g.MustNode("m-7"), g.MustNode("m-13"), 12.5e6, netsim.Background, nil)
	e.After(0.4, "fail", func() {
		// Fail the gibraltar-suez trunk.
		for l := 0; l < g.NumLinks(); l++ {
			link := g.Link(l)
			names := g.Node(link.A).Name + g.Node(link.B).Name
			if strings.Contains(names, "gibraltar") && strings.Contains(names, "suez") {
				net.FailLink(l)
			}
		}
	})
	var appFlow = net.StartFlow(g.MustNode("m-8"), g.MustNode("m-14"), 25e6, netsim.Application, nil)
	e.After(5, "repair", func() {
		for l := 0; l < g.NumLinks(); l++ {
			if net.LinkFailed(l) {
				net.RepairLink(l)
			}
		}
	})
	e.RunUntil(10)
	_ = appFlow

	fmt.Println("trace of the replayed failure window:")
	if err := rec.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("summary:", rec.Summary())
}
