// Airshed example: reproduce the paper's Figure 4 situation end to end. A
// persistent traffic stream flows from m-16 to m-18; the Airshed pollution
// model must pick 5 nodes. Automatic selection routes around the congested
// suez subtree; a deliberately bad placement that overlaps the stream's
// path shows what it avoids.
//
//	go run ./examples/airshed
package main

import (
	"fmt"
	"log"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/experiment"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/trafficgen"
)

func main() {
	// First, the Figure 4 selection itself.
	fig4, err := experiment.RunFig4(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatFig4(fig4))
	fmt.Println()

	// Now run Airshed on both placements under the same stream.
	good := run(true)
	bad := run(false)
	fmt.Printf("Airshed on automatically selected nodes: %6.1f s\n", good)
	fmt.Printf("Airshed overlapping the stream's path:   %6.1f s\n", bad)
	fmt.Printf("avoidance speedup: %.2fx (unloaded reference 150 s)\n", bad/good)
}

// run executes Airshed with the m-16 -> m-18 stream active, placing it
// either with the balanced algorithm or on nodes that share the congested
// links.
func run(auto bool) float64 {
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	g := net.Graph()
	for i := 0; i < 6; i++ {
		trafficgen.NewStream(net, g.MustNode("m-16"), g.MustNode("m-18"), 64e6).Start()
	}
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{Period: 2, History: 15})
	col.Start(e)
	e.RunUntil(60)

	var nodes []int
	if auto {
		snap, err := col.Snapshot(remos.Window, false)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := core.Balanced(snap, core.Request{M: 5})
		if err != nil {
			log.Fatal(err)
		}
		nodes = sel.Nodes
		fmt.Printf("automatic placement: %s\n", strings.Join(sel.Names(g), ", "))
	} else {
		for _, name := range []string{"m-14", "m-15", "m-16", "m-17", "m-18"} {
			nodes = append(nodes, g.MustNode(name))
		}
		fmt.Println("bad placement:       m-14, m-15, m-16, m-17, m-18 (on the congested router)")
	}
	res, err := apps.Run(net, apps.DefaultAirshed(), nodes)
	if err != nil {
		log.Fatal(err)
	}
	return res.Elapsed()
}
