// MRI example: the paper's master-slave application with a group-aware
// specification. The application spec pins the master (server) group to
// specific machines — the paper's "a server may be compiled only for Alpha
// architecture or must run on some specific machines" — and lets the
// framework place the slaves, then demonstrates the self-scheduling
// protocol's tolerance to a loaded slave.
//
//	go run ./examples/mri
package main

import (
	"fmt"
	"log"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/appspec"
	"nodeselect/internal/core"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
)

func main() {
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	g := net.Graph()

	// Competing work sits on a few machines.
	for _, name := range []string{"m-2", "m-3", "m-9"} {
		for i := 0; i < 3; i++ {
			net.StartTask(g.MustNode(name), 1e9, netsim.Background, nil)
		}
	}
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{Period: 2, History: 15})
	col.Start(e)
	e.RunUntil(300)

	// The application specification: one master that must live on m-1 or
	// m-7 (where the image archive is mounted), three slaves anywhere on
	// an Alpha.
	spec := &appspec.Spec{
		Name:    "mri-epi",
		Pattern: appspec.MasterSlave,
		Groups: []appspec.Group{
			{Name: "master", Count: 1, Hosts: []string{"m-1", "m-7"}},
			{Name: "slaves", Count: 3, Arch: "alpha"},
		},
	}
	snap, err := col.Snapshot(remos.Window, false)
	if err != nil {
		log.Fatal(err)
	}
	place, err := appspec.SelectGroups(snap, spec, core.AlgoBalanced, nil)
	if err != nil {
		log.Fatal(err)
	}
	names := func(ids []int) string {
		out := make([]string, len(ids))
		for i, id := range ids {
			out[i] = g.Node(id).Name
		}
		return strings.Join(out, ", ")
	}
	fmt.Printf("master group: %s\n", names(place.ByGroup["master"]))
	fmt.Printf("slave group:  %s\n", names(place.ByGroup["slaves"]))

	// MRI treats the first node of the slice as the master.
	nodes := append(append([]int(nil), place.ByGroup["master"]...), place.ByGroup["slaves"]...)
	app := apps.DefaultMRI()
	res, err := apps.Run(net, app, nodes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MRI (%d tasks) completed in %.1f s (unloaded reference 540 s)\n",
		res.Steps, res.Elapsed())
	fmt.Println()
	fmt.Println("The loaded machines (m-2, m-3, m-9) were avoided; had one been a")
	fmt.Println("slave, self-scheduling would shift tasks to the faster slaves —")
	fmt.Println("the reason MRI degrades least in the paper's Table 1.")
}
