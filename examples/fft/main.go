// FFT example: run the paper's first benchmark — a 2D FFT, 32 iterations —
// on the simulated CMU testbed under processor load and network traffic,
// comparing random and automatic node selection. The real FFT kernel runs
// once on a small grid to show the computation the workload model stands
// in for.
//
//	go run ./examples/fft
package main

import (
	"fmt"
	"log"

	"nodeselect/internal/apps"
	"nodeselect/internal/experiment"
	"nodeselect/internal/fft"
)

func main() {
	// The numeric kernel the workload models: a 2D transform round-trip.
	m := fft.NewMatrix(64, 64)
	for i := range m.Data {
		m.Data[i] = complex(float64(i%17)/17, 0)
	}
	if err := fft.Forward2D(m); err != nil {
		log.Fatal(err)
	}
	if err := fft.Inverse2D(m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fft kernel: 64x64 round trip ok; a 1K iteration costs %.0f butterflies/node on 4 nodes\n\n",
		apps.DefaultFFT().ButterfliesPerNode())

	cfg := experiment.Default()
	cfg.Replications = 3

	fmt.Println("2D FFT (1K, 32 iterations) on the simulated CMU testbed, load+traffic on:")
	var randomSum, autoSum float64
	for rep := 0; rep < cfg.Replications; rep++ {
		r, rNodes, err := experiment.RunOnce(cfg, apps.DefaultFFT(), experiment.CondBoth, "random", rep)
		if err != nil {
			log.Fatal(err)
		}
		a, aNodes, err := experiment.RunOnce(cfg, apps.DefaultFFT(), experiment.CondBoth, "balanced", rep)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rep %d: random %6.1fs on %v | automatic %6.1fs on %v\n",
			rep, r, rNodes, a, aNodes)
		randomSum += r
		autoSum += a
	}
	nr := float64(cfg.Replications)
	fmt.Printf("\nmean: random %.1fs, automatic %.1fs (%.1f%% faster)\n",
		randomSum/nr, autoSum/nr, 100*(1-autoSum/randomSum))

	ref, _, err := experiment.RunOnce(cfg, apps.DefaultFFT(), experiment.CondNone, "balanced", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unloaded reference: %.1fs (paper: 48s)\n", ref)
}
