// Migration example: §3.3's dynamic migration. A long-running loosely
// synchronous job starts on the best available nodes; competing work then
// lands on exactly those machines. The migration advisor — consulting
// Remos snapshots that exclude the job's own load and traffic — recommends
// a move, the job ships its state, and finishes far sooner than one that
// stays put.
//
//	go run ./examples/migration
package main

import (
	"fmt"
	"log"

	"nodeselect/internal/experiment"
)

func main() {
	res, err := experiment.RunMigration(experiment.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiment.FormatMigration(res))
	fmt.Println()
	fmt.Println("The advisor scores the current placement against the best available")
	fmt.Println("one on background-only measurements (the job's own load must not")
	fmt.Println("count against it — §3.3), and moves only when the gain clears the")
	fmt.Println("policy threshold after subtracting the migration cost.")
}
