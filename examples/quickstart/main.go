// Quickstart: build a small network, describe its current conditions, and
// ask the paper's algorithms where to run a 2-node application.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"nodeselect/internal/core"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

func main() {
	// The example network of the paper's Figure 1: two switches, four
	// compute nodes.
	g := testbed.Figure1()

	// Describe the current conditions: node-3 is busy (load average 2,
	// so only 1/(1+2) = 33% of its CPU is available) and the link to
	// node-2 is 80% utilized.
	snap := topology.NewSnapshot(g)
	snap.SetLoadName("node-3", 2.0)
	snap.SetAvailBW(g.Route(g.MustNode("switch-1"), g.MustNode("node-2"))[0], 20e6)

	fmt.Println("network:", g)
	fmt.Println()

	// Ask each fundamental algorithm of §3.2 for two nodes.
	for _, algo := range []string{core.AlgoCompute, core.AlgoBandwidth, core.AlgoBalanced} {
		res, err := core.Select(algo, snap, core.Request{M: 2}, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s -> %v  (min cpu %.2f, pair bw %s, minresource %.2f)\n",
			algo, res.Names(g), res.MinCPU,
			topology.FormatBandwidth(res.PairMinBW), res.MinResource)
	}

	// Render the balanced choice as a Figure 1 style diagram.
	res, err := core.Balanced(snap, core.Request{M: 2})
	if err != nil {
		log.Fatal(err)
	}
	highlight := map[int]bool{}
	for _, id := range res.Nodes {
		highlight[id] = true
	}
	fmt.Println()
	if err := topology.WriteDOT(os.Stdout, g, topology.DOTOptions{
		Snapshot:  snap,
		Highlight: highlight,
		Name:      "quickstart",
	}); err != nil {
		log.Fatal(err)
	}
}
