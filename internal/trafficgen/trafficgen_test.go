package trafficgen

import (
	"math"
	"testing"

	"nodeselect/internal/netsim"
	"nodeselect/internal/randx"
	"nodeselect/internal/sim"
	"nodeselect/internal/topology"
)

func testNet(nodes int) (*sim.Engine, *netsim.Network) {
	g := topology.NewGraph()
	sw := g.AddNetworkNode("sw")
	for i := 0; i < nodes; i++ {
		id := g.AddComputeNode("m" + string(rune('a'+i)))
		g.Connect(sw, id, 100e6, topology.LinkOpts{})
	}
	e := sim.NewEngine()
	return e, netsim.New(e, g, netsim.Config{})
}

func TestMessageRate(t *testing.T) {
	e, n := testNet(4)
	g := New(n, Config{
		MessageRate: 2,
		Size:        randx.Constant{Value: 1000},
	}, randx.New(1))
	g.Start()
	const horizon = 2000.0
	e.RunUntil(horizon)
	g.Stop()
	want := 2 * horizon
	got := float64(g.MessagesStarted())
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("injected %v messages over %vs, want ~%v", got, horizon, want)
	}
}

func TestEndpointsDistinctAndRestricted(t *testing.T) {
	e, n := testNet(4)
	g := New(n, Config{
		MessageRate: 5,
		Size:        randx.Constant{Value: 1e9}, // long-lived flows
		Nodes:       []int{1, 2},
	}, randx.New(2))
	g.Start()
	e.RunUntil(5)
	g.Stop()
	// Only links to nodes 1 and 2 (link IDs 0 and 1) may carry traffic.
	if n.LinkBitsTotal(0) == 0 && n.LinkBitsTotal(1) == 0 {
		t.Error("restricted endpoints carried no traffic")
	}
	if n.LinkBitsTotal(2) != 0 || n.LinkBitsTotal(3) != 0 {
		t.Error("traffic leaked onto excluded nodes")
	}
}

func TestOfferedBandwidth(t *testing.T) {
	_, n := testNet(2)
	g := New(n, Config{MessageRate: 10, Size: randx.Constant{Value: 1e6}}, randx.New(3))
	want := 10 * 1e6 * 8.0
	if math.Abs(g.OfferedBandwidth()-want) > 1 {
		t.Fatalf("OfferedBandwidth = %v, want %v", g.OfferedBandwidth(), want)
	}
}

func TestTrafficUtilizesNetwork(t *testing.T) {
	e, n := testNet(3)
	// Offered bandwidth 24 Mbps across 3 access links.
	g := New(n, Config{
		MessageRate: 3,
		Size:        randx.Constant{Value: 1e6},
	}, randx.New(4))
	g.Start()
	e.RunUntil(500)
	g.Stop()
	total := 0.0
	for l := 0; l < 3; l++ {
		total += n.LinkBitsTotal(l)
	}
	// Each message crosses two access links: expected ~ 2 * 8e6 * 1500.
	want := 2.0 * 8e6 * 3 * 500
	if math.Abs(total-want)/want > 0.15 {
		t.Fatalf("total carried bits %v, want ~%v", total, want)
	}
}

func TestGeneratorStopAndDeterminism(t *testing.T) {
	run := func() (int, float64) {
		e, n := testNet(4)
		g := New(n, Config{MessageRate: 1}, randx.New(5))
		g.Start()
		e.RunUntil(300)
		g.Stop()
		at := g.MessagesStarted()
		e.RunUntil(400)
		if g.MessagesStarted() != at {
			t.Fatal("messages kept arriving after Stop")
		}
		return g.MessagesStarted(), g.BytesStarted()
	}
	m1, b1 := run()
	m2, b2 := run()
	if m1 != m2 || b1 != b2 {
		t.Fatalf("replay diverged: (%d, %v) vs (%d, %v)", m1, b1, m2, b2)
	}
}

func TestNewValidation(t *testing.T) {
	_, n := testNet(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero rate did not panic")
			}
		}()
		New(n, Config{MessageRate: 0}, randx.New(1))
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("single endpoint did not panic")
			}
		}()
		New(n, Config{MessageRate: 1, Nodes: []int{1}}, randx.New(1))
	}()
}

func TestStreamSaturatesPath(t *testing.T) {
	e, n := testNet(3)
	s := NewStream(n, 1, 2, 12.5e6) // 1e8-bit chunks over 100 Mbps links
	s.Start()
	e.RunUntil(10)
	// The stream should keep its path busy continuously: ~10 chunks.
	if s.Chunks() < 8 {
		t.Fatalf("stream completed %d chunks in 10s, want ~10", s.Chunks())
	}
	if got := n.LinkBusyBW(0, true); math.Abs(got-100e6) > 1 {
		t.Fatalf("stream path busy = %v, want saturated", got)
	}
	s.Stop()
	e.RunUntil(11)
	if got := n.LinkBusyBW(0, true); got != 0 {
		t.Fatalf("stream still busy after Stop: %v", got)
	}
	s.Stop() // idempotent
}

func TestStreamSharesFairly(t *testing.T) {
	e, n := testNet(3)
	s := NewStream(n, 1, 2, 64e6)
	s.Start()
	// A competing application flow on the same path should get half.
	var done float64 = -1
	e.After(1, "app", func() {
		n.StartFlow(1, 2, 12.5e6, netsim.Application, func() { done = e.Now() })
	})
	e.RunUntil(30)
	// 1e8 bits at 50 Mbps = 2s.
	if math.Abs(done-3) > 0.05 {
		t.Fatalf("app flow finished at %v, want ~3 (2s at half rate)", done)
	}
	s.Stop()
}

func TestStreamPanicsOnSameEndpoints(t *testing.T) {
	_, n := testNet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("same endpoints did not panic")
		}
	}()
	NewStream(n, 1, 1, 0)
}

func TestDefaultSizeMoments(t *testing.T) {
	d := DefaultSize()
	if math.Abs(d.Mean()-4e6)/4e6 > 1e-9 {
		t.Fatalf("DefaultSize mean = %v, want 4e6", d.Mean())
	}
}
