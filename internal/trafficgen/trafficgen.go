// Package trafficgen generates synthetic competing network traffic,
// following the paper's §4.2 model: messages are sent between random node
// pairs with Poisson interarrival times and log-normally distributed
// lengths, representing the large high-speed data transfers of a compute-
// and data-intensive environment.
//
// The package also provides fixed streams between specific node pairs,
// used to reproduce the Figure 4 scenario (a traffic stream from m-16 to
// m-18 that automatic selection must route around).
package trafficgen

import (
	"fmt"

	"nodeselect/internal/netsim"
	"nodeselect/internal/randx"
)

// Config parameterizes the random-pair message generator.
type Config struct {
	// MessageRate is the network-wide Poisson message arrival rate, in
	// messages per second. Required.
	MessageRate float64

	// Size samples a message length in bytes. Nil means DefaultSize().
	Size randx.Sampler

	// Nodes lists the candidate endpoints. Nil means every compute node.
	Nodes []int
}

// DefaultSize returns the paper-style log-normal message size model with
// the given mean and standard deviation in bytes. Large transfers dominate:
// the default used by the experiments is mean 4 MB with a 8 MB standard
// deviation, representing bulk data movement on a high-speed testbed.
func DefaultSize() randx.Sampler {
	return randx.LogNormalFromMoments(4e6, 8e6)
}

// Generator drives Poisson message arrivals between random node pairs.
type Generator struct {
	net     *netsim.Network
	cfg     Config
	process randx.PoissonProcess
	src     *randx.Source
	nodes   []int
	cancel  func()
	started int
	bytes   float64
	running bool
}

// New builds a generator drawing from its own substream of src.
func New(net *netsim.Network, cfg Config, src *randx.Source) *Generator {
	if cfg.MessageRate <= 0 {
		panic(fmt.Sprintf("trafficgen: message rate %v must be positive", cfg.MessageRate))
	}
	if cfg.Size == nil {
		cfg.Size = DefaultSize()
	}
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = net.Graph().ComputeNodes()
	}
	if len(nodes) < 2 {
		panic("trafficgen: need at least two candidate endpoints")
	}
	return &Generator{
		net:     net,
		cfg:     cfg,
		process: randx.NewPoissonProcess(cfg.MessageRate),
		src:     src.Split("trafficgen"),
		nodes:   nodes,
	}
}

// Start begins generating traffic. It is idempotent.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	stopped := false
	var schedule func()
	schedule = func() {
		if stopped {
			return
		}
		delay := g.process.NextInterarrival(g.src)
		ev := g.net.Engine().After(delay, "traffic-arrival", func() {
			if stopped {
				return
			}
			src := g.nodes[g.src.Intn(len(g.nodes))]
			dst := g.nodes[g.src.Intn(len(g.nodes))]
			for dst == src {
				dst = g.nodes[g.src.Intn(len(g.nodes))]
			}
			size := g.cfg.Size.Sample(g.src)
			if size < 1 {
				size = 1
			}
			g.net.StartFlow(src, dst, size, netsim.Background, nil)
			g.started++
			g.bytes += size
			schedule()
		})
		g.cancel = func() {
			stopped = true
			g.net.Engine().Cancel(ev)
		}
	}
	schedule()
}

// Stop halts the generator; messages already in flight complete normally.
func (g *Generator) Stop() {
	if !g.running {
		return
	}
	g.running = false
	if g.cancel != nil {
		g.cancel()
	}
}

// MessagesStarted returns the number of messages injected so far.
func (g *Generator) MessagesStarted() int { return g.started }

// BytesStarted returns the total bytes of traffic injected so far.
func (g *Generator) BytesStarted() float64 { return g.bytes }

// OfferedBandwidth returns the long-run average offered traffic in
// bits/second across the whole network (rate times mean size times 8).
func (g *Generator) OfferedBandwidth() float64 {
	return g.cfg.MessageRate * g.cfg.Size.Mean() * 8
}

// Stream is a persistent bulk transfer between a fixed pair of nodes: as
// soon as one transfer of ChunkBytes completes, the next begins. It models
// a long-running data stream (the paper's Figure 4 uses one from m-16 to
// m-18) that continuously competes for its path's bandwidth.
type Stream struct {
	net        *netsim.Network
	src, dst   int
	chunkBytes float64
	flow       *netsim.Flow
	running    bool
	chunks     int
}

// NewStream builds a persistent stream. chunkBytes controls the restart
// granularity; 0 means 64 MB chunks.
func NewStream(net *netsim.Network, src, dst int, chunkBytes float64) *Stream {
	if src == dst {
		panic("trafficgen: stream endpoints must differ")
	}
	if chunkBytes <= 0 {
		chunkBytes = 64e6
	}
	return &Stream{net: net, src: src, dst: dst, chunkBytes: chunkBytes}
}

// Start launches the stream. It is idempotent.
func (s *Stream) Start() {
	if s.running {
		return
	}
	s.running = true
	s.next()
}

func (s *Stream) next() {
	if !s.running {
		return
	}
	s.flow = s.net.StartFlow(s.src, s.dst, s.chunkBytes, netsim.Background, func() {
		s.chunks++
		s.next()
	})
}

// Stop halts the stream, cancelling the in-flight chunk.
func (s *Stream) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.flow != nil {
		s.flow.Cancel()
	}
}

// Chunks returns the number of completed chunks.
func (s *Stream) Chunks() int { return s.chunks }
