// Package rebalance implements the continuous re-placement controller:
// the running-service form of the paper's §3.3 "dynamic migration"
// discussion. On every collector epoch (the same poll-count +
// ledger-version pair the plan cache keys on) the controller re-scores
// each active lease's placement with core.AdviseMigration against the
// *residual* snapshot excluding the lease's own reservation — the paper's
// self-load caveat: an application deciding whether to move must not count
// its own load as competition — and turns sustained, worthwhile advice
// into migration proposals.
//
// Advice becomes a proposal only with hysteresis, because network
// measurements oscillate and migration is not free:
//
//   - MinGain/MigrationCost (core.MigrationPolicy) gate on the size of the
//     improvement;
//   - the advice must repeat for ConfirmEpochs consecutive epochs
//     (debounce) before a proposal is raised;
//   - a lease that just migrated is left alone for Cooldown;
//   - at most MaxPerEpoch proposals are raised (advisory) or applied
//     (auto) per epoch.
//
// Applying a proposal is an atomic reserve-new-then-release-old handover
// through the ledger (lease.Ledger.Migrate): the new set is re-checked for
// admission alongside the old at apply time, so a proposal gone stale can
// reject but never oversubscribe. Degraded snapshots (part of the fleet
// served from last-known-good data) suppress evaluation entirely — no
// migration decisions on stale measurements.
package rebalance

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/metrics"
	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// Policy tunes the controller.
type Policy struct {
	// MinGain is the minimum relative minresource improvement that
	// justifies a move (e.g. 0.25 = 25% better); zero moves on any strict
	// improvement. MigrationCost is an absolute minresource handicap
	// subtracted from the candidate. Both feed core.MigrationPolicy.
	MinGain       float64
	MigrationCost float64
	// Algorithm selects candidate placements for leases whose shape does
	// not name a usable algorithm (default balanced). A lease's own
	// algorithm wins when it is deterministic; random/static shapes fall
	// back to this, since re-running a blind selector says nothing about
	// whether conditions improved.
	Algorithm string
	// ConfirmEpochs is how many consecutive epochs the advisor must
	// recommend moving before a proposal is raised (default 2; 1 proposes
	// immediately).
	ConfirmEpochs int
	// Cooldown is the per-lease quiet period after a handover (default
	// 1m): a lease that just moved is not re-evaluated until it elapses.
	Cooldown time.Duration
	// MaxPerEpoch budgets how many proposals may be raised (advisory
	// mode) or applied (auto mode) in one epoch (default 1): mass
	// migrations on one measurement sample are exactly the oscillation
	// hysteresis exists to prevent.
	MaxPerEpoch int
	// Auto applies proposals as soon as they are raised; off, proposals
	// wait for an operator's POST /migrations/{lease}/apply.
	Auto bool
	// Now is the clock (default time.Now); injectable for tests and
	// sim-driven experiments.
	Now func() time.Time
}

func (p Policy) withDefaults() Policy {
	if p.Algorithm == "" {
		p.Algorithm = core.AlgoBalanced
	}
	if p.ConfirmEpochs < 1 {
		p.ConfirmEpochs = 2
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Minute
	}
	if p.MaxPerEpoch < 1 {
		p.MaxPerEpoch = 1
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	return p
}

// Epoch identifies one evaluation round: the collector poll count plus the
// ledger version — the same pair the service's plan cache keys on. The
// controller evaluates at most once per distinct epoch, so repeated ticks
// between polls are no-ops and every handover (which bumps the ledger
// version) forces re-evaluation against the new reservation state.
type Epoch struct {
	Polls  int
	Ledger uint64
}

// Proposal is one pending migration recommendation.
type Proposal struct {
	// Lease names the lease to move.
	Lease string `json:"lease"`
	// From and To are the current and recommended node sets (names,
	// sorted).
	From []string `json:"from"`
	To   []string `json:"to"`
	// Gain is the relative minresource improvement of To over From after
	// the migration-cost handicap.
	Gain float64 `json:"gain"`
	// CurrentScore and CandidateScore are the two placements' minresource
	// under the background-only (self-load-excluded) residual view.
	CurrentScore   float64 `json:"current_score"`
	CandidateScore float64 `json:"candidate_score"`
	// Bottleneck names the candidate placement's binding communication
	// bottleneck link ("a--b"), when it has one.
	Bottleneck string `json:"bottleneck,omitempty"`
	// Confirmations is how many consecutive epochs the advisor recommended
	// this move before (and since) the proposal was raised.
	Confirmations int `json:"confirmations"`
	// Epoch is the evaluation round that (last) confirmed the proposal.
	Epoch Epoch `json:"epoch"`
}

// Event is one controller action, delivered to the observer installed
// with SetOnEvent: op is "propose", "apply", or "apply_failed".
type Event struct {
	Op       string
	Proposal Proposal
	// Err is set on apply_failed.
	Err error
	// RequestID is the trace ID of the request (or poll) that drove the
	// action — empty for untraced ticks.
	RequestID string
}

// Metrics is the controller's instrument set.
type Metrics struct {
	// rebalance_ticks_total: evaluation rounds entered (including no-op
	// same-epoch ticks).
	ticks *metrics.Counter
	// rebalance_skipped_degraded_total: epochs skipped because the
	// snapshot was degraded — no migration decisions on stale data.
	skippedDegraded *metrics.Counter
	// rebalance_evaluations_total: lease placements re-scored.
	evaluations *metrics.Counter
	// rebalance_proposals_total: proposals raised.
	proposals *metrics.Counter
	// rebalance_applied_total / rebalance_apply_failures_total: handovers
	// executed / attempted and rejected.
	applied       *metrics.Counter
	applyFailures *metrics.Counter
	// rebalance_suppressed_total{reason}: advice withheld by hysteresis —
	// debounce | cooldown | budget.
	suppressed *metrics.CounterVec
}

func newMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		ticks: reg.NewCounter("rebalance_ticks_total",
			"Rebalance evaluation rounds entered."),
		skippedDegraded: reg.NewCounter("rebalance_skipped_degraded_total",
			"Epochs skipped because the measurement snapshot was degraded."),
		evaluations: reg.NewCounter("rebalance_evaluations_total",
			"Lease placements re-scored against the residual snapshot."),
		proposals: reg.NewCounter("rebalance_proposals_total",
			"Migration proposals raised."),
		applied: reg.NewCounter("rebalance_applied_total",
			"Migration handovers executed through the ledger."),
		applyFailures: reg.NewCounter("rebalance_apply_failures_total",
			"Migration handovers attempted and rejected."),
		suppressed: reg.NewCounterVec("rebalance_suppressed_total",
			"Migration advice withheld by hysteresis, by reason.", "reason"),
	}
}

// SkippedDegraded reports how many degraded epochs were skipped (test and
// introspection hook).
func (m *Metrics) SkippedDegraded() float64 { return m.skippedDegraded.Value() }

// streak tracks consecutive-epoch advice for one lease. The streak only
// counts epochs recommending the *same* destination: advice that keeps
// changing its mind is oscillation, not a trend.
type streak struct {
	to    []string
	count int
}

// Controller is the re-placement loop's state. Create with New, drive it
// with Tick on every poll, and stop it with Close — Close blocks until an
// in-flight evaluation or handover finishes, which is what lets a daemon
// order "stop the controller" strictly before "flush the ledger".
type Controller struct {
	ledger *lease.Ledger
	policy Policy
	m      *Metrics

	mu        sync.Mutex
	closed    bool
	lastEpoch Epoch
	started   bool // lastEpoch is only meaningful after the first tick
	streaks   map[string]*streak
	pending   map[string]*Proposal
	cooldown  map[string]time.Time
	onEvent   func(Event)

	// testHookBeforeMigrate, when set, runs while holding c.mu just before
	// the ledger handover — the window the shutdown-during-handover test
	// widens.
	testHookBeforeMigrate func()
}

// New builds a controller over the ledger, registering its metrics on reg
// (nil creates a private registry).
func New(ledger *lease.Ledger, policy Policy, reg *metrics.Registry) *Controller {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Controller{
		ledger:   ledger,
		policy:   policy.withDefaults(),
		m:        newMetrics(reg),
		streaks:  make(map[string]*streak),
		pending:  make(map[string]*Proposal),
		cooldown: make(map[string]time.Time),
	}
	reg.NewGaugeFunc("rebalance_pending",
		"Migration proposals awaiting application.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.pending))
		})
	return c
}

// Metrics returns the controller's instrument set.
func (c *Controller) Metrics() *Metrics { return c.m }

// SetOnEvent installs an observer for controller actions, called with the
// controller locked — keep it cheap (audit appends, metric increments).
// Install before the first Tick.
func (c *Controller) SetOnEvent(fn func(Event)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onEvent = fn
}

func (c *Controller) event(ev Event) {
	if c.onEvent != nil {
		c.onEvent(ev)
	}
}

// Auto reports whether the controller applies proposals itself.
func (c *Controller) Auto() bool { return c.policy.Auto }

// Proposals returns the pending proposals, ordered by lease ID.
func (c *Controller) Proposals() []Proposal {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Proposal, 0, len(c.pending))
	for _, p := range c.pending {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lease < out[j].Lease })
	return out
}

// Close stops the controller: subsequent Ticks and Applies are no-ops. It
// takes the controller's mutex, so it blocks until an in-flight tick or
// handover completes — after Close returns, no reserve-new half of a
// migration can reach the ledger.
func (c *Controller) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Tick runs one evaluation round against snap under the given epoch.
// Same-epoch ticks are no-ops; degraded ticks consume the epoch without
// evaluating (no migration decisions on stale measurements). Returns the
// number of proposals raised this round. The context carries the driving
// poll's trace; the round is timed as a "rebalance.tick" span.
func (c *Controller) Tick(ctx context.Context, snap *topology.Snapshot, epoch Epoch, degraded bool) int {
	ctx, span := reqtrace.StartSpan(ctx, "rebalance.tick")
	defer span.End()
	raised := c.tick(ctx, snap, epoch, degraded)
	if raised > 0 {
		span.SetAttr("proposals", fmt.Sprint(raised))
	}
	return raised
}

func (c *Controller) tick(ctx context.Context, snap *topology.Snapshot, epoch Epoch, degraded bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0
	}
	c.m.ticks.Inc()
	if c.started && epoch == c.lastEpoch {
		return 0
	}
	c.started = true
	c.lastEpoch = epoch
	if degraded {
		c.m.skippedDegraded.Inc()
		return 0
	}

	now := c.policy.Now()
	budget := c.policy.MaxPerEpoch
	raised := 0
	active := c.ledger.Active()
	seen := make(map[string]bool, len(active))
	for _, info := range active {
		seen[info.ID] = true
		if info.Request == nil {
			// Acquired without a shape: nothing to re-run the selection
			// with, so the lease is never re-placed.
			continue
		}
		adv, ok := c.evaluateLocked(ctx, snap, info)
		if !ok {
			continue
		}
		if !adv.Move {
			// Advice lapsed: the streak and any unapplied proposal die with
			// it — a proposal is only as good as the epoch that confirmed it.
			delete(c.streaks, info.ID)
			delete(c.pending, info.ID)
			continue
		}
		to := adv.Candidate.Names(c.ledger.Graph())
		sort.Strings(to)
		st := c.streaks[info.ID]
		if st == nil || !sameNames(st.to, to) {
			st = &streak{to: to}
			c.streaks[info.ID] = st
		}
		st.count++
		if st.count < c.policy.ConfirmEpochs {
			c.m.suppressed.With("debounce").Inc()
			continue
		}
		if until, cooling := c.cooldown[info.ID]; cooling && now.Before(until) {
			c.m.suppressed.With("cooldown").Inc()
			continue
		}
		p := &Proposal{
			Lease:          info.ID,
			From:           append([]string(nil), info.Nodes...),
			To:             to,
			Gain:           adv.Gain,
			CurrentScore:   adv.Current.MinResource,
			CandidateScore: adv.Candidate.MinResource,
			Bottleneck:     adv.Candidate.BottleneckName(c.ledger.Graph()),
			Confirmations:  st.count,
			Epoch:          epoch,
		}
		// The budget gates actions — raising a new proposal, or (in auto
		// mode) executing a handover. Refreshing an already-pending
		// proposal's scores is free, so a stuck proposal cannot starve
		// other leases of their turn.
		_, existed := c.pending[p.Lease]
		if (!existed || c.policy.Auto) && budget <= 0 {
			c.m.suppressed.With("budget").Inc()
			continue
		}
		if !existed {
			c.m.proposals.Inc()
			raised++
			c.event(Event{Op: "propose", Proposal: *p, RequestID: reqtrace.TraceID(ctx)})
			budget--
		}
		c.pending[p.Lease] = p
		if c.policy.Auto {
			if existed {
				budget--
			}
			c.applyLocked(ctx, snap, p, now)
		}
	}
	// Leases that were released or expired take their controller state with
	// them.
	for id := range c.pending {
		if !seen[id] {
			delete(c.pending, id)
		}
	}
	for id := range c.streaks {
		if !seen[id] {
			delete(c.streaks, id)
		}
	}
	return raised
}

// evaluateLocked scores one lease's placement against the residual view
// excluding its own reservation. Callers hold c.mu.
func (c *Controller) evaluateLocked(ctx context.Context, snap *topology.Snapshot, info lease.Info) (core.MigrationAdvice, bool) {
	residual, err := c.ledger.ResidualExcluding(snap, info.ID)
	if err != nil {
		// Raced with release/expiry; the post-loop cleanup handles state.
		return core.MigrationAdvice{}, false
	}
	c.m.evaluations.Inc()
	g := c.ledger.Graph()
	shape := info.Request
	req := core.Request{
		M:               len(info.Nodes),
		ComputePriority: shape.Priority,
		RefCapacity:     shape.RefCapacity,
		MinBW:           shape.MinBW,
		MinCPU:          shape.MinCPU,
		MinMemoryMB:     shape.MinMemoryMB,
		MaxPairLatency:  shape.MaxPairLatency,
	}
	for _, name := range shape.Pin {
		if id := g.NodeByName(name); id >= 0 {
			// A pinned node pruned from the topology cannot be pinned to;
			// dropping it lets the advisor route the lease somewhere alive.
			req.Pinned = append(req.Pinned, id)
		}
	}
	current := make([]int, len(info.Nodes))
	for i, name := range info.Nodes {
		current[i] = g.NodeByName(name) // -1 for pruned nodes: scores as dead
	}
	algo := shape.Algo
	if algo == "" || algo == core.AlgoRandom || algo == core.AlgoStatic {
		// Blind selectors say nothing about current conditions; advise with
		// the policy's measurement-driven algorithm instead.
		algo = c.policy.Algorithm
	}
	adv, err := core.AdviseMigrationCtx(ctx, residual, current, req, core.MigrationPolicy{
		Algorithm:     algo,
		MinGain:       c.policy.MinGain,
		MigrationCost: c.policy.MigrationCost,
	})
	if err != nil {
		return core.MigrationAdvice{}, false
	}
	return adv, true
}

// Apply executes a pending proposal: an atomic reserve-new-then-release-old
// handover through the ledger, re-checked for admission at apply time
// against the view that still includes the lease's current reservation.
// On success the proposal and its streak are cleared and the lease enters
// cooldown. Unknown lease IDs return lease.ErrNotFound; a proposal whose
// new set no longer fits returns the binding-bottleneck AdmissionError
// (and stays pending — conditions may improve).
func (c *Controller) Apply(ctx context.Context, snap *topology.Snapshot, leaseID string) (lease.Info, error) {
	ctx, span := reqtrace.StartSpan(ctx, "rebalance.apply")
	span.SetAttr("lease", leaseID)
	defer span.End()
	info, err := c.apply(ctx, snap, leaseID)
	if err != nil {
		span.Fail(err)
	}
	return info, err
}

func (c *Controller) apply(ctx context.Context, snap *topology.Snapshot, leaseID string) (lease.Info, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return lease.Info{}, lease.ErrClosed
	}
	p, ok := c.pending[leaseID]
	if !ok {
		return lease.Info{}, fmt.Errorf("%w: no pending migration for %q", lease.ErrNotFound, leaseID)
	}
	return c.applyLocked(ctx, snap, p, c.policy.Now())
}

// applyLocked performs the handover. Callers hold c.mu.
func (c *Controller) applyLocked(ctx context.Context, snap *topology.Snapshot, p *Proposal, now time.Time) (lease.Info, error) {
	g := c.ledger.Graph()
	target := make([]int, 0, len(p.To))
	for _, name := range p.To {
		id := g.NodeByName(name)
		if id < 0 {
			err := fmt.Errorf("%w: proposed node %q no longer exists", lease.ErrNotFound, name)
			c.failLocked(ctx, p, err)
			return lease.Info{}, err
		}
		target = append(target, id)
	}
	if c.testHookBeforeMigrate != nil {
		// Holds c.mu open mid-handover; a concurrent Close must block here
		// until the migrate below completes.
		c.testHookBeforeMigrate()
	}
	info, err := c.ledger.Migrate(ctx, snap, p.Lease, func(context.Context, *topology.Snapshot, float64) ([]int, error) {
		return target, nil
	})
	if err != nil {
		c.failLocked(ctx, p, err)
		return lease.Info{}, err
	}
	c.m.applied.Inc()
	c.cooldown[p.Lease] = now.Add(c.policy.Cooldown)
	delete(c.pending, p.Lease)
	delete(c.streaks, p.Lease)
	c.event(Event{Op: "apply", Proposal: *p, RequestID: reqtrace.TraceID(ctx)})
	return info, nil
}

// failLocked records a failed handover attempt. The proposal stays pending
// unless the lease itself is gone. Callers hold c.mu.
func (c *Controller) failLocked(ctx context.Context, p *Proposal, err error) {
	c.m.applyFailures.Inc()
	c.event(Event{Op: "apply_failed", Proposal: *p, Err: err, RequestID: reqtrace.TraceID(ctx)})
}

// sameNames reports whether two sorted name slices are identical.
func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
