package rebalance

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// fixture is a star ledger with one shaped lease pinned-by-placement on
// nodes 1,2 and a snapshot the test can load.
type fixture struct {
	clock  *fakeClock
	ledger *lease.Ledger
	snap   *topology.Snapshot
	info   lease.Info
}

func place(nodes ...int) lease.PlaceFunc {
	return func(context.Context, *topology.Snapshot, float64) ([]int, error) {
		return append([]int(nil), nodes...), nil
	}
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	clock := newFakeClock()
	g := testbed.Star(n, 100e6)
	l, err := lease.New(g, lease.Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	shape := &lease.Shape{M: 2, Algo: core.AlgoBalanced}
	info, err := l.AcquireShaped(context.Background(), topology.NewSnapshot(g), lease.Demand{CPU: 0.1}, time.Hour, shape, place(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{clock: clock, ledger: l, snap: topology.NewSnapshot(g), info: info}
}

// loadCurrent makes the lease's current nodes look heavily loaded, so the
// advisor recommends moving to the idle remainder of the star.
func (f *fixture) loadCurrent() {
	f.snap.SetLoad(1, 4)
	f.snap.SetLoad(2, 4)
}

func TestTickDebouncesThenProposes(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{MinGain: 0.1, ConfirmEpochs: 2, Now: f.clock.Now}, nil)
	var events []Event
	c.SetOnEvent(func(ev Event) { events = append(events, ev) })
	f.loadCurrent()

	v := f.ledger.Version()
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: v}, false); n != 0 {
		t.Fatalf("first advice epoch raised %d proposals, want 0 (debounce)", n)
	}
	if got := c.m.suppressed.With("debounce").Value(); got != 1 {
		t.Fatalf("debounce suppressions = %v, want 1", got)
	}
	// Same epoch again: a no-op, must not advance the streak.
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: v}, false); n != 0 {
		t.Fatal("same-epoch tick must be a no-op")
	}
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 2, Ledger: v}, false); n != 1 {
		t.Fatal("second consecutive advice epoch must raise the proposal")
	}

	props := c.Proposals()
	if len(props) != 1 {
		t.Fatalf("pending = %v", props)
	}
	p := props[0]
	if p.Lease != f.info.ID {
		t.Fatalf("proposal lease = %q, want %q", p.Lease, f.info.ID)
	}
	if len(p.From) != 2 || p.From[0] != "n-1" || p.From[1] != "n-2" {
		t.Fatalf("from = %v", p.From)
	}
	for _, name := range p.To {
		if name == "n-1" || name == "n-2" {
			t.Fatalf("to = %v still uses a loaded node", p.To)
		}
	}
	if p.Gain <= 0.1 || p.CandidateScore <= p.CurrentScore {
		t.Fatalf("proposal scores: gain=%v current=%v candidate=%v", p.Gain, p.CurrentScore, p.CandidateScore)
	}
	if p.Confirmations != 2 {
		t.Fatalf("confirmations = %d, want 2", p.Confirmations)
	}
	if len(events) != 1 || events[0].Op != "propose" {
		t.Fatalf("events = %+v, want one propose", events)
	}
	// Re-confirming epochs update the proposal without recounting it.
	c.Tick(context.Background(), f.snap, Epoch{Polls: 3, Ledger: v}, false)
	if got := c.m.proposals.Value(); got != 1 {
		t.Fatalf("proposals_total = %v after re-confirmation, want 1", got)
	}
}

func TestDegradedTickSuppressesEvaluation(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{ConfirmEpochs: 1, Now: f.clock.Now}, nil)
	f.loadCurrent()

	v := f.ledger.Version()
	for polls := 1; polls <= 3; polls++ {
		if n := c.Tick(context.Background(), f.snap, Epoch{Polls: polls, Ledger: v}, true); n != 0 {
			t.Fatal("degraded tick must not raise proposals")
		}
	}
	if got := c.Metrics().SkippedDegraded(); got != 3 {
		t.Fatalf("rebalance_skipped_degraded_total = %v, want 3", got)
	}
	if got := c.m.evaluations.Value(); got != 0 {
		t.Fatalf("evaluations = %v during degraded epochs, want 0", got)
	}
	// Health restored: the next epoch evaluates and proposes.
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 4, Ledger: v}, false); n != 1 {
		t.Fatal("healthy tick after degradation must propose")
	}
}

func TestAdviceLapseClearsProposal(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{ConfirmEpochs: 1, MinGain: 0.1, Now: f.clock.Now}, nil)
	f.loadCurrent()

	v := f.ledger.Version()
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: v}, false); n != 1 {
		t.Fatal("want a proposal while the placement is loaded")
	}
	// Load moves off the current nodes onto everything else: staying is
	// now best, and the stale proposal must not survive.
	f.snap.SetLoad(1, 0)
	f.snap.SetLoad(2, 0)
	for id := 3; id <= 6; id++ {
		f.snap.SetLoad(id, 4)
	}
	c.Tick(context.Background(), f.snap, Epoch{Polls: 2, Ledger: v}, false)
	if props := c.Proposals(); len(props) != 0 {
		t.Fatalf("lapsed advice left proposals pending: %v", props)
	}
}

func TestBudgetLimitsProposalsPerEpoch(t *testing.T) {
	clock := newFakeClock()
	g := testbed.Star(8, 100e6)
	l, err := lease.New(g, lease.Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	idle := topology.NewSnapshot(g)
	shape := &lease.Shape{M: 2, Algo: core.AlgoBalanced}
	if _, err := l.AcquireShaped(context.Background(), idle, lease.Demand{CPU: 0.1}, time.Hour, shape, place(1, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AcquireShaped(context.Background(), idle, lease.Demand{CPU: 0.1}, time.Hour, shape, place(3, 4)); err != nil {
		t.Fatal(err)
	}

	snap := topology.NewSnapshot(g)
	for id := 1; id <= 4; id++ {
		snap.SetLoad(id, 4) // both leases badly placed
	}
	c := New(l, Policy{ConfirmEpochs: 1, MaxPerEpoch: 1, MinGain: 0.1, Now: clock.Now}, nil)
	if n := c.Tick(context.Background(), snap, Epoch{Polls: 1, Ledger: l.Version()}, false); n != 1 {
		t.Fatalf("raised %d proposals under a budget of 1", n)
	}
	if got := c.m.suppressed.With("budget").Value(); got != 1 {
		t.Fatalf("budget suppressions = %v, want 1", got)
	}
	// Next epoch the budget resets and the second lease gets its turn.
	if n := c.Tick(context.Background(), snap, Epoch{Polls: 2, Ledger: l.Version()}, false); n != 1 {
		t.Fatal("budget must reset on the next epoch")
	}
	if len(c.Proposals()) != 2 {
		t.Fatalf("pending = %v, want both leases proposed", c.Proposals())
	}
}

func TestAutoAppliesAndCoolsDown(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{
		ConfirmEpochs: 1, MinGain: 0.1, Auto: true,
		Cooldown: time.Minute, Now: f.clock.Now,
	}, nil)
	var events []Event
	c.SetOnEvent(func(ev Event) { events = append(events, ev) })
	f.loadCurrent()

	c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: f.ledger.Version()}, false)
	if got := c.m.applied.Value(); got != 1 {
		t.Fatalf("applied = %v, want 1 in auto mode", got)
	}
	moved, ok := f.ledger.Get(f.info.ID)
	if !ok {
		t.Fatal("lease vanished")
	}
	for _, name := range moved.Nodes {
		if name == "n-1" || name == "n-2" {
			t.Fatalf("auto apply left the lease on %v", moved.Nodes)
		}
	}
	if len(c.Proposals()) != 0 {
		t.Fatal("applied proposal still pending")
	}
	if len(events) != 2 || events[0].Op != "propose" || events[1].Op != "apply" {
		t.Fatalf("events = %+v, want propose then apply", events)
	}
	if st := f.ledger.Stats(); st.Migrated != 1 {
		t.Fatalf("ledger stats = %+v, want Migrated=1", st)
	}

	// Immediately loading the new nodes cannot bounce the lease back:
	// cooldown suppresses until the quiet period elapses.
	for _, name := range moved.Nodes {
		f.snap.SetLoad(f.ledger.Graph().NodeByName(name), 4)
	}
	f.snap.SetLoad(1, 0)
	f.snap.SetLoad(2, 0)
	c.Tick(context.Background(), f.snap, Epoch{Polls: 2, Ledger: f.ledger.Version()}, false)
	if got := c.m.suppressed.With("cooldown").Value(); got != 1 {
		t.Fatalf("cooldown suppressions = %v, want 1", got)
	}
	if st := f.ledger.Stats(); st.Migrated != 1 {
		t.Fatal("cooldown failed to prevent a bounce-back migration")
	}
	// After the cooldown, the sustained advice goes through again.
	f.clock.Advance(2 * time.Minute)
	c.Tick(context.Background(), f.snap, Epoch{Polls: 3, Ledger: f.ledger.Version()}, false)
	if st := f.ledger.Stats(); st.Migrated != 2 {
		t.Fatalf("ledger stats = %+v, want the post-cooldown migration", st)
	}
}

func TestApplyAdvisoryHandover(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{ConfirmEpochs: 1, MinGain: 0.1, Now: f.clock.Now}, nil)
	f.loadCurrent()
	c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: f.ledger.Version()}, false)

	if _, err := c.Apply(context.Background(), f.snap, "lease-404"); !errors.Is(err, lease.ErrNotFound) {
		t.Fatalf("apply of unknown lease: err = %v, want ErrNotFound", err)
	}
	info, err := c.Apply(context.Background(), f.snap, f.info.ID)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range info.Nodes {
		if name == "n-1" || name == "n-2" {
			t.Fatalf("apply left the lease on %v", info.Nodes)
		}
	}
	if len(c.Proposals()) != 0 {
		t.Fatal("applied proposal still pending")
	}
	// Applying twice: the proposal is gone.
	if _, err := c.Apply(context.Background(), f.snap, f.info.ID); !errors.Is(err, lease.ErrNotFound) {
		t.Fatalf("second apply: err = %v, want ErrNotFound", err)
	}
}

func TestApplyRejectedKeepsProposalPending(t *testing.T) {
	f := newFixture(t, 4) // star of 4: current {1,2}, only {3,4} left
	c := New(f.ledger, Policy{ConfirmEpochs: 1, MinGain: 0.1, Now: f.clock.Now}, nil)
	f.loadCurrent()
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: f.ledger.Version()}, false); n != 1 {
		t.Fatal("want a proposal")
	}
	// A competitor takes nearly all CPU on the proposed destination before
	// the operator applies: the handover's at-apply-time admission check
	// must reject, and the proposal survives for when capacity returns.
	if _, err := f.ledger.Acquire(context.Background(), f.snap, lease.Demand{CPU: 0.95}, time.Hour, place(3, 4)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Apply(context.Background(), f.snap, f.info.ID)
	var adm *lease.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("apply onto reserved nodes: err = %v, want AdmissionError", err)
	}
	if got := c.m.applyFailures.Value(); got != 1 {
		t.Fatalf("apply failures = %v, want 1", got)
	}
	if len(c.Proposals()) != 1 {
		t.Fatal("rejected apply must leave the proposal pending")
	}
	cur, _ := f.ledger.Get(f.info.ID)
	if len(cur.Nodes) != 2 || cur.Nodes[0] != "n-1" || cur.Nodes[1] != "n-2" {
		t.Fatalf("lease moved despite rejection: %v", cur.Nodes)
	}
}

func TestUnshapedLeaseNeverRebalanced(t *testing.T) {
	clock := newFakeClock()
	g := testbed.Star(6, 100e6)
	l, err := lease.New(g, lease.Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire(context.Background(), topology.NewSnapshot(g), lease.Demand{CPU: 0.1}, time.Hour, place(1, 2)); err != nil {
		t.Fatal(err)
	}
	snap := topology.NewSnapshot(g)
	snap.SetLoad(1, 4)
	snap.SetLoad(2, 4)
	c := New(l, Policy{ConfirmEpochs: 1, Now: clock.Now}, nil)
	if n := c.Tick(context.Background(), snap, Epoch{Polls: 1, Ledger: l.Version()}, false); n != 0 {
		t.Fatal("a lease without a recorded shape must never be proposed")
	}
	if got := c.m.evaluations.Value(); got != 0 {
		t.Fatalf("evaluations = %v for a shapeless ledger, want 0", got)
	}
}

func TestReleasedLeaseDropsControllerState(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{ConfirmEpochs: 1, MinGain: 0.1, Now: f.clock.Now}, nil)
	f.loadCurrent()
	c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: f.ledger.Version()}, false)
	if len(c.Proposals()) != 1 {
		t.Fatal("want a proposal")
	}
	if err := f.ledger.Release(context.Background(), f.info.ID); err != nil {
		t.Fatal(err)
	}
	c.Tick(context.Background(), f.snap, Epoch{Polls: 2, Ledger: f.ledger.Version()}, false)
	if props := c.Proposals(); len(props) != 0 {
		t.Fatalf("released lease left proposals pending: %v", props)
	}
}

// Close must block until an in-flight handover completes: once it returns,
// no reserve-new half of a migration can reach the ledger, so a daemon may
// safely flush and close the ledger afterwards. Run under -race.
func TestCloseBlocksUntilHandoverCompletes(t *testing.T) {
	f := newFixture(t, 6)
	c := New(f.ledger, Policy{ConfirmEpochs: 1, MinGain: 0.1, Now: f.clock.Now}, nil)
	f.loadCurrent()
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 1, Ledger: f.ledger.Version()}, false); n != 1 {
		t.Fatal("want a proposal")
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	c.testHookBeforeMigrate = func() {
		close(entered)
		<-release
	}
	applyDone := make(chan error, 1)
	go func() {
		_, err := c.Apply(context.Background(), f.snap, f.info.ID)
		applyDone <- err
	}()
	<-entered

	closeDone := make(chan struct{})
	go func() {
		c.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a handover was in flight")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-applyDone; err != nil {
		t.Fatalf("handover failed: %v", err)
	}
	<-closeDone

	// The controller is stopped: the ledger can now flush safely, and no
	// further controller action can touch it.
	if err := f.ledger.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(context.Background(), f.snap, f.info.ID); !errors.Is(err, lease.ErrClosed) {
		t.Fatalf("apply after Close: err = %v, want ErrClosed", err)
	}
	if n := c.Tick(context.Background(), f.snap, Epoch{Polls: 2, Ledger: 99}, false); n != 0 {
		t.Fatal("tick after Close must be a no-op")
	}
	if st := f.ledger.Stats(); st.Migrated != 1 {
		t.Fatalf("stats = %+v, want exactly the one pre-close migration", st)
	}
}
