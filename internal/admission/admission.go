// Package admission batches concurrent select+admit requests into ledger
// epochs. A single leased select pays one ledger critical section, one
// placement sweep and one WAL fsync; under concurrency those fsyncs
// serialize and dominate. The pipeline queues requests for a short window
// (or until the batch fills), then hands the whole window to
// lease.Ledger.AcquireBatch, which solves it serially in a deterministic
// priority order and commits the accepted set as one WAL record — one
// fsync (one replication round when replicated) amortized over the batch.
//
// The batch outcome is exactly serial: AcquireBatch's contract is that
// accept/reject decisions and post-batch residual vectors match replaying
// the items one at a time in priority order, so batching changes
// throughput and latency, never admission semantics.
package admission

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nodeselect/internal/lease"
	"nodeselect/internal/metrics"
	"nodeselect/internal/topology"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("admission: pipeline closed")

// Config tunes a Pipeline.
type Config struct {
	// Ledger is the reservation ledger batches commit against. Required.
	Ledger *lease.Ledger
	// Window is how long the collector waits after the first request of a
	// batch for more to arrive (default 2ms — around ten WAL fsyncs'
	// worth, so even two-request batches win).
	Window time.Duration
	// MaxBatch flushes a batch early once it holds this many requests
	// (default 64).
	MaxBatch int
	// Registry receives the admission_batch_* metrics when non-nil.
	Registry *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// Request is one admission submitted to the pipeline. Fields mirror
// lease.Ledger.AcquireShaped, plus the deterministic ordering key.
type Request struct {
	// Snapshot is the residual base the caller selected against. The
	// batch is solved against the snapshot of its *first* request (the
	// epoch view); see Submit.
	Snapshot *topology.Snapshot
	Demand   lease.Demand
	TTL      time.Duration
	Shape    *lease.Shape
	Place    lease.PlaceFunc
	// Key orders items of equal demand deterministically — pass the
	// client request ID.
	Key string
}

// Receipt reports which batch carried a request.
type Receipt struct {
	// BatchID names the commit ("batch-N", N monotonic per pipeline).
	BatchID string
	// BatchSize is how many requests shared the commit.
	BatchSize int
}

type pending struct {
	item lease.BatchItem
	snap *topology.Snapshot
	done chan outcome
}

type outcome struct {
	info    lease.Info
	receipt Receipt
	err     error
}

// Pipeline is the epoch-batch collector. One goroutine drains the queue,
// cutting a batch when the window elapses or the batch fills, and commits
// it through the ledger in a single call.
type Pipeline struct {
	cfg    Config
	queue  chan pending
	seq    atomic.Uint64 // arrival sequence
	batch  atomic.Uint64 // batch ID sequence
	depth  atomic.Int64  // requests queued or being solved
	closed atomic.Bool
	sendMu sync.RWMutex // guards queue against send-after-close
	wg     sync.WaitGroup

	mBatches  *metrics.Counter
	mRequests *metrics.Counter
	mSize     *metrics.Histogram
	mWait     *metrics.Histogram
}

// New starts a pipeline's collector goroutine. Close releases it.
func New(cfg Config) *Pipeline {
	cfg = cfg.withDefaults()
	if cfg.Ledger == nil {
		panic("admission: Config.Ledger is required")
	}
	p := &Pipeline{
		cfg: cfg,
		// Buffer one full batch so submitters rarely block on the channel
		// itself; backpressure comes from waiting on the outcome.
		queue: make(chan pending, cfg.MaxBatch),
	}
	if reg := cfg.Registry; reg != nil {
		p.mBatches = reg.NewCounter("admission_batches_total",
			"Epoch batches committed through the admission pipeline.")
		p.mRequests = reg.NewCounter("admission_batched_requests_total",
			"Requests admitted or rejected through batched admission.")
		p.mSize = reg.NewHistogram("admission_batch_size",
			"Requests per committed batch.",
			metrics.ExponentialBuckets(1, 2, 9))
		p.mWait = reg.NewHistogram("admission_batch_wait_seconds",
			"Time a request waits from submission to batch solve start.",
			metrics.ExponentialBuckets(0.0001, 2, 12))
		reg.NewGaugeFunc("admission_queue_depth",
			"Requests queued or being solved by the admission pipeline.",
			func() float64 { return float64(p.depth.Load()) })
	}
	p.wg.Add(1)
	go p.collect()
	return p
}

// Submit queues one admission and blocks until its batch commits (or the
// request is rejected). The returned Receipt identifies the batch even on
// rejection — a rejected request still rode a batch's solve.
//
// The batch solves against the snapshot of its first request. Within one
// service poll epoch every submitter passes the same measurement view, so
// this only matters across an epoch boundary, where the batch atomically
// uses one epoch's view — the same rule a serial ledger applies anyway
// (whoever enters the critical section first pins the view the others'
// residuals derive from).
func (p *Pipeline) Submit(ctx context.Context, req Request) (lease.Info, Receipt, error) {
	if req.Snapshot == nil || req.Place == nil {
		return lease.Info{}, Receipt{}, fmt.Errorf("admission: request needs a snapshot and a placer")
	}
	pn := pending{
		item: lease.BatchItem{
			Ctx:    ctx,
			Demand: req.Demand,
			TTL:    req.TTL,
			Shape:  req.Shape,
			Place:  req.Place,
			Key:    req.Key,
			Seq:    p.seq.Add(1),
		},
		snap: req.Snapshot,
		done: make(chan outcome, 1),
	}
	p.sendMu.RLock()
	if p.closed.Load() {
		p.sendMu.RUnlock()
		return lease.Info{}, Receipt{}, ErrClosed
	}
	p.depth.Add(1)
	p.queue <- pn
	p.sendMu.RUnlock()
	out := <-pn.done
	return out.info, out.receipt, out.err
}

// Close flushes queued requests into a final batch and stops the
// collector. Safe to call more than once; Submit afterwards returns
// ErrClosed.
func (p *Pipeline) Close() {
	p.sendMu.Lock()
	already := p.closed.Swap(true)
	if !already {
		close(p.queue)
	}
	p.sendMu.Unlock()
	p.wg.Wait()
}

// collect drains the queue into batches: the first request of a batch
// starts the window timer, and the batch flushes when the timer fires,
// the batch fills, or the queue closes.
func (p *Pipeline) collect() {
	defer p.wg.Done()
	timer := time.NewTimer(p.cfg.Window)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-p.queue
		if !ok {
			return
		}
		batch := []pending{first}
		waitStart := time.Now()
		timer.Reset(p.cfg.Window)
	fill:
		for len(batch) < p.cfg.MaxBatch {
			select {
			case pn, ok := <-p.queue:
				if !ok {
					break fill
				}
				batch = append(batch, pn)
			case <-timer.C:
				break fill
			}
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		p.flush(batch, waitStart)
	}
}

// flush solves one batch through the ledger and distributes outcomes.
func (p *Pipeline) flush(batch []pending, waitStart time.Time) {
	id := fmt.Sprintf("batch-%d", p.batch.Add(1))
	items := make([]lease.BatchItem, len(batch))
	for i, pn := range batch {
		items[i] = pn.item
	}
	if p.mWait != nil {
		p.mWait.ObserveSince(waitStart)
	}
	results := p.cfg.Ledger.AcquireBatch(context.Background(), batch[0].snap, items)
	receipt := Receipt{BatchID: id, BatchSize: len(batch)}
	for i, pn := range batch {
		pn.done <- outcome{info: results[i].Info, receipt: receipt, err: results[i].Err}
	}
	p.depth.Add(-int64(len(batch)))
	if p.mBatches != nil {
		p.mBatches.Inc()
		p.mRequests.Add(float64(len(batch)))
		p.mSize.Observe(float64(len(batch)))
	}
}
