package admission

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/metrics"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

func balancedPlace(m int, cpuFloor float64) lease.PlaceFunc {
	return func(_ context.Context, residual *topology.Snapshot, minBW float64) ([]int, error) {
		res, err := core.Balanced(residual, core.Request{M: m, MinBW: minBW, MinCPU: cpuFloor})
		if err != nil {
			return nil, err
		}
		return res.Nodes, nil
	}
}

func newStarPipeline(t *testing.T, n int, cfg Config) (*Pipeline, *lease.Ledger, *topology.Snapshot) {
	t.Helper()
	g := testbed.Star(n, 100e6)
	l, err := lease.New(g, lease.Options{CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Ledger = l
	p := New(cfg)
	t.Cleanup(p.Close)
	return p, l, topology.NewSnapshot(g)
}

// TestConcurrentSubmittersNeverOversubscribe is the race-mode admission
// bound: 16 submitters chase capacity for exactly 8 half-node leases on a
// 4-node star. Whatever batching the collector happens to cut, exactly 8
// must be admitted and no node may exceed its capacity.
func TestConcurrentSubmittersNeverOversubscribe(t *testing.T) {
	p, l, snap := newStarPipeline(t, 4, Config{Window: time.Millisecond, MaxBatch: 4})

	const submitters = 16
	var wg sync.WaitGroup
	accepted := make([]bool, submitters)
	receipts := make([]Receipt, submitters)
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, rcpt, err := p.Submit(context.Background(), Request{
				Snapshot: snap,
				Demand:   lease.Demand{CPU: 0.5},
				TTL:      time.Hour,
				Place:    balancedPlace(1, 0.5),
				Key:      fmt.Sprintf("sub-%02d", i),
			})
			accepted[i] = err == nil
			receipts[i] = rcpt
		}(i)
	}
	wg.Wait()

	got := 0
	for i := range accepted {
		if accepted[i] {
			got++
		}
		if receipts[i].BatchID == "" || receipts[i].BatchSize < 1 {
			t.Fatalf("submitter %d missing batch receipt: %+v (rejections ride batches too)", i, receipts[i])
		}
	}
	if got != 8 {
		t.Fatalf("admitted %d leases, capacity holds exactly 8", got)
	}
	nodeCPU, _ := l.Committed()
	for id, c := range nodeCPU {
		if c > 1.0+1e-9 {
			t.Fatalf("node %d oversubscribed: %.3f committed of 1.0", id, c)
		}
	}
}

// TestShuffledArrivalDeterministicAssignment: the same request set,
// arriving in different orders but always coalesced into a single batch,
// must always get the same key→lease-ID assignment. MaxBatch equal to the
// set size plus a generous window guarantees one batch per run.
func TestShuffledArrivalDeterministicAssignment(t *testing.T) {
	const n = 10
	rng := rand.New(rand.NewSource(3))

	run := func(perm []int) map[string]string {
		p, _, snap := newStarPipeline(t, 6, Config{Window: 5 * time.Second, MaxBatch: n})
		// Distinct demands and keys so priority order is nontrivial.
		var wg sync.WaitGroup
		var mu sync.Mutex
		out := make(map[string]string, n)
		for _, i := range perm {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("req-%02d", i)
				info, _, err := p.Submit(context.Background(), Request{
					Snapshot: snap,
					Demand:   lease.Demand{CPU: 0.1 + 0.1*float64(i%5)},
					TTL:      time.Hour,
					Place:    balancedPlace(1+i%2, 0.1),
					Key:      key,
				})
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					out[key] = "rejected"
				} else {
					out[key] = info.ID
				}
			}(i)
		}
		wg.Wait()
		return out
	}

	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	want := run(identity)
	for trial := 0; trial < 3; trial++ {
		got := run(rng.Perm(n))
		for k, id := range want {
			if got[k] != id {
				t.Fatalf("trial %d: key %s assigned %s, want %s", trial, k, got[k], id)
			}
		}
	}
}

// TestBatchCoalescing: submitters that all arrive inside one window share
// a batch — same BatchID, BatchSize equal to the group.
func TestBatchCoalescing(t *testing.T) {
	const n = 6
	p, _, snap := newStarPipeline(t, 8, Config{Window: 5 * time.Second, MaxBatch: n})

	var wg sync.WaitGroup
	ids := make([]string, n)
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, rcpt, err := p.Submit(context.Background(), Request{
				Snapshot: snap,
				Demand:   lease.Demand{CPU: 0.05},
				TTL:      time.Hour,
				Place:    balancedPlace(1, 0.05),
				Key:      fmt.Sprintf("co-%d", i),
			})
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
			ids[i], sizes[i] = rcpt.BatchID, rcpt.BatchSize
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submitter %d rode %s, submitter 0 rode %s (want one batch)", i, ids[i], ids[0])
		}
	}
	if sizes[0] != n {
		t.Fatalf("batch size %d, want %d", sizes[0], n)
	}
}

// TestCloseFlushesQueuedRequests: Close must drain queued submissions
// through a final batch — nobody left hanging — and later Submits fail
// with ErrClosed.
func TestCloseFlushesQueuedRequests(t *testing.T) {
	p, l, snap := newStarPipeline(t, 4, Config{Window: time.Hour, MaxBatch: 64})

	const n = 4
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = p.Submit(context.Background(), Request{
				Snapshot: snap,
				Demand:   lease.Demand{CPU: 0.1},
				TTL:      time.Hour,
				Place:    balancedPlace(1, 0.1),
				Key:      fmt.Sprintf("close-%d", i),
			})
		}(i)
	}
	// Give the submitters time to enqueue (the hour-long window means only
	// Close can flush them), then close.
	for p.depth.Load() < n {
		time.Sleep(time.Millisecond)
	}
	p.Close()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submitter %d lost to Close: %v", i, err)
		}
	}
	if l.Len() != n {
		t.Fatalf("%d leases after drain, want %d", l.Len(), n)
	}

	if _, _, err := p.Submit(context.Background(), Request{
		Snapshot: snap, Demand: lease.Demand{CPU: 0.1},
		Place: balancedPlace(1, 0.1),
	}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

func TestSubmitValidation(t *testing.T) {
	p, _, snap := newStarPipeline(t, 4, Config{})
	if _, _, err := p.Submit(context.Background(), Request{Place: balancedPlace(1, 0)}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, _, err := p.Submit(context.Background(), Request{Snapshot: snap}); err == nil {
		t.Fatal("nil placer accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Window != 2*time.Millisecond || cfg.MaxBatch != 64 {
		t.Fatalf("defaults = %v/%d, want 2ms/64", cfg.Window, cfg.MaxBatch)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New without a ledger did not panic")
		}
	}()
	New(Config{})
}

// TestMetrics: the admission_batch_* family reflects committed batches.
func TestMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	p, _, snap := newStarPipeline(t, 8, Config{Window: 5 * time.Second, MaxBatch: 3, Registry: reg})

	const n = 3
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.Submit(context.Background(), Request{
				Snapshot: snap,
				Demand:   lease.Demand{CPU: 0.05},
				TTL:      time.Hour,
				Place:    balancedPlace(1, 0.05),
				Key:      fmt.Sprintf("m-%d", i),
			})
		}(i)
	}
	wg.Wait()
	if got := p.mBatches.Value(); got != 1 {
		t.Fatalf("admission_batches_total = %v, want 1", got)
	}
	if got := p.mRequests.Value(); got != n {
		t.Fatalf("admission_batched_requests_total = %v, want %d", got, n)
	}
	if got := p.depth.Load(); got != 0 {
		t.Fatalf("admission_queue_depth = %d after drain, want 0", got)
	}
	if snap := p.mSize.Snapshot(); snap.Count != 1 {
		t.Fatalf("admission_batch_size observations = %d, want 1", snap.Count)
	}
}
