package selectsvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"nodeselect/internal/metrics"
	"nodeselect/internal/replica"
)

// This file is the service's view of a replicated selectd cluster. The
// consensus machinery lives in internal/replica and feeds the ledger via
// lease.Replicator; what the HTTP layer adds is the cluster etiquette:
// writes are accepted only on the leader (followers answer 307 to the
// leader's client URL when it is known, 503 "not_leader" while an election
// is in flight), every response is annotated with the replica's role,
// term, and commit lag so follower reads carry their staleness bound, and
// /healthz and /metrics report the replication plane's health alongside
// the measurement plane's.

// ClusterNode is the replication surface the service consumes — satisfied
// by *replica.Node, narrow enough for tests to fake.
type ClusterNode interface {
	Status() replica.Status
	IsLeader() bool
	LeaderID() string
}

// replicaWriteGuard intercepts a mutating request on a non-leader: 307 to
// the leader's client URL when one is known (307 preserves the method and
// body, so the client replays the exact write), 503 with class
// "not_leader" while no leader is known. Returns true when it answered
// the request. Leadership can still be lost between this check and the
// ledger commit; that race is caught by the ledger itself, whose
// lease.ErrNotLeader also classifies as "not_leader".
func (s *Service) replicaWriteGuard(w http.ResponseWriter, r *http.Request) bool {
	n := s.cfg.Replica
	if n == nil || n.IsLeader() {
		return false
	}
	leader := n.LeaderID()
	if base, ok := s.cfg.PeerClientURLs[leader]; ok && leader != "" {
		target := strings.TrimRight(base, "/") + r.URL.Path
		if q := r.URL.RawQuery; q != "" {
			target += "?" + q
		}
		if s.replicaRedirects != nil {
			s.replicaRedirects.Inc()
		}
		w.Header().Set("Location", target)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTemporaryRedirect)
		json.NewEncoder(w).Encode(map[string]string{
			"redirect": target,
			"leader":   leader,
		})
		return true
	}
	writeError(r.Context(), w, http.StatusServiceUnavailable, classNotLeader, "",
		fmt.Errorf("this replica is a %s and no leader is known (election in progress); retry shortly",
			n.Status().Role))
	return true
}

// annotateReplica stamps the replica headers every clustered response
// carries. X-Replica-Commit-Lag is the number of committed records this
// replica has not yet applied — the staleness bound of a follower read
// (0 on the leader and on caught-up followers).
func (s *Service) annotateReplica(h http.Header) {
	n := s.cfg.Replica
	if n == nil {
		return
	}
	st := n.Status()
	h.Set("X-Replica-Role", st.Role)
	h.Set("X-Replica-Term", fmt.Sprintf("%d", st.Term))
	h.Set("X-Replica-Commit-Lag", fmt.Sprintf("%d", st.CommitLag))
}

// replicationHealth builds the /healthz "replication" block. The block's
// own state is "ok" or "degraded": a replica without a quorum (a leader
// that lost its followers, a follower that lost its leader) keeps serving
// reads but cannot make progress on writes, which is degradation, not
// death.
func (s *Service) replicationHealth() (map[string]any, bool) {
	n := s.cfg.Replica
	if n == nil {
		return nil, false
	}
	st := n.Status()
	state := StateOK
	if !st.HasQuorum {
		state = StateDegraded
	}
	block := map[string]any{
		"state":          state,
		"id":             st.ID,
		"role":           st.Role,
		"term":           st.Term,
		"commit_index":   st.CommitIndex,
		"last_applied":   st.LastApplied,
		"last_log_index": st.LastLogIndex,
		"commit_lag":     st.CommitLag,
		"has_quorum":     st.HasQuorum,
	}
	if st.Leader != "" {
		block["leader"] = st.Leader
	}
	if st.SinceContactSeconds > 0 {
		block["since_contact_seconds"] = st.SinceContactSeconds
	}
	return block, state == StateDegraded
}

// roleLevel renders a role as the replica_role gauge value.
func roleLevel(role string) float64 {
	switch role {
	case "candidate":
		return 1
	case "leader":
		return 2
	default: // follower
		return 0
	}
}

// registerReplicaGauges exposes the replication plane's state. GaugeFuncs
// sampled at scrape time, like the lease gauges: the node owns the state.
func registerReplicaGauges(reg *metrics.Registry, n ClusterNode) {
	reg.NewGaugeFunc("replica_role",
		"This replica's role: 0 follower, 1 candidate, 2 leader.",
		func() float64 { return roleLevel(n.Status().Role) })
	reg.NewGaugeFunc("replica_term",
		"The replica's current election term.",
		func() float64 { return float64(n.Status().Term) })
	reg.NewGaugeFunc("replica_commit_lag",
		"Committed records not yet applied locally (follower read staleness bound).",
		func() float64 { return float64(n.Status().CommitLag) })
	reg.NewGaugeFunc("replica_has_quorum",
		"1 when this replica sees an intact quorum, 0 when replication is degraded.",
		func() float64 {
			if n.Status().HasQuorum {
				return 1
			}
			return 0
		})
}
