package selectsvc

import (
	"sync"
	"time"

	"nodeselect/internal/hierarchy"
	"nodeselect/internal/topology"
)

// hierCache holds the one cluster partition valid for the current
// (snapshot, ledger) epoch. Like the plan cache it is keyed on planEpoch:
// a new poll or any lease commit changes the residual measurements the
// partition's cluster signatures were computed from, so either invalidates
// it. Unlike the plan cache there is nothing to keep per request shape —
// the partition depends only on the residual snapshot.
type hierCache struct {
	mu    sync.Mutex
	epoch planEpoch
	part  *hierarchy.Partition
	valid bool
}

// partitionFor returns the cluster partition of the residual snapshot for
// the given epoch, building (and caching) it on first use. The build runs
// under the cache lock: concurrent first requests of an epoch would
// otherwise each pay the full partition cost just to race on publishing.
func (s *Service) partitionFor(epoch planEpoch, residual *topology.Snapshot) *hierarchy.Partition {
	s.hier.mu.Lock()
	defer s.hier.mu.Unlock()
	if s.hier.valid && s.hier.epoch == epoch {
		return s.hier.part
	}
	start := time.Now()
	p := hierarchy.Build(residual)
	s.hier.part, s.hier.epoch, s.hier.valid = p, epoch, true
	s.metrics.hierPartitionBuilds.Inc()
	s.metrics.hierPartitionSeconds.Observe(time.Since(start).Seconds())
	s.metrics.hierClusters.Set(float64(p.Clusters()))
	s.metrics.hierCollapsed.Set(float64(p.CollapsedNodes()))
	return p
}
