package selectsvc

import (
	"sync"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/topology"
)

// maxTraceRounds bounds the per-decision sweep trace so a pathological
// topology cannot bloat the audit ring; the truncation is flagged.
const maxTraceRounds = 128

// DecisionCandidate is one candidate node set considered during a sweep
// round, summarized as its size and objective score.
type DecisionCandidate struct {
	// Size is the candidate node-set size (always the requested M).
	Size int `json:"size"`
	// Score is the objective value the candidate was scored with.
	Score float64 `json:"score"`
}

// DecisionRound is one edge-deletion round of the selection sweep, the
// audit-log form of core.SweepStep.
type DecisionRound struct {
	// Round is the sweep round (0 = initial whole-graph evaluation).
	Round int `json:"round"`
	// Threshold is the edge metric at which this round's tier was
	// removed.
	Threshold float64 `json:"threshold"`
	// RemovedLinks names the links deleted this round as "a--b" pairs.
	RemovedLinks []string `json:"removed_links,omitempty"`
	// Candidates summarizes every node set scored this round.
	Candidates []DecisionCandidate `json:"candidates,omitempty"`
	// Improved reports whether this round produced a new best.
	Improved bool `json:"improved"`
}

// Decision is one audited placement request: what was asked, what was
// answered, how long it took, and — for the sweep algorithms — the
// round-by-round trace of why (paper Figures 2–3 made inspectable).
type Decision struct {
	// ID increases by one per request, never reused.
	ID int64 `json:"id"`
	// Kind distinguishes audit entries: empty for placement requests,
	// "rebalance_propose" / "rebalance_apply" / "rebalance_apply_failed"
	// for re-placement controller actions.
	Kind string `json:"kind,omitempty"`
	// RequestID is the request's correlation ID (the X-Request-ID header,
	// echoed or minted): the key that links this entry to the client's
	// response and to GET /traces/{id}. Empty for decisions with no
	// originating request, like auto-applied rebalance handovers raised by
	// the background poll.
	RequestID string `json:"request_id,omitempty"`
	// Wall is the server wall-clock time of the request.
	Wall time.Time `json:"wall"`
	// MeasuredAt is the measurement clock of the snapshot answered from
	// (0 when no snapshot was available).
	MeasuredAt float64 `json:"measured_at"`
	// Algo and Mode are the resolved algorithm and query mode.
	Algo string `json:"algo"`
	Mode string `json:"mode"`
	// M is the requested node count (for spec requests, the spec total).
	M int `json:"m"`
	// Spec names the application specification, for spec requests.
	Spec string `json:"spec,omitempty"`
	// Nodes is the returned placement (empty on error). For rebalance
	// entries it is the proposed destination set, with FromNodes the set
	// the lease held and Gain the expected relative improvement.
	Nodes     []string `json:"nodes,omitempty"`
	FromNodes []string `json:"from_nodes,omitempty"`
	Gain      float64  `json:"gain,omitempty"`
	// MinCPU, PairMinBW and MinResource score the returned placement as
	// in SelectResponse.
	MinCPU      float64 `json:"min_cpu,omitempty"`
	PairMinBW   float64 `json:"pair_min_bw,omitempty"`
	MinResource float64 `json:"min_resource,omitempty"`
	// Degraded marks a decision computed while part of the measurement
	// fleet was stale — some inputs were last-known-good values, with
	// DataAgeSeconds the age of the oldest of them.
	Degraded       bool    `json:"degraded,omitempty"`
	DataAgeSeconds float64 `json:"data_age_seconds,omitempty"`
	// LeaseID names the reservation issued for a leased request.
	LeaseID string `json:"lease_id,omitempty"`
	// BatchID and BatchSize report which epoch-batch admission commit
	// carried a leased request, and how many requests shared it. Set only
	// when the service runs with Config.BatchWindow > 0 — rejected leased
	// requests carry them too (the rejection happened inside a batch's
	// solve).
	BatchID   string `json:"batch_id,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	// DurationSeconds is the wall-clock time spent serving the request.
	DurationSeconds float64 `json:"duration_seconds"`
	// Error carries the failure, with ErrorClass one of bad_request,
	// no_data, stale, infeasible, rejected, not_found or internal.
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Bottleneck names the binding resource of an admission rejection
	// ("node" name or "a--b" link).
	Bottleneck string `json:"bottleneck,omitempty"`
	// Cache reports how the plan cache served this decision: "hit" (an
	// identical request was already answered under the same snapshot
	// epoch and ledger version), "miss" (computed and cached), or
	// "bypass" (leased, spec, or randomized requests, which are never
	// cached). Empty when the cache is disabled.
	Cache string `json:"cache,omitempty"`
	// Hierarchy reports how hierarchical selection answered this plain
	// select: "quotient" (the collapsed cluster-first sweep) or
	// "fallback" (the request fell outside the quotient path's
	// proven-equivalent class and the flat path ran). Empty when the
	// service runs without -hierarchy or for leased/spec requests.
	Hierarchy string `json:"hierarchy,omitempty"`
	// Trace is the sweep's round log, oldest first.
	Trace []DecisionRound `json:"trace,omitempty"`
	// TraceTruncated marks a trace cut off at maxTraceRounds rounds.
	TraceTruncated bool `json:"trace_truncated,omitempty"`
}

// auditRing retains the most recent decisions in a fixed-size ring.
type auditRing struct {
	mu    sync.Mutex
	buf   []Decision
	total int64 // decisions ever recorded; also the next ID
}

func newAuditRing(size int) *auditRing {
	return &auditRing{buf: make([]Decision, 0, size)}
}

// add stamps d with the next ID and records it, evicting the oldest
// entry when full. It returns the assigned ID.
func (r *auditRing) add(d Decision) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	d.ID = r.total
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, d)
	} else {
		r.buf[int(d.ID)%cap(r.buf)] = d
	}
	return d.ID
}

// recent returns up to n decisions, newest first (n <= 0 means all
// retained).
func (r *auditRing) recent(n int) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	kept := len(r.buf)
	if n <= 0 || n > kept {
		n = kept
	}
	out := make([]Decision, 0, n)
	for i := 0; i < n; i++ {
		idx := int((r.total-1-int64(i))%int64(cap(r.buf))+int64(cap(r.buf))) % cap(r.buf)
		out = append(out, r.buf[idx])
	}
	return out
}

// size reports how many decisions have ever been recorded.
func (r *auditRing) size() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// decisionRounds converts sweep steps into the audit form, naming links
// and truncating at maxTraceRounds.
func decisionRounds(g *topology.Graph, steps []core.SweepStep) (rounds []DecisionRound, truncated bool) {
	if len(steps) > maxTraceRounds {
		steps, truncated = steps[:maxTraceRounds], true
	}
	rounds = make([]DecisionRound, len(steps))
	for i, st := range steps {
		dr := DecisionRound{Round: st.Round, Threshold: st.Threshold, Improved: st.Improved}
		for _, lid := range st.RemovedLinks {
			l := g.Link(lid)
			dr.RemovedLinks = append(dr.RemovedLinks, g.Node(l.A).Name+"--"+g.Node(l.B).Name)
		}
		for _, c := range st.Candidates {
			dr.Candidates = append(dr.Candidates, DecisionCandidate{Size: len(c.Nodes), Score: c.Score})
		}
		rounds[i] = dr
	}
	return rounds, truncated
}
