package selectsvc

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/lease"
)

// TestBatchedLeasedSelectsCoalesce drives concurrent leased selects
// through a service running the admission pipeline: every decision must
// carry a batch receipt, and with a window far longer than the submit
// spread, the requests must actually share batches rather than each
// paying its own commit.
func TestBatchedLeasedSelectsCoalesce(t *testing.T) {
	const n = 8
	svc, _ := newStarService(t, 12, Config{BatchWindow: 250 * time.Millisecond, BatchMax: n})
	t.Cleanup(svc.StopBatching)
	h := svc.Handler()

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := do(t, h, "POST", "/select", SelectRequest{
				M: 2, Demand: &lease.Demand{CPU: 0.05}, LeaseTTL: 60,
			})
			if w.Code != 200 {
				t.Errorf("leased select status %d: %s", w.Code, w.Body)
			}
		}()
	}
	wg.Wait()

	w := do(t, h, "GET", "/decisions", nil)
	var ds []Decision
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	leased, maxSize := 0, 0
	byBatch := map[string]int{}
	for _, d := range ds {
		if d.LeaseID == "" {
			continue
		}
		leased++
		if d.BatchID == "" || d.BatchSize < 1 {
			t.Fatalf("leased decision %d missing batch receipt: %+v", d.ID, d)
		}
		byBatch[d.BatchID]++
		if d.BatchSize > maxSize {
			maxSize = d.BatchSize
		}
	}
	if leased != n {
		t.Fatalf("%d leased decisions audited, want %d", leased, n)
	}
	if maxSize < 2 {
		t.Fatalf("no coalescing observed: every batch held one request (%v)", byBatch)
	}
	if len(byBatch) >= n {
		t.Fatalf("%d batches for %d requests — pipeline never grouped", len(byBatch), n)
	}
}

// TestBatchedRejectionCarriesReceipt: an infeasible leased request still
// rides a batch's solve, so its audit entry names the batch it was
// rejected in.
func TestBatchedRejectionCarriesReceipt(t *testing.T) {
	svc, _ := newStarService(t, 4, Config{BatchWindow: time.Millisecond})
	t.Cleanup(svc.StopBatching)
	h := svc.Handler()

	w := do(t, h, "POST", "/select", SelectRequest{
		// 200Mbps per flow on 100Mbps access links: nowhere to admit it.
		M: 2, Demand: &lease.Demand{BW: 200e6}, LeaseTTL: 60,
	})
	if w.Code != 409 && w.Code != 422 {
		t.Fatalf("infeasible leased select status %d: %s", w.Code, w.Body)
	}
	dw := do(t, h, "GET", "/decisions?n=1", nil)
	var ds []Decision
	if err := json.Unmarshal(dw.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Error == "" {
		t.Fatalf("decision %+v", ds)
	}
	if ds[0].BatchID == "" {
		t.Fatal("rejected leased decision lost its batch receipt")
	}
}

// TestSerialModeHasNoBatchReceipts: with BatchWindow unset the service
// takes the direct ledger path and audits no batch fields.
func TestSerialModeHasNoBatchReceipts(t *testing.T) {
	svc, _ := newStarService(t, 6, Config{})
	h := svc.Handler()

	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.1}, LeaseTTL: 60,
	})
	if w.Code != 200 {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	dw := do(t, h, "GET", "/decisions?n=1", nil)
	var ds []Decision
	if err := json.Unmarshal(dw.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].BatchID != "" || ds[0].BatchSize != 0 {
		t.Fatalf("serial decision carries batch fields: %+v", ds)
	}
}

// TestBatchedCommitInvalidatesPlanCache: a lease committed through the
// batch pipeline bumps the ledger version exactly like a serial commit,
// so cached advisory plans are flushed — miss, hit, batched commit, miss.
func TestBatchedCommitInvalidatesPlanCache(t *testing.T) {
	svc, _ := idleCacheService(t, 6, Config{Seed: 1, BatchWindow: time.Millisecond})
	t.Cleanup(svc.StopBatching)
	h := svc.Handler()

	advisory := SelectRequest{M: 2}
	selectNodes(t, h, advisory)
	selectNodes(t, h, advisory)

	// Batched leased commit.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.4}, LeaseTTL: 300,
	})
	if w.Code != 200 {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	selectNodes(t, h, advisory)

	dw := do(t, h, "GET", "/decisions", nil)
	var ds []Decision
	if err := json.Unmarshal(dw.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	// Newest first: [advisory miss, leased bypass, advisory hit, advisory miss].
	if len(ds) != 4 {
		t.Fatalf("%d decisions, want 4", len(ds))
	}
	got := []string{ds[3].Cache, ds[2].Cache, ds[1].Cache, ds[0].Cache}
	want := []string{"miss", "hit", "bypass", "miss"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cache labels %v, want %v (batched commit must flush the plan cache)", got, want)
		}
	}
	if ds[1].BatchID == "" {
		t.Fatal("leased decision missing batch receipt")
	}
}
