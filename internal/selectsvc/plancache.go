package selectsvc

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nodeselect/internal/core"
)

// planEpoch identifies one immutable view of the world a plan was computed
// against: the collector's poll counter (every snapshot mode is a pure
// function of the collected series) and the lease ledger's monotonic
// version (the residual view is raw capacity minus committed reservations).
// Either counter moving means every cached plan may be stale, so the cache
// flushes whole-epoch — both counters only ever grow, so an entry keyed
// under an old epoch can never be mistaken for current (no ABA).
type planEpoch struct {
	polls  int
	ledger uint64
}

// cachedPlan is the complete outcome of one selection computation — enough
// to replay the response and the audit entry without rerunning the sweep.
// Failures are cached too: an infeasible request is a pure function of the
// same epoch inputs as a successful one.
type cachedPlan struct {
	res       core.Result
	trace     []DecisionRound
	truncated bool
	// hier is the hierarchy path that computed this plan ("quotient" or
	// "fallback"), or "" when hierarchical selection was not in play.
	hier     string
	err      error
	errClass string
}

// planEntry is one singleflight slot: the first requester computes and
// publishes, concurrent identical requests block on ready.
type planEntry struct {
	ready chan struct{}
	plan  cachedPlan
}

// publish installs the plan and releases every waiter. Must be called
// exactly once.
func (e *planEntry) publish(p cachedPlan) {
	e.plan = p
	close(e.ready)
}

// planCache memoizes selection plans per (epoch, canonical request shape).
// Entries are evicted FIFO beyond the size bound; the whole cache flushes
// when the epoch moves (snapshot update or ledger commit).
type planCache struct {
	size int

	// The mutex guards epoch/entries/order; waiting on an entry's ready
	// channel happens outside it.
	mu      sync.Mutex
	epoch   planEpoch
	entries map[string]*planEntry
	order   []string

	hits, misses, invalidations int
}

// newPlanCache builds a cache bounded to size entries. Size <= 0 is
// rejected by the caller (the service treats negative as disabled and zero
// as the default).
func newPlanCache(size int) *planCache {
	return &planCache{
		size:    size,
		entries: make(map[string]*planEntry),
	}
}

// acquire returns the entry for the key under the given epoch and whether
// the caller owns the computation (true: compute and publish; false: wait
// on ready). An epoch move flushes every entry first.
func (c *planCache) acquire(epoch planEpoch, key string) (entry *planEntry, owner bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.epoch != epoch {
		if len(c.entries) > 0 {
			c.invalidations++
		}
		c.epoch = epoch
		c.entries = make(map[string]*planEntry)
		c.order = c.order[:0]
	}
	if e, ok := c.entries[key]; ok {
		c.hits++
		return e, false
	}
	c.misses++
	e := &planEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	if len(c.order) > c.size {
		evict := c.order[0]
		c.order = c.order[1:]
		// Waiters on an evicted entry keep their own pointer; eviction only
		// makes future identical requests recompute.
		delete(c.entries, evict)
	}
	return e, true
}

// counters returns a consistent snapshot of the hit/miss/invalidation
// counts and the live entry count.
func (c *planCache) counters() (hits, misses, invalidations, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations, len(c.entries)
}

// planKey canonicalizes the request shape: two requests with the same key
// are answered identically within one epoch. Pins are sorted so pin order
// does not defeat the cache. Spec, leased, and random-algorithm requests
// are never keyed (the caller bypasses the cache for them).
func planKey(mode, algo string, req SelectRequest) string {
	pins := append([]string(nil), req.Pin...)
	sort.Strings(pins)
	return fmt.Sprintf("%s|%s|%d|%g|%g|%g|%g|%g|%g|%s",
		mode, algo, req.M, req.Priority, req.RefCapacity, req.MinBW,
		req.MinCPU, req.MinMemoryMB, req.MaxPairLatency,
		strings.Join(pins, ","))
}
