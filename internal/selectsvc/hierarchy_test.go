package selectsvc

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// newHierPair builds two services over identical two-tier cluster sources
// with identical conditions — one answering plain sweeps hierarchically,
// one flat — so responses can be compared field by field.
func newHierPair(t *testing.T) (hier, flat *Service, g *topology.Graph) {
	t.Helper()
	build := func(hierOn bool) (*Service, *topology.Graph) {
		g := testbed.MultiCluster(4, 6, testbed.Ethernet100, 1e9)
		src := remos.NewStaticSource(g)
		for c := 1; c <= 4; c++ {
			src.SetLoad(g.MustNode("c"+string(rune('0'+c))+"-n1"), 2.5)
		}
		src.SetUsedBW(g.Incident(g.MustNode("sw-2"))[0], 800e6)
		svc := New(src, Config{DefaultMode: remos.Current, Seed: 1, Hierarchy: hierOn})
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		src.Advance(2)
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		return svc, g
	}
	hier, g = build(true)
	flat, _ = build(false)
	return hier, flat, g
}

func latestDecision(t *testing.T, svc *Service) Decision {
	t.Helper()
	w := do(t, svc.Handler(), "GET", "/decisions", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("decisions status %d: %s", w.Code, w.Body)
	}
	var ds []Decision
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no decisions recorded")
	}
	return ds[len(ds)-1]
}

// TestHierarchySelectEquivalence drives the wired path end to end: a plain
// sweep select on a hierarchical service answers via the quotient path with
// exactly the flat service's placement, and the audit entry says so.
func TestHierarchySelectEquivalence(t *testing.T) {
	hier, flat, _ := newHierPair(t)
	for _, algo := range []string{"balanced", "bandwidth"} {
		req := SelectRequest{M: 5, Algo: algo}
		hw := do(t, hier.Handler(), "POST", "/select", req)
		fw := do(t, flat.Handler(), "POST", "/select", req)
		if hw.Code != http.StatusOK || fw.Code != http.StatusOK {
			t.Fatalf("%s: status hier=%d flat=%d: %s / %s", algo, hw.Code, fw.Code, hw.Body, fw.Body)
		}
		var hresp, fresp SelectResponse
		if err := json.Unmarshal(hw.Body.Bytes(), &hresp); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(fw.Body.Bytes(), &fresp); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(hresp.Nodes, fresp.Nodes) ||
			hresp.MinCPU != fresp.MinCPU ||
			hresp.PairMinBW != fresp.PairMinBW ||
			hresp.MinResource != fresp.MinResource {
			t.Fatalf("%s: divergence:\nhier: %+v\nflat: %+v", algo, hresp, fresp)
		}
		d := latestDecision(t, hier)
		if d.Hierarchy != "quotient" {
			t.Fatalf("%s: decision hierarchy = %q, want quotient", algo, d.Hierarchy)
		}
		if fd := latestDecision(t, flat); fd.Hierarchy != "" {
			t.Fatalf("%s: flat decision carries hierarchy %q", algo, fd.Hierarchy)
		}
	}
	if got := hier.metrics.hierRequests.With("quotient").Value(); got != 2 {
		t.Fatalf("quotient request count = %v, want 2", got)
	}
	if got := hier.metrics.hierClusters.Value(); got != 4 {
		t.Fatalf("clusters gauge = %v, want 4", got)
	}
	if got := hier.metrics.hierCollapsed.Value(); got != 24 {
		t.Fatalf("collapsed gauge = %v, want 24", got)
	}
}

// TestHierarchyFallbackAudited checks an out-of-class request (pinned
// node) is answered by the flat fallback — same result, audited as such.
func TestHierarchyFallbackAudited(t *testing.T) {
	hier, flat, _ := newHierPair(t)
	req := SelectRequest{M: 3, Algo: "balanced", Pin: []string{"c2-n3"}}
	hw := do(t, hier.Handler(), "POST", "/select", req)
	fw := do(t, flat.Handler(), "POST", "/select", req)
	if hw.Code != http.StatusOK || fw.Code != http.StatusOK {
		t.Fatalf("status hier=%d flat=%d", hw.Code, fw.Code)
	}
	var hresp, fresp SelectResponse
	if err := json.Unmarshal(hw.Body.Bytes(), &hresp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fw.Body.Bytes(), &fresp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(hresp.Nodes, fresp.Nodes) {
		t.Fatalf("fallback divergence: hier %v flat %v", hresp.Nodes, fresp.Nodes)
	}
	if d := latestDecision(t, hier); d.Hierarchy != "fallback" {
		t.Fatalf("decision hierarchy = %q, want fallback", d.Hierarchy)
	}
	if got := hier.metrics.hierRequests.With("fallback").Value(); got != 1 {
		t.Fatalf("fallback request count = %v, want 1", got)
	}
}

// TestHierarchyPartitionEpochCache pins the partition cache contract: one
// build per (snapshot, ledger) epoch — identical and differing requests
// within an epoch share it, a poll or a lease commit invalidates it.
func TestHierarchyPartitionEpochCache(t *testing.T) {
	hier, _, _ := newHierPair(t)
	h := hier.Handler()
	builds := func() float64 { return hier.metrics.hierPartitionBuilds.Value() }

	do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "balanced"})
	if got := builds(); got != 1 {
		t.Fatalf("builds after first select = %v, want 1", got)
	}
	// Same epoch: a cached plan (same request) and a fresh plan
	// (different M) both reuse the partition.
	do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "balanced"})
	do(t, h, "POST", "/select", SelectRequest{M: 6, Algo: "balanced"})
	if got := builds(); got != 1 {
		t.Fatalf("builds within epoch = %v, want 1", got)
	}
	// A lease commit bumps the ledger version: next select rebuilds over
	// the new residual view.
	w := do(t, h, "POST", "/select", SelectRequest{M: 2, Algo: "balanced", LeaseTTL: 60,
		Demand: &lease.Demand{CPU: 0.2, BW: 5e6}})
	if w.Code != http.StatusOK {
		t.Fatalf("lease select status %d: %s", w.Code, w.Body)
	}
	do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "balanced"})
	if got := builds(); got != 2 {
		t.Fatalf("builds after lease commit = %v, want 2", got)
	}
	// A new poll moves the snapshot epoch.
	if err := hier.Poll(); err != nil {
		t.Fatal(err)
	}
	do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "balanced"})
	if got := builds(); got != 3 {
		t.Fatalf("builds after poll = %v, want 3", got)
	}
}
