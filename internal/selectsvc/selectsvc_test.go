package selectsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nodeselect/internal/appspec"
	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// newTestService builds a service over a static CMU source with known
// conditions: m-1..m-3 loaded, the m-16 access link congested.
func newTestService(t *testing.T) (*Service, *remos.StaticSource, *topology.Graph) {
	t.Helper()
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	for _, name := range []string{"m-1", "m-2", "m-3"} {
		src.SetLoad(g.MustNode(name), 3)
	}
	for _, lid := range g.Incident(g.MustNode("m-16")) {
		src.SetUsedBW(lid, 95e6)
	}
	svc := New(src, Config{DefaultMode: remos.Current, Seed: 1})
	// Two polls so Current mode has an interval to rate over.
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	return svc, src, g
}

func do(t *testing.T, h http.Handler, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(data))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestHealthz(t *testing.T) {
	svc, _, _ := newTestService(t)
	w := do(t, svc.Handler(), "GET", "/healthz", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var resp map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp["polls"].(float64) != 2 {
		t.Fatalf("polls = %v", resp["polls"])
	}
}

func TestTopologyEndpoint(t *testing.T) {
	svc, _, _ := newTestService(t)
	w := do(t, svc.Handler(), "GET", "/topology", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	g, snap, err := topology.ReadDocument(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 18 || snap != nil {
		t.Fatalf("topology document wrong: %v, snapshot %v", g, snap)
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	svc, _, g := newTestService(t)
	w := do(t, svc.Handler(), "GET", "/snapshot?mode=current", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	g2, snap, err := topology.ReadDocument(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("snapshot missing")
	}
	if snap.LoadAvg[g2.MustNode("m-1")] != 3 {
		t.Errorf("load not served: %v", snap.LoadAvg[g2.MustNode("m-1")])
	}
	_ = g
	// Unknown mode rejected.
	if w := do(t, svc.Handler(), "GET", "/snapshot?mode=psychic", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad mode status %d", w.Code)
	}
}

func TestSelectPlain(t *testing.T) {
	svc, _, _ := newTestService(t)
	w := do(t, svc.Handler(), "POST", "/select", SelectRequest{M: 4})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 4 {
		t.Fatalf("nodes = %v", resp.Nodes)
	}
	for _, name := range resp.Nodes {
		switch name {
		case "m-1", "m-2", "m-3":
			t.Errorf("selected loaded node %s", name)
		case "m-16":
			t.Errorf("selected congested node %s", name)
		}
	}
	if resp.MinResource <= 0 || resp.MinCPU <= 0 {
		t.Errorf("metrics missing: %+v", resp)
	}
}

func TestSelectWithConstraintsAndPin(t *testing.T) {
	svc, _, _ := newTestService(t)
	w := do(t, svc.Handler(), "POST", "/select", SelectRequest{
		M: 3, Algo: "balanced", MinCPU: 0.4, Pin: []string{"m-7"},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp SelectResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	found := false
	for _, n := range resp.Nodes {
		if n == "m-7" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pinned node missing: %v", resp.Nodes)
	}
}

func TestSelectWithSpec(t *testing.T) {
	svc, _, _ := newTestService(t)
	req := SelectRequest{Spec: mustSpec(`{
		"name": "imaging",
		"groups": [
			{"name": "server", "count": 1, "hosts": ["m-7", "m-8"]},
			{"name": "clients", "count": 3}
		]
	}`)}
	w := do(t, svc.Handler(), "POST", "/select", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp SelectResponse
	json.Unmarshal(w.Body.Bytes(), &resp)
	if len(resp.Nodes) != 4 || len(resp.ByGroup["server"]) != 1 {
		t.Fatalf("resp = %+v", resp)
	}
	srv := resp.ByGroup["server"][0]
	if srv != "m-7" && srv != "m-8" {
		t.Fatalf("server on %s", srv)
	}
}

func TestSelectErrors(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()
	// Malformed JSON.
	r := httptest.NewRequest("POST", "/select", strings.NewReader("{"))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed body status %d", w.Code)
	}
	// Impossible request.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 99}); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("impossible request status %d", w.Code)
	}
	// Unknown pinned node.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 2, Pin: []string{"ghost"}}); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("ghost pin status %d", w.Code)
	}
	// Unknown algorithm: a malformed request (core.ErrBadRequest), so 400.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 2, Algo: "vibes"}); w.Code != http.StatusBadRequest {
		t.Errorf("bad algo status %d", w.Code)
	}
	// Unknown mode.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 2, Mode: "psychic"}); w.Code != http.StatusBadRequest {
		t.Errorf("bad mode status %d", w.Code)
	}
}

func TestNoDataYet(t *testing.T) {
	g := testbed.CMU()
	svc := New(remos.NewStaticSource(g), Config{})
	if w := do(t, svc.Handler(), "GET", "/snapshot", nil); w.Code != http.StatusServiceUnavailable {
		t.Errorf("no-data snapshot status %d", w.Code)
	}
	if w := do(t, svc.Handler(), "POST", "/select", SelectRequest{M: 2}); w.Code != http.StatusServiceUnavailable {
		t.Errorf("no-data select status %d", w.Code)
	}
}

func TestRandomSelectionsVary(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()
	seen := map[string]bool{}
	for i := 0; i < 12; i++ {
		w := do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "random"})
		if w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		var resp SelectResponse
		json.Unmarshal(w.Body.Bytes(), &resp)
		seen[strings.Join(resp.Nodes, ",")] = true
	}
	if len(seen) < 2 {
		t.Fatal("random selections never varied across requests")
	}
}

func mustSpec(s string) *appspec.Spec {
	out, err := appspec.Parse([]byte(s))
	if err != nil {
		panic(err)
	}
	return out
}
