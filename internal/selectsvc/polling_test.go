package selectsvc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
)

// gatedSource wraps a StaticSource so a test can hold a poll in flight:
// Now blocks while the gate is down. It exercises the shutdown-ordering
// guarantee of StartPolling.
type gatedSource struct {
	*remos.StaticSource
	mu      sync.Mutex
	blocked chan struct{} // closed when a poll is waiting at the gate
	gate    chan struct{} // polls proceed once closed
	armed   bool
}

func newGatedSource() *gatedSource {
	return &gatedSource{
		StaticSource: remos.NewStaticSource(testbed.Figure1()),
		blocked:      make(chan struct{}),
		gate:         make(chan struct{}),
	}
}

// arm makes the next Now call park until release.
func (s *gatedSource) arm() {
	s.mu.Lock()
	s.armed = true
	s.mu.Unlock()
}

func (s *gatedSource) Now() float64 {
	s.mu.Lock()
	wait := s.armed
	if wait {
		s.armed = false
		close(s.blocked)
	}
	s.mu.Unlock()
	if wait {
		<-s.gate
	}
	return s.StaticSource.Now()
}

// TestStartPollingStopWaitsForInflightPoll holds a poll in flight at the
// source and asserts the stop function does not return until that poll —
// and the ledger sweep inside it — has finished. This is the regression
// guard for the shutdown ordering bug where selectd closed the lease
// ledger while a background poll could still be sweeping it.
func TestStartPollingStopWaitsForInflightPoll(t *testing.T) {
	src := newGatedSource()
	svc := New(src, Config{DefaultMode: remos.Current, Seed: 1})

	src.arm()
	stop := svc.StartPolling(time.Millisecond, nil)

	// Wait for a ticker-driven poll to park inside the source.
	select {
	case <-src.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("no poll reached the source gate")
	}

	var stopped atomic.Bool
	done := make(chan struct{})
	go func() {
		stop()
		stopped.Store(true)
		close(done)
	}()

	// With the poll still parked, stop must not have returned.
	time.Sleep(20 * time.Millisecond)
	if stopped.Load() {
		t.Fatal("stop returned while a poll was still in flight")
	}

	close(src.gate) // release the parked poll
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not return after the in-flight poll finished")
	}

	polls := svc.Polls()
	// After stop, no further polls may land (the ledger may already be
	// closed by the caller at this point in the daemon's shutdown).
	time.Sleep(10 * time.Millisecond)
	if got := svc.Polls(); got != polls {
		t.Fatalf("polls advanced after stop: %d -> %d", polls, got)
	}

	stop() // idempotent
}
