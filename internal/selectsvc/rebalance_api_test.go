package selectsvc

import (
	"net/http"
	"slices"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/lease"
	"nodeselect/internal/rebalance"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/testbed"
)

type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

type migrationsPage struct {
	Proposals []rebalance.Proposal `json:"proposals"`
	Auto      bool                 `json:"auto"`
}

// The acceptance-criteria walk: admit a lease, shift load onto its nodes,
// watch a proposal appear in GET /migrations with positive gain, apply it,
// and verify the ledger moved the reservation with no oversubscription.
func TestMigrationLifecycleOverHTTP(t *testing.T) {
	g := testbed.Star(8, 100e6)
	src := remos.NewStaticSource(g)
	svc := New(src, Config{
		DefaultMode: remos.Current,
		Seed:        1,
		Rebalance:   &rebalance.Policy{MinGain: 0.1, ConfirmEpochs: 2, MaxPerEpoch: 2},
	})
	poll := func() {
		t.Helper()
		src.Advance(1)
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	poll()
	h := svc.Handler()

	// Admit a leased placement; the request shape rides on the lease.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.2, BW: 10e6}, LeaseTTL: 600,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	sel := decodeJSON[SelectResponse](t, w.Body.Bytes())
	id := sel.Lease.ID
	if sel.Lease.Request == nil || sel.Lease.Request.M != 2 {
		t.Fatalf("lease did not record its request shape: %+v", sel.Lease)
	}

	// Quiet network: no proposals.
	w = do(t, h, "GET", "/migrations", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("migrations status %d: %s", w.Code, w.Body)
	}
	page := decodeJSON[migrationsPage](t, w.Body.Bytes())
	if len(page.Proposals) != 0 || page.Auto {
		t.Fatalf("quiet network page = %+v", page)
	}

	// Load lands on the lease's nodes. Two epochs: debounce, then propose.
	for _, name := range sel.Nodes {
		src.SetLoad(g.MustNode(name), 4)
	}
	poll()
	poll()
	page = decodeJSON[migrationsPage](t, do(t, h, "GET", "/migrations", nil).Body.Bytes())
	if len(page.Proposals) != 1 {
		t.Fatalf("proposals after load shift = %+v", page)
	}
	p := page.Proposals[0]
	if p.Lease != id || p.Gain <= 0.1 {
		t.Fatalf("proposal = %+v", p)
	}
	if !slices.Equal(p.From, sel.Nodes) {
		t.Fatalf("proposal from %v, lease held %v", p.From, sel.Nodes)
	}
	for _, name := range p.To {
		if slices.Contains(sel.Nodes, name) {
			t.Fatalf("proposal keeps a loaded node: %v", p.To)
		}
	}

	// Apply the handover; the lease moves and nothing oversubscribes.
	w = do(t, h, "POST", "/migrations/"+id+"/apply", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("apply status %d: %s", w.Code, w.Body)
	}
	moved := decodeJSON[lease.Info](t, w.Body.Bytes())
	if moved.ID != id || !slices.Equal(moved.Nodes, p.To) {
		t.Fatalf("applied lease = %+v, want nodes %v", moved, p.To)
	}
	cpu, bw := svc.Ledger().MaxCommitted()
	if cpu > 1 || bw > 1 {
		t.Fatalf("oversubscribed after handover: cpu=%v bw=%v", cpu, bw)
	}
	got, ok := svc.Ledger().Get(id)
	if !ok || !slices.Equal(got.Nodes, p.To) {
		t.Fatalf("ledger shows %+v after handover", got)
	}

	// The proposal is consumed; a second apply is a 404.
	page = decodeJSON[migrationsPage](t, do(t, h, "GET", "/migrations", nil).Body.Bytes())
	if len(page.Proposals) != 0 {
		t.Fatalf("applied proposal still listed: %+v", page)
	}
	if w := do(t, h, "POST", "/migrations/"+id+"/apply", nil); w.Code != http.StatusNotFound {
		t.Fatalf("re-apply status %d, want 404", w.Code)
	}

	// The audit trail tells the story: propose then apply, with the
	// from/to sets and the gain.
	var kinds []string
	for _, d := range svc.Decisions(0) {
		if d.Kind != "" {
			kinds = append(kinds, d.Kind)
			if d.LeaseID != id || len(d.FromNodes) != 2 || d.Gain <= 0 {
				t.Fatalf("rebalance audit entry = %+v", d)
			}
		}
	}
	slices.Sort(kinds)
	if !slices.Equal(kinds, []string{"rebalance_apply", "rebalance_propose"}) {
		t.Fatalf("audit kinds = %v", kinds)
	}
}

// Without the controller configured, the migration endpoints are 404s.
func TestMigrationEndpointsDisabled(t *testing.T) {
	svc, _ := newStarService(t, 4, Config{})
	h := svc.Handler()
	if w := do(t, h, "GET", "/migrations", nil); w.Code != http.StatusNotFound {
		t.Fatalf("GET /migrations status %d, want 404", w.Code)
	}
	if w := do(t, h, "POST", "/migrations/lease-0/apply", nil); w.Code != http.StatusNotFound {
		t.Fatalf("apply status %d, want 404", w.Code)
	}
}

// Renewing a lease whose term passed (but which the sweeper has not yet
// reclaimed) is 410 Gone with the "expired" class — not a resurrection and
// not a 404.
func TestRenewExpiredLeaseIsGone(t *testing.T) {
	g := testbed.Star(6, 100e6)
	src := remos.NewStaticSource(g)
	clock := newTestClock()
	ledger, err := lease.New(src.Topology(), lease.Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(src, Config{DefaultMode: remos.Current, Seed: 1, Ledger: ledger})
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	h := svc.Handler()

	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.2}, LeaseTTL: 30,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	id := decodeJSON[SelectResponse](t, w.Body.Bytes()).Lease.ID

	clock.Advance(time.Minute) // past expiry; no sweep has run
	w = do(t, h, "POST", "/leases/"+id+"/renew", map[string]float64{"ttl": 60})
	if w.Code != http.StatusGone {
		t.Fatalf("renew-after-expiry status %d, want 410: %s", w.Code, w.Body)
	}
	envelope := decodeJSON[apiError](t, w.Body.Bytes())
	if envelope.Class != classExpired {
		t.Fatalf("error class %q, want %q", envelope.Class, classExpired)
	}
	// The reservation stayed dead: the capacity is free for a fresh admit.
	if svc.Ledger().Len() != 0 {
		t.Fatal("expired lease still active after rejected renew")
	}
}

// Chaos-harness case: agents flap (pause/resume) while the controller
// evaluates. Degraded snapshots must suppress proposals — no migration
// decisions on stale data — and rebalance_skipped_degraded must count the
// suppressed epochs. Run under -race via make check / make chaos.
func TestRebalanceSuppressedDuringAgentFlap(t *testing.T) {
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	cf, err := agent.StartChaosFleet(src, 1, agent.ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cf.Close)
	ns, err := agent.DialConfig{
		ConnectTimeout:   200 * time.Millisecond,
		IOTimeout:        200 * time.Millisecond,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		AllowPartial:     true,
		Seed:             1,
	}.Dial(g, cf.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)

	svc := New(ns, Config{
		Collector:   remos.CollectorConfig{Period: 1, History: 8, MaxStaleAge: 2.5},
		DefaultMode: remos.Current,
		Seed:        1,
		Rebalance:   &rebalance.Policy{MinGain: 0.1, ConfirmEpochs: 1},
	})
	poll := func() {
		t.Helper()
		src.Advance(1)
		svc.Poll() // partial polls must not abort the loop
	}
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	poll()
	h := svc.Handler()

	// Admit a lease, then load its nodes so the advisor wants to move it.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.2}, LeaseTTL: 600,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	sel := decodeJSON[SelectResponse](t, w.Body.Bytes())
	for _, name := range sel.Nodes {
		src.SetLoad(g.MustNode(name), 4)
	}

	// Flap: pause one agent and age it past the staleness ceiling. Every
	// poll during the flap is a degraded epoch the controller must skip.
	victim := g.MustNode("m-16")
	cf.Proxies[victim].Pause()
	for i := 0; i < 4; i++ {
		poll()
	}
	if state, _ := svc.Health(); state != StateDegraded {
		t.Fatalf("state = %v, want degraded during flap", state)
	}
	skipped := svc.rebal.Metrics().SkippedDegraded()
	if skipped == 0 {
		t.Fatal("rebalance_skipped_degraded did not increment during the flap")
	}
	page := decodeJSON[migrationsPage](t, do(t, h, "GET", "/migrations", nil).Body.Bytes())
	if len(page.Proposals) != 0 {
		t.Fatalf("controller proposed on stale data: %+v", page.Proposals)
	}
	if st := svc.Ledger().Stats(); st.Migrated != 0 {
		t.Fatal("controller migrated on stale data")
	}

	// Resume: once the fleet reads live again, the sustained load shift
	// finally produces a proposal.
	cf.Proxies[victim].Resume()
	time.Sleep(150 * time.Millisecond) // breaker cooldown
	poll()
	if state, _ := svc.Health(); state != StateOK {
		t.Fatalf("state = %v after resume, want ok", state)
	}
	poll()
	page = decodeJSON[migrationsPage](t, do(t, h, "GET", "/migrations", nil).Body.Bytes())
	if len(page.Proposals) != 1 {
		t.Fatalf("proposals after recovery = %+v", page)
	}
	if got := svc.rebal.Metrics().SkippedDegraded(); got != skipped {
		t.Fatalf("healthy epochs still counted as skipped: %v -> %v", skipped, got)
	}
}
