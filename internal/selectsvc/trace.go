package selectsvc

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"nodeselect/internal/reqtrace"
)

// ctxKeyRequestID carries the request's correlation ID independently of
// the tracer, so X-Request-ID echoing, the error envelope, and audit
// entries keep working when tracing is disabled or the route is untraced.
type ctxKeyRequestID struct{}

func withRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID{}, id)
}

// requestID returns the request's correlation ID, "" outside a request.
// Traced requests carry the ID in the trace itself; the separate context
// key serves untraced routes and disabled tracing.
func requestID(ctx context.Context) string {
	if id, ok := ctx.Value(ctxKeyRequestID{}).(string); ok {
		return id
	}
	return reqtrace.TraceID(ctx)
}

// routeLabel maps a request to its metric/trace route label. Go 1.22's
// ServeMux knows the matched pattern but does not expose it, so the label
// is derived by hand — a bounded set, never the raw path (which would blow
// up metric cardinality via {id} segments).
func routeLabel(method, path string) string {
	switch {
	case path == "/select":
		return "select"
	case path == "/topology":
		return "topology"
	case path == "/snapshot":
		return "snapshot"
	case path == "/healthz":
		return "healthz"
	case path == "/decisions":
		return "decisions"
	case path == "/metrics":
		return "metrics"
	case path == "/debug/vars":
		return "debug_vars"
	case path == "/leases":
		return "leases"
	case strings.HasPrefix(path, "/leases/"):
		if method == http.MethodDelete {
			return "lease_release"
		}
		return "lease_renew"
	case path == "/migrations":
		return "migrations"
	case strings.HasPrefix(path, "/migrations/"):
		return "migration_apply"
	case path == "/traces":
		return "traces"
	case strings.HasPrefix(path, "/traces/"):
		return "trace_get"
	default:
		return "other"
	}
}

// tracedRoute reports whether a route's requests get a trace of their own.
// The observability meta-endpoints (scrapes, health probes, the trace API
// itself) are excluded — tracing the act of reading traces would fill the
// sampled ring with noise.
func tracedRoute(route string) bool {
	switch route {
	case "metrics", "debug_vars", "healthz", "traces", "trace_get", "decisions":
		return false
	}
	return true
}

// statusText interns the common status codes so stamping the root span's
// status attribute does not allocate on the hot path.
func statusText(status int) string {
	switch status {
	case http.StatusOK:
		return "200"
	case http.StatusBadRequest:
		return "400"
	case http.StatusNotFound:
		return "404"
	case http.StatusConflict:
		return "409"
	case http.StatusGone:
		return "410"
	case http.StatusUnprocessableEntity:
		return "422"
	case http.StatusInternalServerError:
		return "500"
	case http.StatusServiceUnavailable:
		return "503"
	default:
		return strconv.Itoa(status)
	}
}

// statusClass buckets an HTTP status for the latency histogram's label.
func statusClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// statusWriter captures the response status for the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// middleware wraps the mux with the request-correlation layer: adopt or
// mint the X-Request-ID (echoed on every response), open the root span for
// traced routes, and observe per-route request latency labeled by status
// class. Root spans of failed requests (status >= 400) are marked failed,
// which is what makes the tail sampler always retain them.
func (s *Service) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		id := r.Header.Get("X-Request-ID")
		if !reqtrace.ValidID(id) {
			id = reqtrace.NewID()
		}
		w.Header().Set("X-Request-ID", id)
		// Clustered replicas stamp role/term/lag on every response, so a
		// client reading from a follower knows exactly how stale it may be.
		s.annotateReplica(w.Header())
		route := routeLabel(r.Method, r.URL.Path)
		ctx := r.Context()
		var root *reqtrace.Span
		if tracedRoute(route) {
			ctx, root = s.tracer.StartTrace(ctx, route, route, id)
		}
		if root == nil {
			// Untraced (meta-endpoint or tracing off): the correlation ID
			// rides its own context key instead of the trace.
			ctx = withRequestID(ctx, id)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctx))
		if root != nil {
			root.SetAttr("status", statusText(sw.status))
			if sw.status >= 400 {
				root.Fail(fmt.Errorf("HTTP %d", sw.status))
			}
			root.End()
			// The handler has returned and nothing downstream holds span
			// handles, so a dropped trace's allocation can be reused.
			root.Recycle()
		}
		s.metrics.httpLatency.With(route, statusClass(sw.status)).ObserveSince(t0)
	})
}

// pollSpans retains the latest completed poll trace's span tree, for
// grafting into degraded selects: when part of the fleet is unreadable the
// time "lost" is in the measurement plane, not the request, and the graft
// makes that visible from the select's own trace.
type pollSpans struct {
	mu    sync.Mutex
	spans []reqtrace.SpanData
}

func (p *pollSpans) set(spans []reqtrace.SpanData) {
	p.mu.Lock()
	p.spans = spans
	p.mu.Unlock()
}

func (p *pollSpans) get() []reqtrace.SpanData {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.spans
}

// traceSummary is one row of GET /traces.
type traceSummary struct {
	ID              string    `json:"id"`
	Kind            string    `json:"kind"`
	Status          string    `json:"status"`
	Start           time.Time `json:"start"`
	DurationSeconds float64   `json:"duration_seconds"`
	Retained        string    `json:"retained"`
	Spans           int       `json:"spans"`
}

// handleTraces lists retained traces, newest first. Filters: ?kind=select,
// ?status=error, ?min_duration=50ms (Go duration syntax), ?n=20.
func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := reqtrace.Filter{Kind: q.Get("kind"), Status: q.Get("status")}
	if md := q.Get("min_duration"); md != "" {
		dur, err := time.ParseDuration(md)
		if err != nil || dur < 0 {
			writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
				fmt.Errorf("bad min_duration %q (want a duration like 50ms)", md))
			return
		}
		f.MinDuration = dur
	}
	if n := q.Get("n"); n != "" {
		v, err := strconv.Atoi(n)
		if err != nil || v < 0 {
			writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
				fmt.Errorf("bad n %q", n))
			return
		}
		f.Limit = v
	}
	if st := f.Status; st != "" && st != reqtrace.StatusOK && st != reqtrace.StatusError {
		writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
			fmt.Errorf("bad status %q (want ok or error)", st))
		return
	}
	traces := s.tracer.Store().List(f)
	out := make([]traceSummary, len(traces))
	for i, tr := range traces {
		out[i] = traceSummary{
			ID:              tr.ID,
			Kind:            tr.Kind,
			Status:          tr.Status,
			Start:           tr.Start,
			DurationSeconds: tr.DurationSeconds,
			Retained:        tr.Retained,
			Spans:           len(tr.Spans),
		}
	}
	stats := s.tracer.Store().Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"traces": out,
		"stats":  stats,
	})
}

// handleTraceByID serves one retained trace's full span tree.
func (s *Service) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.tracer.Store().Get(id)
	if !ok {
		writeError(r.Context(), w, http.StatusNotFound, classNotFound, "",
			fmt.Errorf("no retained trace %q (dropped by sampling, evicted, or never seen)", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(tr)
}
