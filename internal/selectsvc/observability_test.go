package selectsvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
)

// promLine matches a valid Prometheus text-format sample line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [^ ]+$`)

// TestMetricsExposition is the acceptance check: after one successful
// /select, /metrics serves valid Prometheus text exposition containing a
// counter, a gauge and a histogram, and /decisions returns the audit
// entry for the request.
func TestMetricsExposition(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()

	if w := do(t, h, "POST", "/select", SelectRequest{M: 4}); w.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", w.Code, w.Body)
	}

	w := do(t, h, "GET", "/metrics", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body := w.Body.String()

	// Counter with labels, from the request we just made.
	if !strings.Contains(body, `selectsvc_requests_total{algo="balanced",mode="current"} 1`) {
		t.Errorf("requests counter missing:\n%s", body)
	}
	// Gauge from the collector (two polls in newTestService).
	if !strings.Contains(body, "remos_window_samples 2") {
		t.Errorf("window gauge missing:\n%s", body)
	}
	// Histogram with buckets, sum and count.
	for _, want := range []string{
		`selectsvc_select_seconds_bucket{le="+Inf"} 1`,
		"selectsvc_select_seconds_sum ",
		"selectsvc_select_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("histogram sample %q missing:\n%s", want, body)
		}
	}
	// HELP/TYPE metadata present and every sample line well-formed.
	if !strings.Contains(body, "# TYPE selectsvc_select_seconds histogram") {
		t.Error("histogram TYPE line missing")
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

func TestDebugVars(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()
	do(t, h, "POST", "/select", SelectRequest{M: 3})

	w := do(t, h, "GET", "/debug/vars", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &vars); err != nil {
		t.Fatalf("vars not JSON: %v", err)
	}
	for _, name := range []string{"selectsvc_requests_total", "selectsvc_select_seconds", "remos_polls_total"} {
		if _, ok := vars[name]; !ok {
			t.Errorf("%s missing from /debug/vars", name)
		}
	}
}

func TestDecisionsEndpoint(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()
	if w := do(t, h, "POST", "/select", SelectRequest{M: 4, Algo: "balanced"}); w.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", w.Code, w.Body)
	}

	w := do(t, h, "GET", "/decisions", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("decisions status %d", w.Code)
	}
	var ds []Decision
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatalf("decisions not JSON: %v", err)
	}
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Algo != "balanced" || d.Mode != "current" || d.M != 4 {
		t.Errorf("decision header wrong: %+v", d)
	}
	if len(d.Nodes) != 4 || d.MinResource <= 0 {
		t.Errorf("decision result wrong: %+v", d)
	}
	if len(d.Trace) == 0 {
		t.Error("balanced decision has no sweep trace")
	} else {
		if d.Trace[0].Round != 0 {
			t.Errorf("trace starts at round %d", d.Trace[0].Round)
		}
		improved := false
		for _, r := range d.Trace {
			improved = improved || r.Improved
		}
		if !improved {
			t.Error("no trace round marked improved")
		}
	}
	if d.DurationSeconds < 0 {
		t.Errorf("duration %v", d.DurationSeconds)
	}

	// Failures are audited too, with an error class.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 99}); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status %d", w.Code)
	}
	w = do(t, h, "GET", "/decisions?n=1", nil)
	ds = nil
	if err := json.Unmarshal(w.Body.Bytes(), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("n=1 returned %d entries", len(ds))
	}
	if ds[0].ErrorClass != "infeasible" || ds[0].Error == "" {
		t.Errorf("failed decision = %+v", ds[0])
	}
	if ds[0].ID != 1 {
		t.Errorf("newest decision ID = %d, want 1", ds[0].ID)
	}

	// Bad ?n rejected.
	if w := do(t, h, "GET", "/decisions?n=bogus", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad n status %d", w.Code)
	}
}

func TestErrorBodiesAndClasses(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()

	cases := []struct {
		name   string
		body   string
		status int
		substr string
		class  string
	}{
		{"malformed json", "{", http.StatusBadRequest, "bad request", "bad_request"},
		{"unknown algo", `{"m":2,"algo":"vibes"}`, http.StatusBadRequest, "unknown algorithm", "bad_request"},
		{"unknown mode", `{"m":2,"mode":"psychic"}`, http.StatusBadRequest, "unknown mode", "bad_request"},
		{"too many nodes", `{"m":99}`, http.StatusUnprocessableEntity, "not enough eligible", "infeasible"},
		{"ghost pin", `{"m":2,"pin":["ghost"]}`, http.StatusUnprocessableEntity, "unknown pinned node", "infeasible"},
		{"impossible floor", `{"m":3,"min_bw":1e15}`, http.StatusUnprocessableEntity, "no feasible node set", "infeasible"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := httptest.NewRequest("POST", "/select", strings.NewReader(tc.body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", w.Code, tc.status, w.Body)
			}
			if !strings.Contains(w.Body.String(), tc.substr) {
				t.Errorf("body %q missing %q", w.Body.String(), tc.substr)
			}
		})
	}

	// The error classes all landed in the counter vec.
	w := do(t, h, "GET", "/metrics", nil)
	body := w.Body.String()
	if !strings.Contains(body, `selectsvc_errors_total{class="bad_request"} 3`) {
		t.Errorf("bad_request errors not counted:\n%s", body)
	}
	if !strings.Contains(body, `selectsvc_errors_total{class="infeasible"} 3`) {
		t.Errorf("infeasible errors not counted:\n%s", body)
	}
}

// TestNoDataClass covers querying before the first poll: 503, useful
// body, and the no_data error class.
func TestNoDataClass(t *testing.T) {
	svc := New(remos.NewStaticSource(testbed.CMU()), Config{})
	h := svc.Handler()
	w := do(t, h, "POST", "/select", SelectRequest{M: 2})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "not enough samples") {
		t.Errorf("body %q", w.Body.String())
	}
	m := do(t, h, "GET", "/metrics", nil)
	if !strings.Contains(m.Body.String(), `selectsvc_errors_total{class="no_data"} 1`) {
		t.Errorf("no_data class not counted:\n%s", m.Body.String())
	}
}

func TestAuditRing(t *testing.T) {
	r := newAuditRing(3)
	if got := r.recent(0); len(got) != 0 {
		t.Fatalf("empty ring returned %v", got)
	}
	for i := 0; i < 5; i++ {
		id := r.add(Decision{Algo: fmt.Sprintf("a%d", i)})
		if id != int64(i) {
			t.Fatalf("add %d returned id %d", i, id)
		}
	}
	if r.size() != 5 {
		t.Fatalf("size = %d", r.size())
	}
	// Only the last 3 retained, newest first.
	got := r.recent(0)
	if len(got) != 3 {
		t.Fatalf("recent = %d entries", len(got))
	}
	for i, want := range []string{"a4", "a3", "a2"} {
		if got[i].Algo != want || got[i].ID != int64(4-i) {
			t.Errorf("recent[%d] = %+v, want algo %s id %d", i, got[i], want, 4-i)
		}
	}
	// n caps the answer.
	if got := r.recent(2); len(got) != 2 || got[0].Algo != "a4" {
		t.Errorf("recent(2) = %+v", got)
	}
	// n larger than retained is clamped.
	if got := r.recent(10); len(got) != 3 {
		t.Errorf("recent(10) = %d entries", len(got))
	}
}
