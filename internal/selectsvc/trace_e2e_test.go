package selectsvc

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/reqtrace"
	"nodeselect/internal/testbed"
)

// doWithID is do() plus an X-Request-ID header on the request.
func doWithID(t *testing.T, h http.Handler, method, path, id string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = httptest.NewRequest(method, path, bytes.NewReader(data))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	if id != "" {
		r.Header.Set("X-Request-ID", id)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// TestTraceLinksRequestAcrossSubsystems is the end-to-end correlation
// proof: one client-chosen request ID comes back in the response header,
// names the audit entry, and resolves via GET /traces/{id} to a span tree
// that crosses the service, admission, core-sweep, and WAL layers.
func TestTraceLinksRequestAcrossSubsystems(t *testing.T) {
	g := testbed.Star(8, 100e6)
	w, err := lease.OpenWAL(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ledger, err := lease.New(g, lease.Options{WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	src := remos.NewStaticSource(g)
	svc := New(src, Config{
		DefaultMode: remos.Current,
		Ledger:      ledger,
		Trace:       reqtrace.Config{SampleRate: 1},
	})
	defer svc.Ledger().Close()
	for i := 0; i < 2; i++ {
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		src.Advance(2)
	}
	h := svc.Handler()

	const reqID = "e2e-leased-select-1"
	resp := doWithID(t, h, "POST", "/select", reqID, SelectRequest{
		M: 3, Demand: &lease.Demand{CPU: 0.3, BW: 10e6}, LeaseTTL: 60,
	})
	if resp.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", resp.Code, resp.Body)
	}

	// Link 1: the response echoes the client's ID.
	if got := resp.Header().Get("X-Request-ID"); got != reqID {
		t.Fatalf("X-Request-ID = %q, want %q", got, reqID)
	}

	// Link 2: the audit entry carries the same ID.
	ds := svc.Decisions(1)
	if len(ds) != 1 || ds[0].RequestID != reqID {
		t.Fatalf("audit decision request_id = %+v, want %q", ds, reqID)
	}

	// Link 3: GET /traces/{id} resolves the ID to the full span tree.
	tw := do(t, h, "GET", "/traces/"+reqID, nil)
	if tw.Code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", tw.Code, tw.Body)
	}
	tr := decodeJSON[reqtrace.Trace](t, tw.Body.Bytes())
	if tr.ID != reqID || tr.Status != reqtrace.StatusOK {
		t.Fatalf("trace header %+v", tr)
	}
	byName := map[string]reqtrace.SpanData{}
	for _, s := range tr.Spans {
		byName[s.Name] = s
	}
	// One request's spans cross four subsystems: the HTTP/service layer
	// (select root, snapshot), the lease ledger (lease.acquire,
	// lease.place), the core sweep, and the WAL (wal.fsync).
	for _, want := range []string{
		"select", "snapshot", "lease.acquire", "lease.place", "core.sweep", "wal.fsync",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("span %q missing from trace (got %d spans)", want, len(tr.Spans))
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	// The tree hangs together: admission under the request root, placement
	// under admission, the sweep under placement.
	if byName["select"].Parent != 0 {
		t.Errorf("select root has parent %d", byName["select"].Parent)
	}
	if byName["lease.acquire"].Parent != byName["select"].ID {
		t.Error("lease.acquire is not a child of the select root")
	}
	if byName["lease.place"].Parent != byName["lease.acquire"].ID {
		t.Error("lease.place is not a child of lease.acquire")
	}
	if byName["core.sweep"].Parent != byName["lease.place"].ID {
		t.Error("core.sweep is not a child of lease.place")
	}
}

// TestDegradedSelectTraceShowsCollectorPoll is the chaos acceptance
// criterion: with a proxy delaying one agent, the trace of a degraded
// select must contain the grafted measurement-plane spans, and the
// slowest span in the tree must be the collector poll — the request
// itself was fast; the staleness it served came from the fleet.
func TestDegradedSelectTraceShowsCollectorPoll(t *testing.T) {
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	for _, id := range g.ComputeNodes() {
		src.SetLoad(id, 1)
	}
	src.SetLoad(g.MustNode("m-5"), 0)

	cf, err := agent.StartChaosFleet(src, 1, agent.ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cf.Close)
	ns, err := agent.DialConfig{
		ConnectTimeout:   200 * time.Millisecond,
		IOTimeout:        200 * time.Millisecond,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		AllowPartial:     true,
		Seed:             1,
	}.Dial(g, cf.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)

	svc := New(ns, Config{
		Collector:    remos.CollectorConfig{Period: 1, History: 8, MaxStaleAge: 2.5},
		DefaultMode:  remos.Current,
		Seed:         1,
		ExcludeStale: true,
		Trace:        reqtrace.Config{SampleRate: 1},
	})
	for i := 0; i < 2; i++ {
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		src.Advance(1)
	}
	h := svc.Handler()

	// Hang m-5's proxy and age it past the staleness ceiling.
	cf.Proxies[g.MustNode("m-5")].Pause()
	for i := 0; i < 4; i++ {
		src.Advance(1)
		svc.Poll()
	}
	// The breaker has opened by now, so the last polls skipped the dead
	// agent quickly. Wait out the cooldown and poll once more: this
	// half-open attempt fails against the paused proxy, and that poll —
	// real network round-trips to the whole fleet plus the failed retry —
	// is the one a degraded select grafts.
	time.Sleep(150 * time.Millisecond)
	src.Advance(1)
	svc.Poll()

	w := do(t, h, "POST", "/select", SelectRequest{M: 4})
	if w.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", w.Code, w.Body)
	}
	sel := decodeJSON[SelectResponse](t, w.Body.Bytes())
	if !sel.Degraded {
		t.Fatalf("select not degraded: %+v", sel)
	}
	id := w.Header().Get("X-Request-ID")
	if !reqtrace.ValidID(id) {
		t.Fatalf("minted request ID %q invalid", id)
	}

	tw := do(t, h, "GET", "/traces/"+id, nil)
	if tw.Code != http.StatusOK {
		t.Fatalf("trace fetch status %d: %s", tw.Code, tw.Body)
	}
	tr := decodeJSON[reqtrace.Trace](t, tw.Body.Bytes())
	var slowest reqtrace.SpanData
	var pollSpan, root reqtrace.SpanData
	for _, s := range tr.Spans {
		if s.DurationSeconds > slowest.DurationSeconds {
			slowest = s
		}
		switch s.Name {
		case "collector.poll":
			pollSpan = s
		case "select":
			root = s
		}
	}
	if pollSpan.Name == "" {
		t.Fatalf("no grafted collector.poll span in trace (%d spans)", len(tr.Spans))
	}
	if pollSpan.Parent != root.ID {
		t.Errorf("grafted poll hangs under span %d, want select root %d", pollSpan.Parent, root.ID)
	}
	// The acceptance criterion: the fleet's measurement round-trips (and
	// the failed attempt against the paused agent) dominate the in-memory
	// request work, so the slowest span in the tree is the collector poll.
	if slowest.Name != "collector.poll" {
		t.Errorf("slowest span is %q (%.6fs), want collector.poll (%.6fs)",
			slowest.Name, slowest.DurationSeconds, pollSpan.DurationSeconds)
	}
}

// TestRequestIDMintedAndInErrorEnvelope covers the no-header and
// bad-header paths: the service mints a ULID, echoes it, stamps it into
// the error envelope, and retains the failed request's trace.
func TestRequestIDMintedAndInErrorEnvelope(t *testing.T) {
	svc, _, _ := newTestService(t)
	h := svc.Handler()

	// No header: a ULID is minted and echoed.
	w := do(t, h, "POST", "/select", SelectRequest{M: 4})
	if w.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", w.Code, w.Body)
	}
	minted := w.Header().Get("X-Request-ID")
	if len(minted) != 26 || !reqtrace.ValidID(minted) {
		t.Fatalf("minted ID %q, want a 26-char ULID", minted)
	}

	// A header the service cannot trust is replaced, not echoed.
	w = doWithID(t, h, "POST", "/select", "has space", SelectRequest{M: 4})
	if got := w.Header().Get("X-Request-ID"); got == "has space" || !reqtrace.ValidID(got) {
		t.Fatalf("invalid client ID echoed back: %q", got)
	}

	// A failing request carries its ID in the JSON envelope, and the
	// error trace is always retained by the tail sampler.
	w = doWithID(t, h, "POST", "/select", "err-req-7", SelectRequest{M: 99})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status %d", w.Code)
	}
	env := decodeJSON[apiError](t, w.Body.Bytes())
	if env.RequestID != "err-req-7" {
		t.Fatalf("envelope request_id = %q, want err-req-7", env.RequestID)
	}
	tw := do(t, h, "GET", "/traces/err-req-7", nil)
	if tw.Code != http.StatusOK {
		t.Fatalf("error trace not retained: %d %s", tw.Code, tw.Body)
	}
	tr := decodeJSON[reqtrace.Trace](t, tw.Body.Bytes())
	if tr.Status != reqtrace.StatusError || tr.Retained != reqtrace.RetainedError {
		t.Fatalf("error trace %+v, want status error / retained error", tr)
	}
}

// TestTracesEndpoint drives the list API: filters, limits, stats, and the
// structured errors for bad parameters and unknown IDs.
func TestTracesEndpoint(t *testing.T) {
	svc, _, _ := newTestService(t)
	svc.tracer = reqtrace.NewTracer(reqtrace.Config{SampleRate: 1})
	h := svc.Handler()

	doWithID(t, h, "POST", "/select", "ok-1", SelectRequest{M: 4})
	doWithID(t, h, "POST", "/select", "ok-2", SelectRequest{M: 3})
	doWithID(t, h, "POST", "/select", "bad-1", SelectRequest{M: 99})

	w := do(t, h, "GET", "/traces", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("traces status %d: %s", w.Code, w.Body)
	}
	var list struct {
		Traces []traceSummary `json:"traces"`
		Stats  reqtrace.Stats `json:"stats"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 3 || list.Stats.Completed != 3 {
		t.Fatalf("list = %d traces, stats %+v", len(list.Traces), list.Stats)
	}
	// Newest first: the failed select leads.
	if list.Traces[0].ID != "bad-1" || list.Traces[0].Status != reqtrace.StatusError {
		t.Fatalf("newest trace %+v", list.Traces[0])
	}

	w = do(t, h, "GET", "/traces?status=error", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].ID != "bad-1" {
		t.Fatalf("status filter = %+v", list.Traces)
	}

	w = do(t, h, "GET", "/traces?kind=select&n=1", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Traces) != 1 || list.Traces[0].Kind != "select" {
		t.Fatalf("kind+n filter = %+v", list.Traces)
	}

	for _, path := range []string{
		"/traces?min_duration=bogus", "/traces?min_duration=-5ms",
		"/traces?n=bogus", "/traces?status=weird",
	} {
		if w := do(t, h, "GET", path, nil); w.Code != http.StatusBadRequest {
			t.Errorf("GET %s status %d, want 400", path, w.Code)
		}
	}
	w = do(t, h, "GET", "/traces/no-such-id", nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown trace status %d", w.Code)
	}
	env := decodeJSON[apiError](t, w.Body.Bytes())
	if env.Class != classNotFound {
		t.Fatalf("envelope %+v", env)
	}
}
