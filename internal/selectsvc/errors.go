package selectsvc

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
)

// apiError is the JSON error envelope every failing endpoint returns:
// the message, a machine-readable class, the HTTP status echoed in the
// body, the request's correlation ID, and — for admission rejections —
// the binding bottleneck.
type apiError struct {
	Error  string `json:"error"`
	Class  string `json:"class"`
	Status int    `json:"status"`
	// Bottleneck names the resource that blocked an admission ("node X" /
	// "link a--b" semantics live in the message; this is the bare name).
	Bottleneck string `json:"bottleneck,omitempty"`
	// RequestID echoes the X-Request-ID header, so a client quoting an
	// error can be matched to its audit entry and trace.
	RequestID string `json:"request_id,omitempty"`
}

// writeError renders the envelope. Every handler error path funnels
// through here so clients can rely on one error shape. The context is the
// request's (for the correlation ID).
func writeError(ctx context.Context, w http.ResponseWriter, status int, class, bottleneck string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{
		Error: err.Error(), Class: class, Status: status, Bottleneck: bottleneck,
		RequestID: requestID(ctx),
	})
}

// Error classes, also used as the selectsvc_errors_total{class} label.
const (
	classBadRequest = "bad_request"
	classNoData     = "no_data"
	classStale      = "stale"
	classInfeasible = "infeasible"
	classRejected   = "rejected"
	classNotFound   = "not_found"
	classExpired    = "expired"
	classNotLeader  = "not_leader"
	classInternal   = "internal"
)

// classifyError maps a failure to its class.
func classifyError(err error) string {
	switch {
	case errors.Is(err, remos.ErrNoData):
		return classNoData
	case errors.Is(err, remos.ErrStale):
		return classStale
	case errors.Is(err, lease.ErrRejected):
		return classRejected
	case errors.Is(err, lease.ErrExpired):
		// Distinct from not_found: the lease existed but its term passed —
		// the client must re-admit through /select, not retry the renew.
		return classExpired
	case errors.Is(err, lease.ErrNotLeader):
		// A write slipped past the redirect guard as leadership changed
		// hands; the client should re-resolve the leader and retry.
		return classNotLeader
	case errors.Is(err, lease.ErrNotFound):
		return classNotFound
	case errors.Is(err, lease.ErrBadDemand):
		return classBadRequest
	case errors.Is(err, core.ErrTooFewNodes), errors.Is(err, core.ErrNoFeasibleSet):
		return classInfeasible
	case errors.Is(err, core.ErrBadRequest):
		return classBadRequest
	default:
		return classInternal
	}
}

// statusFor maps an error class to its HTTP status.
func statusFor(class string) int {
	switch class {
	case classBadRequest:
		return http.StatusBadRequest
	case classNoData, classStale:
		return http.StatusServiceUnavailable
	case classInfeasible:
		return http.StatusUnprocessableEntity
	case classRejected:
		return http.StatusConflict
	case classNotFound:
		return http.StatusNotFound
	case classExpired:
		return http.StatusGone
	case classNotLeader:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
