package selectsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/topology"
)

// idleCacheService builds a service over an idle star topology of n equal
// compute nodes — every selection outcome is then a pure function of the
// lease ledger's residual view, which is what the cache tests manipulate.
func idleCacheService(t *testing.T, n int, cfg Config) (*Service, *topology.Graph) {
	t.Helper()
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	for i := 0; i < n; i++ {
		id := g.AddComputeNode(fmt.Sprintf("c%02d", i))
		g.Connect(hub, id, 100e6, topology.LinkOpts{})
	}
	src := remos.NewStaticSource(g)
	cfg.DefaultMode = remos.Current
	svc := New(src, cfg)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	return svc, g
}

func selectNodes(t *testing.T, h http.Handler, body any) []string {
	t.Helper()
	w := do(t, h, "POST", "/select", body)
	if w.Code != http.StatusOK {
		t.Fatalf("select: status %d: %s", w.Code, w.Body.String())
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Nodes
}

// TestPlanCacheHitMissInvalidate drives the full cache lifecycle through
// the HTTP surface: miss then hit on identical requests (with identical
// responses and traces), whole-cache invalidation on a snapshot poll and
// on a lease commit, and bypass labels for leased and random requests.
func TestPlanCacheHitMissInvalidate(t *testing.T) {
	svc, _ := idleCacheService(t, 6, Config{Seed: 1})
	h := svc.Handler()
	req := SelectRequest{M: 2, Algo: "bandwidth"}

	first := selectNodes(t, h, req)
	second := selectNodes(t, h, req)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached answer diverged: %v vs %v", first, second)
	}
	decs := svc.Decisions(2) // newest first
	if decs[1].Cache != "miss" || decs[0].Cache != "hit" {
		t.Fatalf("cache fields = %q, %q; want miss, hit", decs[1].Cache, decs[0].Cache)
	}
	if !reflect.DeepEqual(decs[0].Trace, decs[1].Trace) {
		t.Fatal("hit served a different trace than the miss recorded")
	}
	if hits, misses, _, entries := svc.plans.counters(); hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("counters = %d hits, %d misses, %d entries", hits, misses, entries)
	}

	// A different shape misses; re-asking it hits.
	selectNodes(t, h, SelectRequest{M: 3, Algo: "bandwidth"})
	if d := svc.Decisions(1)[0]; d.Cache != "miss" {
		t.Fatalf("new shape: cache = %q, want miss", d.Cache)
	}

	// Pin order must not defeat the canonical key.
	selectNodes(t, h, SelectRequest{M: 2, Algo: "bandwidth", Pin: []string{"c01", "c00"}})
	selectNodes(t, h, SelectRequest{M: 2, Algo: "bandwidth", Pin: []string{"c00", "c01"}})
	if d := svc.Decisions(1)[0]; d.Cache != "hit" {
		t.Fatalf("reordered pins: cache = %q, want hit", d.Cache)
	}

	// A poll moves the snapshot epoch: everything cached is flushed.
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	selectNodes(t, h, req)
	if d := svc.Decisions(1)[0]; d.Cache != "miss" {
		t.Fatalf("after poll: cache = %q, want miss", d.Cache)
	}
	if _, _, inv, _ := svc.plans.counters(); inv != 1 {
		t.Fatalf("invalidations = %d, want 1", inv)
	}

	// A lease commit moves the ledger version: flushed again. The leased
	// request itself is a bypass.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 2, Algo: "bandwidth", Demand: &demand09, LeaseTTL: 60,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select: status %d: %s", w.Code, w.Body.String())
	}
	if d := svc.Decisions(1)[0]; d.Cache != "bypass" {
		t.Fatalf("leased: cache = %q, want bypass", d.Cache)
	}
	selectNodes(t, h, req)
	if d := svc.Decisions(1)[0]; d.Cache != "miss" {
		t.Fatalf("after lease commit: cache = %q, want miss", d.Cache)
	}
	if _, _, inv, _ := svc.plans.counters(); inv != 2 {
		t.Fatalf("invalidations = %d, want 2", inv)
	}

	// Random placements are never cached.
	selectNodes(t, h, SelectRequest{M: 2, Algo: "random"})
	if d := svc.Decisions(1)[0]; d.Cache != "bypass" {
		t.Fatalf("random: cache = %q, want bypass", d.Cache)
	}
}

var demand09 = lease.Demand{CPU: 0.9}

// TestPlanCacheDisabled checks that a negative size turns the cache off
// entirely: no cache annotations, no plans state.
func TestPlanCacheDisabled(t *testing.T) {
	svc, _ := idleCacheService(t, 4, Config{Seed: 1, PlanCacheSize: -1})
	if svc.plans != nil {
		t.Fatal("plans cache built despite PlanCacheSize < 0")
	}
	h := svc.Handler()
	req := SelectRequest{M: 2, Algo: "bandwidth"}
	selectNodes(t, h, req)
	selectNodes(t, h, req)
	for _, d := range svc.Decisions(2) {
		if d.Cache != "" {
			t.Fatalf("cache = %q with caching disabled, want empty", d.Cache)
		}
	}
}

// TestPlanCacheFailureCached checks that deterministic failures are cached
// too: the second infeasible request is a hit with the same error class.
func TestPlanCacheFailureCached(t *testing.T) {
	svc, _ := idleCacheService(t, 4, Config{Seed: 1})
	h := svc.Handler()
	req := SelectRequest{M: 3, Algo: "bandwidth", MinBW: 1e12} // unsatisfiable floor
	for i, want := range []string{"miss", "hit"} {
		w := do(t, h, "POST", "/select", req)
		if w.Code == http.StatusOK {
			t.Fatalf("request %d unexpectedly succeeded", i)
		}
		d := svc.Decisions(1)[0]
		if d.Cache != want || d.ErrorClass != classInfeasible {
			t.Fatalf("request %d: cache=%q class=%q, want %s/%s",
				i, d.Cache, d.ErrorClass, want, classInfeasible)
		}
	}
}

// TestPlanCacheSingleflight fires identical concurrent requests within one
// epoch and checks exactly one computation happened (one miss, the rest
// hits) and that everyone got the same nodes.
func TestPlanCacheSingleflight(t *testing.T) {
	svc, _ := idleCacheService(t, 8, Config{Seed: 1})
	h := svc.Handler()
	const workers = 16
	body, err := json.Marshal(SelectRequest{M: 3, Algo: "balanced"})
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]string, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := httptest.NewRequest("POST", "/select", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				t.Errorf("worker %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
			var resp SelectResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Errorf("worker %d: %v", i, err)
				return
			}
			results[i] = resp.Nodes
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < workers; i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Fatalf("worker %d got %v, worker 0 got %v", i, results[i], results[0])
		}
	}
	hits, misses, _, _ := svc.plans.counters()
	if misses != 1 || hits != workers-1 {
		t.Fatalf("singleflight: %d misses, %d hits; want 1, %d", misses, hits, workers-1)
	}
}

// TestPlanCacheLeaseRace is the cache-correctness race test: concurrent
// plain selects hammer the cache while leases that flip the optimal
// placement are acquired and released. After every acquire (release), a
// probe select sharing the hammering requests' cache key must reflect the
// post-commit residual — never a plan computed before the commit it raced
// with. Run under -race (make check does).
func TestPlanCacheLeaseRace(t *testing.T) {
	svc, _ := idleCacheService(t, 6, Config{Seed: 1})
	h := svc.Handler()
	// All nodes idle and equal: compute selection tie-breaks to c00, c01.
	req := SelectRequest{M: 2, Algo: "compute"}

	// The hammer goroutines must not call t.Fatal (wrong goroutine), so
	// they issue raw requests and only flag non-2xx statuses.
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					r := httptest.NewRequest("POST", "/select", bytes.NewReader(body))
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, r)
					if rec.Code != http.StatusOK {
						t.Errorf("hammer select: status %d: %s", rec.Code, rec.Body.String())
						return
					}
				}
			}
		}()
	}
	// Poller: moves the snapshot epoch concurrently with lease churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := svc.Poll(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	contains := func(nodes []string, name string) bool {
		for _, n := range nodes {
			if n == name {
				return true
			}
		}
		return false
	}
	for i := 0; i < 40; i++ {
		// Reserve nearly all CPU on the tie-break winners: the optimal
		// placement flips to c02, c03.
		w := do(t, h, "POST", "/select", SelectRequest{
			M: 2, Algo: "compute", Pin: []string{"c00", "c01"},
			Demand: &demand09, LeaseTTL: 60,
		})
		if w.Code != http.StatusOK {
			t.Fatalf("acquire %d: status %d: %s", i, w.Code, w.Body.String())
		}
		var resp SelectResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if nodes := selectNodes(t, h, req); contains(nodes, "c00") || contains(nodes, "c01") {
			t.Fatalf("iteration %d: select after acquire returned %v — a plan from before the lease commit", i, nodes)
		}
		if w := do(t, h, "DELETE", "/leases/"+resp.Lease.ID, nil); w.Code != http.StatusOK {
			t.Fatalf("release %d: status %d: %s", i, w.Code, w.Body.String())
		}
		if nodes := selectNodes(t, h, req); !contains(nodes, "c00") || !contains(nodes, "c01") {
			t.Fatalf("iteration %d: select after release returned %v — a plan from before the release", i, nodes)
		}
	}
	close(stop)
	wg.Wait()
}
