package selectsvc

import (
	"nodeselect/internal/lease"
	"nodeselect/internal/metrics"
	"nodeselect/internal/reqtrace"
)

// minresourceBuckets spans the balanced objective's useful range: fine
// steps across [0,1] (fractional availability) plus headroom for
// priority-weighted scores above 1. Bounds are built as i/20 rather than
// accumulated 0.05 steps so the le labels render cleanly ("0.15", not
// "0.15000000000000002").
var minresourceBuckets = func() []float64 {
	out := make([]float64, 0, 23)
	for i := 1; i <= 20; i++ {
		out = append(out, float64(i)/20)
	}
	return append(out, 1.25, 1.5, 2)
}()

// svcMetrics is the service's own metric set (the collector and agent
// client register theirs separately on the same registry).
type svcMetrics struct {
	// selectsvc_requests_total{algo,mode}
	requests *metrics.CounterVec
	// selectsvc_errors_total{class}: bad_request | no_data | infeasible |
	// internal
	errors *metrics.CounterVec
	// selectsvc_select_seconds: wall-clock latency of /select
	latency *metrics.Histogram
	// selectsvc_minresource: balanced objective of each returned placement
	minresource *metrics.Histogram
	// selectsvc_last_minresource: the most recent placement's objective
	lastMinresource *metrics.Gauge
	// selectsvc_decisions_total: audit entries recorded
	decisions *metrics.Counter
	// selectsvc_partial_polls_total: polls that refreshed only part of the
	// agent fleet and served the rest from last-known-good data
	partialPolls *metrics.Counter
	// selectsvc_health_state: 0 ok, 1 degraded, 2 unhealthy
	healthState *metrics.Gauge
	// selectsvc_degraded_selects_total: placements computed while some
	// measurement inputs were last-known-good rather than live
	degradedSelects *metrics.Counter
	// selectsvc_lease_ops_total{op}: ledger transitions — acquire | renew |
	// release | expire (fed by the ledger's event observer, so expiries from
	// the background sweeper are counted too)
	leaseOps *metrics.CounterVec
	// selectsvc_admission_rejects_total{kind}: leased requests turned away
	// at admission, by binding resource kind (node | link)
	admissionRejects *metrics.CounterVec
	// selectsvc_plan_cache_requests_total{result}: how the plan cache
	// served each plain /select — hit | miss | bypass
	planCacheRequests *metrics.CounterVec
	// selectsvc_http_request_seconds{route,status_class}: per-endpoint
	// request latency, observed by the correlation middleware for every
	// route (including the meta-endpoints that are not traced)
	httpLatency *metrics.HistogramVec
	// selectsvc_hierarchy_requests_total{path}: plain selects routed
	// through hierarchical selection, by answering path — quotient
	// (collapsed sweep) or fallback (flat path)
	hierRequests *metrics.CounterVec
	// selectsvc_hierarchy_partition_builds_total: cluster partitions
	// computed (one per (snapshot, ledger) epoch that served a
	// hierarchical select)
	hierPartitionBuilds *metrics.Counter
	// selectsvc_hierarchy_partition_build_seconds: wall-clock cost of one
	// partition build
	hierPartitionSeconds *metrics.Histogram
	// selectsvc_hierarchy_clusters: logical clusters in the current
	// partition
	hierClusters *metrics.Gauge
	// selectsvc_hierarchy_collapsed_nodes: compute nodes absorbed into
	// clusters in the current partition
	hierCollapsed *metrics.Gauge
}

func newSvcMetrics(reg *metrics.Registry) *svcMetrics {
	return &svcMetrics{
		requests: reg.NewCounterVec("selectsvc_requests_total",
			"Placement requests served, by algorithm and query mode.", "algo", "mode"),
		errors: reg.NewCounterVec("selectsvc_errors_total",
			"Placement requests failed, by error class.", "class"),
		latency: reg.NewHistogram("selectsvc_select_seconds",
			"Wall-clock latency of one placement request.", nil),
		minresource: reg.NewHistogram("selectsvc_minresource",
			"Balanced objective (minresource) of returned placements.", minresourceBuckets),
		lastMinresource: reg.NewGauge("selectsvc_last_minresource",
			"Balanced objective of the most recent placement."),
		decisions: reg.NewCounter("selectsvc_decisions_total",
			"Decisions recorded in the audit ring."),
		partialPolls: reg.NewCounter("selectsvc_partial_polls_total",
			"Polls that refreshed only part of the agent fleet."),
		healthState: reg.NewGauge("selectsvc_health_state",
			"Service health: 0 ok, 1 degraded, 2 unhealthy."),
		degradedSelects: reg.NewCounter("selectsvc_degraded_selects_total",
			"Placements computed from partially stale measurements."),
		leaseOps: reg.NewCounterVec("selectsvc_lease_ops_total",
			"Reservation ledger transitions, by operation.", "op"),
		admissionRejects: reg.NewCounterVec("selectsvc_admission_rejects_total",
			"Leased placements rejected at admission, by binding resource kind.", "kind"),
		planCacheRequests: reg.NewCounterVec("selectsvc_plan_cache_requests_total",
			"Plan cache outcomes for /select requests: hit, miss, or bypass.", "result"),
		httpLatency: reg.NewHistogramVec("selectsvc_http_request_seconds",
			"HTTP request latency, by route and status class.", nil,
			"route", "status_class"),
		hierRequests: reg.NewCounterVec("selectsvc_hierarchy_requests_total",
			"Hierarchical selects served, by answering path (quotient or fallback).", "path"),
		hierPartitionBuilds: reg.NewCounter("selectsvc_hierarchy_partition_builds_total",
			"Cluster partitions built, one per epoch that served a hierarchical select."),
		hierPartitionSeconds: reg.NewHistogram("selectsvc_hierarchy_partition_build_seconds",
			"Wall-clock cost of building one cluster partition.", nil),
		hierClusters: reg.NewGauge("selectsvc_hierarchy_clusters",
			"Logical clusters in the current partition."),
		hierCollapsed: reg.NewGauge("selectsvc_hierarchy_collapsed_nodes",
			"Compute nodes collapsed into clusters in the current partition."),
	}
}

// registerTraceGauges exposes the trace store's retention counters, so an
// operator can see at a glance whether the tail sampler is dropping,
// retaining, or evicting — and how much.
func registerTraceGauges(reg *metrics.Registry, t *reqtrace.Tracer) {
	st := t.Store()
	reg.NewGaugeFunc("selectsvc_traces_completed_total",
		"Traces finished (retained or not) since start.",
		func() float64 { return float64(st.Stats().Completed) })
	reg.NewGaugeFunc("selectsvc_traces_retained",
		"Traces currently retained in the store, across both rings.",
		func() float64 {
			s := st.Stats()
			return float64(s.RetainedImportant + s.RetainedSampled)
		})
	reg.NewGaugeFunc("selectsvc_traces_dropped_total",
		"Healthy fast traces dropped by the tail sampler.",
		func() float64 { return float64(st.Stats().Dropped) })
	reg.NewGaugeFunc("selectsvc_traces_evicted_total",
		"Retained traces later evicted by ring capacity.",
		func() float64 { return float64(st.Stats().Evicted) })
}

// registerPlanCacheGauges exposes the plan cache's internal state. Like the
// lease gauges these are GaugeFuncs sampled at scrape time — the cache owns
// the counters and flush bookkeeping happens under its lock.
func registerPlanCacheGauges(reg *metrics.Registry, c *planCache) {
	reg.NewGaugeFunc("selectsvc_plan_cache_entries",
		"Plans cached for the current (snapshot, ledger) epoch.",
		func() float64 { _, _, _, n := c.counters(); return float64(n) })
	reg.NewGaugeFunc("selectsvc_plan_cache_invalidations_total",
		"Whole-cache flushes caused by a snapshot update or lease commit.",
		func() float64 { _, _, inv, _ := c.counters(); return float64(inv) })
}

// registerLeaseGauges exposes the ledger's live commitment state. These are
// GaugeFuncs — sampled at scrape time — because the ledger already owns the
// state and keeping a parallel counter in sync would just invite drift.
func registerLeaseGauges(reg *metrics.Registry, l *lease.Ledger) {
	reg.NewGaugeFunc("selectsvc_leases_active",
		"Active (unexpired) leases in the reservation ledger.",
		func() float64 { return float64(l.Len()) })
	reg.NewGaugeFunc("selectsvc_lease_max_cpu_committed",
		"Largest committed CPU fraction across nodes (1 = some node fully reserved).",
		func() float64 { cpu, _ := l.MaxCommitted(); return cpu })
	reg.NewGaugeFunc("selectsvc_lease_max_bw_committed",
		"Largest committed bandwidth fraction across links (1 = some link fully reserved).",
		func() float64 { _, bw := l.MaxCommitted(); return bw })
}
