package selectsvc

import "nodeselect/internal/metrics"

// minresourceBuckets spans the balanced objective's useful range: fine
// steps across [0,1] (fractional availability) plus headroom for
// priority-weighted scores above 1. Bounds are built as i/20 rather than
// accumulated 0.05 steps so the le labels render cleanly ("0.15", not
// "0.15000000000000002").
var minresourceBuckets = func() []float64 {
	out := make([]float64, 0, 23)
	for i := 1; i <= 20; i++ {
		out = append(out, float64(i)/20)
	}
	return append(out, 1.25, 1.5, 2)
}()

// svcMetrics is the service's own metric set (the collector and agent
// client register theirs separately on the same registry).
type svcMetrics struct {
	// selectsvc_requests_total{algo,mode}
	requests *metrics.CounterVec
	// selectsvc_errors_total{class}: bad_request | no_data | infeasible |
	// internal
	errors *metrics.CounterVec
	// selectsvc_select_seconds: wall-clock latency of /select
	latency *metrics.Histogram
	// selectsvc_minresource: balanced objective of each returned placement
	minresource *metrics.Histogram
	// selectsvc_last_minresource: the most recent placement's objective
	lastMinresource *metrics.Gauge
	// selectsvc_decisions_total: audit entries recorded
	decisions *metrics.Counter
}

func newSvcMetrics(reg *metrics.Registry) *svcMetrics {
	return &svcMetrics{
		requests: reg.NewCounterVec("selectsvc_requests_total",
			"Placement requests served, by algorithm and query mode.", "algo", "mode"),
		errors: reg.NewCounterVec("selectsvc_errors_total",
			"Placement requests failed, by error class.", "class"),
		latency: reg.NewHistogram("selectsvc_select_seconds",
			"Wall-clock latency of one placement request.", nil),
		minresource: reg.NewHistogram("selectsvc_minresource",
			"Balanced objective (minresource) of returned placements.", minresourceBuckets),
		lastMinresource: reg.NewGauge("selectsvc_last_minresource",
			"Balanced objective of the most recent placement."),
		decisions: reg.NewCounter("selectsvc_decisions_total",
			"Decisions recorded in the audit ring."),
	}
}
