package selectsvc

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/replica"
	"nodeselect/internal/testbed"
)

// fakeCluster is a scriptable ClusterNode: the test flips role/leader to
// simulate elections without running consensus.
type fakeCluster struct {
	role   string
	leader string
	term   uint64
	lag    uint64
	quorum bool
}

func (f *fakeCluster) Status() replica.Status {
	return replica.Status{
		ID: "self", Role: f.role, Term: f.term, Leader: f.leader,
		CommitLag: f.lag, HasQuorum: f.quorum,
	}
}
func (f *fakeCluster) IsLeader() bool   { return f.role == "leader" }
func (f *fakeCluster) LeaderID() string { return f.leader }

func newClusteredService(t *testing.T, fc *fakeCluster) *Service {
	t.Helper()
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	svc := New(src, Config{
		DefaultMode:    remos.Current,
		Seed:           1,
		Replica:        fc,
		PeerClientURLs: map[string]string{"ldr": "http://leader.example:8800"},
	})
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	return svc
}

// Followers must bounce every mutating endpoint to the leader with a 307
// (method- and body-preserving) while reads keep serving locally.
func TestFollowerRedirectsWrites(t *testing.T) {
	fc := &fakeCluster{role: "follower", leader: "ldr", term: 3, lag: 2, quorum: true}
	svc := newClusteredService(t, fc)
	h := svc.Handler()

	writes := []struct {
		method, path string
		body         any
	}{
		{"POST", "/select", SelectRequest{M: 2, Demand: &lease.Demand{CPU: 0.1}, LeaseTTL: 30}},
		{"POST", "/leases/lease-0/renew", map[string]float64{"ttl": 60}},
		{"DELETE", "/leases/lease-0", nil},
	}
	for _, wr := range writes {
		w := do(t, h, wr.method, wr.path, wr.body)
		if w.Code != http.StatusTemporaryRedirect {
			t.Fatalf("%s %s on follower: status %d, want 307: %s", wr.method, wr.path, w.Code, w.Body)
		}
		loc := w.Header().Get("Location")
		if !strings.HasPrefix(loc, "http://leader.example:8800") || !strings.HasSuffix(loc, wr.path) {
			t.Fatalf("%s %s Location = %q", wr.method, wr.path, loc)
		}
	}

	// Advisory (unleased) selects are reads: any replica answers them.
	w := do(t, h, "POST", "/select", SelectRequest{M: 2})
	if w.Code != http.StatusOK {
		t.Fatalf("advisory select on follower: status %d: %s", w.Code, w.Body)
	}
	// And every response carries the follower's staleness annotation.
	if got := w.Header().Get("X-Replica-Role"); got != "follower" {
		t.Fatalf("X-Replica-Role = %q", got)
	}
	if got := w.Header().Get("X-Replica-Term"); got != "3" {
		t.Fatalf("X-Replica-Term = %q", got)
	}
	if got := w.Header().Get("X-Replica-Commit-Lag"); got != "2" {
		t.Fatalf("X-Replica-Commit-Lag = %q", got)
	}
}

// Mid-election there is no leader to redirect to: writes get a 503 with
// class not_leader, never a hang or a local commit.
func TestNoLeaderWritesUnavailable(t *testing.T) {
	fc := &fakeCluster{role: "candidate", leader: "", term: 4, quorum: false}
	svc := newClusteredService(t, fc)
	w := do(t, svc.Handler(), "POST", "/select",
		SelectRequest{M: 2, Demand: &lease.Demand{CPU: 0.1}, LeaseTTL: 30})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", w.Code, w.Body)
	}
	var e apiError
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Class != classNotLeader {
		t.Fatalf("class = %q, want %q", e.Class, classNotLeader)
	}
}

// The leader takes writes directly — the guard must not get in the way.
func TestLeaderServesWrites(t *testing.T) {
	fc := &fakeCluster{role: "leader", leader: "self", term: 2, quorum: true}
	svc := newClusteredService(t, fc)
	w := do(t, svc.Handler(), "POST", "/select",
		SelectRequest{M: 2, Demand: &lease.Demand{CPU: 0.1}, LeaseTTL: 30})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select on leader: status %d: %s", w.Code, w.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Lease == nil {
		t.Fatalf("no lease in response: %s", w.Body)
	}
}

// /healthz must grow a replication block and degrade on lost quorum.
func TestHealthzReplicationBlock(t *testing.T) {
	fc := &fakeCluster{role: "leader", leader: "self", term: 2, quorum: true}
	svc := newClusteredService(t, fc)

	read := func() (string, map[string]any) {
		w := do(t, svc.Handler(), "GET", "/healthz", nil)
		if w.Code != http.StatusOK {
			t.Fatalf("healthz status %d: %s", w.Code, w.Body)
		}
		var resp map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		rep, ok := resp["replication"].(map[string]any)
		if !ok {
			t.Fatalf("no replication block: %s", w.Body)
		}
		return resp["state"].(string), rep
	}

	state, rep := read()
	if state != StateOK || rep["state"] != StateOK {
		t.Fatalf("quorate: state=%v replication.state=%v", state, rep["state"])
	}
	if rep["role"] != "leader" || rep["term"].(float64) != 2 {
		t.Fatalf("replication block %v", rep)
	}

	fc.quorum = false
	state, rep = read()
	if state != StateDegraded || rep["state"] != StateDegraded {
		t.Fatalf("lost quorum: state=%v replication.state=%v, want degraded", state, rep["state"])
	}
}

// The replica_* gauges must be scrapeable and track the node's state.
func TestReplicaGauges(t *testing.T) {
	fc := &fakeCluster{role: "follower", leader: "ldr", term: 7, lag: 3, quorum: true}
	svc := newClusteredService(t, fc)
	w := do(t, svc.Handler(), "GET", "/metrics", nil)
	body := w.Body.String()
	for _, want := range []string{
		"replica_role 0",
		"replica_term 7",
		"replica_commit_lag 3",
		"replica_has_quorum 1",
		"replica_write_redirects_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
	fc.role = "leader"
	fc.lag = 0
	w = do(t, svc.Handler(), "GET", "/metrics", nil)
	if !strings.Contains(w.Body.String(), "replica_role 2") {
		t.Fatalf("metrics did not track role change")
	}
}
