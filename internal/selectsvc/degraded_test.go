package selectsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// newDegradedService builds a service over a real loopback agent fleet
// fronted by chaos proxies, with tight deadlines and a staleness ceiling.
func newDegradedService(t *testing.T) (*Service, *remos.StaticSource, *agent.ChaosFleet, *topology.Graph) {
	t.Helper()
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	// Every compute node carries load except m-5: the most attractive
	// candidate is exactly the one whose agent we will crash.
	for _, id := range g.ComputeNodes() {
		src.SetLoad(id, 1)
	}
	src.SetLoad(g.MustNode("m-5"), 0)

	cf, err := agent.StartChaosFleet(src, 1, agent.ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cf.Close)
	ns, err := agent.DialConfig{
		ConnectTimeout:   200 * time.Millisecond,
		IOTimeout:        200 * time.Millisecond,
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		AllowPartial:     true,
		Seed:             1,
	}.Dial(g, cf.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ns.Close)

	svc := New(ns, Config{
		Collector:    remos.CollectorConfig{Period: 1, History: 8, MaxStaleAge: 2.5},
		DefaultMode:  remos.Current,
		Seed:         1,
		ExcludeStale: true,
	})
	for i := 0; i < 2; i++ {
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		src.Advance(1)
	}
	return svc, src, cf, g
}

// TestServiceDegradesAndRecovers drives the service through a crashed
// agent: /healthz turns degraded (but stays 200), /select keeps answering
// with the degradation declared, the stale node is excluded from
// candidacy, and repair restores full health.
func TestServiceDegradesAndRecovers(t *testing.T) {
	svc, src, cf, g := newDegradedService(t)
	h := svc.Handler()

	resp := decodeHealth(t, do(t, h, "GET", "/healthz", nil), http.StatusOK)
	if resp["state"] != StateOK {
		t.Fatalf("baseline state = %v", resp["state"])
	}

	// Crash m-5's agent and age it past the staleness ceiling.
	victim := g.MustNode("m-5")
	cf.Proxies[victim].Pause()
	for i := 0; i < 4; i++ {
		src.Advance(1)
		svc.Poll() // partial poll: must not error out the loop
	}

	resp = decodeHealth(t, do(t, h, "GET", "/healthz", nil), http.StatusOK)
	if resp["state"] != StateDegraded {
		t.Fatalf("faulted state = %v, want degraded", resp["state"])
	}
	if resp["partial_polls"].(float64) < 4 {
		t.Fatalf("partial_polls = %v", resp["partial_polls"])
	}
	meas := resp["measurements"].(map[string]any)
	if meas["state"] != remos.HealthDegraded || meas["stale_nodes"].(float64) != 1 {
		t.Fatalf("measurements = %v", meas)
	}

	// Selection keeps working, declares the degradation, and does not
	// place on the invisible node even though it looks idle.
	w := do(t, h, "POST", "/select", SelectRequest{M: 4})
	if w.Code != http.StatusOK {
		t.Fatalf("select status %d: %s", w.Code, w.Body)
	}
	var sel SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sel); err != nil {
		t.Fatal(err)
	}
	if !sel.Degraded || sel.DataAgeSeconds <= 2.5 {
		t.Fatalf("degradation not declared: %+v", sel)
	}
	if !slices.Contains(sel.StaleNodes, "m-5") {
		t.Fatalf("stale nodes = %v, want m-5 listed", sel.StaleNodes)
	}
	if slices.Contains(sel.Nodes, "m-5") {
		t.Fatalf("stale node selected: %v", sel.Nodes)
	}

	// The audit trail records the stale-served request.
	dec := svc.Decisions(1)
	if len(dec) != 1 || !dec[0].Degraded || dec[0].DataAgeSeconds <= 2.5 {
		t.Fatalf("audit entry = %+v", dec)
	}

	// Repair: resume, wait out the breaker cooldown, and poll live again.
	cf.Proxies[victim].Resume()
	time.Sleep(150 * time.Millisecond)
	src.Advance(1)
	if err := svc.Poll(); err != nil {
		t.Fatalf("post-repair poll: %v", err)
	}
	resp = decodeHealth(t, do(t, h, "GET", "/healthz", nil), http.StatusOK)
	if resp["state"] != StateOK {
		t.Fatalf("post-repair state = %v", resp["state"])
	}
}

// TestServiceUnhealthyWhenAllStale: with the whole fleet down past the
// ceiling, /healthz turns 503 and /select fails typed rather than serving
// a view of a network that may be gone.
func TestServiceUnhealthyWhenAllStale(t *testing.T) {
	svc, src, cf, _ := newDegradedService(t)
	h := svc.Handler()

	for _, p := range cf.Proxies {
		p.Pause()
	}
	for i := 0; i < 4; i++ {
		src.Advance(1)
		svc.Poll()
	}

	resp := decodeHealth(t, do(t, h, "GET", "/healthz", nil), http.StatusServiceUnavailable)
	if resp["state"] != StateUnhealthy {
		t.Fatalf("state = %v, want unhealthy", resp["state"])
	}
	w := do(t, h, "POST", "/select", SelectRequest{M: 4})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("select status = %d, want 503: %s", w.Code, w.Body)
	}
	dec := svc.Decisions(1)
	if len(dec) != 1 || dec[0].ErrorClass != "stale" {
		t.Fatalf("audit entry = %+v", dec)
	}
}

func decodeHealth(t *testing.T, w *httptest.ResponseRecorder, wantStatus int) map[string]any {
	t.Helper()
	if w.Code != wantStatus {
		t.Fatalf("healthz status = %d, want %d: %s", w.Code, wantStatus, w.Body)
	}
	var resp map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}
