package selectsvc

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// newStarService builds a service over an idle star: n unloaded nodes, each
// behind a 100 Mbps access link. Capacity math is then exact — a lease of
// {cpu, bw} debits cpu per selected node and (m-1)*bw per access link.
func newStarService(t *testing.T, n int, cfg Config) (*Service, *topology.Graph) {
	t.Helper()
	g := testbed.Star(n, 100e6)
	src := remos.NewStaticSource(g)
	if cfg.DefaultMode == 0 {
		cfg.DefaultMode = remos.Current
	}
	svc := New(src, cfg)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	return svc, g
}

func decodeJSON[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	return v
}

func TestLeaseLifecycleOverHTTP(t *testing.T) {
	svc, _ := newStarService(t, 8, Config{})
	h := svc.Handler()

	// Acquire via POST /select with a demand.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 3, Demand: &lease.Demand{CPU: 0.3, BW: 20e6}, LeaseTTL: 60,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	resp := decodeJSON[SelectResponse](t, w.Body.Bytes())
	if resp.Lease == nil {
		t.Fatal("no lease in response")
	}
	// TTLSeconds is the *remaining* lifetime, so a hair under the request.
	if len(resp.Nodes) != 3 || resp.Lease.TTLSeconds > 60 || resp.Lease.TTLSeconds < 59 {
		t.Fatalf("lease %+v nodes %v", resp.Lease, resp.Nodes)
	}
	id := resp.Lease.ID

	// It shows up in GET /leases with its commitments.
	w = do(t, h, "GET", "/leases", nil)
	list := decodeJSON[struct {
		Leases         []lease.Info `json:"leases"`
		MaxCPU         float64      `json:"max_cpu_committed"`
		MaxBWCommitted float64      `json:"max_bw_committed"`
	}](t, w.Body.Bytes())
	if len(list.Leases) != 1 || list.Leases[0].ID != id {
		t.Fatalf("lease list %+v", list)
	}
	if list.MaxCPU != 0.3 {
		t.Fatalf("max cpu committed %v", list.MaxCPU)
	}
	// 3 nodes on a star: each access link carries 2 of the 3 flows.
	if want := 2 * 20e6 / 100e6; list.MaxBWCommitted != want {
		t.Fatalf("max bw committed %v, want %v", list.MaxBWCommitted, want)
	}

	// Renew extends the expiry.
	w = do(t, h, "POST", "/leases/"+id+"/renew", map[string]float64{"ttl": 120})
	if w.Code != http.StatusOK {
		t.Fatalf("renew status %d: %s", w.Code, w.Body)
	}
	info := decodeJSON[lease.Info](t, w.Body.Bytes())
	if info.TTLSeconds > 120 || info.TTLSeconds < 119 {
		t.Fatalf("renewed ttl %v", info.TTLSeconds)
	}

	// Release returns the capacity.
	w = do(t, h, "DELETE", "/leases/"+id, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("release status %d: %s", w.Code, w.Body)
	}
	if svc.Ledger().Len() != 0 {
		t.Fatal("lease survived release")
	}

	// Releasing again is a structured 404.
	w = do(t, h, "DELETE", "/leases/"+id, nil)
	if w.Code != http.StatusNotFound {
		t.Fatalf("double release status %d", w.Code)
	}
	env := decodeJSON[apiError](t, w.Body.Bytes())
	if env.Class != classNotFound || env.Status != http.StatusNotFound {
		t.Fatalf("envelope %+v", env)
	}
}

func TestAdmissionRejectionNamesBottleneck(t *testing.T) {
	svc, _ := newStarService(t, 4, Config{})
	h := svc.Handler()

	// m=3 on a star puts 2 flows on each selected access link, so 60 Mbps
	// per flow needs 120 Mbps through a 100 Mbps link: unadmittable at any
	// placement, and escalation cannot fix it.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 3, Demand: &lease.Demand{BW: 60e6}, LeaseTTL: 30,
	})
	if w.Code != http.StatusConflict {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	env := decodeJSON[apiError](t, w.Body.Bytes())
	if env.Class != classRejected || env.Status != http.StatusConflict {
		t.Fatalf("envelope %+v", env)
	}
	if env.Bottleneck == "" {
		t.Fatalf("rejection does not name its bottleneck: %+v", env)
	}
	if svc.Ledger().Len() != 0 {
		t.Fatal("rejected lease left state behind")
	}

	// The rejection is visible in the audit trail and the metrics.
	ds := svc.Decisions(1)
	if len(ds) != 1 || ds[0].ErrorClass != classRejected || ds[0].Bottleneck == "" {
		t.Fatalf("audit decision %+v", ds)
	}
	m := do(t, h, "GET", "/metrics", nil).Body.String()
	for _, want := range []string{
		`selectsvc_admission_rejects_total{kind="link"} 1`,
		`selectsvc_errors_total{class="rejected"} 1`,
	} {
		if !containsLine(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestContentionClassifiedAsRejected(t *testing.T) {
	svc, _ := newStarService(t, 4, Config{})
	h := svc.Handler()

	// First tenant reserves most of every node.
	w := do(t, h, "POST", "/select", SelectRequest{
		M: 4, Demand: &lease.Demand{CPU: 0.9}, LeaseTTL: 300,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("first tenant status %d: %s", w.Code, w.Body)
	}
	// The same ask now fails — not because the network can't host it, but
	// because the first tenant holds the capacity: 409, not 422.
	w = do(t, h, "POST", "/select", SelectRequest{
		M: 4, Demand: &lease.Demand{CPU: 0.9}, LeaseTTL: 300,
	})
	if w.Code != http.StatusConflict {
		t.Fatalf("second tenant status %d: %s", w.Code, w.Body)
	}
	env := decodeJSON[apiError](t, w.Body.Bytes())
	if env.Class != classRejected {
		t.Fatalf("envelope %+v", env)
	}
	// An unleased (advisory) select still works: it sees the residual view
	// but carries no floors of its own.
	if w := do(t, h, "POST", "/select", SelectRequest{M: 2}); w.Code != http.StatusOK {
		t.Fatalf("advisory select status %d: %s", w.Code, w.Body)
	}
}

// TestErrorEnvelopeEverywhere drives every distinct error path and checks
// the one JSON envelope shape comes back: error, class, and the echoed
// status.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	svc, _ := newStarService(t, 4, Config{})
	h := svc.Handler()

	cases := []struct {
		name, method, path string
		body               any
		status             int
		class              string
	}{
		{"select bad mode", "POST", "/select", SelectRequest{M: 2, Mode: "psychic"}, 400, classBadRequest},
		{"select bad algo", "POST", "/select", SelectRequest{M: 2, Algo: "vibes"}, 400, classBadRequest},
		{"select infeasible", "POST", "/select", SelectRequest{M: 99}, 422, classInfeasible},
		{"select ghost pin", "POST", "/select", SelectRequest{M: 2, Pin: []string{"ghost"}}, 422, classInfeasible},
		{"select bad demand", "POST", "/select",
			SelectRequest{M: 2, Demand: &lease.Demand{CPU: 1.5}}, 400, classBadRequest},
		{"snapshot bad mode", "GET", "/snapshot?mode=psychic", nil, 400, classBadRequest},
		{"snapshot bad view", "GET", "/snapshot?view=sideways", nil, 400, classBadRequest},
		{"decisions bad n", "GET", "/decisions?n=bogus", nil, 400, classBadRequest},
		{"renew unknown lease", "POST", "/leases/lease-99/renew", nil, 404, classNotFound},
		{"release unknown lease", "DELETE", "/leases/lease-99", nil, 404, classNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, h, tc.method, tc.path, tc.body)
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d (%s)", w.Code, tc.status, w.Body)
			}
			env := decodeJSON[apiError](t, w.Body.Bytes())
			if env.Class != tc.class || env.Status != tc.status || env.Error == "" {
				t.Fatalf("envelope %+v, want class %q status %d", env, tc.class, tc.status)
			}
		})
	}
}

// TestConcurrentLeasedSelects hammers POST /select from many goroutines
// (run under -race) and then checks the ledger's books: no node's CPU and
// no link's bandwidth may ever be committed past capacity, no matter how
// the admissions interleave.
func TestConcurrentLeasedSelects(t *testing.T) {
	const nodes, workers = 8, 24
	svc, g := newStarService(t, nodes, Config{})
	h := svc.Handler()

	var wg sync.WaitGroup
	codes := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, h, "POST", "/select", SelectRequest{
				M: 2, Demand: &lease.Demand{CPU: 0.5, BW: 10e6}, LeaseTTL: 300,
			})
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()

	admitted, rejected := 0, 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
			admitted++
		case http.StatusConflict, http.StatusUnprocessableEntity:
			rejected++
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}
	// 8 idle nodes at 0.5 CPU each fit at most 16 node-slots = 8 two-node
	// leases; with 24 attempts some must be admitted and some rejected.
	if admitted == 0 || admitted > nodes {
		t.Fatalf("admitted %d of %d (rejected %d)", admitted, workers, rejected)
	}
	if admitted+rejected != workers {
		t.Fatalf("admitted %d + rejected %d != %d", admitted, rejected, workers)
	}
	nodeCPU, linkBW := svc.Ledger().Committed()
	for id, c := range nodeCPU {
		if c > 1+1e-9 {
			t.Errorf("node %s oversubscribed: %v CPU committed", g.Node(id).Name, c)
		}
	}
	for lid, b := range linkBW {
		if capacity := g.Link(lid).Capacity; b > capacity+1e-3 {
			t.Errorf("link %d oversubscribed: %v of %v committed", lid, b, capacity)
		}
	}
	if svc.Ledger().Len() != admitted {
		t.Fatalf("ledger holds %d leases, admitted %d", svc.Ledger().Len(), admitted)
	}
}

// TestLeaseSurvivesServiceRestart runs two Services over the same WAL
// directory in sequence, as a restarted selectd would.
func TestLeaseSurvivesServiceRestart(t *testing.T) {
	dir := t.TempDir()
	g := testbed.Star(4, 100e6)

	start := func() *Service {
		w, err := lease.OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		ledger, err := lease.New(g, lease.Options{WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		src := remos.NewStaticSource(g)
		svc := New(src, Config{DefaultMode: remos.Current, Ledger: ledger})
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		src.Advance(2)
		if err := svc.Poll(); err != nil {
			t.Fatal(err)
		}
		return svc
	}

	svc1 := start()
	w := do(t, svc1.Handler(), "POST", "/select", SelectRequest{
		M: 2, Demand: &lease.Demand{CPU: 0.4, BW: 5e6}, LeaseTTL: 600,
	})
	if w.Code != http.StatusOK {
		t.Fatalf("leased select status %d: %s", w.Code, w.Body)
	}
	resp := decodeJSON[SelectResponse](t, w.Body.Bytes())
	id := resp.Lease.ID
	wantCPU, wantBW := svc1.Ledger().Committed()
	if err := svc1.Ledger().Close(); err != nil {
		t.Fatal(err)
	}

	svc2 := start()
	defer svc2.Ledger().Close()
	got, ok := svc2.Ledger().Get(id)
	if !ok {
		t.Fatalf("lease %s lost across restart", id)
	}
	if got.CPU != 0.4 || got.BW != 5e6 {
		t.Fatalf("recovered lease %+v", got)
	}
	gotCPU, gotBW := svc2.Ledger().Committed()
	for i := range wantCPU {
		if gotCPU[i] != wantCPU[i] {
			t.Fatalf("node %d cpu %v != %v after restart", i, gotCPU[i], wantCPU[i])
		}
	}
	for i := range wantBW {
		if gotBW[i] != wantBW[i] {
			t.Fatalf("link %d bw %v != %v after restart", i, gotBW[i], wantBW[i])
		}
	}
	// New leases keep advancing the ID sequence.
	w = do(t, svc2.Handler(), "POST", "/select", SelectRequest{M: 1, LeaseTTL: 60})
	if w.Code != http.StatusOK {
		t.Fatalf("post-restart select status %d: %s", w.Code, w.Body)
	}
	resp2 := decodeJSON[SelectResponse](t, w.Body.Bytes())
	if resp2.Lease.ID == id {
		t.Fatalf("lease ID %s reused after restart", id)
	}
}

// containsLine reports whether a metrics exposition contains the exact
// sample line.
func containsLine(body, line string) bool {
	for _, l := range splitLines(body) {
		if l == line {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
