// Package selectsvc exposes the node selection framework as a long-running
// HTTP service: a background loop polls a Remos measurement source, and
// clients ask for placements with a JSON request — the shape a cluster
// scheduler or launcher would integrate against. It composes the full
// stack of the paper: measurement (internal/remos), the application
// specification interface (internal/appspec), and the selection procedures
// (internal/core).
//
// The service is fully observable: every layer reports into a
// metrics.Registry served at /metrics (Prometheus text format) and
// /debug/vars (JSON), and every placement request is recorded in a
// bounded audit ring served at /decisions — including, for the sweep
// algorithms, the round-by-round edge-deletion trace that explains why
// those nodes were chosen.
package selectsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nodeselect/internal/appspec"
	"nodeselect/internal/core"
	"nodeselect/internal/metrics"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/topology"
)

// Refresher is implemented by sources that need an explicit round-trip per
// poll (agent.NetSource); sources without it are polled directly.
type Refresher interface {
	Refresh() error
	Invalidate()
}

// Config tunes the service.
type Config struct {
	// Collector configures the measurement loop.
	Collector remos.CollectorConfig
	// DefaultMode is the query mode used when a request names none
	// (default Window).
	DefaultMode remos.Mode
	// Seed seeds the random-baseline stream.
	Seed int64
	// Registry receives the service's metrics (and the collector's and
	// agent client's). Nil creates a private registry; either way the
	// registry is served at /metrics and /debug/vars. A registry must
	// not be shared between two Services — metric names would collide.
	Registry *metrics.Registry
	// AuditSize bounds the decision audit ring (default 64).
	AuditSize int
}

// Service is the placement daemon. Create with New, drive polling with
// Poll (or an external ticker calling it), and serve HTTP with Handler.
type Service struct {
	mu        sync.Mutex
	src       remos.Source
	collector *remos.Collector
	cfg       Config
	rng       *randx.Source
	selects   int

	registry *metrics.Registry
	metrics  *svcMetrics
	audit    *auditRing
}

// New builds a service over a measurement source.
func New(src remos.Source, cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	auditSize := cfg.AuditSize
	if auditSize <= 0 {
		auditSize = 64
	}
	collector := remos.NewCollector(src, cfg.Collector)
	collector.SetMetrics(remos.NewCollectorMetrics(reg))
	if ns, ok := src.(*agent.NetSource); ok {
		ns.SetMetrics(agent.NewClientMetrics(reg))
	}
	return &Service{
		src:       src,
		collector: collector,
		cfg:       cfg,
		rng:       randx.New(cfg.Seed).Split("selectd"),
		registry:  reg,
		metrics:   newSvcMetrics(reg),
		audit:     newAuditRing(auditSize),
	}
}

// Registry returns the service's metrics registry, for callers that want
// to add their own instruments alongside.
func (s *Service) Registry() *metrics.Registry { return s.registry }

// Poll takes one measurement sample (refreshing the source if it needs it).
func (s *Service) Poll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.src.(Refresher); ok {
		if err := r.Refresh(); err != nil {
			return err
		}
	}
	s.collector.Poll()
	return nil
}

// Polls reports how many samples have been collected.
func (s *Service) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Polls()
}

// Decisions returns up to n recent audit entries, newest first (n <= 0
// means all retained).
func (s *Service) Decisions(n int) []Decision { return s.audit.recent(n) }

// SelectRequest is the POST /select body. Either Spec or M must be given.
type SelectRequest struct {
	// M is the node count for a plain request.
	M int `json:"m,omitempty"`
	// Algo names the algorithm (default "balanced").
	Algo string `json:"algo,omitempty"`
	// Mode names the query mode: current, window, forecast, trend
	// (default the service's DefaultMode).
	Mode string `json:"mode,omitempty"`
	// Priority, RefCapacity, MinBW, MinCPU, MinMemoryMB, MaxPairLatency
	// mirror core.Request.
	Priority       float64 `json:"priority,omitempty"`
	RefCapacity    float64 `json:"ref_capacity,omitempty"`
	MinBW          float64 `json:"min_bw,omitempty"`
	MinCPU         float64 `json:"min_cpu,omitempty"`
	MinMemoryMB    float64 `json:"min_memory_mb,omitempty"`
	MaxPairLatency float64 `json:"max_pair_latency,omitempty"`
	// Pin lists node names that must be selected.
	Pin []string `json:"pin,omitempty"`
	// Spec is a full application specification; when present it
	// overrides M and the floors above.
	Spec *appspec.Spec `json:"spec,omitempty"`
}

// SelectResponse is the POST /select reply.
type SelectResponse struct {
	Nodes       []string            `json:"nodes"`
	ByGroup     map[string][]string `json:"by_group,omitempty"`
	MinCPU      float64             `json:"min_cpu"`
	PairMinBW   float64             `json:"pair_min_bw"`
	MinResource float64             `json:"min_resource"`
	MeasuredAt  float64             `json:"measured_at"`
}

// Handler returns the service's HTTP handler:
//
//	GET  /topology   — the measured topology document
//	GET  /snapshot   — topology + current snapshot (?mode=window...)
//	GET  /healthz    — liveness, poll count, decision count
//	GET  /decisions  — recent placement decisions with traces (?n=10)
//	GET  /metrics    — Prometheus text exposition of the registry
//	GET  /debug/vars — JSON dump of the registry
//	POST /select     — run a placement (SelectRequest -> SelectResponse)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /decisions", s.handleDecisions)
	mux.Handle("GET /metrics", s.registry.Handler())
	mux.Handle("GET /debug/vars", s.registry.JSONHandler())
	mux.HandleFunc("POST /select", s.handleSelect)
	return mux
}

func (s *Service) handleTopology(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	g := s.collector.Graph()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, g, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) parseMode(name string) (remos.Mode, error) {
	switch name {
	case "":
		return s.cfg.DefaultMode, nil
	case "current":
		return remos.Current, nil
	case "window":
		return remos.Window, nil
	case "forecast":
		return remos.Forecast, nil
	case "trend":
		return remos.Trend, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// snapshotFor answers a snapshot under an already-parsed mode.
func (s *Service) snapshotFor(mode remos.Mode) (*topology.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Snapshot(mode, false)
}

func (s *Service) snapshot(modeName string) (*topology.Snapshot, error) {
	mode, err := s.parseMode(modeName)
	if err != nil {
		return nil, err
	}
	return s.snapshotFor(mode)
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.snapshot(r.URL.Query().Get("mode"))
	if err != nil {
		status := http.StatusBadRequest
		if err == remos.ErrNoData {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, snap.Graph, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	polls := s.collector.Polls()
	selects := s.selects
	s.mu.Unlock()
	resp := map[string]any{
		"polls":     polls,
		"selects":   selects,
		"decisions": s.audit.size(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.audit.recent(n))
}

// classifyError maps a selection failure to its metrics class.
func classifyError(err error) string {
	switch {
	case errors.Is(err, remos.ErrNoData):
		return "no_data"
	case errors.Is(err, core.ErrTooFewNodes), errors.Is(err, core.ErrNoFeasibleSet):
		return "infeasible"
	case errors.Is(err, core.ErrBadRequest):
		return "bad_request"
	default:
		return "internal"
	}
}

func (s *Service) handleSelect(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	d := Decision{Wall: t0}

	// finish records the decision in the audit ring (success and failure
	// alike) and observes the request latency.
	finish := func() {
		d.DurationSeconds = time.Since(t0).Seconds()
		s.metrics.latency.Observe(d.DurationSeconds)
		s.audit.add(d)
		s.metrics.decisions.Inc()
	}
	fail := func(status int, class string, err error) {
		d.Error = err.Error()
		d.ErrorClass = class
		s.metrics.errors.With(class).Inc()
		finish()
		http.Error(w, err.Error(), status)
	}

	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad_request", fmt.Errorf("bad request: %w", err))
		return
	}
	algo := req.Algo
	if algo == "" {
		algo = core.AlgoBalanced
	}
	d.Algo = algo
	d.M = req.M
	if req.Spec != nil {
		d.Spec = req.Spec.Name
	}
	mode, err := s.parseMode(req.Mode)
	if err != nil {
		d.Mode = req.Mode
		fail(http.StatusBadRequest, "bad_request", err)
		return
	}
	d.Mode = mode.String()
	s.metrics.requests.With(algo, d.Mode).Inc()

	snap, err := s.snapshotFor(mode)
	if err != nil {
		status := http.StatusBadRequest
		if err == remos.ErrNoData {
			status = http.StatusServiceUnavailable
		}
		fail(status, classifyError(err), err)
		return
	}
	d.MeasuredAt = snap.Time
	g := snap.Graph

	s.mu.Lock()
	src := s.rng.SplitN(s.selects)
	s.selects++
	s.mu.Unlock()

	resp := SelectResponse{MeasuredAt: snap.Time}
	if req.Spec != nil {
		place, err := appspec.SelectForSpec(snap, req.Spec, algo, src)
		if err != nil {
			fail(http.StatusUnprocessableEntity, classifyError(err), err)
			return
		}
		resp.Nodes = nodeNames(g, place.Nodes)
		resp.ByGroup = map[string][]string{}
		for name, ids := range place.ByGroup {
			resp.ByGroup[name] = nodeNames(g, ids)
		}
		resp.MinCPU = place.Score.MinCPU
		resp.PairMinBW = finite(place.Score.PairMinBW)
		resp.MinResource = place.Score.MinResource
		d.M = len(place.Nodes)
	} else {
		creq := core.Request{
			M:               req.M,
			ComputePriority: req.Priority,
			RefCapacity:     req.RefCapacity,
			MinBW:           req.MinBW,
			MinCPU:          req.MinCPU,
			MinMemoryMB:     req.MinMemoryMB,
			MaxPairLatency:  req.MaxPairLatency,
		}
		for _, name := range req.Pin {
			id := g.NodeByName(name)
			if id < 0 {
				fail(http.StatusUnprocessableEntity, "bad_request",
					fmt.Errorf("unknown pinned node %q", name))
				return
			}
			creq.Pinned = append(creq.Pinned, id)
		}
		// The sweep algorithms report their decision trace; the others
		// have no sweep to trace.
		var opts core.Options
		var steps []core.SweepStep
		if algo == core.AlgoBalanced || algo == core.AlgoBandwidth {
			opts.Observer = func(st core.SweepStep) { steps = append(steps, st) }
		}
		res, err := core.SelectOpt(algo, snap, creq, src, opts)
		d.Trace, d.TraceTruncated = decisionRounds(g, steps)
		if err != nil {
			fail(http.StatusUnprocessableEntity, classifyError(err), err)
			return
		}
		resp.Nodes = res.Names(g)
		resp.MinCPU = res.MinCPU
		resp.PairMinBW = finite(res.PairMinBW)
		resp.MinResource = res.MinResource
	}

	d.Nodes = resp.Nodes
	d.MinCPU = resp.MinCPU
	d.PairMinBW = resp.PairMinBW
	d.MinResource = resp.MinResource
	s.metrics.minresource.Observe(resp.MinResource)
	s.metrics.lastMinresource.Set(resp.MinResource)
	finish()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func nodeNames(g *topology.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	sort.Strings(out)
	return out
}

func finite(v float64) float64 {
	if v > 1e300 {
		return 0
	}
	return v
}
