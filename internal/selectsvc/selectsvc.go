// Package selectsvc exposes the node selection framework as a long-running
// HTTP service: a background loop polls a Remos measurement source, and
// clients ask for placements with a JSON request — the shape a cluster
// scheduler or launcher would integrate against. It composes the full
// stack of the paper: measurement (internal/remos), the application
// specification interface (internal/appspec), and the selection procedures
// (internal/core).
package selectsvc

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"nodeselect/internal/appspec"
	"nodeselect/internal/core"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/topology"
)

// Refresher is implemented by sources that need an explicit round-trip per
// poll (agent.NetSource); sources without it are polled directly.
type Refresher interface {
	Refresh() error
	Invalidate()
}

// Config tunes the service.
type Config struct {
	// Collector configures the measurement loop.
	Collector remos.CollectorConfig
	// DefaultMode is the query mode used when a request names none
	// (default Window).
	DefaultMode remos.Mode
	// Seed seeds the random-baseline stream.
	Seed int64
}

// Service is the placement daemon. Create with New, drive polling with
// Poll (or an external ticker calling it), and serve HTTP with Handler.
type Service struct {
	mu        sync.Mutex
	src       remos.Source
	collector *remos.Collector
	cfg       Config
	rng       *randx.Source
	selects   int
}

// New builds a service over a measurement source.
func New(src remos.Source, cfg Config) *Service {
	return &Service{
		src:       src,
		collector: remos.NewCollector(src, cfg.Collector),
		cfg:       cfg,
		rng:       randx.New(cfg.Seed).Split("selectd"),
	}
}

// Poll takes one measurement sample (refreshing the source if it needs it).
func (s *Service) Poll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.src.(Refresher); ok {
		if err := r.Refresh(); err != nil {
			return err
		}
	}
	s.collector.Poll()
	return nil
}

// Polls reports how many samples have been collected.
func (s *Service) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Polls()
}

// SelectRequest is the POST /select body. Either Spec or M must be given.
type SelectRequest struct {
	// M is the node count for a plain request.
	M int `json:"m,omitempty"`
	// Algo names the algorithm (default "balanced").
	Algo string `json:"algo,omitempty"`
	// Mode names the query mode: current, window, forecast, trend
	// (default the service's DefaultMode).
	Mode string `json:"mode,omitempty"`
	// Priority, RefCapacity, MinBW, MinCPU, MinMemoryMB, MaxPairLatency
	// mirror core.Request.
	Priority       float64 `json:"priority,omitempty"`
	RefCapacity    float64 `json:"ref_capacity,omitempty"`
	MinBW          float64 `json:"min_bw,omitempty"`
	MinCPU         float64 `json:"min_cpu,omitempty"`
	MinMemoryMB    float64 `json:"min_memory_mb,omitempty"`
	MaxPairLatency float64 `json:"max_pair_latency,omitempty"`
	// Pin lists node names that must be selected.
	Pin []string `json:"pin,omitempty"`
	// Spec is a full application specification; when present it
	// overrides M and the floors above.
	Spec *appspec.Spec `json:"spec,omitempty"`
}

// SelectResponse is the POST /select reply.
type SelectResponse struct {
	Nodes       []string            `json:"nodes"`
	ByGroup     map[string][]string `json:"by_group,omitempty"`
	MinCPU      float64             `json:"min_cpu"`
	PairMinBW   float64             `json:"pair_min_bw"`
	MinResource float64             `json:"min_resource"`
	MeasuredAt  float64             `json:"measured_at"`
}

// Handler returns the service's HTTP handler:
//
//	GET  /topology  — the measured topology document
//	GET  /snapshot  — topology + current snapshot (?mode=window...)
//	GET  /healthz   — liveness and poll count
//	POST /select    — run a placement (SelectRequest -> SelectResponse)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /select", s.handleSelect)
	return mux
}

func (s *Service) handleTopology(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	g := s.collector.Graph()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, g, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) parseMode(name string) (remos.Mode, error) {
	switch name {
	case "":
		return s.cfg.DefaultMode, nil
	case "current":
		return remos.Current, nil
	case "window":
		return remos.Window, nil
	case "forecast":
		return remos.Forecast, nil
	case "trend":
		return remos.Trend, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

func (s *Service) snapshot(modeName string) (*topology.Snapshot, error) {
	mode, err := s.parseMode(modeName)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Snapshot(mode, false)
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.snapshot(r.URL.Query().Get("mode"))
	if err != nil {
		status := http.StatusBadRequest
		if err == remos.ErrNoData {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, snap.Graph, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := map[string]any{"polls": s.collector.Polls(), "selects": s.selects}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *Service) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	snap, err := s.snapshot(req.Mode)
	if err != nil {
		status := http.StatusBadRequest
		if err == remos.ErrNoData {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	algo := req.Algo
	if algo == "" {
		algo = core.AlgoBalanced
	}
	g := snap.Graph

	s.mu.Lock()
	src := s.rng.SplitN(s.selects)
	s.selects++
	s.mu.Unlock()

	resp := SelectResponse{MeasuredAt: snap.Time}
	if req.Spec != nil {
		place, err := appspec.SelectForSpec(snap, req.Spec, algo, src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp.Nodes = nodeNames(g, place.Nodes)
		resp.ByGroup = map[string][]string{}
		for name, ids := range place.ByGroup {
			resp.ByGroup[name] = nodeNames(g, ids)
		}
		resp.MinCPU = place.Score.MinCPU
		resp.PairMinBW = finite(place.Score.PairMinBW)
		resp.MinResource = place.Score.MinResource
	} else {
		creq := core.Request{
			M:               req.M,
			ComputePriority: req.Priority,
			RefCapacity:     req.RefCapacity,
			MinBW:           req.MinBW,
			MinCPU:          req.MinCPU,
			MinMemoryMB:     req.MinMemoryMB,
			MaxPairLatency:  req.MaxPairLatency,
		}
		for _, name := range req.Pin {
			id := g.NodeByName(name)
			if id < 0 {
				http.Error(w, fmt.Sprintf("unknown pinned node %q", name), http.StatusUnprocessableEntity)
				return
			}
			creq.Pinned = append(creq.Pinned, id)
		}
		res, err := core.Select(algo, snap, creq, src)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		resp.Nodes = res.Names(g)
		resp.MinCPU = res.MinCPU
		resp.PairMinBW = finite(res.PairMinBW)
		resp.MinResource = res.MinResource
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func nodeNames(g *topology.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	sort.Strings(out)
	return out
}

func finite(v float64) float64 {
	if v > 1e300 {
		return 0
	}
	return v
}
