// Package selectsvc exposes the node selection framework as a long-running
// HTTP service: a background loop polls a Remos measurement source, and
// clients ask for placements with a JSON request — the shape a cluster
// scheduler or launcher would integrate against. It composes the full
// stack of the paper: measurement (internal/remos), the application
// specification interface (internal/appspec), and the selection procedures
// (internal/core).
//
// The service is fully observable: every layer reports into a
// metrics.Registry served at /metrics (Prometheus text format) and
// /debug/vars (JSON), and every placement request is recorded in a
// bounded audit ring served at /decisions — including, for the sweep
// algorithms, the round-by-round edge-deletion trace that explains why
// those nodes were chosen.
package selectsvc

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nodeselect/internal/appspec"
	"nodeselect/internal/core"
	"nodeselect/internal/metrics"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/topology"
)

// Refresher is implemented by sources that need an explicit round-trip per
// poll (agent.NetSource); sources without it are polled directly.
type Refresher interface {
	Refresh() error
	Invalidate()
}

// Config tunes the service.
type Config struct {
	// Collector configures the measurement loop.
	Collector remos.CollectorConfig
	// DefaultMode is the query mode used when a request names none
	// (default Window).
	DefaultMode remos.Mode
	// Seed seeds the random-baseline stream.
	Seed int64
	// Registry receives the service's metrics (and the collector's and
	// agent client's). Nil creates a private registry; either way the
	// registry is served at /metrics and /debug/vars. A registry must
	// not be shared between two Services — metric names would collide.
	Registry *metrics.Registry
	// AuditSize bounds the decision audit ring (default 64).
	AuditSize int
	// ExcludeStale drops compute nodes whose measurements have outlived
	// Collector.MaxStaleAge from plain /select candidates: better to
	// place on a node we can see than on one that may be gone. Requires
	// Collector.MaxStaleAge > 0; spec-based requests are not filtered.
	ExcludeStale bool
}

// Service is the placement daemon. Create with New, drive polling with
// Poll (or an external ticker calling it), and serve HTTP with Handler.
type Service struct {
	mu        sync.Mutex
	src       remos.Source
	collector *remos.Collector
	cfg       Config
	rng       *randx.Source
	selects   int

	// lastPollErr is the most recent Poll failure ("" when the last poll
	// succeeded, possibly partially); partialPolls counts polls that
	// succeeded on a subset of the fleet.
	lastPollErr  string
	partialPolls int

	registry *metrics.Registry
	metrics  *svcMetrics
	audit    *auditRing
}

// New builds a service over a measurement source.
func New(src remos.Source, cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	auditSize := cfg.AuditSize
	if auditSize <= 0 {
		auditSize = 64
	}
	collector := remos.NewCollector(src, cfg.Collector)
	collector.SetMetrics(remos.NewCollectorMetrics(reg))
	if ns, ok := src.(*agent.NetSource); ok {
		ns.SetMetrics(agent.NewClientMetrics(reg))
	}
	return &Service{
		src:       src,
		collector: collector,
		cfg:       cfg,
		rng:       randx.New(cfg.Seed).Split("selectd"),
		registry:  reg,
		metrics:   newSvcMetrics(reg),
		audit:     newAuditRing(auditSize),
	}
}

// Registry returns the service's metrics registry, for callers that want
// to add their own instruments alongside.
func (s *Service) Registry() *metrics.Registry { return s.registry }

// Poll takes one measurement sample (refreshing the source if it needs
// it). A partial refresh — some agents unreachable — still polls: the
// collector records the failed entities as stale and the service serves
// last-known-good data, reporting the degradation through Healthz. Only a
// total refresh failure with no prior data aborts the sample.
func (s *Service) Poll() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.src.(Refresher); ok {
		if err := r.Refresh(); err != nil {
			var pe *agent.PartialError
			if !errors.As(err, &pe) {
				s.lastPollErr = err.Error()
				return err
			}
			// Degraded, not dead: sample what we have.
			s.partialPolls++
			s.metrics.partialPolls.Inc()
		}
	}
	s.lastPollErr = ""
	s.collector.Poll()
	s.metrics.healthState.Set(healthLevel(s.healthLocked().State))
	return nil
}

// healthLocked summarizes the collector's freshness. Callers hold s.mu.
func (s *Service) healthLocked() remos.Health { return s.collector.Health() }

// Health states of the service, surfaced in /healthz.
const (
	// StateOK: the latest poll read the whole fleet live.
	StateOK = "ok"
	// StateDegraded: serving, but some measurements are last-known-good.
	StateDegraded = "degraded"
	// StateUnhealthy: nothing worth serving — no samples yet, or every
	// compute node's data has outlived the staleness ceiling.
	StateUnhealthy = "unhealthy"
)

// healthLevel renders a state as the selectsvc_health_state gauge value.
func healthLevel(state string) float64 {
	switch state {
	case StateOK: // == remos.HealthOK
		return 0
	case StateDegraded: // == remos.HealthDegraded
		return 1
	default:
		return 2
	}
}

// Health reports the service state and the collector's freshness summary.
func (s *Service) Health() (string, remos.Health) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.healthLocked()
	switch h.State {
	case remos.HealthOK:
		return StateOK, h
	case remos.HealthDegraded:
		return StateDegraded, h
	default:
		return StateUnhealthy, h
	}
}

// Polls reports how many samples have been collected.
func (s *Service) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Polls()
}

// Decisions returns up to n recent audit entries, newest first (n <= 0
// means all retained).
func (s *Service) Decisions(n int) []Decision { return s.audit.recent(n) }

// SelectRequest is the POST /select body. Either Spec or M must be given.
type SelectRequest struct {
	// M is the node count for a plain request.
	M int `json:"m,omitempty"`
	// Algo names the algorithm (default "balanced").
	Algo string `json:"algo,omitempty"`
	// Mode names the query mode: current, window, forecast, trend
	// (default the service's DefaultMode).
	Mode string `json:"mode,omitempty"`
	// Priority, RefCapacity, MinBW, MinCPU, MinMemoryMB, MaxPairLatency
	// mirror core.Request.
	Priority       float64 `json:"priority,omitempty"`
	RefCapacity    float64 `json:"ref_capacity,omitempty"`
	MinBW          float64 `json:"min_bw,omitempty"`
	MinCPU         float64 `json:"min_cpu,omitempty"`
	MinMemoryMB    float64 `json:"min_memory_mb,omitempty"`
	MaxPairLatency float64 `json:"max_pair_latency,omitempty"`
	// Pin lists node names that must be selected.
	Pin []string `json:"pin,omitempty"`
	// Spec is a full application specification; when present it
	// overrides M and the floors above.
	Spec *appspec.Spec `json:"spec,omitempty"`
}

// SelectResponse is the POST /select reply.
type SelectResponse struct {
	Nodes       []string            `json:"nodes"`
	ByGroup     map[string][]string `json:"by_group,omitempty"`
	MinCPU      float64             `json:"min_cpu"`
	PairMinBW   float64             `json:"pair_min_bw"`
	MinResource float64             `json:"min_resource"`
	MeasuredAt  float64             `json:"measured_at"`
	// Degraded marks a placement computed while part of the measurement
	// fleet was unreadable: some inputs are last-known-good values.
	Degraded bool `json:"degraded,omitempty"`
	// DataAgeSeconds is the age of the oldest measurement that informed
	// the placement (0 when everything was read live).
	DataAgeSeconds float64 `json:"data_age_seconds,omitempty"`
	// StaleNodes names compute nodes whose measurements were stale when
	// the placement was computed (and, with ExcludeStale, were therefore
	// removed from candidacy).
	StaleNodes []string `json:"stale_nodes,omitempty"`
}

// Handler returns the service's HTTP handler:
//
//	GET  /topology   — the measured topology document
//	GET  /snapshot   — topology + current snapshot (?mode=window...)
//	GET  /healthz    — liveness, poll count, decision count
//	GET  /decisions  — recent placement decisions with traces (?n=10)
//	GET  /metrics    — Prometheus text exposition of the registry
//	GET  /debug/vars — JSON dump of the registry
//	POST /select     — run a placement (SelectRequest -> SelectResponse)
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /decisions", s.handleDecisions)
	mux.Handle("GET /metrics", s.registry.Handler())
	mux.Handle("GET /debug/vars", s.registry.JSONHandler())
	mux.HandleFunc("POST /select", s.handleSelect)
	return mux
}

func (s *Service) handleTopology(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	g := s.collector.Graph()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, g, nil); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) parseMode(name string) (remos.Mode, error) {
	switch name {
	case "":
		return s.cfg.DefaultMode, nil
	case "current":
		return remos.Current, nil
	case "window":
		return remos.Window, nil
	case "forecast":
		return remos.Forecast, nil
	case "trend":
		return remos.Trend, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// snapshotFor answers a snapshot under an already-parsed mode, along with
// the freshness view it was computed under.
func (s *Service) snapshotFor(mode remos.Mode) (*topology.Snapshot, remos.Health, remos.Freshness, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.collector.Snapshot(mode, false)
	if err != nil {
		return nil, remos.Health{}, remos.Freshness{}, err
	}
	return snap, s.collector.Health(), s.collector.Freshness(), nil
}

func (s *Service) snapshot(modeName string) (*topology.Snapshot, error) {
	mode, err := s.parseMode(modeName)
	if err != nil {
		return nil, err
	}
	snap, _, _, err := s.snapshotFor(mode)
	return snap, err
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.snapshot(r.URL.Query().Get("mode"))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, remos.ErrNoData) || errors.Is(err, remos.ErrStale) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, snap.Graph, snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	polls := s.collector.Polls()
	selects := s.selects
	health := s.healthLocked()
	partial := s.partialPolls
	pollErr := s.lastPollErr
	s.mu.Unlock()
	state := StateUnhealthy
	switch health.State {
	case remos.HealthOK:
		state = StateOK
	case remos.HealthDegraded:
		state = StateDegraded
	}
	resp := map[string]any{
		"state":         state,
		"polls":         polls,
		"partial_polls": partial,
		"selects":       selects,
		"decisions":     s.audit.size(),
		"measurements":  health,
	}
	if pollErr != "" {
		resp["last_poll_error"] = pollErr
	}
	w.Header().Set("Content-Type", "application/json")
	// Degraded still serves placements from last-known-good data, so it
	// stays 200 for load balancers; only unhealthy is a real 503.
	if state == StateUnhealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			http.Error(w, fmt.Sprintf("bad n %q", q), http.StatusBadRequest)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.audit.recent(n))
}

// classifyError maps a selection failure to its metrics class.
func classifyError(err error) string {
	switch {
	case errors.Is(err, remos.ErrNoData):
		return "no_data"
	case errors.Is(err, remos.ErrStale):
		return "stale"
	case errors.Is(err, core.ErrTooFewNodes), errors.Is(err, core.ErrNoFeasibleSet):
		return "infeasible"
	case errors.Is(err, core.ErrBadRequest):
		return "bad_request"
	default:
		return "internal"
	}
}

func (s *Service) handleSelect(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	d := Decision{Wall: t0}

	// finish records the decision in the audit ring (success and failure
	// alike) and observes the request latency.
	finish := func() {
		d.DurationSeconds = time.Since(t0).Seconds()
		s.metrics.latency.Observe(d.DurationSeconds)
		s.audit.add(d)
		s.metrics.decisions.Inc()
	}
	fail := func(status int, class string, err error) {
		d.Error = err.Error()
		d.ErrorClass = class
		s.metrics.errors.With(class).Inc()
		finish()
		http.Error(w, err.Error(), status)
	}

	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(http.StatusBadRequest, "bad_request", fmt.Errorf("bad request: %w", err))
		return
	}
	algo := req.Algo
	if algo == "" {
		algo = core.AlgoBalanced
	}
	d.Algo = algo
	d.M = req.M
	if req.Spec != nil {
		d.Spec = req.Spec.Name
	}
	mode, err := s.parseMode(req.Mode)
	if err != nil {
		d.Mode = req.Mode
		fail(http.StatusBadRequest, "bad_request", err)
		return
	}
	d.Mode = mode.String()
	s.metrics.requests.With(algo, d.Mode).Inc()

	snap, health, fresh, err := s.snapshotFor(mode)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, remos.ErrNoData) || errors.Is(err, remos.ErrStale) {
			status = http.StatusServiceUnavailable
		}
		fail(status, classifyError(err), err)
		return
	}
	d.MeasuredAt = snap.Time
	g := snap.Graph

	// Staleness annotation: a degraded fleet still answers, but the caller
	// (and the audit trail) should know which inputs were last-known-good.
	degraded := health.State != remos.HealthOK
	maxStale := s.cfg.Collector.MaxStaleAge
	var staleNodes []string
	if degraded && maxStale > 0 {
		for _, id := range g.ComputeNodes() {
			if id < len(fresh.NodeAge) && fresh.NodeAge[id] > maxStale {
				staleNodes = append(staleNodes, g.Node(id).Name)
			}
		}
		sort.Strings(staleNodes)
	}
	d.Degraded = degraded
	d.DataAgeSeconds = health.MaxAgeSeconds
	if degraded {
		s.metrics.degradedSelects.Inc()
	}

	s.mu.Lock()
	src := s.rng.SplitN(s.selects)
	s.selects++
	s.mu.Unlock()

	resp := SelectResponse{MeasuredAt: snap.Time}
	if degraded {
		resp.Degraded = true
		resp.DataAgeSeconds = health.MaxAgeSeconds
		resp.StaleNodes = staleNodes
	}
	if req.Spec != nil {
		place, err := appspec.SelectForSpec(snap, req.Spec, algo, src)
		if err != nil {
			fail(http.StatusUnprocessableEntity, classifyError(err), err)
			return
		}
		resp.Nodes = nodeNames(g, place.Nodes)
		resp.ByGroup = map[string][]string{}
		for name, ids := range place.ByGroup {
			resp.ByGroup[name] = nodeNames(g, ids)
		}
		resp.MinCPU = place.Score.MinCPU
		resp.PairMinBW = finite(place.Score.PairMinBW)
		resp.MinResource = place.Score.MinResource
		d.M = len(place.Nodes)
	} else {
		creq := core.Request{
			M:               req.M,
			ComputePriority: req.Priority,
			RefCapacity:     req.RefCapacity,
			MinBW:           req.MinBW,
			MinCPU:          req.MinCPU,
			MinMemoryMB:     req.MinMemoryMB,
			MaxPairLatency:  req.MaxPairLatency,
		}
		if s.cfg.ExcludeStale && maxStale > 0 {
			ages := fresh.NodeAge
			creq.Eligible = func(node int) bool {
				return node >= len(ages) || ages[node] <= maxStale
			}
		}
		for _, name := range req.Pin {
			id := g.NodeByName(name)
			if id < 0 {
				fail(http.StatusUnprocessableEntity, "bad_request",
					fmt.Errorf("unknown pinned node %q", name))
				return
			}
			creq.Pinned = append(creq.Pinned, id)
		}
		// The sweep algorithms report their decision trace; the others
		// have no sweep to trace.
		var opts core.Options
		var steps []core.SweepStep
		if algo == core.AlgoBalanced || algo == core.AlgoBandwidth {
			opts.Observer = func(st core.SweepStep) { steps = append(steps, st) }
		}
		res, err := core.SelectOpt(algo, snap, creq, src, opts)
		d.Trace, d.TraceTruncated = decisionRounds(g, steps)
		if err != nil {
			fail(http.StatusUnprocessableEntity, classifyError(err), err)
			return
		}
		resp.Nodes = res.Names(g)
		resp.MinCPU = res.MinCPU
		resp.PairMinBW = finite(res.PairMinBW)
		resp.MinResource = res.MinResource
	}

	d.Nodes = resp.Nodes
	d.MinCPU = resp.MinCPU
	d.PairMinBW = resp.PairMinBW
	d.MinResource = resp.MinResource
	s.metrics.minresource.Observe(resp.MinResource)
	s.metrics.lastMinresource.Set(resp.MinResource)
	finish()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func nodeNames(g *topology.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	sort.Strings(out)
	return out
}

func finite(v float64) float64 {
	if v > 1e300 {
		return 0
	}
	return v
}
