// Package selectsvc exposes the node selection framework as a long-running
// HTTP service: a background loop polls a Remos measurement source, and
// clients ask for placements with a JSON request — the shape a cluster
// scheduler or launcher would integrate against. It composes the full
// stack of the paper: measurement (internal/remos), the application
// specification interface (internal/appspec), and the selection procedures
// (internal/core).
//
// The service is fully observable: every layer reports into a
// metrics.Registry served at /metrics (Prometheus text format) and
// /debug/vars (JSON), and every placement request is recorded in a
// bounded audit ring served at /decisions — including, for the sweep
// algorithms, the round-by-round edge-deletion trace that explains why
// those nodes were chosen.
package selectsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nodeselect/internal/admission"
	"nodeselect/internal/appspec"
	"nodeselect/internal/core"
	"nodeselect/internal/hierarchy"
	"nodeselect/internal/lease"
	"nodeselect/internal/metrics"
	"nodeselect/internal/randx"
	"nodeselect/internal/rebalance"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// Refresher is implemented by sources that need an explicit round-trip per
// poll (agent.NetSource); sources without it are polled directly.
type Refresher interface {
	Refresh() error
	Invalidate()
}

// Config tunes the service.
type Config struct {
	// Collector configures the measurement loop.
	Collector remos.CollectorConfig
	// DefaultMode is the query mode used when a request names none
	// (default Window).
	DefaultMode remos.Mode
	// Seed seeds the random-baseline stream.
	Seed int64
	// Registry receives the service's metrics (and the collector's and
	// agent client's). Nil creates a private registry; either way the
	// registry is served at /metrics and /debug/vars. A registry must
	// not be shared between two Services — metric names would collide.
	Registry *metrics.Registry
	// AuditSize bounds the decision audit ring (default 64).
	AuditSize int
	// ExcludeStale drops compute nodes whose measurements have outlived
	// Collector.MaxStaleAge from plain /select candidates: better to
	// place on a node we can see than on one that may be gone. Requires
	// Collector.MaxStaleAge > 0; spec-based requests are not filtered.
	ExcludeStale bool
	// Ledger is the reservation ledger backing admission control and the
	// lease API. Nil creates a private in-memory ledger over the source's
	// topology; pass a WAL-backed one (lease.New with lease.OpenWAL) so
	// active leases survive restarts. The service installs the ledger's
	// event observer for its metrics.
	Ledger *lease.Ledger
	// PlanCacheSize bounds the per-snapshot plan cache: identical plain
	// /select requests within one (snapshot, ledger version) epoch are
	// answered from a memoized plan, with concurrent identical requests
	// computing once (singleflight). Zero means the default (256);
	// negative disables caching entirely. Leased, spec, and random-
	// algorithm requests always bypass the cache.
	PlanCacheSize int
	// Hierarchy routes plain (unleased) sweep selects through the
	// cluster-first quotient path of internal/hierarchy: the residual
	// snapshot is partitioned into logical clusters once per (snapshot,
	// ledger) epoch — cached like the plan cache — and requests inside
	// the quotient path's proven-equivalent class are answered by the
	// collapsed sweep, with everything else falling back to the flat
	// path. Results are bit-identical either way; what changes is select
	// latency on 10k+-node topologies. The per-round decision trace is
	// not recorded for hierarchical selects (an installed observer would
	// force the flat path), so /decisions entries carry the "hierarchy"
	// field instead of a sweep trace.
	Hierarchy bool
	// BatchWindow, when positive, routes leased selects through the
	// epoch-batch admission pipeline: concurrent acquires queue for up to
	// this long (or until BatchMax of them arrive), then commit as one
	// ledger batch — one WAL fsync, one replication round — with
	// serial-equivalent accept/reject outcomes. Zero keeps the one-
	// request-one-fsync serial path.
	BatchWindow time.Duration
	// BatchMax flushes a batch early once it holds this many requests
	// (default 64). Only meaningful with BatchWindow > 0.
	BatchMax int
	// Rebalance, when non-nil, runs the continuous re-placement
	// controller: every poll re-scores active shaped leases against the
	// residual snapshot (excluding each lease's own reservation) and
	// raises migration proposals, served at /migrations. With
	// Policy.Auto they are applied immediately; otherwise they wait for
	// POST /migrations/{lease}/apply.
	Rebalance *rebalance.Policy
	// Trace tunes request tracing (span capture and tail sampling); the
	// zero value traces with the defaults (128 traces per retention
	// class, 250ms slow threshold, 10% sampling of fast healthy
	// requests). Set Trace.Disabled to turn tracing off; X-Request-ID
	// echoing and request_id correlation keep working regardless.
	Trace reqtrace.Config
	// Replica, when non-nil, marks this service as one member of a
	// replicated selectd cluster (usually the *replica.Node whose
	// Replicate the ledger was wired to). Mutating endpoints are then
	// accepted only on the leader — followers answer 307 to the leader's
	// client URL (see PeerClientURLs) or 503 "not_leader" — every
	// response carries X-Replica-Role/Term/Commit-Lag headers, /healthz
	// grows a "replication" block (degraded on lost quorum), and
	// replica_* gauges join the registry.
	Replica ClusterNode
	// PeerClientURLs maps replica IDs to their client-facing base URLs,
	// used to build the Location of write redirects. Without an entry for
	// the current leader, followers answer writes with 503 instead.
	PeerClientURLs map[string]string
}

// defaultPlanCacheSize bounds the plan cache when the config does not.
const defaultPlanCacheSize = 256

// Service is the placement daemon. Create with New, drive polling with
// Poll (or an external ticker calling it), and serve HTTP with Handler.
type Service struct {
	mu        sync.Mutex
	src       remos.Source
	collector *remos.Collector
	cfg       Config
	rng       *randx.Source
	selects   int

	// lastPollErr is the most recent Poll failure ("" when the last poll
	// succeeded, possibly partially); partialPolls counts polls that
	// succeeded on a subset of the fleet.
	lastPollErr  string
	partialPolls int

	registry *metrics.Registry
	metrics  *svcMetrics
	audit    *auditRing
	ledger   *lease.Ledger
	admit    *admission.Pipeline // nil when batching is off
	plans    *planCache          // nil when disabled
	hier     hierCache           // used only with cfg.Hierarchy
	rebal    *rebalance.Controller
	tracer   *reqtrace.Tracer
	lastPoll pollSpans

	// replicaRedirects counts writes bounced to the leader (clustered
	// services only; nil otherwise).
	replicaRedirects *metrics.Counter
}

// New builds a service over a measurement source.
func New(src remos.Source, cfg Config) *Service {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	auditSize := cfg.AuditSize
	if auditSize <= 0 {
		auditSize = 64
	}
	collector := remos.NewCollector(src, cfg.Collector)
	collector.SetMetrics(remos.NewCollectorMetrics(reg))
	if ns, ok := src.(*agent.NetSource); ok {
		ns.SetMetrics(agent.NewClientMetrics(reg))
	}
	ledger := cfg.Ledger
	if ledger == nil {
		// An in-memory ledger cannot fail to construct over a live source's
		// topology.
		ledger, _ = lease.New(src.Topology(), lease.Options{})
	}
	var plans *planCache
	if cfg.PlanCacheSize >= 0 {
		size := cfg.PlanCacheSize
		if size == 0 {
			size = defaultPlanCacheSize
		}
		plans = newPlanCache(size)
	}
	s := &Service{
		src:       src,
		collector: collector,
		cfg:       cfg,
		rng:       randx.New(cfg.Seed).Split("selectd"),
		registry:  reg,
		metrics:   newSvcMetrics(reg),
		audit:     newAuditRing(auditSize),
		ledger:    ledger,
		plans:     plans,
		tracer:    reqtrace.NewTracer(cfg.Trace),
	}
	ledger.SetOnEvent(func(op string, _ *lease.Lease) { s.metrics.leaseOps.With(op).Inc() })
	if cfg.BatchWindow > 0 {
		s.admit = admission.New(admission.Config{
			Ledger:   ledger,
			Window:   cfg.BatchWindow,
			MaxBatch: cfg.BatchMax,
			Registry: reg,
		})
	}
	registerLeaseGauges(reg, ledger)
	registerTraceGauges(reg, s.tracer)
	if cfg.Replica != nil {
		registerReplicaGauges(reg, cfg.Replica)
		s.replicaRedirects = reg.NewCounter("replica_write_redirects_total",
			"Mutating requests answered with a 307 redirect to the leader.")
	}
	if plans != nil {
		registerPlanCacheGauges(reg, plans)
	}
	if cfg.Rebalance != nil {
		s.rebal = rebalance.New(ledger, *cfg.Rebalance, reg)
		// Controller actions join the same audit trail as placements, so
		// GET /decisions tells the whole story of where a lease has been.
		s.rebal.SetOnEvent(func(ev rebalance.Event) {
			d := Decision{
				Wall:        time.Now(),
				Kind:        "rebalance_" + ev.Op,
				RequestID:   ev.RequestID,
				LeaseID:     ev.Proposal.Lease,
				Nodes:       ev.Proposal.To,
				FromNodes:   ev.Proposal.From,
				Gain:        ev.Proposal.Gain,
				MinResource: ev.Proposal.CandidateScore,
				Bottleneck:  ev.Proposal.Bottleneck,
			}
			if ev.Err != nil {
				d.Error = ev.Err.Error()
				d.ErrorClass = classifyError(ev.Err)
				var adm *lease.AdmissionError
				if errors.As(ev.Err, &adm) {
					d.Bottleneck = adm.Bottleneck
				}
			}
			s.audit.add(d)
			s.metrics.decisions.Inc()
		})
	}
	return s
}

// Ledger returns the service's reservation ledger, for callers that drive
// sweeping or shutdown themselves (cmd/selectd).
func (s *Service) Ledger() *lease.Ledger { return s.ledger }

// acquireLease is the one admission entry point for leased selects: it
// submits to the epoch-batch pipeline when batching is configured (the
// Decision picks up which batch carried the request), and calls the
// ledger directly otherwise. A nil shape behaves like ledger.Acquire.
func (s *Service) acquireLease(ctx context.Context, snap *topology.Snapshot, demand lease.Demand, ttl time.Duration, shape *lease.Shape, place lease.PlaceFunc, d *Decision) (lease.Info, error) {
	if s.admit == nil {
		return s.ledger.AcquireShaped(ctx, snap, demand, ttl, shape, place)
	}
	info, receipt, err := s.admit.Submit(ctx, admission.Request{
		Snapshot: snap,
		Demand:   demand,
		TTL:      ttl,
		Shape:    shape,
		Place:    place,
		Key:      d.RequestID,
	})
	d.BatchID = receipt.BatchID
	d.BatchSize = receipt.BatchSize
	return info, err
}

// StopBatching flushes and stops the epoch-batch admission pipeline,
// blocking until every queued acquire has committed or failed. Call it
// before closing the ledger on shutdown (like StopRebalance, it must run
// while the ledger's WAL can still fsync); a no-op when batching is off.
func (s *Service) StopBatching() {
	if s.admit != nil {
		s.admit.Close()
	}
}

// cacheBypass labels decisions the plan cache deliberately does not serve
// (leased, spec, or randomized requests): "bypass" while the cache is
// enabled, "" when it is disabled and no cache field applies at all.
func (s *Service) cacheBypass() string {
	if s.plans == nil {
		return ""
	}
	return "bypass"
}

// Registry returns the service's metrics registry, for callers that want
// to add their own instruments alongside.
func (s *Service) Registry() *metrics.Registry { return s.registry }

// Poll takes one measurement sample (refreshing the source if it needs
// it). A partial refresh — some agents unreachable — still polls: the
// collector records the failed entities as stale and the service serves
// last-known-good data, reporting the degradation through Healthz. Only a
// total refresh failure with no prior data aborts the sample. After a
// successful sample the rebalance controller (when configured) runs one
// evaluation epoch.
func (s *Service) Poll() error {
	// Each poll runs under its own trace (kind "poll") so the measurement
	// plane's cost — agent refresh round-trips above all — is visible per
	// cycle. The finished span tree is retained in lastPoll regardless of
	// what the tail sampler keeps, because degraded selects graft it into
	// their own traces to show where the fleet's time went.
	ctx, root := s.tracer.StartTrace(context.Background(), "poll", "collector.poll", "")
	err := s.pollOnce(ctx)
	if err == nil {
		s.rebalanceTick(ctx)
	} else {
		root.Fail(err)
	}
	root.End()
	if tr := root.Trace(); tr != nil {
		s.lastPoll.set(tr.Spans)
	}
	return err
}

// StartPolling runs Poll every interval in a background goroutine until
// the returned stop function is called. Stop blocks until any in-flight
// poll has returned — a poll sweeps the lease ledger, so the guarantee
// callers need on shutdown is "no measurement ingestion after stop", in
// the same spirit as StopRebalance: call stop strictly before flushing
// and closing the ledger, and a sweep can never land on a closed ledger.
// onErr, when non-nil, observes poll failures. Stop is idempotent.
func (s *Service) StartPolling(interval time.Duration, onErr func(error)) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if err := s.Poll(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

func (s *Service) pollOnce(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.src.(Refresher); ok {
		_, span := reqtrace.StartSpan(ctx, "source.refresh")
		err := r.Refresh()
		if err != nil {
			span.Fail(err)
		}
		span.End()
		if err != nil {
			var pe *agent.PartialError
			if !errors.As(err, &pe) {
				s.lastPollErr = err.Error()
				return err
			}
			// Degraded, not dead: sample what we have.
			s.partialPolls++
			s.metrics.partialPolls.Inc()
		}
	}
	s.lastPollErr = ""
	s.collector.PollCtx(ctx)
	s.metrics.healthState.Set(healthLevel(s.healthLocked().State))
	// Reclaim capacity from crashed clients even when no requests arrive:
	// the poll loop doubles as the lease expiry heartbeat.
	sweep := reqtrace.StartChild(ctx, "lease.sweep")
	s.ledger.Sweep()
	sweep.End()
	return nil
}

// rebalanceTick runs one controller epoch outside s.mu (the controller
// takes the ledger's lock; nesting it inside the service lock would
// invite an ordering hazard with request handlers). The ledger version is
// read before the snapshot for the same conservative reason the plan
// cache does it: a racing commit makes the epoch stale, which only causes
// an extra evaluation next poll.
func (s *Service) rebalanceTick(ctx context.Context) {
	if s.rebal == nil {
		return
	}
	version := s.ledger.Version()
	snap, health, _, polls, err := s.snapshotFor(s.cfg.DefaultMode)
	if err != nil {
		return // nothing measured yet; next poll retries
	}
	s.rebal.Tick(ctx, snap, rebalance.Epoch{Polls: polls, Ledger: version},
		health.State != remos.HealthOK)
}

// StopRebalance stops the re-placement controller, blocking until any
// in-flight evaluation or handover completes — call it before flushing
// and closing the ledger on shutdown, so the reserve-new half of a
// migration can never land after the release-old path is gone. No-op when
// the controller is disabled.
func (s *Service) StopRebalance() {
	if s.rebal != nil {
		s.rebal.Close()
	}
}

// healthLocked summarizes the collector's freshness. Callers hold s.mu.
func (s *Service) healthLocked() remos.Health { return s.collector.Health() }

// Health states of the service, surfaced in /healthz.
const (
	// StateOK: the latest poll read the whole fleet live.
	StateOK = "ok"
	// StateDegraded: serving, but some measurements are last-known-good.
	StateDegraded = "degraded"
	// StateUnhealthy: nothing worth serving — no samples yet, or every
	// compute node's data has outlived the staleness ceiling.
	StateUnhealthy = "unhealthy"
)

// healthLevel renders a state as the selectsvc_health_state gauge value.
func healthLevel(state string) float64 {
	switch state {
	case StateOK: // == remos.HealthOK
		return 0
	case StateDegraded: // == remos.HealthDegraded
		return 1
	default:
		return 2
	}
}

// Health reports the service state and the collector's freshness summary.
func (s *Service) Health() (string, remos.Health) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.healthLocked()
	switch h.State {
	case remos.HealthOK:
		return StateOK, h
	case remos.HealthDegraded:
		return StateDegraded, h
	default:
		return StateUnhealthy, h
	}
}

// Polls reports how many samples have been collected.
func (s *Service) Polls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.collector.Polls()
}

// Decisions returns up to n recent audit entries, newest first (n <= 0
// means all retained).
func (s *Service) Decisions(n int) []Decision { return s.audit.recent(n) }

// SelectRequest is the POST /select body. Either Spec or M must be given.
type SelectRequest struct {
	// M is the node count for a plain request.
	M int `json:"m,omitempty"`
	// Algo names the algorithm (default "balanced").
	Algo string `json:"algo,omitempty"`
	// Mode names the query mode: current, window, forecast, trend
	// (default the service's DefaultMode).
	Mode string `json:"mode,omitempty"`
	// Priority, RefCapacity, MinBW, MinCPU, MinMemoryMB, MaxPairLatency
	// mirror core.Request.
	Priority       float64 `json:"priority,omitempty"`
	RefCapacity    float64 `json:"ref_capacity,omitempty"`
	MinBW          float64 `json:"min_bw,omitempty"`
	MinCPU         float64 `json:"min_cpu,omitempty"`
	MinMemoryMB    float64 `json:"min_memory_mb,omitempty"`
	MaxPairLatency float64 `json:"max_pair_latency,omitempty"`
	// Pin lists node names that must be selected.
	Pin []string `json:"pin,omitempty"`
	// Spec is a full application specification; when present it
	// overrides M and the floors above.
	Spec *appspec.Spec `json:"spec,omitempty"`
	// Demand, when present, makes the request *leased*: the placement is
	// admitted against the residual network view (capacity minus other
	// applications' reservations) and, on success, the demand is debited
	// for the lease's lifetime. Rejections are HTTP 409 with the binding
	// bottleneck named.
	Demand *lease.Demand `json:"demand,omitempty"`
	// LeaseTTL is the lease's time to live in seconds (service default
	// when zero). Setting it without Demand leases a zero demand — the
	// placement is tracked but debits nothing.
	LeaseTTL float64 `json:"lease_ttl,omitempty"`
}

// leased reports whether the request asks for admission control.
func (r SelectRequest) leased() bool { return r.Demand != nil || r.LeaseTTL > 0 }

// SelectResponse is the POST /select reply.
type SelectResponse struct {
	Nodes       []string            `json:"nodes"`
	ByGroup     map[string][]string `json:"by_group,omitempty"`
	MinCPU      float64             `json:"min_cpu"`
	PairMinBW   float64             `json:"pair_min_bw"`
	MinResource float64             `json:"min_resource"`
	MeasuredAt  float64             `json:"measured_at"`
	// Degraded marks a placement computed while part of the measurement
	// fleet was unreadable: some inputs are last-known-good values.
	Degraded bool `json:"degraded,omitempty"`
	// DataAgeSeconds is the age of the oldest measurement that informed
	// the placement (0 when everything was read live).
	DataAgeSeconds float64 `json:"data_age_seconds,omitempty"`
	// StaleNodes names compute nodes whose measurements were stale when
	// the placement was computed (and, with ExcludeStale, were therefore
	// removed from candidacy).
	StaleNodes []string `json:"stale_nodes,omitempty"`
	// Lease is present on leased requests: the reservation that now backs
	// the placement. Renew it before ExpiresAt or the capacity returns to
	// the pool.
	Lease *lease.Info `json:"lease,omitempty"`
}

// Handler returns the service's HTTP handler:
//
//	GET    /topology          — the measured topology document
//	GET    /snapshot          — topology + current snapshot (?mode=window,
//	                            ?view=residual for capacity minus leases)
//	GET    /healthz           — liveness, poll count, decision count
//	GET    /decisions         — recent placement decisions with traces (?n=10)
//	GET    /metrics           — Prometheus text exposition of the registry
//	GET    /debug/vars        — JSON dump of the registry
//	POST   /select            — run a placement (SelectRequest -> SelectResponse);
//	                            with "demand"/"lease_ttl", admit-and-reserve
//	GET    /leases            — active leases and commitment summary
//	POST   /leases/{id}/renew — extend a lease ({"ttl": seconds}, optional body)
//	DELETE /leases/{id}       — release a lease
//	GET    /migrations        — pending migration proposals (rebalance on)
//	POST   /migrations/{id}/apply — execute a proposal's handover
//	GET    /traces            — retained request traces (?kind, ?status,
//	                            ?min_duration=50ms, ?n=20)
//	GET    /traces/{id}       — one trace's full span tree
//
// Every response carries an X-Request-ID header (echoed from the request
// when valid, minted otherwise); every error response is the JSON envelope
// {error, class, status, request_id, bottleneck?}.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /decisions", s.handleDecisions)
	mux.Handle("GET /metrics", s.registry.Handler())
	mux.Handle("GET /debug/vars", s.registry.JSONHandler())
	mux.HandleFunc("POST /select", s.handleSelect)
	mux.HandleFunc("GET /leases", s.handleLeases)
	mux.HandleFunc("POST /leases/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("DELETE /leases/{id}", s.handleLeaseRelease)
	mux.HandleFunc("GET /migrations", s.handleMigrations)
	mux.HandleFunc("POST /migrations/{id}/apply", s.handleMigrationApply)
	mux.HandleFunc("GET /traces", s.handleTraces)
	mux.HandleFunc("GET /traces/{id}", s.handleTraceByID)
	return s.middleware(mux)
}

func (s *Service) handleTopology(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g := s.collector.Graph()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, g, nil); err != nil {
		writeError(r.Context(), w, http.StatusInternalServerError, classInternal, "", err)
	}
}

func (s *Service) parseMode(name string) (remos.Mode, error) {
	switch name {
	case "":
		return s.cfg.DefaultMode, nil
	case "current":
		return remos.Current, nil
	case "window":
		return remos.Window, nil
	case "forecast":
		return remos.Forecast, nil
	case "trend":
		return remos.Trend, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", name)
	}
}

// snapshotFor answers a snapshot under an already-parsed mode, along with
// the freshness view it was computed under and the poll counter the
// snapshot was derived from. The poll counter is read under the same lock
// as the snapshot so the plan cache's epoch can never pair a stale
// snapshot with a newer counter.
func (s *Service) snapshotFor(mode remos.Mode) (*topology.Snapshot, remos.Health, remos.Freshness, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.collector.Snapshot(mode, false)
	if err != nil {
		return nil, remos.Health{}, remos.Freshness{}, 0, err
	}
	return snap, s.collector.Health(), s.collector.Freshness(), s.collector.Polls(), nil
}

func (s *Service) snapshot(modeName string) (*topology.Snapshot, error) {
	mode, err := s.parseMode(modeName)
	if err != nil {
		return nil, err
	}
	snap, _, _, _, err := s.snapshotFor(mode)
	return snap, err
}

func (s *Service) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.snapshot(r.URL.Query().Get("mode"))
	if err != nil {
		class := classifyError(err)
		if class == classInternal {
			class = classBadRequest
		}
		writeError(r.Context(), w, statusFor(class), class, "", err)
		return
	}
	switch view := r.URL.Query().Get("view"); view {
	case "", "raw":
	case "residual":
		snap = s.ledger.Residual(snap)
	default:
		writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
			fmt.Errorf("unknown view %q (want raw or residual)", view))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := topology.WriteDocument(w, snap.Graph, snap); err != nil {
		writeError(r.Context(), w, http.StatusInternalServerError, classInternal, "", err)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	polls := s.collector.Polls()
	selects := s.selects
	health := s.healthLocked()
	partial := s.partialPolls
	pollErr := s.lastPollErr
	s.mu.Unlock()
	state := StateUnhealthy
	switch health.State {
	case remos.HealthOK:
		state = StateOK
	case remos.HealthDegraded:
		state = StateDegraded
	}
	resp := map[string]any{
		"state":         state,
		"polls":         polls,
		"partial_polls": partial,
		"selects":       selects,
		"decisions":     s.audit.size(),
		"measurements":  health,
	}
	if pollErr != "" {
		resp["last_poll_error"] = pollErr
	}
	// Clustered services also report the replication plane. Lost quorum
	// degrades the whole service (writes cannot commit) but keeps it 200:
	// follower reads still serve, annotated with their lag.
	if rep, degraded := s.replicationHealth(); rep != nil {
		resp["replication"] = rep
		if degraded && state == StateOK {
			state = StateDegraded
			resp["state"] = state
		}
	}
	w.Header().Set("Content-Type", "application/json")
	// Degraded still serves placements from last-known-good data, so it
	// stays 200 for load balancers; only unhealthy is a real 503.
	if state == StateUnhealthy {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

func (s *Service) handleDecisions(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
				fmt.Errorf("bad n %q", q))
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.audit.recent(n))
}

func (s *Service) handleSelect(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ctx := r.Context()
	d := Decision{Wall: t0, RequestID: requestID(ctx)}

	// finish records the decision in the audit ring (success and failure
	// alike) and observes the request latency.
	finish := func() {
		d.DurationSeconds = time.Since(t0).Seconds()
		s.metrics.latency.Observe(d.DurationSeconds)
		if d.Cache != "" {
			s.metrics.planCacheRequests.With(d.Cache).Inc()
		}
		s.audit.add(d)
		s.metrics.decisions.Inc()
	}
	fail := func(class string, err error) {
		// Admission rejections carry the binding bottleneck; surface it in
		// the envelope and the audit trail, and count it by resource kind.
		var adm *lease.AdmissionError
		if errors.As(err, &adm) {
			d.Bottleneck = adm.Bottleneck
			s.metrics.admissionRejects.With(adm.Kind).Inc()
		}
		d.Error = err.Error()
		d.ErrorClass = class
		s.metrics.errors.With(class).Inc()
		finish()
		writeError(r.Context(), w, statusFor(class), class, d.Bottleneck, err)
	}

	var req SelectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		fail(classBadRequest, fmt.Errorf("bad request: %w", err))
		return
	}
	// Leased selects mutate the ledger, so only the cluster leader takes
	// them; advisory selects are reads and any replica answers. No audit
	// entry for a bounce — the decision happens (and is audited) on the
	// leader.
	if req.leased() && s.replicaWriteGuard(w, r) {
		return
	}
	algo := req.Algo
	if algo == "" {
		algo = core.AlgoBalanced
	}
	d.Algo = algo
	d.M = req.M
	if req.Spec != nil {
		d.Spec = req.Spec.Name
	}
	mode, err := s.parseMode(req.Mode)
	if err != nil {
		d.Mode = req.Mode
		fail(classBadRequest, err)
		return
	}
	d.Mode = mode.String()
	s.metrics.requests.With(algo, d.Mode).Inc()

	leased := req.leased()
	var demand lease.Demand
	if req.Demand != nil {
		demand = *req.Demand
	}
	if leased {
		if err := demand.Validate(); err != nil {
			fail(classBadRequest, err)
			return
		}
	}
	ttl := time.Duration(req.LeaseTTL * float64(time.Second))

	// The ledger version is read before the snapshot (and hence before any
	// residual view derived from it): if a lease commit races with this
	// request, the plan is cached under the pre-commit version and the
	// commit's version bump makes it unservable — a cached plan can never
	// outlive the ledger state it was computed from.
	ledgerVersion := s.ledger.Version()
	snapSpan := reqtrace.StartChild(ctx, "snapshot")
	snap, health, fresh, polls, err := s.snapshotFor(mode)
	snapSpan.End()
	if err != nil {
		class := classifyError(err)
		if class == classInternal {
			class = classBadRequest
		}
		fail(class, err)
		return
	}
	d.MeasuredAt = snap.Time
	g := snap.Graph

	// Staleness annotation: a degraded fleet still answers, but the caller
	// (and the audit trail) should know which inputs were last-known-good.
	degraded := health.State != remos.HealthOK
	maxStale := s.cfg.Collector.MaxStaleAge
	var staleNodes []string
	if degraded && maxStale > 0 {
		for _, id := range g.ComputeNodes() {
			if id < len(fresh.NodeAge) && fresh.NodeAge[id] > maxStale {
				staleNodes = append(staleNodes, g.Node(id).Name)
			}
		}
		sort.Strings(staleNodes)
	}
	d.Degraded = degraded
	d.DataAgeSeconds = health.MaxAgeSeconds
	if degraded {
		s.metrics.degradedSelects.Inc()
		// A degraded select's latency story lives partly in the measurement
		// plane: graft the latest poll's span tree into this trace so
		// GET /traces/{id} shows where the fleet's time went (typically a
		// slow or timed-out agent under collector.poll).
		reqtrace.Current(ctx).Graft(s.lastPoll.get())
	}

	s.mu.Lock()
	src := s.rng.SplitN(s.selects)
	s.selects++
	s.mu.Unlock()

	resp := SelectResponse{MeasuredAt: snap.Time}
	if degraded {
		resp.Degraded = true
		resp.DataAgeSeconds = health.MaxAgeSeconds
		resp.StaleNodes = staleNodes
	}
	// Both branches place via a lease.PlaceFunc: leased requests hand it to
	// Acquire, which admits and reserves inside the ledger's critical
	// section; advisory (unleased) requests call it directly on the residual
	// view, so they too respect capacity already promised to other tenants.
	if req.Spec != nil {
		d.Cache = s.cacheBypass()
		var place appspec.Placement
		placeFn := func(pctx context.Context, residual *topology.Snapshot, _ float64) ([]int, error) {
			// Specs carry their own floors, so the escalated minBW is
			// ignored; admission is still checked on the chosen set.
			_, span := reqtrace.StartSpan(pctx, "core.sweep")
			defer span.End()
			span.SetAttr("algo", algo)
			p, err := appspec.SelectForSpec(residual, req.Spec, algo, src)
			if err != nil {
				span.Fail(err)
				return nil, err
			}
			place = p
			return p.Nodes, nil
		}
		var err error
		if leased {
			var info lease.Info
			info, err = s.acquireLease(ctx, snap, demand, ttl, nil, placeFn, &d)
			if err == nil {
				resp.Lease = &info
				d.LeaseID = info.ID
			}
		} else {
			_, err = placeFn(ctx, s.ledger.Residual(snap), 0)
		}
		if err != nil {
			fail(classifyError(err), err)
			return
		}
		resp.Nodes = nodeNames(g, place.Nodes)
		resp.ByGroup = map[string][]string{}
		for name, ids := range place.ByGroup {
			resp.ByGroup[name] = nodeNames(g, ids)
		}
		resp.MinCPU = place.Score.MinCPU
		resp.PairMinBW = finite(place.Score.PairMinBW)
		resp.MinResource = place.Score.MinResource
		d.M = len(place.Nodes)
	} else {
		base := core.Request{
			M:               req.M,
			ComputePriority: req.Priority,
			RefCapacity:     req.RefCapacity,
			MinBW:           req.MinBW,
			MinCPU:          req.MinCPU,
			MinMemoryMB:     req.MinMemoryMB,
			MaxPairLatency:  req.MaxPairLatency,
		}
		if s.cfg.ExcludeStale && maxStale > 0 {
			ages := fresh.NodeAge
			base.Eligible = func(node int) bool {
				return node >= len(ages) || ages[node] <= maxStale
			}
		}
		for _, name := range req.Pin {
			id := g.NodeByName(name)
			if id < 0 {
				fail(classInfeasible, fmt.Errorf("unknown pinned node %q", name))
				return
			}
			base.Pinned = append(base.Pinned, id)
		}
		// The sweep algorithms report their decision trace; the others
		// have no sweep to trace. Hierarchical plain selects skip the
		// observer — it would force the quotient path's flat fallback —
		// and record which path answered instead.
		useHier := s.cfg.Hierarchy && !leased &&
			(algo == core.AlgoBalanced || algo == core.AlgoBandwidth)
		var opts core.Options
		var steps []core.SweepStep
		if (algo == core.AlgoBalanced || algo == core.AlgoBandwidth) && !useHier {
			opts.Observer = func(st core.SweepStep) { steps = append(steps, st) }
		}
		var res core.Result
		placeFn := func(pctx context.Context, residual *topology.Snapshot, minBW float64) ([]int, error) {
			creq := base
			// The demand's floors steer the sweep toward nodes and links
			// with enough uncommitted headroom; minBW rises when Acquire
			// escalates after a flow-multiplicity shortfall.
			if demand.CPU > creq.MinCPU {
				creq.MinCPU = demand.CPU
			}
			if minBW > creq.MinBW {
				creq.MinBW = minBW
			}
			steps = steps[:0]
			r, err := core.SelectCtx(pctx, algo, residual, creq, src, opts)
			if err != nil {
				return nil, err
			}
			res = r
			return r.Nodes, nil
		}
		if leased {
			// Record the originating request shape on the lease (and in the
			// WAL): it is what the rebalance controller re-runs the selection
			// with when deciding whether this placement is still the best one.
			shape := &lease.Shape{
				M:              req.M,
				Algo:           algo,
				Mode:           d.Mode,
				Priority:       req.Priority,
				RefCapacity:    req.RefCapacity,
				MinBW:          req.MinBW,
				MinCPU:         req.MinCPU,
				MinMemoryMB:    req.MinMemoryMB,
				MaxPairLatency: req.MaxPairLatency,
				Pin:            req.Pin,
			}
			info, err := s.acquireLease(ctx, snap, demand, ttl, shape, placeFn, &d)
			if err == nil {
				resp.Lease = &info
				d.LeaseID = info.ID
			}
			d.Trace, d.TraceTruncated = decisionRounds(g, steps)
			d.Cache = s.cacheBypass()
			if err != nil {
				class := classifyError(err)
				if class == classInfeasible {
					// No feasible set on the residual view. Probe the raw
					// snapshot without the demand floors: if a set exists there,
					// the blocker is capacity reserved by other leases — a
					// contention rejection, not an infeasible request — and the
					// probe's bottleneck link is the best available hint.
					if probe, perr := core.SelectOpt(algo, snap, base, src, core.Options{}); perr == nil {
						class = classRejected
						d.Bottleneck = probe.BottleneckName(g)
						err = fmt.Errorf("%w: free capacity is reserved by other leases (bottleneck near %s): %v",
							lease.ErrRejected, d.Bottleneck, err)
					}
				}
				fail(class, err)
				return
			}
		} else {
			epoch := planEpoch{polls: polls, ledger: ledgerVersion}
			compute := func(cctx context.Context) cachedPlan {
				var p cachedPlan
				var err error
				if useHier {
					// The partition is built from (and cached for) the
					// residual view: lease debits change link availability,
					// and cluster uniformity must hold in the measurements
					// the sweep actually scores against.
					residual := s.ledger.Residual(snap)
					part := s.partitionFor(epoch, residual)
					creq := base
					if demand.CPU > creq.MinCPU {
						creq.MinCPU = demand.CPU
					}
					var hpath hierarchy.Path
					res, hpath, err = hierarchy.SelectCtx(cctx, algo, residual, part, creq, src, opts)
					p.hier = string(hpath)
				} else {
					_, err = placeFn(cctx, s.ledger.Residual(snap), 0)
				}
				p.res = res
				p.trace, p.truncated = decisionRounds(g, steps)
				if err != nil {
					p.err = err
					p.errClass = classifyError(err)
				}
				return p
			}
			var plan cachedPlan
			if s.plans != nil && algo != core.AlgoRandom {
				entry, owner := s.plans.acquire(epoch, planKey(d.Mode, algo, req))
				if owner {
					d.Cache = "miss"
					// The sweep runs under the plan_cache span's context, so
					// core.sweep nests beneath it in the trace; on a hit the
					// span instead times the wait for the owner's result.
					cctx, span := reqtrace.StartSpan(ctx, "plan_cache")
					span.SetAttr("cache", "miss")
					func() {
						// Waiters must be released even if the computation
						// panics, or identical concurrent requests hang.
						published := false
						defer func() {
							if !published {
								entry.publish(cachedPlan{
									err:      fmt.Errorf("plan computation aborted"),
									errClass: classInternal,
								})
							}
						}()
						plan = compute(cctx)
						entry.publish(plan)
						published = true
					}()
					span.End()
				} else {
					d.Cache = "hit"
					span := reqtrace.StartChild(ctx, "plan_cache")
					span.SetAttr("cache", "hit")
					<-entry.ready
					span.End()
					plan = entry.plan
				}
			} else {
				d.Cache = s.cacheBypass()
				plan = compute(ctx)
			}
			d.Trace, d.TraceTruncated = plan.trace, plan.truncated
			if plan.hier != "" {
				d.Hierarchy = plan.hier
				s.metrics.hierRequests.With(plan.hier).Inc()
			}
			if plan.err != nil {
				fail(plan.errClass, plan.err)
				return
			}
			res = plan.res
		}
		resp.Nodes = res.Names(g)
		resp.MinCPU = res.MinCPU
		resp.PairMinBW = finite(res.PairMinBW)
		resp.MinResource = res.MinResource
	}

	d.Nodes = resp.Nodes
	d.MinCPU = resp.MinCPU
	d.PairMinBW = resp.PairMinBW
	d.MinResource = resp.MinResource
	s.metrics.minresource.Observe(resp.MinResource)
	s.metrics.lastMinresource.Set(resp.MinResource)
	finish()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleLeases lists the active leases plus the ledger's commitment
// summary — the operator's view of who holds what.
func (s *Service) handleLeases(w http.ResponseWriter, _ *http.Request) {
	leases := s.ledger.Active()
	if leases == nil {
		leases = []lease.Info{}
	}
	cpu, bw := s.ledger.MaxCommitted()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"leases":            leases,
		"max_cpu_committed": cpu,
		"max_bw_committed":  bw,
	})
}

func (s *Service) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	if s.replicaWriteGuard(w, r) {
		return
	}
	var body struct {
		TTL float64 `json:"ttl"` // seconds; 0 = service default
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
		writeError(r.Context(), w, http.StatusBadRequest, classBadRequest, "",
			fmt.Errorf("bad renew body: %w", err))
		return
	}
	info, err := s.ledger.Renew(r.Context(), r.PathValue("id"), time.Duration(body.TTL*float64(time.Second)))
	if err != nil {
		class := classifyError(err)
		writeError(r.Context(), w, statusFor(class), class, "", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

// handleMigrations lists the rebalance controller's pending proposals —
// for each, the lease, the from/to node sets, the expected gain, and the
// candidate placement's bottleneck.
func (s *Service) handleMigrations(w http.ResponseWriter, r *http.Request) {
	if s.rebal == nil {
		writeError(r.Context(), w, http.StatusNotFound, classNotFound, "",
			errors.New("rebalance controller is not enabled"))
		return
	}
	props := s.rebal.Proposals()
	if props == nil {
		props = []rebalance.Proposal{}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"proposals": props,
		"auto":      s.rebal.Auto(),
	})
}

// handleMigrationApply executes a pending proposal: an atomic
// reserve-new-then-release-old handover through the ledger, re-checked for
// admission at apply time. 409 with the binding bottleneck when the new
// set no longer fits alongside the old; 410 when the lease expired in the
// meantime.
func (s *Service) handleMigrationApply(w http.ResponseWriter, r *http.Request) {
	if s.replicaWriteGuard(w, r) {
		return
	}
	if s.rebal == nil {
		writeError(r.Context(), w, http.StatusNotFound, classNotFound, "",
			errors.New("rebalance controller is not enabled"))
		return
	}
	snap, _, _, _, err := s.snapshotFor(s.cfg.DefaultMode)
	if err != nil {
		class := classifyError(err)
		writeError(r.Context(), w, statusFor(class), class, "", err)
		return
	}
	info, err := s.rebal.Apply(r.Context(), snap, r.PathValue("id"))
	if err != nil {
		class := classifyError(err)
		var bottleneck string
		var adm *lease.AdmissionError
		if errors.As(err, &adm) {
			bottleneck = adm.Bottleneck
			s.metrics.admissionRejects.With(adm.Kind).Inc()
		}
		writeError(r.Context(), w, statusFor(class), class, bottleneck, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(info)
}

func (s *Service) handleLeaseRelease(w http.ResponseWriter, r *http.Request) {
	if s.replicaWriteGuard(w, r) {
		return
	}
	id := r.PathValue("id")
	if err := s.ledger.Release(r.Context(), id); err != nil {
		class := classifyError(err)
		writeError(r.Context(), w, statusFor(class), class, "", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"released": id})
}

func nodeNames(g *topology.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	sort.Strings(out)
	return out
}

func finite(v float64) float64 {
	if v > 1e300 {
		return 0
	}
	return v
}
