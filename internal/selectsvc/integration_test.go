package selectsvc

import (
	"encoding/json"
	"net/http"
	"testing"

	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/testbed"
)

// TestFullStackOverTCP exercises the complete deployment story with no
// shortcuts: a fleet of per-node measurement agents serves a synthetic
// testbed over TCP; the service discovers the topology from the agents,
// polls them, and answers placement queries over HTTP.
func TestFullStackOverTCP(t *testing.T) {
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	// Conditions: panama nodes loaded, one suez access link congested,
	// one gibraltar link down.
	for i := 1; i <= 6; i++ {
		src.SetLoad(g.MustNode("m-"+itoa(i)), 2.5)
	}
	m16 := g.MustNode("m-16")
	src.SetUsedBW(g.Incident(m16)[0], 95e6)
	m7 := g.MustNode("m-7")
	downLink := g.Incident(m7)[0]
	src.SetLinkUp(downLink, false)

	fleet, err := agent.StartFleet(src)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ns, err := agent.DiscoverSource(fleet.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer ns.Close()

	svc := New(ns, Config{DefaultMode: remos.Current, Seed: 9})
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	src.Advance(2)
	ns.Invalidate()
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}

	w := do(t, svc.Handler(), "POST", "/select", SelectRequest{M: 6})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 6 {
		t.Fatalf("nodes = %v", resp.Nodes)
	}
	for _, name := range resp.Nodes {
		switch name {
		case "m-1", "m-2", "m-3", "m-4", "m-5", "m-6":
			t.Errorf("selected loaded panama node %s", name)
		case "m-16":
			t.Errorf("selected congested node %s", name)
		case "m-7":
			t.Errorf("selected node behind a down link: %s", name)
		}
	}
	if resp.MinResource < 0.9 {
		t.Errorf("minresource = %v; an idle healthy 6-set exists", resp.MinResource)
	}
}

func itoa(i int) string {
	return string(rune('0' + i))
}
