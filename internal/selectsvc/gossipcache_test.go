package selectsvc

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"nodeselect/internal/gossip"
	"nodeselect/internal/measure"
	"nodeselect/internal/remos"
	"nodeselect/internal/topology"
)

// gossipObserve merges one complete fleet reading into the store, as a
// round of rumor mongering or an anti-entropy delta would: every node
// origin gets an observation stamped at wall ms, with loads taken from
// the map (absent = idle) and the hub (node 0, lower endpoint of every
// access link) carrying all the link counters.
func gossipObserve(t *testing.T, store *gossip.Store, g *topology.Graph, wall int64, loads map[string]float64) {
	t.Helper()
	links := make(map[int]gossip.LinkReading, g.NumLinks())
	for _, l := range g.Links() {
		links[l.ID] = gossip.LinkReading{}
	}
	for id := 0; id < g.NumNodes(); id++ {
		obs := gossip.Observation{
			Origin: id,
			Seq:    uint64(wall),
			Stamp:  gossip.Stamp{WallMS: wall},
			Time:   float64(wall) / 1000,
			Load:   loads[g.Node(id).Name],
		}
		if id == 0 {
			obs.Links = links
		}
		if !store.Put(obs) {
			t.Fatalf("observation for %s at wall %d did not apply", g.Node(id).Name, wall)
		}
	}
}

// TestGossipDeltaCannotStaleCachedPlan pins the plan-cache contract under
// -measure-source=gossip. The cache keys on (poll count, ledger version),
// and in gossip mode the backing store mutates *between* polls as
// anti-entropy deltas land — so the epoch key is only sound if those
// mutations cannot reach a served snapshot without a poll. They cannot:
// Collector.Snapshot is a pure function of the polled sample ring, and
// the gossip store is read exclusively inside PollCtx, so the store
// version may advance arbitrarily without perturbing what the current
// epoch serves. This test drives that end to end: a delta that flips the
// selection outcome lands after a plan is cached, the repeat request must
// still be a cache hit answering from the (unchanged) pre-delta snapshot,
// and only the next poll moves the epoch and surfaces the new world.
func TestGossipDeltaCannotStaleCachedPlan(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	for i := 0; i < 4; i++ {
		id := g.AddComputeNode(fmt.Sprintf("c%02d", i))
		g.Connect(hub, id, 100e6, topology.LinkOpts{})
	}
	clk := measure.NewManual(time.UnixMilli(0))
	store := gossip.NewStore(clk)
	src := gossip.NewSnapshotSource(g, store)

	// Two full-fleet readings with c02/c03 heavily loaded, one poll each,
	// so rate-based link counters have a window to difference over.
	gossipObserve(t, store, g, 1000, map[string]float64{"c02": 2.0, "c03": 2.0})
	svc := New(src, Config{Seed: 1, DefaultMode: remos.Current})
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	gossipObserve(t, store, g, 2000, map[string]float64{"c02": 2.0, "c03": 2.0})
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}

	h := svc.Handler()
	req := SelectRequest{M: 2, Algo: "compute"}
	first := append([]string(nil), selectNodes(t, h, req)...)
	sort.Strings(first)
	if want := []string{"c00", "c01"}; !reflect.DeepEqual(first, want) {
		t.Fatalf("initial select = %v, want the idle pair %v", first, want)
	}
	before, err := svc.snapshot("")
	if err != nil {
		t.Fatal(err)
	}

	// An anti-entropy delta flips the world: the idle pair is now the
	// loaded pair. The store version moves; the snapshot epoch must not.
	v0 := store.Version()
	gossipObserve(t, store, g, 3000, map[string]float64{"c00": 2.4, "c01": 2.4})
	if store.Version() == v0 {
		t.Fatal("gossip delta did not move the store version")
	}

	second := append([]string(nil), selectNodes(t, h, req)...)
	sort.Strings(second)
	if d := svc.Decisions(1)[0]; d.Cache != "hit" {
		t.Fatalf("repeat select after gossip delta: cache = %q, want hit", d.Cache)
	}
	if !reflect.DeepEqual(second, first) {
		t.Fatalf("cached answer changed under the same epoch: %v vs %v", second, first)
	}
	// The hit is fresh, not stale: the snapshot the epoch names is
	// untouched by the delta, so recomputing now would give the same plan.
	after, err := svc.snapshot("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.LoadAvg, before.LoadAvg) || !reflect.DeepEqual(after.AvailBW, before.AvailBW) {
		t.Fatalf("gossip delta leaked into the served snapshot without a poll:\nloads %v -> %v",
			before.LoadAvg, after.LoadAvg)
	}

	// Only a poll ingests the delta: the epoch moves, the cache flushes,
	// and the same request now answers from the flipped world.
	if err := svc.Poll(); err != nil {
		t.Fatal(err)
	}
	third := append([]string(nil), selectNodes(t, h, req)...)
	sort.Strings(third)
	if d := svc.Decisions(1)[0]; d.Cache != "miss" {
		t.Fatalf("select after poll: cache = %q, want miss", d.Cache)
	}
	if want := []string{"c02", "c03"}; !reflect.DeepEqual(third, want) {
		t.Fatalf("post-poll select = %v, want the newly idle pair %v", third, want)
	}
}
