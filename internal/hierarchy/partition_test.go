package hierarchy

import (
	"fmt"
	"reflect"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// craftedSnapshot builds a small topology with every partition case:
// a proper bundle, a second bundle distinguished only by node speed, a
// lone leaf (group of one), a multi-homed compute node, an isolated
// compute pair (degree-1 anchor), and a leaf split off its group by a
// perturbed access-link measurement.
func craftedSnapshot(t *testing.T) (*topology.Snapshot, map[string]int) {
	t.Helper()
	g := topology.NewGraph()
	ids := map[string]int{}
	add := func(name string, id int) int { ids[name] = id; return id }

	sw0 := add("sw0", g.AddNetworkNode("sw0"))
	sw1 := add("sw1", g.AddNetworkNode("sw1"))
	g.Connect(sw0, sw1, 1e9, topology.LinkOpts{Latency: 1e-4})

	for i := 1; i <= 3; i++ {
		id := add(fmt.Sprintf("a%d", i), g.AddComputeNodeSpec(fmt.Sprintf("a%d", i), 1, ""))
		g.SetNodeMemory(id, 1024)
		g.Connect(id, sw0, 100e6, topology.LinkOpts{Latency: 1e-4})
	}
	for i := 1; i <= 2; i++ {
		id := add(fmt.Sprintf("b%d", i), g.AddComputeNodeSpec(fmt.Sprintf("b%d", i), 2, ""))
		g.SetNodeMemory(id, 1024)
		g.Connect(id, sw0, 100e6, topology.LinkOpts{Latency: 1e-4})
	}
	lone := add("lone", g.AddComputeNodeSpec("lone", 1.5, ""))
	g.Connect(lone, sw1, 100e6, topology.LinkOpts{Latency: 1e-4})
	multi := add("multi", g.AddComputeNode("multi"))
	g.Connect(multi, sw0, 1e9, topology.LinkOpts{})
	g.Connect(multi, sw1, 1e9, topology.LinkOpts{})
	// Two compute nodes joined only to each other: each sees a degree-1
	// anchor, so neither may collapse into the other.
	p1 := add("pair1", g.AddComputeNode("pair1"))
	p2 := add("pair2", g.AddComputeNode("pair2"))
	g.Connect(p1, p2, 10e6, topology.LinkOpts{})
	// A would-be third member of the a-bundle whose access measurement
	// is perturbed below.
	split := add("split", g.AddComputeNodeSpec("split", 1, ""))
	g.SetNodeMemory(split, 1024)
	lidSplit := g.Connect(split, sw0, 100e6, topology.LinkOpts{Latency: 1e-4})

	s := topology.NewSnapshot(g)
	s.SetAvailBW(lidSplit, 40e6) // differs from its siblings' 100e6
	return s, ids
}

func TestPartitionStructure(t *testing.T) {
	s, ids := craftedSnapshot(t)
	p := Build(s)

	if got := p.Clusters(); got != 2 {
		t.Fatalf("Clusters() = %d, want 2 (got %+v)", got, p.Bundles())
	}
	bs := p.Bundles()
	// Bundles are ordered by smallest member ID: the a-bundle first.
	wantA := []int{ids["a1"], ids["a2"], ids["a3"]}
	if !reflect.DeepEqual(bs[0].Members, wantA) {
		t.Fatalf("bundle 0 members = %v, want %v", bs[0].Members, wantA)
	}
	wantB := []int{ids["b1"], ids["b2"]}
	if !reflect.DeepEqual(bs[1].Members, wantB) {
		t.Fatalf("bundle 1 members = %v, want %v", bs[1].Members, wantB)
	}
	for _, b := range bs {
		if b.Anchor != ids["sw0"] {
			t.Fatalf("bundle anchor = %d, want sw0 (%d)", b.Anchor, ids["sw0"])
		}
		if b.MinID != b.Members[0] {
			t.Fatalf("bundle MinID = %d, members %v", b.MinID, b.Members)
		}
	}
	if got := p.CollapsedNodes(); got != 5 {
		t.Fatalf("CollapsedNodes() = %d, want 5", got)
	}
	if got := p.BackboneNodes(); got != s.Graph.NumNodes()-5 {
		t.Fatalf("BackboneNodes() = %d, want %d", got, s.Graph.NumNodes()-5)
	}
	if p.Graph() != s.Graph {
		t.Fatalf("Graph() does not round-trip")
	}
	// The split leaf, the lone leaf, the multi-homed node and the
	// isolated pair all stay in the backbone.
	for _, name := range []string{"split", "lone", "multi", "pair1", "pair2"} {
		if p.bundleOf[ids[name]] != -1 {
			t.Fatalf("%s collapsed into bundle %d, want backbone", name, p.bundleOf[ids[name]])
		}
	}
}

func TestPartitionMemberRanking(t *testing.T) {
	s, ids := craftedSnapshot(t)
	// Loads differ per member: ranking must follow effective CPU
	// descending with ID ascending ties, not raw ID order.
	s.SetLoad(ids["a1"], 3) // eff 0.25
	s.SetLoad(ids["a2"], 0) // eff 1.00
	s.SetLoad(ids["a3"], 1) // eff 0.50
	p := Build(s)
	want := []int{ids["a2"], ids["a3"], ids["a1"]}
	if got := p.Bundles()[0].Members; !reflect.DeepEqual(got, want) {
		t.Fatalf("ranked members = %v, want %v", got, want)
	}
	if got := p.Bundles()[0].MinID; got != ids["a1"] {
		t.Fatalf("MinID = %d, want %d (smallest ID regardless of rank)", got, ids["a1"])
	}
}

func TestPartitionDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := randx.New(seed)
		s := clusteredSnapshot(src, 6, 5, 8)
		p1, p2 := Build(s), Build(s)
		if !reflect.DeepEqual(p1.Bundles(), p2.Bundles()) {
			t.Fatalf("seed %d: bundle sets differ across builds", seed)
		}
		if !reflect.DeepEqual(p1.backboneIDs, p2.backboneIDs) {
			t.Fatalf("seed %d: backbone sets differ across builds", seed)
		}
	}
}

// TestRouteDecomposition checks walkPair against the full static route
// table on every node pair: identical link sequences, hence identical
// bottlenecks, fractions and latencies for any scored set.
func TestRouteDecomposition(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		src := randx.New(seed)
		s := clusteredSnapshot(src, 4+src.Intn(6), 2+src.Intn(5), 6)
		p := Build(s)
		g := s.Graph
		n := g.NumNodes()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a == b {
					continue
				}
				var full, dec []int
				g.WalkRoute(a, b, func(l int) { full = append(full, l) })
				p.walkPair(a, b, func(l int) { dec = append(dec, l) })
				if !reflect.DeepEqual(full, dec) {
					t.Fatalf("seed %d: route %d->%d: full %v decomposed %v", seed, a, b, full, dec)
				}
			}
		}
	}
}
