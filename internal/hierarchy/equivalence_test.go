package hierarchy

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"nodeselect/internal/core"
	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// clusteredSnapshot builds a random two-tier topology in the quotient
// path's natural habitat: a backbone of switches (random tree plus chords)
// carrying a handful of loose and multi-homed compute nodes, with clusters
// of degree-1 leaves hanging off random switches. Access links are uniform
// within a cluster (the collapse precondition) but leaf loads are not —
// member ranking must cope with heterogeneous effective CPU. A few access
// links are perturbed afterwards so some leaves fall back to the backbone,
// and all bandwidths are quantized onto a coarse grid so equal-metric tiers
// (several links removed per sweep round, score collisions) are common.
func clusteredSnapshot(src *randx.Source, nSwitch, nClusters, leavesPer int) *topology.Snapshot {
	g := topology.NewGraph()
	caps := []float64{10e6, 100e6, 1e9}
	archs := []string{"", "x86", "alpha"}

	sw := make([]int, nSwitch)
	for i := range sw {
		sw[i] = g.AddNetworkNode(fmt.Sprintf("sw%d", i))
	}
	for i := 1; i < nSwitch; i++ {
		g.Connect(sw[src.Intn(i)], sw[i], caps[src.Intn(len(caps))],
			topology.LinkOpts{Latency: src.Float64() * 1e-3})
	}
	for e := 0; e < nSwitch/2; e++ {
		a, b := src.Intn(nSwitch), src.Intn(nSwitch)
		if a == b {
			continue
		}
		g.Connect(sw[a], sw[b], caps[src.Intn(len(caps))],
			topology.LinkOpts{Latency: src.Float64() * 1e-3})
	}

	nLoose := 2 + src.Intn(3)
	for i := 0; i < nLoose; i++ {
		id := g.AddComputeNodeSpec(fmt.Sprintf("x%d", i), 0.5+src.Float64()*1.5, archs[src.Intn(len(archs))])
		g.SetNodeMemory(id, float64(256*(1+src.Intn(8))))
		g.Connect(id, sw[src.Intn(nSwitch)], caps[src.Intn(len(caps))],
			topology.LinkOpts{Latency: src.Float64() * 1e-3})
		if src.Intn(2) == 0 { // multi-homed: stays in the backbone
			g.Connect(id, sw[src.Intn(nSwitch)], caps[src.Intn(len(caps))],
				topology.LinkOpts{Latency: src.Float64() * 1e-3})
		}
	}

	var accessLinks []int
	for c := 0; c < nClusters; c++ {
		anchor := sw[src.Intn(nSwitch)]
		speed := []float64{0.5, 1, 1.5, 2}[src.Intn(4)]
		arch := archs[src.Intn(len(archs))]
		mem := float64(512 * (1 + src.Intn(4)))
		capacity := caps[src.Intn(len(caps))]
		lat := float64(1+src.Intn(4)) * 25e-5
		n := 2 + src.Intn(leavesPer)
		for i := 0; i < n; i++ {
			id := g.AddComputeNodeSpec(fmt.Sprintf("c%d-%d", c, i), speed, arch)
			g.SetNodeMemory(id, mem)
			accessLinks = append(accessLinks,
				g.Connect(id, anchor, capacity, topology.LinkOpts{Latency: lat}))
		}
	}

	s := topology.NewSnapshot(g)
	for id := 0; id < g.NumNodes(); id++ {
		s.SetLoad(id, src.Float64()*4)
	}
	isAccess := make(map[int]bool, len(accessLinks))
	for _, l := range accessLinks {
		isAccess[l] = true
	}
	quantize := func(l int, frac float64) {
		c := g.Link(l).Capacity
		step := c / 8
		s.SetAvailBW(l, float64(int(frac*c/step))*step)
	}
	// Backbone links: independent random availability. Access links: one
	// draw per cluster, so the interior stays metric-uniform. accessLinks
	// is grouped by construction — a new cluster starts whenever the
	// anchor, capacity or latency changes relative to the previous link.
	frac := 0.0
	var prevAnchor int
	var prevCap, prevLat float64
	for i, l := range accessLinks {
		lk := g.Link(l)
		anchor := lk.A
		if g.Node(anchor).Kind == topology.Compute {
			anchor = lk.B
		}
		if i == 0 || anchor != prevAnchor || lk.Capacity != prevCap || lk.Latency != prevLat {
			frac = src.Float64()
		}
		prevAnchor, prevCap, prevLat = anchor, lk.Capacity, lk.Latency
		quantize(l, frac)
	}
	for l := 0; l < g.NumLinks(); l++ {
		if !isAccess[l] {
			quantize(l, src.Float64())
		}
	}
	// Perturb a few access links: those leaves lose interchangeability
	// and must fall back to the backbone without disturbing exactness.
	for k := 0; k < 1+src.Intn(3); k++ {
		l := accessLinks[src.Intn(len(accessLinks))]
		quantize(l, src.Float64())
	}
	return s
}

// hierRequest derives a request in the quotient path's gated class,
// cycling constraint shapes like core's equivalence suite does.
func hierRequest(src *randx.Source, s *topology.Snapshot, variant int) core.Request {
	nc := s.Graph.NumComputeNodes()
	m := 2
	if nc > 2 {
		m = 2 + src.Intn(nc-1)
	}
	req := core.Request{M: m}
	switch variant % 7 {
	case 1:
		req.MinBW = src.Float64() * 200e6
	case 2:
		req.MinCPU = src.Float64()
	case 3:
		req.ComputePriority = 0.5 + src.Float64()*3.5
		req.RefCapacity = 100e6
	case 4:
		req.MinMemoryMB = float64(256 * (1 + src.Intn(8)))
	case 5:
		cut := src.Intn(s.Graph.NumNodes()) + 1
		req.Eligible = func(node int) bool { return node%cut != 0 || node == 0 }
	case 6:
		req.MinBW = src.Float64() * 100e6
		req.MinCPU = src.Float64() * 0.5
	}
	return req
}

// assertHierEquivalent requires the quotient path to engage and to agree
// with the flat fast path bit for bit: every Result field, error class and
// error message.
func assertHierEquivalent(t *testing.T, algo string, s *topology.Snapshot, p *Partition, req core.Request, tag string) {
	t.Helper()
	hres, path, herr := Select(algo, s, p, req, nil, core.Options{})
	cres, cerr := core.SelectOpt(algo, s, req, nil, core.Options{})
	if path != PathQuotient {
		t.Fatalf("%s: path = %q, want quotient", tag, path)
	}
	if (herr == nil) != (cerr == nil) {
		t.Fatalf("%s: error divergence: hier=%v flat=%v", tag, herr, cerr)
	}
	if herr != nil {
		for _, class := range []error{core.ErrBadRequest, core.ErrTooFewNodes, core.ErrNoFeasibleSet} {
			if errors.Is(herr, class) != errors.Is(cerr, class) {
				t.Fatalf("%s: error class divergence: hier=%v flat=%v", tag, herr, cerr)
			}
		}
		if herr.Error() != cerr.Error() {
			t.Fatalf("%s: error message divergence:\nhier: %v\nflat: %v", tag, herr, cerr)
		}
		return
	}
	if !reflect.DeepEqual(hres, cres) {
		t.Fatalf("%s: result divergence:\nhier: %+v\nflat: %+v", tag, hres, cres)
	}
}

// TestQuotientEquivalence is the exact-equivalence wall of DESIGN.md §15:
// on every topology where the quotient path engages, hierarchical selection
// returns exactly what the flat fast path returns — node sets, every score
// field, bottleneck identity, and error text.
func TestQuotientEquivalence(t *testing.T) {
	shapes := []struct{ nSwitch, nClusters, leavesPer int }{
		{3, 2, 4},
		{6, 4, 6},
		{10, 8, 10},
		{5, 3, 30},
	}
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	for si, shape := range shapes {
		for seed := 0; seed < seeds; seed++ {
			src := randx.New(int64(1000*si + seed))
			s := clusteredSnapshot(src, shape.nSwitch, shape.nClusters, shape.leavesPer)
			p := Build(s)
			if p.Clusters() == 0 {
				t.Fatalf("shape %d seed %d: no clusters formed", si, seed)
			}
			for variant := 0; variant < 7; variant++ {
				req := hierRequest(src, s, variant)
				for _, algo := range []string{core.AlgoBandwidth, core.AlgoBalanced} {
					tag := fmt.Sprintf("shape %d seed %d variant %d algo %s", si, seed, variant, algo)
					assertHierEquivalent(t, algo, s, p, req, tag)
				}
			}
		}
	}
}

// TestQuotientErrorEquivalence pins the two structured failure modes to
// the flat path's exact wording.
func TestQuotientErrorEquivalence(t *testing.T) {
	src := randx.New(7)
	s := clusteredSnapshot(src, 4, 3, 5)
	p := Build(s)

	// Too few eligible nodes: a CPU floor no node clears.
	req := core.Request{M: 2, MinCPU: 99}
	_, path, err := Select(core.AlgoBalanced, s, p, req, nil, core.Options{})
	if path != PathQuotient || !errors.Is(err, core.ErrTooFewNodes) {
		t.Fatalf("CPU floor: path=%q err=%v", path, err)
	}
	_, cerr := core.SelectOpt(core.AlgoBalanced, s, req, nil, core.Options{})
	if err.Error() != cerr.Error() {
		t.Fatalf("too-few message divergence:\nhier: %v\nflat: %v", err, cerr)
	}

	// No feasible set: a bandwidth floor no link clears leaves only
	// singleton components.
	req = core.Request{M: 2, MinBW: 1e12}
	_, path, err = Select(core.AlgoBandwidth, s, p, req, nil, core.Options{})
	if path != PathQuotient || !errors.Is(err, core.ErrNoFeasibleSet) {
		t.Fatalf("BW floor: path=%q err=%v", path, err)
	}
	_, cerr = core.SelectOpt(core.AlgoBandwidth, s, req, nil, core.Options{})
	if err.Error() != cerr.Error() {
		t.Fatalf("no-feasible message divergence:\nhier: %v\nflat: %v", err, cerr)
	}
}

// TestFallbackGates drives every exit of quotientApplies and checks the
// fallback answer matches core exactly.
func TestFallbackGates(t *testing.T) {
	src := randx.New(11)
	s := clusteredSnapshot(src, 4, 3, 5)
	p := Build(s)
	comp := s.Graph.ComputeNodes()

	cases := []struct {
		name string
		algo string
		p    *Partition
		req  core.Request
		opts core.Options
	}{
		{name: "nil partition", algo: core.AlgoBalanced, p: nil, req: core.Request{M: 2}},
		{name: "foreign graph", algo: core.AlgoBalanced, p: Build(clusteredSnapshot(randx.New(12), 3, 2, 4)), req: core.Request{M: 2}},
		{name: "compute algo", algo: core.AlgoCompute, p: p, req: core.Request{M: 2}},
		{name: "static algo", algo: core.AlgoStatic, p: p, req: core.Request{M: 2}},
		{name: "M=1", algo: core.AlgoBandwidth, p: p, req: core.Request{M: 1}},
		{name: "pinned", algo: core.AlgoBalanced, p: p, req: core.Request{M: 2, Pinned: []int{comp[0]}}},
		{name: "latency ceiling", algo: core.AlgoBalanced, p: p, req: core.Request{M: 2, MaxPairLatency: 5e-3}},
		{name: "observer", algo: core.AlgoBalanced, p: p, req: core.Request{M: 2},
			opts: core.Options{Observer: func(core.SweepStep) {}}},
		{name: "paper early stop", algo: core.AlgoBalanced, p: p, req: core.Request{M: 2},
			opts: core.Options{PaperEarlyStop: true}},
		{name: "paper single edge", algo: core.AlgoBandwidth, p: p, req: core.Request{M: 2},
			opts: core.Options{PaperSingleEdgeRemoval: true}},
	}
	for _, tc := range cases {
		hres, path, herr := Select(tc.algo, s, tc.p, tc.req, nil, tc.opts)
		if path != PathFallback {
			t.Fatalf("%s: path = %q, want fallback", tc.name, path)
		}
		cres, cerr := core.SelectOpt(tc.algo, s, tc.req, nil, tc.opts)
		if (herr == nil) != (cerr == nil) || (herr != nil && herr.Error() != cerr.Error()) {
			t.Fatalf("%s: error divergence: hier=%v flat=%v", tc.name, herr, cerr)
		}
		if herr == nil && !reflect.DeepEqual(hres, cres) {
			t.Fatalf("%s: result divergence:\nhier: %+v\nflat: %+v", tc.name, hres, cres)
		}
	}

	// A partition with nothing collapsed also falls back.
	g := topology.NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	sw := g.AddNetworkNode("sw")
	g.Connect(a, sw, 100e6, topology.LinkOpts{})
	g.Connect(b, sw, 10e6, topology.LinkOpts{}) // differing capacity: no bundle
	flat := topology.NewSnapshot(g)
	fp := Build(flat)
	if fp.Clusters() != 0 {
		t.Fatalf("expected no clusters, got %d", fp.Clusters())
	}
	if _, path, _ := Select(core.AlgoBalanced, flat, fp, core.Request{M: 2}, nil, core.Options{}); path != PathFallback {
		t.Fatalf("uncollapsed partition: path = %q, want fallback", path)
	}
}

// TestSelectCtx smoke-tests the traced wrapper on both paths.
func TestSelectCtx(t *testing.T) {
	src := randx.New(3)
	s := clusteredSnapshot(src, 4, 3, 5)
	p := Build(s)
	ctx := context.Background()
	res, path, err := SelectCtx(ctx, core.AlgoBalanced, s, p, core.Request{M: 2}, nil, core.Options{})
	if err != nil || path != PathQuotient || len(res.Nodes) != 2 {
		t.Fatalf("SelectCtx quotient: res=%+v path=%q err=%v", res, path, err)
	}
	if _, path, err = SelectCtx(ctx, core.AlgoBalanced, s, p, core.Request{M: 1}, nil, core.Options{}); err != nil || path != PathFallback {
		t.Fatalf("SelectCtx fallback: path=%q err=%v", path, err)
	}
	// Error propagation through the span wrapper.
	if _, _, err = SelectCtx(ctx, core.AlgoBalanced, s, p, core.Request{M: 2, MinCPU: 99}, nil, core.Options{}); !errors.Is(err, core.ErrTooFewNodes) {
		t.Fatalf("SelectCtx error: %v", err)
	}
}
