package hierarchy

import (
	"context"
	"fmt"
	"math"
	"sort"

	"nodeselect/internal/core"
	"nodeselect/internal/randx"
	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// Path reports which implementation answered a hierarchy-routed request.
type Path string

const (
	// PathQuotient means the collapsed quotient sweep ran.
	PathQuotient Path = "quotient"
	// PathFallback means the request fell outside the quotient path's
	// proven-equivalent class and the flat core path answered instead.
	PathFallback Path = "fallback"
)

// Select runs cluster-first selection. When the request lies in the
// quotient path's exact-equivalence class — a bandwidth or balanced sweep,
// M ≥ 2, no pinned nodes, no latency ceiling, no observer or paper-literal
// ablation, and a partition with at least one cluster built over this
// graph — the collapsed sweep answers; anything else falls back to
// core.SelectOpt unchanged. Either way the caller gets exactly what the
// flat path would have returned.
//
// The snapshot must carry the same measurements the partition was built
// from (services guarantee this by caching partitions per measurement
// epoch); otherwise the cluster signatures no longer describe the network
// and the equivalence contract is void.
func Select(algo string, s *topology.Snapshot, p *Partition, req core.Request, src *randx.Source, opts core.Options) (core.Result, Path, error) {
	if !quotientApplies(algo, s, p, req, opts) {
		res, err := core.SelectOpt(algo, s, req, src, opts)
		return res, PathFallback, err
	}
	res, err := quotientSelect(s, p, req, algo == core.AlgoBalanced)
	return res, PathQuotient, err
}

// SelectCtx is Select timed as a "hierarchy.sweep" span on the context's
// trace, recording which path answered.
func SelectCtx(ctx context.Context, algo string, s *topology.Snapshot, p *Partition, req core.Request, src *randx.Source, opts core.Options) (core.Result, Path, error) {
	span := reqtrace.StartChild(ctx, "hierarchy.sweep")
	defer span.End()
	span.SetAttr("algo", algo)
	res, path, err := Select(algo, s, p, req, src, opts)
	span.SetAttr("path", string(path))
	if err != nil {
		span.Fail(err)
	}
	return res, path, err
}

// quotientApplies gates the quotient sweep to the request class its
// equivalence argument covers (see DESIGN.md §15). Outside it the flat
// path is authoritative:
//
//   - only the sweep objectives collapse (compute/random/static have no
//     edge-deletion structure to exploit);
//   - M < 2 admits singleton components, which the quotient graph does
//     not track below cluster activation;
//   - pinned nodes and latency ceilings make candidate pools depend on
//     concrete member identity, not cluster rank order;
//   - observers and the paper-literal ablations are defined in terms of
//     the flat enumeration;
//   - and a partition from another graph (or with nothing collapsed)
//     offers no quotient to sweep.
func quotientApplies(algo string, s *topology.Snapshot, p *Partition, req core.Request, opts core.Options) bool {
	if p == nil || s == nil || p.g != s.Graph || len(p.bundles) == 0 {
		return false
	}
	if algo != core.AlgoBalanced && algo != core.AlgoBandwidth {
		return false
	}
	if req.M < 2 || len(req.Pinned) > 0 || req.MaxPairLatency > 0 {
		return false
	}
	if opts.Observer != nil || opts.PaperEarlyStop || opts.PaperSingleEdgeRemoval {
		return false
	}
	return true
}

// qedge is one quotient-graph edge: a usable backbone link, or a cluster
// activation (the single edge standing in for every access link of one
// bundle, at their shared metric).
type qedge struct {
	metric float64
	a, b   int // dense quotient vertex indices
}

// hrec is one recorded component of the quotient sweep's laminar family,
// mirroring the flat path's sweepComp.
type hrec struct {
	birth, death int
	minID        int
	score        float64
	res          core.Result
}

// setEval memoizes the pure node-set evaluation, as the flat path does:
// consecutive components of the merge hierarchy usually re-select the same
// top-CPU set.
type setEval struct {
	res   core.Result
	score float64
	keep  bool
}

// quotientSelect is the collapsed form of core's fastSweepSelect. The
// quotient graph has one vertex per backbone node and one per bundle; a
// bundle's activation edge joins it to its anchor at the uniform metric of
// its access links. Because every access link of a bundle shares one
// metric value, the quotient tier value sequence equals the flat one, and
// with M ≥ 2 the flat sweep's sub-activation fragments (isolated members)
// can never record — so the recorded component family, with births,
// deaths, min IDs, candidate sets (merged per-cluster rank prefixes) and
// scores (decomposed routes), matches the flat path's exactly.
func quotientSelect(s *topology.Snapshot, p *Partition, req core.Request, balanced bool) (core.Result, error) {
	g := s.Graph
	m := req.M

	// Per-request eligibility, mirroring core's request validation for
	// the gated class (no pins reach this path).
	eligNode := func(id int) bool {
		if req.Eligible != nil && !req.Eligible(id) {
			return false
		}
		if req.MinCPU > 0 && s.EffectiveCPU(id) < req.MinCPU {
			return false
		}
		if req.MinMemoryMB > 0 && g.Node(id).MemoryMB < req.MinMemoryMB {
			return false
		}
		return true
	}
	unconstrained := req.Eligible == nil && req.MinCPU <= 0 && req.MinMemoryMB <= 0

	// eligMembers[j] is bundle j's eligible members in rank order — the
	// cluster's slice of the global topCPUNodes order.
	eligMembers := make([][]int, len(p.bundles))
	eligTotal := 0
	for j := range p.bundles {
		b := &p.bundles[j]
		if unconstrained {
			eligMembers[j] = b.Members
		} else {
			kept := b.Members[:0:0]
			for _, id := range b.Members {
				if eligNode(id) {
					kept = append(kept, id)
				}
			}
			eligMembers[j] = kept
		}
		eligTotal += len(eligMembers[j])
	}
	nb := len(p.backboneIDs)
	eligBackbone := make([]bool, nb)
	for i, id := range p.backboneIDs {
		if g.Node(id).Kind == topology.Compute && eligNode(id) {
			eligBackbone[i] = true
			eligTotal++
		}
	}
	if eligTotal < m {
		return core.Result{}, fmt.Errorf("%w: %d eligible, %d required", core.ErrTooFewNodes, eligTotal, m)
	}

	metricOf := func(l int) float64 {
		if balanced {
			return linkFactor(s, l, req)
		}
		return s.AvailBW[l]
	}
	usable := func(l int) bool { return req.MinBW <= 0 || s.AvailBW[l] >= req.MinBW }

	// Quotient edges: usable backbone links plus one activation edge per
	// bundle with a usable interior. A bundle with an unusable interior
	// never activates — exactly as its members stay isolated singletons
	// in the flat sweep.
	var edges []qedge
	for l := 0; l < g.NumLinks(); l++ {
		lk := g.Link(l)
		ai, bi := p.bidx[lk.A], p.bidx[lk.B]
		if ai < 0 || bi < 0 {
			continue // an access link, represented by its bundle's activation
		}
		if usable(l) {
			edges = append(edges, qedge{metric: metricOf(l), a: ai, b: bi})
		}
	}
	for j := range p.bundles {
		b := &p.bundles[j]
		if usable(b.Links[0]) {
			edges = append(edges, qedge{metric: metricOf(b.Links[0]), a: nb + j, b: p.bidx[b.Anchor]})
		}
	}
	// Ascending metric; ties keep insertion order (irrelevant to the
	// outcome — records happen only at tier boundaries — but stable).
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].metric < edges[j].metric })
	var tiers [][]qedge
	for i := 0; i < len(edges); {
		j := i
		for j < len(edges) && edges[j].metric == edges[i].metric {
			j++
		}
		tiers = append(tiers, edges[i:j])
		i = j
	}
	k := len(tiers)

	// Union-find over quotient vertices with the component aggregates the
	// sweep needs: eligible count, min member ID (over every collapsed
	// and backbone node), and the top-m eligible members in rank order.
	nv := nb + len(p.bundles)
	parent := make([]int, nv)
	size := make([]int, nv)
	minID := make([]int, nv)
	eligCnt := make([]int, nv)
	top := make([][]int, nv)
	for i := 0; i < nv; i++ {
		parent[i] = i
		if i < nb {
			id := p.backboneIDs[i]
			size[i] = 1
			minID[i] = id
			if eligBackbone[i] {
				eligCnt[i] = 1
				top[i] = []int{id}
			}
		} else {
			b := &p.bundles[i-nb]
			size[i] = len(b.Members)
			minID[i] = b.MinID
			em := eligMembers[i-nb]
			eligCnt[i] = len(em)
			if len(em) > m {
				em = em[:m]
			}
			top[i] = em
		}
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	better := func(a, b int) bool {
		ca, cb := s.EffectiveCPU(a), s.EffectiveCPU(b)
		if ca != cb {
			return ca > cb
		}
		return a < b
	}
	mergeTop := func(x, y []int) []int {
		want := len(x) + len(y)
		if want > m {
			want = m
		}
		out := make([]int, 0, want)
		i, j := 0, 0
		for len(out) < want {
			switch {
			case i == len(x):
				out = append(out, y[j])
				j++
			case j == len(y):
				out = append(out, x[i])
				i++
			case better(x[i], y[j]):
				out = append(out, x[i])
				i++
			default:
				out = append(out, y[j])
				j++
			}
		}
		return out
	}
	union := func(a, b int) (winner, loser int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return ra, -1
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
		if minID[rb] < minID[ra] {
			minID[ra] = minID[rb]
		}
		eligCnt[ra] += eligCnt[rb]
		top[ra] = mergeTop(top[ra], top[rb])
		top[rb] = nil
		return ra, rb
	}

	var recs []hrec
	cur := make([]int, nv)
	for i := range cur {
		cur[i] = -1
	}
	memo := make(map[string]setEval)
	evaluate := func(root, death int) {
		if eligCnt[root] < m {
			return // the flat path's pools all come up short too
		}
		nodes := append([]int(nil), top[root]...)
		sort.Ints(nodes)
		key := nodeSetKey(nodes)
		e, ok := memo[key]
		if !ok {
			res := p.score(s, nodes, req)
			if req.MinBW > 0 && res.PairMinBW < req.MinBW {
				e = setEval{}
			} else if balanced {
				e = setEval{res: res, score: math.Min(res.MinCPU, priorityOf(req)*res.MinBWFactor), keep: true}
			} else {
				e = setEval{res: res, score: res.PairMinBW, keep: true}
			}
			memo[key] = e
		}
		if !e.keep {
			return
		}
		recs = append(recs, hrec{death: death, minID: minID[root], score: e.score, res: e.res})
		cur[root] = len(recs) - 1
	}

	// Round k (every quotient vertex isolated) is skipped deliberately:
	// in the flat sweep round k holds only singleton nodes, which with
	// M ≥ 2 can never record — and a not-yet-activated bundle vertex is
	// not a flat component at all, so it must not be evaluated early.
	dirtyMark := make([]int, nv)
	for i := range dirtyMark {
		dirtyMark[i] = -1
	}
	var dirty []int
	for t := k; t >= 1; t-- {
		dirty = dirty[:0]
		for _, e := range tiers[t-1] {
			winner, loser := union(e.a, e.b)
			if loser < 0 {
				continue // cycle edge: component unchanged
			}
			for _, r := range [2]int{winner, loser} {
				if cur[r] >= 0 {
					recs[cur[r]].birth = t
					cur[r] = -1
				}
			}
			if dirtyMark[winner] != t {
				dirtyMark[winner] = t
				dirty = append(dirty, winner)
			}
		}
		for _, r := range dirty {
			if find(r) != r {
				continue // absorbed by a later merge within the same tier
			}
			evaluate(r, t-1)
		}
	}

	best := -1
	for i := range recs {
		r := &recs[i]
		if best < 0 {
			best = i
			continue
		}
		b := &recs[best]
		if r.score > b.score ||
			(r.score == b.score && (r.birth < b.birth ||
				(r.birth == b.birth && r.minID < b.minID))) {
			best = i
		}
	}
	if best < 0 {
		return core.Result{}, fmt.Errorf("%w: no component provides %d connected eligible compute nodes",
			core.ErrNoFeasibleSet, req.M)
	}
	return recs[best].res, nil
}

// nodeSetKey encodes a sorted node-ID set as a compact self-delimiting
// string, the same memo key shape the flat path uses.
func nodeSetKey(nodes []int) string {
	b := make([]byte, 0, len(nodes)*2+4)
	for _, id := range nodes {
		v := uint(id)
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}
