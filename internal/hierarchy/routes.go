package hierarchy

import (
	"fmt"
	"math"
	"sort"

	"nodeselect/internal/core"
	"nodeselect/internal/topology"
)

// backboneRoutes is a static route table restricted to the backbone nodes,
// in dense backbone indices. Building it costs O(B·(B+E_b)) time and
// O(B²) memory for B backbone nodes — against the full table's O(V²),
// which at 50k nodes is tens of gigabytes and the reason the flat path
// cannot scale.
//
// Restricted to backbone endpoints it reproduces the full table exactly:
// the full builder BFSes every destination scanning adjacency in link-ID
// order, and bundle members are degree-1 dead ends — they are discovered
// and enqueued but expand to nothing, so deleting them from the BFS never
// reorders the discovery of backbone nodes nor changes any backbone next
// pointer. A full-graph route therefore decomposes as
//
//	route(a, b) = access(a) + backboneRoute(anchor(a), anchor(b)) + access(b)
//
// with the access terms present only for collapsed members, and the link
// order of the walk preserved — which is what lets the quotient path score
// candidate sets bit-identically to core.Score without ever materializing
// the V×V table.
type backboneRoutes struct {
	n int
	// next[si*n+di] is the original link ID of the first hop from
	// backbone node si towards backbone node di, or -1; hops is the hop
	// count, or -1 when unreachable.
	next []int32
	hops []int32
}

// buildBackboneRoutes BFSes every backbone destination over the
// backbone-only adjacency (the full adjacency with member links skipped),
// in the same link-ID scan order as topology's full-table builder.
func buildBackboneRoutes(g *topology.Graph, backboneIDs []int, bidx []int) *backboneRoutes {
	n := len(backboneIDs)
	rt := &backboneRoutes{
		n:    n,
		next: make([]int32, n*n),
		hops: make([]int32, n*n),
	}
	for i := range rt.next {
		rt.next[i] = -1
		rt.hops[i] = -1
	}
	queue := make([]int, 0, n)
	for di := 0; di < n; di++ {
		rt.hops[di*n+di] = 0
		queue = append(queue[:0], di)
		for head := 0; head < len(queue); head++ {
			ui := queue[head]
			u := backboneIDs[ui]
			for _, lid := range g.Incident(u) {
				v := g.Link(lid).Other(u)
				vi := bidx[v]
				if vi < 0 {
					continue // collapsed member: a dead end for routing
				}
				if rt.hops[vi*n+di] < 0 {
					rt.hops[vi*n+di] = rt.hops[ui*n+di] + 1
					rt.next[vi*n+di] = int32(lid)
					queue = append(queue, vi)
				}
			}
		}
	}
	return rt
}

// walkBackbone visits the links of the backbone route between two backbone
// nodes (original IDs), in path order. It panics on unreachable pairs,
// mirroring topology.WalkRoute.
func (p *Partition) walkBackbone(a, b int, visit func(linkID int)) {
	if a == b {
		return
	}
	rt := p.routes
	ai, bi := p.bidx[a], p.bidx[b]
	if rt.hops[ai*rt.n+bi] < 0 {
		panic(fmt.Sprintf("hierarchy: no route from node %d to node %d", a, b))
	}
	for u := ai; u != bi; {
		lid := int(rt.next[u*rt.n+bi])
		visit(lid)
		u = p.bidx[p.g.Link(lid).Other(p.backboneIDs[u])]
	}
}

// walkPair visits the links of the full-graph static route between any two
// nodes, in path order, using the access + backbone + access decomposition.
func (p *Partition) walkPair(a, b int, visit func(linkID int)) {
	if a == b {
		return
	}
	aa, ab := p.anchorOf[a], p.anchorOf[b]
	if aa != a {
		visit(p.accessOf[a])
	}
	if aa != ab {
		p.walkBackbone(aa, ab, visit)
	}
	if ab != b {
		visit(p.accessOf[b])
	}
}

// linkFactor mirrors core's fractional availability convention.
func linkFactor(s *topology.Snapshot, link int, req core.Request) float64 {
	if req.RefCapacity > 0 {
		return s.AvailBW[link] / req.RefCapacity
	}
	return s.BWFactor(link)
}

// priorityOf mirrors core's effective compute priority.
func priorityOf(req core.Request) float64 {
	if req.ComputePriority <= 0 {
		return 1
	}
	return req.ComputePriority
}

// score replicates core.Score field by field — same pair iteration order,
// same walk order, same strict-minimum bottleneck capture — over the
// decomposed routes, so the quotient path's results and audit fields are
// indistinguishable from the flat path's.
func (p *Partition) score(s *topology.Snapshot, nodes []int, req core.Request) core.Result {
	res := core.Result{
		Nodes:          append([]int(nil), nodes...),
		MinCPU:         math.Inf(1),
		PairMinBW:      math.Inf(1),
		MinBWFactor:    math.Inf(1),
		BottleneckLink: -1,
	}
	sort.Ints(res.Nodes)
	for _, id := range res.Nodes {
		if cpu := s.EffectiveCPU(id); cpu < res.MinCPU {
			res.MinCPU = cpu
		}
	}
	for i := 0; i < len(res.Nodes); i++ {
		for j := i + 1; j < len(res.Nodes); j++ {
			a, b := res.Nodes[i], res.Nodes[j]
			lat := 0.0
			p.walkPair(a, b, func(lid int) {
				bw := s.AvailBW[lid]
				if bw < res.PairMinBW {
					res.PairMinBW = bw
					res.BottleneckLink = lid
				}
				if f := linkFactor(s, lid, req); f < res.MinBWFactor {
					res.MinBWFactor = f
				}
				lat += s.Graph.Link(lid).Latency
			})
			if lat > res.MaxPairLatency {
				res.MaxPairLatency = lat
			}
		}
	}
	if len(res.Nodes) == 0 {
		res.MinCPU = 0
	}
	res.MinResource = math.Min(res.MinCPU, priorityOf(req)*res.MinBWFactor)
	return res
}
