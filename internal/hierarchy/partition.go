// Package hierarchy implements cluster-first selection for large
// topologies: it collapses groups of interchangeable access-layer compute
// nodes into logical clusters, runs the Figure 2/3 union-find bottleneck
// sweep on the collapsed quotient graph, and descends into the winning
// clusters to pick concrete nodes. On every topology and request where the
// quotient path engages, the returned placement is exactly — bit for bit —
// the one the flat fast path in internal/core would have produced
// (TestQuotientEquivalence holds both implementations to that contract);
// the quotient path merely refuses requests outside its proven class and
// falls back to the flat path for them.
//
// The collapse follows the logical-homogeneous-cluster idea of Estefanel &
// Mounié (cs/0408033): a cluster is a maximal group of degree-1 compute
// nodes hanging off one attachment node whose static attributes (speed,
// architecture, memory) and access links (capacity, latency, duplex,
// available bandwidth) are indistinguishable. Inside such a group the sweep
// metric is uniform for every objective and reference capacity, so the
// entire group enters and leaves the edge-deletion sweep at one threshold —
// which is what makes a single quotient vertex with one activation edge an
// exact stand-in for the whole group.
package hierarchy

import (
	"sort"

	"nodeselect/internal/topology"
)

// Bundle is one logical cluster: interchangeable degree-1 compute nodes
// sharing an attachment node and an identical access-link signature.
type Bundle struct {
	// Anchor is the attachment node every member links to. It is usually
	// a switch but may be any node of degree > 1.
	Anchor int
	// Members are the clustered compute nodes, ranked by descending
	// effective CPU with ties broken by ascending ID — the exact order
	// the flat sweep's topCPUNodes would consider them in.
	Members []int
	// Links[i] is Members[i]'s access link.
	Links []int
	// MinID is the smallest member ID; it is the cluster's contribution
	// to the component-identity tie-break of the sweep.
	MinID int
	// AvailBW and Capacity are the (uniform) access-link measurements the
	// cluster was formed under.
	AvailBW, Capacity float64
}

// Partition is the cluster decomposition of one snapshot: the bundles, the
// residual backbone (every node not collapsed into a bundle), and a
// backbone-only static route table that reproduces the full graph's routes
// between attachment points. A partition is valid only for snapshots
// carrying the same measurements it was built from; services cache it per
// measurement epoch exactly like the plan cache.
type Partition struct {
	g       *topology.Graph
	bundles []Bundle

	// bundleOf maps a node to its bundle index, or -1.
	bundleOf []int
	// accessOf maps a bundle member to its access link, or -1.
	accessOf []int
	// anchorOf maps every node to its routing anchor: the bundle anchor
	// for members, the node itself for backbone nodes.
	anchorOf []int
	// backboneIDs are the non-collapsed node IDs, ascending; bidx maps a
	// node ID to its dense index in backboneIDs, or -1 for members.
	backboneIDs []int
	bidx        []int

	routes *backboneRoutes
}

// bundleSig is the equivalence signature members of one bundle must share.
// Any difference in these fields makes two leaves non-interchangeable under
// some request, so they land in distinct bundles (or in the backbone).
type bundleSig struct {
	anchor     int
	speed      float64
	arch       string
	memoryMB   float64
	capacity   float64
	latency    float64
	fullDuplex bool
	availBW    float64
}

// Build computes the partition of a snapshot. Degree-1 compute nodes are
// grouped by (anchor, node signature, access-link signature, access
// available bandwidth); groups of at least two become bundles, everything
// else stays in the backbone. The backbone route table is built eagerly so
// a cached partition is immediately servable.
func Build(s *topology.Snapshot) *Partition {
	g := s.Graph
	n := g.NumNodes()
	p := &Partition{
		g:        g,
		bundleOf: make([]int, n),
		accessOf: make([]int, n),
		anchorOf: make([]int, n),
		bidx:     make([]int, n),
	}
	for i := 0; i < n; i++ {
		p.bundleOf[i] = -1
		p.accessOf[i] = -1
		p.anchorOf[i] = i
		p.bidx[i] = -1
	}

	groups := make(map[bundleSig][]int)
	for _, id := range g.ComputeNodes() {
		if g.Degree(id) != 1 {
			continue
		}
		lid := g.Incident(id)[0]
		lk := g.Link(lid)
		anchor := lk.Other(id)
		// A degree-1 anchor would make membership ambiguous (each
		// endpoint could collapse into the other); keep both loose.
		if g.Degree(anchor) <= 1 {
			continue
		}
		node := g.Node(id)
		sig := bundleSig{
			anchor:     anchor,
			speed:      node.Speed,
			arch:       node.Arch,
			memoryMB:   node.MemoryMB,
			capacity:   lk.Capacity,
			latency:    lk.Latency,
			fullDuplex: lk.FullDuplex,
			availBW:    s.AvailBW[lid],
		}
		groups[sig] = append(groups[sig], id)
	}

	for sig, members := range groups {
		if len(members) < 2 {
			continue // a lone leaf gains nothing from collapsing
		}
		b := Bundle{
			Anchor:   sig.anchor,
			Members:  members, // ascending ID (ComputeNodes order); re-ranked below
			Links:    make([]int, len(members)),
			MinID:    members[0],
			AvailBW:  sig.availBW,
			Capacity: sig.capacity,
		}
		// Rank members exactly as the flat sweep's topCPUNodes orders
		// candidates: effective CPU descending, ID ascending.
		sort.Slice(b.Members, func(i, j int) bool {
			a, c := b.Members[i], b.Members[j]
			ca, cc := s.EffectiveCPU(a), s.EffectiveCPU(c)
			if ca != cc {
				return ca > cc
			}
			return a < c
		})
		for i, id := range b.Members {
			b.Links[i] = g.Incident(id)[0]
		}
		p.bundles = append(p.bundles, b)
	}
	// The grouping map's iteration order must not leak into bundle
	// numbering: order bundles by their smallest member.
	sort.Slice(p.bundles, func(i, j int) bool { return p.bundles[i].MinID < p.bundles[j].MinID })
	for j := range p.bundles {
		b := &p.bundles[j]
		for i, id := range b.Members {
			p.bundleOf[id] = j
			p.accessOf[id] = b.Links[i]
			p.anchorOf[id] = b.Anchor
		}
	}

	for id := 0; id < n; id++ {
		if p.bundleOf[id] < 0 {
			p.bidx[id] = len(p.backboneIDs)
			p.backboneIDs = append(p.backboneIDs, id)
		}
	}
	p.routes = buildBackboneRoutes(g, p.backboneIDs, p.bidx)
	return p
}

// Graph returns the graph the partition was built over.
func (p *Partition) Graph() *topology.Graph { return p.g }

// Clusters returns the number of logical clusters.
func (p *Partition) Clusters() int { return len(p.bundles) }

// Bundles returns the logical clusters, ordered by smallest member ID.
func (p *Partition) Bundles() []Bundle { return p.bundles }

// CollapsedNodes returns how many compute nodes were absorbed into
// clusters.
func (p *Partition) CollapsedNodes() int {
	total := 0
	for i := range p.bundles {
		total += len(p.bundles[i].Members)
	}
	return total
}

// BackboneNodes returns the number of nodes left uncollapsed (switches,
// routers, and loose compute nodes).
func (p *Partition) BackboneNodes() int { return len(p.backboneIDs) }
