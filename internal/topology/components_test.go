package topology

import (
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
)

func TestComponentsConnected(t *testing.T) {
	g := line(5)
	comps := g.Components(nil)
	if len(comps) != 1 {
		t.Fatalf("connected line has %d components", len(comps))
	}
	if len(comps[0]) != 5 {
		t.Fatalf("component size %d, want 5", len(comps[0]))
	}
	for i, id := range comps[0] {
		if id != i {
			t.Fatalf("component not sorted: %v", comps[0])
		}
	}
}

func TestComponentsWithDeadEdge(t *testing.T) {
	g := line(5)
	// Kill the middle link 2-3 (link ID 2).
	alive := func(l int) bool { return l != 2 }
	comps := g.Components(alive)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 {
		t.Fatalf("component sizes %d/%d, want 3/2", len(comps[0]), len(comps[1]))
	}
}

func TestComponentsAllDead(t *testing.T) {
	g := line(4)
	comps := g.Components(func(int) bool { return false })
	if len(comps) != 4 {
		t.Fatalf("all-dead graph should have singleton components, got %d", len(comps))
	}
}

func TestComponentOf(t *testing.T) {
	g := line(6)
	alive := func(l int) bool { return l != 1 } // cut 1-2
	left := g.ComponentOf(0, alive)
	right := g.ComponentOf(5, alive)
	if len(left) != 2 || len(right) != 4 {
		t.Fatalf("component sizes %d/%d, want 2/4", len(left), len(right))
	}
	full := g.ComponentOf(3, nil)
	if len(full) != 6 {
		t.Fatalf("full component size %d, want 6", len(full))
	}
}

func TestCountComputeAndSubset(t *testing.T) {
	g := star(3) // node 0 is the switch
	all := []int{0, 1, 2, 3}
	if got := g.CountCompute(all); got != 3 {
		t.Fatalf("CountCompute = %d, want 3", got)
	}
	sub := g.ComputeSubset(all)
	if len(sub) != 3 || sub[0] != 1 {
		t.Fatalf("ComputeSubset = %v", sub)
	}
}

func TestLinksWithin(t *testing.T) {
	g := line(5)
	got := g.LinksWithin([]int{1, 2, 3}, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("LinksWithin = %v, want [1 2]", got)
	}
	// With a dead link filter.
	got = g.LinksWithin([]int{1, 2, 3}, func(l int) bool { return l != 1 })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("LinksWithin filtered = %v, want [2]", got)
	}
	if n := len(g.LinksWithin([]int{0, 4}, nil)); n != 0 {
		t.Fatalf("non-adjacent node pair should contain no links, got %d", n)
	}
}

// Property: components partition the node set — every node appears in
// exactly one component, regardless of which edges are alive.
func TestQuickComponentsPartition(t *testing.T) {
	f := func(seed int64, mask uint32) bool {
		src := randx.New(seed)
		n := 1 + src.Intn(20)
		g := randomTree(src, n)
		alive := func(l int) bool { return mask&(1<<uint(l%32)) != 0 }
		comps := g.Components(alive)
		seen := make(map[int]int)
		for _, comp := range comps {
			for _, id := range comp {
				seen[id]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: on a tree with k dead edges there are exactly k+1 components.
func TestQuickTreeCutCount(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 2 + src.Intn(20)
		g := randomTree(src, n)
		dead := make(map[int]bool)
		for l := 0; l < g.NumLinks(); l++ {
			if src.Float64() < 0.3 {
				dead[l] = true
			}
		}
		comps := g.Components(func(l int) bool { return !dead[l] })
		return len(comps) == len(dead)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkComponents(b *testing.B) {
	src := randx.New(1)
	g := randomTree(src, 500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Components(nil)
	}
}
