package topology

import (
	"fmt"
	"math"
)

// Snapshot is a dynamic view of a topology: the static graph plus, at one
// instant (or averaged over one measurement window), the load average of
// every compute node and the available bandwidth of every link. It is the
// form in which Remos delivers network status to the selection algorithms.
type Snapshot struct {
	// Graph is the static topology this snapshot describes.
	Graph *Graph
	// Time is the simulation time at which the snapshot was taken.
	Time float64
	// LoadAvg[nodeID] is the load average of the node (0 for network
	// nodes and idle processors).
	LoadAvg []float64
	// AvailBW[linkID] is the bandwidth, in bits/second, available to a
	// new application flow on the link. For bidirectional full-duplex
	// links this is the minimum of the two directions, per §3.3.
	AvailBW []float64

	// gen counts in-place mutations through the Set* methods. Consumers
	// that cache views derived from a snapshot (the lease ledger's residual
	// cache) use (pointer, Gen) as the identity of its contents: builders
	// that write the slices directly always do so on a fresh snapshot
	// before publishing it, so a cached pointer whose Gen is unchanged is
	// guaranteed to have the same contents.
	gen uint64
}

// NewSnapshot returns a snapshot of g with all processors idle and all
// links entirely available.
func NewSnapshot(g *Graph) *Snapshot {
	s := &Snapshot{
		Graph:   g,
		LoadAvg: make([]float64, g.NumNodes()),
		AvailBW: make([]float64, g.NumLinks()),
	}
	for i := range s.AvailBW {
		s.AvailBW[i] = g.Link(i).Capacity
	}
	return s
}

// Clone returns a deep copy sharing only the immutable graph.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{Graph: s.Graph, Time: s.Time}
	c.LoadAvg = append([]float64(nil), s.LoadAvg...)
	c.AvailBW = append([]float64(nil), s.AvailBW...)
	return c
}

// CPU returns the fraction of the node's computation power available to a
// new application process, using the paper's §3.1 formula
// cpu = 1/(1 + loadaverage).
func (s *Snapshot) CPU(node int) float64 {
	return 1 / (1 + s.LoadAvg[node])
}

// EffectiveCPU returns the available computation capacity of the node in
// reference-node units: cpu fraction times the node's relative speed
// (§3.3 heterogeneous nodes).
func (s *Snapshot) EffectiveCPU(node int) float64 {
	return s.CPU(node) * s.Graph.Node(node).Speed
}

// BWFactor returns the fraction of the link's peak bandwidth that is
// available: bwfactor = bw / maxbw (§3.1).
func (s *Snapshot) BWFactor(link int) float64 {
	return s.AvailBW[link] / s.Graph.Link(link).Capacity
}

// BWFactorRef returns the link's available bandwidth expressed as a
// fraction of a reference capacity (§3.3 heterogeneous links: "a reference
// link has to be specified for balancing against computation"). With
// refCapacity equal to the link's own capacity this reduces to BWFactor.
func (s *Snapshot) BWFactorRef(link int, refCapacity float64) float64 {
	if refCapacity <= 0 {
		panic(fmt.Sprintf("topology: reference capacity %v must be positive", refCapacity))
	}
	return s.AvailBW[link] / refCapacity
}

// PairBandwidth returns the available bandwidth between two compute nodes:
// the bottleneck (minimum) available bandwidth along the static route. This
// is the quantity a Remos flow query reports for one flow between a node
// pair. When a == b it returns +Inf (communication is node-local).
func (s *Snapshot) PairBandwidth(a, b int) float64 {
	bw, ok := s.Graph.PathBottleneck(a, b, func(lid int) float64 { return s.AvailBW[lid] })
	if !ok {
		return math.Inf(1)
	}
	return bw
}

// Gen reports the snapshot's mutation generation: zero at construction,
// advanced by every Set* call. See the field comment for the caching
// contract it supports.
func (s *Snapshot) Gen() uint64 { return s.gen }

// SetLoad sets the load average of a node.
func (s *Snapshot) SetLoad(node int, loadAvg float64) {
	if loadAvg < 0 {
		panic(fmt.Sprintf("topology: negative load average %v", loadAvg))
	}
	s.gen++
	s.LoadAvg[node] = loadAvg
}

// SetLoadName sets the load average of a node by name.
func (s *Snapshot) SetLoadName(name string, loadAvg float64) {
	s.SetLoad(s.Graph.MustNode(name), loadAvg)
}

// SetAvailBW sets the available bandwidth of a link, clamped to
// [0, capacity].
func (s *Snapshot) SetAvailBW(link int, bw float64) {
	cap := s.Graph.Link(link).Capacity
	if bw < 0 {
		bw = 0
	}
	if bw > cap {
		bw = cap
	}
	s.gen++
	s.AvailBW[link] = bw
}

// SetUtilization sets a link's available bandwidth from a utilization
// fraction in [0, 1]: avail = (1 - u) * capacity.
func (s *Snapshot) SetUtilization(link int, u float64) {
	if u < 0 || u > 1 {
		panic(fmt.Sprintf("topology: utilization %v outside [0, 1]", u))
	}
	s.gen++
	s.AvailBW[link] = (1 - u) * s.Graph.Link(link).Capacity
}

// Validate checks that the snapshot is consistent with its graph: slice
// lengths match, load averages are non-negative and finite, and available
// bandwidths lie in [0, capacity].
func (s *Snapshot) Validate() error {
	if s.Graph == nil {
		return fmt.Errorf("topology: snapshot has no graph")
	}
	if len(s.LoadAvg) != s.Graph.NumNodes() {
		return fmt.Errorf("topology: snapshot has %d load entries for %d nodes",
			len(s.LoadAvg), s.Graph.NumNodes())
	}
	if len(s.AvailBW) != s.Graph.NumLinks() {
		return fmt.Errorf("topology: snapshot has %d bandwidth entries for %d links",
			len(s.AvailBW), s.Graph.NumLinks())
	}
	for i, l := range s.LoadAvg {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			return fmt.Errorf("topology: node %d (%s) has invalid load average %v",
				i, s.Graph.Node(i).Name, l)
		}
	}
	for i, bw := range s.AvailBW {
		if bw < 0 || math.IsNaN(bw) {
			return fmt.Errorf("topology: link %d has invalid available bandwidth %v", i, bw)
		}
		if bw > s.Graph.Link(i).Capacity*(1+1e-9) {
			return fmt.Errorf("topology: link %d available bandwidth %v exceeds capacity %v",
				i, bw, s.Graph.Link(i).Capacity)
		}
	}
	return nil
}
