// Package topology models the logical network topology graph that the Remos
// query interface exports and that the node selection algorithms consume.
//
// A graph contains compute nodes (processors available for computation) and
// network nodes (routers/switches). Links connect nodes and carry a peak
// capacity (maxbw, bits/second) and a latency. The dynamic state of the
// network — per-node load averages and per-link available bandwidth — is a
// Snapshot layered over the static graph.
//
// The package also provides the graph machinery the selection algorithms
// need: static shortest-path routing, connected components over edge
// subsets, and bottleneck-bandwidth path analysis.
package topology

import (
	"fmt"
	"sort"
)

// NodeKind distinguishes processors from network devices.
type NodeKind int

const (
	// Compute nodes are processors available for application execution.
	Compute NodeKind = iota
	// Network nodes are routers or switches; they route traffic but
	// cannot host computation.
	Network
)

// String returns "compute" or "network".
func (k NodeKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Network:
		return "network"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a vertex of the topology graph.
type Node struct {
	// ID is the dense index of the node within its graph, assigned by the
	// graph when the node is added.
	ID int
	// Name is the unique human-readable name (e.g. "m-16", "gibraltar").
	Name string
	// Kind says whether the node can run computation.
	Kind NodeKind
	// Speed is the node's relative computation capacity; 1.0 is the
	// reference node type (§3.3 "Heterogeneous links and nodes").
	Speed float64
	// Arch is an optional architecture tag (e.g. "alpha") used by
	// placement constraints from the application specification interface.
	Arch string
	// MemoryMB is the node's physical memory in megabytes (0 = unknown).
	// §3.4 lists memory availability among the factors Remos reports;
	// selection can require a minimum via the request's memory floor.
	MemoryMB float64
}

// Link is an edge of the topology graph.
type Link struct {
	// ID is the dense index of the link within its graph.
	ID int
	// A and B are the endpoint node IDs. For undirected (shared-fabric)
	// links the order is irrelevant.
	A, B int
	// Capacity is the peak bandwidth maxbw in bits per second.
	Capacity float64
	// Latency is the one-way link latency in seconds.
	Latency float64
	// FullDuplex reports whether the two directions have independent
	// capacity (two distinct fabrics, §3.3 "Independent and shared
	// network links"). When false the directions share one fabric.
	FullDuplex bool
}

// Other returns the endpoint of l that is not node, and panics if node is
// not an endpoint.
func (l *Link) Other(node int) int {
	switch node {
	case l.A:
		return l.B
	case l.B:
		return l.A
	default:
		panic(fmt.Sprintf("topology: node %d is not an endpoint of link %d", node, l.ID))
	}
}

// Graph is a logical network topology. Build one with NewGraph and the
// AddComputeNode/AddNetworkNode/Connect methods; the structure is immutable
// once routing has been computed.
type Graph struct {
	nodes  []Node
	links  []Link
	byName map[string]int
	// adj[n] lists the link IDs incident to node n, sorted ascending for
	// deterministic traversal.
	adj    [][]int
	routes *routeTable // lazily built by Routes()
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byName: make(map[string]int)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// Node returns the node with the given ID. It panics on an invalid ID.
func (g *Graph) Node(id int) *Node { return &g.nodes[id] }

// Link returns the link with the given ID. It panics on an invalid ID.
func (g *Graph) Link(id int) *Link { return &g.links[id] }

// Nodes returns all nodes in ID order. The slice is shared; do not modify.
func (g *Graph) Nodes() []Node { return g.nodes }

// Links returns all links in ID order. The slice is shared; do not modify.
func (g *Graph) Links() []Link { return g.links }

// NodeByName returns the ID of the named node, or -1 if absent.
func (g *Graph) NodeByName(name string) int {
	id, ok := g.byName[name]
	if !ok {
		return -1
	}
	return id
}

// MustNode returns the ID of the named node and panics if it is absent.
func (g *Graph) MustNode(name string) int {
	id := g.NodeByName(name)
	if id < 0 {
		panic(fmt.Sprintf("topology: no node named %q", name))
	}
	return id
}

// Incident returns the IDs of links incident to node, sorted ascending. The
// slice is shared; do not modify.
func (g *Graph) Incident(node int) []int { return g.adj[node] }

// ComputeNodes returns the IDs of all compute nodes in ascending order.
func (g *Graph) ComputeNodes() []int {
	var out []int
	for i := range g.nodes {
		if g.nodes[i].Kind == Compute {
			out = append(out, i)
		}
	}
	return out
}

// NumComputeNodes returns the number of compute nodes.
func (g *Graph) NumComputeNodes() int {
	n := 0
	for i := range g.nodes {
		if g.nodes[i].Kind == Compute {
			n++
		}
	}
	return n
}

// addNode appends a node, enforcing unique names.
func (g *Graph) addNode(name string, kind NodeKind, speed float64, arch string) int {
	if name == "" {
		panic("topology: node name must be non-empty")
	}
	if _, dup := g.byName[name]; dup {
		panic(fmt.Sprintf("topology: duplicate node name %q", name))
	}
	if speed <= 0 {
		panic(fmt.Sprintf("topology: node %q speed %v must be positive", name, speed))
	}
	id := len(g.nodes)
	g.nodes = append(g.nodes, Node{ID: id, Name: name, Kind: kind, Speed: speed, Arch: arch})
	g.byName[name] = id
	g.adj = append(g.adj, nil)
	g.routes = nil
	return id
}

// AddComputeNode adds a compute node with relative speed 1 and returns its ID.
func (g *Graph) AddComputeNode(name string) int {
	return g.addNode(name, Compute, 1, "")
}

// AddComputeNodeSpec adds a compute node with an explicit relative speed and
// architecture tag.
func (g *Graph) AddComputeNodeSpec(name string, speed float64, arch string) int {
	return g.addNode(name, Compute, speed, arch)
}

// AddNetworkNode adds a router/switch node and returns its ID.
func (g *Graph) AddNetworkNode(name string) int {
	return g.addNode(name, Network, 1, "")
}

// SetNodeMemory records a node's physical memory in megabytes.
func (g *Graph) SetNodeMemory(id int, mb float64) {
	if mb < 0 {
		panic(fmt.Sprintf("topology: negative memory %v for node %d", mb, id))
	}
	g.nodes[id].MemoryMB = mb
}

// LinkOpts carries optional link attributes for Connect.
type LinkOpts struct {
	// Latency is the one-way latency in seconds (default 0).
	Latency float64
	// FullDuplex gives the two directions independent capacity.
	FullDuplex bool
}

// Connect adds a link between nodes a and b with the given peak capacity in
// bits/second and returns the link ID.
func (g *Graph) Connect(a, b int, capacity float64, opts LinkOpts) int {
	if a < 0 || a >= len(g.nodes) || b < 0 || b >= len(g.nodes) {
		panic(fmt.Sprintf("topology: Connect(%d, %d) out of range", a, b))
	}
	if a == b {
		panic(fmt.Sprintf("topology: self-loop on node %d", a))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("topology: link capacity %v must be positive", capacity))
	}
	if opts.Latency < 0 {
		panic(fmt.Sprintf("topology: link latency %v must be non-negative", opts.Latency))
	}
	id := len(g.links)
	g.links = append(g.links, Link{
		ID: id, A: a, B: b,
		Capacity:   capacity,
		Latency:    opts.Latency,
		FullDuplex: opts.FullDuplex,
	})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	g.routes = nil
	return id
}

// ConnectNames is Connect with node names instead of IDs.
func (g *Graph) ConnectNames(a, b string, capacity float64, opts LinkOpts) int {
	return g.Connect(g.MustNode(a), g.MustNode(b), capacity, opts)
}

// Validate checks structural invariants: at least one compute node, a
// connected graph, unique names (enforced at construction), and positive
// capacities (enforced at construction). It returns a descriptive error for
// the first violation found.
func (g *Graph) Validate() error {
	if len(g.nodes) == 0 {
		return fmt.Errorf("topology: graph has no nodes")
	}
	if g.NumComputeNodes() == 0 {
		return fmt.Errorf("topology: graph has no compute nodes")
	}
	comps := g.Components(nil)
	if len(comps) != 1 {
		return fmt.Errorf("topology: graph is disconnected (%d components)", len(comps))
	}
	return nil
}

// IsTree reports whether the graph is connected and acyclic, i.e. the
// setting in which the paper's Figure 2/3 algorithms are provably optimal.
func (g *Graph) IsTree() bool {
	return len(g.nodes) > 0 &&
		len(g.links) == len(g.nodes)-1 &&
		len(g.Components(nil)) == 1
}

// Degree returns the number of links incident to node.
func (g *Graph) Degree(node int) int { return len(g.adj[node]) }

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("topology.Graph{%d nodes (%d compute), %d links}",
		len(g.nodes), g.NumComputeNodes(), len(g.links))
}

// SortedNames returns all node names sorted alphabetically; useful for
// stable output in tools and tests.
func (g *Graph) SortedNames() []string {
	names := make([]string, len(g.nodes))
	for i := range g.nodes {
		names[i] = g.nodes[i].Name
	}
	sort.Strings(names)
	return names
}
