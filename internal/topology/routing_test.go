package topology

import (
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
)

func TestRouteLine(t *testing.T) {
	g := line(5)
	r := g.Route(0, 4)
	if len(r) != 4 {
		t.Fatalf("route 0->4 has %d links, want 4", len(r))
	}
	for i, lid := range r {
		if lid != i {
			t.Fatalf("route 0->4 = %v, want [0 1 2 3]", r)
		}
	}
	if len(g.Route(2, 2)) != 0 {
		t.Fatal("route to self should be empty")
	}
}

func TestRouteSymmetricHops(t *testing.T) {
	g := star(5)
	for _, a := range g.ComputeNodes() {
		for _, b := range g.ComputeNodes() {
			if g.HopCount(a, b) != g.HopCount(b, a) {
				t.Fatalf("asymmetric hop count between %d and %d", a, b)
			}
		}
	}
}

func TestRouteStar(t *testing.T) {
	g := star(4)
	a, b := g.MustNode("c00"), g.MustNode("c03")
	r := g.Route(a, b)
	if len(r) != 2 {
		t.Fatalf("leaf-to-leaf via hub should be 2 hops, got %d", len(r))
	}
	nodes := g.PathNodes(a, b)
	if len(nodes) != 3 || nodes[0] != a || nodes[1] != g.MustNode("sw") || nodes[2] != b {
		t.Fatalf("PathNodes = %v", nodes)
	}
}

func TestRouteOnCycleIsStatic(t *testing.T) {
	// Square cycle a-b-c-d-a: route a->c must be deterministic and use a
	// shortest (2-hop) path; calling twice must give the same path.
	g := NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	c := g.AddComputeNode("c")
	d := g.AddComputeNode("d")
	g.Connect(a, b, 1e6, LinkOpts{})
	g.Connect(b, c, 1e6, LinkOpts{})
	g.Connect(c, d, 1e6, LinkOpts{})
	g.Connect(d, a, 1e6, LinkOpts{})
	r1 := g.Route(a, c)
	r2 := g.Route(a, c)
	if len(r1) != 2 {
		t.Fatalf("route on square should be 2 hops, got %d", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("static route changed between calls")
		}
	}
}

func TestRouteUnreachablePanics(t *testing.T) {
	g := NewGraph()
	g.AddComputeNode("a")
	g.AddComputeNode("b")
	if g.Reachable(0, 1) {
		t.Fatal("disconnected nodes reported reachable")
	}
	if g.HopCount(0, 1) != -1 {
		t.Fatal("HopCount for unreachable should be -1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Route between disconnected nodes did not panic")
		}
	}()
	g.Route(0, 1)
}

func TestReachableSelf(t *testing.T) {
	g := line(2)
	if !g.Reachable(0, 0) {
		t.Fatal("node not reachable from itself")
	}
	if g.HopCount(1, 1) != 0 {
		t.Fatal("self hop count should be 0")
	}
}

func TestPathLatency(t *testing.T) {
	g := NewGraph()
	a := g.AddComputeNode("a")
	r := g.AddNetworkNode("r")
	b := g.AddComputeNode("b")
	g.Connect(a, r, 1e6, LinkOpts{Latency: 0.001})
	g.Connect(r, b, 1e6, LinkOpts{Latency: 0.002})
	if got := g.PathLatency(a, b); got != 0.003 {
		t.Fatalf("PathLatency = %v, want 0.003", got)
	}
}

func TestPathBottleneck(t *testing.T) {
	g := line(4)
	bw := []float64{50e6, 10e6, 80e6}
	got, ok := g.PathBottleneck(0, 3, func(l int) float64 { return bw[l] })
	if !ok || got != 10e6 {
		t.Fatalf("PathBottleneck = %v/%v, want 10e6/true", got, ok)
	}
	_, ok = g.PathBottleneck(1, 1, func(l int) float64 { return bw[l] })
	if ok {
		t.Fatal("self path should report no links")
	}
}

func TestRoutesInvalidatedByMutation(t *testing.T) {
	g := line(3)
	if g.HopCount(0, 2) != 2 {
		t.Fatal("precondition")
	}
	// Adding a shortcut must invalidate the cached routing table.
	g.Connect(0, 2, 1e6, LinkOpts{})
	if g.HopCount(0, 2) != 1 {
		t.Fatalf("HopCount after shortcut = %d, want 1", g.HopCount(0, 2))
	}
}

// randomTree builds a uniformly random labelled tree over n compute nodes.
func randomTree(src *randx.Source, n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddComputeNode(nodeName(i))
	}
	for i := 1; i < n; i++ {
		parent := src.Intn(i)
		g.Connect(parent, i, 100e6, LinkOpts{})
	}
	return g
}

// Property: on a tree, every route's hop count equals the length of the
// unique path, and route(a,b) traverses exactly the reverse links of
// route(b,a).
func TestQuickTreeRoutes(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 2 + src.Intn(20)
		g := randomTree(src, n)
		for trial := 0; trial < 10; trial++ {
			a, b := src.Intn(n), src.Intn(n)
			fwd := g.Route(a, b)
			rev := g.Route(b, a)
			if len(fwd) != len(rev) || len(fwd) != g.HopCount(a, b) {
				return false
			}
			for i := range fwd {
				if fwd[i] != rev[len(rev)-1-i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: hop counts obey the triangle inequality under static routing on
// trees (where routes are unique shortest paths).
func TestQuickTreeTriangle(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(15)
		g := randomTree(src, n)
		for trial := 0; trial < 10; trial++ {
			a, b, c := src.Intn(n), src.Intn(n), src.Intn(n)
			if g.HopCount(a, c) > g.HopCount(a, b)+g.HopCount(b, c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRouteTableBuild(b *testing.B) {
	src := randx.New(1)
	g := randomTree(src, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.routes = nil
		g.Routes()
	}
}

func BenchmarkRouteLookup(b *testing.B) {
	src := randx.New(1)
	g := randomTree(src, 200)
	g.Routes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Route(i%200, (i*7)%200)
	}
}
