package topology

// Components returns the connected components of the graph considering only
// links for which alive(linkID) reports true. A nil alive function means all
// links are alive. Each component is a sorted slice of node IDs, and the
// components themselves are ordered by their smallest node ID. Isolated
// nodes form singleton components.
//
// The selection algorithms of the paper (Figures 2 and 3) repeatedly delete
// the minimum-bandwidth edge and re-examine components; they call this with
// an edge-alive bitmap rather than copying the graph.
func (g *Graph) Components(alive func(linkID int) bool) [][]int {
	n := len(g.nodes)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	queue := make([]int, 0, n)
	for start := 0; start < n; start++ {
		if comp[start] >= 0 {
			continue
		}
		id := len(out)
		comp[start] = id
		queue = append(queue[:0], start)
		members := []int{start}
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, lid := range g.adj[u] {
				if alive != nil && !alive(lid) {
					continue
				}
				v := g.links[lid].Other(u)
				if comp[v] < 0 {
					comp[v] = id
					members = append(members, v)
					queue = append(queue, v)
				}
			}
		}
		sortInts(members)
		out = append(out, members)
	}
	return out
}

// ComponentOf returns the sorted node IDs of the component containing start,
// considering only alive links (nil means all alive).
func (g *Graph) ComponentOf(start int, alive func(linkID int) bool) []int {
	seen := make([]bool, len(g.nodes))
	seen[start] = true
	queue := []int{start}
	members := []int{start}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, lid := range g.adj[u] {
			if alive != nil && !alive(lid) {
				continue
			}
			v := g.links[lid].Other(u)
			if !seen[v] {
				seen[v] = true
				members = append(members, v)
				queue = append(queue, v)
			}
		}
	}
	sortInts(members)
	return members
}

// CountCompute returns how many of the given node IDs are compute nodes.
func (g *Graph) CountCompute(nodes []int) int {
	n := 0
	for _, id := range nodes {
		if g.nodes[id].Kind == Compute {
			n++
		}
	}
	return n
}

// ComputeSubset returns the compute-node subset of nodes, preserving order.
func (g *Graph) ComputeSubset(nodes []int) []int {
	var out []int
	for _, id := range nodes {
		if g.nodes[id].Kind == Compute {
			out = append(out, id)
		}
	}
	return out
}

// LinksWithin returns the IDs of alive links whose both endpoints lie in the
// given node set. The node set must be sorted or not; membership is checked
// via a map. A nil alive function means all links.
func (g *Graph) LinksWithin(nodes []int, alive func(linkID int) bool) []int {
	in := make(map[int]bool, len(nodes))
	for _, id := range nodes {
		in[id] = true
	}
	var out []int
	for i := range g.links {
		if alive != nil && !alive(i) {
			continue
		}
		if in[g.links[i].A] && in[g.links[i].B] {
			out = append(out, i)
		}
	}
	return out
}

// sortInts sorts a small int slice ascending (insertion sort; component
// slices are small and this avoids pulling in sort for a hot path).
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
