package topology

import (
	"math"
	"testing"
)

func TestNewSnapshotIdle(t *testing.T) {
	g := line(3)
	s := NewSnapshot(g)
	if err := s.Validate(); err != nil {
		t.Fatalf("fresh snapshot invalid: %v", err)
	}
	for i := 0; i < g.NumNodes(); i++ {
		if s.CPU(i) != 1 {
			t.Fatalf("idle node %d CPU = %v, want 1", i, s.CPU(i))
		}
	}
	for l := 0; l < g.NumLinks(); l++ {
		if s.BWFactor(l) != 1 {
			t.Fatalf("idle link %d bwfactor = %v, want 1", l, s.BWFactor(l))
		}
	}
}

func TestCPUFormula(t *testing.T) {
	// Paper §3.1: cpu = 1 / (1 + loadaverage).
	g := line(2)
	s := NewSnapshot(g)
	cases := []struct{ load, want float64 }{
		{0, 1},
		{1, 0.5},
		{3, 0.25},
		{0.5, 1 / 1.5},
	}
	for _, c := range cases {
		s.SetLoad(0, c.load)
		if got := s.CPU(0); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CPU(load=%v) = %v, want %v", c.load, got, c.want)
		}
	}
}

func TestEffectiveCPU(t *testing.T) {
	g := NewGraph()
	g.AddComputeNodeSpec("fast", 2, "")
	g.AddComputeNode("slow")
	g.Connect(0, 1, 1e6, LinkOpts{})
	s := NewSnapshot(g)
	s.SetLoad(0, 1) // fast node half available
	if got := s.EffectiveCPU(0); got != 1.0 {
		t.Errorf("EffectiveCPU fast = %v, want 1.0 (0.5 * speed 2)", got)
	}
	if got := s.EffectiveCPU(1); got != 1.0 {
		t.Errorf("EffectiveCPU slow idle = %v, want 1.0", got)
	}
}

func TestBWFactor(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	s.SetAvailBW(0, 25e6)
	if got := s.BWFactor(0); got != 0.25 {
		t.Errorf("BWFactor = %v, want 0.25", got)
	}
	if got := s.BWFactorRef(0, 50e6); got != 0.5 {
		t.Errorf("BWFactorRef = %v, want 0.5", got)
	}
}

func TestBWFactorRefPanics(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	defer func() {
		if recover() == nil {
			t.Fatal("zero reference capacity did not panic")
		}
	}()
	s.BWFactorRef(0, 0)
}

func TestSetAvailBWClamps(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	s.SetAvailBW(0, -5)
	if s.AvailBW[0] != 0 {
		t.Error("negative bandwidth not clamped to 0")
	}
	s.SetAvailBW(0, 1e12)
	if s.AvailBW[0] != 100e6 {
		t.Error("excess bandwidth not clamped to capacity")
	}
}

func TestSetUtilization(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	s.SetUtilization(0, 0.3)
	if math.Abs(s.AvailBW[0]-70e6) > 1 {
		t.Errorf("AvailBW after 30%% utilization = %v, want 70e6", s.AvailBW[0])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("utilization > 1 did not panic")
		}
	}()
	s.SetUtilization(0, 1.5)
}

func TestPairBandwidth(t *testing.T) {
	g := line(4)
	s := NewSnapshot(g)
	s.SetAvailBW(1, 10e6)
	if got := s.PairBandwidth(0, 3); got != 10e6 {
		t.Errorf("PairBandwidth = %v, want 10e6 (bottleneck)", got)
	}
	if got := s.PairBandwidth(2, 2); !math.IsInf(got, 1) {
		t.Errorf("self PairBandwidth = %v, want +Inf", got)
	}
}

func TestSnapshotClone(t *testing.T) {
	g := line(3)
	s := NewSnapshot(g)
	s.Time = 42
	s.SetLoad(1, 2)
	c := s.Clone()
	c.SetLoad(1, 9)
	c.SetAvailBW(0, 1)
	if s.LoadAvg[1] != 2 || s.AvailBW[0] != 100e6 {
		t.Fatal("Clone shares mutable state with original")
	}
	if c.Time != 42 || c.Graph != g {
		t.Fatal("Clone lost time or graph")
	}
}

func TestSetLoadName(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	s.SetLoadName("c01", 1.5)
	if s.LoadAvg[1] != 1.5 {
		t.Fatal("SetLoadName failed")
	}
}

func TestSetLoadNegativePanics(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	defer func() {
		if recover() == nil {
			t.Fatal("negative load did not panic")
		}
	}()
	s.SetLoad(0, -1)
}

func TestSnapshotValidateCatches(t *testing.T) {
	g := line(3)
	s := NewSnapshot(g)
	s.LoadAvg[0] = math.NaN()
	if s.Validate() == nil {
		t.Error("NaN load validated")
	}
	s = NewSnapshot(g)
	s.AvailBW[0] = 1e18 // above capacity, set directly bypassing clamp
	if s.Validate() == nil {
		t.Error("over-capacity bandwidth validated")
	}
	s = NewSnapshot(g)
	s.LoadAvg = s.LoadAvg[:1]
	if s.Validate() == nil {
		t.Error("short LoadAvg validated")
	}
	s = NewSnapshot(g)
	s.AvailBW = nil
	if s.Validate() == nil {
		t.Error("missing AvailBW validated")
	}
	if (&Snapshot{}).Validate() == nil {
		t.Error("snapshot without graph validated")
	}
}
