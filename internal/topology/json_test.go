package topology

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	g := NewGraph()
	g.AddComputeNodeSpec("m-1", 1, "alpha")
	g.AddComputeNodeSpec("m-2", 2.5, "alpha")
	g.AddNetworkNode("panama")
	g.ConnectNames("m-1", "panama", 100e6, LinkOpts{Latency: 1e-4})
	g.ConnectNames("m-2", "panama", 155e6, LinkOpts{FullDuplex: true})

	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ParseGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 3 || g2.NumLinks() != 2 {
		t.Fatalf("round trip lost structure: %v", g2)
	}
	if g2.Node(g2.MustNode("m-2")).Speed != 2.5 {
		t.Error("speed lost in round trip")
	}
	if g2.Node(g2.MustNode("m-1")).Arch != "alpha" {
		t.Error("arch lost in round trip")
	}
	if g2.Node(g2.MustNode("panama")).Kind != Network {
		t.Error("kind lost in round trip")
	}
	l := g2.Link(1)
	if !l.FullDuplex || l.Capacity != 155e6 {
		t.Error("link attributes lost in round trip")
	}
	if g2.Link(0).Latency != 1e-4 {
		t.Error("latency lost in round trip")
	}
}

func TestParseGraphErrors(t *testing.T) {
	if _, err := ParseGraph([]byte("{not json")); err == nil {
		t.Error("bad JSON parsed")
	}
	badKind := `{"nodes":[{"name":"a","kind":"quantum"}],"links":[]}`
	if _, err := ParseGraph([]byte(badKind)); err == nil {
		t.Error("unknown kind parsed")
	}
	badLink := `{"nodes":[{"name":"a","kind":"compute"}],"links":[{"a":"a","b":"ghost","capacity_bps":1}]}`
	if _, err := ParseGraph([]byte(badLink)); err == nil {
		t.Error("link to unknown node parsed")
	}
}

func TestParseGraphDefaultKind(t *testing.T) {
	// Omitted kind defaults to compute; omitted speed defaults to 1.
	data := `{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"a":"a","b":"b","capacity_bps":1000}]}`
	g, err := ParseGraph([]byte(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.Node(0).Kind != Compute || g.Node(0).Speed != 1 {
		t.Error("defaults not applied")
	}
}

func TestDocumentRoundTrip(t *testing.T) {
	g := line(4)
	s := NewSnapshot(g)
	s.Time = 99.5
	s.SetLoad(1, 2.5)
	s.SetAvailBW(2, 42e6)

	var buf bytes.Buffer
	if err := WriteDocument(&buf, g, s); err != nil {
		t.Fatal(err)
	}
	g2, s2, err := ReadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 4 || s2 == nil {
		t.Fatal("document round trip lost data")
	}
	if s2.Time != 99.5 {
		t.Errorf("snapshot time = %v, want 99.5", s2.Time)
	}
	if s2.LoadAvg[1] != 2.5 {
		t.Errorf("snapshot load = %v, want 2.5", s2.LoadAvg[1])
	}
	if s2.AvailBW[2] != 42e6 {
		t.Errorf("snapshot bw = %v, want 42e6", s2.AvailBW[2])
	}
	if s2.AvailBW[0] != 100e6 {
		t.Errorf("untouched link bw = %v, want full capacity", s2.AvailBW[0])
	}
}

func TestDocumentWithoutSnapshot(t *testing.T) {
	g := line(2)
	var buf bytes.Buffer
	if err := WriteDocument(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, s2, err := ReadDocument(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != 2 || s2 != nil {
		t.Fatal("snapshot should be nil when absent")
	}
}

func TestWriteDocumentValidates(t *testing.T) {
	g := line(2)
	s := NewSnapshot(g)
	s.AvailBW = s.AvailBW[:0]
	var buf bytes.Buffer
	if err := WriteDocument(&buf, g, s); err == nil {
		t.Fatal("invalid snapshot written")
	}
}

func TestReadDocumentErrors(t *testing.T) {
	if _, _, err := ReadDocument(strings.NewReader("{")); err == nil {
		t.Error("truncated document read")
	}
	// Snapshot referencing an unknown node.
	doc := `{"graph":{"nodes":[{"name":"a","kind":"compute"}],"links":[]},
		"snapshot":{"time":0,"load_avg":{"ghost":1},"avail_bw_bps":[]}}`
	if _, _, err := ReadDocument(strings.NewReader(doc)); err == nil {
		t.Error("snapshot with unknown node read")
	}
	// Snapshot with wrong bandwidth count.
	doc = `{"graph":{"nodes":[{"name":"a","kind":"compute"},{"name":"b","kind":"compute"}],
		"links":[{"a":"a","b":"b","capacity_bps":1000}]},
		"snapshot":{"time":0,"load_avg":{},"avail_bw_bps":[1,2,3]}}`
	if _, _, err := ReadDocument(strings.NewReader(doc)); err == nil {
		t.Error("snapshot with wrong bw count read")
	}
}

func TestWriteDOT(t *testing.T) {
	g := NewGraph()
	g.AddComputeNode("m-1")
	g.AddNetworkNode("panama")
	g.ConnectNames("m-1", "panama", 100e6, LinkOpts{})
	s := NewSnapshot(g)
	s.SetLoadName("m-1", 1.25)
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Snapshot:  s,
		Highlight: map[int]bool{0: true},
		Name:      "testbed",
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`graph "testbed"`, `"m-1"`, `"panama"`, "penwidth=3",
		"shape=box", "shape=ellipse", "load 1.25", "100Mbps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := line(2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `graph "topology"`) {
		t.Error("default graph name not used")
	}
}

func TestFormatBandwidth(t *testing.T) {
	cases := []struct {
		bps  float64
		want string
	}{
		{100e6, "100Mbps"},
		{155e6, "155Mbps"},
		{1.5e9, "1.5Gbps"},
		{64e3, "64Kbps"},
		{500, "500bps"},
	}
	for _, c := range cases {
		if got := FormatBandwidth(c.bps); got != c.want {
			t.Errorf("FormatBandwidth(%v) = %q, want %q", c.bps, got, c.want)
		}
	}
}
