package topology

import "fmt"

// routeTable holds static all-pairs routes. Networks in the paper's setting
// use static routing: even when the physical topology has cycles, a fixed
// path carries all traffic between a given pair of nodes (§3.3 "Cycles in
// network topology"). We model that with deterministic shortest-path routes
// (minimum hop count, ties broken by traversal order over link IDs).
type routeTable struct {
	n int
	// next[src*n+dst] is the link ID of the first hop from src towards
	// dst, or -1 when dst is unreachable or equal to src.
	next []int
	// hops[src*n+dst] is the hop count, or -1 when unreachable.
	hops []int
}

// Routes builds (or returns the cached) static routing table.
func (g *Graph) Routes() *routeTable {
	if g.routes != nil {
		return g.routes
	}
	n := len(g.nodes)
	rt := &routeTable{
		n:    n,
		next: make([]int, n*n),
		hops: make([]int, n*n),
	}
	for i := range rt.next {
		rt.next[i] = -1
		rt.hops[i] = -1
	}
	// BFS from every destination so that next-hop pointers chain towards
	// the destination.
	queue := make([]int, 0, n)
	for dst := 0; dst < n; dst++ {
		base := func(src int) int { return src*n + dst }
		rt.hops[base(dst)] = 0
		queue = append(queue[:0], dst)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, lid := range g.adj[u] {
				v := g.links[lid].Other(u)
				if rt.hops[base(v)] < 0 {
					rt.hops[base(v)] = rt.hops[base(u)] + 1
					rt.next[base(v)] = lid
					queue = append(queue, v)
				}
			}
		}
	}
	g.routes = rt
	return rt
}

// Route returns the static route from a to b as a sequence of link IDs.
// The route is empty when a == b. It panics if b is unreachable from a
// (use Validate to ensure connectivity first).
func (g *Graph) Route(a, b int) []int {
	rt := g.Routes()
	if a == b {
		return nil
	}
	if rt.hops[a*rt.n+b] < 0 {
		panic(fmt.Sprintf("topology: no route from node %d to node %d", a, b))
	}
	var out []int
	for u := a; u != b; {
		lid := rt.next[u*rt.n+b]
		out = append(out, lid)
		u = g.links[lid].Other(u)
	}
	return out
}

// WalkRoute visits the link IDs on the static route from a to b, in path
// order, without allocating. It visits nothing when a == b and panics when
// b is unreachable, exactly as Route does. The hot selection paths (all-
// pairs scoring) use this form; Route remains for callers that want the
// path materialized.
func (g *Graph) WalkRoute(a, b int, visit func(linkID int)) {
	if a == b {
		return
	}
	rt := g.Routes()
	if rt.hops[a*rt.n+b] < 0 {
		panic(fmt.Sprintf("topology: no route from node %d to node %d", a, b))
	}
	for u := a; u != b; {
		lid := rt.next[u*rt.n+b]
		visit(lid)
		u = g.links[lid].Other(u)
	}
}

// Reachable reports whether b is reachable from a over the static routes.
func (g *Graph) Reachable(a, b int) bool {
	if a == b {
		return true
	}
	rt := g.Routes()
	return rt.hops[a*rt.n+b] >= 0
}

// HopCount returns the number of links on the static route from a to b, or
// -1 when unreachable.
func (g *Graph) HopCount(a, b int) int {
	rt := g.Routes()
	return rt.hops[a*rt.n+b]
}

// PathNodes returns the node IDs visited on the route from a to b,
// inclusive of both endpoints.
func (g *Graph) PathNodes(a, b int) []int {
	out := []int{a}
	for _, lid := range g.Route(a, b) {
		out = append(out, g.links[lid].Other(out[len(out)-1]))
	}
	return out
}

// PathLatency returns the sum of link latencies along the route from a to b.
func (g *Graph) PathLatency(a, b int) float64 {
	sum := 0.0
	g.WalkRoute(a, b, func(lid int) { sum += g.links[lid].Latency })
	return sum
}

// FlowLinkCounts returns, for the all-pairs flow pattern over the given
// nodes, how many pairwise flows cross each link: counts[linkID] is the
// number of unordered node pairs whose static route uses the link. Links
// carried by no flow are absent from the map. This is the multiplicity a
// reservation ledger must debit per link: a link shared by k flows of an
// application demanding B bits/second per flow carries k*B.
func (g *Graph) FlowLinkCounts(nodes []int) map[int]int {
	counts := make(map[int]int)
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			for _, lid := range g.Route(nodes[i], nodes[j]) {
				counts[lid]++
			}
		}
	}
	return counts
}

// PathBottleneck returns the minimum of value(linkID) over the route from a
// to b. For a == b it returns +Inf semantics via ok=false: the second
// return value reports whether the route has at least one link.
func (g *Graph) PathBottleneck(a, b int, value func(linkID int) float64) (float64, bool) {
	route := g.Route(a, b)
	if len(route) == 0 {
		return 0, false
	}
	min := value(route[0])
	for _, lid := range route[1:] {
		if v := value(lid); v < min {
			min = v
		}
	}
	return min, true
}
