package topology

import "sort"

// UnionFind is a disjoint-set forest over the dense node IDs of a graph,
// with union-by-size, path compression, and a member list per set
// maintained by merging the smaller list into the larger. It is the
// machinery behind the selection sweep's fast path: processing edges in
// descending bandwidth order and unioning endpoints enumerates exactly the
// connected components the paper's edge-deletion loop (Figures 2 and 3)
// visits, without recomputing components from scratch after every removal.
type UnionFind struct {
	parent  []int
	members [][]int
	minID   []int
}

// NewUnionFind returns n singleton sets, one per ID in [0, n).
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent:  make([]int, n),
		members: make([][]int, n),
		minID:   make([]int, n),
	}
	for i := 0; i < n; i++ {
		u.parent[i] = i
		u.members[i] = []int{i}
		u.minID[i] = i
	}
	return u
}

// Find returns the root of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and returns the surviving root
// and the absorbed root. When a and b are already in one set it returns
// (root, -1) and changes nothing. The absorbed root's member list is
// appended to the winner's; after Union the loser must no longer be used
// as a set handle.
func (u *UnionFind) Union(a, b int) (winner, loser int) {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return ra, -1
	}
	if len(u.members[ra]) < len(u.members[rb]) {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.members[ra] = append(u.members[ra], u.members[rb]...)
	u.members[rb] = nil
	if u.minID[rb] < u.minID[ra] {
		u.minID[ra] = u.minID[rb]
	}
	return ra, rb
}

// Members returns the member IDs of the set rooted at root, in no
// particular order. The slice is owned by the structure: it is valid until
// the next Union involving the set and must not be modified.
func (u *UnionFind) Members(root int) []int { return u.members[root] }

// Size returns the number of members of the set rooted at root.
func (u *UnionFind) Size(root int) int { return len(u.members[root]) }

// MinID returns the smallest member ID of the set rooted at root — the
// component identity the sweep's deterministic tie-breaking orders by.
func (u *UnionFind) MinID(root int) int { return u.minID[root] }

// OrderLinks returns the IDs of links passing alive (nil means all),
// sorted by ascending metric with ties broken by ascending link ID — the
// exact removal order of the Figure 2/3 sweeps. Both the reference
// edge-deletion loop and the union-find fast path (which walks the same
// order backwards) derive their processing order from this one helper so
// the two can never disagree on tie handling.
func (g *Graph) OrderLinks(alive func(linkID int) bool, metric func(linkID int) float64) []int {
	order := make([]int, 0, g.NumLinks())
	for l := 0; l < g.NumLinks(); l++ {
		if alive == nil || alive(l) {
			order = append(order, l)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		mi, mj := metric(order[i]), metric(order[j])
		if mi != mj {
			return mi < mj
		}
		return order[i] < order[j]
	})
	return order
}
