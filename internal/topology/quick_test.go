package topology

import (
	"bytes"
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
)

// randomGraph builds a random connected graph (tree plus optional chords)
// with mixed node kinds and attributes.
func randomGraph(src *randx.Source) *Graph {
	g := NewGraph()
	n := 2 + src.Intn(12)
	for i := 0; i < n; i++ {
		name := "n" + string(rune('a'+i))
		switch src.Intn(3) {
		case 0:
			g.AddNetworkNode(name)
		case 1:
			id := g.AddComputeNodeSpec(name, 0.5+src.Float64()*3, "arch"+string(rune('0'+src.Intn(3))))
			if src.Float64() < 0.5 {
				g.SetNodeMemory(id, float64(256*(1+src.Intn(32))))
			}
		default:
			g.AddComputeNode(name)
		}
	}
	// Ensure at least one compute node for Validate-style invariants.
	g.AddComputeNode("guaranteed-compute")
	n = g.NumNodes()
	caps := []float64{10e6, 100e6, 155e6, 622e6}
	for i := 1; i < n; i++ {
		g.Connect(src.Intn(i), i, caps[src.Intn(len(caps))], LinkOpts{
			Latency:    src.Float64() * 0.01,
			FullDuplex: src.Float64() < 0.3,
		})
	}
	// Chords.
	for k := 0; k < src.Intn(4); k++ {
		a, b := src.Intn(n), src.Intn(n)
		if a != b {
			g.Connect(a, b, caps[src.Intn(len(caps))], LinkOpts{})
		}
	}
	return g
}

// Property: graph JSON round-trips preserve structure and attributes.
func TestQuickGraphJSONRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		g := randomGraph(src)
		data, err := g.MarshalJSON()
		if err != nil {
			return false
		}
		g2, err := ParseGraph(data)
		if err != nil {
			return false
		}
		if g2.NumNodes() != g.NumNodes() || g2.NumLinks() != g.NumLinks() {
			return false
		}
		for i := 0; i < g.NumNodes(); i++ {
			a, b := g.Node(i), g2.Node(i)
			if a.Name != b.Name || a.Kind != b.Kind || a.Speed != b.Speed ||
				a.Arch != b.Arch || a.MemoryMB != b.MemoryMB {
				return false
			}
		}
		for l := 0; l < g.NumLinks(); l++ {
			a, b := g.Link(l), g2.Link(l)
			if a.A != b.A || a.B != b.B || a.Capacity != b.Capacity ||
				a.Latency != b.Latency || a.FullDuplex != b.FullDuplex {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: document round-trips preserve snapshots exactly.
func TestQuickDocumentRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		g := randomGraph(src)
		s := NewSnapshot(g)
		s.Time = src.Float64() * 1e4
		for i := 0; i < g.NumNodes(); i++ {
			if g.Node(i).Kind == Compute && src.Float64() < 0.5 {
				s.SetLoad(i, src.Float64()*8)
			}
		}
		for l := 0; l < g.NumLinks(); l++ {
			s.SetAvailBW(l, src.Float64()*g.Link(l).Capacity)
		}
		var buf bytes.Buffer
		if err := WriteDocument(&buf, g, s); err != nil {
			return false
		}
		_, s2, err := ReadDocument(&buf)
		if err != nil || s2 == nil {
			return false
		}
		if s2.Time != s.Time {
			return false
		}
		for i := range s.LoadAvg {
			if s2.LoadAvg[i] != s.LoadAvg[i] {
				return false
			}
		}
		for l := range s.AvailBW {
			if s2.AvailBW[l] != s.AvailBW[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: on any connected graph, every node pair is mutually reachable
// and routes are link-reversal symmetric in hop count.
func TestQuickConnectedRouting(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		g := randomGraph(src)
		n := g.NumNodes()
		for trial := 0; trial < 12; trial++ {
			a, b := src.Intn(n), src.Intn(n)
			if !g.Reachable(a, b) {
				return false
			}
			if g.HopCount(a, b) != g.HopCount(b, a) {
				return false
			}
			route := g.Route(a, b)
			if len(route) != g.HopCount(a, b) {
				return false
			}
			// The route must actually lead from a to b.
			cur := a
			for _, lid := range route {
				cur = g.Link(lid).Other(cur)
			}
			if cur != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
