package topology

import (
	"fmt"
	"io"
	"strings"
)

// DOTOptions controls DOT rendering.
type DOTOptions struct {
	// Snapshot, when non-nil, annotates nodes with load averages and links
	// with available bandwidth.
	Snapshot *Snapshot
	// Highlight is a set of node IDs drawn with bold borders — used to
	// render the Figure 4 style "selected nodes" view.
	Highlight map[int]bool
	// Name is the graph name (default "topology").
	Name string
}

// WriteDOT renders the graph in Graphviz DOT format, in the style of the
// paper's Figure 1/Figure 4 diagrams: boxes for compute nodes, ellipses for
// network nodes, selected nodes in bold.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "topology"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	b.WriteString("  node [fontsize=10];\n")
	for _, n := range g.Nodes() {
		attrs := []string{}
		if n.Kind == Compute {
			attrs = append(attrs, "shape=box")
		} else {
			attrs = append(attrs, "shape=ellipse", "style=filled", "fillcolor=lightgray")
		}
		if opts.Highlight[n.ID] {
			attrs = append(attrs, "penwidth=3")
		}
		label := n.Name
		if opts.Snapshot != nil && n.Kind == Compute {
			label = fmt.Sprintf("%s\\nload %.2f", n.Name, opts.Snapshot.LoadAvg[n.ID])
		}
		attrs = append(attrs, fmt.Sprintf("label=%q", label))
		fmt.Fprintf(&b, "  %q [%s];\n", n.Name, strings.Join(attrs, ", "))
	}
	for _, l := range g.Links() {
		label := formatBandwidth(l.Capacity)
		if opts.Snapshot != nil {
			label = fmt.Sprintf("%s avail\\nof %s",
				formatBandwidth(opts.Snapshot.AvailBW[l.ID]), formatBandwidth(l.Capacity))
		}
		fmt.Fprintf(&b, "  %q -- %q [label=%q];\n",
			g.Node(l.A).Name, g.Node(l.B).Name, label)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// formatBandwidth renders bits/second with a binary-free SI suffix, e.g.
// "100Mbps".
func formatBandwidth(bps float64) string {
	switch {
	case bps >= 1e9:
		return trimZero(bps/1e9) + "Gbps"
	case bps >= 1e6:
		return trimZero(bps/1e6) + "Mbps"
	case bps >= 1e3:
		return trimZero(bps/1e3) + "Kbps"
	default:
		return trimZero(bps) + "bps"
	}
}

func trimZero(v float64) string {
	s := fmt.Sprintf("%.1f", v)
	s = strings.TrimSuffix(s, ".0")
	return s
}

// FormatBandwidth is the exported rendering helper used by CLI tools.
func FormatBandwidth(bps float64) string { return formatBandwidth(bps) }
