package topology

import (
	"bytes"
	"testing"
)

// FuzzParseGraph throws arbitrary JSON at the topology parser: it must
// never panic and must reject structurally invalid documents with errors.
func FuzzParseGraph(f *testing.F) {
	g := NewGraph()
	g.AddComputeNode("a")
	g.AddNetworkNode("r")
	g.Connect(0, 1, 100e6, LinkOpts{Latency: 1e-4})
	valid, err := g.MarshalJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"nodes":[{"name":"a"}],"links":[]}`))
	f.Add([]byte(`{"nodes":[{"name":"a","kind":"quantum"}]}`))
	f.Add([]byte(`{"nodes":[{"name":"a"},{"name":"a"}]}`))
	f.Add([]byte(`{"nodes":[{"name":"a"},{"name":"b"}],"links":[{"a":"a","b":"b","capacity_bps":-1}]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			// The graph builders panic on invalid construction (duplicate
			// names, bad capacities); ParseGraph must convert those to
			// errors rather than leak them. Any recovered panic here is
			// a real bug except the documented builder panics, which
			// ParseGraph is expected to guard. Treat all panics as
			// failures.
			if r := recover(); r != nil {
				t.Fatalf("ParseGraph panicked: %v", r)
			}
		}()
		g, err := ParseGraph(data)
		if err != nil {
			return
		}
		// A successfully parsed graph must re-encode and re-parse.
		out, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ParseGraph(out); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}

// FuzzReadDocument exercises the combined graph+snapshot decoder.
func FuzzReadDocument(f *testing.F) {
	g := NewGraph()
	g.AddComputeNode("a")
	g.AddComputeNode("b")
	g.Connect(0, 1, 100e6, LinkOpts{})
	s := NewSnapshot(g)
	s.SetLoad(0, 1.5)
	var buf bytes.Buffer
	if err := WriteDocument(&buf, g, s); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"graph":{"nodes":[{"name":"a"}],"links":[]},"snapshot":{"load_avg":{"a":-1},"avail_bw_bps":[]}}`))
	f.Add([]byte(`{"graph":{}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ReadDocument panicked: %v", r)
			}
		}()
		g, snap, err := ReadDocument(bytes.NewReader(data))
		if err != nil {
			return
		}
		if snap != nil {
			if err := snap.Validate(); err != nil {
				t.Fatalf("accepted snapshot does not validate: %v", err)
			}
		}
		_ = g
	})
}
