package topology

import (
	"strings"
	"testing"
)

// line builds a path topology c0 - c1 - ... - c(n-1) of compute nodes with
// 100 Mbps links.
func line(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		g.AddComputeNode(nodeName(i))
	}
	for i := 0; i+1 < n; i++ {
		g.Connect(i, i+1, 100e6, LinkOpts{})
	}
	return g
}

func nodeName(i int) string {
	return "c" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// star builds hub-and-spoke: one network node "sw" with n compute leaves.
func star(n int) *Graph {
	g := NewGraph()
	hub := g.AddNetworkNode("sw")
	for i := 0; i < n; i++ {
		leaf := g.AddComputeNode(nodeName(i))
		g.Connect(hub, leaf, 100e6, LinkOpts{})
	}
	return g
}

func TestAddNodesAndLinks(t *testing.T) {
	g := NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	r := g.AddNetworkNode("r")
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3", g.NumNodes())
	}
	if g.NumComputeNodes() != 2 {
		t.Fatalf("NumComputeNodes = %d, want 2", g.NumComputeNodes())
	}
	l1 := g.Connect(a, r, 100e6, LinkOpts{Latency: 1e-4})
	l2 := g.ConnectNames("r", "b", 155e6, LinkOpts{FullDuplex: true})
	if g.NumLinks() != 2 {
		t.Fatalf("NumLinks = %d, want 2", g.NumLinks())
	}
	if g.Link(l1).Latency != 1e-4 {
		t.Error("link 1 latency lost")
	}
	if !g.Link(l2).FullDuplex {
		t.Error("link 2 duplex flag lost")
	}
	if g.Link(l2).Capacity != 155e6 {
		t.Error("link 2 capacity lost")
	}
	if got := g.Node(b).Name; got != "b" {
		t.Errorf("Node(b).Name = %q", got)
	}
	if g.Degree(r) != 2 {
		t.Errorf("Degree(r) = %d, want 2", g.Degree(r))
	}
}

func TestNodeByName(t *testing.T) {
	g := line(3)
	if g.NodeByName("c01") != 1 {
		t.Error("NodeByName failed")
	}
	if g.NodeByName("nope") != -1 {
		t.Error("NodeByName for missing name should be -1")
	}
	if g.MustNode("c02") != 2 {
		t.Error("MustNode failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNode on missing name did not panic")
		}
	}()
	g.MustNode("nope")
}

func TestDuplicateNamePanics(t *testing.T) {
	g := NewGraph()
	g.AddComputeNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	g.AddComputeNode("x")
}

func TestBadLinkPanics(t *testing.T) {
	g := NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	cases := []func(){
		func() { g.Connect(a, a, 1e6, LinkOpts{}) },            // self loop
		func() { g.Connect(a, b, 0, LinkOpts{}) },              // zero capacity
		func() { g.Connect(a, b, 1e6, LinkOpts{Latency: -1}) }, // negative latency
		func() { g.Connect(a, 99, 1e6, LinkOpts{}) },           // out of range
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad link case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLinkOther(t *testing.T) {
	g := line(2)
	l := g.Link(0)
	if l.Other(0) != 1 || l.Other(1) != 0 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	l.Other(5)
}

func TestComputeNodes(t *testing.T) {
	g := star(4)
	cn := g.ComputeNodes()
	if len(cn) != 4 {
		t.Fatalf("ComputeNodes returned %d, want 4", len(cn))
	}
	for _, id := range cn {
		if g.Node(id).Kind != Compute {
			t.Fatal("ComputeNodes returned a network node")
		}
	}
}

func TestValidate(t *testing.T) {
	if err := line(4).Validate(); err != nil {
		t.Errorf("line(4) invalid: %v", err)
	}
	empty := NewGraph()
	if err := empty.Validate(); err == nil {
		t.Error("empty graph validated")
	}
	onlyRouters := NewGraph()
	onlyRouters.AddNetworkNode("r")
	if err := onlyRouters.Validate(); err == nil {
		t.Error("router-only graph validated")
	}
	disconnected := NewGraph()
	disconnected.AddComputeNode("a")
	disconnected.AddComputeNode("b")
	if err := disconnected.Validate(); err == nil {
		t.Error("disconnected graph validated")
	}
}

func TestIsTree(t *testing.T) {
	if !line(5).IsTree() {
		t.Error("line(5) should be a tree")
	}
	if !star(6).IsTree() {
		t.Error("star(6) should be a tree")
	}
	g := line(4)
	g.Connect(0, 3, 100e6, LinkOpts{}) // close the cycle
	if g.IsTree() {
		t.Error("cycle graph reported as tree")
	}
	disc := NewGraph()
	disc.AddComputeNode("a")
	disc.AddComputeNode("b")
	if disc.IsTree() {
		t.Error("disconnected graph reported as tree")
	}
}

func TestNodeKindString(t *testing.T) {
	if Compute.String() != "compute" || Network.String() != "network" {
		t.Error("NodeKind.String wrong")
	}
	if NodeKind(9).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestSortedNames(t *testing.T) {
	g := NewGraph()
	g.AddComputeNode("zeta")
	g.AddComputeNode("alpha")
	names := g.SortedNames()
	if names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("SortedNames = %v", names)
	}
}

func TestGraphString(t *testing.T) {
	s := line(3).String()
	if !strings.Contains(s, "3 nodes") || !strings.Contains(s, "2 links") {
		t.Errorf("String() = %q", s)
	}
}

func TestSpeedAndArch(t *testing.T) {
	g := NewGraph()
	id := g.AddComputeNodeSpec("fast", 2.5, "alpha")
	if g.Node(id).Speed != 2.5 || g.Node(id).Arch != "alpha" {
		t.Error("speed/arch lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero speed did not panic")
		}
	}()
	g.AddComputeNodeSpec("bad", 0, "")
}
