package core

import (
	"errors"
	"math"
	"testing"

	"nodeselect/internal/topology"
)

// sizedFixture builds a star of n idle compute nodes.
func sizedFixture(n int) *topology.Snapshot {
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	for i := 0; i < n; i++ {
		id := g.AddComputeNode(nodeName(i))
		g.Connect(hub, id, 100e6, topology.LinkOpts{})
	}
	return topology.NewSnapshot(g)
}

// fftLikeModel mimics the FFT estimator: fixed total work split m ways,
// run at the placement's worst available CPU, plus a transpose whose total
// volume is split across the pairs.
func fftLikeModel(totalWork, totalBytes float64) PerfModel {
	return PerfModelFunc(func(res Result) float64 {
		m := float64(len(res.Nodes))
		if res.MinCPU <= 0 || res.PairMinBW <= 0 {
			return math.Inf(1)
		}
		compute := totalWork / m / res.MinCPU
		perPair := totalBytes / (m * (m - 1))
		comm := perPair * 8 * 2 * (m - 1) / res.PairMinBW
		return compute + comm
	})
}

func TestChooseCountFindsInteriorOptimum(t *testing.T) {
	// The §3.4 coupling in action: on an idle network the model alone
	// prefers ever-larger m, but only 6 of the 12 nodes are idle —
	// growing past them forces heavily loaded nodes into the set, the
	// per-m selection reports the degraded MinCPU, and the model turns
	// the corner.
	s := sizedFixture(12)
	for i := 6; i < 12; i++ {
		s.SetLoad(s.Graph.MustNode(nodeName(i)), 4) // cpu 0.2
	}
	model := fftLikeModel(60, 60e6)
	res, err := ChooseCount(s, Request{}, 2, 12, AlgoBalanced, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 6 {
		t.Fatalf("chose m = %d; want 6 (the idle pool)", res.M)
	}
	if len(res.Nodes) != res.M {
		t.Fatalf("nodes %v inconsistent with m %d", res.Nodes, res.M)
	}
	// The chosen count must be the argmin of the recorded estimates.
	for m, pred := range res.Candidates {
		if pred < res.Predicted-1e-9 {
			t.Fatalf("m=%d has estimate %v below chosen %v", m, pred, res.Predicted)
		}
	}
	if len(res.Candidates) != 11 {
		t.Fatalf("evaluated %d counts, want 11", len(res.Candidates))
	}
}

func TestChooseCountSkipsInfeasibleCounts(t *testing.T) {
	s := sizedFixture(4)
	model := PerfModelFunc(func(res Result) float64 { return float64(len(res.Nodes)) })
	res, err := ChooseCount(s, Request{}, 2, 10, AlgoBalanced, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Only m in [2, 4] is feasible; the cheapest by this model is 2.
	if res.M != 2 {
		t.Fatalf("chose m = %d, want 2", res.M)
	}
	if len(res.Candidates) != 3 {
		t.Fatalf("evaluated %d counts, want 3", len(res.Candidates))
	}
}

func TestChooseCountAllInfeasible(t *testing.T) {
	s := sizedFixture(2)
	model := PerfModelFunc(func(Result) float64 { return 1 })
	_, err := ChooseCount(s, Request{}, 5, 8, AlgoBalanced, model, nil)
	if err == nil {
		t.Fatal("impossible range accepted")
	}
	if !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("err = %v, want wrapped ErrTooFewNodes", err)
	}
}

func TestChooseCountValidation(t *testing.T) {
	s := sizedFixture(4)
	model := PerfModelFunc(func(Result) float64 { return 1 })
	if _, err := ChooseCount(s, Request{}, 0, 3, AlgoBalanced, model, nil); !errors.Is(err, ErrBadRequest) {
		t.Error("minM 0 accepted")
	}
	if _, err := ChooseCount(s, Request{}, 3, 2, AlgoBalanced, model, nil); !errors.Is(err, ErrBadRequest) {
		t.Error("inverted range accepted")
	}
	if _, err := ChooseCount(s, Request{}, 2, 3, AlgoBalanced, nil, nil); !errors.Is(err, ErrBadRequest) {
		t.Error("nil model accepted")
	}
}

func TestChooseCountRespectsBaseConstraints(t *testing.T) {
	s := sizedFixture(6)
	s.SetLoad(1, 9)                                                                      // cpu 0.1, excluded by the floor
	model := PerfModelFunc(func(res Result) float64 { return -float64(len(res.Nodes)) }) // bigger is better
	res, err := ChooseCount(s, Request{MinCPU: 0.5}, 2, 6, AlgoBalanced, model, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.M != 5 {
		t.Fatalf("chose m = %d, want 5 (6 nodes minus the loaded one)", res.M)
	}
	for _, id := range res.Nodes {
		if id == 1 {
			t.Fatal("selected the node violating the CPU floor")
		}
	}
}

// --- §3.4 latency and memory constraints ---

func TestMaxPairLatencyConstraint(t *testing.T) {
	// Two nearby nodes, and two nodes in different remote sites so their
	// mutual path crosses two WAN hops.
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	far1 := g.AddNetworkNode("far1")
	far2 := g.AddNetworkNode("far2")
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	c := g.AddComputeNode("c")
	d := g.AddComputeNode("d")
	g.Connect(hub, a, 100e6, topology.LinkOpts{Latency: 1e-4})
	g.Connect(hub, b, 100e6, topology.LinkOpts{Latency: 1e-4})
	g.Connect(hub, far1, 100e6, topology.LinkOpts{Latency: 50e-3}) // 50 ms WAN hop
	g.Connect(hub, far2, 100e6, topology.LinkOpts{Latency: 50e-3})
	g.Connect(far1, c, 100e6, topology.LinkOpts{Latency: 1e-4})
	g.Connect(far2, d, 100e6, topology.LinkOpts{Latency: 1e-4})
	s := topology.NewSnapshot(g)
	// Make the nearby pair's bandwidth worse so the unconstrained choice
	// would cross the WAN hop.
	s.SetAvailBW(0, 30e6)
	s.SetAvailBW(1, 30e6)

	free, err := Balanced(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(free.Nodes, []int{c, d}) {
		t.Fatalf("unconstrained chose %v, want the far pair [c d]", free.Nodes)
	}
	capped, err := Balanced(s, Request{M: 2, MaxPairLatency: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(capped.Nodes, []int{a, b}) {
		t.Fatalf("latency-capped chose %v, want the nearby pair [a b]", capped.Nodes)
	}
	if capped.MaxPairLatency > 1e-3 {
		t.Fatalf("reported latency %v exceeds the cap", capped.MaxPairLatency)
	}
	// Infeasible cap.
	if _, err := Balanced(s, Request{M: 3, MaxPairLatency: 1e-3}); !errors.Is(err, ErrNoFeasibleSet) {
		t.Fatalf("err = %v, want ErrNoFeasibleSet", err)
	}
	// Brute force agrees.
	bf, err := BruteForce(s, Request{M: 2, MaxPairLatency: 1e-3}, ObjectiveBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(bf.Nodes, capped.Nodes) {
		t.Fatalf("brute force chose %v, greedy %v", bf.Nodes, capped.Nodes)
	}
}

func TestMaxPairLatencyOnMaxCompute(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	c := g.AddComputeNode("c")
	g.Connect(hub, a, 100e6, topology.LinkOpts{Latency: 1e-4})
	g.Connect(hub, b, 100e6, topology.LinkOpts{Latency: 1e-4})
	g.Connect(hub, c, 100e6, topology.LinkOpts{Latency: 80e-3})
	s := topology.NewSnapshot(g)
	s.SetLoad(a, 1) // the idle far node would win without the cap
	res, err := MaxCompute(s, Request{M: 2, MaxPairLatency: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{a, b}) {
		t.Fatalf("chose %v, want [a b]", res.Nodes)
	}
}

func TestScoreReportsMaxPairLatency(t *testing.T) {
	g := topology.NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	c := g.AddComputeNode("c")
	g.Connect(a, b, 100e6, topology.LinkOpts{Latency: 0.002})
	g.Connect(b, c, 100e6, topology.LinkOpts{Latency: 0.003})
	s := topology.NewSnapshot(g)
	res := Score(s, []int{a, c}, Request{M: 2})
	if math.Abs(res.MaxPairLatency-0.005) > 1e-12 {
		t.Fatalf("MaxPairLatency = %v, want 0.005", res.MaxPairLatency)
	}
}

func TestMinMemoryFloor(t *testing.T) {
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	big := g.AddComputeNode("big")
	small := g.AddComputeNode("small")
	other := g.AddComputeNode("other")
	g.Connect(hub, big, 100e6, topology.LinkOpts{})
	g.Connect(hub, small, 100e6, topology.LinkOpts{})
	g.Connect(hub, other, 100e6, topology.LinkOpts{})
	g.SetNodeMemory(big, 4096)
	g.SetNodeMemory(small, 256)
	g.SetNodeMemory(other, 2048)
	s := topology.NewSnapshot(g)
	res, err := Balanced(s, Request{M: 2, MinMemoryMB: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{big, other}) {
		t.Fatalf("chose %v, want the big-memory pair", res.Nodes)
	}
	if _, err := Balanced(s, Request{M: 3, MinMemoryMB: 1024}); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("err = %v, want ErrTooFewNodes", err)
	}
	// Pinned node violating the floor is infeasible.
	if _, err := Balanced(s, Request{M: 2, MinMemoryMB: 1024, Pinned: []int{small}}); !errors.Is(err, ErrNoFeasibleSet) {
		t.Fatalf("err = %v, want ErrNoFeasibleSet", err)
	}
}

func TestSetNodeMemoryPanicsNegative(t *testing.T) {
	g := topology.NewGraph()
	id := g.AddComputeNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("negative memory accepted")
		}
	}()
	g.SetNodeMemory(id, -1)
}
