// Package core implements the paper's central contribution: procedures that
// select a set of compute nodes from a logical network topology so as to
// maximize the computation capacity, the communication capacity, or a
// balanced combination of the two available to an application.
//
// The three fundamental algorithms follow §3.2 of the paper:
//
//   - MaxCompute selects the m nodes with the highest available CPU
//     fraction cpu = 1/(1+loadavg).
//   - MaxBandwidth (paper Figure 2) maximizes the minimum available
//     bandwidth between any pair of selected nodes by repeatedly deleting
//     the minimum-bandwidth edge while a connected component with at least
//     m compute nodes survives.
//   - Balanced (paper Figure 3) maximizes
//     minresource = min(min fractional cpu, min fractional bandwidth)
//     by the same bottleneck-edge deletion, re-picking the best compute
//     nodes per surviving component.
//
// The generalizations of §3.3 are supported through Request: heterogeneous
// links (reference capacity) and nodes (relative speeds), prioritization of
// computation versus communication, fixed bandwidth/CPU floors, restricted
// eligibility (architecture or group constraints) and pinned nodes.
package core

import (
	"errors"
	"fmt"
	"math"

	"nodeselect/internal/topology"
)

// Request describes what an application needs from node selection. It is
// the algorithm-facing form of the application specification interface
// (§2.1 of the paper).
type Request struct {
	// M is the number of compute nodes required. Must be >= 1.
	M int

	// ComputePriority weights computation against communication in the
	// balanced objective (§3.3 "Prioritization"). With priority p, the
	// objective is min(mincpu, p * minbw): p = 2 makes 50% CPU
	// availability equivalent to 25% bandwidth availability, exactly the
	// paper's example. Zero means 1 (equal weight).
	ComputePriority float64

	// RefCapacity, when positive, is the reference link capacity in
	// bits/second used to express available bandwidth as a fraction on
	// heterogeneous networks (§3.3 "Heterogeneous links"). Zero means
	// each link's own capacity is used (homogeneous interpretation).
	RefCapacity float64

	// MinBW, when positive, is a fixed bandwidth floor in bits/second:
	// links offering less are unusable for this application (§3.3 "Fixed
	// computation and communication requirements").
	MinBW float64

	// MinCPU, when positive, is a fixed floor on the effective CPU
	// fraction: nodes offering less are ineligible.
	MinCPU float64

	// MinMemoryMB, when positive, excludes compute nodes with less
	// physical memory (§3.4 lists memory among the factors Remos
	// reports; this models a static per-node capacity requirement).
	MinMemoryMB float64

	// MaxPairLatency, when positive, is a ceiling in seconds on the
	// one-way path latency between any pair of selected nodes (§3.4
	// "Latency and other considerations"). Selections violating it are
	// rejected.
	MaxPairLatency float64

	// Eligible, when non-nil, restricts the candidate compute nodes
	// (architecture constraints, server pools, and similar group
	// requirements from the application specification interface).
	Eligible func(node int) bool

	// Pinned lists compute nodes that must be part of the selection
	// (e.g. a server that must run on a specific machine).
	Pinned []int
}

// priority returns the effective compute priority.
func (r Request) priority() float64 {
	if r.ComputePriority <= 0 {
		return 1
	}
	return r.ComputePriority
}

// Errors returned by the selection procedures.
var (
	// ErrTooFewNodes means the topology does not contain M eligible
	// compute nodes at all.
	ErrTooFewNodes = errors.New("core: not enough eligible compute nodes")
	// ErrNoFeasibleSet means constraints (floors, pinning, connectivity)
	// cannot be satisfied under the current network conditions.
	ErrNoFeasibleSet = errors.New("core: no feasible node set under the given constraints")
	// ErrBadRequest means the request itself is malformed.
	ErrBadRequest = errors.New("core: malformed request")
)

// Result reports a selected node set and the resource fractions it was
// scored with.
type Result struct {
	// Nodes is the selected compute node set, sorted by node ID.
	Nodes []int

	// MinCPU is the minimum effective CPU fraction across the selected
	// nodes (cpu fraction times relative speed).
	MinCPU float64

	// PairMinBW is the minimum available bandwidth, in bits/second,
	// between any pair of selected nodes along static routes. +Inf when
	// only one node is selected.
	PairMinBW float64

	// MinBWFactor is PairMinBW expressed as a fraction: against the
	// reference capacity when the request sets one, otherwise as the
	// minimum per-link fraction along the selected pairs' routes. +Inf
	// when only one node is selected.
	MinBWFactor float64

	// MinResource is min(MinCPU, priority * MinBWFactor), the balanced
	// objective of Figure 3 evaluated on the actual selected set.
	MinResource float64

	// MaxPairLatency is the largest one-way path latency, in seconds,
	// between any pair of selected nodes (0 when only one node).
	MaxPairLatency float64

	// BottleneckLink is the link ID at which PairMinBW is attained — the
	// binding communication bottleneck of the placement — or -1 when the
	// selection spans fewer than two nodes. Admission control uses it to
	// name the constraint that limits a placement.
	BottleneckLink int
}

// BottleneckName renders the bottleneck link as "a--b" endpoint names, or
// "" when the result has no bottleneck link.
func (r Result) BottleneckName(g *topology.Graph) string {
	if r.BottleneckLink < 0 || r.BottleneckLink >= g.NumLinks() {
		return ""
	}
	l := g.Link(r.BottleneckLink)
	return g.Node(l.A).Name + "--" + g.Node(l.B).Name
}

// names renders the selected node names using the snapshot's graph.
func (r Result) Names(g *topology.Graph) []string {
	out := make([]string, len(r.Nodes))
	for i, id := range r.Nodes {
		out[i] = g.Node(id).Name
	}
	return out
}

// String returns a compact rendering for logs and CLI output.
func (r Result) String() string {
	return fmt.Sprintf("nodes=%v mincpu=%.3f minbw=%s minresource=%.3f",
		r.Nodes, r.MinCPU, topology.FormatBandwidth(finiteOr(r.PairMinBW, 0)), r.MinResource)
}

func finiteOr(v, alt float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return alt
	}
	return v
}

// validate checks the request against the snapshot and returns the eligible
// compute node IDs (sorted ascending).
func (r Request) validate(s *topology.Snapshot) ([]int, error) {
	if r.M < 1 {
		return nil, fmt.Errorf("%w: M = %d", ErrBadRequest, r.M)
	}
	if s == nil || s.Graph == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrBadRequest)
	}
	pinned := make(map[int]bool, len(r.Pinned))
	for _, id := range r.Pinned {
		if id < 0 || id >= s.Graph.NumNodes() || s.Graph.Node(id).Kind != topology.Compute {
			return nil, fmt.Errorf("%w: pinned node %d is not a compute node", ErrBadRequest, id)
		}
		pinned[id] = true
	}
	if len(pinned) > r.M {
		return nil, fmt.Errorf("%w: %d pinned nodes exceed M = %d", ErrBadRequest, len(pinned), r.M)
	}
	var eligible []int
	for _, id := range s.Graph.ComputeNodes() {
		if r.Eligible != nil && !r.Eligible(id) && !pinned[id] {
			continue
		}
		if r.MinCPU > 0 && s.EffectiveCPU(id) < r.MinCPU && !pinned[id] {
			continue
		}
		if r.MinMemoryMB > 0 && s.Graph.Node(id).MemoryMB < r.MinMemoryMB && !pinned[id] {
			continue
		}
		eligible = append(eligible, id)
	}
	// Pinned nodes must themselves satisfy the floors.
	for _, id := range r.Pinned {
		if r.MinCPU > 0 && s.EffectiveCPU(id) < r.MinCPU {
			return nil, fmt.Errorf("%w: pinned node %d violates the CPU floor", ErrNoFeasibleSet, id)
		}
		if r.MinMemoryMB > 0 && s.Graph.Node(id).MemoryMB < r.MinMemoryMB {
			return nil, fmt.Errorf("%w: pinned node %d violates the memory floor", ErrNoFeasibleSet, id)
		}
	}
	if len(eligible) < r.M {
		return nil, fmt.Errorf("%w: %d eligible, %d required", ErrTooFewNodes, len(eligible), r.M)
	}
	return eligible, nil
}

// linkUsable reports whether a link satisfies the request's bandwidth floor.
func (r Request) linkUsable(s *topology.Snapshot, link int) bool {
	return r.MinBW <= 0 || s.AvailBW[link] >= r.MinBW
}

// pinnedSet returns the pinned nodes as a set.
func (r Request) pinnedSet() map[int]bool {
	m := make(map[int]bool, len(r.Pinned))
	for _, id := range r.Pinned {
		m[id] = true
	}
	return m
}
