package core

import (
	"fmt"
	"math"
	"sort"

	"nodeselect/internal/topology"
)

// Pattern identifies a communication structure for pattern-aware selection.
// §3.4 ("Custom execution patterns") notes that the base procedures attach
// equal importance to all nodes and communication paths, which is
// inaccurate for, e.g., client-server applications; this file implements
// the extension the paper leaves as ongoing work.
type Pattern int

const (
	// PatternAllToAll weighs every node pair equally — the base
	// algorithms' assumption; BalancedPattern then reduces to Balanced.
	PatternAllToAll Pattern = iota
	// PatternMasterSlave weighs only master-to-worker paths, and assigns
	// the master role to the node with the maximum available computation
	// capacity (the paper's server example), or to the first pinned node
	// when one is given.
	PatternMasterSlave
	// PatternPipeline weighs only consecutive pairs of the selected set.
	// Stages are assigned along a bandwidth-greedy chain through the
	// selected nodes.
	PatternPipeline
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternAllToAll:
		return "all-to-all"
	case PatternMasterSlave:
		return "master-slave"
	case PatternPipeline:
		return "pipeline"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// PatternResult extends Result with the role assignment the pattern
// implies.
type PatternResult struct {
	Result
	// Master is the node assigned the master/server role
	// (PatternMasterSlave only; -1 otherwise).
	Master int
	// Order is the stage order (PatternPipeline only; nil otherwise).
	Order []int
}

// ScorePattern evaluates a node set under a communication pattern: the
// bandwidth terms of the objective range only over the pairs the pattern
// deems significant.
func ScorePattern(s *topology.Snapshot, nodes []int, req Request, pattern Pattern) PatternResult {
	switch pattern {
	case PatternAllToAll:
		return PatternResult{Result: Score(s, nodes, req), Master: -1}
	case PatternMasterSlave:
		master := pickMaster(s, nodes, req)
		var pairs [][2]int
		for _, id := range nodes {
			if id != master {
				pairs = append(pairs, [2]int{master, id})
			}
		}
		res := scorePairs(s, nodes, req, pairs)
		return PatternResult{Result: res, Master: master}
	case PatternPipeline:
		order := chainOrder(s, nodes)
		var pairs [][2]int
		for i := 0; i+1 < len(order); i++ {
			pairs = append(pairs, [2]int{order[i], order[i+1]})
		}
		res := scorePairs(s, nodes, req, pairs)
		return PatternResult{Result: res, Master: -1, Order: order}
	default:
		panic(fmt.Sprintf("core: unknown pattern %v", pattern))
	}
}

// pickMaster returns the pinned master if any, else the node with maximum
// effective CPU (ties to the lowest ID).
func pickMaster(s *topology.Snapshot, nodes []int, req Request) int {
	if len(req.Pinned) > 0 {
		for _, id := range nodes {
			if id == req.Pinned[0] {
				return id
			}
		}
	}
	best := nodes[0]
	for _, id := range nodes[1:] {
		if c := s.EffectiveCPU(id); c > s.EffectiveCPU(best) ||
			(c == s.EffectiveCPU(best) && id < best) {
			best = id
		}
	}
	return best
}

// scorePairs is Score restricted to an explicit pair list.
func scorePairs(s *topology.Snapshot, nodes []int, req Request, pairs [][2]int) Result {
	res := Result{
		Nodes:       append([]int(nil), nodes...),
		MinCPU:      math.Inf(1),
		PairMinBW:   math.Inf(1),
		MinBWFactor: math.Inf(1),
	}
	sort.Ints(res.Nodes)
	for _, id := range res.Nodes {
		if cpu := s.EffectiveCPU(id); cpu < res.MinCPU {
			res.MinCPU = cpu
		}
	}
	for _, pr := range pairs {
		for _, lid := range s.Graph.Route(pr[0], pr[1]) {
			if bw := s.AvailBW[lid]; bw < res.PairMinBW {
				res.PairMinBW = bw
			}
			if f := linkFactor(s, lid, req); f < res.MinBWFactor {
				res.MinBWFactor = f
			}
		}
		if lat := s.Graph.PathLatency(pr[0], pr[1]); lat > res.MaxPairLatency {
			res.MaxPairLatency = lat
		}
	}
	res.MinResource = math.Min(res.MinCPU, req.priority()*res.MinBWFactor)
	return res
}

// chainOrder orders the nodes along a bandwidth-greedy chain: starting
// from the best-connected pair, it repeatedly extends whichever chain end
// has the best remaining link. Pairs are ranked by available bandwidth
// first and path latency second, so that on a LAN where many pairs tie at
// full bandwidth the chain follows physical proximity instead of
// zig-zagging across routers. This is a heuristic for the (NP-hard)
// max-min Hamiltonian path underlying optimal pipeline stage placement.
func chainOrder(s *topology.Snapshot, nodes []int) []int {
	n := len(nodes)
	if n <= 2 {
		return append([]int(nil), nodes...)
	}
	// better reports whether pair quality (w1, l1) beats (w2, l2):
	// higher bandwidth, then lower latency.
	better := func(w1, l1, w2, l2 float64) bool {
		if w1 != w2 {
			return w1 > w2
		}
		return l1 < l2
	}
	bw := func(a, b int) float64 { return s.PairBandwidth(a, b) }
	lat := func(a, b int) float64 { return s.Graph.PathLatency(a, b) }

	// Best starting pair.
	bi, bj := 0, 1
	bestBW, bestLat := math.Inf(-1), math.Inf(1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w, l := bw(nodes[i], nodes[j]), lat(nodes[i], nodes[j])
			if better(w, l, bestBW, bestLat) {
				bestBW, bestLat, bi, bj = w, l, i, j
			}
		}
	}
	used := make([]bool, n)
	used[bi], used[bj] = true, true
	chain := []int{nodes[bi], nodes[bj]}
	for len(chain) < n {
		head, tail := chain[0], chain[len(chain)-1]
		bestIdx, bestEnd := -1, 0
		bw0, lat0 := math.Inf(-1), math.Inf(1)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Prefer extending the tail on full ties so a physical chain
			// is traversed in order rather than alternated.
			w, l, end := bw(head, nodes[i]), lat(head, nodes[i]), 0
			if wt, lt := bw(tail, nodes[i]), lat(tail, nodes[i]); !better(w, l, wt, lt) {
				w, l, end = wt, lt, 1
			}
			if better(w, l, bw0, lat0) {
				bw0, lat0, bestIdx, bestEnd = w, l, i, end
			}
		}
		used[bestIdx] = true
		if bestEnd == 0 {
			chain = append([]int{nodes[bestIdx]}, chain...)
		} else {
			chain = append(chain, nodes[bestIdx])
		}
	}
	return chain
}

// BalancedPattern selects m nodes maximizing the pattern-aware balanced
// objective. It enumerates candidate sets with the same bottleneck-edge
// deletion sweep as Balanced, but scores each candidate with ScorePattern,
// so, e.g., a master-slave application is not penalized for poor
// worker-to-worker paths it never uses.
func BalancedPattern(s *topology.Snapshot, req Request, pattern Pattern) (PatternResult, error) {
	if pattern == PatternAllToAll {
		res, err := Balanced(s, req)
		return PatternResult{Result: res, Master: -1}, err
	}
	eligible, err := req.validate(s)
	if err != nil {
		return PatternResult{}, err
	}
	g := s.Graph
	pinned := req.pinnedSet()
	isEligible := make(map[int]bool, len(eligible))
	for _, id := range eligible {
		isEligible[id] = true
	}

	alive := make([]bool, g.NumLinks())
	for l := range alive {
		alive[l] = req.linkUsable(s, l)
	}
	aliveFn := func(l int) bool { return alive[l] }
	order := make([]int, 0, g.NumLinks())
	for l := 0; l < g.NumLinks(); l++ {
		if alive[l] {
			order = append(order, l)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		fi, fj := linkFactor(s, order[i], req), linkFactor(s, order[j], req)
		if fi != fj {
			return fi < fj
		}
		return order[i] < order[j]
	})

	var best PatternResult
	found := false
	evaluate := func() {
		for _, comp := range g.Components(aliveFn) {
			if !containsAll(comp, pinned) {
				continue
			}
			cands := filterNodes(comp, func(id int) bool { return isEligible[id] })
			nodes := topCPUNodes(s, cands, req.M, pinned)
			if nodes == nil {
				continue
			}
			res := ScorePattern(s, nodes, req, pattern)
			if req.MinBW > 0 && res.PairMinBW < req.MinBW {
				continue
			}
			if req.MaxPairLatency > 0 && res.MaxPairLatency > req.MaxPairLatency {
				continue
			}
			if !found || res.MinResource > best.MinResource {
				best = res
				found = true
			}
		}
	}
	evaluate()
	for i := 0; i < len(order); {
		v := linkFactor(s, order[i], req)
		alive[order[i]] = false
		i++
		for i < len(order) && linkFactor(s, order[i], req) == v {
			alive[order[i]] = false
			i++
		}
		evaluate()
	}
	if !found {
		return PatternResult{}, fmt.Errorf("%w: no component provides %d connected eligible compute nodes",
			ErrNoFeasibleSet, req.M)
	}
	return best, nil
}

// BruteForcePattern exhaustively maximizes the pattern objective; the
// testing oracle for BalancedPattern.
func BruteForcePattern(s *topology.Snapshot, req Request, pattern Pattern) (PatternResult, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return PatternResult{}, err
	}
	pinned := req.pinnedSet()
	var free, base []int
	for _, id := range eligible {
		if pinned[id] {
			base = append(base, id)
		} else {
			free = append(free, id)
		}
	}
	need := req.M - len(base)
	var best PatternResult
	found := false
	combo := make([]int, 0, req.M)
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			nodes := append(append([]int(nil), base...), combo...)
			res := ScorePattern(s, nodes, req, pattern)
			if req.MinBW > 0 && res.PairMinBW < req.MinBW {
				return
			}
			if req.MaxPairLatency > 0 && res.MaxPairLatency > req.MaxPairLatency {
				return
			}
			if !found || res.MinResource > best.MinResource {
				best = res
				found = true
			}
			return
		}
		for i := start; i <= len(free)-remaining; i++ {
			combo = append(combo, free[i])
			rec(i+1, remaining-1)
			combo = combo[:len(combo)-1]
		}
	}
	rec(0, need)
	if !found {
		return PatternResult{}, ErrNoFeasibleSet
	}
	return best, nil
}
