//go:build !refsweep

package core

// forceReferenceSweep routes every sweep through the literal edge-deletion
// loop when the refsweep build tag is set. The default build uses the
// union-find fast path; `make benchdiff` builds the benchmarks twice —
// with and without the tag — to measure old vs new under identical names.
const forceReferenceSweep = false
