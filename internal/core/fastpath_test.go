package core

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// randomCyclicSnapshot builds a random connected static-route topology with
// cycles: a random tree over compute nodes and switches, plus extra chords,
// with heterogeneous node speeds, link capacities, latencies, loads and
// available bandwidths. The static route table (minimum hop, deterministic
// tie-break) is what both sweep implementations score against.
func randomCyclicSnapshot(src *randx.Source, n int) *topology.Snapshot {
	g := topology.NewGraph()
	for i := 0; i < n; i++ {
		if src.Intn(4) == 0 {
			g.AddNetworkNode("s" + nodeName(i))
		} else {
			speed := 0.5 + src.Float64()*1.5
			g.AddComputeNodeSpec(nodeName(i), speed, "")
		}
	}
	caps := []float64{10e6, 100e6, 1e9}
	for i := 1; i < n; i++ {
		c := caps[src.Intn(len(caps))]
		g.Connect(src.Intn(i), i, c, topology.LinkOpts{Latency: src.Float64() * 1e-3})
	}
	extra := src.Intn(n/2 + 1)
	for e := 0; e < extra; e++ {
		a, b := src.Intn(n), src.Intn(n)
		if a == b {
			continue
		}
		c := caps[src.Intn(len(caps))]
		g.Connect(a, b, c, topology.LinkOpts{Latency: src.Float64() * 1e-3})
	}
	s := topology.NewSnapshot(g)
	for i := 0; i < n; i++ {
		s.SetLoad(i, src.Float64()*4)
	}
	for l := 0; l < g.NumLinks(); l++ {
		s.SetAvailBW(l, src.Float64()*g.Link(l).Capacity)
	}
	return s
}

// quantizeBandwidth collapses link bandwidths onto a small grid so that
// metric ties — several links removed in one sweep round, components whose
// scores collide — are common rather than measure-zero events.
func quantizeBandwidth(s *topology.Snapshot, levels int) {
	g := s.Graph
	for l := 0; l < g.NumLinks(); l++ {
		step := g.Link(l).Capacity / float64(levels)
		q := float64(int(s.AvailBW[l]/step)) * step
		s.SetAvailBW(l, q)
	}
}

// equivRequest derives a request variant from the case index, cycling
// through floors, priorities, pinning, heterogeneous reference capacity,
// latency ceilings and eligibility restrictions.
func equivRequest(src *randx.Source, s *topology.Snapshot, variant int) Request {
	nc := s.Graph.NumComputeNodes()
	m := 1
	if nc > 1 {
		m = 1 + src.Intn(nc)
	}
	req := Request{M: m}
	switch variant % 8 {
	case 1:
		req.MinBW = src.Float64() * 100e6
	case 2:
		req.MinCPU = src.Float64()
	case 3:
		req.ComputePriority = 0.5 + src.Float64()*3.5
	case 4:
		req.RefCapacity = 100e6
	case 5:
		comp := s.Graph.ComputeNodes()
		if len(comp) > 0 {
			req.Pinned = []int{comp[src.Intn(len(comp))]}
			if len(comp) > 1 && src.Intn(2) == 0 {
				req.Pinned = append(req.Pinned, comp[src.Intn(len(comp))])
			}
		}
	case 6:
		req.MaxPairLatency = src.Float64() * 5e-3
	case 7:
		cut := src.Intn(s.Graph.NumNodes()) + 1
		req.Eligible = func(node int) bool { return node%cut != 0 || node == 0 }
		req.MinBW = src.Float64() * 50e6
	}
	return req
}

// collectTrace runs fn with an observer installed and returns the steps.
func collectTrace(fn func(Options) (Result, error), base Options) ([]SweepStep, Result, error) {
	var steps []SweepStep
	base.Observer = func(st SweepStep) { steps = append(steps, st) }
	res, err := fn(base)
	return steps, res, err
}

// assertEquivalent runs the fast and reference sweeps on one case and fails
// the test on any divergence: node sets, every Result field, error class
// and message, and — on a sampled subset — the full observer trace.
func assertEquivalent(t *testing.T, s *topology.Snapshot, req Request, balanced bool, withTrace bool, tag string) {
	t.Helper()
	fastRes, fastErr := fastSweepSelect(s, req, Options{}, balanced)
	refRes, refErr := referenceSweepSelect(s, req, Options{}, balanced)

	if (fastErr == nil) != (refErr == nil) {
		t.Fatalf("%s: error divergence: fast=%v ref=%v", tag, fastErr, refErr)
	}
	if fastErr != nil {
		for _, class := range []error{ErrBadRequest, ErrTooFewNodes, ErrNoFeasibleSet} {
			if errors.Is(fastErr, class) != errors.Is(refErr, class) {
				t.Fatalf("%s: error class divergence: fast=%v ref=%v", tag, fastErr, refErr)
			}
		}
		if fastErr.Error() != refErr.Error() {
			t.Fatalf("%s: error message divergence:\nfast: %v\nref:  %v", tag, fastErr, refErr)
		}
		return
	}
	if !reflect.DeepEqual(fastRes, refRes) {
		t.Fatalf("%s: result divergence:\nfast: %+v\nref:  %+v", tag, fastRes, refRes)
	}

	if !withTrace {
		return
	}
	fastSteps, fastRes2, fastErr2 := collectTrace(func(o Options) (Result, error) {
		return fastSweepSelect(s, req, o, balanced)
	}, Options{})
	refSteps, _, _ := collectTrace(func(o Options) (Result, error) {
		return referenceSweepSelect(s, req, o, balanced)
	}, Options{})
	if fastErr2 != nil || !reflect.DeepEqual(fastRes2, fastRes) {
		t.Fatalf("%s: observer changed the fast result: %+v vs %+v (err %v)", tag, fastRes2, fastRes, fastErr2)
	}
	if len(fastSteps) != len(refSteps) {
		t.Fatalf("%s: trace length divergence: fast=%d ref=%d", tag, len(fastSteps), len(refSteps))
	}
	for i := range fastSteps {
		if !reflect.DeepEqual(fastSteps[i], refSteps[i]) {
			t.Fatalf("%s: trace step %d divergence:\nfast: %+v\nref:  %+v", tag, i, fastSteps[i], refSteps[i])
		}
	}
}

// TestFastPathEquivalence is the differential harness of the union-find
// sweep: across well over 1000 random tree and cyclic static-route
// snapshots and the full spread of request shapes (floors, priorities,
// pinned nodes, heterogeneous reference capacity and node speeds, latency
// ceilings, eligibility restrictions), the fast path must return exactly
// the reference oracle's node sets, scores, and error classes — and, on a
// sampled subset, a bit-identical decision trace.
func TestFastPathEquivalence(t *testing.T) {
	root := randx.New(0xfa57)
	const cases = 1200
	for i := 0; i < cases; i++ {
		src := root.Split(fmt.Sprintf("equiv-%d", i))
		n := 4 + src.Intn(21)
		var s *topology.Snapshot
		kind := "tree"
		if i%2 == 0 {
			s = randomTreeSnapshot(src, n)
		} else {
			kind = "cyclic"
			s = randomCyclicSnapshot(src, n)
		}
		if i%3 == 0 {
			quantizeBandwidth(s, 1+src.Intn(4))
		}
		req := equivRequest(src, s, i)
		balanced := i%2 == 1
		withTrace := i%5 == 0
		tag := fmt.Sprintf("case %d (%s n=%d m=%d balanced=%v)", i, kind, n, req.M, balanced)
		assertEquivalent(t, s, req, balanced, withTrace, tag)
	}
}

// TestFastPathEquivalenceTinyAndDegenerate pins the boundary shapes the
// random sweep may miss: single node, no usable links, every-link-tied,
// all-pinned requests, and an m equal to the full compute population.
func TestFastPathEquivalenceTinyAndDegenerate(t *testing.T) {
	src := randx.New(7)

	single := topology.NewGraph()
	single.AddComputeNode("n00")
	sSingle := topology.NewSnapshot(single)

	flat := chain(6)
	sFlat := topology.NewSnapshot(flat) // all availbw equal: one giant tier

	floor := randomTreeSnapshot(src, 12)
	comp := floor.Graph.ComputeNodes()

	cases := []struct {
		name     string
		s        *topology.Snapshot
		req      Request
		balanced bool
	}{
		{"single-m1", sSingle, Request{M: 1}, false},
		{"single-m2", sSingle, Request{M: 2}, false},
		{"flat-ties", sFlat, Request{M: 3}, false},
		{"flat-ties-balanced", sFlat, Request{M: 3}, true},
		{"all-nodes", sFlat, Request{M: 6}, false},
		{"floor-kills-everything", floor, Request{M: 2, MinBW: 1e12}, false},
		{"all-pinned", sFlat, Request{M: 3, Pinned: []int{0, 2, 4}}, true},
		{"pinned-m-equal", floor, Request{M: 2, Pinned: []int{comp[0], comp[1]}}, false},
	}
	for _, c := range cases {
		assertEquivalent(t, c.s, c.req, c.balanced, true, c.name)
	}
}

// TestSweepDeterminism asserts the dispatching sweep (and both underlying
// implementations) return identical results and traces across repeated runs
// on a tie-heavy snapshot — the shape under which any dependence on Go's
// randomized map iteration order would surface.
func TestSweepDeterminism(t *testing.T) {
	src := randx.New(0xD373)
	s := randomTreeSnapshot(src, 40)
	quantizeBandwidth(s, 2) // heavy metric ties
	// Heavy CPU ties as well: two load classes only.
	for i := 0; i < s.Graph.NumNodes(); i++ {
		s.SetLoad(i, float64(i%2))
	}
	req := Request{M: 10, Pinned: []int{3, 17}}

	type outcome struct {
		res   Result
		err   string
		steps []SweepStep
	}
	run := func(impl func(*topology.Snapshot, Request, Options, bool) (Result, error), balanced bool) outcome {
		var o outcome
		opts := Options{Observer: func(st SweepStep) { o.steps = append(o.steps, st) }}
		res, err := impl(s, req, opts, balanced)
		o.res = res
		if err != nil {
			o.err = err.Error()
		}
		return o
	}
	for _, impl := range []struct {
		name string
		fn   func(*topology.Snapshot, Request, Options, bool) (Result, error)
	}{{"dispatch", sweepSelect}, {"fast", fastSweepSelect}, {"reference", referenceSweepSelect}} {
		for _, balanced := range []bool{false, true} {
			first := run(impl.fn, balanced)
			for rep := 1; rep < 20; rep++ {
				again := run(impl.fn, balanced)
				if !reflect.DeepEqual(first, again) {
					t.Fatalf("%s balanced=%v: run %d diverged from run 0:\nfirst: %+v\nagain: %+v",
						impl.name, balanced, rep, first, again)
				}
			}
		}
	}
}

// FuzzSweepEquivalence decodes arbitrary bytes into a snapshot and request
// and checks that the union-find fast path and the reference edge-deletion
// loop agree exactly: same result or same error class.
func FuzzSweepEquivalence(f *testing.F) {
	f.Add([]byte{8, 1, 2, 3, 4, 5, 6, 7, 0, 3, 10, 20, 30, 40, 50, 60, 70})
	f.Add([]byte{4, 0, 0, 0, 200, 1, 255, 255, 255})
	f.Add([]byte{12, 9, 9, 9, 1, 2, 3, 4, 5, 6, 7, 8, 64, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 2 + int(data[0])%14
		rest := data[1:]
		at := func(i int) byte {
			if len(rest) == 0 {
				return 0
			}
			return rest[i%len(rest)]
		}
		g := topology.NewGraph()
		for i := 0; i < n; i++ {
			if at(i)%5 == 4 {
				g.AddNetworkNode("s" + nodeName(i))
			} else {
				g.AddComputeNodeSpec(nodeName(i), 0.25+float64(at(n+i)%8)/4, "")
			}
		}
		for i := 1; i < n; i++ {
			g.Connect(int(at(2*n+i))%i, i, 100e6, topology.LinkOpts{})
		}
		// Optional chords make it cyclic.
		for e := 0; e < int(at(3*n))%4; e++ {
			a, b := int(at(3*n+e))%n, int(at(3*n+e+7))%n
			if a != b {
				g.Connect(a, b, 100e6, topology.LinkOpts{})
			}
		}
		s := topology.NewSnapshot(g)
		for i := 0; i < n; i++ {
			s.SetLoad(i, float64(at(4*n+i)%16)/4)
		}
		for l := 0; l < g.NumLinks(); l++ {
			s.SetAvailBW(l, float64(at(5*n+l)%11)*10e6)
		}
		req := Request{M: 1 + int(at(6*n))%n}
		if at(6*n+1)%3 == 1 {
			req.MinBW = float64(at(6*n+2)%11) * 10e6
		}
		if at(6*n+3)%3 == 1 {
			req.ComputePriority = 0.5 + float64(at(6*n+4)%8)/2
		}
		balanced := at(6*n+5)%2 == 1

		fastRes, fastErr := fastSweepSelect(s, req, Options{}, balanced)
		refRes, refErr := referenceSweepSelect(s, req, Options{}, balanced)
		if (fastErr == nil) != (refErr == nil) {
			t.Fatalf("error divergence: fast=%v ref=%v", fastErr, refErr)
		}
		if fastErr != nil {
			if fastErr.Error() != refErr.Error() {
				t.Fatalf("error message divergence: fast=%v ref=%v", fastErr, refErr)
			}
			return
		}
		if !reflect.DeepEqual(fastRes, refRes) {
			t.Fatalf("result divergence:\nfast: %+v\nref:  %+v", fastRes, refRes)
		}
	})
}
