package core

import (
	"math"
	"sort"

	"nodeselect/internal/topology"
)

// Score evaluates a concrete node set against the snapshot, computing the
// quantities the paper's objectives are defined over: the minimum effective
// CPU fraction, the minimum pairwise available bandwidth along static
// routes, the corresponding bandwidth fraction, and the balanced
// minresource. Score does not check floors or eligibility; it measures what
// the set actually gets.
func Score(s *topology.Snapshot, nodes []int, req Request) Result {
	res := Result{
		Nodes:          append([]int(nil), nodes...),
		MinCPU:         math.Inf(1),
		PairMinBW:      math.Inf(1),
		MinBWFactor:    math.Inf(1),
		BottleneckLink: -1,
	}
	sort.Ints(res.Nodes)
	for _, id := range res.Nodes {
		if cpu := s.EffectiveCPU(id); cpu < res.MinCPU {
			res.MinCPU = cpu
		}
	}
	// Pairwise bottleneck over static routes. For the fraction we take,
	// per link on each route, availbw divided by the reference capacity
	// (or the link's own capacity when no reference is set), and minimize.
	for i := 0; i < len(res.Nodes); i++ {
		for j := i + 1; j < len(res.Nodes); j++ {
			a, b := res.Nodes[i], res.Nodes[j]
			lat := 0.0
			s.Graph.WalkRoute(a, b, func(lid int) {
				bw := s.AvailBW[lid]
				if bw < res.PairMinBW {
					res.PairMinBW = bw
					res.BottleneckLink = lid
				}
				if f := linkFactor(s, lid, req); f < res.MinBWFactor {
					res.MinBWFactor = f
				}
				lat += s.Graph.Link(lid).Latency
			})
			if lat > res.MaxPairLatency {
				res.MaxPairLatency = lat
			}
		}
	}
	if len(res.Nodes) == 0 {
		res.MinCPU = 0
	}
	res.MinResource = math.Min(res.MinCPU, req.priority()*res.MinBWFactor)
	return res
}

// linkFactor returns the fractional availability of a link under the
// request's heterogeneity convention.
func linkFactor(s *topology.Snapshot, link int, req Request) float64 {
	if req.RefCapacity > 0 {
		return s.AvailBW[link] / req.RefCapacity
	}
	return s.BWFactor(link)
}

// topCPUNodes returns, from the candidate IDs, the m nodes with the highest
// effective CPU, preferring pinned nodes first (they are mandatory) and
// breaking CPU ties by lower node ID for determinism. It returns nil if the
// candidates cannot cover all pinned nodes or provide m nodes in total.
func topCPUNodes(s *topology.Snapshot, candidates []int, m int, pinned map[int]bool) []int {
	if len(candidates) < m {
		return nil
	}
	ordered := append([]int(nil), candidates...)
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		pa, pb := pinned[a], pinned[b]
		if pa != pb {
			return pa // pinned first
		}
		ca, cb := s.EffectiveCPU(a), s.EffectiveCPU(b)
		if ca != cb {
			return ca > cb
		}
		return a < b
	})
	havePinned := 0
	for _, id := range ordered {
		if pinned[id] {
			havePinned++
		}
	}
	if havePinned < len(pinned) {
		return nil
	}
	out := append([]int(nil), ordered[:m]...)
	sort.Ints(out)
	return out
}

// filterNodes returns the elements of a that pass keep, preserving order.
func filterNodes(a []int, keep func(int) bool) []int {
	var out []int
	for _, v := range a {
		if keep(v) {
			out = append(out, v)
		}
	}
	return out
}

// pairLatencyOK reports whether every pair of nodes meets the request's
// latency ceiling (always true when no ceiling is set).
func pairLatencyOK(s *topology.Snapshot, nodes []int, req Request) bool {
	if req.MaxPairLatency <= 0 {
		return true
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if s.Graph.PathLatency(nodes[i], nodes[j]) > req.MaxPairLatency {
				return false
			}
		}
	}
	return true
}

// candidatePools returns the node pools to try a top-CPU selection from.
// Without a latency ceiling the single pool is the candidate list itself.
// With a ceiling, the top-CPU nodes of a pool can violate it even when a
// feasible subset exists, so additional anchor pools are generated: for
// every candidate node v, the nodes within ceiling/2 of v. On tree
// topologies path latency is a metric, so any two members of such a ball
// are within the ceiling of each other; the exact pairwise check still
// runs afterwards, making the anchor pools a candidate generator rather
// than a correctness assumption (static routes on cyclic graphs need not
// satisfy the triangle inequality).
func candidatePools(s *topology.Snapshot, candidates []int, req Request) [][]int {
	pools := [][]int{candidates}
	if req.MaxPairLatency <= 0 {
		return pools
	}
	radius := req.MaxPairLatency / 2
	for _, v := range candidates {
		ball := filterNodes(candidates, func(u int) bool {
			return s.Graph.PathLatency(u, v) <= radius
		})
		if len(ball) >= req.M {
			pools = append(pools, ball)
		}
	}
	return pools
}

// containsAll reports whether sorted slice set contains every key of want.
func containsAll(set []int, want map[int]bool) bool {
	if len(want) == 0 {
		return true
	}
	found := 0
	for _, v := range set {
		if want[v] {
			found++
		}
	}
	return found == len(want)
}
