package core_test

import (
	"fmt"

	"nodeselect/internal/core"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// ExampleBalanced selects nodes on the paper's CMU testbed with one loaded
// machine and one congested access link.
func ExampleBalanced() {
	g := testbed.CMU()
	snap := topology.NewSnapshot(g)
	snap.SetLoadName("m-1", 2.0) // 33% CPU left
	// Congest m-2's access link to 10% availability.
	route := g.Route(g.MustNode("m-2"), g.MustNode("panama"))
	snap.SetAvailBW(route[0], 10e6)

	res, err := core.Balanced(snap, core.Request{M: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", res.Names(g))
	fmt.Printf("minresource: %.2f\n", res.MinResource)
	// Output:
	// nodes: [m-3 m-4 m-5 m-6]
	// minresource: 1.00
}

// ExampleMaxBandwidth shows the Figure 2 procedure preferring a clean
// cluster over a congested one.
func ExampleMaxBandwidth() {
	g := testbed.Dumbbell(3, testbed.Ethernet100, testbed.Ethernet100)
	snap := topology.NewSnapshot(g)
	// Congest every left-side access link.
	for _, name := range []string{"l-1", "l-2", "l-3"} {
		id := g.MustNode(name)
		snap.SetAvailBW(g.Incident(id)[0], 5e6)
	}
	res, err := core.MaxBandwidth(snap, core.Request{M: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("nodes:", res.Names(g))
	fmt.Println("bottleneck:", topology.FormatBandwidth(res.PairMinBW))
	// Output:
	// nodes: [r-1 r-2 r-3]
	// bottleneck: 100Mbps
}

// ExampleAdviseMigration evaluates whether a running job should move
// (§3.3 dynamic migration).
func ExampleAdviseMigration() {
	g := testbed.Star(6, testbed.Ethernet100)
	snap := topology.NewSnapshot(g)
	current := []int{g.MustNode("n-1"), g.MustNode("n-2")}
	// Competing load lands on the current nodes.
	snap.SetLoadName("n-1", 3)
	snap.SetLoadName("n-2", 3)

	adv, err := core.AdviseMigration(snap, current, core.Request{M: 2},
		core.MigrationPolicy{MinGain: 0.25})
	if err != nil {
		panic(err)
	}
	fmt.Println("move:", adv.Move)
	fmt.Println("to:", adv.Candidate.Names(g))
	// Output:
	// move: true
	// to: [n-3 n-4]
}

// ExampleChooseCount couples selection with a performance model to pick
// the node count as well as the node set (§3.4).
func ExampleChooseCount() {
	g := testbed.Star(8, testbed.Ethernet100)
	snap := topology.NewSnapshot(g)
	// Only four nodes are idle; the rest are heavily loaded.
	for i := 5; i <= 8; i++ {
		snap.SetLoadName(fmt.Sprintf("n-%d", i), 4)
	}
	// A fixed 40-second job that splits perfectly across nodes.
	model := core.PerfModelFunc(func(res core.Result) float64 {
		return 40 / float64(len(res.Nodes)) / res.MinCPU
	})
	res, err := core.ChooseCount(snap, core.Request{}, 2, 8, core.AlgoBalanced, model, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("m:", res.M)
	fmt.Printf("predicted: %.1fs\n", res.Predicted)
	// The model's optimum is the idle pool of four, not all eight nodes:
	// m=4 predicts 40/4/1.0 = 10 s, m=8 only 40/8/0.2 = 25 s.
	// Output:
	// m: 4
	// predicted: 10.0s
}
