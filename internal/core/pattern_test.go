package core

import (
	"math"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

func TestPatternString(t *testing.T) {
	if PatternAllToAll.String() != "all-to-all" ||
		PatternMasterSlave.String() != "master-slave" ||
		PatternPipeline.String() != "pipeline" {
		t.Fatal("pattern names wrong")
	}
	if Pattern(9).String() == "" {
		t.Fatal("unknown pattern should render")
	}
}

func TestScorePatternAllToAllMatchesScore(t *testing.T) {
	src := randx.New(21)
	s := randomTreeSnapshot(src, 8)
	nodes := []int{1, 3, 5}
	a := Score(s, nodes, Request{M: 3})
	b := ScorePattern(s, nodes, Request{M: 3}, PatternAllToAll)
	if a.MinResource != b.MinResource || a.PairMinBW != b.PairMinBW {
		t.Fatalf("all-to-all pattern diverges from Score: %v vs %v", a, b.Result)
	}
	if b.Master != -1 {
		t.Fatal("all-to-all should not assign a master")
	}
}

func TestScorePatternMasterSlavePinnedMaster(t *testing.T) {
	// On tree topologies every worker-to-worker path shares links with
	// the master paths, so the pattern scores often coincide; this test
	// verifies the role assignment and metric consistency.
	g := topology.NewGraph()
	m := g.AddComputeNode("master")
	swA := g.AddNetworkNode("swA")
	swB := g.AddNetworkNode("swB")
	w1 := g.AddComputeNode("w1")
	w2 := g.AddComputeNode("w2")
	g.Connect(m, swA, 100e6, topology.LinkOpts{})
	g.Connect(swA, w1, 100e6, topology.LinkOpts{})
	g.Connect(swA, swB, 100e6, topology.LinkOpts{})
	g.Connect(swB, w2, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	// The w1 <-> w2 path crosses swA-swB; master's paths to w1 and to w2
	// also cross... routes: m-w1 via swA (clean); m-w2 via swA, swA-swB,
	// swB-w2. Congest nothing: instead give w1's access link 50% and
	// check the pattern metrics differ from all-pair metrics by
	// construction of which pairs matter. Simplest discriminating case:
	// congest swA-swB, which is on m-w2 AND w1-w2 paths, then pin the
	// master and compare: not discriminating either. Use explicit pairs:
	s.SetAvailBW(2, 10e6) // swA-swB at 10%
	req := Request{M: 3, Pinned: []int{m}}
	all := ScorePattern(s, []int{m, w1, w2}, req, PatternAllToAll)
	ms := ScorePattern(s, []int{m, w1, w2}, req, PatternMasterSlave)
	// Both see the congested link (m-w2 crosses it), so bandwidth floors
	// agree here; the master assignment must be the pinned node.
	if ms.Master != m {
		t.Fatalf("master = %d, want pinned %d", ms.Master, m)
	}
	if ms.PairMinBW != all.PairMinBW {
		t.Fatalf("unexpected divergence: %v vs %v", ms.PairMinBW, all.PairMinBW)
	}
}

func TestBalancedPatternMasterSlavePrefersStarFriendlySet(t *testing.T) {
	// Two candidate worker pools:
	//   pool A: workers whose mutual links are congested but whose paths
	//           to the hub (and the master) are clean and whose CPUs are
	//           idle.
	//   pool B: workers with clean mutual paths but loaded CPUs.
	// All-pair balanced avoids pool A (bad worker-worker bandwidth);
	// master-slave selection should embrace it.
	g := topology.NewGraph()
	master := g.AddComputeNode("master")
	hubA := g.AddNetworkNode("hubA")
	hubB := g.AddNetworkNode("hubB")
	g.Connect(master, hubA, 100e6, topology.LinkOpts{})
	g.Connect(master, hubB, 100e6, topology.LinkOpts{})
	// Pool A: a1, a2 hang off hubA via a shared congested sub-switch for
	// their mutual path? On a tree, a1-a2 share hubA; both access links
	// serve master paths too. To decouple, give each A worker TWO hops:
	// a_i - subA_i - hubA, and congest nothing master-facing. Mutual
	// path a1-a2 = a1-subA1-hubA-subA2-a2: same links as master paths.
	// Trees cannot fully decouple master-worker from worker-worker
	// paths; what CAN differ is the endpoints' loads. So instead: pool A
	// idle but BEHIND a link that is mildly congested (factor 0.6), pool
	// B loaded at cpu 0.65 with clean links.
	a1 := g.AddComputeNode("a1")
	a2 := g.AddComputeNode("a2")
	la1 := g.Connect(hubA, a1, 100e6, topology.LinkOpts{})
	la2 := g.Connect(hubA, a2, 100e6, topology.LinkOpts{})
	b1 := g.AddComputeNode("b1")
	b2 := g.AddComputeNode("b2")
	g.Connect(hubB, b1, 100e6, topology.LinkOpts{})
	g.Connect(hubB, b2, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetAvailBW(la1, 60e6)
	s.SetAvailBW(la2, 60e6)
	s.SetLoadName("b1", 1.0/0.65-1) // cpu 0.65
	s.SetLoadName("b2", 1.0/0.65-1)

	req := Request{M: 3, Pinned: []int{master}}
	// All-pair balanced: pool A scores min(1.0, 0.6) = 0.6; pool B
	// scores min(0.65, 1.0) = 0.65 -> picks B.
	all, err := Balanced(s, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(all.Nodes, []int{master, b1, b2}) {
		t.Fatalf("all-pair balanced chose %v, want pool B", all.Nodes)
	}
	// Master-slave: same pair sets on this topology (both worker paths
	// to master cross the 0.6 links for pool A) — so it also picks B.
	// The discriminating case needs the congestion on a link that only
	// the worker-worker path uses, which a tree cannot provide from a
	// shared hub; verify instead that the algorithm returns a valid
	// placement with the pinned master and consistent metrics.
	ms, err := BalancedPattern(s, req, PatternMasterSlave)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Master != master {
		t.Fatalf("master = %v, want %v", ms.Master, master)
	}
	if ms.MinResource+1e-9 < all.MinResource {
		t.Fatalf("pattern-aware (%v) worse than pattern-blind (%v)", ms.MinResource, all.MinResource)
	}
}

func TestBalancedPatternMasterSlaveCyclicAdvantage(t *testing.T) {
	// With a cycle, worker-worker traffic can take a path the
	// master-worker traffic does not use: a triangle of switches. The
	// static route w1 -> w2 goes over the congested direct switch link,
	// while master paths avoid it. Master-slave selection must accept
	// the set all-pair selection penalizes.
	g := topology.NewGraph()
	s0 := g.AddNetworkNode("s0") // master's switch
	s1 := g.AddNetworkNode("s1")
	s2 := g.AddNetworkNode("s2")
	master := g.AddComputeNode("master")
	w1 := g.AddComputeNode("w1")
	w2 := g.AddComputeNode("w2")
	alt1 := g.AddComputeNode("alt1")
	alt2 := g.AddComputeNode("alt2")
	g.Connect(s0, master, 100e6, topology.LinkOpts{})
	g.Connect(s0, s1, 100e6, topology.LinkOpts{})
	g.Connect(s0, s2, 100e6, topology.LinkOpts{})
	l12 := g.Connect(s1, s2, 100e6, topology.LinkOpts{}) // direct worker shortcut
	g.Connect(s1, w1, 100e6, topology.LinkOpts{})
	g.Connect(s2, w2, 100e6, topology.LinkOpts{})
	// Alternative pool on s0 with loaded CPUs.
	g.Connect(s0, alt1, 100e6, topology.LinkOpts{})
	g.Connect(s0, alt2, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetAvailBW(l12, 5e6) // the shortcut is congested
	s.SetLoadName("alt1", 1)
	s.SetLoadName("alt2", 1) // cpu 0.5

	req := Request{M: 3, Pinned: []int{master}}
	// w1-w2's static route crosses the congested shortcut (s1-s2 direct
	// is the shorter path), so the all-pair objective rates the idle
	// worker set at only 0.05. (The sweep's component enumeration keeps
	// proposing the idle workers — on a cyclic graph, deleting the
	// congested edge does not disconnect them — so pattern-blind
	// selection is stuck with that poor score; alt1/alt2 are never its
	// top-CPU candidates. This is the static-routing-on-cycles
	// limitation of §3.3.)
	all, err := Balanced(s, req)
	if err != nil {
		t.Fatal(err)
	}
	_ = alt1
	_ = alt2
	if all.MinResource > 0.5+1e-9 {
		t.Fatalf("all-pair minresource = %v; the shortcut congestion should cap it", all.MinResource)
	}
	// Master-slave ignores w1-w2: {master, w1, w2} scores 1.0.
	ms, err := BalancedPattern(s, req, PatternMasterSlave)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(ms.Nodes, []int{master, w1, w2}) {
		t.Fatalf("master-slave chose %v, want {master, w1, w2}", ms.Nodes)
	}
	if math.Abs(ms.MinResource-1.0) > 1e-9 {
		t.Fatalf("master-slave minresource = %v, want 1.0", ms.MinResource)
	}
}

func TestBalancedPatternNeverBelowBruteForceMuch(t *testing.T) {
	for seed := int64(300); seed < 330; seed++ {
		src := randx.New(seed)
		n := 4 + src.Intn(6)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		req := Request{M: m}
		for _, pattern := range []Pattern{PatternMasterSlave, PatternPipeline} {
			greedy, err := BalancedPattern(s, req, pattern)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			opt, err := BruteForcePattern(s, req, pattern)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if greedy.MinResource > opt.MinResource+1e-9 {
				t.Fatalf("seed %d %v: greedy %v exceeds brute force %v",
					seed, pattern, greedy.MinResource, opt.MinResource)
			}
			if greedy.MinResource < 0.55*opt.MinResource {
				t.Errorf("seed %d %v: greedy %v far below optimum %v",
					seed, pattern, greedy.MinResource, opt.MinResource)
			}
		}
	}
}

func TestPipelineOrderAndScoring(t *testing.T) {
	// Chain topology: the pipeline order should follow the chain so only
	// consecutive links matter.
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetAvailBW(0, 90e6)
	s.SetAvailBW(1, 80e6)
	s.SetAvailBW(2, 70e6)
	res := ScorePattern(s, []int{0, 1, 2, 3}, Request{M: 4}, PatternPipeline)
	if len(res.Order) != 4 {
		t.Fatalf("order = %v", res.Order)
	}
	// A chain order visits each physical link once: bottleneck 70e6.
	if res.PairMinBW != 70e6 {
		t.Fatalf("pipeline bottleneck = %v, want 70e6", res.PairMinBW)
	}
	// All-pair scoring would give the same bottleneck here, but the
	// pipeline order must be the physical chain (or its reverse).
	first, last := res.Order[0], res.Order[3]
	if !((first == 0 && last == 3) || (first == 3 && last == 0)) {
		t.Fatalf("chain order = %v, want endpoints 0 and 3", res.Order)
	}
}

func TestChainOrderTwoNodes(t *testing.T) {
	g := chain(2)
	s := topology.NewSnapshot(g)
	res := ScorePattern(s, []int{0, 1}, Request{M: 2}, PatternPipeline)
	if len(res.Order) != 2 {
		t.Fatalf("order = %v", res.Order)
	}
}

func TestBalancedPatternErrors(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	if _, err := BalancedPattern(s, Request{M: 9}, PatternMasterSlave); err == nil {
		t.Error("oversized request accepted")
	}
	if _, err := BruteForcePattern(s, Request{M: 9}, PatternMasterSlave); err == nil {
		t.Error("oversized brute force accepted")
	}
}

func TestBalancedPatternAllToAllDelegates(t *testing.T) {
	src := randx.New(77)
	s := randomTreeSnapshot(src, 7)
	req := Request{M: 3}
	a, err := BalancedPattern(s, req, PatternAllToAll)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Balanced(s, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(a.Nodes, b.Nodes) {
		t.Fatalf("all-to-all pattern diverged from Balanced: %v vs %v", a.Nodes, b.Nodes)
	}
}
