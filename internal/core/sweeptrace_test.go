package core

import (
	"strings"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

func TestBalancedTraceMatchesBalanced(t *testing.T) {
	for seed := int64(500); seed < 530; seed++ {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		req := Request{M: m}
		plain, err1 := Balanced(s, req)
		traced, steps, err2 := BalancedTrace(s, req)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: %v / %v", seed, err1, err2)
		}
		if !equalSets(plain.Nodes, traced.Nodes) || plain.MinResource != traced.MinResource {
			t.Fatalf("seed %d: traced result diverged: %v vs %v", seed, plain, traced)
		}
		if len(steps) == 0 {
			t.Fatalf("seed %d: no steps recorded", seed)
		}
	}
}

func TestBalancedTraceStructure(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetAvailBW(0, 20e6)
	s.SetAvailBW(1, 80e6)
	s.SetAvailBW(2, 60e6)
	res, steps, err := BalancedTrace(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rounds: initial + one per distinct factor tier (0.2, 0.6, 0.8).
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(steps))
	}
	if steps[0].Round != 0 || len(steps[0].RemovedLinks) != 0 {
		t.Fatal("round 0 malformed")
	}
	if steps[1].Threshold != 0.2 || steps[1].RemovedLinks[0] != 0 {
		t.Fatalf("round 1 = %+v", steps[1])
	}
	// The first improvement happens at round 0; the winning pair [1 2]
	// appears once link 0 (factor 0.2) is gone at the latest.
	if !steps[0].Improved {
		t.Fatal("round 0 should establish a best")
	}
	if !equalSets(res.Nodes, []int{1, 2}) {
		t.Fatalf("result %v", res.Nodes)
	}
	out := FormatSweepTrace(g, steps)
	for _, want := range []string{"round 0", "new best", "score"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, out)
		}
	}
}

func TestBalancedTraceErrors(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	if _, _, err := BalancedTrace(s, Request{M: 9}); err == nil {
		t.Fatal("oversized request accepted")
	}
	// Infeasible floor: steps still returned for diagnosis.
	s.SetAvailBW(0, 1e6)
	s.SetAvailBW(1, 1e6)
	_, steps, err := BalancedTrace(s, Request{M: 2, MinBW: 50e6})
	if err == nil {
		t.Fatal("infeasible floor accepted")
	}
	if len(steps) == 0 {
		t.Fatal("steps missing on infeasible request")
	}
}
