//go:build refsweep

package core

// forceReferenceSweep routes every sweep through the literal edge-deletion
// loop when the refsweep build tag is set. See sweep_fast.go for the
// default.
const forceReferenceSweep = true
