package core

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// chain builds a path of n compute nodes with 100 Mbps links.
func chain(n int) *topology.Graph {
	g := topology.NewGraph()
	for i := 0; i < n; i++ {
		g.AddComputeNode(nodeName(i))
	}
	for i := 0; i+1 < n; i++ {
		g.Connect(i, i+1, 100e6, topology.LinkOpts{})
	}
	return g
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// twoClusters builds the canonical motivating shape: two clusters of size k
// hanging off two switches joined by a backbone link.
//
//	c0..c(k-1) - swA === swB - ck..c(2k-1)
func twoClusters(k int, backboneBW float64) *topology.Graph {
	g := topology.NewGraph()
	swA := g.AddNetworkNode("swA")
	swB := g.AddNetworkNode("swB")
	for i := 0; i < k; i++ {
		id := g.AddComputeNode(nodeName(i))
		g.Connect(swA, id, 100e6, topology.LinkOpts{})
	}
	for i := k; i < 2*k; i++ {
		id := g.AddComputeNode(nodeName(i))
		g.Connect(swB, id, 100e6, topology.LinkOpts{})
	}
	g.Connect(swA, swB, backboneBW, topology.LinkOpts{})
	return g
}

// randomTree builds a random tree over n compute nodes with randomized link
// capacities, loads and utilizations, returning the snapshot.
func randomTreeSnapshot(src *randx.Source, n int) *topology.Snapshot {
	g := topology.NewGraph()
	for i := 0; i < n; i++ {
		g.AddComputeNode(nodeName(i))
	}
	for i := 1; i < n; i++ {
		g.Connect(src.Intn(i), i, 100e6, topology.LinkOpts{})
	}
	s := topology.NewSnapshot(g)
	for i := 0; i < n; i++ {
		s.SetLoad(i, src.Float64()*4)
	}
	for l := 0; l < g.NumLinks(); l++ {
		s.SetAvailBW(l, src.Float64()*100e6)
	}
	return s
}

func sorted(a []int) []int {
	b := append([]int(nil), a...)
	sort.Ints(b)
	return b
}

func equalSets(a, b []int) bool {
	a, b = sorted(a), sorted(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaxComputePicksLeastLoaded(t *testing.T) {
	g := chain(6)
	s := topology.NewSnapshot(g)
	loads := []float64{3, 0.5, 2, 0.1, 4, 1}
	for i, l := range loads {
		s.SetLoad(i, l)
	}
	res, err := MaxCompute(s, Request{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Least loaded three: nodes 3 (0.1), 1 (0.5), 5 (1).
	if !equalSets(res.Nodes, []int{1, 3, 5}) {
		t.Fatalf("MaxCompute chose %v, want [1 3 5]", res.Nodes)
	}
	wantMinCPU := 1.0 / (1 + 1.0)
	if math.Abs(res.MinCPU-wantMinCPU) > 1e-12 {
		t.Errorf("MinCPU = %v, want %v", res.MinCPU, wantMinCPU)
	}
}

func TestMaxComputeDeterministicTieBreak(t *testing.T) {
	g := chain(5)
	s := topology.NewSnapshot(g) // all idle: tie on CPU
	res, err := MaxCompute(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{0, 1}) {
		t.Fatalf("tie-break should pick lowest IDs, got %v", res.Nodes)
	}
}

func TestMaxComputeErrors(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	if _, err := MaxCompute(s, Request{M: 4}); !errors.Is(err, ErrTooFewNodes) {
		t.Errorf("M > nodes: err = %v, want ErrTooFewNodes", err)
	}
	if _, err := MaxCompute(s, Request{M: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("M = 0: err = %v, want ErrBadRequest", err)
	}
	if _, err := MaxCompute(nil, Request{M: 1}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("nil snapshot: err = %v, want ErrBadRequest", err)
	}
}

func TestMaxBandwidthAvoidsCongestedCluster(t *testing.T) {
	// Two clusters of 4; cluster B's access links are congested.
	g := twoClusters(4, 100e6)
	s := topology.NewSnapshot(g)
	// Congest every access link of cluster B (links incident to swB,
	// excluding the backbone to swA).
	for l := 0; l < g.NumLinks(); l++ {
		link := g.Link(l)
		aName := g.Node(link.A).Name
		bName := g.Node(link.B).Name
		if aName == "swB" || bName == "swB" {
			if aName != "swA" && bName != "swA" {
				s.SetAvailBW(l, 10e6)
			}
		}
	}
	res, err := MaxBandwidth(s, Request{M: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Must choose the four cluster-A nodes (IDs 2..5: swA=0, swB=1).
	want := []int{2, 3, 4, 5}
	if !equalSets(res.Nodes, want) {
		t.Fatalf("MaxBandwidth chose %v, want cluster A %v", res.Nodes, want)
	}
	if res.PairMinBW != 100e6 {
		t.Errorf("PairMinBW = %v, want 100e6", res.PairMinBW)
	}
}

func TestMaxBandwidthCrossClusterWhenForced(t *testing.T) {
	// Only 2 nodes per cluster but 3 required: the backbone becomes the
	// bottleneck and must be reported as such.
	g := twoClusters(2, 40e6)
	s := topology.NewSnapshot(g)
	res, err := MaxBandwidth(s, Request{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairMinBW != 40e6 {
		t.Errorf("PairMinBW = %v, want backbone 40e6", res.PairMinBW)
	}
}

func TestMaxBandwidthSingleNode(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	res, err := MaxBandwidth(s, Request{M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 1 {
		t.Fatalf("selected %v, want one node", res.Nodes)
	}
	if !math.IsInf(res.PairMinBW, 1) {
		t.Errorf("single-node PairMinBW = %v, want +Inf", res.PairMinBW)
	}
}

func TestMaxBandwidthMatchesBruteForceOnTrees(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		req := Request{M: m}
		greedy, err := MaxBandwidth(s, req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := BruteForce(s, req, ObjectiveBandwidth)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(greedy.PairMinBW-opt.PairMinBW) > 1e-6 {
			t.Errorf("seed %d (n=%d, m=%d): greedy bw %v != optimal %v",
				seed, n, m, greedy.PairMinBW, opt.PairMinBW)
		}
	}
}

func TestBalancedMatchesBruteForceOnTrees(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		req := Request{M: m}
		greedy, err := Balanced(s, req)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt, err := BruteForce(s, req, ObjectiveBalanced)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if greedy.MinResource < opt.MinResource-1e-9 {
			t.Errorf("seed %d (n=%d, m=%d): balanced sweep %v < optimal %v",
				seed, n, m, greedy.MinResource, opt.MinResource)
		}
	}
}

func TestBalancedTradesComputeForBandwidth(t *testing.T) {
	// Cluster A nodes are idle but its internal links are congested;
	// cluster B nodes are moderately loaded with clean links. The pure
	// compute algorithm picks A; balanced must prefer B.
	g := twoClusters(3, 100e6)
	s := topology.NewSnapshot(g)
	// Cluster A compute IDs 2,3,4; B: 5,6,7.
	for l := 0; l < g.NumLinks(); l++ {
		link := g.Link(l)
		if g.Node(link.A).Name == "swA" || g.Node(link.B).Name == "swA" {
			if g.Node(link.A).Name != "swB" && g.Node(link.B).Name != "swB" {
				s.SetAvailBW(l, 5e6) // 5% available within cluster A
			}
		}
	}
	for i := 5; i <= 7; i++ {
		s.SetLoad(i, 1) // 50% CPU in cluster B
	}
	creq := Request{M: 3}
	comp, err := MaxCompute(s, creq)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(comp.Nodes, []int{2, 3, 4}) {
		t.Fatalf("MaxCompute should pick idle cluster A, got %v", comp.Nodes)
	}
	bal, err := Balanced(s, creq)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(bal.Nodes, []int{5, 6, 7}) {
		t.Fatalf("Balanced should pick cluster B, got %v", bal.Nodes)
	}
	if math.Abs(bal.MinResource-0.5) > 1e-9 {
		t.Errorf("Balanced minresource = %v, want 0.5", bal.MinResource)
	}
}

func TestBalancedPaperEarlyStopCanBeWorse(t *testing.T) {
	// Regression of the premature-stop analysis: two branches where the
	// first removal round improves nothing, but later rounds reach a much
	// better set. The default sweep must find it; the literal paper
	// variant (single-edge removal + early stop) may not — assert only
	// that the sweep dominates.
	g := topology.NewGraph()
	hub := g.AddNetworkNode("hub")
	// Branch X: excellent bandwidth, idle nodes.
	x1 := g.AddComputeNode("x1")
	x2 := g.AddComputeNode("x2")
	lx1 := g.Connect(hub, x1, 100e6, topology.LinkOpts{})
	lx2 := g.Connect(hub, x2, 100e6, topology.LinkOpts{})
	// Branch Y: terrible bandwidth, idle nodes.
	y1 := g.AddComputeNode("y1")
	y2 := g.AddComputeNode("y2")
	ly1 := g.Connect(hub, y1, 100e6, topology.LinkOpts{})
	ly2 := g.Connect(hub, y2, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetAvailBW(lx1, 90e6)
	s.SetAvailBW(lx2, 90e6)
	s.SetAvailBW(ly1, 10e6)
	s.SetAvailBW(ly2, 11e6)
	req := Request{M: 2}

	sweep, err := Balanced(s, req)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(sweep.Nodes, []int{x1, x2}) {
		t.Fatalf("sweep chose %v, want branch X", sweep.Nodes)
	}
	paper, err := BalancedOpt(s, req, Options{PaperEarlyStop: true, PaperSingleEdgeRemoval: true})
	if err != nil {
		t.Fatal(err)
	}
	if paper.MinResource > sweep.MinResource+1e-12 {
		t.Fatalf("paper variant (%v) beat the sweep (%v)", paper.MinResource, sweep.MinResource)
	}
}

func TestBalancedReportsActualPairwiseScore(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetAvailBW(0, 20e6)
	s.SetAvailBW(1, 80e6)
	s.SetAvailBW(2, 60e6)
	res, err := Balanced(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Best pair is nodes 1-2 over link 1 (80% available, idle CPUs).
	if !equalSets(res.Nodes, []int{1, 2}) {
		t.Fatalf("chose %v, want [1 2]", res.Nodes)
	}
	if math.Abs(res.MinBWFactor-0.8) > 1e-12 {
		t.Errorf("MinBWFactor = %v, want 0.8", res.MinBWFactor)
	}
	if math.Abs(res.MinResource-0.8) > 1e-12 {
		t.Errorf("MinResource = %v, want 0.8", res.MinResource)
	}
}

func TestScoreAgainstKnownValues(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 1) // cpu 0.5
	s.SetLoad(2, 3) // cpu 0.25
	s.SetAvailBW(0, 30e6)
	s.SetAvailBW(1, 70e6)
	res := Score(s, []int{0, 2}, Request{M: 2})
	if math.Abs(res.MinCPU-0.25) > 1e-12 {
		t.Errorf("MinCPU = %v, want 0.25", res.MinCPU)
	}
	if res.PairMinBW != 30e6 {
		t.Errorf("PairMinBW = %v, want 30e6", res.PairMinBW)
	}
	if math.Abs(res.MinBWFactor-0.3) > 1e-12 {
		t.Errorf("MinBWFactor = %v, want 0.3", res.MinBWFactor)
	}
	if math.Abs(res.MinResource-0.25) > 1e-12 {
		t.Errorf("MinResource = %v, want 0.25 (cpu-limited)", res.MinResource)
	}
}

func TestRandomSelection(t *testing.T) {
	g := chain(10)
	s := topology.NewSnapshot(g)
	src := randx.New(7)
	seen := map[int]bool{}
	for i := 0; i < 50; i++ {
		res, err := Random(s, Request{M: 3}, src)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Nodes) != 3 {
			t.Fatalf("random selected %d nodes", len(res.Nodes))
		}
		for _, id := range res.Nodes {
			seen[id] = true
		}
	}
	if len(seen) < 8 {
		t.Errorf("random selection covered only %d/10 nodes over 50 draws", len(seen))
	}
}

func TestRandomHonoursPinned(t *testing.T) {
	g := chain(6)
	s := topology.NewSnapshot(g)
	src := randx.New(8)
	for i := 0; i < 20; i++ {
		res, err := Random(s, Request{M: 3, Pinned: []int{4}}, src)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, id := range res.Nodes {
			if id == 4 {
				found = true
			}
		}
		if !found {
			t.Fatal("random selection dropped a pinned node")
		}
	}
}

func TestRandomIgnoresFloors(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	for i := 0; i < 4; i++ {
		s.SetLoad(i, 10) // every node violates a 0.5 CPU floor
	}
	if _, err := Random(s, Request{M: 2, MinCPU: 0.5}, randx.New(1)); err != nil {
		t.Fatalf("random selection should ignore floors, got %v", err)
	}
}

func TestStaticSelection(t *testing.T) {
	g := twoClusters(3, 100e6)
	s := topology.NewSnapshot(g)
	// Congest cluster A heavily; static selection cannot see it.
	for l := 0; l < g.NumLinks(); l++ {
		link := g.Link(l)
		if g.Node(link.A).Name == "swA" || g.Node(link.B).Name == "swA" {
			s.SetAvailBW(l, 1e6)
		}
	}
	res, err := Static(s, Request{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Static must return the same set it would on an idle network...
	idle, err := Balanced(topology.NewSnapshot(g), Request{M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, idle.Nodes) {
		t.Fatalf("static chose %v, idle-balanced chose %v", res.Nodes, idle.Nodes)
	}
	// ...but its score must reflect actual conditions.
	actual := Score(s, res.Nodes, Request{M: 3})
	if res.MinResource != actual.MinResource {
		t.Errorf("static reported idealized score %v, want actual %v",
			res.MinResource, actual.MinResource)
	}
}

func TestSelectDispatcher(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	src := randx.New(3)
	for _, algo := range Algorithms() {
		res, err := Select(algo, s, Request{M: 2}, src)
		if err != nil {
			t.Errorf("Select(%q) failed: %v", algo, err)
			continue
		}
		if len(res.Nodes) != 2 {
			t.Errorf("Select(%q) returned %d nodes", algo, len(res.Nodes))
		}
	}
	if _, err := Select("nope", s, Request{M: 2}, src); !errors.Is(err, ErrBadRequest) {
		t.Errorf("unknown algorithm: err = %v", err)
	}
	if _, err := Select(AlgoRandom, s, Request{M: 2}, nil); !errors.Is(err, ErrBadRequest) {
		t.Errorf("random without source: err = %v", err)
	}
}

// Property: on arbitrary random trees, every algorithm returns exactly M
// distinct compute nodes and a score consistent with Score().
func TestQuickSelectionWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 2 + src.Intn(10)
		s := randomTreeSnapshot(src, n)
		m := 1 + src.Intn(n)
		req := Request{M: m}
		for _, algo := range []string{AlgoCompute, AlgoBandwidth, AlgoBalanced} {
			res, err := Select(algo, s, req, nil)
			if err != nil {
				return false
			}
			if len(res.Nodes) != m {
				return false
			}
			seen := map[int]bool{}
			for _, id := range res.Nodes {
				if seen[id] || s.Graph.Node(id).Kind != topology.Compute {
					return false
				}
				seen[id] = true
			}
			check := Score(s, res.Nodes, req)
			if math.Abs(check.MinResource-res.MinResource) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: the balanced sweep never does worse than the literal paper
// variant, and MaxCompute's MinCPU upper-bounds every algorithm's MinCPU.
func TestQuickDominanceRelations(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(10)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		req := Request{M: m}
		sweep, err1 := Balanced(s, req)
		paper, err2 := BalancedOpt(s, req, Options{PaperEarlyStop: true, PaperSingleEdgeRemoval: true})
		comp, err3 := MaxCompute(s, req)
		bw, err4 := MaxBandwidth(s, req)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if sweep.MinResource < paper.MinResource-1e-9 {
			return false
		}
		if comp.MinCPU < sweep.MinCPU-1e-9 && comp.MinCPU < bw.MinCPU-1e-9 {
			// MaxCompute maximizes MinCPU; no algorithm may beat it.
			if sweep.MinCPU > comp.MinCPU+1e-9 || bw.MinCPU > comp.MinCPU+1e-9 {
				return false
			}
		}
		if bw.PairMinBW < sweep.PairMinBW-1e-6 {
			// MaxBandwidth maximizes pairwise bandwidth.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBalancedTree50(b *testing.B)  { benchBalanced(b, 50) }
func BenchmarkBalancedTree200(b *testing.B) { benchBalanced(b, 200) }

func benchBalanced(b *testing.B, n int) {
	src := randx.New(1)
	s := randomTreeSnapshot(src, n)
	req := Request{M: n / 4}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Balanced(s, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxBandwidthTree200(b *testing.B) {
	src := randx.New(2)
	s := randomTreeSnapshot(src, 200)
	req := Request{M: 16}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MaxBandwidth(s, req); err != nil {
			b.Fatal(err)
		}
	}
}
