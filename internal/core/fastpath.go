package core

import (
	"fmt"
	"math"
	"sort"

	"nodeselect/internal/topology"
)

// sweepComp is one member of the laminar component family the fast sweep
// discovers: a component of the graph restricted to edges above some metric
// threshold, alive over the reference rounds [birth, death], that yielded
// at least one candidate node set. birth stays 0 for the never-absorbed
// final roots; death is k for the initial singletons.
type sweepComp struct {
	birth, death int
	minID        int
	score        float64
	res          Result
	cands        []SweepCandidate // retained only for the observer replay
}

// sweepTier is one group of equal-metric links in the removal order.
// Reference round j (1..k) is the graph with tiers 1..j removed; round 0 is
// the full alive graph, round k the edgeless one.
type sweepTier struct {
	value float64
	links []int // ascending (metric, id): a sub-slice of the removal order
}

// fastSweepSelect is the union-find reformulation of the Figure 2/3
// bottleneck sweep. Instead of deleting edges in ascending metric order and
// recomputing connected components after every round — O(E·(V+E)) — it adds
// the same edges in *descending* order to a disjoint-set forest (the classic
// Kruskal maximum-bottleneck construction). Every component the deletion
// loop ever evaluates appears exactly once as a merge state of the forest,
// so each member of that laminar family is scored a single time, with the
// pure pool evaluation additionally memoized by node set.
//
// Equivalence with referenceSweepSelect is exact, not approximate. The
// reference's winner is the first candidate, in (round ascending, component
// min-node-ID ascending, pool order) stream order, to strictly exceed the
// running best — i.e. the earliest-seen candidate achieving the global
// maximum score. A component alive in reference rounds [birth, death] shows
// the same candidates with the same scores at every one of those rounds, so
// the earliest appearance of a component's best candidate is its birth
// round. The fast path therefore keeps, per family component, the first
// in-pool-order candidate achieving the component maximum, and picks the
// overall winner by (score descending, birth ascending, min node ID
// ascending). Two distinct components with equal birth coexist at that
// round and are disjoint, hence have distinct min node IDs; nested
// components have distinct births — the order is total, and it reproduces
// the reference stream order exactly. TestFastPathEquivalence and
// FuzzSweepEquivalence hold the two implementations to that contract.
//
// When an Observer is installed the per-component candidate streams are
// retained and the reference's SweepStep sequence is replayed verbatim from
// the alive intervals, so decision audit traces are bit-identical too.
func fastSweepSelect(s *topology.Snapshot, req Request, opts Options, balanced bool) (Result, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return Result{}, err
	}
	g := s.Graph
	pinned := req.pinnedSet()
	isEligible := make([]bool, g.NumNodes())
	for _, id := range eligible {
		isEligible[id] = true
	}
	priority := req.priority()

	metricOf := make([]float64, g.NumLinks())
	for l := range metricOf {
		if balanced {
			metricOf[l] = linkFactor(s, l, req)
		} else {
			metricOf[l] = s.AvailBW[l]
		}
	}
	order := g.OrderLinks(func(l int) bool { return req.linkUsable(s, l) },
		func(l int) float64 { return metricOf[l] })

	var tiers []sweepTier
	for i := 0; i < len(order); {
		j := i
		v := metricOf[order[i]]
		for j < len(order) && metricOf[order[j]] == v {
			j++
		}
		tiers = append(tiers, sweepTier{value: v, links: order[i:j]})
		i = j
	}
	k := len(tiers)

	var recs []sweepComp

	u := topology.NewUnionFind(g.NumNodes())
	eligCnt := make([]int, g.NumNodes())
	pinCnt := make([]int, g.NumNodes())
	for id := 0; id < g.NumNodes(); id++ {
		if isEligible[id] {
			eligCnt[id] = 1
		}
		if pinned[id] {
			pinCnt[id] = 1
		}
	}

	// cur[root] is the index in recs of the record describing root's current
	// component state, or -1. Intermediate states formed mid-tier are never
	// recorded — they are not components of any reference round.
	cur := make([]int, g.NumNodes())
	for i := range cur {
		cur[i] = -1
	}

	memo := make(map[string]poolEval)
	candBuf := make([]int, 0, g.NumNodes())

	// evaluate scores root's component as of reference round death and, if
	// it yields any candidate, appends a record. The candidate stream is
	// identical to the reference's for this component: eligible members in
	// ascending ID order through the shared poolCandidates helper.
	evaluate := func(root, death int) {
		if pinCnt[root] != len(pinned) || eligCnt[root] < req.M {
			return // reference skips (containsAll) or every pool comes up short
		}
		candBuf = candBuf[:0]
		for _, id := range u.Members(root) {
			if isEligible[id] {
				candBuf = append(candBuf, id)
			}
		}
		sort.Ints(candBuf)
		rec := sweepComp{death: death, minID: u.MinID(root), score: math.Inf(-1)}
		found := false
		poolCandidates(s, candBuf, req, pinned, balanced, priority, memo,
			func(nodes []int, score float64, res Result) {
				if opts.Observer != nil {
					rec.cands = append(rec.cands, SweepCandidate{Nodes: nodes, Score: score})
				}
				if !found || score > rec.score {
					rec.score, rec.res, found = score, res, true
				}
			})
		if found {
			recs = append(recs, rec)
			cur[root] = len(recs) - 1
		}
	}

	// Round k: every node is its own component.
	for id := 0; id < g.NumNodes(); id++ {
		evaluate(id, k)
	}

	// Add tiers back in descending metric order. After absorbing tier t the
	// forest matches reference round t-1.
	dirtyMark := make([]int, g.NumNodes())
	for i := range dirtyMark {
		dirtyMark[i] = -1
	}
	var dirty []int
	for t := k; t >= 1; t-- {
		dirty = dirty[:0]
		for _, l := range tiers[t-1].links {
			lk := g.Link(l)
			winner, loser := u.Union(lk.A, lk.B)
			if loser < 0 {
				continue // cycle edge: component unchanged
			}
			// Both pre-merge states die entering round t-1; they were last
			// alive at round t.
			for _, r := range [2]int{winner, loser} {
				if cur[r] >= 0 {
					recs[cur[r]].birth = t
					cur[r] = -1
				}
			}
			eligCnt[winner] += eligCnt[loser]
			pinCnt[winner] += pinCnt[loser]
			if dirtyMark[winner] != t {
				dirtyMark[winner] = t
				dirty = append(dirty, winner)
			}
		}
		for _, r := range dirty {
			if u.Find(r) != r {
				continue // absorbed by a later merge within the same tier
			}
			evaluate(r, t-1)
		}
	}

	if opts.Observer != nil {
		replaySweep(opts.Observer, recs, tiers)
	}

	// The winner: maximum score, earliest birth round, smallest component
	// min node ID — the reference's first-strict-improvement order.
	best := -1
	for i := range recs {
		r := &recs[i]
		if best < 0 {
			best = i
			continue
		}
		b := &recs[best]
		if r.score > b.score ||
			(r.score == b.score && (r.birth < b.birth ||
				(r.birth == b.birth && r.minID < b.minID))) {
			best = i
		}
	}
	if best < 0 {
		return Result{}, fmt.Errorf("%w: no component provides %d connected eligible compute nodes",
			ErrNoFeasibleSet, req.M)
	}
	return recs[best].res, nil
}

// replaySweep reconstructs the reference implementation's SweepStep
// sequence from the recorded component family. For each round 0..k the
// components alive at that round contribute their candidate streams in
// ascending min-node-ID order (the Components traversal order of the
// reference), and the Improved flag is recovered by replaying the running
// global best over the concatenated stream.
func replaySweep(observer func(SweepStep), recs []sweepComp, tiers []sweepTier) {
	byMinID := make([]*sweepComp, len(recs))
	for i := range recs {
		byMinID[i] = &recs[i]
	}
	sort.Slice(byMinID, func(i, j int) bool { return byMinID[i].minID < byMinID[j].minID })

	runningBest := math.Inf(-1)
	found := false
	for round := 0; round <= len(tiers); round++ {
		step := SweepStep{Round: round}
		if round > 0 {
			tr := tiers[round-1]
			step.Threshold = tr.value
			step.RemovedLinks = make([]int, len(tr.links))
			copy(step.RemovedLinks, tr.links)
		}
		for _, rec := range byMinID {
			if rec.birth > round || round > rec.death {
				continue
			}
			for _, c := range rec.cands {
				step.Candidates = append(step.Candidates, c)
				if !found || c.Score > runningBest {
					runningBest = c.Score
					found = true
					step.Improved = true
				}
			}
		}
		observer(step)
	}
}
