package core

import (
	"reflect"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// TestSelectDeterministic pins decision-path determinism for the
// deterministic algorithms: candidate enumeration builds per-component
// membership maps along the way, and none of that bookkeeping may leak
// into the answer. Every algorithm, with and without the constrained
// (bandwidth-floor) path that walks components explicitly, must return
// deeply identical results across repeated runs on the same snapshot.
func TestSelectDeterministic(t *testing.T) {
	g := testbed.MultiCluster(4, 7, testbed.Ethernet100, 1e9)
	snap := topology.NewSnapshot(g)
	rng := randx.New(99).Split("determinism")
	for _, id := range g.ComputeNodes() {
		snap.SetLoad(id, rng.Uniform(0, 2))
	}
	for _, l := range g.Links() {
		snap.SetAvailBW(l.ID, rng.Uniform(0.2, 1)*l.Capacity)
	}

	reqs := []Request{
		{M: 5},
		{M: 5, MinBW: 30e6}, // constrained: walks components via maps
		{M: 3, MinCPU: 0.3, ComputePriority: 2},
		{M: 4, Pinned: []int{g.MustNode("c2-n3")}},
	}
	for _, algo := range []string{AlgoCompute, AlgoBandwidth, AlgoBalanced, AlgoStatic} {
		for _, req := range reqs {
			first, ferr := Select(algo, snap, req, nil)
			for i := 0; i < 20; i++ {
				got, err := Select(algo, snap, req, nil)
				if (err == nil) != (ferr == nil) || (err != nil && err.Error() != ferr.Error()) {
					t.Fatalf("%s/%+v: run %d error %v, first run %v", algo, req, i, err, ferr)
				}
				if !reflect.DeepEqual(got, first) {
					t.Fatalf("%s/%+v: run %d returned %+v, first run %+v", algo, req, i, got, first)
				}
			}
		}
	}
}
