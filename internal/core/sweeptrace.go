package core

import (
	"fmt"
	"sort"
	"strings"

	"nodeselect/internal/topology"
)

// SweepStep records one edge-deletion round of the balanced sweep: which
// threshold was processed, which candidate (if any) each surviving
// component produced, and whether the best-so-far improved. It makes the
// Figure 3 procedure's execution inspectable — for debugging a surprising
// selection, and for teaching what the algorithm actually does.
type SweepStep struct {
	// Round is the removal round (0 = the initial whole-graph evaluation).
	Round int
	// Threshold is the fractional-bandwidth value whose edge tier was
	// removed before this evaluation (0 for round 0).
	Threshold float64
	// RemovedLinks lists the link IDs deleted this round.
	RemovedLinks []int
	// Candidates are the node sets evaluated this round with their
	// balanced scores, one per qualifying component.
	Candidates []SweepCandidate
	// Improved reports whether any candidate beat the best so far.
	Improved bool
}

// SweepCandidate is one component's best-CPU node set and its score.
type SweepCandidate struct {
	Nodes []int
	Score float64
}

// BalancedTrace runs the balanced selection while recording every round.
// It returns the final result and the step log. The selection is identical
// to Balanced's.
func BalancedTrace(s *topology.Snapshot, req Request) (Result, []SweepStep, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return Result{}, nil, err
	}
	g := s.Graph
	pinned := req.pinnedSet()
	isEligible := make(map[int]bool, len(eligible))
	for _, id := range eligible {
		isEligible[id] = true
	}
	priority := req.priority()

	alive := make([]bool, g.NumLinks())
	for l := range alive {
		alive[l] = req.linkUsable(s, l)
	}
	aliveFn := func(l int) bool { return alive[l] }
	order := make([]int, 0, g.NumLinks())
	for l := 0; l < g.NumLinks(); l++ {
		if alive[l] {
			order = append(order, l)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		fi, fj := linkFactor(s, order[i], req), linkFactor(s, order[j], req)
		if fi != fj {
			return fi < fj
		}
		return order[i] < order[j]
	})

	var best Result
	bestScore := -1.0
	found := false
	var steps []SweepStep

	evaluate := func(step *SweepStep) {
		for _, comp := range g.Components(aliveFn) {
			if !containsAll(comp, pinned) {
				continue
			}
			cands := filterNodes(comp, func(id int) bool { return isEligible[id] })
			for _, pool := range candidatePools(s, cands, req) {
				nodes := topCPUNodes(s, pool, req.M, pinned)
				if nodes == nil || !pairLatencyOK(s, nodes, req) {
					continue
				}
				res := Score(s, nodes, req)
				if req.MinBW > 0 && res.PairMinBW < req.MinBW {
					continue
				}
				score := res.MinCPU
				if v := priority * res.MinBWFactor; v < score {
					score = v
				}
				step.Candidates = append(step.Candidates, SweepCandidate{Nodes: nodes, Score: score})
				if !found || score > bestScore {
					bestScore = score
					best = res
					found = true
					step.Improved = true
				}
			}
		}
	}

	step := SweepStep{Round: 0}
	evaluate(&step)
	steps = append(steps, step)
	round := 1
	for i := 0; i < len(order); {
		v := linkFactor(s, order[i], req)
		st := SweepStep{Round: round, Threshold: v}
		alive[order[i]] = false
		st.RemovedLinks = append(st.RemovedLinks, order[i])
		i++
		for i < len(order) && linkFactor(s, order[i], req) == v {
			alive[order[i]] = false
			st.RemovedLinks = append(st.RemovedLinks, order[i])
			i++
		}
		evaluate(&st)
		steps = append(steps, st)
		round++
	}
	if !found {
		return Result{}, steps, fmt.Errorf("%w: no component provides %d connected eligible compute nodes",
			ErrNoFeasibleSet, req.M)
	}
	return best, steps, nil
}

// FormatSweepTrace renders a step log with node names.
func FormatSweepTrace(g *topology.Graph, steps []SweepStep) string {
	var b strings.Builder
	for _, st := range steps {
		if st.Round == 0 {
			b.WriteString("round 0: initial graph\n")
		} else {
			fmt.Fprintf(&b, "round %d: removed %d link(s) at factor %.3f\n",
				st.Round, len(st.RemovedLinks), st.Threshold)
		}
		for _, c := range st.Candidates {
			names := make([]string, len(c.Nodes))
			for i, id := range c.Nodes {
				names[i] = g.Node(id).Name
			}
			fmt.Fprintf(&b, "  candidate %v score %.3f\n", names, c.Score)
		}
		if st.Improved {
			b.WriteString("  -> new best\n")
		}
	}
	return b.String()
}
