package core

import (
	"fmt"
	"strings"

	"nodeselect/internal/topology"
)

// SweepStep records one edge-deletion round of a sweep procedure
// (MaxBandwidth or Balanced): which threshold was processed, which
// candidate (if any) each surviving component produced, and whether the
// best-so-far improved. It makes the Figure 2/3 procedures' execution
// inspectable — for debugging a surprising selection, for a service's
// decision audit log, and for teaching what the algorithm actually does.
type SweepStep struct {
	// Round is the removal round (0 = the initial whole-graph evaluation).
	Round int
	// Threshold is the edge-metric value whose tier was removed before
	// this evaluation (0 for round 0): fractional availability for the
	// balanced sweep, absolute available bandwidth for the
	// maximize-bandwidth sweep.
	Threshold float64
	// RemovedLinks lists the link IDs deleted this round.
	RemovedLinks []int
	// Candidates are the node sets evaluated this round with their
	// objective scores, one per qualifying component.
	Candidates []SweepCandidate
	// Improved reports whether any candidate beat the best so far.
	Improved bool
}

// SweepCandidate is one component's best-CPU node set and its score.
type SweepCandidate struct {
	Nodes []int
	Score float64
}

// BalancedTrace runs the balanced selection while recording every round.
// It returns the final result and the step log; on a selection error the
// steps gathered so far are still returned for diagnosis. The selection
// is identical to Balanced's — it is BalancedOpt with an Options.Observer
// that collects the steps.
func BalancedTrace(s *topology.Snapshot, req Request) (Result, []SweepStep, error) {
	var steps []SweepStep
	res, err := BalancedOpt(s, req, Options{
		Observer: func(st SweepStep) { steps = append(steps, st) },
	})
	return res, steps, err
}

// FormatSweepTrace renders a step log with node names.
func FormatSweepTrace(g *topology.Graph, steps []SweepStep) string {
	var b strings.Builder
	for _, st := range steps {
		if st.Round == 0 {
			b.WriteString("round 0: initial graph\n")
		} else {
			fmt.Fprintf(&b, "round %d: removed %d link(s) at factor %.3f\n",
				st.Round, len(st.RemovedLinks), st.Threshold)
		}
		for _, c := range st.Candidates {
			names := make([]string, len(c.Nodes))
			for i, id := range c.Nodes {
				names[i] = g.Node(id).Name
			}
			fmt.Fprintf(&b, "  candidate %v score %.3f\n", names, c.Score)
		}
		if st.Improved {
			b.WriteString("  -> new best\n")
		}
	}
	return b.String()
}
