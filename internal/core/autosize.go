package core

import (
	"fmt"
	"math"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// PerfModel estimates an application's execution time, in seconds, on a
// candidate placement. §3.4 ("Variable number of execution nodes") notes
// that the selection procedures find the best set *given* a node count,
// and must be coupled with performance estimation to also choose the
// count; this interface is that coupling.
type PerfModel interface {
	// Estimate predicts the execution time on a placement of
	// len(res.Nodes) nodes with the given resource availability.
	Estimate(res Result) float64
}

// PerfModelFunc adapts a function to PerfModel.
type PerfModelFunc func(res Result) float64

// Estimate implements PerfModel.
func (f PerfModelFunc) Estimate(res Result) float64 { return f(res) }

// SizedResult is the outcome of an auto-sized selection.
type SizedResult struct {
	Result
	// M is the chosen node count.
	M int
	// Predicted is the model's estimate for the chosen placement.
	Predicted float64
	// Candidates records the estimate per evaluated count (keyed by m);
	// counts that were infeasible under the request are absent.
	Candidates map[int]float64
}

// ChooseCount selects both the number of nodes and the node set: for every
// m in [minM, maxM] it runs the given selection algorithm and asks the
// performance model for an estimate, returning the placement with the
// smallest predicted execution time. Counts that are infeasible under the
// request's constraints are skipped; ChooseCount fails only if every count
// is infeasible.
func ChooseCount(s *topology.Snapshot, base Request, minM, maxM int, algo string,
	model PerfModel, src *randx.Source) (SizedResult, error) {
	if minM < 1 || maxM < minM {
		return SizedResult{}, fmt.Errorf("%w: count range [%d, %d]", ErrBadRequest, minM, maxM)
	}
	if model == nil {
		return SizedResult{}, fmt.Errorf("%w: nil performance model", ErrBadRequest)
	}
	out := SizedResult{Candidates: make(map[int]float64)}
	bestPred := math.Inf(1)
	found := false
	var lastErr error
	for m := minM; m <= maxM; m++ {
		req := base
		req.M = m
		res, err := Select(algo, s, req, src)
		if err != nil {
			lastErr = err
			continue
		}
		pred := model.Estimate(res)
		out.Candidates[m] = pred
		if pred < bestPred {
			bestPred = pred
			out.Result = res
			out.M = m
			out.Predicted = pred
			found = true
		}
	}
	if !found {
		if lastErr != nil {
			return SizedResult{}, fmt.Errorf("core: no feasible node count in [%d, %d]: %w",
				minM, maxM, lastErr)
		}
		return SizedResult{}, ErrNoFeasibleSet
	}
	return out, nil
}
