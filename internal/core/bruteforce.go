package core

import (
	"math"

	"nodeselect/internal/topology"
)

// Objective identifies which quantity a brute-force search maximizes.
type Objective int

const (
	// ObjectiveCompute maximizes the minimum effective CPU of the set.
	ObjectiveCompute Objective = iota
	// ObjectiveBandwidth maximizes the minimum pairwise available
	// bandwidth along static routes.
	ObjectiveBandwidth
	// ObjectiveBalanced maximizes min(mincpu, priority * min pairwise
	// bandwidth fraction), the paper's minresource.
	ObjectiveBalanced
)

// BruteForce exhaustively enumerates every feasible m-subset of eligible
// compute nodes and returns one with the maximum objective value. It is
// exponential and exists as the ground-truth oracle for testing the greedy
// procedures and for the optimality-gap ablation; do not call it on large
// graphs.
//
// Feasibility honours the request's floors: with MinBW set, a subset whose
// pairwise bandwidth falls below the floor is rejected; MinCPU and
// eligibility are enforced by Request.validate.
func BruteForce(s *topology.Snapshot, req Request, obj Objective) (Result, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return Result{}, err
	}
	pinned := req.pinnedSet()

	// Mandatory members first, then free choices.
	var free []int
	for _, id := range eligible {
		if !pinned[id] {
			free = append(free, id)
		}
	}
	base := make([]int, 0, req.M)
	for _, id := range eligible {
		if pinned[id] {
			base = append(base, id)
		}
	}
	need := req.M - len(base)

	var best Result
	bestVal := math.Inf(-1)
	found := false

	consider := func(nodes []int) {
		res := Score(s, nodes, req)
		if req.MinBW > 0 && res.PairMinBW < req.MinBW {
			return
		}
		if req.MaxPairLatency > 0 && res.MaxPairLatency > req.MaxPairLatency {
			return
		}
		var val float64
		switch obj {
		case ObjectiveCompute:
			val = res.MinCPU
		case ObjectiveBandwidth:
			val = res.PairMinBW
		case ObjectiveBalanced:
			val = res.MinResource
		}
		if !found || val > bestVal {
			bestVal = val
			best = res
			found = true
		}
	}

	// Enumerate combinations of size need from free.
	combo := make([]int, 0, req.M)
	var rec func(start, remaining int)
	rec = func(start, remaining int) {
		if remaining == 0 {
			nodes := append(append([]int(nil), base...), combo...)
			consider(nodes)
			return
		}
		for i := start; i <= len(free)-remaining; i++ {
			combo = append(combo, free[i])
			rec(i+1, remaining-1)
			combo = combo[:len(combo)-1]
		}
	}
	rec(0, need)

	if !found {
		return Result{}, ErrNoFeasibleSet
	}
	return best, nil
}

// OptimalityGap runs a greedy procedure and the corresponding brute-force
// oracle and returns (greedyValue, optimalValue) for the balanced
// objective. It is used by tests and the ablation benchmarks.
func OptimalityGap(s *topology.Snapshot, req Request, opts Options) (greedy, optimal float64, err error) {
	gres, err := BalancedOpt(s, req, opts)
	if err != nil {
		return 0, 0, err
	}
	bres, err := BruteForce(s, req, ObjectiveBalanced)
	if err != nil {
		return 0, 0, err
	}
	return gres.MinResource, bres.MinResource, nil
}
