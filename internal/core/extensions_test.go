package core

import (
	"errors"
	"math"
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// --- Prioritization of computation and communication (§3.3) ---

func TestComputePriorityShiftsChoice(t *testing.T) {
	// Pair A: cpu 0.5 each, link 90% free. Pair B: cpu 0.9 each, link
	// 30% free. Balanced (p=1): A scores 0.5, B scores 0.3 → A wins.
	// With compute priority 2: A scores min(0.5, 2*0.9)=0.5, B scores
	// min(0.9, 2*0.3)=0.6 → B wins.
	g := topology.NewGraph()
	a1 := g.AddComputeNode("a1")
	a2 := g.AddComputeNode("a2")
	b1 := g.AddComputeNode("b1")
	b2 := g.AddComputeNode("b2")
	hub := g.AddNetworkNode("hub")
	la1 := g.Connect(a1, a2, 100e6, topology.LinkOpts{})
	lb1 := g.Connect(b1, b2, 100e6, topology.LinkOpts{})
	g.Connect(a1, hub, 100e6, topology.LinkOpts{})
	g.Connect(b1, hub, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetLoad(a1, 1)
	s.SetLoad(a2, 1) // cpu 0.5
	s.SetLoadName("b1", 1.0/9.0)
	s.SetLoadName("b2", 1.0/9.0) // cpu 0.9
	s.SetAvailBW(la1, 90e6)
	s.SetAvailBW(lb1, 30e6)
	// Make the hub links unattractive so pairs stay within a branch.
	s.SetAvailBW(2, 5e6)
	s.SetAvailBW(3, 5e6)

	bal, err := Balanced(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(bal.Nodes, []int{a1, a2}) {
		t.Fatalf("equal priority chose %v, want pair A", bal.Nodes)
	}
	pri, err := Balanced(s, Request{M: 2, ComputePriority: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(pri.Nodes, []int{b1, b2}) {
		t.Fatalf("compute priority 2 chose %v, want pair B", pri.Nodes)
	}
	if math.Abs(pri.MinResource-0.6) > 1e-9 {
		t.Errorf("priority-2 minresource = %v, want 0.6", pri.MinResource)
	}
}

func TestPaperPriorityExample(t *testing.T) {
	// §3.3: "if computation was prioritized by a factor of 2, 50% CPU
	// availability would be considered equivalent to 25% availability of
	// communication paths."
	g := chain(2)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 1)
	s.SetLoad(1, 1)       // cpu 0.5
	s.SetAvailBW(0, 25e6) // bw fraction 0.25
	res := Score(s, []int{0, 1}, Request{M: 2, ComputePriority: 2})
	if math.Abs(res.MinResource-0.5) > 1e-12 {
		t.Fatalf("minresource = %v, want 0.5 (cpu 0.5 == 2 * bw 0.25)", res.MinResource)
	}
}

// --- Fixed computation and communication requirements (§3.3) ---

func TestMinBWFloorConstrainsMaxCompute(t *testing.T) {
	// Idle nodes behind a starved link must be rejected when the request
	// demands 50 Mbps between any selected nodes.
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 0.2)
	s.SetLoad(1, 0.2)
	s.SetAvailBW(1, 10e6) // link 1-2 starved
	// Nodes 2,3 are idle (cpu 1.0), nodes 0,1 slightly loaded; without a
	// floor MaxCompute takes 2,3... it does anyway here. Make 2,3 the
	// loaded ones instead.
	s = topology.NewSnapshot(g)
	s.SetLoad(2, 0.2)
	s.SetLoad(3, 0.2)
	s.SetAvailBW(1, 10e6)
	res, err := MaxCompute(s, Request{M: 2, MinBW: 50e6})
	if err != nil {
		t.Fatal(err)
	}
	// The idle pair {0,1} satisfies the floor; the cross pair would not.
	if !equalSets(res.Nodes, []int{0, 1}) {
		t.Fatalf("chose %v, want [0 1]", res.Nodes)
	}
	if res.PairMinBW < 50e6 {
		t.Errorf("floor violated: PairMinBW = %v", res.PairMinBW)
	}
}

func TestMinBWFloorInfeasible(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	s.SetAvailBW(0, 1e6)
	s.SetAvailBW(1, 1e6)
	_, err := MaxCompute(s, Request{M: 2, MinBW: 50e6})
	if !errors.Is(err, ErrNoFeasibleSet) {
		t.Fatalf("err = %v, want ErrNoFeasibleSet", err)
	}
	_, err = Balanced(s, Request{M: 2, MinBW: 50e6})
	if !errors.Is(err, ErrNoFeasibleSet) {
		t.Fatalf("balanced err = %v, want ErrNoFeasibleSet", err)
	}
}

func TestMinCPUFloorFiltersNodes(t *testing.T) {
	g := chain(5)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 4) // cpu 0.2
	s.SetLoad(1, 4)
	s.SetLoad(2, 0.5) // cpu 0.667
	res, err := MaxBandwidth(s, Request{M: 3, MinCPU: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{2, 3, 4}) {
		t.Fatalf("chose %v, want [2 3 4]", res.Nodes)
	}
	if _, err := MaxBandwidth(s, Request{M: 4, MinCPU: 0.5}); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("err = %v, want ErrTooFewNodes", err)
	}
}

// --- Heterogeneous links and nodes (§3.3) ---

func TestHeterogeneousReferenceCapacity(t *testing.T) {
	// Paper example: with 100 Mbps and 155 Mbps links, a reference link
	// decides whether "50% available" means 50 or 77.5 Mbps.
	g := topology.NewGraph()
	a := g.AddComputeNode("a")
	b := g.AddComputeNode("b")
	c := g.AddComputeNode("c")
	lab := g.Connect(a, b, 100e6, topology.LinkOpts{})
	lbc := g.Connect(b, c, 155e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetAvailBW(lab, 60e6)   // 60% of own capacity
	s.SetAvailBW(lbc, 77.5e6) // 50% of own capacity, 77.5% of 100M reference

	// Own-capacity convention: pair (a,b) factor 0.6 beats (b,c) 0.5.
	own, err := Balanced(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(own.Nodes, []int{a, b}) {
		t.Fatalf("own-capacity picked %v, want [a b]", own.Nodes)
	}
	// 100 Mbps reference: (b,c) delivers 77.5 Mbps = 0.775 > 0.6.
	ref, err := Balanced(s, Request{M: 2, RefCapacity: 100e6})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(ref.Nodes, []int{b, c}) {
		t.Fatalf("reference-capacity picked %v, want [b c]", ref.Nodes)
	}
	if math.Abs(ref.MinBWFactor-0.775) > 1e-9 {
		t.Errorf("reference MinBWFactor = %v, want 0.775", ref.MinBWFactor)
	}
}

func TestHeterogeneousNodeSpeeds(t *testing.T) {
	// A loaded fast node can still beat an idle slow node: speed 3 at
	// load 1 gives effective 1.5 > 1.0.
	g := topology.NewGraph()
	fast := g.AddComputeNodeSpec("fast", 3, "")
	slow := g.AddComputeNode("slow")
	other := g.AddComputeNode("other")
	g.Connect(fast, other, 100e6, topology.LinkOpts{})
	g.Connect(slow, other, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	s.SetLoad(fast, 1)
	res, err := MaxCompute(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	// The loaded fast node (effective 1.5) must be selected ahead of the
	// idle unit-speed nodes; the second slot goes to the lower-ID tie.
	if !equalSets(res.Nodes, []int{fast, slow}) {
		t.Fatalf("chose %v, want fast+slow", res.Nodes)
	}
	if math.Abs(res.MinCPU-1.0) > 1e-12 {
		t.Errorf("MinCPU = %v (other is the min at 1.0)", res.MinCPU)
	}
}

// --- Eligibility and pinning (application specification interface) ---

func TestEligibleRestriction(t *testing.T) {
	g := chain(6)
	s := topology.NewSnapshot(g)
	evens := func(id int) bool { return id%2 == 0 }
	res, err := MaxCompute(s, Request{M: 3, Eligible: evens})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{0, 2, 4}) {
		t.Fatalf("chose %v, want even nodes", res.Nodes)
	}
	if _, err := MaxCompute(s, Request{M: 4, Eligible: evens}); !errors.Is(err, ErrTooFewNodes) {
		t.Fatalf("err = %v, want ErrTooFewNodes", err)
	}
}

func TestPinnedNodeAlwaysSelected(t *testing.T) {
	g := chain(6)
	s := topology.NewSnapshot(g)
	s.SetLoad(5, 10) // pinned node is the worst node
	for _, algo := range []string{AlgoCompute, AlgoBandwidth, AlgoBalanced} {
		res, err := Select(algo, s, Request{M: 3, Pinned: []int{5}}, nil)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		found := false
		for _, id := range res.Nodes {
			if id == 5 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s dropped the pinned node: %v", algo, res.Nodes)
		}
	}
}

func TestPinnedValidation(t *testing.T) {
	g := topology.NewGraph()
	g.AddComputeNode("a")
	g.AddNetworkNode("r")
	g.AddComputeNode("b")
	g.ConnectNames("a", "r", 1e6, topology.LinkOpts{})
	g.ConnectNames("r", "b", 1e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)
	// Pinning a network node is malformed.
	if _, err := MaxCompute(s, Request{M: 1, Pinned: []int{1}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("pinned router: err = %v", err)
	}
	// More pinned than M is malformed.
	if _, err := MaxCompute(s, Request{M: 1, Pinned: []int{0, 2}}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("too many pinned: err = %v", err)
	}
	// A pinned node violating the CPU floor is infeasible.
	s.SetLoad(0, 9)
	if _, err := MaxCompute(s, Request{M: 1, Pinned: []int{0}, MinCPU: 0.5}); !errors.Is(err, ErrNoFeasibleSet) {
		t.Errorf("pinned below floor: err = %v", err)
	}
}

func TestPinnedGuidesComponentChoice(t *testing.T) {
	// Two clean clusters; pinning a node in cluster B must force the
	// bandwidth algorithm to stay in B even if A is equally good.
	g := twoClusters(3, 10e6) // weak backbone
	s := topology.NewSnapshot(g)
	res, err := MaxBandwidth(s, Request{M: 3, Pinned: []int{5}}) // 5 is in cluster B
	if err != nil {
		t.Fatal(err)
	}
	if !equalSets(res.Nodes, []int{5, 6, 7}) {
		t.Fatalf("chose %v, want cluster B [5 6 7]", res.Nodes)
	}
	if res.PairMinBW != 100e6 {
		t.Errorf("PairMinBW = %v, want 100e6 (not across the weak backbone)", res.PairMinBW)
	}
}

// --- Brute force oracle ---

func TestBruteForceHonoursFloorAndPinning(t *testing.T) {
	g := chain(5)
	s := topology.NewSnapshot(g)
	s.SetAvailBW(2, 1e6) // starve link 2-3
	res, err := BruteForce(s, Request{M: 2, MinBW: 50e6, Pinned: []int{1}}, ObjectiveBalanced)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairMinBW < 50e6 {
		t.Errorf("brute force violated the floor: %v", res.PairMinBW)
	}
	foundPinned := false
	for _, id := range res.Nodes {
		if id == 1 {
			foundPinned = true
		}
	}
	if !foundPinned {
		t.Error("brute force dropped pinned node")
	}
}

func TestBruteForceObjectives(t *testing.T) {
	src := randx.New(55)
	s := randomTreeSnapshot(src, 7)
	req := Request{M: 3}
	comp, err := BruteForce(s, req, ObjectiveCompute)
	if err != nil {
		t.Fatal(err)
	}
	greedyComp, _ := MaxCompute(s, req)
	if math.Abs(comp.MinCPU-greedyComp.MinCPU) > 1e-12 {
		t.Errorf("brute compute %v != greedy %v (greedy is exact)", comp.MinCPU, greedyComp.MinCPU)
	}
}

func TestOptimalityGap(t *testing.T) {
	src := randx.New(66)
	s := randomTreeSnapshot(src, 8)
	g, o, err := OptimalityGap(s, Request{M: 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g > o+1e-9 {
		t.Fatalf("greedy %v exceeds optimum %v", g, o)
	}
	if g < o-1e-9 {
		t.Fatalf("full sweep should be optimal on trees: greedy %v < optimum %v", g, o)
	}
}

// --- Migration (§3.3) ---

func TestAdviseMigrationRecommendsMove(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 4)
	s.SetLoad(1, 4) // current placement heavily loaded
	adv, err := AdviseMigration(s, []int{0, 1}, Request{M: 2}, MigrationPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !adv.Move {
		t.Fatal("should recommend moving off loaded nodes")
	}
	if !equalSets(adv.Candidate.Nodes, []int{2, 3}) {
		t.Fatalf("candidate %v, want [2 3]", adv.Candidate.Nodes)
	}
	if adv.Gain <= 0 {
		t.Errorf("gain = %v, want positive", adv.Gain)
	}
}

func TestAdviseMigrationStaysWhenCurrentBest(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetLoad(2, 4)
	s.SetLoad(3, 4)
	adv, err := AdviseMigration(s, []int{0, 1}, Request{M: 2}, MigrationPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Move {
		t.Fatal("should stay on the best placement")
	}
}

func TestAdviseMigrationMinGain(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 0.3)
	s.SetLoad(1, 0.3) // current slightly loaded; candidate idle
	// Improvement from cpu 1/1.3 ≈ 0.769 to 1.0 is ~30%.
	low, err := AdviseMigration(s, []int{0, 1}, Request{M: 2}, MigrationPolicy{MinGain: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Move {
		t.Fatal("30% gain should clear a 10% threshold")
	}
	high, err := AdviseMigration(s, []int{0, 1}, Request{M: 2}, MigrationPolicy{MinGain: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if high.Move {
		t.Fatal("30% gain should not clear a 50% threshold")
	}
}

func TestAdviseMigrationCost(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	s.SetLoad(0, 0.3)
	s.SetLoad(1, 0.3)
	adv, err := AdviseMigration(s, []int{0, 1}, Request{M: 2},
		MigrationPolicy{MigrationCost: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Move {
		t.Fatal("migration cost 0.5 should suppress a small gain")
	}
}

func TestAdviseMigrationBadCurrent(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	if _, err := AdviseMigration(s, []int{0}, Request{M: 2}, MigrationPolicy{}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestResultNamesAndString(t *testing.T) {
	g := chain(3)
	s := topology.NewSnapshot(g)
	res, err := MaxCompute(s, Request{M: 2})
	if err != nil {
		t.Fatal(err)
	}
	names := res.Names(g)
	if len(names) != 2 || names[0] != "n00" {
		t.Errorf("Names = %v", names)
	}
	if res.String() == "" {
		t.Error("String() empty")
	}
}
