package core

import (
	"context"
	"fmt"

	"nodeselect/internal/randx"
	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// SelectCtx is SelectOpt with the sweep timed as a "core.sweep" span on the
// context's trace (a no-op on untraced contexts). The span records the
// algorithm and, on success, the winning set's minresource.
func SelectCtx(ctx context.Context, algo string, s *topology.Snapshot, req Request, src *randx.Source, opts Options) (Result, error) {
	span := reqtrace.StartChild(ctx, "core.sweep")
	defer span.End()
	span.SetAttr("algo", algo)
	res, err := SelectOpt(algo, s, req, src, opts)
	if err != nil {
		span.Fail(err)
	} else {
		span.SetAttr("minresource", fmt.Sprintf("%.4g", res.MinResource))
	}
	return res, err
}

// AdviseMigrationCtx is AdviseMigration timed as a "core.advise" span on
// the context's trace.
func AdviseMigrationCtx(ctx context.Context, s *topology.Snapshot, current []int, req Request, policy MigrationPolicy) (MigrationAdvice, error) {
	span := reqtrace.StartChild(ctx, "core.advise")
	defer span.End()
	adv, err := AdviseMigration(s, current, req, policy)
	if err != nil {
		span.Fail(err)
	} else if adv.Move {
		span.SetAttr("move", "true")
	}
	return adv, err
}
