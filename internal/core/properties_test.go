package core

import (
	"math"
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// Property: with an overwhelming compute priority the balanced algorithm
// reduces to MaxCompute — it achieves exactly the maximum attainable
// minimum CPU (the §3.3 prioritization knob's limit behaviour).
func TestQuickPriorityLimitIsMaxCompute(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(10)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		comp, err1 := MaxCompute(s, Request{M: m})
		bal, err2 := Balanced(s, Request{M: m, ComputePriority: 1e12})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(comp.MinCPU-bal.MinCPU) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: raising the compute priority never lowers the selected set's
// minimum CPU, and lowering it never lowers the selected set's bandwidth
// fraction (monotone trade-off of the §3.3 knob).
func TestQuickPriorityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		priorities := []float64{0.25, 1, 4, 16}
		lastCPU := -1.0
		for _, p := range priorities {
			res, err := Balanced(s, Request{M: m, ComputePriority: p})
			if err != nil {
				return false
			}
			if res.MinCPU < lastCPU-1e-9 {
				return false
			}
			lastCPU = res.MinCPU
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: adding a bandwidth floor never yields a set with less pairwise
// bandwidth than the floor, and an achievable floor never makes the
// request infeasible.
func TestQuickBandwidthFloorRespected(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-2)
		free, err := MaxBandwidth(s, Request{M: m})
		if err != nil {
			return false
		}
		if math.IsInf(free.PairMinBW, 1) {
			return true
		}
		// A floor at exactly the unconstrained optimum must stay feasible.
		floor := free.PairMinBW * 0.999
		capped, err := Balanced(s, Request{M: m, MinBW: floor})
		if err != nil {
			return false
		}
		return capped.PairMinBW >= floor-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Score is permutation-invariant in the node order.
func TestQuickScorePermutationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 2 + src.Intn(n-1)
		perm := src.Perm(n)[:m]
		a := Score(s, perm, Request{M: m})
		shuffled := append([]int(nil), perm...)
		src.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		b := Score(s, shuffled, Request{M: m})
		return a.MinResource == b.MinResource && a.PairMinBW == b.PairMinBW &&
			a.MinCPU == b.MinCPU && a.MaxPairLatency == b.MaxPairLatency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: selection results are insensitive to snapshot cloning (no
// hidden state) and deterministic.
func TestQuickSelectionPure(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(8)
		s := randomTreeSnapshot(src, n)
		m := 1 + src.Intn(n-1)
		a, err1 := Balanced(s, Request{M: m})
		b, err2 := Balanced(s.Clone(), Request{M: m})
		if err1 != nil || err2 != nil {
			return false
		}
		return equalSets(a.Nodes, b.Nodes) && a.MinResource == b.MinResource
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: on star topologies (every compute node one hop from a hub),
// balanced selection equals MaxCompute whenever all access links are
// equally available — bandwidth cannot discriminate.
func TestQuickStarReducesToCompute(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 3 + src.Intn(10)
		g := topology.NewGraph()
		hub := g.AddNetworkNode("hub")
		for i := 0; i < n; i++ {
			id := g.AddComputeNode(nodeName(i))
			g.Connect(hub, id, 100e6, topology.LinkOpts{})
		}
		s := topology.NewSnapshot(g)
		for i := 0; i < n; i++ {
			s.SetLoad(g.MustNode(nodeName(i)), src.Float64()*4)
		}
		u := src.Float64() * 0.9
		for l := 0; l < g.NumLinks(); l++ {
			s.SetUtilization(l, u)
		}
		m := 1 + src.Intn(n)
		comp, err1 := MaxCompute(s, Request{M: m})
		bal, err2 := Balanced(s, Request{M: m})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(comp.MinCPU-bal.MinCPU) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
