package core

import (
	"fmt"

	"nodeselect/internal/topology"
)

// MigrationPolicy controls when a running application should move to a
// better node set (§3.3 "Dynamic migration"). The snapshot passed to
// AdviseMigration must already exclude the application's own load and
// traffic — the paper notes that self-inflicted load "must be captured
// separately as it is not due to a competing process"; internal/netsim and
// internal/remos provide such background-only snapshots.
type MigrationPolicy struct {
	// Algorithm is the selection algorithm used to find the candidate
	// placement (default AlgoBalanced).
	Algorithm string
	// MinGain is the minimum relative improvement in minresource that
	// justifies a migration, e.g. 0.25 requires the new placement to
	// offer at least 25% more minresource than the current one. Zero
	// recommends migration on any strict improvement.
	MinGain float64
	// MigrationCost, when positive, is an absolute minresource handicap
	// subtracted from the candidate to account for the cost of moving
	// (checkpoint, transfer, restart).
	MigrationCost float64
}

// MigrationAdvice is the outcome of a migration evaluation.
type MigrationAdvice struct {
	// Move reports whether migrating is worthwhile under the policy.
	Move bool
	// Current is the current placement scored under present conditions.
	Current Result
	// Candidate is the best placement available now.
	Candidate Result
	// Gain is the relative minresource improvement of Candidate over
	// Current (after subtracting MigrationCost).
	Gain float64
}

// AdviseMigration scores the application's current node set against the
// best currently available set and recommends whether to migrate.
func AdviseMigration(s *topology.Snapshot, current []int, req Request, policy MigrationPolicy) (MigrationAdvice, error) {
	if len(current) != req.M {
		return MigrationAdvice{}, fmt.Errorf("%w: current set has %d nodes, request wants %d",
			ErrBadRequest, len(current), req.M)
	}
	algo := policy.Algorithm
	if algo == "" {
		algo = AlgoBalanced
	}
	cand, err := Select(algo, s, req, nil)
	if err != nil {
		return MigrationAdvice{}, err
	}
	cur := Score(s, current, req)
	adv := MigrationAdvice{Current: cur, Candidate: cand}
	candidateValue := cand.MinResource - policy.MigrationCost
	if cur.MinResource <= 0 {
		// A starved placement: any positive candidate is a gain.
		adv.Gain = candidateValue
		adv.Move = candidateValue > 0
		return adv, nil
	}
	adv.Gain = candidateValue/cur.MinResource - 1
	if sameNodes(cur.Nodes, cand.Nodes) {
		adv.Move = false
		return adv, nil
	}
	if policy.MinGain > 0 {
		adv.Move = adv.Gain >= policy.MinGain
	} else {
		adv.Move = adv.Gain > 0
	}
	return adv, nil
}

// sameNodes reports whether two sorted node slices are identical.
func sameNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
