package core

import (
	"fmt"
	"sort"

	"nodeselect/internal/topology"
)

// MigrationPolicy controls when a running application should move to a
// better node set (§3.3 "Dynamic migration"). The snapshot passed to
// AdviseMigration must already exclude the application's own load and
// traffic — the paper notes that self-inflicted load "must be captured
// separately as it is not due to a competing process"; internal/netsim and
// internal/remos provide such background-only snapshots.
type MigrationPolicy struct {
	// Algorithm is the selection algorithm used to find the candidate
	// placement (default AlgoBalanced).
	Algorithm string
	// MinGain is the minimum relative improvement in minresource that
	// justifies a migration, e.g. 0.25 requires the new placement to
	// offer at least 25% more minresource than the current one. Zero
	// recommends migration on any strict improvement.
	MinGain float64
	// MigrationCost, when positive, is an absolute minresource handicap
	// subtracted from the candidate to account for the cost of moving
	// (checkpoint, transfer, restart).
	MigrationCost float64
}

// MigrationAdvice is the outcome of a migration evaluation.
type MigrationAdvice struct {
	// Move reports whether migrating is worthwhile under the policy.
	Move bool
	// Current is the current placement scored under present conditions.
	Current Result
	// Candidate is the best placement available now.
	Candidate Result
	// Gain is the relative minresource improvement of Candidate over
	// Current (after subtracting MigrationCost).
	Gain float64
}

// AdviseMigration scores the application's current node set against the
// best currently available set and recommends whether to migrate.
func AdviseMigration(s *topology.Snapshot, current []int, req Request, policy MigrationPolicy) (MigrationAdvice, error) {
	if len(current) != req.M {
		return MigrationAdvice{}, fmt.Errorf("%w: current set has %d nodes, request wants %d",
			ErrBadRequest, len(current), req.M)
	}
	algo := policy.Algorithm
	if algo == "" {
		algo = AlgoBalanced
	}
	cand, err := Select(algo, s, req, nil)
	if err != nil {
		return MigrationAdvice{}, err
	}
	cur := scoreCurrent(s, current, req)
	adv := MigrationAdvice{Current: cur, Candidate: cand}
	candidateValue := cand.MinResource - policy.MigrationCost
	if cur.MinResource <= 0 {
		// A starved placement: any positive candidate is a gain.
		adv.Gain = candidateValue
		adv.Move = candidateValue > 0
		return adv, nil
	}
	adv.Gain = candidateValue/cur.MinResource - 1
	if sameNodes(cur.Nodes, cand.Nodes) {
		adv.Move = false
		return adv, nil
	}
	if policy.MinGain > 0 {
		adv.Move = adv.Gain >= policy.MinGain
	} else {
		adv.Move = adv.Gain > 0
	}
	return adv, nil
}

// scoreCurrent scores the application's existing placement. Unlike a
// candidate set, the current set can contain nodes the snapshot no longer
// vouches for — pruned from a re-discovered topology, demoted to
// non-compute, excluded by the request's eligibility (how the service
// marks stale/unreachable measurements), or partitioned from the rest of
// the set. Score would panic or mis-score such a set; for migration
// advice the right answer is a zero-minresource Result, so the one
// migration that matters most — off a dead node — is strongly
// recommended rather than blocked by an error.
func scoreCurrent(s *topology.Snapshot, current []int, req Request) Result {
	dead := false
	for _, id := range current {
		if id < 0 || id >= s.Graph.NumNodes() || s.Graph.Node(id).Kind != topology.Compute ||
			(req.Eligible != nil && !req.Eligible(id)) {
			dead = true
			break
		}
	}
	if !dead {
		for i := 0; i < len(current) && !dead; i++ {
			for j := i + 1; j < len(current); j++ {
				if !s.Graph.Reachable(current[i], current[j]) {
					dead = true
					break
				}
			}
		}
	}
	if dead {
		res := Result{Nodes: append([]int(nil), current...), BottleneckLink: -1}
		sort.Ints(res.Nodes)
		return res
	}
	return Score(s, current, req)
}

// sameNodes reports whether two sorted node slices are identical.
func sameNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
