package core

import (
	"fmt"
	"sort"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// Random selects m eligible compute nodes uniformly at random, the baseline
// the paper compares against in §4.3. Pinned nodes are always included; the
// remainder is drawn without replacement. Floors are ignored (a random
// selector has no network information), but eligibility restrictions are
// honoured since they encode hard application constraints.
func Random(s *topology.Snapshot, req Request, src *randx.Source) (Result, error) {
	// Floors are a property of network state, which random selection
	// does not consult.
	blind := req
	blind.MinBW = 0
	blind.MinCPU = 0
	eligible, err := blind.validate(s)
	if err != nil {
		return Result{}, err
	}
	pinned := req.pinnedSet()
	nodes := make([]int, 0, req.M)
	var pool []int
	for _, id := range eligible {
		if pinned[id] {
			nodes = append(nodes, id)
		} else {
			pool = append(pool, id)
		}
	}
	src.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	nodes = append(nodes, pool[:req.M-len(nodes)]...)
	sort.Ints(nodes)
	return Score(s, nodes, req), nil
}

// Static selects nodes using only static network properties: it runs the
// balanced procedure on an idealized snapshot with zero load everywhere and
// every link fully available. On a homogeneous testbed this is equivalent
// to an arbitrary fixed choice, which is why the paper reports that random
// and static selection perform virtually identically (§4.3).
func Static(s *topology.Snapshot, req Request) (Result, error) {
	idle := topology.NewSnapshot(s.Graph)
	idle.Time = s.Time
	res, err := Balanced(idle, req)
	if err != nil {
		return Result{}, err
	}
	// Report the chosen set scored against the *actual* conditions.
	return Score(s, res.Nodes, req), nil
}

// Algorithm names accepted by Select.
const (
	AlgoCompute   = "compute"
	AlgoBandwidth = "bandwidth"
	AlgoBalanced  = "balanced"
	AlgoRandom    = "random"
	AlgoStatic    = "static"
)

// Algorithms lists the selectable algorithm names.
func Algorithms() []string {
	return []string{AlgoCompute, AlgoBandwidth, AlgoBalanced, AlgoRandom, AlgoStatic}
}

// Select dispatches by algorithm name. src is required only for
// AlgoRandom; a nil src makes random selection an error.
func Select(algo string, s *topology.Snapshot, req Request, src *randx.Source) (Result, error) {
	return SelectOpt(algo, s, req, src, Options{})
}

// SelectOpt dispatches like Select with explicit Options. The sweep
// procedures (bandwidth, balanced) honour every option including the
// decision-trace Observer; the other algorithms have no sweep and ignore
// them.
func SelectOpt(algo string, s *topology.Snapshot, req Request, src *randx.Source, opts Options) (Result, error) {
	switch algo {
	case AlgoCompute:
		return MaxCompute(s, req)
	case AlgoBandwidth:
		return MaxBandwidthOpt(s, req, opts)
	case AlgoBalanced:
		return BalancedOpt(s, req, opts)
	case AlgoStatic:
		return Static(s, req)
	case AlgoRandom:
		if src == nil {
			return Result{}, fmt.Errorf("%w: random selection needs a random source", ErrBadRequest)
		}
		return Random(s, req, src)
	default:
		return Result{}, fmt.Errorf("%w: unknown algorithm %q", ErrBadRequest, algo)
	}
}
