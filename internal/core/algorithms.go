package core

import (
	"fmt"
	"math"

	"nodeselect/internal/topology"
)

// Options tunes algorithm behaviour. The zero value gives the strongest
// variant of each procedure; the Paper* fields reproduce the pseudocode of
// Figures 2 and 3 literally, for fidelity comparisons and ablation studies.
type Options struct {
	// PaperEarlyStop makes Balanced stop as soon as one edge-removal
	// round fails to improve minresource, exactly as Figure 3 step 4.
	// The default (false) continues removing bottleneck edges through
	// every threshold and keeps the best set seen, which dominates the
	// early-stopping variant and is optimal on trees.
	PaperEarlyStop bool

	// PaperSingleEdgeRemoval removes exactly one minimum-bandwidth edge
	// per round, as the pseudocode literally states. The default (false)
	// removes every edge tied for the minimum, which is required for the
	// greedy argument to hold when several links carry equal load.
	PaperSingleEdgeRemoval bool

	// Observer, when non-nil, receives one SweepStep per evaluation round
	// of the sweep procedures (MaxBandwidth, Balanced): which edges were
	// deleted at which threshold, every candidate node set scored, and
	// whether the best improved. It is the decision audit hook a service
	// answers "why these nodes" with. A nil Observer costs nothing.
	Observer func(SweepStep)
}

// MaxCompute selects the m eligible compute nodes with the highest
// available computation capacity (§3.2 "Maximize computation capacity").
// With a bandwidth floor set, the selected nodes must additionally lie in a
// single component of the graph restricted to links satisfying the floor,
// and the procedure maximizes the minimum CPU under that constraint.
func MaxCompute(s *topology.Snapshot, req Request) (Result, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return Result{}, err
	}
	pinned := req.pinnedSet()

	if req.MinBW <= 0 && req.MaxPairLatency <= 0 && len(req.Pinned) == 0 {
		// The simple case of §3.2: pick the m highest-cpu nodes.
		nodes := topCPUNodes(s, eligible, req.M, nil)
		return Score(s, nodes, req), nil
	}

	// Constrained case: nodes must be mutually reachable over links that
	// satisfy the bandwidth floor and the set must contain the pinned
	// nodes. Evaluate each qualifying component and keep the best
	// (highest minimum CPU, ties by higher pairwise bandwidth).
	alive := func(l int) bool { return req.linkUsable(s, l) }
	var best Result
	found := false
	for _, comp := range s.Graph.Components(alive) {
		inComp := make(map[int]bool, len(comp))
		for _, id := range comp {
			inComp[id] = true
		}
		if !containsAll(comp, pinned) {
			continue
		}
		cands := filterNodes(eligible, func(id int) bool { return inComp[id] })
		for _, pool := range candidatePools(s, cands, req) {
			nodes := topCPUNodes(s, pool, req.M, pinned)
			if nodes == nil || !pairLatencyOK(s, nodes, req) {
				continue
			}
			res := Score(s, nodes, req)
			if !found || res.MinCPU > best.MinCPU ||
				(res.MinCPU == best.MinCPU && res.PairMinBW > best.PairMinBW) {
				best = res
				found = true
			}
		}
	}
	if !found {
		return Result{}, fmt.Errorf("%w: no component satisfies the bandwidth floor with %d nodes",
			ErrNoFeasibleSet, req.M)
	}
	return best, nil
}

// MaxBandwidth implements the paper's Figure 2: select m compute nodes
// maximizing the minimum available bandwidth between any pair of selected
// nodes. Edges are deleted in increasing order of available bandwidth while
// a connected component with at least m eligible compute nodes survives;
// the final surviving component supplies the selection.
//
// Within the final component any m nodes meet the bandwidth guarantee
// (Figure 2 says "any m compute nodes in L"); this implementation picks the
// m with the highest CPU, which preserves the guarantee and is a strictly
// better tie-break.
func MaxBandwidth(s *topology.Snapshot, req Request) (Result, error) {
	return sweepSelect(s, req, Options{}, false)
}

// MaxBandwidthOpt is MaxBandwidth with explicit Options.
func MaxBandwidthOpt(s *topology.Snapshot, req Request, opts Options) (Result, error) {
	return sweepSelect(s, req, opts, false)
}

// Balanced implements the paper's Figure 3: select m compute nodes
// maximizing minresource = min(min fractional cpu, priority * min
// fractional bandwidth). Bottleneck edges are deleted in increasing order
// of fractional availability; after each round every surviving component
// with at least m eligible compute nodes is scored with its best-CPU m
// nodes, and the best-scoring set over the whole sweep is returned.
func Balanced(s *topology.Snapshot, req Request) (Result, error) {
	return sweepSelect(s, req, Options{}, true)
}

// BalancedOpt is Balanced with explicit Options (e.g. the paper-faithful
// early-stopping variant).
func BalancedOpt(s *topology.Snapshot, req Request, opts Options) (Result, error) {
	return sweepSelect(s, req, opts, true)
}

// ReferenceMaxBandwidth runs the literal edge-deletion form of Figure 2,
// bypassing the union-find fast path. It is the oracle the differential
// tests and the `make benchdiff` baseline compare against.
func ReferenceMaxBandwidth(s *topology.Snapshot, req Request) (Result, error) {
	return referenceSweepSelect(s, req, Options{}, false)
}

// ReferenceMaxBandwidthOpt is ReferenceMaxBandwidth with explicit Options.
func ReferenceMaxBandwidthOpt(s *topology.Snapshot, req Request, opts Options) (Result, error) {
	return referenceSweepSelect(s, req, opts, false)
}

// ReferenceBalanced runs the literal edge-deletion form of Figure 3,
// bypassing the union-find fast path.
func ReferenceBalanced(s *topology.Snapshot, req Request) (Result, error) {
	return referenceSweepSelect(s, req, Options{}, true)
}

// ReferenceBalancedOpt is ReferenceBalanced with explicit Options.
func ReferenceBalancedOpt(s *topology.Snapshot, req Request, opts Options) (Result, error) {
	return referenceSweepSelect(s, req, opts, true)
}

// sweepSelect dispatches between the union-find fast path and the
// reference edge-deletion loop. The fast path produces bit-identical
// results and traces for the default sweep semantics; the paper-literal
// ablation variants (early stop, single-edge removal) change the
// enumeration itself and keep the literal implementation.
func sweepSelect(s *topology.Snapshot, req Request, opts Options, balanced bool) (Result, error) {
	if forceReferenceSweep || opts.PaperEarlyStop || opts.PaperSingleEdgeRemoval {
		return referenceSweepSelect(s, req, opts, balanced)
	}
	return fastSweepSelect(s, req, opts, balanced)
}

// poolCandidates enumerates the candidate node sets one component
// contributes to a sweep round: for every pool of the component's sorted
// eligible candidates, the top-CPU m nodes, filtered by the latency
// ceiling and the bandwidth floor, scored with the round objective. Both
// sweep implementations funnel through this one function so their
// candidate streams — values and order — cannot diverge. A non-nil memo
// caches the pure pool-set -> (result, score, keep) evaluation across
// components, which the fast path exploits heavily: consecutive components
// of the merge hierarchy usually re-select the same top-CPU node set.
func poolCandidates(s *topology.Snapshot, cands []int, req Request, pinned map[int]bool,
	balanced bool, priority float64, memo map[string]poolEval,
	yield func(nodes []int, score float64, res Result)) {
	for _, pool := range candidatePools(s, cands, req) {
		nodes := topCPUNodes(s, pool, req.M, pinned)
		if nodes == nil {
			continue
		}
		if memo != nil {
			key := nodeSetKey(nodes)
			e, ok := memo[key]
			if !ok {
				e = evalPool(s, nodes, req, balanced, priority)
				memo[key] = e
			}
			if e.keep {
				yield(nodes, e.score, e.res)
			}
			continue
		}
		e := evalPool(s, nodes, req, balanced, priority)
		if e.keep {
			yield(nodes, e.score, e.res)
		}
	}
}

// poolEval is the memoized outcome of scoring one concrete node set.
type poolEval struct {
	res   Result
	score float64
	keep  bool
}

// evalPool applies the latency ceiling, scores the set, and applies the
// bandwidth floor — the pure per-candidate part of a sweep round.
func evalPool(s *topology.Snapshot, nodes []int, req Request, balanced bool, priority float64) poolEval {
	if !pairLatencyOK(s, nodes, req) {
		return poolEval{}
	}
	res := Score(s, nodes, req)
	if req.MinBW > 0 && res.PairMinBW < req.MinBW {
		return poolEval{}
	}
	var score float64
	if balanced {
		score = math.Min(res.MinCPU, priority*res.MinBWFactor)
	} else {
		score = res.PairMinBW
	}
	return poolEval{res: res, score: score, keep: true}
}

// nodeSetKey encodes a sorted node-ID set as a compact string key for the
// pool memo (varint bytes; self-delimiting, so distinct sets cannot
// collide).
func nodeSetKey(nodes []int) string {
	b := make([]byte, 0, len(nodes)*2+4)
	for _, id := range nodes {
		v := uint(id)
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// referenceSweepSelect is the literal bottleneck-edge-deletion sweep behind
// MaxBandwidth (balanced = false) and Balanced (balanced = true).
//
// The sweep enumerates candidate sets exactly as Figures 2 and 3 do —
// delete edges in increasing order of available (fractional) bandwidth and
// take the best-CPU m compute nodes of every surviving component — but
// scores each candidate by its *actual* static-route metrics (pairwise
// bottleneck bandwidth; the balanced minresource) rather than by the
// component's minimum alive edge. On trees the two scores coincide at the
// decisive thresholds, so the tree-optimality guarantee of the paper's
// argument is preserved (and verified against brute force in the tests);
// on cyclic static-routing topologies the actual-score form avoids
// crediting a component with connectivity its fixed routes cannot use.
func referenceSweepSelect(s *topology.Snapshot, req Request, opts Options, balanced bool) (Result, error) {
	eligible, err := req.validate(s)
	if err != nil {
		return Result{}, err
	}
	g := s.Graph
	pinned := req.pinnedSet()
	isEligible := make(map[int]bool, len(eligible))
	for _, id := range eligible {
		isEligible[id] = true
	}
	priority := req.priority()

	// Edge metric: absolute available bandwidth for MaxBandwidth,
	// fractional availability for Balanced.
	metric := func(l int) float64 {
		if balanced {
			return linkFactor(s, l, req)
		}
		return s.AvailBW[l]
	}

	alive := make([]bool, g.NumLinks())
	for l := range alive {
		alive[l] = req.linkUsable(s, l)
	}
	aliveFn := func(l int) bool { return alive[l] }

	// Edges sorted by increasing metric, for removal order.
	order := g.OrderLinks(aliveFn, metric)

	var best Result
	bestScore := math.Inf(-1)
	found := false

	// evaluate scores all qualifying components of the current graph and
	// reports whether any improved on the best so far. A non-nil step
	// records every candidate for the observer.
	evaluate := func(step *SweepStep) bool {
		improved := false
		for _, comp := range g.Components(aliveFn) {
			if !containsAll(comp, pinned) {
				continue
			}
			cands := filterNodes(comp, func(id int) bool { return isEligible[id] })
			poolCandidates(s, cands, req, pinned, balanced, priority, nil,
				func(nodes []int, score float64, res Result) {
					if step != nil {
						step.Candidates = append(step.Candidates, SweepCandidate{Nodes: nodes, Score: score})
					}
					if !found || score > bestScore {
						bestScore = score
						best = res
						found = true
						improved = true
					}
				})
		}
		if step != nil {
			step.Improved = improved
		}
		return improved
	}

	// observed wraps evaluate with SweepStep construction and delivery
	// when an observer is installed.
	observed := func(round int, threshold float64, removed []int) bool {
		if opts.Observer == nil {
			return evaluate(nil)
		}
		step := SweepStep{Round: round, Threshold: threshold, RemovedLinks: removed}
		improved := evaluate(&step)
		opts.Observer(step)
		return improved
	}

	observed(0, 0, nil) // step 1: initial selection on the full graph

	round := 1
	for i := 0; i < len(order); {
		// Remove the minimum-metric edge — and, unless reproducing the
		// paper's literal single-edge removal, all edges tied with it.
		v := metric(order[i])
		var removed []int
		alive[order[i]] = false
		if opts.Observer != nil {
			removed = append(removed, order[i])
		}
		i++
		if !opts.PaperSingleEdgeRemoval {
			for i < len(order) && metric(order[i]) == v {
				alive[order[i]] = false
				if opts.Observer != nil {
					removed = append(removed, order[i])
				}
				i++
			}
		}
		improved := observed(round, v, removed)
		round++
		if opts.PaperEarlyStop && !improved {
			break
		}
	}

	if !found {
		return Result{}, fmt.Errorf("%w: no component provides %d connected eligible compute nodes",
			ErrNoFeasibleSet, req.M)
	}
	return best, nil
}
