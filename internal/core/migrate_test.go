package core

import (
	"testing"

	"nodeselect/internal/topology"
)

// A current placement naming a node that has been pruned from the
// re-discovered topology must degrade to zero minresource — strongly
// recommending the move — rather than panic or error (issue-5 satellite
// regression: the one migration that matters most must not be blocked).
func TestAdviseMigrationDeadNodeInCurrent(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	for _, current := range [][]int{{0, 7}, {-1, 0}} {
		adv, err := AdviseMigration(s, current, Request{M: 2}, MigrationPolicy{MinGain: 0.25})
		if err != nil {
			t.Fatalf("current %v: %v", current, err)
		}
		if adv.Current.MinResource != 0 {
			t.Fatalf("current %v scored %v, want 0 for a dead placement", current, adv.Current.MinResource)
		}
		if !adv.Move {
			t.Fatalf("current %v: must recommend moving off a pruned node", current)
		}
		if adv.Gain <= 0 {
			t.Fatalf("current %v: gain = %v, want positive", current, adv.Gain)
		}
	}
}

// A node the request's eligibility excludes — how the service marks
// unreachable/stale measurements — counts as dead for the current set.
func TestAdviseMigrationStaleNodeInCurrent(t *testing.T) {
	g := chain(4)
	s := topology.NewSnapshot(g)
	notOne := func(id int) bool { return id != 1 }
	adv, err := AdviseMigration(s, []int{0, 1}, Request{M: 2, Eligible: notOne}, MigrationPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Current.MinResource != 0 {
		t.Fatalf("stale current scored %v, want 0", adv.Current.MinResource)
	}
	if !adv.Move {
		t.Fatal("must recommend moving off a stale node")
	}
	for _, id := range adv.Candidate.Nodes {
		if id == 1 {
			t.Fatalf("candidate %v includes the excluded node", adv.Candidate.Nodes)
		}
	}
}

// A current set split across partitioned components would panic Score's
// route walk; it must instead score as dead.
func TestAdviseMigrationPartitionedCurrent(t *testing.T) {
	g := topology.NewGraph()
	for i := 0; i < 4; i++ {
		g.AddComputeNode(nodeName(i))
	}
	g.Connect(0, 1, 100e6, topology.LinkOpts{})
	g.Connect(2, 3, 100e6, topology.LinkOpts{})
	s := topology.NewSnapshot(g)

	adv, err := AdviseMigration(s, []int{0, 2}, Request{M: 2}, MigrationPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Current.MinResource != 0 {
		t.Fatalf("partitioned current scored %v, want 0", adv.Current.MinResource)
	}
	if !adv.Move {
		t.Fatal("must recommend moving off a partitioned placement")
	}
	if len(adv.Candidate.Nodes) != 2 || !g.Reachable(adv.Candidate.Nodes[0], adv.Candidate.Nodes[1]) {
		t.Fatalf("candidate %v is not a connected pair", adv.Candidate.Nodes)
	}
}
