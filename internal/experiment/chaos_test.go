package experiment

import "testing"

// TestChaosSchedule is the fault-tolerance acceptance test: with ~20% of
// agents hung or crashed, the collector must never block past its deadline
// bound, /select must keep answering from last-known-good data with the
// degradation declared, /healthz must report degraded, and full health must
// return after repair.
func TestChaosSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock timeouts; skipped in -short")
	}
	res, err := RunChaos(ChaosOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxPollSeconds > res.DeadlineBoundSeconds {
		t.Errorf("poll blocked %.3fs, deadline bound %.3fs",
			res.MaxPollSeconds, res.DeadlineBoundSeconds)
	}
	if len(res.Rounds) < 3 {
		t.Fatalf("expected baseline + 2 fault rounds, got %d", len(res.Rounds))
	}
	base := res.Rounds[0]
	if base.State != "ok" || !base.SelectOK || base.SelectDegraded {
		t.Errorf("baseline round unhealthy: %+v", base)
	}
	for _, rd := range res.Rounds[1:] {
		if !rd.SelectOK {
			t.Errorf("round %d: /select stopped answering", rd.Round)
		}
		if rd.State != "degraded" {
			t.Errorf("round %d: state %q, want degraded", rd.Round, rd.State)
		}
		if !rd.SelectDegraded {
			t.Errorf("round %d: select response did not declare degradation", rd.Round)
		}
		if rd.FreshFraction >= 1 {
			t.Errorf("round %d: fresh fraction %.2f with faults active", rd.Round, rd.FreshFraction)
		}
	}
	if !res.Recovered {
		t.Errorf("service never recovered: state %q after %d polls",
			res.RecoveredState, res.RecoveryPolls)
	}
}
