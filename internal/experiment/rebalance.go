package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/netsim"
	"nodeselect/internal/rebalance"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// RebalanceResult compares a long-running leased job under three
// controller modes after competing load lands on its initial nodes
// mid-run: stay (controller off), advisory (proposals wait one operator
// check before being applied), and auto (confirmed proposals applied
// immediately).
type RebalanceResult struct {
	// StayElapsed, AdvisoryElapsed and AutoElapsed are the total job
	// times under each mode.
	StayElapsed, AdvisoryElapsed, AutoElapsed float64
	// AdvisoryAt and AutoAt are the simulation times of the handover
	// (0 when the mode never migrated).
	AdvisoryAt, AutoAt float64
	// FromNodes is the initial placement; AdvisoryTo and AutoTo are the
	// destinations each mode handed over to (empty if it never moved).
	FromNodes, AdvisoryTo, AutoTo []string
}

// Controller modes the rebalance experiment compares.
const (
	rebalStay = iota
	rebalAdvisory
	rebalAuto
)

// rebalanceJob runs the 60-round loosely synchronous workload with the
// continuous re-placement controller in the given mode. Unlike
// migrationJob, which consults core.AdviseMigration directly, this drives
// the production stack: a shaped lease in the reservation ledger and a
// rebalance.Controller ticked once per check epoch, with the handover
// executed through Ledger.Migrate.
func rebalanceJob(mode int) (elapsed, movedAt float64, from, to []string, err error) {
	const (
		rounds      = 60
		loadAfter   = 10
		competitors = 4
		stateBytes  = 64e6
		checkEvery  = 5
	)
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{LoadAvgWindow: 30})
	g := net.Graph()
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{Period: 2, History: 10})
	col.Start(e)
	e.RunUntil(30)

	// The controller and ledger share a clock derived from the simulation,
	// so cooldowns and TTLs run on simulated — not wall — time.
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	simNow := func() time.Time { return base.Add(time.Duration(e.Now() * float64(time.Second))) }

	req := core.Request{M: 4}
	snap, err := col.Snapshot(remos.Window, true)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	sel, err := core.Balanced(snap, req)
	if err != nil {
		return 0, 0, nil, nil, err
	}
	nodes := sel.Nodes
	from = sel.Names(g)

	ledger, err := lease.New(g, lease.Options{Now: simNow, MaxTTL: 2 * time.Hour})
	if err != nil {
		return 0, 0, nil, nil, err
	}
	defer ledger.Close()
	shape := &lease.Shape{M: req.M, Algo: core.AlgoBalanced}
	info, err := ledger.AcquireShaped(context.Background(), snap, lease.Demand{CPU: 0.05}, time.Hour, shape,
		func(context.Context, *topology.Snapshot, float64) ([]int, error) { return nodes, nil })
	if err != nil {
		return 0, 0, nil, nil, err
	}

	ctl := rebalance.New(ledger, rebalance.Policy{
		MinGain:       0.5,
		ConfirmEpochs: 2,
		Cooldown:      10 * time.Minute,
		Auto:          mode == rebalAuto,
		Now:           simNow,
	}, nil)
	defer ctl.Close()

	// handover re-homes the running job onto the ledger's (new) node set,
	// paying the per-node state transfer.
	handover := func(names []string) error {
		next := make([]int, len(names))
		for i, name := range names {
			next[i] = g.MustNode(name)
		}
		done, need := 0, len(nodes)
		for i := range nodes {
			if nodes[i] == next[i] {
				need--
				continue
			}
			net.StartFlow(nodes[i], next[i], stateBytes, netsim.Application, func() { done++ })
		}
		e.RunWhile(func() bool { return done < need })
		nodes = next
		to = names
		movedAt = e.Now()
		return nil
	}

	iter := apps.DefaultFFT()
	iter.Iterations = 1
	start := e.Now()

	for round := 0; round < rounds; round++ {
		if round == loadAfter {
			for _, id := range nodes {
				for k := 0; k < competitors; k++ {
					net.StartTask(id, 1e9, netsim.Background, nil)
				}
			}
		}
		if mode != rebalStay && round > loadAfter && round%checkEvery == 0 {
			bg, err := col.Snapshot(remos.Window, true)
			if err != nil {
				return 0, 0, from, to, err
			}
			// Advisory: the operator acts one check after the proposal was
			// raised — apply what the previous epoch left pending, then
			// tick. Auto applies inside Tick itself.
			if mode == rebalAdvisory {
				for _, p := range ctl.Proposals() {
					if _, err := ctl.Apply(context.Background(), bg, p.Lease); err != nil {
						return 0, 0, from, to, err
					}
				}
			}
			ctl.Tick(context.Background(), bg, rebalance.Epoch{Polls: round, Ledger: ledger.Version()}, false)
			cur, ok := ledger.Get(info.ID)
			if !ok {
				return 0, 0, from, to, fmt.Errorf("experiment: lease %s vanished", info.ID)
			}
			if to == nil && !sameStrings(cur.Nodes, from) || to != nil && !sameStrings(cur.Nodes, to) {
				if err := handover(cur.Nodes); err != nil {
					return 0, 0, from, to, err
				}
			}
		}
		if _, err := apps.Run(net, iter, nodes); err != nil {
			return 0, 0, from, to, err
		}
	}
	return e.Now() - start, movedAt, from, to, nil
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunRebalance runs the stay, advisory and auto controller modes on
// identical scenarios and combines the outcomes.
func RunRebalance(cfg Config) (RebalanceResult, error) {
	_ = cfg // the scenario is deterministic; cfg reserved for future knobs
	var res RebalanceResult
	var err error
	if res.StayElapsed, _, res.FromNodes, _, err = rebalanceJob(rebalStay); err != nil {
		return res, fmt.Errorf("experiment: rebalance stay: %w", err)
	}
	if res.AdvisoryElapsed, res.AdvisoryAt, _, res.AdvisoryTo, err = rebalanceJob(rebalAdvisory); err != nil {
		return res, fmt.Errorf("experiment: rebalance advisory: %w", err)
	}
	if res.AutoElapsed, res.AutoAt, _, res.AutoTo, err = rebalanceJob(rebalAuto); err != nil {
		return res, fmt.Errorf("experiment: rebalance auto: %w", err)
	}
	return res, nil
}

// FormatRebalance renders the controller-mode comparison.
func FormatRebalance(r RebalanceResult) string {
	var b strings.Builder
	b.WriteString("Continuous re-placement: 60-round leased job, competitors arrive at round 10\n")
	fmt.Fprintf(&b, "  stay (controller off):   %.1f s\n", r.StayElapsed)
	fmt.Fprintf(&b, "  advisory (operator lag): %.1f s", r.AdvisoryElapsed)
	if len(r.AdvisoryTo) > 0 {
		fmt.Fprintf(&b, "  moved at t=%.1fs -> %s", r.AdvisoryAt, strings.Join(r.AdvisoryTo, ","))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  auto:                    %.1f s", r.AutoElapsed)
	if len(r.AutoTo) > 0 {
		fmt.Fprintf(&b, "  moved at t=%.1fs -> %s", r.AutoAt, strings.Join(r.AutoTo, ","))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  initial nodes: %s\n", strings.Join(r.FromNodes, ","))
	if r.AdvisoryElapsed > 0 && r.AutoElapsed > 0 && r.StayElapsed > 0 {
		fmt.Fprintf(&b, "  speedup over stay: advisory %.2fx, auto %.2fx\n",
			r.StayElapsed/r.AdvisoryElapsed, r.StayElapsed/r.AutoElapsed)
	}
	return b.String()
}
