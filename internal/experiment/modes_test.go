package experiment

import (
	"fmt"
	"strings"
	"testing"
)

func TestModeAblationRuns(t *testing.T) {
	cfg := fastConfig()
	cells, err := RunModeAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d modes, want 4", len(cells))
	}
	for _, c := range cells {
		if c.Elapsed.Mean < 48 {
			t.Errorf("mode %v elapsed %v below the unloaded reference", c.Mode, c.Elapsed.Mean)
		}
		if c.Elapsed.N != cfg.Replications {
			t.Errorf("mode %v has %d samples", c.Mode, c.Elapsed.N)
		}
	}
	out := FormatModeAblation(cells)
	for _, want := range []string{"current", "window", "forecast", "trend"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestFailoverScenario(t *testing.T) {
	res, err := RunFailover(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CrossesFailure {
		t.Fatalf("selection straddled the failed trunk: %v", res.Selected)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %d nodes", len(res.Selected))
	}
	// The loaded panama nodes must be avoided too: the idle healthy
	// component is gibraltar.
	for _, name := range res.Selected {
		var idx int
		if _, err := fmt.Sscanf(name, "m-%d", &idx); err != nil || idx < 7 || idx > 12 {
			t.Errorf("selected %s, want gibraltar nodes m-7..m-12", name)
		}
	}
	if res.Elapsed <= 0 || res.Elapsed > 100 {
		t.Errorf("elapsed = %v", res.Elapsed)
	}
	if res.NaiveCompleted {
		t.Error("straddling placement should stall")
	}
	out := FormatFailover(res)
	if !strings.Contains(out, "crosses failed trunk:   false") {
		t.Errorf("format:\n%s", out)
	}
}

func TestPeriodSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("period sweep in short mode")
	}
	cfg := fastConfig()
	points, err := RunPeriodSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(PeriodSweepValues) {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Auto.Mean < 48 {
			t.Errorf("period %v: elapsed %v below unloaded reference", p.Period, p.Auto.Mean)
		}
	}
	if !strings.Contains(FormatPeriodSweep(points), "polls/minute") {
		t.Error("format missing cost column")
	}
}

func TestPatternAblationRuns(t *testing.T) {
	cfg := fastConfig()
	cells, err := RunPatternAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	for _, c := range cells {
		if c.Elapsed.Mean <= 0 {
			t.Errorf("policy %s has non-positive elapsed", c.Policy)
		}
	}
	out := FormatPatternAblation(cells)
	if !strings.Contains(out, "aware/pipeline") {
		t.Error("format missing policy")
	}
}

func TestHeteroAblationReferenceCapacityWins(t *testing.T) {
	cfg := fastConfig()
	cells, err := RunHeteroAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	byPolicy := map[string]HeteroCell{}
	for _, c := range cells {
		byPolicy[c.Policy] = c
	}
	ref := byPolicy["balanced/ref-100M"]
	own := byPolicy["balanced/own-fraction"]
	// The reference-capacity convention must avoid the 10 Mbps cluster
	// and win decisively (§3.3 heterogeneous links).
	for _, name := range ref.Nodes {
		if strings.HasPrefix(name, "leg-") {
			t.Fatalf("ref-capacity selected the legacy cluster: %v", ref.Nodes)
		}
	}
	if ref.Elapsed >= own.Elapsed {
		t.Fatalf("ref-capacity (%v) did not beat own-fraction (%v)", ref.Elapsed, own.Elapsed)
	}
	if !strings.Contains(FormatHeteroAblation(cells), "ref-100M") {
		t.Error("format missing policy name")
	}
}

func TestAutosizeRuns(t *testing.T) {
	cfg := fastConfig()
	results, err := RunAutosize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d apps, want 3", len(results))
	}
	for _, res := range results {
		if len(res.Rows) != 7 {
			t.Fatalf("%s: got %d rows, want 7 (m = 2..8)", res.App, len(res.Rows))
		}
		if res.ChosenM < 2 || res.ChosenM > 8 {
			t.Fatalf("%s: chosen m = %d out of range", res.App, res.ChosenM)
		}
		// The model must not be wildly wrong: the chosen count's actual
		// time must be within 50% of the simulated optimum.
		if res.Regret > 0.5 {
			t.Fatalf("%s: autosizing regret %.2f too large", res.App, res.Regret)
		}
		// Predictions and actuals both improve from m=2 to m=3.
		if res.Rows[1].Predicted >= res.Rows[0].Predicted {
			t.Errorf("%s: prediction did not improve from m=2 to m=3", res.App)
		}
		if res.Rows[1].Actual >= res.Rows[0].Actual {
			t.Errorf("%s: actual did not improve from m=2 to m=3", res.App)
		}
	}
	out := FormatAutosize(results)
	for _, want := range []string{"FFT", "Airshed", "MRI", "chosen m"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestFormatTable1LongSignificance(t *testing.T) {
	rows := []Row{{
		App: "FFT", NodeCount: 4, Reference: 48,
		Random: [3]Cell{
			{Mean: 100, CI95: 5, N: 4, Values: []float64{95, 100, 102, 103}},
			{Mean: 100, CI95: 5, N: 4, Values: []float64{95, 100, 102, 103}},
			{Mean: 100, CI95: 5, N: 4, Values: []float64{95, 100, 102, 103}},
		},
		Auto: [3]Cell{
			{Mean: 60, CI95: 3, N: 4, Values: []float64{58, 60, 61, 61}},
			{Mean: 99, CI95: 5, N: 4, Values: []float64{94, 99, 101, 102}},
			{Mean: 60, CI95: 3, N: 4, Values: []float64{58, 60, 61, 61}},
		},
	}}
	out := FormatTable1Long(rows)
	if !strings.Contains(out, "p=0.000 *") && !strings.Contains(out, "p=0.001 *") {
		t.Errorf("clear improvement not flagged significant:\n%s", out)
	}
	if !strings.Contains(out, "± ") || !strings.Contains(out, "n=4") {
		t.Errorf("CI rendering missing:\n%s", out)
	}
	// The near-identical traffic cell must not be starred.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "traffic:") && !strings.Contains(line, "load+") {
			if strings.Contains(line, "*") {
				t.Errorf("non-significant cell starred: %s", line)
			}
		}
	}
	// CSV includes every cell.
	csv := Table1CSV(rows)
	if !strings.Contains(csv, "FFT,4,load,random,100.000") {
		t.Errorf("CSV missing cells:\n%s", csv)
	}
}
