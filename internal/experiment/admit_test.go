package experiment

import (
	"testing"
	"time"

	"nodeselect/internal/loadgen"
)

// TestRunAdmitSmoke keeps the harness wired end to end: tiny reps, both
// modes, a well-formed report. The full-size run (and its thresholds) is
// `make admit`; asserting 3x here would couple unit tests to CI machine
// speed.
func TestRunAdmitSmoke(t *testing.T) {
	r, err := RunAdmit(AdmitOptions{
		Seed:        1,
		Requests:    120,
		Reps:        2,
		Concurrency: 16,
		Window:      time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Serial.ThroughputSamples) != 2 || len(r.Batched.ThroughputSamples) != 2 {
		t.Fatalf("sample counts %d/%d, want 2/2",
			len(r.Serial.ThroughputSamples), len(r.Batched.ThroughputSamples))
	}
	for _, m := range []loadgen.AdmitModeReport{r.Serial, r.Batched} {
		if m.ThroughputRPS <= 0 || m.LatencyMs.P99 <= 0 {
			t.Fatalf("degenerate mode report: %+v", m)
		}
		if m.ErrorRate != 0 {
			t.Fatalf("admission errors under light load: %+v", m)
		}
	}
	if r.Speedup <= 0 || r.MinSpeedup != 3.0 || r.MaxP99Ratio != 2.0 || r.Alpha != 0.005 {
		t.Fatalf("gate thresholds not echoed: %+v", r)
	}
	out := FormatAdmit(r)
	if out == "" {
		t.Fatal("empty format")
	}
}
