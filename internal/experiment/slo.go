package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/loadgen"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/selectsvc"
	"nodeselect/internal/testbed"
)

// SLOOptions parameterizes the sustained-load SLO run: an in-process
// selectd over the CMU testbed topology, hammered with plain /select
// requests, the per-request latencies reduced to the percentile summary in
// loadgen.SLOReport.
type SLOOptions struct {
	// Seed randomizes the background load painted onto the topology.
	Seed int64
	// Requests, Warmup, Concurrency mirror loadgen.SLOConfig.
	Requests    int
	Warmup      int
	Concurrency int
	// M is the node count each /select asks for (default 4).
	M int
	// NoTrace disables request tracing — used to measure the tracing
	// overhead by differencing a traced and an untraced run.
	NoTrace bool
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.Requests <= 0 {
		o.Requests = 5000
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.M <= 0 {
		o.M = 4
	}
	return o
}

// RunSLO stands up an in-process placement service (static CMU-testbed
// source, plan cache on, tracing per options) and runs the sustained-load
// harness against its handler. The returned report is what `make slo`
// writes to slo.json and what cmd/benchdiff's -slo mode gates on.
func RunSLO(opt SLOOptions) (loadgen.SLOReport, error) {
	opt = opt.withDefaults()
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	rng := randx.New(opt.Seed).Split("slo")
	for _, id := range g.ComputeNodes() {
		src.SetLoad(id, 2*rng.Float64())
	}
	cfg := selectsvc.Config{
		Collector:   remos.CollectorConfig{History: 8},
		DefaultMode: remos.Current,
		Seed:        opt.Seed,
	}
	cfg.Trace.Disabled = opt.NoTrace
	svc := selectsvc.New(src, cfg)
	if err := svc.Poll(); err != nil {
		return loadgen.SLOReport{}, fmt.Errorf("slo: initial poll: %w", err)
	}
	return loadgen.RunSLO(loadgen.SLOConfig{
		Handler:     svc.Handler(),
		Body:        []byte(fmt.Sprintf(`{"m": %d}`, opt.M)),
		Requests:    opt.Requests,
		Warmup:      opt.Warmup,
		Concurrency: opt.Concurrency,
	})
}

// FormatSLO renders a report as a human-readable block (slo.json carries
// the same numbers machine-readably).
func FormatSLO(r loadgen.SLOReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO run: %s, %d requests, concurrency %d\n", r.Target, r.Requests, r.Concurrency)
	fmt.Fprintf(&b, "  throughput  %.0f req/s over %.2fs\n", r.ThroughputRPS, r.DurationSeconds)
	fmt.Fprintf(&b, "  latency ms  p50 %.3f  p90 %.3f  p99 %.3f  p999 %.3f  max %.3f\n",
		r.LatencyMs.P50, r.LatencyMs.P90, r.LatencyMs.P99, r.LatencyMs.P999, r.LatencyMs.Max)
	fmt.Fprintf(&b, "  errors      %d (rate %.4f), statuses %v\n", r.Errors, r.ErrorRate, r.StatusClasses)
	return b.String()
}
