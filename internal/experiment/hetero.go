package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
)

// HeteroCell is one selection policy's outcome on the heterogeneous
// testbed.
type HeteroCell struct {
	// Policy names the variant.
	Policy string
	// Nodes is the chosen placement (names).
	Nodes []string
	// Elapsed is the FFT execution time on that placement.
	Elapsed float64
}

// RunHeteroAblation demonstrates §3.3's heterogeneous-links rule: "a
// reference link has to be specified for balancing against computation."
// On a testbed with 155/100/10 Mbps clusters where the fast clusters carry
// mild CPU load, the per-link fractional convention rates the idle 10 Mbps
// cluster as perfectly available (bwfactor 1.0) and selects it; with a
// 100 Mbps reference capacity the same algorithm correctly discounts the
// slow links and pays a small CPU penalty for fast communication instead.
func RunHeteroAblation(cfg Config) ([]HeteroCell, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		policy string
		req    core.Request
		algo   string
	}{
		{"compute-only", core.Request{M: 4}, core.AlgoCompute},
		{"balanced/own-fraction", core.Request{M: 4}, core.AlgoBalanced},
		{"balanced/ref-100M", core.Request{M: 4, RefCapacity: 100e6}, core.AlgoBalanced},
	}
	var out []HeteroCell
	for _, v := range variants {
		e := sim.NewEngine()
		net := netsim.New(e, testbed.HeteroClusters(), netsim.Config{})
		g := net.Graph()
		// Mild competing load on the fast clusters: one long-running job
		// per node (load average ~1, cpu 0.5).
		for _, prefix := range []string{"atm", "eth"} {
			for i := 1; i <= 5; i++ {
				net.StartTask(g.MustNode(fmt.Sprintf("%s-%d", prefix, i)), 1e9, netsim.Background, nil)
			}
		}
		col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{
			Period: cfg.CollectorPeriod, History: cfg.CollectorHistory,
		})
		col.Start(e)
		e.RunUntil(cfg.Warmup)

		snap, err := col.Snapshot(cfg.Mode, false)
		if err != nil {
			return nil, err
		}
		sel, err := core.Select(v.algo, snap, v.req, nil)
		if err != nil {
			return nil, fmt.Errorf("experiment: hetero %s: %w", v.policy, err)
		}
		res, err := apps.Run(net, apps.DefaultFFT(), sel.Nodes)
		if err != nil {
			return nil, fmt.Errorf("experiment: hetero %s: %w", v.policy, err)
		}
		out = append(out, HeteroCell{
			Policy:  v.policy,
			Nodes:   sel.Names(g),
			Elapsed: res.Elapsed(),
		})
	}
	return out, nil
}

// FormatHeteroAblation renders the heterogeneity comparison.
func FormatHeteroAblation(cells []HeteroCell) string {
	var b strings.Builder
	b.WriteString("FFT on the heterogeneous testbed (155/100/10 Mbps clusters, fast clusters loaded)\n")
	fmt.Fprintf(&b, "%-24s %14s   %s\n", "policy", "elapsed (s)", "nodes")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-24s %14.1f   %s\n", c.Policy, c.Elapsed, strings.Join(c.Nodes, ", "))
	}
	return b.String()
}
