package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/remos"
	"nodeselect/internal/stats"
)

// ModeCell is one Remos query mode's outcome in the measurement-mode
// ablation.
type ModeCell struct {
	Mode    remos.Mode
	Elapsed Cell
}

// RunModeAblation compares the quality of automatic selection when it is
// driven by each of the Remos query modes — the latest sample, a window of
// history, an exponential smooth, or a linear trend extrapolation. The
// paper's framework "simply uses the most recent measurements as a
// forecast"; this ablation quantifies what the choice of aggregation is
// worth on the FFT under load+traffic.
func RunModeAblation(cfg Config) ([]ModeCell, error) {
	cfg = cfg.withDefaults()
	var out []ModeCell
	for _, mode := range []remos.Mode{remos.Current, remos.Window, remos.Forecast, remos.Trend} {
		c := cfg
		c.Mode = mode
		var s stats.Sample
		for rep := 0; rep < c.Replications; rep++ {
			elapsed, _, err := RunOnce(c, apps.DefaultFFT(), CondBoth, "balanced", rep+3000)
			if err != nil {
				return nil, fmt.Errorf("experiment: mode %v: %w", mode, err)
			}
			s.Add(elapsed)
		}
		out = append(out, ModeCell{
			Mode:    mode,
			Elapsed: Cell{Mean: s.Mean(), CI95: s.CI95(), N: s.N()},
		})
	}
	return out, nil
}

// FormatModeAblation renders the measurement-mode comparison.
func FormatModeAblation(cells []ModeCell) string {
	var b strings.Builder
	b.WriteString("FFT under load+traffic, by Remos query mode\n")
	fmt.Fprintf(&b, "%-10s %14s %12s\n", "mode", "elapsed (s)", "95% CI")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-10s %14.1f %11.1f\n", c.Mode, c.Elapsed.Mean, c.Elapsed.CI95)
	}
	return b.String()
}
