package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// FailoverResult reports the link-failure scenario: with the
// gibraltar-suez ATM trunk down and the panama nodes loaded, measurement-
// driven selection must place the job inside one healthy component, while
// a placement that straddles the failed trunk never finishes.
type FailoverResult struct {
	// Selected is the placement chosen from post-failure measurements.
	Selected []string
	// Elapsed is the FFT execution time on that placement.
	Elapsed float64
	// CrossesFailure reports whether the selection straddled the failed
	// trunk (it must not).
	CrossesFailure bool
	// NaiveCompleted reports whether the straddling placement finished
	// within the simulation budget (it must not).
	NaiveCompleted bool
	// NaiveBudget is the simulated time the straddling placement was
	// given.
	NaiveBudget float64
}

// RunFailover executes the failure scenario.
func RunFailover(cfg Config) (FailoverResult, error) {
	cfg = cfg.withDefaults()
	res := FailoverResult{NaiveBudget: 600}

	// Measurement-driven path.
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	g := net.Graph()
	// The panama nodes carry competing load, so the tempting idle nodes
	// sit on gibraltar and suez — on opposite sides of the failure.
	for i := 1; i <= 6; i++ {
		for k := 0; k < 2; k++ {
			net.StartTask(g.MustNode(fmt.Sprintf("m-%d", i)), 1e9, netsim.Background, nil)
		}
	}
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{
		Period: cfg.CollectorPeriod, History: cfg.CollectorHistory,
	})
	col.Start(e)
	e.RunUntil(30)
	atm := trunkLink(g)
	net.FailLink(atm)
	e.RunUntil(60)

	snap, err := col.Snapshot(cfg.Mode, false)
	if err != nil {
		return res, err
	}
	sel, err := core.Balanced(snap, core.Request{M: 4})
	if err != nil {
		return res, err
	}
	res.Selected = sel.Names(g)
	res.CrossesFailure = crossesTrunk(res.Selected)
	run, err := apps.Run(net, apps.DefaultFFT(), sel.Nodes)
	if err != nil {
		return res, err
	}
	res.Elapsed = run.Elapsed()

	// Naive path: a placement straddling the failed trunk stalls.
	e2 := sim.NewEngine()
	net2 := netsim.New(e2, testbed.CMU(), netsim.Config{})
	g2 := net2.Graph()
	net2.FailLink(trunkLink(g2))
	naive := []int{
		g2.MustNode("m-7"), g2.MustNode("m-8"),
		g2.MustNode("m-13"), g2.MustNode("m-14"),
	}
	done := false
	apps.DefaultFFT().Start(net2, naive, func(apps.Result) { done = true })
	e2.RunUntil(res.NaiveBudget)
	res.NaiveCompleted = done
	return res, nil
}

// trunkLink returns the gibraltar-suez link ID of a CMU testbed graph.
func trunkLink(g *topology.Graph) int {
	gib, suez := g.MustNode("gibraltar"), g.MustNode("suez")
	for l := 0; l < g.NumLinks(); l++ {
		link := g.Link(l)
		if (link.A == gib && link.B == suez) || (link.A == suez && link.B == gib) {
			return l
		}
	}
	panic("experiment: CMU testbed without a gibraltar-suez trunk")
}

// crossesTrunk reports whether the named selection has nodes on both sides
// of the gibraltar-suez trunk (suez hosts m-13..m-18).
func crossesTrunk(names []string) bool {
	suezSide, otherSide := false, false
	for _, name := range names {
		var idx int
		if _, err := fmt.Sscanf(name, "m-%d", &idx); err != nil {
			continue
		}
		if idx >= 13 {
			suezSide = true
		} else {
			otherSide = true
		}
	}
	return suezSide && otherSide
}

// FormatFailover renders the failure scenario.
func FormatFailover(r FailoverResult) string {
	var b strings.Builder
	b.WriteString("Link failure: gibraltar-suez trunk down, panama loaded, select 4 nodes\n")
	fmt.Fprintf(&b, "  selected:               %s\n", strings.Join(r.Selected, ", "))
	fmt.Fprintf(&b, "  crosses failed trunk:   %v\n", r.CrossesFailure)
	fmt.Fprintf(&b, "  elapsed:                %.1f s\n", r.Elapsed)
	fmt.Fprintf(&b, "  straddling placement finished within %.0f s: %v\n",
		r.NaiveBudget, r.NaiveCompleted)
	return b.String()
}
