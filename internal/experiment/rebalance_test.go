package experiment

import (
	"strings"
	"testing"
)

func TestRebalanceControllerBeatsStay(t *testing.T) {
	res, err := RunRebalance(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AdvisoryTo) == 0 || len(res.AutoTo) == 0 {
		t.Fatalf("controller never migrated: advisory=%v auto=%v", res.AdvisoryTo, res.AutoTo)
	}
	if res.AdvisoryElapsed >= res.StayElapsed {
		t.Fatalf("advisory (%v) did not beat stay (%v)", res.AdvisoryElapsed, res.StayElapsed)
	}
	if res.AutoElapsed >= res.StayElapsed {
		t.Fatalf("auto (%v) did not beat stay (%v)", res.AutoElapsed, res.StayElapsed)
	}
	// Auto applies at confirmation; advisory waits for the operator's
	// next check, so it cannot move earlier.
	if res.AutoAt > res.AdvisoryAt {
		t.Errorf("auto moved at %v, after advisory at %v", res.AutoAt, res.AdvisoryAt)
	}
	if len(res.FromNodes) == 0 {
		t.Error("initial placement not recorded")
	}
	out := FormatRebalance(res)
	for _, want := range []string{"stay", "advisory", "auto", "speedup over stay"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
}
