package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nodeselect/internal/gossip"
	"nodeselect/internal/measure"
	"nodeselect/internal/randx"
)

// GossipOptions parameterizes the gossip convergence experiment: an
// in-process mesh of publishing agents on the synchronous MemNetwork
// transport, driven round by round on a manual clock — fully
// deterministic under one seed, fast enough to run under -race in CI.
type GossipOptions struct {
	// Seed drives peer selection, the fault stream and the churn
	// schedule.
	Seed int64
	// Sizes are the fleet sizes to measure (default 50, 100, 200, 500).
	Sizes []int
	// Trials is the number of propagation waves measured per size
	// (default 5). Each wave publishes one fresh observation and records
	// the round at which every live node first holds it, so a size
	// contributes ~Trials×Agents propagation samples to the CDF.
	Trials int
	// ChurnFraction is the fraction of nodes killed before each wave and
	// revived after it (default 0.05): propagation is measured under
	// membership churn, not on a quiet mesh.
	ChurnFraction float64
	// P99Budget is the acceptance bound, in gossip rounds, on the p99 of
	// propagation time (default 5).
	P99Budget float64
	// StalenessBound is the age bound, in seconds, no live entry may
	// exceed while its origin and the observing node stay live (default
	// gossip.DefaultFreshFor). One gossip round advances the clock 1s.
	StalenessBound float64
}

func (o GossipOptions) withDefaults() GossipOptions {
	if len(o.Sizes) == 0 {
		o.Sizes = []int{50, 100, 200, 500}
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.ChurnFraction <= 0 || o.ChurnFraction >= 0.5 {
		o.ChurnFraction = 0.05
	}
	if o.P99Budget <= 0 {
		o.P99Budget = 5
	}
	if o.StalenessBound <= 0 {
		o.StalenessBound = gossip.DefaultFreshFor
	}
	return o
}

// GossipSizeResult is one fleet size's measurements.
type GossipSizeResult struct {
	Agents int `json:"agents"`

	// Propagation-time distribution in gossip rounds: the round at which
	// a live node first held a freshly published observation, across all
	// waves and receivers.
	Samples int     `json:"samples"`
	P50     float64 `json:"p50_rounds"`
	P90     float64 `json:"p90_rounds"`
	P99     float64 `json:"p99_rounds"`
	Max     float64 `json:"max_rounds"`

	// Partition/heal: rounds from heal to full digest convergence.
	HealRounds int  `json:"heal_rounds"`
	Converged  bool `json:"converged"`

	// Staleness: the worst live-entry age observed on always-live nodes
	// during the steady-state publishing phase, against the bound.
	MaxEntryAgeSeconds float64 `json:"max_entry_age_seconds"`
	StalenessBound     float64 `json:"staleness_bound_seconds"`
	StalenessOK        bool    `json:"staleness_ok"`

	PropagationOK bool `json:"propagation_ok"`
}

// GossipReport is the full convergence report.
type GossipReport struct {
	Seed      int64              `json:"seed"`
	P99Budget float64            `json:"p99_budget_rounds"`
	Sizes     []GossipSizeResult `json:"sizes"`
	// Pass is the acceptance verdict: every size propagated within the
	// p99 budget, converged after a healed partition, and kept live
	// entries inside the staleness bound.
	Pass bool `json:"pass"`
}

// gossipFleet is one in-process mesh under test.
type gossipFleet struct {
	n     int
	clk   *measure.Manual
	net   *gossip.MemNetwork
	nodes []*gossip.Node
	names []string
	seq   float64 // measurement-clock feed for publishes
}

func newGossipFleet(n int, seed int64) *gossipFleet {
	f := &gossipFleet{
		n:     n,
		clk:   measure.NewManual(time.Unix(10_000, 0)),
		net:   gossip.NewMemNetwork(seed),
		names: make([]string, n),
		nodes: make([]*gossip.Node, n),
	}
	for i := range f.names {
		f.names[i] = fmt.Sprintf("n%d", i)
	}
	for i := range f.nodes {
		peers := make([]string, 0, n-1)
		for j, p := range f.names {
			if j != i {
				peers = append(peers, p)
			}
		}
		f.nodes[i] = gossip.New(gossip.Config{
			Name:      f.names[i],
			Origin:    i,
			Peers:     peers,
			Transport: f.net.TransportFor(f.names[i]),
			Clock:     f.clk,
			Seed:      seed,
		})
		f.net.Join(f.nodes[i])
	}
	return f
}

// tick runs one gossip round on every live node and advances the shared
// clock one second.
func (f *gossipFleet) tick() {
	for i, nd := range f.nodes {
		if !f.net.Down(f.names[i]) {
			nd.Tick()
		}
	}
	f.clk.Advance(time.Second)
}

// publish emits a fresh observation from node i.
func (f *gossipFleet) publish(i int) gossip.Observation {
	f.seq++
	return f.nodes[i].Publish(f.seq, f.seq, f.seq/2, map[int]gossip.LinkReading{i: {Bits: f.seq * 1e6}})
}

// RunGossip measures the gossip plane's dissemination behavior across
// fleet sizes: propagation-time CDFs under churn, reconvergence after a
// healed partition, and the staleness bound live entries stay inside.
func RunGossip(opts GossipOptions) (GossipReport, error) {
	opts = opts.withDefaults()
	rep := GossipReport{Seed: opts.Seed, P99Budget: opts.P99Budget, Pass: true}
	rng := randx.New(opts.Seed).Split("gossip/experiment")
	for _, n := range opts.Sizes {
		if n < 2 {
			return rep, fmt.Errorf("experiment: gossip fleet size %d too small", n)
		}
		res := runGossipSize(n, opts, rng.Split(fmt.Sprintf("size/%d", n)))
		rep.Sizes = append(rep.Sizes, res)
		if !res.PropagationOK || !res.Converged || !res.StalenessOK {
			rep.Pass = false
		}
	}
	return rep, nil
}

func runGossipSize(n int, opts GossipOptions, rng *randx.Source) GossipSizeResult {
	res := GossipSizeResult{Agents: n, StalenessBound: opts.StalenessBound}
	f := newGossipFleet(n, opts.Seed)

	// Warm the mesh: everyone publishes once and the fleet runs a few
	// rounds, so stores and membership start from steady state.
	for i := 0; i < n; i++ {
		f.publish(i)
	}
	for r := 0; r < 8; r++ {
		f.tick()
	}

	// --- Propagation waves under churn -------------------------------
	var samples []int
	churn := int(float64(n) * opts.ChurnFraction)
	for trial := 0; trial < opts.Trials; trial++ {
		// Kill a fresh random subset for the duration of the wave.
		killed := map[int]bool{}
		for _, i := range rng.Perm(n)[:churn] {
			killed[i] = true
			f.net.Kill(f.names[i])
		}
		origin := rng.Intn(n)
		for killed[origin] {
			origin = rng.Intn(n)
		}
		obs := f.publish(origin)
		got := map[int]bool{origin: true}
		const maxRounds = 30
		for round := 1; round <= maxRounds && len(got) < n-len(killed); round++ {
			f.tick()
			for i := range f.nodes {
				if got[i] || killed[i] {
					continue
				}
				if cur, ok := f.nodes[i].Store().Get(origin); ok && cur.Stamp == obs.Stamp {
					got[i] = true
					samples = append(samples, round)
				}
			}
		}
		// Receivers that never saw the wave count at the cap, so a
		// non-converging mesh fails the budget instead of hiding.
		for i := 0; i < n; i++ {
			if !got[i] && !killed[i] {
				samples = append(samples, maxRounds)
			}
		}
		for i := range killed {
			f.net.Revive(f.names[i])
		}
		// A few quiet rounds so revived nodes reconcile before the next wave.
		for r := 0; r < 2*gossip.DefaultAntiEntropyEvery; r++ {
			f.tick()
		}
	}
	res.Samples = len(samples)
	sort.Ints(samples)
	q := func(p float64) float64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)-1))
		return float64(samples[i])
	}
	res.P50, res.P90, res.P99 = q(0.50), q(0.90), q(0.99)
	res.Max = float64(samples[len(samples)-1])
	res.PropagationOK = res.P99 <= opts.P99Budget

	// --- Partition / heal --------------------------------------------
	groups := make(map[string]int, n)
	for i, name := range f.names {
		groups[name] = i % 2
	}
	f.net.SetPartition(groups)
	// Both sides publish while separated.
	for i := 0; i < n; i++ {
		f.publish(i)
	}
	for r := 0; r < 8; r++ {
		f.tick()
	}
	f.net.Heal()
	healCap := 40 * gossip.DefaultAntiEntropyEvery
	res.HealRounds = healCap
	for r := 1; r <= healCap; r++ {
		f.tick()
		if meshConverged(f) {
			res.HealRounds = r
			res.Converged = true
			break
		}
	}

	// --- Staleness bound in steady state ------------------------------
	// Everyone republishes every 2 rounds (2 seconds); churn kills a
	// subset mid-phase and revives it. The worst age of a live origin's
	// entry on an always-live node must stay inside the bound.
	alwaysLive := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		alwaysLive[i] = true
	}
	killedAt := map[int]int{}
	const phaseRounds = 40
	grace := gossip.DefaultAntiEntropyEvery + gossip.DefaultRumorRounds
	killed := map[int]bool{}
	for round := 0; round < phaseRounds; round++ {
		if round == 10 {
			for _, i := range rng.Perm(n)[:churn] {
				killed[i] = true
				alwaysLive[i] = false
				f.net.Kill(f.names[i])
			}
		}
		if round == 25 {
			for i := range killed {
				f.net.Revive(f.names[i])
				killedAt[i] = round
			}
			killed = map[int]bool{}
		}
		if round%2 == 0 {
			for i := 0; i < n; i++ {
				if !f.net.Down(f.names[i]) {
					f.publish(i)
				}
			}
		}
		f.tick()
		if round < 8 {
			continue // let the publishing cadence reach steady state
		}
		for i := range f.nodes {
			if !alwaysLive[i] {
				continue
			}
			for origin := 0; origin < n; origin++ {
				if killed[origin] {
					continue // dead origins legitimately age
				}
				if at, ok := killedAt[origin]; ok && round-at < grace {
					continue // revived origin still re-propagating
				}
				if age := f.nodes[i].Store().AgeSeconds(origin); age > res.MaxEntryAgeSeconds {
					res.MaxEntryAgeSeconds = age
				}
			}
		}
	}
	res.StalenessOK = res.MaxEntryAgeSeconds <= opts.StalenessBound
	return res
}

// meshConverged reports whether every node's digest matches node 0's.
func meshConverged(f *gossipFleet) bool {
	want := f.nodes[0].Store().Digest()
	for _, nd := range f.nodes[1:] {
		d := nd.Store().Digest()
		if len(d) != len(want) {
			return false
		}
		for origin, st := range want {
			if d[origin] != st {
				return false
			}
		}
	}
	return true
}

// FormatGossip renders the report as a fixed-width table.
func FormatGossip(rep GossipReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Gossip convergence (seed %d, p99 budget %.0f rounds)\n\n", rep.Seed, rep.P99Budget)
	fmt.Fprintf(&b, "%7s %8s %6s %6s %6s %6s %6s %10s %9s %6s\n",
		"agents", "samples", "p50", "p90", "p99", "max", "heal", "max-age(s)", "bound(s)", "pass")
	for _, s := range rep.Sizes {
		pass := s.PropagationOK && s.Converged && s.StalenessOK
		heal := fmt.Sprintf("%d", s.HealRounds)
		if !s.Converged {
			heal = "never"
		}
		fmt.Fprintf(&b, "%7d %8d %6.1f %6.1f %6.1f %6.1f %6s %10.1f %9.1f %6v\n",
			s.Agents, s.Samples, s.P50, s.P90, s.P99, s.Max, heal,
			s.MaxEntryAgeSeconds, s.StalenessBound, pass)
	}
	fmt.Fprintf(&b, "\noverall: pass=%v\n", rep.Pass)
	return b.String()
}
