package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"nodeselect/internal/lease"
	"nodeselect/internal/remos"
	"nodeselect/internal/replica"
	"nodeselect/internal/selectsvc"
	"nodeselect/internal/testbed"
)

// The HA harness (`expt -run ha`) stands up a real 3-replica selectd
// cluster in one process — three full services over the CMU testbed
// topology, each with its own replicated ledger and consensus node, wired
// through an in-memory transport with injectable faults — and drives the
// failure scenarios the replicated ledger exists to survive:
//
//   - kill-leader: crash the leader mid-admission (an append blocked from
//     reaching quorum, then the process killed) and assert that every
//     acknowledged lease survives failover, the unacknowledged one is
//     never half-present, the new leader serves admissions within the
//     failover budget, and its TTL sweeper re-arms (an expiry proposed by
//     the new leader commits cluster-wide).
//   - partition-follower: cut one follower off and assert the majority
//     keeps admitting, the follower keeps serving reads but reports its
//     degradation (no quorum, stale annotation, writes bounced), and the
//     heal converges it to the leader's exact state.
//   - torn-append: delay every append in flight (acks must still wait for
//     quorum), then crash a follower so its replicated log has a torn
//     trailing record, restart it, and assert the torn tail is truncated
//     and the replica rebuilds the exact committed lease state.
//
// Every scenario's invariants reduce to the two that matter: no
// acknowledged lease is ever lost, and no lease is ever double-admitted
// (present with different placements, or debited twice). State equality is
// checked at the ledger level — active lease sets and committed debit
// vectors must match across replicas bit-for-bit.

// HAOptions parameterizes the harness.
type HAOptions struct {
	// Seed fixes the replicas' election jitter and the services' random
	// streams.
	Seed int64
	// ElectionTimeout is the cluster's heartbeat-loss timeout (default
	// 200ms). The failover budget scales with it.
	ElectionTimeout time.Duration
	// Dir is where the replicas keep their logs (default: a temp dir,
	// removed afterwards).
	Dir string
}

func (o HAOptions) withDefaults() HAOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ElectionTimeout <= 0 {
		o.ElectionTimeout = 200 * time.Millisecond
	}
	return o
}

// HACheck is one asserted invariant inside a scenario.
type HACheck struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	Pass   bool   `json:"pass"`
}

// HAScenario is one fault schedule's outcome.
type HAScenario struct {
	Name string `json:"name"`
	// Acked counts leases whose admission was acknowledged to the client;
	// Lost counts acked leases missing after recovery (must be 0);
	// DoubleAdmissions counts leases present with conflicting state across
	// replicas (must be 0).
	Acked            int       `json:"acked"`
	Lost             int       `json:"lost"`
	DoubleAdmissions int       `json:"double_admissions"`
	FailoverMS       float64   `json:"failover_ms,omitempty"`
	Checks           []HACheck `json:"checks"`
	Pass             bool      `json:"pass"`
}

// HAReport is the harness's machine-readable output (ha.json in CI).
type HAReport struct {
	ElectionTimeoutMS float64      `json:"election_timeout_ms"`
	FailoverBudgetMS  float64      `json:"failover_budget_ms"`
	Scenarios         []HAScenario `json:"scenarios"`
	Pass              bool         `json:"pass"`
}

// haMember is one replica "process": its own measurement source, service,
// ledger, and consensus node. Crash-and-restart builds a fresh member over
// the same replica dir, exactly like a restarted daemon.
type haMember struct {
	id      string
	dir     string
	svc     *selectsvc.Service
	handler http.Handler
	ledger  *lease.Ledger
	node    *replica.Node
	logs    *logBuffer
}

// logBuffer captures a member's replica log lines for assertions (torn-
// tail recovery warnings above all).
type logBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *logBuffer) logf(format string, args ...any) {
	b.mu.Lock()
	b.lines = append(b.lines, fmt.Sprintf(format, args...))
	b.mu.Unlock()
}

func (b *logBuffer) contains(sub string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

// haCluster is the three-member cluster plus its fault-injectable wiring.
type haCluster struct {
	opt     HAOptions
	tr      *replica.MemTransport
	ids     []string
	members map[string]*haMember
}

func newHACluster(opt HAOptions) (*haCluster, error) {
	c := &haCluster{
		opt:     opt,
		tr:      replica.NewMemTransport(),
		ids:     []string{"a", "b", "c"},
		members: make(map[string]*haMember),
	}
	for i, id := range c.ids {
		m, err := c.startMember(id, opt.Seed+int64(i)*104729)
		if err != nil {
			c.stop()
			return nil, err
		}
		c.members[id] = m
	}
	return c, nil
}

// startMember boots one replica process over its (possibly pre-existing)
// log dir and registers it on the transport.
func (c *haCluster) startMember(id string, seed int64) (*haMember, error) {
	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	ledger, err := lease.New(g, lease.Options{
		DefaultTTL: 10 * time.Minute,
		MaxTTL:     time.Hour,
	})
	if err != nil {
		return nil, err
	}
	var peers []string
	for _, p := range c.ids {
		if p != id {
			peers = append(peers, p)
		}
	}
	logs := &logBuffer{}
	node, err := replica.Start(replica.Config{
		ID:              id,
		Peers:           peers,
		Dir:             filepath.Join(c.opt.Dir, id),
		Transport:       c.tr,
		Apply:           ledger.Apply,
		ElectionTimeout: c.opt.ElectionTimeout,
		Heartbeat:       c.opt.ElectionTimeout / 5,
		Seed:            seed,
		Logf:            logs.logf,
	})
	if err != nil {
		return nil, err
	}
	ledger.SetReplicator(node)
	ledger.AdvanceSeq(node.MaxLeaseSeq())
	svc := selectsvc.New(src, selectsvc.Config{
		Collector:   remos.CollectorConfig{History: 8},
		DefaultMode: remos.Current,
		Seed:        seed,
		Ledger:      ledger,
		Replica:     node,
		// Client URLs are opaque to the harness (requests go straight to
		// handlers); any entry makes followers answer 307 rather than 503.
		PeerClientURLs: map[string]string{
			"a": "http://a.cluster:8800",
			"b": "http://b.cluster:8800",
			"c": "http://c.cluster:8800",
		},
	})
	if err := svc.Poll(); err != nil {
		node.Stop()
		return nil, fmt.Errorf("ha: %s initial poll: %w", id, err)
	}
	m := &haMember{
		id: id, dir: filepath.Join(c.opt.Dir, id),
		svc: svc, handler: svc.Handler(), ledger: ledger, node: node, logs: logs,
	}
	c.tr.Register(node)
	return m, nil
}

// crash kills a member like a lost process: RPC endpoint gone, node
// stopped, member forgotten. Its replica dir survives for a restart.
func (c *haCluster) crash(id string) {
	m := c.members[id]
	c.tr.Unregister(id)
	m.node.Stop()
	delete(c.members, id)
}

func (c *haCluster) stop() {
	for id := range c.members {
		c.crash(id)
	}
}

// leader waits for exactly one live member to lead and returns it.
func (c *haCluster) leader(timeout time.Duration) (*haMember, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var leaders []*haMember
		for _, m := range c.members {
			if m.node.IsLeader() {
				leaders = append(leaders, m)
			}
		}
		if len(leaders) == 1 {
			return leaders[0], nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil, fmt.Errorf("ha: no single leader within %v", timeout)
}

// followers returns the live members that are not m.
func (c *haCluster) followers(m *haMember) []*haMember {
	var out []*haMember
	for _, f := range c.members {
		if f != m {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// admit runs one leased admission through a member's HTTP handler and
// returns the acknowledged lease ID.
func (m *haMember) admit(ttlSeconds float64) (string, int, error) {
	body := fmt.Sprintf(`{"m":2,"demand":{"cpu":0.02,"bw":1e6},"lease_ttl":%g}`, ttlSeconds)
	req := httptest.NewRequest("POST", "/select", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	m.handler.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return "", w.Code, fmt.Errorf("admission on %s: HTTP %d: %s", m.id, w.Code, w.Body.String())
	}
	var resp selectsvc.SelectResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		return "", w.Code, err
	}
	if resp.Lease == nil {
		return "", w.Code, fmt.Errorf("admission on %s: 200 without a lease", m.id)
	}
	return resp.Lease.ID, w.Code, nil
}

// readLeases is a follower-read: GET /leases through the HTTP surface,
// returning the lease IDs and the replica annotation headers.
func (m *haMember) readLeases() (ids []string, role string, lag string, err error) {
	req := httptest.NewRequest("GET", "/leases", nil)
	w := httptest.NewRecorder()
	m.handler.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return nil, "", "", fmt.Errorf("GET /leases on %s: HTTP %d", m.id, w.Code)
	}
	var resp struct {
		Leases []lease.Info `json:"leases"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		return nil, "", "", err
	}
	for _, l := range resp.Leases {
		ids = append(ids, l.ID)
	}
	sort.Strings(ids)
	return ids, w.Header().Get("X-Replica-Role"), w.Header().Get("X-Replica-Commit-Lag"), nil
}

// stateFingerprint renders a ledger's replicated state canonically: every
// active lease with its placement, plus the committed debit vectors. Two
// replicas agree iff their fingerprints are equal.
func stateFingerprint(l *lease.Ledger) string {
	infos := l.Active()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	var b strings.Builder
	for _, in := range infos {
		nodes := append([]string(nil), in.Nodes...)
		sort.Strings(nodes)
		fmt.Fprintf(&b, "%s=%v cpu=%.6f bw=%.0f;", in.ID, nodes, in.CPU, in.BW)
	}
	cpu, bw := l.Committed()
	fmt.Fprintf(&b, "|cpu=%.9v|bw=%.9v", cpu, bw)
	return b.String()
}

// converged waits until every live member's fingerprint matches.
func (c *haCluster) converged(timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	var last []string
	for time.Now().Before(deadline) {
		last = last[:0]
		for _, id := range c.ids {
			if m, ok := c.members[id]; ok {
				last = append(last, m.id+": "+stateFingerprint(m.ledger))
			}
		}
		same := true
		for i := 1; i < len(last); i++ {
			if last[i][strings.Index(last[i], ":"):] != last[0][strings.Index(last[0], ":"):] {
				same = false
				break
			}
		}
		if same && len(last) > 0 {
			return last[0], nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", fmt.Errorf("ha: replicas did not converge within %v:\n  %s",
		timeout, strings.Join(last, "\n  "))
}

// scenarioState accumulates a scenario's checks.
type scenarioState struct {
	sc HAScenario
}

func (s *scenarioState) check(name string, pass bool, detail string, args ...any) bool {
	s.sc.Checks = append(s.sc.Checks, HACheck{
		Name: name, Detail: fmt.Sprintf(detail, args...), Pass: pass,
	})
	return pass
}

func (s *scenarioState) done() HAScenario {
	s.sc.Pass = s.sc.Lost == 0 && s.sc.DoubleAdmissions == 0
	for _, ch := range s.sc.Checks {
		if !ch.Pass {
			s.sc.Pass = false
		}
	}
	return s.sc
}

// verifySurvival fills Lost/DoubleAdmissions: every acked lease must be
// present on every live replica with identical state (the fingerprint
// equality already proved cross-replica identity; this proves presence).
func (s *scenarioState) verifySurvival(c *haCluster, acked []string, expired map[string]bool) {
	for _, m := range c.members {
		present := make(map[string]int)
		for _, in := range m.ledger.Active() {
			present[in.ID]++
		}
		for id, n := range present {
			if n > 1 {
				s.sc.DoubleAdmissions++
				s.check("no-double-admission", false, "%s holds %s %d times", m.id, id, n)
			}
		}
		for _, id := range acked {
			if expired[id] {
				continue
			}
			if present[id] == 0 {
				s.sc.Lost++
				s.check("no-acked-lease-lost", false, "acked lease %s missing on %s", id, m.id)
			}
		}
	}
	if s.sc.Lost == 0 {
		s.check("no-acked-lease-lost", true, "%d acked leases present on every replica", len(acked)-len(expired))
	}
	if s.sc.DoubleAdmissions == 0 {
		s.check("no-double-admission", true, "every lease held exactly once per replica")
	}
}

// RunHA executes the fault schedules and returns the report.
func RunHA(opt HAOptions) (HAReport, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		dir, err := os.MkdirTemp("", "nodeselect-ha-*")
		if err != nil {
			return HAReport{}, err
		}
		defer os.RemoveAll(dir)
		opt.Dir = dir
	}
	budget := 5 * opt.ElectionTimeout
	report := HAReport{
		ElectionTimeoutMS: float64(opt.ElectionTimeout) / float64(time.Millisecond),
		FailoverBudgetMS:  float64(budget) / float64(time.Millisecond),
		Pass:              true,
	}
	scenarios := []func(HAOptions, time.Duration) (HAScenario, error){
		runHAKillLeader,
		runHAPartitionFollower,
		runHATornAppend,
	}
	for _, fn := range scenarios {
		sc, err := fn(opt, budget)
		if err != nil {
			return report, err
		}
		report.Scenarios = append(report.Scenarios, sc)
		if !sc.Pass {
			report.Pass = false
		}
	}
	return report, nil
}

// runHAKillLeader crashes the leader mid-admission and verifies failover.
func runHAKillLeader(opt HAOptions, budget time.Duration) (HAScenario, error) {
	opt.Dir = filepath.Join(opt.Dir, "kill-leader")
	c, err := newHACluster(opt)
	if err != nil {
		return HAScenario{}, err
	}
	defer c.stop()
	st := &scenarioState{sc: HAScenario{Name: "kill-leader"}}

	ld, err := c.leader(10 * opt.ElectionTimeout)
	if err != nil {
		return HAScenario{}, err
	}
	var acked []string
	for i := 0; i < 3; i++ {
		id, _, err := ld.admit(600)
		if err != nil {
			return HAScenario{}, err
		}
		acked = append(acked, id)
	}
	st.sc.Acked = len(acked)
	if _, err := c.converged(5 * time.Second); err != nil {
		return HAScenario{}, err
	}

	// Mid-admission fault: block every entry-carrying append so the next
	// admission can fsync locally but never reach quorum, then crash the
	// leader with the proposal dangling.
	c.tr.SetIntercept(func(from, to string, req any) error {
		if ar, ok := req.(replica.AppendRequest); ok && len(ar.Entries) > 0 {
			return fmt.Errorf("ha: append blackholed")
		}
		return nil
	})
	unackedDone := make(chan error, 1)
	go func() {
		_, _, err := ld.admit(600)
		unackedDone <- err
	}()
	// Give the proposal time to append locally and stall on quorum.
	time.Sleep(4 * opt.ElectionTimeout / 10)
	killedAt := time.Now()
	oldID := ld.id
	c.crash(oldID)
	c.tr.SetIntercept(nil)
	inflightErr := <-unackedDone
	st.check("mid-admission-not-acked", inflightErr != nil,
		"admission in flight during the crash was not acknowledged (err=%v)", inflightErr)

	// Failover: a survivor must take over and serve an admission within
	// the budget.
	var newLd *haMember
	var failoverID string
	for time.Now().Sub(killedAt) < budget {
		for _, m := range c.members {
			if m.node.IsLeader() {
				newLd = m
			}
		}
		if newLd != nil {
			if id, _, err := newLd.admit(600); err == nil {
				failoverID = id
				break
			}
			newLd = nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	st.sc.FailoverMS = float64(time.Since(killedAt)) / float64(time.Millisecond)
	if !st.check("failover-within-budget", failoverID != "",
		"new leader served an admission %.0fms after the crash (budget %.0fms)",
		st.sc.FailoverMS, float64(budget)/float64(time.Millisecond)) {
		return st.done(), nil
	}
	acked = append(acked, failoverID)
	st.sc.Acked++

	if _, err := c.converged(5 * time.Second); err != nil {
		st.check("replicas-converge", false, "%v", err)
		return st.done(), nil
	}
	st.check("replicas-converge", true, "surviving replicas agree on leases and debits")

	// The new leader's TTL sweeper must reclaim expired leases cluster-
	// wide: a short lease admitted after failover is proposed for expiry
	// by whichever survivor sweeps (only the leader's proposal commits).
	shortID, _, err := newLd.admit(0.3)
	if err != nil {
		return HAScenario{}, err
	}
	acked = append(acked, shortID)
	st.sc.Acked++
	expired := map[string]bool{shortID: true}
	var stops []func()
	for _, m := range c.members {
		stops = append(stops, m.ledger.StartSweeper(50*time.Millisecond))
	}
	gone := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		gone = true
		for _, m := range c.members {
			if _, ok := m.ledger.Get(shortID); ok {
				gone = false
			}
		}
		if gone {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, stop := range stops {
		stop()
	}
	st.check("sweeper-rearmed-after-failover", gone,
		"short-TTL lease %s expired on every survivor via the new leader's sweep", shortID)

	if _, err := c.converged(5 * time.Second); err != nil {
		st.check("replicas-converge-final", false, "%v", err)
		return st.done(), nil
	}
	st.verifySurvival(c, acked, expired)
	return st.done(), nil
}

// runHAPartitionFollower cuts a follower off and verifies degraded reads
// plus post-heal convergence.
func runHAPartitionFollower(opt HAOptions, budget time.Duration) (HAScenario, error) {
	opt.Dir = filepath.Join(opt.Dir, "partition-follower")
	c, err := newHACluster(opt)
	if err != nil {
		return HAScenario{}, err
	}
	defer c.stop()
	st := &scenarioState{sc: HAScenario{Name: "partition-follower"}}

	ld, err := c.leader(10 * opt.ElectionTimeout)
	if err != nil {
		return HAScenario{}, err
	}
	var acked []string
	for i := 0; i < 2; i++ {
		id, _, err := ld.admit(600)
		if err != nil {
			return HAScenario{}, err
		}
		acked = append(acked, id)
	}
	if _, err := c.converged(5 * time.Second); err != nil {
		return HAScenario{}, err
	}
	follower := c.followers(ld)[0]
	c.tr.Isolate(follower.id)

	// The majority must keep admitting with one follower dark.
	for i := 0; i < 2; i++ {
		id, _, err := ld.admit(600)
		if err != nil {
			st.check("majority-keeps-admitting", false, "%v", err)
			return st.done(), nil
		}
		acked = append(acked, id)
	}
	st.sc.Acked = len(acked)
	st.check("majority-keeps-admitting", true, "2 admissions acknowledged during the partition")

	// The partitioned follower keeps serving reads — visibly stale: its
	// lease list predates the partition and its health reports lost
	// quorum once the leader's silence outlives the freshness window.
	ids, role, _, err := follower.readLeases()
	if err != nil {
		return HAScenario{}, err
	}
	st.check("follower-serves-stale-reads", len(ids) == 2,
		"partitioned follower (role %s) still serves GET /leases with the %d pre-partition leases", role, len(ids))
	degraded := false
	for deadline := time.Now().Add(10 * opt.ElectionTimeout); time.Now().Before(deadline); {
		if !follower.node.Status().HasQuorum {
			degraded = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.check("follower-reports-degraded", degraded,
		"partitioned follower reports lost quorum (healthz replication block degrades)")

	// Writes on the cut-off replica must bounce, never commit locally.
	_, code, err := follower.admit(600)
	st.check("follower-bounces-writes", err != nil && code != http.StatusOK,
		"admission on the partitioned replica answered HTTP %d, not a local commit", code)

	// Heal: the follower catches up to the exact post-partition state and
	// its lag annotation returns to zero.
	c.tr.HealAll()
	if _, err := c.converged(5 * time.Second); err != nil {
		st.check("follower-converges-after-heal", false, "%v", err)
		return st.done(), nil
	}
	var lag string
	caughtUp := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		var idsNow []string
		idsNow, _, lag, err = follower.readLeases()
		if err != nil {
			return HAScenario{}, err
		}
		if len(idsNow) == len(acked) && lag == "0" {
			caughtUp = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st.check("follower-converges-after-heal", caughtUp,
		"healed follower serves all %d leases with X-Replica-Commit-Lag %s", len(acked), lag)
	st.verifySurvival(c, acked, nil)
	return st.done(), nil
}

// runHATornAppend delays appends in flight, then crashes a follower so
// its log has a torn trailing record and verifies crash recovery.
func runHATornAppend(opt HAOptions, budget time.Duration) (HAScenario, error) {
	opt.Dir = filepath.Join(opt.Dir, "torn-append")
	c, err := newHACluster(opt)
	if err != nil {
		return HAScenario{}, err
	}
	defer c.stop()
	st := &scenarioState{sc: HAScenario{Name: "torn-append"}}

	ld, err := c.leader(10 * opt.ElectionTimeout)
	if err != nil {
		return HAScenario{}, err
	}
	var acked []string
	for i := 0; i < 2; i++ {
		id, _, err := ld.admit(600)
		if err != nil {
			return HAScenario{}, err
		}
		acked = append(acked, id)
	}

	// Delayed appends: every message now takes a beat. Admissions must
	// still block on the (slow) quorum rather than ack early.
	c.tr.SetDelay(opt.ElectionTimeout / 8)
	t0 := time.Now()
	id, _, err := ld.admit(600)
	if err != nil {
		return HAScenario{}, err
	}
	acked = append(acked, id)
	st.sc.Acked = len(acked)
	st.check("ack-waits-for-slow-quorum", time.Since(t0) >= opt.ElectionTimeout/8,
		"admission under %.0fms append delay acknowledged after %.1fms — after the delayed quorum, not before",
		float64(opt.ElectionTimeout/8)/float64(time.Millisecond),
		float64(time.Since(t0))/float64(time.Millisecond))
	c.tr.SetDelay(0)
	if _, err := c.converged(5 * time.Second); err != nil {
		return HAScenario{}, err
	}

	// Crash a follower and tear its log: append half a record, the way a
	// crash mid-write leaves a real file.
	victim := c.followers(ld)[0]
	victimID := victim.id
	c.crash(victimID)
	logPath := filepath.Join(victim.dir, "replica.log.jsonl")
	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return HAScenario{}, err
	}
	if _, err := f.WriteString(`{"op":"acquire","id":"lease-torn","nodes":["m-1"`); err != nil {
		f.Close()
		return HAScenario{}, err
	}
	f.Close()

	// Restart the victim as a fresh process over the torn log.
	m, err := c.startMember(victimID, opt.Seed+7)
	if err != nil {
		st.check("torn-log-recovers", false, "restart over torn log failed: %v", err)
		return st.done(), nil
	}
	c.members[victimID] = m
	st.check("torn-log-recovers", m.logs.contains("torn"),
		"restarted replica truncated the torn trailing record and recovered")

	if _, err := c.converged(5 * time.Second); err != nil {
		st.check("replica-rebuilds-state", false, "%v", err)
		return st.done(), nil
	}
	infos := m.ledger.Active()
	st.check("replica-rebuilds-state", len(infos) == len(acked),
		"restarted replica replayed the committed log into %d/%d leases", len(infos), len(acked))
	st.verifySurvival(c, acked, nil)
	return st.done(), nil
}

// FormatHA renders the report for humans.
func FormatHA(r HAReport) string {
	var b strings.Builder
	status := map[bool]string{true: "PASS", false: "FAIL"}
	fmt.Fprintf(&b, "HA fault-injection harness (election timeout %.0fms, failover budget %.0fms)\n\n",
		r.ElectionTimeoutMS, r.FailoverBudgetMS)
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "%-4s %s: %d acked, %d lost, %d double admissions",
			status[sc.Pass], sc.Name, sc.Acked, sc.Lost, sc.DoubleAdmissions)
		if sc.FailoverMS > 0 {
			fmt.Fprintf(&b, ", failover %.0fms", sc.FailoverMS)
		}
		b.WriteString("\n")
		for _, ch := range sc.Checks {
			fmt.Fprintf(&b, "  %-4s %-32s %s\n", status[ch.Pass], ch.Name, ch.Detail)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "overall: %s\n", status[r.Pass])
	return b.String()
}
