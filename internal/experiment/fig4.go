package experiment

import (
	"fmt"
	"sort"
	"strings"

	"nodeselect/internal/core"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
	"nodeselect/internal/trafficgen"
)

// Fig4Result reproduces the scenario of the paper's Figure 4: a persistent
// traffic stream flows from m-16 to m-18 (both attached to the suez
// router), and the automatic selection of 4 nodes must avoid the congested
// part of the testbed.
type Fig4Result struct {
	// Selected is the chosen node names, sorted.
	Selected []string
	// AvoidedCongestion reports whether none of the selected nodes sits
	// behind a congested portion of the network (here: none attaches to
	// suez while the stream runs).
	AvoidedCongestion bool
	// StreamPathAvail is the measured available bandwidth between m-16
	// and m-18 while the stream runs (should be ~0).
	StreamPathAvail float64
	// SelectedPairMinBW is the minimum pairwise available bandwidth of
	// the selected set (should be ~full capacity).
	SelectedPairMinBW float64
	// DOT is a Figure 4 style rendering with the selected nodes in bold.
	DOT string
}

// RunFig4 executes the Figure 4 scenario. streams controls how many
// parallel bulk transfers form the m-16 -> m-18 stream (several, so the
// stream consumes most of the shared links as a busy path would).
func RunFig4(streams int) (Fig4Result, error) {
	if streams <= 0 {
		streams = 6
	}
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	g := net.Graph()
	src, dst := g.MustNode("m-16"), g.MustNode("m-18")
	for i := 0; i < streams; i++ {
		s := trafficgen.NewStream(net, src, dst, 64e6)
		s.Start()
	}
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{Period: 2, History: 15})
	col.Start(e)
	e.RunUntil(60)

	snap, err := col.Snapshot(remos.Window, false)
	if err != nil {
		return Fig4Result{}, err
	}
	sel, err := core.Balanced(snap, core.Request{M: 4})
	if err != nil {
		return Fig4Result{}, err
	}

	res := Fig4Result{
		Selected:          sel.Names(g),
		StreamPathAvail:   snap.PairBandwidth(src, dst),
		SelectedPairMinBW: sel.PairMinBW,
	}
	sort.Strings(res.Selected)

	// The stream occupies the m-16 and m-18 access links; any node whose
	// route to another selected node shares those links is a bad choice.
	// On this topology the sufficient check is: no selected node attaches
	// to the congested endpoints' links, i.e. selection avoids m-16 and
	// m-18 themselves, and the set's pairwise bandwidth is unimpaired.
	res.AvoidedCongestion = true
	for _, name := range res.Selected {
		if name == "m-16" || name == "m-18" {
			res.AvoidedCongestion = false
		}
	}
	if res.SelectedPairMinBW < 0.9*testbed.Ethernet100 {
		res.AvoidedCongestion = false
	}

	var dot strings.Builder
	highlight := map[int]bool{}
	for _, id := range sel.Nodes {
		highlight[id] = true
	}
	if err := topology.WriteDOT(&dot, g, topology.DOTOptions{
		Snapshot:  snap,
		Highlight: highlight,
		Name:      "figure4",
	}); err != nil {
		return Fig4Result{}, err
	}
	res.DOT = dot.String()
	return res, nil
}

// FormatFig4 renders the scenario outcome.
func FormatFig4(r Fig4Result) string {
	var b strings.Builder
	b.WriteString("Figure 4 scenario: traffic stream m-16 -> m-18, select 4 nodes\n")
	fmt.Fprintf(&b, "  selected nodes:            %s\n", strings.Join(r.Selected, ", "))
	fmt.Fprintf(&b, "  stream path avail bw:      %s\n", topology.FormatBandwidth(r.StreamPathAvail))
	fmt.Fprintf(&b, "  selected set pair min bw:  %s\n", topology.FormatBandwidth(r.SelectedPairMinBW))
	fmt.Fprintf(&b, "  avoided congested subtree: %v\n", r.AvoidedCongestion)
	return b.String()
}
