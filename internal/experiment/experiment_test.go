package experiment

import (
	"strings"
	"testing"

	"nodeselect/internal/apps"
	"nodeselect/internal/remos"
)

// fastConfig keeps test runs quick: short warmup, one replication.
func fastConfig() Config {
	cfg := Default()
	cfg.Replications = 1
	cfg.Warmup = 120
	return cfg
}

func TestConditionString(t *testing.T) {
	cases := map[Condition]string{
		CondNone: "none", CondLoad: "load",
		CondTraffic: "traffic", CondBoth: "load+traffic",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
	if Condition(9).String() == "" {
		t.Error("unknown condition should render")
	}
}

func TestScenarioWarmupProducesMeasurements(t *testing.T) {
	sc := NewScenario(fastConfig(), CondBoth, "warmup-test")
	if sc.Engine.Now() < 120 {
		t.Fatalf("scenario time %v, want >= warmup", sc.Engine.Now())
	}
	if sc.Collector.Polls() < 10 {
		t.Fatalf("collector took %d polls during warmup", sc.Collector.Polls())
	}
	snap, err := sc.Collector.Snapshot(remos.Window, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// Under load+traffic, something must be visibly consumed.
	busy := 0
	for l := 0; l < snap.Graph.NumLinks(); l++ {
		if snap.AvailBW[l] < snap.Graph.Link(l).Capacity*0.999 {
			busy++
		}
	}
	loaded := 0
	for _, la := range snap.LoadAvg {
		if la > 0.05 {
			loaded++
		}
	}
	if busy == 0 || loaded == 0 {
		t.Fatalf("warmup produced no visible conditions: %d busy links, %d loaded nodes", busy, loaded)
	}
}

func TestRunOnceDeterministic(t *testing.T) {
	cfg := fastConfig()
	e1, n1, err := RunOnce(cfg, apps.DefaultFFT(), CondBoth, "balanced", 0)
	if err != nil {
		t.Fatal(err)
	}
	e2, n2, err := RunOnce(cfg, apps.DefaultFFT(), CondBoth, "balanced", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 {
		t.Fatalf("identical labels diverged: %v vs %v", e1, e2)
	}
	if len(n1) != len(n2) {
		t.Fatal("node sets diverged")
	}
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatal("node sets diverged")
		}
	}
	// A different replication must explore different randomness.
	e3, _, err := RunOnce(cfg, apps.DefaultFFT(), CondBoth, "balanced", 1)
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 {
		t.Log("warning: rep 0 and rep 1 gave identical elapsed times (possible but unlikely)")
	}
}

func TestRunOnceUnloadedMatchesReference(t *testing.T) {
	cfg := fastConfig()
	for _, tc := range []struct {
		app  apps.App
		want float64
	}{
		{apps.DefaultFFT(), 48},
		{apps.DefaultAirshed(), 150},
		{apps.DefaultMRI(), 540},
	} {
		elapsed, _, err := RunOnce(cfg, tc.app, CondNone, "balanced", 0)
		if err != nil {
			t.Fatalf("%s: %v", tc.app.Name(), err)
		}
		if elapsed < tc.want*0.97 || elapsed > tc.want*1.03 {
			t.Errorf("%s unloaded = %.1f, want ~%v", tc.app.Name(), elapsed, tc.want)
		}
	}
}

func TestAutoBeatsRandomUnderBoth(t *testing.T) {
	// With a handful of replications the FFT's automatic selection must
	// beat random on average under load+traffic — the paper's central
	// claim.
	cfg := fastConfig()
	cfg.Replications = 3
	var randomSum, autoSum float64
	for rep := 0; rep < cfg.Replications; rep++ {
		r, _, err := RunOnce(cfg, apps.DefaultFFT(), CondBoth, "random", rep)
		if err != nil {
			t.Fatal(err)
		}
		a, _, err := RunOnce(cfg, apps.DefaultFFT(), CondBoth, "balanced", rep)
		if err != nil {
			t.Fatal(err)
		}
		randomSum += r
		autoSum += a
	}
	if autoSum >= randomSum {
		t.Fatalf("automatic selection (%v) did not beat random (%v)", autoSum, randomSum)
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 in short mode")
	}
	cfg := fastConfig()
	rows, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	names := []string{"FFT", "Airshed", "MRI"}
	for i, row := range rows {
		if row.App != names[i] {
			t.Errorf("row %d is %s, want %s", i, row.App, names[i])
		}
		if row.Reference <= 0 {
			t.Errorf("%s reference %v", row.App, row.Reference)
		}
		for ci := range Conditions {
			if row.Random[ci].Mean <= row.Reference*0.95 {
				t.Errorf("%s %s random %v below reference %v",
					row.App, Conditions[ci], row.Random[ci].Mean, row.Reference)
			}
			if row.Auto[ci].N != cfg.Replications {
				t.Errorf("%s cell has %d samples", row.App, row.Auto[ci].N)
			}
		}
	}
	out := FormatTable1(rows)
	for _, want := range []string{"FFT", "Airshed", "MRI", "Reference", "Load+Traf"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
	// Headline derived from the same rows.
	hs := ComputeHeadline(rows)
	if len(hs) != 3 {
		t.Fatalf("headline rows = %d", len(hs))
	}
	hout := FormatHeadline(hs)
	if !strings.Contains(hout, "Auto/Random") {
		t.Error("headline format missing ratio column")
	}
}

func TestFig4Avoidance(t *testing.T) {
	res, err := RunFig4(0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AvoidedCongestion {
		t.Fatalf("selection did not avoid the congested subtree: %v", res.Selected)
	}
	if len(res.Selected) != 4 {
		t.Fatalf("selected %d nodes, want 4", len(res.Selected))
	}
	for _, name := range res.Selected {
		if name == "m-16" || name == "m-18" {
			t.Fatalf("selected a stream endpoint: %v", res.Selected)
		}
	}
	if res.StreamPathAvail > 1e6 {
		t.Errorf("stream path shows %v available, want ~0", res.StreamPathAvail)
	}
	if !strings.Contains(res.DOT, "penwidth=3") {
		t.Error("DOT rendering missing highlighted nodes")
	}
	out := FormatFig4(res)
	if !strings.Contains(out, "avoided congested subtree: true") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestGreedyGapAblation(t *testing.T) {
	gap, err := RunGreedyGapAblation(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gap.SweepOptimal != gap.Trials {
		t.Errorf("full sweep optimal on %d/%d trials, want all", gap.SweepOptimal, gap.Trials)
	}
	if gap.MeanPaperRatio > gap.MeanSweepRatio+1e-12 {
		t.Error("paper variant cannot beat the full sweep")
	}
	if gap.MeanPaperRatio < 0.9 {
		t.Errorf("paper variant ratio %v suspiciously low", gap.MeanPaperRatio)
	}
	if !strings.Contains(FormatGreedyGap(gap), "full sweep") {
		t.Error("format missing variant name")
	}
}

func TestMigrationBeneficial(t *testing.T) {
	res, err := RunMigration(Default())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Migrated {
		t.Fatal("advisor never migrated")
	}
	if res.MigrateElapsed >= res.StayElapsed {
		t.Fatalf("migration (%v) did not beat staying (%v)", res.MigrateElapsed, res.StayElapsed)
	}
	if len(res.FromNodes) == 0 || len(res.ToNodes) == 0 {
		t.Error("placements not recorded")
	}
	out := FormatMigration(res)
	if !strings.Contains(out, "speedup") {
		t.Error("format missing speedup")
	}
}

func TestSweepPointRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in short mode")
	}
	cfg := fastConfig()
	pt, err := sweepPoint(cfg, CondLoad, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Random.Mean <= 0 || pt.Auto.Mean <= 0 {
		t.Fatal("sweep point has non-positive means")
	}
	if !strings.Contains(FormatLoadSweep([]SweepPoint{pt}), "intensity") {
		t.Error("sweep format missing header")
	}
	if !strings.Contains(FormatTrafficSweep([]SweepPoint{pt}), "messages/s") {
		t.Error("traffic sweep format missing title")
	}
}

func TestWithDefaultsFillsZeroes(t *testing.T) {
	c := Config{}.withDefaults()
	d := Default()
	if c.Replications != d.Replications || c.Warmup != d.Warmup ||
		c.LoadRate != d.LoadRate || c.TrafficRate != d.TrafficRate {
		t.Fatalf("withDefaults did not fill: %+v", c)
	}
}
