package experiment

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/remos/agent"
	"nodeselect/internal/selectsvc"
	"nodeselect/internal/testbed"
)

// ChaosOptions parameterizes the fault-schedule scenario: a real agent
// fleet on loopback, a chaos proxy on every path, and a selection service
// polling through the faults. Unlike the simulation experiments this one
// runs in wall-clock time — timeouts are real.
type ChaosOptions struct {
	// Seed drives the fault schedule and the proxies' fault streams.
	Seed int64
	// Rounds is the number of fault rounds after the healthy baseline
	// round (default 2). Each round faults a fresh subset and repairs it.
	Rounds int
	// PollsPerRound is the number of measurement polls per round
	// (default 4).
	PollsPerRound int
	// FaultFraction is the fraction of agents faulted each round
	// (default 0.2); alternate victims hang (response swallowed) and
	// crash (connection refused).
	FaultFraction float64
	// SelectM is the placement size requested each round (default 4).
	SelectM int
	// ConnectTimeout and IOTimeout bound each agent operation
	// (default 150ms each); MaxAttempts is tries per operation (default 1,
	// so the poll-time bound stays tight).
	ConnectTimeout time.Duration
	IOTimeout      time.Duration
	MaxAttempts    int
	// Period is the measurement-clock seconds per poll (default 0.5);
	// MaxStaleAge is the collector's staleness ceiling (default 3*Period,
	// so entities faulted for a full round age past it).
	Period      float64
	MaxStaleAge float64
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Rounds <= 0 {
		o.Rounds = 2
	}
	if o.PollsPerRound <= 0 {
		o.PollsPerRound = 4
	}
	if o.FaultFraction <= 0 || o.FaultFraction >= 1 {
		o.FaultFraction = 0.2
	}
	if o.SelectM <= 0 {
		o.SelectM = 4
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 150 * time.Millisecond
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 150 * time.Millisecond
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 1
	}
	if o.Period <= 0 {
		o.Period = 0.5
	}
	if o.MaxStaleAge <= 0 {
		o.MaxStaleAge = 3 * o.Period
	}
	return o
}

// DeadlineBound is the wall-clock ceiling one poll may take under these
// options: the fleet refreshes in parallel, so the bound is one node's
// worst case — every attempt burning a full connect plus two round trips
// (identity check and read), plus maximum backoff between attempts — with
// scheduling grace on top.
func (o ChaosOptions) DeadlineBound() time.Duration {
	o = o.withDefaults()
	attempt := o.ConnectTimeout + 2*o.IOTimeout
	bound := time.Duration(o.MaxAttempts)*attempt +
		time.Duration(o.MaxAttempts-1)*500*time.Millisecond // BackoffMax default
	return bound + 500*time.Millisecond
}

// ChaosRound records one round of the schedule.
type ChaosRound struct {
	// Round numbers the rounds; 0 is the fault-free baseline.
	Round int
	// Hung and Crashed name the agents faulted this round, by node.
	Hung    []string
	Crashed []string
	// State is the service health state after the round's polls.
	State string
	// FreshFraction is the live fraction of the measurement view.
	FreshFraction float64
	// MaxPollSeconds is the slowest poll of the round.
	MaxPollSeconds float64
	// SelectOK reports whether /select answered 200 this round;
	// SelectDegraded is the response's degraded flag and StaleNodes its
	// stale-input list.
	SelectOK       bool
	SelectDegraded bool
	StaleNodes     []string
}

// ChaosResult is the outcome of the fault schedule.
type ChaosResult struct {
	// Agents is the fleet size; FaultsPerRound how many were faulted.
	Agents         int
	FaultsPerRound int
	// DeadlineBoundSeconds is the configured per-poll ceiling and
	// MaxPollSeconds the slowest poll observed anywhere in the run; the
	// scenario passes only if the bound held.
	DeadlineBoundSeconds float64
	MaxPollSeconds       float64
	// Rounds are the per-round records, baseline first.
	Rounds []ChaosRound
	// Recovered reports whether the service returned to "ok" after the
	// final repair, within RecoveryPolls polls.
	Recovered      bool
	RecoveredState string
	RecoveryPolls  int
}

// RunChaos executes the fault schedule: start a full agent fleet behind
// chaos proxies, dial it with tight deadlines, and alternate fault rounds
// (a FaultFraction of agents hung or crashed) with repairs, asserting the
// service keeps answering placements from last-known-good data throughout.
func RunChaos(opt ChaosOptions) (ChaosResult, error) {
	opt = opt.withDefaults()
	res := ChaosResult{DeadlineBoundSeconds: opt.DeadlineBound().Seconds()}

	g := testbed.CMU()
	src := remos.NewStaticSource(g)
	rng := randx.New(opt.Seed).Split("chaos")
	for _, id := range g.ComputeNodes() {
		src.SetLoad(id, 2*rng.Float64())
	}

	cf, err := agent.StartChaosFleet(src, opt.Seed, agent.ChaosConfig{})
	if err != nil {
		return res, err
	}
	defer cf.Close()
	res.Agents = len(cf.Proxies)

	dc := agent.DialConfig{
		ConnectTimeout:   opt.ConnectTimeout,
		IOTimeout:        opt.IOTimeout,
		MaxAttempts:      opt.MaxAttempts,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
		AllowPartial:     true,
		Seed:             opt.Seed,
	}
	ns, err := dc.Dial(g, cf.Addrs())
	if err != nil {
		return res, err
	}
	defer ns.Close()

	svc := selectsvc.New(ns, selectsvc.Config{
		Collector: remos.CollectorConfig{
			Period:      opt.Period,
			History:     2 * opt.PollsPerRound,
			MaxStaleAge: opt.MaxStaleAge,
		},
		DefaultMode:  remos.Current,
		Seed:         opt.Seed,
		ExcludeStale: true,
	})
	handler := svc.Handler()

	// poll advances the measurement clock and takes one sample, recording
	// the wall time against the deadline bound.
	poll := func(r *ChaosRound) {
		src.Advance(opt.Period)
		t0 := time.Now()
		svc.Poll() // partial failures are the point; errors show in State
		dt := time.Since(t0).Seconds()
		if r != nil && dt > r.MaxPollSeconds {
			r.MaxPollSeconds = dt
		}
		if dt > res.MaxPollSeconds {
			res.MaxPollSeconds = dt
		}
	}

	runRound := func(round int, hung, crashed []int) ChaosRound {
		r := ChaosRound{Round: round}
		for _, n := range hung {
			cf.Proxies[n].Set(agent.ChaosConfig{HangRate: 1})
			r.Hung = append(r.Hung, g.Node(n).Name)
		}
		for _, n := range crashed {
			cf.Proxies[n].Pause()
			r.Crashed = append(r.Crashed, g.Node(n).Name)
		}
		for i := 0; i < opt.PollsPerRound; i++ {
			poll(&r)
		}
		state, health := svc.Health()
		r.State = state
		r.FreshFraction = health.FreshFraction

		body, _ := json.Marshal(selectsvc.SelectRequest{M: opt.SelectM})
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, httptest.NewRequest("POST", "/select", bytes.NewReader(body)))
		r.SelectOK = w.Code == http.StatusOK
		if r.SelectOK {
			var resp selectsvc.SelectResponse
			if json.Unmarshal(w.Body.Bytes(), &resp) == nil {
				r.SelectDegraded = resp.Degraded
				r.StaleNodes = resp.StaleNodes
			}
		}
		// Repair: resume crashed proxies and clear fault injection.
		for _, n := range hung {
			cf.Proxies[n].Set(agent.ChaosConfig{})
		}
		for _, n := range crashed {
			cf.Proxies[n].Resume()
		}
		return r
	}

	// Round 0: fault-free baseline (also fills the Current-mode interval).
	res.Rounds = append(res.Rounds, runRound(0, nil, nil))

	k := int(opt.FaultFraction*float64(res.Agents) + 0.5)
	if k < 1 {
		k = 1
	}
	res.FaultsPerRound = k
	for round := 1; round <= opt.Rounds; round++ {
		perm := rng.Perm(res.Agents)
		var hung, crashed []int
		for i, n := range perm[:k] {
			if i%2 == 0 {
				hung = append(hung, n)
			} else {
				crashed = append(crashed, n)
			}
		}
		sort.Ints(hung)
		sort.Ints(crashed)
		res.Rounds = append(res.Rounds, runRound(round, hung, crashed))
	}

	// Recovery: all proxies repaired; poll until the breakers close and
	// the stale entries age out of the staleness window.
	time.Sleep(dc.BreakerCooldown)
	for i := 0; i < 3*opt.PollsPerRound; i++ {
		poll(nil)
		res.RecoveryPolls++
		state, _ := svc.Health()
		res.RecoveredState = state
		if state == selectsvc.StateOK {
			res.Recovered = true
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return res, nil
}

// FormatChaos renders the fault schedule outcome.
func FormatChaos(r ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos schedule: %d agents, %d faulted per round, poll deadline bound %.2fs\n",
		r.Agents, r.FaultsPerRound, r.DeadlineBoundSeconds)
	for _, rd := range r.Rounds {
		label := "baseline"
		if rd.Round > 0 {
			label = fmt.Sprintf("hung [%s] crashed [%s]",
				strings.Join(rd.Hung, " "), strings.Join(rd.Crashed, " "))
		}
		fmt.Fprintf(&b, "  round %d: %-11s fresh %.2f  max poll %.3fs  select ok=%v degraded=%v  %s\n",
			rd.Round, rd.State, rd.FreshFraction, rd.MaxPollSeconds,
			rd.SelectOK, rd.SelectDegraded, label)
		if len(rd.StaleNodes) > 0 {
			fmt.Fprintf(&b, "           stale inputs: %s\n", strings.Join(rd.StaleNodes, ", "))
		}
	}
	fmt.Fprintf(&b, "  slowest poll anywhere:  %.3fs (bound %v)\n",
		r.MaxPollSeconds, r.MaxPollSeconds <= r.DeadlineBoundSeconds)
	fmt.Fprintf(&b, "  recovered after repair: %v (%q after %d polls)\n",
		r.Recovered, r.RecoveredState, r.RecoveryPolls)
	return b.String()
}
