package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/stats"
)

// SweepPoint is one point of a sensitivity sweep: the FFT workload under
// one generator intensity, with random versus automatic selection.
type SweepPoint struct {
	// X is the swept parameter value (load arrival rate or message rate).
	X float64
	// Random and Auto are mean elapsed times over the replications.
	Random Cell
	Auto   Cell
	// Benefit is the percent improvement of automatic over random.
	Benefit float64
}

// LoadSweepRates are the per-node arrival rates swept by RunLoadSweep
// (offered load 0.2 .. 0.7 with the default 100-second jobs; higher rates
// oversubscribe the processors and the run queues grow without bound).
var LoadSweepRates = []float64{0.002, 0.004, 0.0055, 0.007}

// RunLoadSweep measures the FFT under increasing processor load and no
// traffic, addressing the paper's §4.4 question of sensitivity to load
// intensity.
func RunLoadSweep(cfg Config) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	var out []SweepPoint
	for _, rate := range LoadSweepRates {
		c := cfg
		c.LoadRate = rate
		pt, err := sweepPoint(c, CondLoad, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// TrafficSweepRates are the network-wide message rates swept by
// RunTrafficSweep (up to ~0.8 utilization of the inter-router links with
// the default 5 MB mean size; beyond that the open-loop generator
// oversubscribes the backbone and queues grow without bound).
var TrafficSweepRates = []float64{1, 2, 3, 4}

// RunTrafficSweep measures the FFT under increasing network traffic and no
// load.
func RunTrafficSweep(cfg Config) ([]SweepPoint, error) {
	cfg = cfg.withDefaults()
	var out []SweepPoint
	for _, rate := range TrafficSweepRates {
		c := cfg
		c.TrafficRate = rate
		pt, err := sweepPoint(c, CondTraffic, rate)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func sweepPoint(cfg Config, cond Condition, x float64) (SweepPoint, error) {
	var random, auto stats.Sample
	for rep := 0; rep < cfg.Replications; rep++ {
		app := apps.DefaultFFT()
		r, _, err := RunOnce(cfg, app, cond, "random", rep+1000)
		if err != nil {
			return SweepPoint{}, err
		}
		random.Add(r)
		a, _, err := RunOnce(cfg, app, cond, "balanced", rep+1000)
		if err != nil {
			return SweepPoint{}, err
		}
		auto.Add(a)
	}
	return SweepPoint{
		X:       x,
		Random:  Cell{Mean: random.Mean(), CI95: random.CI95(), N: random.N()},
		Auto:    Cell{Mean: auto.Mean(), CI95: auto.CI95(), N: auto.N()},
		Benefit: -stats.PercentChange(random.Mean(), auto.Mean()),
	}, nil
}

// PeriodPoint is one collector-polling-period setting in the measurement
// cost/accuracy sweep.
type PeriodPoint struct {
	// Period is the polling interval in seconds.
	Period float64
	// Auto is the FFT's mean elapsed time with automatic selection under
	// load+traffic at this measurement granularity.
	Auto Cell
	// PollsPerMinute is the measurement cost this period implies.
	PollsPerMinute float64
}

// PeriodSweepValues are the polling periods swept by RunPeriodSweep.
var PeriodSweepValues = []float64{1, 2, 5, 15, 45}

// RunPeriodSweep measures how the quality of automatic selection depends
// on the Remos polling period. The paper notes the measurement cost an
// application pays is "directly related to the depth and frequency of its
// requests"; this sweep shows what the frequency buys. The retained
// history is fixed at 15 samples, so longer periods also mean older,
// wider measurement windows.
func RunPeriodSweep(cfg Config) ([]PeriodPoint, error) {
	cfg = cfg.withDefaults()
	var out []PeriodPoint
	for _, period := range PeriodSweepValues {
		c := cfg
		c.CollectorPeriod = period
		var s stats.Sample
		for rep := 0; rep < c.Replications; rep++ {
			elapsed, _, err := RunOnce(c, apps.DefaultFFT(), CondBoth, "balanced", rep+4000)
			if err != nil {
				return nil, err
			}
			s.Add(elapsed)
		}
		out = append(out, PeriodPoint{
			Period:         period,
			Auto:           Cell{Mean: s.Mean(), CI95: s.CI95(), N: s.N()},
			PollsPerMinute: 60 / period,
		})
	}
	return out, nil
}

// FormatPeriodSweep renders the polling-period sweep.
func FormatPeriodSweep(points []PeriodPoint) string {
	var b strings.Builder
	b.WriteString("FFT (load+traffic, automatic selection) vs Remos polling period\n")
	fmt.Fprintf(&b, "%12s %14s %12s %16s\n", "period (s)", "elapsed (s)", "95% CI", "polls/minute")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.0f %14.1f %11.1f %16.1f\n",
			p.Period, p.Auto.Mean, p.Auto.CI95, p.PollsPerMinute)
	}
	return b.String()
}

// FormatLoadSweep renders a load sweep.
func FormatLoadSweep(points []SweepPoint) string {
	return formatSweep("FFT sensitivity to processor load (arrival rate/node)", points)
}

// FormatTrafficSweep renders a traffic sweep.
func FormatTrafficSweep(points []SweepPoint) string {
	return formatSweep("FFT sensitivity to network traffic (messages/s)", points)
}

func formatSweep(title string, points []SweepPoint) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%10s %14s %14s %12s\n", "intensity", "random (s)", "auto (s)", "benefit")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.3g %14.1f %14.1f %11.1f%%\n",
			p.X, p.Random.Mean, p.Auto.Mean, p.Benefit)
	}
	return b.String()
}
