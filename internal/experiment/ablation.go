package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/randx"
	"nodeselect/internal/stats"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// AlgorithmCell is one algorithm's mean elapsed time in the ablation.
type AlgorithmCell struct {
	Algorithm string
	Elapsed   Cell
}

// RunAlgorithmAblation compares every selection algorithm on the FFT under
// the combined load+traffic condition: the compute-only and bandwidth-only
// procedures of §3.2 against the balanced procedure of Figure 3, with the
// random and static baselines of §4.3.
func RunAlgorithmAblation(cfg Config) ([]AlgorithmCell, error) {
	cfg = cfg.withDefaults()
	var out []AlgorithmCell
	for _, algo := range core.Algorithms() {
		var s stats.Sample
		for rep := 0; rep < cfg.Replications; rep++ {
			app := apps.DefaultFFT()
			elapsed, _, err := RunOnce(cfg, app, CondBoth, algo, rep+2000)
			if err != nil {
				return nil, fmt.Errorf("experiment: ablation %s: %w", algo, err)
			}
			s.Add(elapsed)
		}
		out = append(out, AlgorithmCell{
			Algorithm: algo,
			Elapsed:   Cell{Mean: s.Mean(), CI95: s.CI95(), N: s.N()},
		})
	}
	return out, nil
}

// FormatAlgorithmAblation renders the algorithm comparison.
func FormatAlgorithmAblation(cells []AlgorithmCell) string {
	var b strings.Builder
	b.WriteString("FFT under load+traffic, by selection algorithm\n")
	fmt.Fprintf(&b, "%-12s %14s %12s\n", "algorithm", "elapsed (s)", "95% CI")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-12s %14.1f %11.1f\n", c.Algorithm, c.Elapsed.Mean, c.Elapsed.CI95)
	}
	return b.String()
}

// GreedyGap summarizes the optimality of the greedy balanced procedure and
// its literal paper variant against brute force on random topologies —
// the design-choice ablation DESIGN.md calls out (full threshold sweep
// versus Figure 3's early stopping).
type GreedyGap struct {
	// Trials is the number of random topologies evaluated.
	Trials int
	// SweepOptimal counts trials where the default full-sweep variant
	// matched the brute-force optimum exactly.
	SweepOptimal int
	// PaperOptimal counts the same for the literal Figure 3 variant
	// (single-edge removal, early stopping).
	PaperOptimal int
	// MeanSweepRatio and MeanPaperRatio are the mean achieved/optimal
	// minresource ratios.
	MeanSweepRatio float64
	MeanPaperRatio float64
}

// RunGreedyGapAblation measures both balanced variants against brute force
// over random trees with random load and traffic conditions.
func RunGreedyGapAblation(cfg Config) (GreedyGap, error) {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split("greedy-gap")
	const trials = 60
	gap := GreedyGap{Trials: trials}
	var sweepRatios, paperRatios stats.Sample
	for trial := 0; trial < trials; trial++ {
		src := rng.SplitN(trial)
		n := 5 + src.Intn(10)
		g := testbed.RandomTree(src, n, []float64{testbed.Ethernet100, testbed.ATM155})
		snap := topology.NewSnapshot(g)
		for i := 0; i < g.NumNodes(); i++ {
			snap.SetLoad(i, src.Float64()*4)
		}
		for l := 0; l < g.NumLinks(); l++ {
			snap.SetAvailBW(l, src.Float64()*g.Link(l).Capacity)
		}
		m := 2 + src.Intn(n-2)
		req := core.Request{M: m}
		opt, err := core.BruteForce(snap, req, core.ObjectiveBalanced)
		if err != nil {
			return GreedyGap{}, err
		}
		sweep, err := core.Balanced(snap, req)
		if err != nil {
			return GreedyGap{}, err
		}
		paper, err := core.BalancedOpt(snap, req, core.Options{
			PaperEarlyStop:         true,
			PaperSingleEdgeRemoval: true,
		})
		if err != nil {
			return GreedyGap{}, err
		}
		if opt.MinResource <= 0 {
			continue
		}
		sr := sweep.MinResource / opt.MinResource
		pr := paper.MinResource / opt.MinResource
		sweepRatios.Add(sr)
		paperRatios.Add(pr)
		if sr > 0.999999 {
			gap.SweepOptimal++
		}
		if pr > 0.999999 {
			gap.PaperOptimal++
		}
	}
	gap.MeanSweepRatio = sweepRatios.Mean()
	gap.MeanPaperRatio = paperRatios.Mean()
	return gap, nil
}

// FormatGreedyGap renders the greedy-gap ablation.
func FormatGreedyGap(g GreedyGap) string {
	var b strings.Builder
	b.WriteString("Balanced algorithm vs brute-force optimum on random trees\n")
	fmt.Fprintf(&b, "%-28s %10s %14s\n", "variant", "optimal", "mean ratio")
	fmt.Fprintf(&b, "%-28s %6d/%-3d %14.4f\n", "full sweep (default)",
		g.SweepOptimal, g.Trials, g.MeanSweepRatio)
	fmt.Fprintf(&b, "%-28s %6d/%-3d %14.4f\n", "paper Fig.3 (early stop)",
		g.PaperOptimal, g.Trials, g.MeanPaperRatio)
	return b.String()
}
