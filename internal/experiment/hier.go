package experiment

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/hierarchy"
	"nodeselect/internal/loadgen"
	"nodeselect/internal/randx"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// This file drives the hierarchical-selection benchmark behind
// `expt -run hier` and the benchdiff -hier gate: a randomized
// equivalence/quality suite on ≤200-node topologies (both paths must agree
// exactly), a gated flat-vs-quotient latency A/B on the 10k-node two-tier
// cluster testbed, and ungated showcase timings at 1k (fat-tree) and 50k
// (two-tier, quotient only — the flat path's all-pairs route table stops
// being worth materializing there).

// HierOptions parameterizes the benchmark.
type HierOptions struct {
	// Seed randomizes topology conditions and request sequences.
	Seed int64
	// Selects per rep in the gated A/B (default 6), Reps of independently
	// repainted conditions (default 5; Welch needs at least 2).
	Selects int
	Reps    int
	// EquivTopologies is the randomized suite size (default 24).
	EquivTopologies int
	// SkipScales drops the ungated 1k/50k showcase rows (used by tests).
	SkipScales bool
}

func (o HierOptions) withDefaults() HierOptions {
	if o.Selects <= 0 {
		o.Selects = 6
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.EquivTopologies <= 0 {
		o.EquivTopologies = 24
	}
	return o
}

// paintConditions draws randomized measurement conditions onto a snapshot
// the way the cluster collapse expects real two-tier networks to look:
// per-node loads are arbitrary (cluster signatures key on static speed,
// not load), access links of compute leaves sharing an anchor switch get
// one uniform draw (the bandwidth-uniform interior), and everything else
// gets an independent draw. All bandwidth fractions are quantized to a
// 1/16 grid so the sweep sees a bounded tier count at any scale, exactly
// as link capacities do in practice. A few access links are perturbed off
// their cluster's draw so partitions keep mixed collapsed/loose structure.
func paintConditions(g *topology.Graph, snap *topology.Snapshot, rng *randx.Source, perturb int) {
	quant := func(f float64) float64 {
		q := float64(int(f*16)) / 16
		if q < 1.0/16 {
			q = 1.0 / 16
		}
		return q
	}
	for _, id := range g.ComputeNodes() {
		snap.SetLoad(id, rng.Uniform(0, 2.5))
	}
	// One bandwidth draw per anchor of degree-1 compute leaves; every
	// other link draws independently.
	anchorFrac := make(map[int]float64)
	var accessLinks []int
	for _, l := range g.Links() {
		la, lb := l.A, l.B
		leaf := -1
		anchor := -1
		if g.Node(la).Kind == topology.Compute && len(g.Incident(la)) == 1 {
			leaf, anchor = la, lb
		} else if g.Node(lb).Kind == topology.Compute && len(g.Incident(lb)) == 1 {
			leaf, anchor = lb, la
		}
		if leaf >= 0 {
			frac, ok := anchorFrac[anchor]
			if !ok {
				frac = quant(rng.Uniform(0.2, 1.0))
				anchorFrac[anchor] = frac
			}
			snap.SetAvailBW(l.ID, frac*l.Capacity)
			accessLinks = append(accessLinks, l.ID)
		} else {
			snap.SetAvailBW(l.ID, quant(rng.Uniform(0.3, 1.0))*l.Capacity)
		}
	}
	for i := 0; i < perturb && len(accessLinks) > 0; i++ {
		lid := accessLinks[rng.Intn(len(accessLinks))]
		snap.SetAvailBW(lid, quant(rng.Uniform(0.2, 1.0))*g.Link(lid).Capacity)
	}
}

// hierEquivCase builds the randomized request variants compared on each
// topology. The first variants sit inside the quotient path's equivalence
// class; the tail (M=1, pinned) deliberately falls outside it so the
// fallback seam is exercised by the same suite.
func hierEquivCases(g *topology.Graph, rng *randx.Source) []struct {
	algo string
	req  core.Request
} {
	compute := g.ComputeNodes()
	m := 2 + rng.Intn(6)
	if m > len(compute) {
		m = len(compute)
	}
	pin := compute[rng.Intn(len(compute))]
	return []struct {
		algo string
		req  core.Request
	}{
		{core.AlgoBalanced, core.Request{M: m}},
		{core.AlgoBandwidth, core.Request{M: m}},
		{core.AlgoBalanced, core.Request{M: m, MinBW: 30e6}},
		{core.AlgoBandwidth, core.Request{M: m, MinCPU: 0.3}},
		{core.AlgoBalanced, core.Request{M: m, ComputePriority: 2, RefCapacity: 1e9}},
		{core.AlgoBalanced, core.Request{M: 1}},
		{core.AlgoBalanced, core.Request{M: m, Pinned: []int{pin}}},
	}
}

// runHierEquivalence runs the randomized equivalence/quality suite: every
// case is answered by the flat path and the hierarchical path, and the
// outcomes — node sets, every score field, and errors alike — must be
// identical.
func runHierEquivalence(opt HierOptions) loadgen.HierEquivalence {
	eq := loadgen.HierEquivalence{QualityRatio: 1}
	quotient := 0
	for i := 0; i < opt.EquivTopologies; i++ {
		rng := randx.New(opt.Seed).Split("hier-equiv").SplitN(i)
		var g *topology.Graph
		switch i % 4 {
		case 0, 1:
			g = testbed.MultiCluster(3+rng.Intn(3), 5+rng.Intn(8), testbed.Ethernet100, 1e9)
		case 2:
			g = testbed.MultiCluster(2+rng.Intn(2), 12+rng.Intn(12), testbed.Ethernet100, 1e9)
		default:
			g = testbed.FatTree(4, testbed.Ethernet100, 1e9)
		}
		snap := topology.NewSnapshot(g)
		paintConditions(g, snap, rng.Split("paint"), 1+rng.Intn(2))
		part := hierarchy.Build(snap)
		eq.Topologies++
		for _, c := range hierEquivCases(g, rng.Split("req")) {
			fres, ferr := core.Select(c.algo, snap, c.req, randx.New(opt.Seed).Split("flat"))
			hres, path, herr := hierarchy.Select(c.algo, snap, part, c.req, randx.New(opt.Seed).Split("flat"), core.Options{})
			eq.Cases++
			if path == hierarchy.PathQuotient {
				quotient++
			}
			switch {
			case ferr != nil || herr != nil:
				if ferr != nil && herr != nil && ferr.Error() == herr.Error() {
					eq.Exact++
				}
			case reflect.DeepEqual(fres, hres):
				eq.Exact++
				if fres.MinResource > 0 {
					if ratio := hres.MinResource / fres.MinResource; ratio < eq.QualityRatio {
						eq.QualityRatio = ratio
					}
				}
			default:
				if fres.MinResource > 0 && hres.MinResource/fres.MinResource < eq.QualityRatio {
					eq.QualityRatio = hres.MinResource / fres.MinResource
				}
			}
		}
	}
	if eq.Cases > 0 {
		eq.QuotientShare = float64(quotient) / float64(eq.Cases)
	}
	return eq
}

// hierABRequests is the paired request sequence both arms time: varying
// set sizes and both sweep objectives, with an occasional CPU floor — all
// inside the quotient path's equivalence class, so the comparison is
// between two implementations of the same answer.
func hierABRequests(n int) []struct {
	algo string
	req  core.Request
} {
	sizes := []int{4, 8, 16, 32}
	out := make([]struct {
		algo string
		req  core.Request
	}, n)
	for i := range out {
		out[i].req = core.Request{M: sizes[i%len(sizes)]}
		if i%2 == 1 {
			out[i].algo = core.AlgoBandwidth
		} else {
			out[i].algo = core.AlgoBalanced
		}
		if i%4 == 3 {
			out[i].req.MinCPU = 0.2
		}
	}
	return out
}

// timeSelects runs the request sequence through one arm and returns the
// mean latency per select in seconds. The run function must panic-free
// answer every request; errors abort the benchmark (the testbeds are
// painted to keep every request feasible).
func timeSelects(reqs []struct {
	algo string
	req  core.Request
}, run func(algo string, req core.Request) error) (float64, error) {
	start := time.Now()
	for _, c := range reqs {
		if err := run(c.algo, c.req); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(len(reqs)), nil
}

// runHierAB times the paired A/B on one topology: per rep, repaint the
// conditions, rebuild the partition (untimed — it is a once-per-epoch
// cost, reported separately), warm both arms, then time the same request
// sequence through each. withFlat=false skips the flat arm entirely,
// which also skips materializing the graph's all-pairs route table.
func runHierAB(name string, g *topology.Graph, opt HierOptions, selects, reps int, withFlat bool) (flat, hier loadgen.HierModeReport, scale loadgen.HierScale, err error) {
	snap := topology.NewSnapshot(g)
	nodes := len(g.Nodes())
	flat = loadgen.HierModeReport{Topology: name, Nodes: nodes, Selects: selects, Reps: reps}
	hier = flat
	scale = loadgen.HierScale{Topology: name, Nodes: nodes}
	rng := randx.New(opt.Seed).Split("hier-ab").Split(name)
	src := randx.New(opt.Seed).Split("hier-src")
	reqs := hierABRequests(selects)
	for r := 0; r < reps; r++ {
		paintConditions(g, snap, rng.SplitN(r), 2)
		buildStart := time.Now()
		part := hierarchy.Build(snap)
		scale.PartitionBuildMs = time.Since(buildStart).Seconds() * 1e3
		scale.Clusters = part.Clusters()
		scale.CollapsedNodes = part.CollapsedNodes()

		runHier := func(algo string, req core.Request) error {
			_, path, herr := hierarchy.Select(algo, snap, part, req, src, core.Options{})
			if herr != nil {
				return fmt.Errorf("hier %s M=%d: %w", algo, req.M, herr)
			}
			if path != hierarchy.PathQuotient {
				return fmt.Errorf("hier %s M=%d answered by %s, not the quotient path", algo, req.M, path)
			}
			return nil
		}
		if err = runHier(reqs[0].algo, reqs[0].req); err != nil { // warm
			return
		}
		var mean float64
		if mean, err = timeSelects(reqs, runHier); err != nil {
			return
		}
		hier.LatencySamples = append(hier.LatencySamples, mean)

		if withFlat {
			runFlat := func(algo string, req core.Request) error {
				if _, ferr := core.Select(algo, snap, req, src); ferr != nil {
					return fmt.Errorf("flat %s M=%d: %w", algo, req.M, ferr)
				}
				return nil
			}
			if err = runFlat(reqs[0].algo, reqs[0].req); err != nil { // warm (builds routes)
				return
			}
			if mean, err = timeSelects(reqs, runFlat); err != nil {
				return
			}
			flat.LatencySamples = append(flat.LatencySamples, mean)
		}
	}
	for _, s := range hier.LatencySamples {
		hier.MeanLatencyMs += s * 1e3 / float64(len(hier.LatencySamples))
	}
	scale.HierMeanMs = hier.MeanLatencyMs
	if withFlat {
		for _, s := range flat.LatencySamples {
			flat.MeanLatencyMs += s * 1e3 / float64(len(flat.LatencySamples))
		}
		scale.FlatMeanMs = flat.MeanLatencyMs
		if hier.MeanLatencyMs > 0 {
			scale.Speedup = flat.MeanLatencyMs / hier.MeanLatencyMs
		}
	}
	return flat, hier, scale, nil
}

// RunHier runs the equivalence suite, the gated 10k A/B, and the showcase
// scales, and gates the whole report at the acceptance thresholds (10x
// latency speedup at Welch p < 0.005, minresource within 0.95x of flat).
func RunHier(opt HierOptions) (loadgen.HierReport, error) {
	opt = opt.withDefaults()
	eq := runHierEquivalence(opt)

	flat, hier, _, err := runHierAB("tiered:100x100",
		testbed.MultiCluster(100, 100, testbed.Ethernet100, 1e9),
		opt, opt.Selects, opt.Reps, true)
	if err != nil {
		return loadgen.HierReport{}, fmt.Errorf("hier: 10k A/B: %w", err)
	}

	var scales []loadgen.HierScale
	if !opt.SkipScales {
		_, _, ft, err := runHierAB("fattree:16",
			testbed.FatTree(16, testbed.Ethernet100, 1e9), opt, 4, 2, true)
		if err != nil {
			return loadgen.HierReport{}, fmt.Errorf("hier: 1k fat-tree: %w", err)
		}
		_, _, big, err := runHierAB("tiered:500x100",
			testbed.MultiCluster(500, 100, testbed.Ethernet100, 1e9), opt, 4, 2, false)
		if err != nil {
			return loadgen.HierReport{}, fmt.Errorf("hier: 50k two-tier: %w", err)
		}
		scales = []loadgen.HierScale{ft, big}
	}

	return loadgen.GateHier(eq, flat, hier, scales, 10.0, 0.005, 0.95), nil
}

// FormatHier renders the benchmark report (hier.json carries the same
// numbers machine-readably).
func FormatHier(r loadgen.HierReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hierarchical selection benchmark\n")
	fmt.Fprintf(&b, "  equivalence: %d/%d exact over %d topologies (quotient share %.2f, quality ratio %.4f)\n",
		r.Equivalence.Exact, r.Equivalence.Cases, r.Equivalence.Topologies,
		r.Equivalence.QuotientShare, r.Equivalence.QualityRatio)
	fmt.Fprintf(&b, "  %s (%d nodes), %d selects x %d reps:\n",
		r.Flat.Topology, r.Flat.Nodes, r.Flat.Selects, r.Flat.Reps)
	fmt.Fprintf(&b, "    flat %.3fms/select   hier %.4fms/select   speedup %.1fx (floor %.1fx, welch p %.4g at alpha %.4g)\n",
		r.Flat.MeanLatencyMs, r.Hier.MeanLatencyMs, r.Speedup, r.MinSpeedup, r.WelchP, r.Alpha)
	for _, s := range r.Scales {
		fmt.Fprintf(&b, "  %s (%d nodes): %d clusters (%d collapsed), partition %.2fms, hier %.4fms/select",
			s.Topology, s.Nodes, s.Clusters, s.CollapsedNodes, s.PartitionBuildMs, s.HierMeanMs)
		if s.Speedup > 0 {
			fmt.Fprintf(&b, ", flat %.3fms (%.1fx)", s.FlatMeanMs, s.Speedup)
		} else {
			fmt.Fprintf(&b, ", flat not run")
		}
		b.WriteByte('\n')
	}
	if r.Pass {
		fmt.Fprintf(&b, "  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(r.Failures, "; "))
	}
	return b.String()
}
