package experiment

import (
	"fmt"
	"math"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
)

// AutosizeRow is one candidate node count in the §3.4 auto-sizing
// experiment.
type AutosizeRow struct {
	M         int
	Predicted float64 // model estimate on the selected placement
	Actual    float64 // simulated execution time on that placement
}

// AutosizeAppResult reports the coupled count-and-set selection of §3.4
// ("Variable number of execution nodes") for one application, validated
// against simulation.
type AutosizeAppResult struct {
	App  string
	Rows []AutosizeRow
	// ChosenM minimizes the model's prediction; BestActualM minimizes
	// the simulated execution time.
	ChosenM     int
	BestActualM int
	// Regret is (actual at ChosenM) / (actual at BestActualM) - 1.
	Regret float64
}

// PerfModelFor adapts a built-in application's analytic estimator to
// core.PerfModel: the configuration is rescaled to the candidate count and
// evaluated at the placement's worst available CPU and pairwise bottleneck
// bandwidth.
func PerfModelFor(app apps.App) core.PerfModel {
	return core.PerfModelFunc(func(res core.Result) float64 {
		_, estimate, err := apps.ScaledWithModel(app, len(res.Nodes))
		if err != nil {
			return math.Inf(1)
		}
		return estimate(res.MinCPU, res.PairMinBW)
	})
}

// RunAutosize evaluates node counts 2..8 for each of the three paper
// applications on the loaded testbed: for every m it selects a placement
// with the balanced algorithm, records the model's estimate, and measures
// the actual simulated execution time on an identically seeded scenario.
// The chosen count is the model's argmin; the result reports how close
// that lands to the simulated optimum.
func RunAutosize(cfg Config) ([]AutosizeAppResult, error) {
	cfg = cfg.withDefaults()
	var out []AutosizeAppResult
	for _, base := range appsUnderTest() {
		res := AutosizeAppResult{App: base.Name()}
		bestPred, bestActual := math.Inf(1), math.Inf(1)
		actualByM := map[int]float64{}
		for m := 2; m <= 8; m++ {
			scaled, estimate, err := apps.ScaledWithModel(base, m)
			if err != nil {
				return nil, err
			}
			// Identical label per app: every candidate count faces the
			// same background load process.
			sc := NewScenario(cfg, CondLoad, "autosize/"+base.Name())
			sel, err := sc.SelectNodes("balanced", m)
			if err != nil {
				return nil, fmt.Errorf("experiment: autosize %s m=%d: %w", base.Name(), m, err)
			}
			pred := estimate(sel.MinCPU, sel.PairMinBW)
			actual, err := sc.RunApp(scaled, sel.Nodes)
			if err != nil {
				return nil, fmt.Errorf("experiment: autosize %s m=%d: %w", base.Name(), m, err)
			}
			res.Rows = append(res.Rows, AutosizeRow{M: m, Predicted: pred, Actual: actual})
			actualByM[m] = actual
			if pred < bestPred {
				bestPred = pred
				res.ChosenM = m
			}
			if actual < bestActual {
				bestActual = actual
				res.BestActualM = m
			}
		}
		res.Regret = actualByM[res.ChosenM]/actualByM[res.BestActualM] - 1
		out = append(out, res)
	}
	return out, nil
}

// FormatAutosize renders the auto-sizing tables.
func FormatAutosize(results []AutosizeAppResult) string {
	var b strings.Builder
	b.WriteString("Node-count auto-sizing under processor load (model vs simulation)\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s:\n", r.App)
		fmt.Fprintf(&b, "%4s %14s %14s\n", "m", "predicted (s)", "actual (s)")
		for _, row := range r.Rows {
			marker := ""
			if row.M == r.ChosenM {
				marker = "<- chosen"
			}
			fmt.Fprintf(&b, "%4d %14.1f %14.1f %s\n", row.M, row.Predicted, row.Actual, marker)
		}
		fmt.Fprintf(&b, "  chosen m = %d, simulated optimum m = %d, regret %.1f%%\n",
			r.ChosenM, r.BestActualM, 100*r.Regret)
	}
	return b.String()
}
