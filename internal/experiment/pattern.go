package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/stats"
)

// PatternCell is one placement policy's outcome in the pattern-awareness
// experiment.
type PatternCell struct {
	Policy  string
	Elapsed Cell
}

// RunPatternAblation compares pattern-blind and pattern-aware placement
// (§3.4 "Custom execution patterns") for the pipeline application under
// background traffic: the blind policy runs the stages over its balanced
// all-pair selection in node-ID order, while the aware policy both selects
// with the pipeline objective and orders the stages along its
// bandwidth-greedy chain.
func RunPatternAblation(cfg Config) ([]PatternCell, error) {
	cfg = cfg.withDefaults()
	policies := []string{"blind/all-pair", "aware/pipeline"}
	var out []PatternCell
	for _, policy := range policies {
		var s stats.Sample
		for rep := 0; rep < cfg.Replications; rep++ {
			label := fmt.Sprintf("pattern/%s/rep%d", policy, rep)
			sc := NewScenario(cfg, CondTraffic, label)
			snap, err := sc.Collector.Snapshot(cfg.Mode, false)
			if err != nil {
				return nil, err
			}
			// Eight stages cannot fit on one six-node router, so the
			// chain must span the backbone; stage ordering then decides
			// how many times each block crosses it.
			app := &apps.Pipeline{Items: 40, Nodes: 8, StageSeconds: 0.3, BlockBytes: 6e6}
			var nodes []int
			if policy == "aware/pipeline" {
				res, err := core.BalancedPattern(snap, core.Request{M: app.Nodes}, core.PatternPipeline)
				if err != nil {
					return nil, err
				}
				nodes = res.Order // stage order along the chain
			} else {
				res, err := core.Balanced(snap, core.Request{M: app.Nodes})
				if err != nil {
					return nil, err
				}
				nodes = res.Nodes // node-ID order
			}
			elapsed, err := sc.RunApp(app, nodes)
			if err != nil {
				return nil, err
			}
			s.Add(elapsed)
		}
		out = append(out, PatternCell{
			Policy:  policy,
			Elapsed: Cell{Mean: s.Mean(), CI95: s.CI95(), N: s.N()},
		})
	}
	return out, nil
}

// FormatPatternAblation renders the comparison.
func FormatPatternAblation(cells []PatternCell) string {
	var b strings.Builder
	b.WriteString("Pipeline under traffic: pattern-blind vs pattern-aware placement\n")
	fmt.Fprintf(&b, "%-16s %14s %12s\n", "policy", "elapsed (s)", "95% CI")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-16s %14.1f %11.1f\n", c.Policy, c.Elapsed.Mean, c.Elapsed.CI95)
	}
	return b.String()
}
