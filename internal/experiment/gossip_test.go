package experiment

import (
	"reflect"
	"testing"
)

// TestGossipConvergence is the gossip-plane acceptance test on the
// 100-agent in-process fleet: p99 propagation under 5 gossip rounds
// despite churn, full reconvergence after a healed partition, and no
// live snapshot entry older than the staleness bound while its origin
// and observer stay live. Deterministic (manual clock, seeded mesh), so
// it runs under -race in CI.
func TestGossipConvergence(t *testing.T) {
	rep, err := RunGossip(GossipOptions{Seed: 1, Sizes: []int{100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sizes) != 1 {
		t.Fatalf("got %d size results, want 1", len(rep.Sizes))
	}
	res := rep.Sizes[0]
	if res.Agents != 100 {
		t.Fatalf("agents = %d, want 100", res.Agents)
	}
	if res.Samples < 400 {
		t.Fatalf("only %d propagation samples; CDF too thin", res.Samples)
	}
	if res.P99 >= 5 {
		t.Fatalf("p99 propagation = %.1f rounds, want < 5", res.P99)
	}
	if !res.Converged {
		t.Fatal("mesh did not reconverge after healed partition")
	}
	if res.MaxEntryAgeSeconds > res.StalenessBound {
		t.Fatalf("live entry aged to %.1fs, bound %.1fs",
			res.MaxEntryAgeSeconds, res.StalenessBound)
	}
	if !rep.Pass {
		t.Fatal("report did not pass")
	}

	// Determinism: the same seed reproduces the same report exactly.
	again, err := RunGossip(GossipOptions{Seed: 1, Sizes: []int{100}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Fatalf("same seed produced different reports:\n%+v\n%+v", rep, again)
	}
}

func TestGossipRejectsTinyFleet(t *testing.T) {
	if _, err := RunGossip(GossipOptions{Sizes: []int{1}}); err == nil {
		t.Fatal("size-1 fleet accepted")
	}
}
