// Package experiment reproduces the paper's evaluation (§4): executions of
// the FFT, Airshed and MRI workloads on the simulated CMU testbed under
// synthetic processor load and network traffic, with nodes chosen randomly
// or by the automatic selection procedures, replicated across seeds and
// reduced to the paper's Table 1 layout. The package also reproduces the
// Figure 4 congestion-avoidance scenario, the §4.3 "increase cut in half"
// headline, and additional sensitivity sweeps and algorithm ablations.
package experiment

import (
	"fmt"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/loadgen"
	"nodeselect/internal/netsim"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
	"nodeselect/internal/trafficgen"
)

// Condition is a column group of Table 1: which generators are running.
type Condition int

const (
	// CondNone runs on the unloaded testbed (the reference column).
	CondNone Condition = iota
	// CondLoad runs the processor load generator only.
	CondLoad
	// CondTraffic runs the network traffic generator only.
	CondTraffic
	// CondBoth runs both generators.
	CondBoth
)

// String names the condition as in Table 1.
func (c Condition) String() string {
	switch c {
	case CondNone:
		return "none"
	case CondLoad:
		return "load"
	case CondTraffic:
		return "traffic"
	case CondBoth:
		return "load+traffic"
	default:
		return fmt.Sprintf("Condition(%d)", int(c))
	}
}

// Conditions lists the three loaded columns of Table 1 in order.
var Conditions = []Condition{CondLoad, CondTraffic, CondBoth}

// Config parameterizes the whole evaluation.
type Config struct {
	// Seed is the master random seed; every replication derives its own
	// substreams from it.
	Seed int64
	// Replications is the number of seeded repetitions per cell
	// (default 5).
	Replications int
	// Warmup is the simulated time, in seconds, the generators run
	// before node selection and application start, so load averages and
	// traffic counters reflect steady state (default 300).
	Warmup float64
	// LoadRate is the per-node job arrival rate of the load generator
	// (default 0.0055 jobs/s: offered CPU load ~0.55 with the default
	// durations; see EXPERIMENTS.md for the calibration rationale).
	LoadRate float64
	// LoadMeanDuration is the mean job duration in seconds (default 100,
	// heavy-tailed, so load conditions persist across application runs).
	LoadMeanDuration float64
	// TrafficRate is the network-wide message rate (default 4/s,
	// ~0.7 utilization of the inter-router links with the default sizes;
	// substantially higher rates oversubscribe the open-loop generator).
	TrafficRate float64
	// TrafficMeanBytes and TrafficSDBytes parameterize the log-normal
	// message sizes (defaults 5 MB / 8 MB).
	TrafficMeanBytes float64
	TrafficSDBytes   float64
	// Mode is the Remos query mode used for automatic selection
	// (default Window).
	Mode remos.Mode
	// CollectorPeriod and CollectorHistory configure the Remos collector
	// (defaults 2 s / 15 samples).
	CollectorPeriod  float64
	CollectorHistory int
}

// Default returns the configuration used to produce EXPERIMENTS.md.
func Default() Config {
	return Config{
		Seed:             1,
		Replications:     5,
		Warmup:           300,
		LoadRate:         0.0055,
		LoadMeanDuration: 100,
		TrafficRate:      4,
		TrafficMeanBytes: 5e6,
		TrafficSDBytes:   8e6,
		Mode:             remos.Window,
		CollectorPeriod:  2,
		CollectorHistory: 15,
	}
}

func (c Config) withDefaults() Config {
	d := Default()
	if c.Replications <= 0 {
		c.Replications = d.Replications
	}
	if c.Warmup <= 0 {
		c.Warmup = d.Warmup
	}
	if c.LoadRate <= 0 {
		c.LoadRate = d.LoadRate
	}
	if c.LoadMeanDuration <= 0 {
		c.LoadMeanDuration = d.LoadMeanDuration
	}
	if c.TrafficRate <= 0 {
		c.TrafficRate = d.TrafficRate
	}
	if c.TrafficMeanBytes <= 0 {
		c.TrafficMeanBytes = d.TrafficMeanBytes
	}
	if c.TrafficSDBytes <= 0 {
		c.TrafficSDBytes = d.TrafficSDBytes
	}
	if c.CollectorPeriod <= 0 {
		c.CollectorPeriod = d.CollectorPeriod
	}
	if c.CollectorHistory <= 0 {
		c.CollectorHistory = d.CollectorHistory
	}
	return c
}

// Scenario is one prepared simulation of the CMU testbed: network,
// generators per condition, and a running Remos collector, warmed up and
// ready to place an application.
type Scenario struct {
	Engine    *sim.Engine
	Net       *netsim.Network
	Collector *remos.Collector
	cfg       Config
	rng       *randx.Source
}

// NewScenario builds and warms up a scenario. label isolates the random
// substream (replication index, condition, app name).
func NewScenario(cfg Config, cond Condition, label string) *Scenario {
	cfg = cfg.withDefaults()
	rng := randx.New(cfg.Seed).Split(label)
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{})
	if cond == CondLoad || cond == CondBoth {
		lg := loadgen.New(net, loadgen.Config{
			ArrivalRate: cfg.LoadRate,
			Duration:    loadgen.DefaultDuration(cfg.LoadMeanDuration),
		}, rng.Split("load"))
		lg.Start()
	}
	if cond == CondTraffic || cond == CondBoth {
		tg := trafficgen.New(net, trafficgen.Config{
			MessageRate: cfg.TrafficRate,
			Size:        randx.LogNormalFromMoments(cfg.TrafficMeanBytes, cfg.TrafficSDBytes),
		}, rng.Split("traffic"))
		tg.Start()
	}
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{
		Period:  cfg.CollectorPeriod,
		History: cfg.CollectorHistory,
	})
	col.Start(e)
	e.RunUntil(cfg.Warmup)
	return &Scenario{Engine: e, Net: net, Collector: col, cfg: cfg, rng: rng}
}

// SelectNodes picks an application's nodes with the given algorithm, using
// the Remos snapshot for informed algorithms and the scenario's random
// stream for the random baseline.
func (s *Scenario) SelectNodes(algo string, m int) (core.Result, error) {
	snap, err := s.Collector.Snapshot(s.cfg.Mode, false)
	if err != nil {
		return core.Result{}, fmt.Errorf("experiment: %w", err)
	}
	return core.Select(algo, snap, core.Request{M: m}, s.rng.Split("select"))
}

// RunApp executes the app on the given nodes and returns its elapsed time.
func (s *Scenario) RunApp(app apps.App, nodes []int) (float64, error) {
	res, err := apps.Run(s.Net, app, nodes)
	if err != nil {
		return 0, err
	}
	return res.Elapsed(), nil
}

// RunOnce builds a scenario and runs one (app, condition, algorithm)
// execution, returning the elapsed time and the chosen nodes.
func RunOnce(cfg Config, app apps.App, cond Condition, algo string, rep int) (float64, []int, error) {
	label := fmt.Sprintf("%s/%s/%s/rep%d", app.Name(), cond, algo, rep)
	sc := NewScenario(cfg, cond, label)
	sel, err := sc.SelectNodes(algo, app.NodesRequired())
	if err != nil {
		return 0, nil, err
	}
	elapsed, err := sc.RunApp(app, sel.Nodes)
	if err != nil {
		return 0, nil, err
	}
	return elapsed, sel.Nodes, nil
}

// appsUnderTest returns fresh instances of the three paper applications.
func appsUnderTest() []apps.App {
	return []apps.App{apps.DefaultFFT(), apps.DefaultAirshed(), apps.DefaultMRI()}
}
