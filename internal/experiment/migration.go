package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/apps"
	"nodeselect/internal/core"
	"nodeselect/internal/netsim"
	"nodeselect/internal/remos"
	"nodeselect/internal/sim"
	"nodeselect/internal/testbed"
)

// MigrationResult compares a long-running loosely synchronous job that
// stays on its initial nodes against one that migrates when the §3.3
// migration advisor recommends it, after competing load lands on the
// initial placement mid-run.
type MigrationResult struct {
	// StayElapsed is the total time without migration.
	StayElapsed float64
	// MigrateElapsed is the total time with advisory migration,
	// including the state-transfer cost.
	MigrateElapsed float64
	// Migrated reports whether the advisor actually triggered a move.
	Migrated bool
	// MigrationAt is the simulation time of the move (0 if none).
	MigrationAt float64
	// FromNodes and ToNodes are the placements (names).
	FromNodes, ToNodes []string
}

// migrationJob runs `rounds` iterations of a one-iteration FFT workload on
// a mutable node set, consulting the migration advisor between rounds when
// advise is true. Competing load lands on the initial nodes after
// loadAfter rounds. stateBytes is the per-node checkpoint transferred on
// migration.
func migrationJob(advise bool) (MigrationResult, error) {
	const (
		rounds      = 60
		loadAfter   = 10
		competitors = 4
		stateBytes  = 64e6
		checkEvery  = 5
	)
	e := sim.NewEngine()
	net := netsim.New(e, testbed.CMU(), netsim.Config{LoadAvgWindow: 30})
	g := net.Graph()
	col := remos.NewCollector(remos.NewSimSource(net), remos.CollectorConfig{Period: 2, History: 10})
	col.Start(e)
	e.RunUntil(30)

	res := MigrationResult{}
	req := core.Request{M: 4}
	snap, err := col.Snapshot(remos.Window, true)
	if err != nil {
		return res, err
	}
	sel, err := core.Balanced(snap, req)
	if err != nil {
		return res, err
	}
	nodes := sel.Nodes
	res.FromNodes = sel.Names(g)
	start := e.Now()

	iter := apps.DefaultFFT()
	iter.Iterations = 1

	for round := 0; round < rounds; round++ {
		if round == loadAfter {
			// Competing jobs land on the job's current nodes.
			for _, id := range nodes {
				for k := 0; k < competitors; k++ {
					net.StartTask(id, 1e9, netsim.Background, nil)
				}
			}
		}
		if advise && round > loadAfter && round%checkEvery == 0 {
			// The advisor sees background-only conditions, excluding the
			// job's own load and traffic (§3.3).
			bg, err := col.Snapshot(remos.Window, true)
			if err != nil {
				return res, err
			}
			adv, err := core.AdviseMigration(bg, nodes, req, core.MigrationPolicy{MinGain: 0.5})
			if err != nil {
				return res, err
			}
			if adv.Move {
				// Pay the migration cost: each old node ships its state
				// to the corresponding new node.
				done := 0
				need := len(nodes)
				for i := range nodes {
					from, to := nodes[i], adv.Candidate.Nodes[i]
					if from == to {
						need--
						continue
					}
					net.StartFlow(from, to, stateBytes, netsim.Application, func() { done++ })
				}
				net.Engine().RunWhile(func() bool { return done < need })
				nodes = adv.Candidate.Nodes
				res.Migrated = true
				res.MigrationAt = e.Now()
				res.ToNodes = adv.Candidate.Names(g)
			}
		}
		if _, err := apps.Run(net, iter, nodes); err != nil {
			return res, err
		}
	}
	elapsed := e.Now() - start
	if advise {
		res.MigrateElapsed = elapsed
	} else {
		res.StayElapsed = elapsed
	}
	return res, nil
}

// RunMigration runs the stay and migrate policies on identical scenarios
// and combines the outcomes.
func RunMigration(cfg Config) (MigrationResult, error) {
	_ = cfg // the scenario is deterministic; cfg reserved for future knobs
	stay, err := migrationJob(false)
	if err != nil {
		return MigrationResult{}, fmt.Errorf("experiment: migration stay: %w", err)
	}
	move, err := migrationJob(true)
	if err != nil {
		return MigrationResult{}, fmt.Errorf("experiment: migration move: %w", err)
	}
	move.StayElapsed = stay.StayElapsed
	return move, nil
}

// FormatMigration renders the migration comparison.
func FormatMigration(r MigrationResult) string {
	var b strings.Builder
	b.WriteString("Dynamic migration: 60-round job, competitors arrive at round 10\n")
	fmt.Fprintf(&b, "  stay on initial nodes:  %.1f s\n", r.StayElapsed)
	fmt.Fprintf(&b, "  with advisory migration: %.1f s\n", r.MigrateElapsed)
	fmt.Fprintf(&b, "  migrated: %v", r.Migrated)
	if r.Migrated {
		fmt.Fprintf(&b, " at t=%.1fs: %s -> %s",
			r.MigrationAt, strings.Join(r.FromNodes, ","), strings.Join(r.ToNodes, ","))
	}
	b.WriteString("\n")
	if r.MigrateElapsed > 0 && r.StayElapsed > 0 {
		fmt.Fprintf(&b, "  speedup from migration: %.2fx\n", r.StayElapsed/r.MigrateElapsed)
	}
	return b.String()
}
