package experiment

import "testing"

// TestHASchedules is the replicated-ledger acceptance test: the three
// fault schedules (kill-the-leader mid-admission, follower partition,
// torn/delayed append) must all hold their invariants — no acknowledged
// lease lost, no double admission, failover inside the budget, and a
// restarted replica recovering a torn log into the committed state.
func TestHASchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock election timeouts; skipped in -short")
	}
	rep, err := RunHA(HAOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(rep.Scenarios))
	}
	for _, sc := range rep.Scenarios {
		if sc.Lost != 0 {
			t.Errorf("%s: %d acked leases lost", sc.Name, sc.Lost)
		}
		if sc.DoubleAdmissions != 0 {
			t.Errorf("%s: %d double admissions", sc.Name, sc.DoubleAdmissions)
		}
		if sc.Acked == 0 {
			t.Errorf("%s: no admissions acknowledged at all", sc.Name)
		}
		for _, ch := range sc.Checks {
			if !ch.Pass {
				t.Errorf("%s: check %s failed: %s", sc.Name, ch.Name, ch.Detail)
			}
		}
	}
	if kill := rep.Scenarios[0]; kill.FailoverMS <= 0 || kill.FailoverMS > rep.FailoverBudgetMS {
		t.Errorf("kill-leader failover %.0fms outside (0, %.0fms]", kill.FailoverMS, rep.FailoverBudgetMS)
	}
	if !rep.Pass {
		t.Fatal("HA report did not pass")
	}
}
