package experiment

import (
	"fmt"
	"strings"

	"nodeselect/internal/stats"
)

// Cell is one mean measurement of Table 1.
type Cell struct {
	Mean float64
	CI95 float64
	N    int
	// Values holds the raw replication measurements (for significance
	// testing); may be nil for synthesized cells.
	Values []float64
}

// Row is one application's row of Table 1.
type Row struct {
	// App names the application; NodeCount is its node requirement.
	App       string
	NodeCount int
	// Reference is the unloaded execution time (last column of Table 1).
	Reference float64
	// Random and Auto hold the three loaded cells in Conditions order
	// (load, traffic, load+traffic) for random and automatic selection.
	Random [3]Cell
	Auto   [3]Cell
}

// Change returns the percent change of automatic selection relative to
// random for condition index i (negative is an improvement), as reported
// in Table 1's parenthesized columns.
func (r Row) Change(i int) float64 {
	return stats.PercentChange(r.Random[i].Mean, r.Auto[i].Mean)
}

// Increase returns the percent increase of a cell over the unloaded
// reference, the quantity behind the §4.3 "cut in half" headline.
func (r Row) Increase(auto bool, i int) float64 {
	cell := r.Random[i]
	if auto {
		cell = r.Auto[i]
	}
	return stats.PercentChange(r.Reference, cell.Mean)
}

// RunTable1 reproduces the paper's Table 1: each application under each
// generator condition with random and automatic node selection, plus the
// unloaded reference run.
func RunTable1(cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, app := range appsUnderTest() {
		row := Row{App: app.Name(), NodeCount: app.NodesRequired()}
		// Reference: unloaded testbed, automatically selected nodes
		// (equivalent to any fixed placement when everything is idle).
		ref, _, err := RunOnce(cfg, app, CondNone, "balanced", 0)
		if err != nil {
			return nil, fmt.Errorf("experiment: reference %s: %w", app.Name(), err)
		}
		row.Reference = ref
		for ci, cond := range Conditions {
			var random, auto stats.Sample
			for rep := 0; rep < cfg.Replications; rep++ {
				r, _, err := RunOnce(cfg, app, cond, "random", rep)
				if err != nil {
					return nil, fmt.Errorf("experiment: %s/%s/random: %w", app.Name(), cond, err)
				}
				random.Add(r)
				a, _, err := RunOnce(cfg, app, cond, "balanced", rep)
				if err != nil {
					return nil, fmt.Errorf("experiment: %s/%s/auto: %w", app.Name(), cond, err)
				}
				auto.Add(a)
			}
			row.Random[ci] = Cell{Mean: random.Mean(), CI95: random.CI95(), N: random.N(), Values: random.Values()}
			row.Auto[ci] = Cell{Mean: auto.Mean(), CI95: auto.CI95(), N: auto.N(), Values: auto.Values()}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable1 renders rows in the layout of the paper's Table 1.
func FormatTable1(rows []Row) string {
	var b strings.Builder
	b.WriteString("Execution Time with External Load and Traffic (seconds)\n")
	b.WriteString(strings.Repeat("-", 112) + "\n")
	fmt.Fprintf(&b, "%-10s %5s | %28s | %46s | %9s\n",
		"", "", "Randomly selected Nodes", "Automatically selected Nodes", "Reference")
	fmt.Fprintf(&b, "%-10s %5s | %8s %9s %9s | %14s %14s %16s | %9s\n",
		"Program", "Nodes", "Load", "Traffic", "Load+Traf",
		"Load", "Traffic", "Load+Traf", "Unloaded")
	b.WriteString(strings.Repeat("-", 112) + "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d | %8.1f %9.1f %9.1f | %6.1f (%+5.1f%%) %6.1f (%+5.1f%%) %8.1f (%+5.1f%%) | %9.1f\n",
			r.App, r.NodeCount,
			r.Random[0].Mean, r.Random[1].Mean, r.Random[2].Mean,
			r.Auto[0].Mean, r.Change(0),
			r.Auto[1].Mean, r.Change(1),
			r.Auto[2].Mean, r.Change(2),
			r.Reference)
	}
	b.WriteString(strings.Repeat("-", 112) + "\n")
	return b.String()
}

// FormatTable1Long renders each cell with its 95% confidence interval and
// sample count — the statistical treatment §4.4 emphasizes ("a large
// number of measurements is necessary to have statistically relevant
// results").
func FormatTable1Long(rows []Row) string {
	var b strings.Builder
	b.WriteString("Execution time, mean ± 95% CI over n replications (seconds)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s (%d nodes), unloaded reference %.1f:\n", r.App, r.NodeCount, r.Reference)
		for ci, cond := range Conditions {
			sig := ""
			if len(r.Random[ci].Values) > 1 && len(r.Auto[ci].Values) > 1 {
				var x, y stats.Sample
				x.AddAll(r.Random[ci].Values...)
				y.AddAll(r.Auto[ci].Values...)
				res := stats.WelchT(&x, &y)
				sig = fmt.Sprintf("   p=%.3f", res.P)
				if res.P < 0.05 {
					sig += " *"
				}
			}
			fmt.Fprintf(&b, "  %-14s random %7.1f ± %5.1f (n=%d)   auto %7.1f ± %5.1f (n=%d)   change %+6.1f%%%s\n",
				cond.String()+":",
				r.Random[ci].Mean, r.Random[ci].CI95, r.Random[ci].N,
				r.Auto[ci].Mean, r.Auto[ci].CI95, r.Auto[ci].N,
				r.Change(ci), sig)
		}
	}
	return b.String()
}

// Table1CSV renders the rows as CSV for plotting: one line per
// (app, condition, selection) cell with mean, 95% CI and sample count,
// plus the unloaded reference rows.
func Table1CSV(rows []Row) string {
	var b strings.Builder
	b.WriteString("app,nodes,condition,selection,mean_s,ci95_s,n\n")
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,none,reference,%s,0,1\n", r.App, r.NodeCount, f(r.Reference))
		for ci, cond := range Conditions {
			fmt.Fprintf(&b, "%s,%d,%s,random,%s,%s,%d\n",
				r.App, r.NodeCount, cond, f(r.Random[ci].Mean), f(r.Random[ci].CI95), r.Random[ci].N)
			fmt.Fprintf(&b, "%s,%d,%s,automatic,%s,%s,%d\n",
				r.App, r.NodeCount, cond, f(r.Auto[ci].Mean), f(r.Auto[ci].CI95), r.Auto[ci].N)
		}
	}
	return b.String()
}

// Headline summarizes the §4.3 claim: the increase in execution time due
// to load and traffic, relative to the unloaded reference, for random
// versus automatic selection, and their ratio ("approximately cut in
// half" in the paper).
type Headline struct {
	App            string
	RandomIncrease float64 // percent over reference, load+traffic
	AutoIncrease   float64
	Ratio          float64 // auto / random
}

// ComputeHeadline derives the headline metrics from Table 1 rows using the
// load+traffic column.
func ComputeHeadline(rows []Row) []Headline {
	var out []Headline
	for _, r := range rows {
		h := Headline{
			App:            r.App,
			RandomIncrease: r.Increase(false, 2),
			AutoIncrease:   r.Increase(true, 2),
		}
		if h.RandomIncrease != 0 {
			h.Ratio = h.AutoIncrease / h.RandomIncrease
		}
		out = append(out, h)
	}
	return out
}

// FormatHeadline renders the headline table.
func FormatHeadline(hs []Headline) string {
	var b strings.Builder
	b.WriteString("Increase in execution time due to load+traffic (vs unloaded reference)\n")
	fmt.Fprintf(&b, "%-10s %18s %18s %14s\n", "Program", "Random nodes", "Automatic nodes", "Auto/Random")
	for _, h := range hs {
		fmt.Fprintf(&b, "%-10s %17.1f%% %17.1f%% %14.2f\n",
			h.App, h.RandomIncrease, h.AutoIncrease, h.Ratio)
	}
	return b.String()
}
