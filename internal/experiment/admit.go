package experiment

import (
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"nodeselect/internal/lease"
	"nodeselect/internal/loadgen"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/selectsvc"
	"nodeselect/internal/testbed"
)

// AdmitOptions parameterizes the admission A/B benchmark: the same
// sustained leased-select load against a serial-admission service and a
// batched one, both WAL-backed (the fsync is exactly what batching
// amortizes, so benchmarking without it would measure the wrong thing).
type AdmitOptions struct {
	// Seed randomizes the background load painted onto the topology.
	Seed int64
	// Requests per rep (default 1500), Reps per mode (default 5),
	// Concurrency of submitters (default 64, the acceptance point).
	Requests    int
	Reps        int
	Concurrency int
	// Window and MaxBatch tune the batched mode's pipeline (defaults 2ms
	// and 64).
	Window   time.Duration
	MaxBatch int
}

func (o AdmitOptions) withDefaults() AdmitOptions {
	if o.Requests <= 0 {
		o.Requests = 1500
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 64
	}
	if o.Window <= 0 {
		o.Window = 2 * time.Millisecond
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	return o
}

// admitBody is the leased select every worker sends: a tiny CPU demand so
// thousands of leases fit the testbed and rejections stay out of the
// throughput picture — the benchmark measures commit cost, not placement
// contention.
const admitBody = `{"m": 4, "algo": "balanced", "demand": {"cpu": 0.0001}, "lease_ttl": 60}`

// RunAdmit runs the serial and batched modes and gates the comparison at
// the acceptance thresholds (3x throughput at Welch p < 0.005, batched
// p99 within 2x serial). Each rep gets a fresh service over a fresh
// WAL-backed ledger in its own temp directory.
func RunAdmit(opt AdmitOptions) (loadgen.AdmitReport, error) {
	opt = opt.withDefaults()

	newHandler := func(batched bool) func() (http.Handler, func(), error) {
		return func() (http.Handler, func(), error) {
			g := testbed.CMU()
			src := remos.NewStaticSource(g)
			rng := randx.New(opt.Seed).Split("admit")
			for _, id := range g.ComputeNodes() {
				src.SetLoad(id, 0.5*rng.Float64())
			}
			dir, err := os.MkdirTemp("", "admit-wal-*")
			if err != nil {
				return nil, nil, err
			}
			wal, err := lease.OpenWAL(dir)
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			ledger, err := lease.New(g, lease.Options{WAL: wal, MaxTTL: 10 * time.Minute})
			if err != nil {
				os.RemoveAll(dir)
				return nil, nil, err
			}
			cfg := selectsvc.Config{
				Collector:   remos.CollectorConfig{History: 8},
				DefaultMode: remos.Current,
				Seed:        opt.Seed,
				Ledger:      ledger,
			}
			cfg.Trace.Disabled = true
			if batched {
				cfg.BatchWindow = opt.Window
				cfg.BatchMax = opt.MaxBatch
			}
			svc := selectsvc.New(src, cfg)
			if err := svc.Poll(); err != nil {
				os.RemoveAll(dir)
				return nil, nil, fmt.Errorf("admit: initial poll: %w", err)
			}
			teardown := func() {
				svc.StopBatching()
				ledger.Close()
				os.RemoveAll(dir)
			}
			return svc.Handler(), teardown, nil
		}
	}

	base := loadgen.AdmitConfig{
		Body:        []byte(admitBody),
		Requests:    opt.Requests,
		Warmup:      50,
		Concurrency: opt.Concurrency,
		Reps:        opt.Reps,
	}

	serialCfg := base
	serialCfg.NewHandler = newHandler(false)
	serial, err := loadgen.RunAdmitMode(serialCfg)
	if err != nil {
		return loadgen.AdmitReport{}, fmt.Errorf("admit: serial mode: %w", err)
	}

	batchedCfg := base
	batchedCfg.NewHandler = newHandler(true)
	batched, err := loadgen.RunAdmitMode(batchedCfg)
	if err != nil {
		return loadgen.AdmitReport{}, fmt.Errorf("admit: batched mode: %w", err)
	}

	return loadgen.GateAdmit(serial, batched, 3.0, 2.0, 0.005), nil
}

// FormatAdmit renders the A/B comparison (admit.json carries the same
// numbers machine-readably).
func FormatAdmit(r loadgen.AdmitReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Admission benchmark: %d requests/rep, %d reps, concurrency %d\n",
		r.Serial.Requests, r.Serial.Reps, r.Serial.Concurrency)
	mode := func(name string, m loadgen.AdmitModeReport) {
		fmt.Fprintf(&b, "  %-8s %8.0f selects/s  p50 %.3fms  p99 %.3fms  p999 %.3fms  err %.4f\n",
			name, m.ThroughputRPS, m.LatencyMs.P50, m.LatencyMs.P99, m.LatencyMs.P999, m.ErrorRate)
	}
	mode("serial", r.Serial)
	mode("batched", r.Batched)
	fmt.Fprintf(&b, "  speedup %.2fx (floor %.1fx, welch p %.4g at alpha %.4g), batched p99 %.2fx serial (cap %.1fx)\n",
		r.Speedup, r.MinSpeedup, r.WelchP, r.Alpha, r.P99Ratio, r.MaxP99Ratio)
	if r.Pass {
		fmt.Fprintf(&b, "  PASS\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %s\n", strings.Join(r.Failures, "; "))
	}
	return b.String()
}
