package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/lease"
	"nodeselect/internal/randx"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// The contention experiment measures what the reservation ledger buys over
// the paper's single-tenant procedure when several applications arrive
// concurrently. Naive mode runs the selection sweep once per application
// against the same measured snapshot — the measurement plane cannot see
// intentions, so every application is steered to the same "best" nodes and
// the network is oversubscribed before any of them starts. Leased mode
// routes the same arrivals through lease.Acquire: each admission debits the
// residual view the next application plans against, so commitments stay
// within capacity and late arrivals are rejected with the binding
// bottleneck named instead of silently degrading everyone.

// ContentionOptions parameterizes the scenario.
type ContentionOptions struct {
	// Seed drives selection tie-breaking.
	Seed int64
	// Apps is the number of concurrent applications (default 4).
	Apps int
	// M is each application's node count (default 3).
	M int
	// Nodes and AccessBW shape the star testbed (default 8 nodes behind
	// 100 Mbps access links).
	Nodes    int
	AccessBW float64
	// DemandCPU and DemandBW are each application's per-node CPU fraction
	// and per-flow bandwidth (default 0.4 and 30 Mbps).
	DemandCPU float64
	DemandBW  float64
	// Algo is the selection algorithm (default balanced).
	Algo string
}

func (o ContentionOptions) withDefaults() ContentionOptions {
	if o.Apps <= 0 {
		o.Apps = 4
	}
	if o.M <= 0 {
		o.M = 3
	}
	if o.Nodes <= 0 {
		o.Nodes = 8
	}
	if o.AccessBW <= 0 {
		o.AccessBW = 100e6
	}
	if o.DemandCPU <= 0 {
		o.DemandCPU = 0.4
	}
	if o.DemandBW <= 0 {
		o.DemandBW = 30e6
	}
	if o.Algo == "" {
		o.Algo = core.AlgoBalanced
	}
	return o
}

// ContentionOutcome summarizes one admission policy's end state.
type ContentionOutcome struct {
	// Placed is how many applications got a node set (naive places all of
	// them; leased admits only what fits).
	Placed int
	// Rejected counts turned-away applications (always 0 for naive).
	Rejected int
	// Bottlenecks names the binding resource of each rejection.
	Bottlenecks []string
	// MaxNodeCPU is the largest summed CPU demand on any single node, as a
	// fraction of the node (>1 = oversubscribed).
	MaxNodeCPU float64
	// MaxLinkLoad is the largest summed bandwidth demand on any single
	// link, as a fraction of its capacity (>1 = oversubscribed).
	MaxLinkLoad float64
	// WorstRealizedBW is the worst per-flow bandwidth any placed
	// application actually receives under proportional sharing of
	// oversubscribed links.
	WorstRealizedBW float64
	// Violations counts placed applications whose realized bandwidth falls
	// below what they asked for.
	Violations int
}

// ContentionResult is the experiment's full outcome.
type ContentionResult struct {
	Opt           ContentionOptions
	Naive, Leased ContentionOutcome
	// ReadmittedAfterRelease reports the lifecycle demo: after one admitted
	// application released its lease, a previously rejected one fit.
	ReadmittedAfterRelease bool
}

// accounting tallies demand against a topology and answers the outcome
// stats shared by both policies.
type accounting struct {
	g          *topology.Graph
	placements [][]int
	nodeCPU    []float64
	linkBW     []float64
}

func newAccounting(g *topology.Graph) *accounting {
	return &accounting{
		g:       g,
		nodeCPU: make([]float64, g.NumNodes()),
		linkBW:  make([]float64, g.NumLinks()),
	}
}

func (a *accounting) place(nodes []int, cpu, bw float64) {
	a.placements = append(a.placements, nodes)
	for _, id := range nodes {
		a.nodeCPU[id] += cpu
	}
	for lid, k := range a.g.FlowLinkCounts(nodes) {
		a.linkBW[lid] += float64(k) * bw
	}
}

// fill computes the outcome stats: peak fractional loads and the realized
// per-flow bandwidth under proportional fair sharing (a flow through an
// oversubscribed link gets its proportional share of the capacity).
func (a *accounting) fill(out *ContentionOutcome, bw float64) {
	out.Placed = len(a.placements)
	for _, c := range a.nodeCPU {
		if c > out.MaxNodeCPU {
			out.MaxNodeCPU = c
		}
	}
	for lid, b := range a.linkBW {
		if frac := b / a.g.Link(lid).Capacity; frac > out.MaxLinkLoad {
			out.MaxLinkLoad = frac
		}
	}
	out.WorstRealizedBW = bw
	for _, nodes := range a.placements {
		realized := bw
		for lid := range a.g.FlowLinkCounts(nodes) {
			if load := a.linkBW[lid]; load > a.g.Link(lid).Capacity {
				if share := bw * a.g.Link(lid).Capacity / load; share < realized {
					realized = share
				}
			}
		}
		if realized < bw-1e-6 {
			out.Violations++
		}
		if realized < out.WorstRealizedBW {
			out.WorstRealizedBW = realized
		}
	}
}

// contentionPlace adapts the selection sweep to the ledger's PlaceFunc,
// raising the request floors to the demand the same way selectsvc does.
func contentionPlace(opt ContentionOptions, src *randx.Source) lease.PlaceFunc {
	return func(_ context.Context, residual *topology.Snapshot, minBW float64) ([]int, error) {
		req := core.Request{M: opt.M, MinCPU: opt.DemandCPU, MinBW: minBW}
		res, err := core.Select(opt.Algo, residual, req, src)
		if err != nil {
			return nil, err
		}
		return res.Nodes, nil
	}
}

// RunContention runs both policies over the same arrivals and topology.
func RunContention(opt ContentionOptions) (ContentionResult, error) {
	opt = opt.withDefaults()
	g := testbed.Star(opt.Nodes, opt.AccessBW)
	snap := topology.NewSnapshot(g)
	rng := randx.New(opt.Seed).Split("contention")
	result := ContentionResult{Opt: opt}

	// Naive: every application plans against the same measured snapshot.
	naive := newAccounting(g)
	for i := 0; i < opt.Apps; i++ {
		res, err := core.Select(opt.Algo, snap, core.Request{M: opt.M}, rng.SplitN(i))
		if err != nil {
			return result, fmt.Errorf("naive app %d: %w", i, err)
		}
		naive.place(res.Nodes, opt.DemandCPU, opt.DemandBW)
	}
	naive.fill(&result.Naive, opt.DemandBW)

	// Leased: the same arrivals pass through the reservation ledger.
	ledger, err := lease.New(g, lease.Options{MaxTTL: time.Hour, DefaultTTL: time.Hour})
	if err != nil {
		return result, err
	}
	demand := lease.Demand{CPU: opt.DemandCPU, BW: opt.DemandBW}
	leased := newAccounting(g)
	var admitted []string // lease IDs in admission order
	rejectedApps := 0
	for i := 0; i < opt.Apps; i++ {
		info, err := ledger.Acquire(context.Background(), snap, demand, time.Hour, contentionPlace(opt, rng.SplitN(opt.Apps+i)))
		if err != nil {
			rejectedApps++
			result.Leased.Bottlenecks = append(result.Leased.Bottlenecks, admissionBottleneck(err))
			continue
		}
		admitted = append(admitted, info.ID)
		nodes := make([]int, 0, len(info.Nodes))
		for _, name := range info.Nodes {
			nodes = append(nodes, g.MustNode(name))
		}
		sort.Ints(nodes)
		leased.place(nodes, opt.DemandCPU, opt.DemandBW)
	}
	leased.fill(&result.Leased, opt.DemandBW)
	result.Leased.Rejected = rejectedApps

	// Lifecycle demo: release the first admitted lease and retry one of the
	// rejected arrivals — the freed capacity should readmit it.
	if rejectedApps > 0 && len(admitted) > 0 {
		if err := ledger.Release(context.Background(), admitted[0]); err != nil {
			return result, err
		}
		_, err := ledger.Acquire(context.Background(), snap, demand, time.Hour, contentionPlace(opt, rng.Split("readmit")))
		result.ReadmittedAfterRelease = err == nil
	}
	return result, nil
}

// admissionBottleneck extracts the named bottleneck from an admission
// rejection (or renders the error itself for non-admission failures).
func admissionBottleneck(err error) string {
	var adm *lease.AdmissionError
	if errors.As(err, &adm) {
		return adm.Bottleneck
	}
	return err.Error()
}

// FormatContention renders the comparison as a compact report.
func FormatContention(r ContentionResult) string {
	var b strings.Builder
	o := r.Opt
	fmt.Fprintf(&b, "Multi-tenant contention: %d apps x (m=%d, cpu=%.2f, bw=%s) on a %d-node star (%s access)\n\n",
		o.Apps, o.M, o.DemandCPU, topology.FormatBandwidth(o.DemandBW),
		o.Nodes, topology.FormatBandwidth(o.AccessBW))
	row := func(name string, c ContentionOutcome) {
		fmt.Fprintf(&b, "%-8s placed %d  rejected %d  peak node %.2fx  peak link %.2fx  worst bw %s  violations %d\n",
			name, c.Placed, c.Rejected, c.MaxNodeCPU, c.MaxLinkLoad,
			topology.FormatBandwidth(c.WorstRealizedBW), c.Violations)
	}
	row("naive", r.Naive)
	row("leased", r.Leased)
	if len(r.Leased.Bottlenecks) > 0 {
		fmt.Fprintf(&b, "\nrejections named their bottleneck: %s\n",
			strings.Join(r.Leased.Bottlenecks, "; "))
	}
	fmt.Fprintf(&b, "released one lease -> rejected app readmitted: %v\n", r.ReadmittedAfterRelease)
	return b.String()
}
