package experiment

import (
	"testing"

	"nodeselect/internal/randx"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// TestHierEquivalenceSuite runs a trimmed randomized suite: every
// comparison must be exact and the quotient path must actually engage on
// a meaningful share of it (a suite the fallback answers entirely would
// prove nothing about the collapse).
func TestHierEquivalenceSuite(t *testing.T) {
	eq := runHierEquivalence(HierOptions{Seed: 7, EquivTopologies: 8}.withDefaults())
	if eq.Exact != eq.Cases || eq.Cases == 0 {
		t.Fatalf("equivalence suite: %d/%d exact", eq.Exact, eq.Cases)
	}
	if eq.QuotientShare < 0.5 {
		t.Fatalf("quotient share %.2f: the suite barely exercises the collapse", eq.QuotientShare)
	}
	if eq.QualityRatio != 1 {
		t.Fatalf("quality ratio %.6f with exact equivalence, want exactly 1", eq.QualityRatio)
	}
}

// TestPaintConditionsDeterministic pins that identically seeded painting
// produces identical snapshots — the property that makes the A/B's two
// arms comparable and every rerun reproducible.
func TestPaintConditionsDeterministic(t *testing.T) {
	paint := func() *topology.Snapshot {
		g := testbed.MultiCluster(3, 5, testbed.Ethernet100, 1e9)
		snap := topology.NewSnapshot(g)
		paintConditions(g, snap, randx.New(42).Split("p"), 2)
		return snap
	}
	a, b := paint(), paint()
	for i := range a.LoadAvg {
		if a.LoadAvg[i] != b.LoadAvg[i] {
			t.Fatalf("node %d load diverged: %v vs %v", i, a.LoadAvg[i], b.LoadAvg[i])
		}
	}
	for i := range a.AvailBW {
		if a.AvailBW[i] != b.AvailBW[i] {
			t.Fatalf("link %d availbw diverged: %v vs %v", i, a.AvailBW[i], b.AvailBW[i])
		}
	}
}

// TestRunHierABSmall exercises the A/B runner end to end at a toy scale,
// checking the report plumbing rather than the timing itself.
func TestRunHierABSmall(t *testing.T) {
	flat, hier, scale, err := runHierAB("tiered:4x8",
		testbed.MultiCluster(4, 8, testbed.Ethernet100, 1e9),
		HierOptions{Seed: 3}.withDefaults(), 4, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.LatencySamples) != 2 || len(hier.LatencySamples) != 2 {
		t.Fatalf("samples: flat %d hier %d, want 2 each", len(flat.LatencySamples), len(hier.LatencySamples))
	}
	// Painting perturbs up to two access links off their cluster's draw,
	// so a couple of leaves may fall out of their bundles.
	if scale.Clusters < 3 || scale.CollapsedNodes < 28 {
		t.Fatalf("scale row: %d clusters, %d collapsed", scale.Clusters, scale.CollapsedNodes)
	}
	if scale.HierMeanMs <= 0 || scale.FlatMeanMs <= 0 {
		t.Fatalf("scale row missing timings: %+v", scale)
	}
}
