package experiment

import (
	"strings"
	"testing"
)

func TestContentionLeasedBoundsOversubscription(t *testing.T) {
	r, err := RunContention(ContentionOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := r.Opt

	// Naive places everyone and oversubscribes: 4 apps' flows pile onto
	// the same few access links, so someone's guarantee must break.
	if r.Naive.Placed != o.Apps || r.Naive.Rejected != 0 {
		t.Fatalf("naive outcome %+v", r.Naive)
	}
	if r.Naive.MaxLinkLoad <= 1 {
		t.Fatalf("naive did not oversubscribe: peak link %.2fx", r.Naive.MaxLinkLoad)
	}
	if r.Naive.Violations == 0 || r.Naive.WorstRealizedBW >= o.DemandBW {
		t.Fatalf("naive guarantees unexpectedly held: %+v", r.Naive)
	}

	// Leased admits only what fits: commitments stay within capacity and
	// every admitted application keeps its full bandwidth.
	if r.Leased.Placed == 0 {
		t.Fatal("leased admitted nothing")
	}
	if r.Leased.MaxNodeCPU > 1+1e-9 || r.Leased.MaxLinkLoad > 1+1e-9 {
		t.Fatalf("leased oversubscribed: %+v", r.Leased)
	}
	if r.Leased.Violations != 0 || r.Leased.WorstRealizedBW < o.DemandBW-1e-6 {
		t.Fatalf("leased guarantees broken: %+v", r.Leased)
	}

	// The overflow is rejected, with the binding bottleneck named.
	if r.Leased.Rejected == 0 {
		t.Fatal("no application was rejected despite overdemand")
	}
	if len(r.Leased.Bottlenecks) != r.Leased.Rejected {
		t.Fatalf("bottlenecks %v for %d rejections", r.Leased.Bottlenecks, r.Leased.Rejected)
	}
	for _, b := range r.Leased.Bottlenecks {
		if b == "" {
			t.Fatal("rejection without a named bottleneck")
		}
	}

	// Lifecycle: releasing a lease makes room for a rejected arrival.
	if !r.ReadmittedAfterRelease {
		t.Fatal("released capacity did not readmit a rejected application")
	}

	out := FormatContention(r)
	for _, want := range []string{"naive", "leased", "readmitted: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
