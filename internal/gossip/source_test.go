package gossip

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/measure"
	"nodeselect/internal/randx"
	"nodeselect/internal/remos"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// linkOwnerOf mirrors the fleet's ownership rule: a link belongs to its
// lower-numbered endpoint.
func linkOwnerOf(g *topology.Graph, l int) int {
	link := g.Link(l)
	if link.B < link.A {
		return link.B
	}
	return link.A
}

// publishFrom publishes every node's current reading from src into the
// mesh, the way a gossiping agent fleet would.
func publishFrom(src remos.Source, nodes []*Node) {
	g := src.Topology()
	owned := make(map[int][]int)
	for l := 0; l < g.NumLinks(); l++ {
		o := linkOwnerOf(g, l)
		owned[o] = append(owned[o], l)
	}
	for i, nd := range nodes {
		links := make(map[int]LinkReading, len(owned[i]))
		for _, l := range owned[i] {
			links[l] = LinkReading{
				Bits:   src.LinkBits(l, false),
				BitsBG: src.LinkBits(l, true),
				Down:   !src.LinkUp(l),
			}
		}
		nd.Publish(src.Now(), src.NodeLoad(i, false), src.NodeLoad(i, true), links)
	}
}

func TestSnapshotSourceServesGossipedReadings(t *testing.T) {
	g := testbed.Figure1()
	clk := measure.NewManual(time.Unix(3000, 0))
	store := NewStore(clk)
	snap := NewSnapshotSource(g, store)

	// Nothing heard yet: loads read idle, links read up, nothing is OK.
	if snap.NodeLoad(0, false) != 0 || !snap.LinkUp(0) || snap.NodeOK(0) {
		t.Fatal("empty store must read idle, up, not-OK")
	}
	if !math.IsInf(snap.NodeAgeSeconds(0), +1) {
		t.Fatal("unheard node must report +Inf age")
	}

	hlc := NewHLC(clk)
	store.Put(Observation{
		Origin: 0, Seq: 1, Stamp: hlc.Now(), Time: 7,
		Load: 2.5, LoadBG: 1.5,
		Links: map[int]LinkReading{0: {Bits: 4e6, BitsBG: 1e6}},
	})
	if snap.Now() != 7 {
		t.Fatalf("Now = %v, want 7", snap.Now())
	}
	if snap.NodeLoad(0, false) != 2.5 || snap.NodeLoad(0, true) != 1.5 {
		t.Fatal("loads not served from the observation")
	}
	if owner := linkOwnerOf(g, 0); owner == 0 {
		if snap.LinkBits(0, false) != 4e6 || snap.LinkBits(0, true) != 1e6 {
			t.Fatal("link counters not served from the owner's observation")
		}
	}
	if !snap.NodeOK(0) || snap.NodeAgeSeconds(0) != 0 {
		t.Fatal("fresh entry must be OK at age 0")
	}
	clk.Advance(time.Duration(DefaultFreshFor+1) * time.Second)
	if snap.NodeOK(0) {
		t.Fatal("entry past FreshFor must not be OK")
	}
	if age := snap.NodeAgeSeconds(0); age != DefaultFreshFor+1 {
		t.Fatalf("age = %v, want %v", age, DefaultFreshFor+1)
	}
}

// TestCollectorOverSnapshotSource drives the whole freshness pipeline in
// gossip-consumer mode on one manual clock: fresh entries are HealthOK,
// aging entries degrade /healthz, and entries past MaxStaleAge turn
// queries into StaleError — the same ladder poll mode climbs when agents
// die.
func TestCollectorOverSnapshotSource(t *testing.T) {
	g := testbed.Figure1()
	clk := measure.NewManual(time.Unix(3000, 0))
	static := remos.NewStaticSource(g)
	static.SetLoad(0, 2)

	store := NewStore(clk)
	snap := NewSnapshotSource(g, store)
	hlc := NewHLC(clk)
	fill := func() {
		owned := make(map[int][]int)
		for l := 0; l < g.NumLinks(); l++ {
			o := linkOwnerOf(g, l)
			owned[o] = append(owned[o], l)
		}
		for i := 0; i < g.NumNodes(); i++ {
			links := make(map[int]LinkReading, len(owned[i]))
			for _, l := range owned[i] {
				links[l] = LinkReading{Bits: static.LinkBits(l, false), BitsBG: static.LinkBits(l, true)}
			}
			store.Put(Observation{
				Origin: i, Seq: uint64(store.Version() + 1), Stamp: hlc.Now(), Time: static.Now(),
				Load: static.NodeLoad(i, false), LoadBG: static.NodeLoad(i, true), Links: links,
			})
		}
	}
	fill()

	col := remos.NewCollector(snap, remos.CollectorConfig{
		Period: 2, MaxStaleAge: 30, Clock: clk,
	})
	col.Poll()
	if h := col.Health(); h.State != remos.HealthOK {
		t.Fatalf("fresh gossip view health = %s, want ok", h.State)
	}

	// The mesh stops hearing from everyone: entries age past FreshFor, so
	// the next poll grades every entity degraded, with the true entry age
	// folded into the reported ages.
	clk.Advance(12 * time.Second)
	static.Advance(12)
	col.Poll()
	h := col.Health()
	if h.State != remos.HealthDegraded {
		t.Fatalf("aged gossip view health = %s, want degraded", h.State)
	}
	compute := -1
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(i).Kind == topology.Compute {
			compute = i
			break
		}
	}
	fr := col.Freshness()
	// Entry age (12s) dominates the single-poll count aging; the fold must
	// preserve it rather than restart from the poll counter.
	if fr.NodeAge[compute] < 12 {
		t.Fatalf("node age = %v, want >= 12 (source age folded in)", fr.NodeAge[compute])
	}

	// Past MaxStaleAge everywhere: queries fail typed.
	clk.Advance(40 * time.Second)
	static.Advance(40)
	col.Poll()
	if _, err := col.Snapshot(remos.Current, false); !errors.Is(err, remos.ErrStale) {
		t.Fatalf("stale gossip view query error = %v, want ErrStale", err)
	}

	// Fresh observations arrive again: the pipeline recovers.
	fill()
	col.Poll()
	if h := col.Health(); h.State != remos.HealthOK {
		t.Fatalf("recovered health = %s, want ok", h.State)
	}
}

// TestPollGossipSelectionEquivalence is the acceptance check that the
// collector in gossip-consumer mode produces selection decisions
// equivalent to poll mode on identical inputs, across the scenario
// topology suite: the same static conditions are measured once directly
// and once through a converged gossip mesh, and every deterministic
// algorithm must pick the same nodes from either view.
func TestPollGossipSelectionEquivalence(t *testing.T) {
	rng := randx.New(77)
	scenarios := map[string]*topology.Graph{
		"cmu":      testbed.CMU(),
		"figure1":  testbed.Figure1(),
		"star":     testbed.Star(8, 10e6),
		"dumbbell": testbed.Dumbbell(4, 100e6, 40e6),
		"multi":    testbed.MultiCluster(3, 4, 100e6, 34e6),
		"hetero":   testbed.HeteroClusters(),
		"randtree": testbed.RandomTree(rng.Split("tree"), 24, []float64{10e6, 100e6}),
	}
	for name, g := range scenarios {
		g := g
		t.Run(name, func(t *testing.T) {
			srng := rng.Split("scenario/" + name)
			static := remos.NewStaticSource(g)
			for i := 0; i < g.NumNodes(); i++ {
				if g.Node(i).Kind == topology.Compute {
					static.SetLoad(i, srng.Float64()*4)
				}
			}
			for l := 0; l < g.NumLinks(); l++ {
				static.SetUsedBW(l, srng.Float64()*0.8*g.Link(l).Capacity)
			}

			// Poll mode: collector straight over the source.
			pollCol := remos.NewCollector(static, remos.CollectorConfig{Period: 2})

			// Gossip mode: an agent mesh publishing from the same source,
			// with a consumer node joining as origin -1.
			clk := measure.NewManual(time.Unix(5000, 0))
			net := NewMemNetwork(9)
			nodes := buildMesh(g.NumNodes(), net, clk, 9)
			consumer := New(Config{
				Name: "consumer", Origin: -1, Peers: meshNames(g.NumNodes()),
				Transport: net.TransportFor("consumer"), Clock: clk, Seed: 9,
			})
			net.Join(consumer)
			all := append(append([]*Node{}, nodes...), consumer)
			gossipCol := remos.NewCollector(NewSnapshotSource(g, consumer.Store()),
				remos.CollectorConfig{Period: 2, Clock: clk})

			// caughtUp reports whether the consumer holds every publisher's
			// own latest observation (stamp-exact, not mere presence).
			caughtUp := func() bool {
				for i, nd := range nodes {
					want, ok := nd.Store().Get(i)
					if !ok {
						return false
					}
					got, ok := consumer.Store().Get(i)
					if !ok || got.Stamp != want.Stamp {
						return false
					}
				}
				return true
			}

			// Two measurement epochs so Current mode has an interval.
			for epoch := 0; epoch < 2; epoch++ {
				publishFrom(static, nodes)
				for r := 0; r < 200 && !caughtUp(); r++ {
					for _, nd := range all {
						nd.Tick()
					}
				}
				if !caughtUp() {
					t.Fatalf("consumer not caught up after epoch %d (%d/%d origins)",
						epoch, consumer.Store().Len(), g.NumNodes())
				}
				pollCol.Poll()
				gossipCol.Poll()
				static.Advance(2)
			}

			req := core.Request{M: 3}
			for _, algo := range []string{core.AlgoCompute, core.AlgoBandwidth, core.AlgoBalanced} {
				for _, mode := range []remos.Mode{remos.Current, remos.Window} {
					ps, err := pollCol.Snapshot(mode, false)
					if err != nil {
						t.Fatalf("%s/%s poll snapshot: %v", algo, mode, err)
					}
					gs, err := gossipCol.Snapshot(mode, false)
					if err != nil {
						t.Fatalf("%s/%s gossip snapshot: %v", algo, mode, err)
					}
					pr, perr := core.Select(algo, ps, req, nil)
					gr, gerr := core.Select(algo, gs, req, nil)
					if (perr == nil) != (gerr == nil) {
						t.Fatalf("%s/%s: poll err %v vs gossip err %v", algo, mode, perr, gerr)
					}
					if perr != nil {
						continue
					}
					if fmt.Sprint(pr.Nodes) != fmt.Sprint(gr.Nodes) {
						t.Fatalf("%s/%s: poll picked %v, gossip picked %v", algo, mode, pr.Nodes, gr.Nodes)
					}
				}
			}
		})
	}
}
