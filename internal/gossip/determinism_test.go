package gossip

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"nodeselect/internal/measure"
)

// recordingTransport captures every frame a node sends, encoded exactly
// as the wire would carry it.
type recordingTransport struct {
	frames [][]byte
	orders [][]int
}

func (r *recordingTransport) Exchange(peer string, req *Frame) (*Frame, error) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, req); err != nil {
		return nil, err
	}
	r.frames = append(r.frames, buf.Bytes())
	if req.Type == TypePush {
		var origins []int
		for _, e := range req.Entries {
			origins = append(origins, e.Origin)
		}
		r.orders = append(r.orders, origins)
	}
	return &Frame{Type: TypeAck, From: peer, Applied: len(req.Entries)}, nil
}

// TestPushFrameOrderDeterministic pins the fix for the hot-set iteration
// leak: the hot set is a map, and before the sort its iteration order
// decided the entry order of every push frame — two identically seeded
// runs could emit different wire bytes. Push entries must come out in
// origin order, and whole runs must be byte-identical.
func TestPushFrameOrderDeterministic(t *testing.T) {
	run := func() *recordingTransport {
		rec := &recordingTransport{}
		clk := measure.NewManual(time.UnixMilli(5000))
		n := New(Config{
			Name:      "a",
			Origin:    -1,
			Peers:     []string{"b", "c"},
			Transport: rec,
			Clock:     clk,
			Seed:      42,
		})
		// Make a scattered set of origins hot in one shot, the way a
		// burst of news from an anti-entropy exchange does.
		var entries []Observation
		for _, origin := range []int{17, 3, 29, 11, 5, 23, 2, 19} {
			entries = append(entries, Observation{
				Origin: origin, Seq: 1,
				Stamp: Stamp{WallMS: int64(1000 + origin)},
				Load:  float64(origin),
			})
		}
		n.Handle(&Frame{Type: TypePush, From: "c", Entries: entries})
		for i := 0; i < 3; i++ {
			n.Tick()
			clk.Advance(time.Second)
		}
		return rec
	}

	rec := run()
	if len(rec.orders) == 0 {
		t.Fatal("no push frames recorded")
	}
	for _, origins := range rec.orders {
		if !sort.IntsAreSorted(origins) {
			t.Fatalf("push frame entries out of origin order: %v", origins)
		}
	}

	again := run()
	if len(again.frames) != len(rec.frames) {
		t.Fatalf("reruns sent %d vs %d frames", len(again.frames), len(rec.frames))
	}
	for i := range rec.frames {
		if !bytes.Equal(rec.frames[i], again.frames[i]) {
			t.Fatalf("frame %d differs between identically seeded runs:\n%s\nvs\n%s",
				i, rec.frames[i], again.frames[i])
		}
	}
}
