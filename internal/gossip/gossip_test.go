package gossip

import (
	"fmt"
	"math"
	"testing"
	"time"

	"nodeselect/internal/measure"
	"nodeselect/internal/metrics"
)

func TestStampCompareAndAge(t *testing.T) {
	a := Stamp{WallMS: 1000, Logical: 0}
	b := Stamp{WallMS: 1000, Logical: 1}
	c := Stamp{WallMS: 2000, Logical: 0}
	if a.Compare(b) != -1 || b.Compare(a) != 1 || a.Compare(a) != 0 {
		t.Fatal("logical tiebreak broken")
	}
	if b.Compare(c) != -1 {
		t.Fatal("wall ordering broken")
	}
	if !(Stamp{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero broken")
	}
	now := time.UnixMilli(3000)
	if got := a.AgeAt(now); got != 2*time.Second {
		t.Fatalf("age = %v, want 2s", got)
	}
	if got := (Stamp{WallMS: 9000}).AgeAt(now); got != 0 {
		t.Fatalf("future stamp age = %v, want 0 (clamped)", got)
	}
}

func TestHLCMonotonicWithinOneMilli(t *testing.T) {
	clk := measure.NewManual(time.UnixMilli(5000))
	h := NewHLC(clk)
	prev := h.Now()
	for i := 0; i < 10; i++ {
		cur := h.Now()
		if cur.Compare(prev) <= 0 {
			t.Fatalf("stamp %v not after %v", cur, prev)
		}
		prev = cur
	}
	clk.Advance(time.Second)
	cur := h.Now()
	if cur.WallMS != 6000 || cur.Logical != 0 {
		t.Fatalf("advancing wall clock should reset logical: %+v", cur)
	}
}

func TestHLCObserveAdoptsRemoteFuture(t *testing.T) {
	clk := measure.NewManual(time.UnixMilli(5000))
	h := NewHLC(clk)
	h.Now()
	// A remote stamp from a clock running 10s ahead.
	remote := Stamp{WallMS: 15000, Logical: 3}
	after := h.Observe(remote)
	if after.Compare(remote) <= 0 {
		t.Fatalf("observe must move past the remote stamp: %+v", after)
	}
	if next := h.Now(); next.Compare(after) <= 0 {
		t.Fatalf("stamps after observe must keep increasing: %+v", next)
	}
}

func TestStoreLastWriterWins(t *testing.T) {
	s := NewStore(measure.NewManual(time.UnixMilli(1000)))
	older := Observation{Origin: 2, Seq: 1, Stamp: Stamp{WallMS: 100}}
	newer := Observation{Origin: 2, Seq: 2, Stamp: Stamp{WallMS: 200}, Load: 1.5}
	if !s.Put(newer) {
		t.Fatal("first put must apply")
	}
	if s.Put(older) {
		t.Fatal("older stamp must not overwrite")
	}
	if s.Put(newer) {
		t.Fatal("duplicate must not re-apply")
	}
	got, ok := s.Get(2)
	if !ok || got.Load != 1.5 {
		t.Fatalf("store kept the wrong observation: %+v", got)
	}
	// Equal stamps: sequence number breaks the tie.
	tie := Observation{Origin: 2, Seq: 3, Stamp: newer.Stamp, Load: 9}
	if !s.Put(tie) {
		t.Fatal("higher seq at equal stamp must apply")
	}
	if s.Put(Observation{Origin: -1}) {
		t.Fatal("negative origin must be rejected")
	}
}

func TestStoreDigestDelta(t *testing.T) {
	s := NewStore(nil)
	for origin := 0; origin < 3; origin++ {
		s.Put(Observation{Origin: origin, Seq: 1, Stamp: Stamp{WallMS: int64(100 * (origin + 1))}})
	}
	d := s.Digest()
	if len(d) != 3 {
		t.Fatalf("digest has %d origins, want 3", len(d))
	}
	// A peer missing origin 2 and holding an older origin 1.
	peer := map[int]Stamp{0: d[0], 1: {WallMS: 50}}
	delta := s.DeltaSince(peer)
	if len(delta) != 2 || delta[0].Origin != 1 || delta[1].Origin != 2 {
		t.Fatalf("delta = %+v, want origins 1,2", delta)
	}
	if got := s.DeltaSince(d); len(got) != 0 {
		t.Fatalf("delta against own digest must be empty, got %d", len(got))
	}
}

func TestStoreAges(t *testing.T) {
	clk := measure.NewManual(time.UnixMilli(10_000))
	s := NewStore(clk)
	s.Put(Observation{Origin: 0, Seq: 1, Stamp: Stamp{WallMS: 10_000}})
	clk.Advance(3 * time.Second)
	if got := s.AgeSeconds(0); got != 3 {
		t.Fatalf("age = %v, want 3", got)
	}
	if got := s.AgeSeconds(7); !math.IsInf(got, +1) {
		t.Fatalf("age of unknown origin = %v, want +Inf", got)
	}
	if got := s.MaxAgeSeconds(nil); got != 3 {
		t.Fatalf("max age = %v, want 3", got)
	}
	if got := s.MaxAgeSeconds([]int{0, 7}); !math.IsInf(got, +1) {
		t.Fatalf("max age with missing origin = %v, want +Inf", got)
	}
}

func TestMembershipGrading(t *testing.T) {
	clk := measure.NewManual(time.Unix(100, 0))
	m := newMembership(clk, []string{"a", "b"}, 10*time.Second, 30*time.Second)
	if got := m.State("a"); got != PeerAlive {
		t.Fatalf("fresh peer = %v, want alive", got)
	}
	m.markFail("a")
	if got := m.State("a"); got != PeerAlive {
		t.Fatalf("just-failed peer = %v, want alive (grace)", got)
	}
	clk.Advance(10 * time.Second)
	if got := m.State("a"); got != PeerSuspect {
		t.Fatalf("after suspectAfter = %v, want suspect", got)
	}
	clk.Advance(20 * time.Second)
	if got := m.State("a"); got != PeerDead {
		t.Fatalf("after deadAfter = %v, want dead", got)
	}
	if alive := m.alivePeers(); len(alive) != 1 || alive[0] != "b" {
		t.Fatalf("alivePeers = %v, want [b]", alive)
	}
	if all := m.allPeers(); len(all) != 2 {
		t.Fatalf("allPeers = %v, want both", all)
	}
	m.markOK("a")
	if got := m.State("a"); got != PeerAlive {
		t.Fatalf("recovered peer = %v, want alive", got)
	}
	a, s, d := m.Counts()
	if a != 2 || s != 0 || d != 0 {
		t.Fatalf("counts = %d/%d/%d, want 2/0/0", a, s, d)
	}
}

// meshNames returns n mesh member names.
func meshNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("n%d", i)
	}
	return out
}

// buildMesh assembles n gossip nodes on one MemNetwork sharing clk.
func buildMesh(n int, net *MemNetwork, clk measure.Clock, seed int64) []*Node {
	names := meshNames(n)
	nodes := make([]*Node, n)
	for i := range nodes {
		peers := make([]string, 0, n-1)
		for j, p := range names {
			if j != i {
				peers = append(peers, p)
			}
		}
		nodes[i] = New(Config{
			Name:      names[i],
			Origin:    i,
			Peers:     peers,
			Transport: net.TransportFor(names[i]),
			Clock:     clk,
			Seed:      seed,
		})
		net.Join(nodes[i])
	}
	return nodes
}

// tickAll runs one gossip round on every node, advancing the shared
// clock so stamps and failure detection progress.
func tickAll(nodes []*Node, clk *measure.Manual) {
	for _, n := range nodes {
		n.Tick()
	}
	clk.Advance(time.Second)
}

// converged reports whether every node's store holds exactly the same
// (origin → stamp) digest.
func converged(nodes []*Node) bool {
	want := nodes[0].Store().Digest()
	for _, n := range nodes[1:] {
		d := n.Store().Digest()
		if len(d) != len(want) {
			return false
		}
		for origin, st := range want {
			if d[origin] != st {
				return false
			}
		}
	}
	return true
}

func TestRumorPropagation(t *testing.T) {
	const n = 20
	clk := measure.NewManual(time.Unix(1000, 0))
	net := NewMemNetwork(1)
	nodes := buildMesh(n, net, clk, 1)

	nodes[0].Publish(1.0, 2.5, 2.0, map[int]LinkReading{3: {Bits: 1e6}})
	rounds := 0
	for ; rounds < 20 && !allHave(nodes, 0); rounds++ {
		tickAll(nodes, clk)
	}
	if !allHave(nodes, 0) {
		t.Fatalf("observation did not reach all %d nodes in %d rounds", n, rounds)
	}
	// Infection-style dissemination: well under the node count.
	if rounds > 8 {
		t.Fatalf("propagation took %d rounds, want O(log n)", rounds)
	}
	obs, _ := nodes[n-1].Store().Get(0)
	if obs.Load != 2.5 || obs.Links[3].Bits != 1e6 {
		t.Fatalf("replicated observation corrupted: %+v", obs)
	}
}

// allHave reports whether every node's store has an entry for origin.
func allHave(nodes []*Node, origin int) bool {
	for _, n := range nodes {
		if _, ok := n.Store().Get(origin); !ok {
			return false
		}
	}
	return true
}

func TestAntiEntropyHealsPartition(t *testing.T) {
	const n = 10
	clk := measure.NewManual(time.Unix(1000, 0))
	net := NewMemNetwork(2)
	nodes := buildMesh(n, net, clk, 2)

	// Split the mesh in half; each side publishes.
	groups := make(map[string]int)
	for i, name := range meshNames(n) {
		groups[name] = i % 2
	}
	net.SetPartition(groups)
	nodes[0].Publish(1.0, 1.0, 0.5, nil) // side 0
	nodes[1].Publish(1.0, 4.0, 3.0, nil) // side 1
	for r := 0; r < 10; r++ {
		tickAll(nodes, clk)
	}
	if _, ok := nodes[1].Store().Get(0); ok {
		t.Fatal("observation crossed the partition")
	}

	// Heal: anti-entropy must reconcile both sides.
	net.Heal()
	for r := 0; r < 40 && !(allHave(nodes, 0) && allHave(nodes, 1)); r++ {
		tickAll(nodes, clk)
	}
	if !allHave(nodes, 0) || !allHave(nodes, 1) {
		t.Fatal("mesh did not converge after heal")
	}
	if !converged(nodes) {
		t.Fatal("digests disagree after heal")
	}
}

func TestConsumerNodeCannotPublish(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n := New(Config{Name: "c", Origin: -1, Transport: &TCPTransport{}})
	n.Publish(0, 0, 0, nil)
}

func TestHandleRejectsBadFrames(t *testing.T) {
	n := New(Config{Name: "a", Origin: 0, Transport: &TCPTransport{}})
	if resp := n.Handle(&Frame{Type: "bogus"}); resp.Type != TypeError {
		t.Fatalf("bogus type answered %+v", resp)
	}
	if resp := n.Handle(&Frame{Type: TypeAck}); resp.Type != TypeError {
		t.Fatalf("ack as a request answered %+v", resp)
	}
	if resp := n.Handle(&Frame{Type: TypePush, Entries: []Observation{{Origin: -3}}}); resp.Type != TypeError {
		t.Fatalf("negative origin answered %+v", resp)
	}
}

func TestMetricsInstrumentation(t *testing.T) {
	clk := measure.NewManual(time.Unix(1000, 0))
	net := NewMemNetwork(3)
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	names := []string{"a", "b"}
	var nodes []*Node
	for i, name := range names {
		var nm *Metrics
		if i == 0 {
			nm = m
		}
		n := New(Config{
			Name:      name,
			Origin:    i,
			Peers:     []string{names[1-i]},
			Transport: net.TransportFor(name),
			Clock:     clk,
			Seed:      3,
			Metrics:   nm,
		})
		net.Join(n)
		nodes = append(nodes, n)
	}
	nodes[0].Publish(1, 1, 1, nil)
	for r := 0; r < 6; r++ {
		tickAll(nodes, clk)
	}
	if m.Rounds.Value() != 6 {
		t.Fatalf("rounds = %v, want 6", m.Rounds.Value())
	}
	if m.PushesSent.Value() == 0 {
		t.Fatal("no pushes recorded")
	}
	if m.EntriesApplied.Value() == 0 {
		t.Fatal("no applies recorded")
	}
	if m.PeersAlive.Value() != 1 {
		t.Fatalf("peers alive = %v, want 1", m.PeersAlive.Value())
	}
	// Kill the peer; the detector must grade it dead and the gauge follow.
	net.Kill("b")
	for r := 0; r < 40; r++ {
		tickAll(nodes, clk)
	}
	if m.PeersDead.Value() != 1 {
		t.Fatalf("peers dead = %v, want 1", m.PeersDead.Value())
	}
	if m.PushesFailed.Value() == 0 && m.AntiEntropyFailed.Value() == 0 {
		t.Fatal("no failures recorded against a killed peer")
	}
}
