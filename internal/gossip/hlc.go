package gossip

import (
	"sync"
	"time"

	"nodeselect/internal/measure"
)

// Stamp is a hybrid logical clock timestamp: physical wall time in
// milliseconds plus a logical counter that breaks ties between events in
// the same millisecond (and keeps causality when clocks are skewed — a
// node that sees a remote stamp ahead of its own wall clock adopts it
// rather than issuing stamps from the past). Stamps totally order the
// observations of the gossip plane; last-writer-wins merges compare them.
type Stamp struct {
	// WallMS is physical time in milliseconds since the Unix epoch.
	WallMS int64 `json:"wall_ms"`
	// Logical disambiguates events within one millisecond.
	Logical uint32 `json:"logical"`
}

// Compare orders stamps: -1 when s < o, 0 when equal, +1 when s > o.
func (s Stamp) Compare(o Stamp) int {
	switch {
	case s.WallMS < o.WallMS:
		return -1
	case s.WallMS > o.WallMS:
		return 1
	case s.Logical < o.Logical:
		return -1
	case s.Logical > o.Logical:
		return 1
	default:
		return 0
	}
}

// IsZero reports whether the stamp is the zero value (no event).
func (s Stamp) IsZero() bool { return s.WallMS == 0 && s.Logical == 0 }

// AgeAt returns how old the stamp's physical component is at now,
// clamped at zero (a stamp from a peer whose clock runs ahead is "fresh",
// not negative-aged).
func (s Stamp) AgeAt(now time.Time) time.Duration {
	age := now.Sub(time.UnixMilli(s.WallMS))
	if age < 0 {
		return 0
	}
	return age
}

// HLC issues hybrid logical clock stamps. Safe for concurrent use.
type HLC struct {
	mu    sync.Mutex
	clock measure.Clock
	last  Stamp
}

// NewHLC returns an HLC reading physical time from clock (nil = system).
func NewHLC(clock measure.Clock) *HLC {
	return &HLC{clock: measure.Or(clock)}
}

// Now issues a stamp for a local event: physical time when it has
// advanced past the last stamp, otherwise the last stamp with the logical
// counter bumped.
func (h *HLC) Now() Stamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	wall := h.clock.Now().UnixMilli()
	if wall > h.last.WallMS {
		h.last = Stamp{WallMS: wall}
	} else {
		h.last.Logical++
	}
	return h.last
}

// Observe folds a remote stamp into the clock (a receive event), so
// stamps issued here afterwards are greater than both the local past and
// the remote event. It returns the updated local stamp.
func (h *HLC) Observe(remote Stamp) Stamp {
	h.mu.Lock()
	defer h.mu.Unlock()
	wall := h.clock.Now().UnixMilli()
	switch {
	case wall > h.last.WallMS && wall > remote.WallMS:
		h.last = Stamp{WallMS: wall}
	case remote.Compare(h.last) > 0:
		h.last = remote
		h.last.Logical++
	default:
		h.last.Logical++
	}
	return h.last
}
