package gossip

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TypePush, From: "n1", Entries: []Observation{{
			Origin: 4, Seq: 9, Stamp: Stamp{WallMS: 123456, Logical: 2},
			Time: 8.5, Load: 1.25, LoadBG: 0.75,
			Links: map[int]LinkReading{7: {Bits: 1e9, BitsBG: 5e8, Down: true}},
		}}},
		{Type: TypeAck, From: "n2", Applied: 3},
		{Type: TypeDigest, From: "n3", Digest: map[int]Stamp{0: {WallMS: 1}, 5: {WallMS: 2, Logical: 9}}},
		{Type: TypeDelta, Digest: map[int]Stamp{1: {WallMS: 7}}, Entries: []Observation{{Origin: 1, Seq: 1}}},
		{Type: TypeError, Error: "nope"},
	}
	var buf bytes.Buffer
	for i := range frames {
		if err := WriteFrame(&buf, &frames[i]); err != nil {
			t.Fatalf("write frame %d: %v", i, err)
		}
	}
	for i := range frames {
		var got Frame
		if err := ReadFrame(&buf, &got); err != nil {
			t.Fatalf("read frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, frames[i]) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, frames[i])
		}
	}
	var extra Frame
	if err := ReadFrame(&buf, &extra); !errors.Is(err, io.EOF) {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	var f Frame
	if err := ReadFrame(bytes.NewReader(hdr[:]), &f); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadFrameRejectsInvalid(t *testing.T) {
	bad := []Frame{
		{Type: "mystery"},
		{Type: TypePush, Entries: []Observation{{Origin: -1}}},
		{Type: TypeDigest, Digest: map[int]Stamp{-2: {}}},
		{Type: TypePush, Entries: []Observation{{Origin: 1, Links: map[int]LinkReading{-4: {}}}}},
	}
	for i := range bad {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &bad[i]); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		var got Frame
		if err := ReadFrame(&buf, &got); err == nil {
			t.Fatalf("invalid frame %d accepted: %+v", i, got)
		}
	}
}

// FuzzGossipFrame holds the codec to its no-panic contract: arbitrary
// bytes — truncated headers, lying lengths, corrupt JSON — must come
// back as errors, and any frame that decodes must survive a re-encode
// round trip.
func FuzzGossipFrame(f *testing.F) {
	seedFrames := []Frame{
		{Type: TypePush, From: "n0", Entries: []Observation{{
			Origin: 2, Seq: 5, Stamp: Stamp{WallMS: 99, Logical: 1},
			Load: 0.5, Links: map[int]LinkReading{0: {Bits: 42}},
		}}},
		{Type: TypeDigest, Digest: map[int]Stamp{3: {WallMS: 10}}},
		{Type: TypeAck, Applied: 1},
	}
	for i := range seedFrames {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &seedFrames[i]); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		f.Add(buf.Bytes()[:buf.Len()/2]) // truncation
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var frame Frame
		if err := ReadFrame(bytes.NewReader(data), &frame); err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same frame.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &frame); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		var again Frame
		if err := ReadFrame(&buf, &again); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(frame, again) {
			t.Fatalf("round trip drifted: %+v vs %+v", frame, again)
		}
	})
}
