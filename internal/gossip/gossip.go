// Package gossip is the decentralized measurement plane: every agent
// replicates its local observation (node load plus owned-link counters)
// to its peers by rumor mongering, and periodic anti-entropy
// reconciliation guarantees convergence even across partitions. Any peer
// can then serve a full-fleet snapshot from its local store, with
// per-entry ages bounding the staleness a consumer accepts.
//
// The protocol has two legs, both plain request/response exchanges over
// the same length-prefixed framing the poll plane uses (so the chaos
// proxy applies unchanged):
//
//   - Rumor mongering: an observation that is news to a node is "hot"
//     and gets pushed to Fanout random live peers on each of the next
//     RumorRounds rounds. Infection-style: O(log n) rounds to reach the
//     fleet with high probability.
//   - Anti-entropy: every AntiEntropyEvery rounds a node picks one
//     random peer (dead peers included, so a healed partition is
//     discovered), sends its digest — the exact origin → stamp summary
//     of its store — and receives everything it is missing plus the
//     peer's digest, then pushes back whatever the peer is missing.
//     Eventually-consistent repair for anything rumors missed.
//
// Merges are last-writer-wins on hybrid logical clock stamps with the
// origin's sequence number as tiebreak; an origin's reading replicates
// wholesale, so no peer ever holds half of a newer observation.
package gossip

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nodeselect/internal/measure"
	"nodeselect/internal/randx"
)

// Default protocol parameters.
const (
	// DefaultFanout is how many peers a hot entry is pushed to per round.
	DefaultFanout = 3
	// DefaultRumorRounds is how many rounds an entry stays hot.
	DefaultRumorRounds = 2
	// DefaultAntiEntropyEvery is the round period of reconciliation.
	DefaultAntiEntropyEvery = 4
	// DefaultSuspectAfter / DefaultDeadAfter grade failing peers.
	DefaultSuspectAfter = 10 * time.Second
	DefaultDeadAfter    = 30 * time.Second
)

// Config assembles a gossip node.
type Config struct {
	// Name identifies this node on the mesh (its address, in TCP
	// deployments).
	Name string
	// Origin is the dense node ID this node publishes observations for.
	// A consumer that only listens (the collector's view of the mesh)
	// sets Origin to -1 and never calls Publish.
	Origin int
	// Peers names the other mesh members this node exchanges with.
	Peers []string
	// Transport carries exchanges to peers.
	Transport Transport
	// Fanout, RumorRounds, AntiEntropyEvery tune the protocol; zero
	// values take the defaults above.
	Fanout           int
	RumorRounds      int
	AntiEntropyEvery int
	// SuspectAfter / DeadAfter tune the failure detector; zero values
	// take the defaults above.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Clock drives HLC stamps, entry ages and the failure detector
	// (nil = system clock). Tests share one manual clock across nodes.
	Clock measure.Clock
	// Seed makes peer selection deterministic.
	Seed int64
	// Metrics instruments the node (nil = off).
	Metrics *Metrics
}

// Node is one member of the gossip mesh. Tick drives it: the caller
// (daemon ticker, experiment loop) invokes Tick once per gossip round.
type Node struct {
	cfg   Config
	store *Store
	hlc   *HLC
	mem   *membership
	rng   *randx.Source

	mu     sync.Mutex
	seq    uint64
	rounds uint64
	hot    map[int]int // origin → rounds of rumor life remaining
}

// New assembles a node from cfg.
func New(cfg Config) *Node {
	if cfg.Fanout <= 0 {
		cfg.Fanout = DefaultFanout
	}
	if cfg.RumorRounds <= 0 {
		cfg.RumorRounds = DefaultRumorRounds
	}
	if cfg.AntiEntropyEvery <= 0 {
		cfg.AntiEntropyEvery = DefaultAntiEntropyEvery
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = DefaultDeadAfter
	}
	cfg.Clock = measure.Or(cfg.Clock)
	return &Node{
		cfg:   cfg,
		store: NewStore(cfg.Clock),
		hlc:   NewHLC(cfg.Clock),
		mem:   newMembership(cfg.Clock, cfg.Peers, cfg.SuspectAfter, cfg.DeadAfter),
		rng:   randx.New(cfg.Seed).Split("gossip/node/" + cfg.Name),
		hot:   make(map[int]int),
	}
}

// Name returns the node's mesh name.
func (n *Node) Name() string { return n.cfg.Name }

// Store exposes the node's replica of the fleet's observations.
func (n *Node) Store() *Store { return n.store }

// PeerState grades one peer via the failure detector.
func (n *Node) PeerState(peer string) PeerState { return n.mem.State(peer) }

// PeerCounts tallies peers by failure-detector state.
func (n *Node) PeerCounts() (alive, suspect, dead int) { return n.mem.Counts() }

// Publish records this node's own fresh observation and marks it hot so
// the next rounds rumor it out. The links map is copied.
func (n *Node) Publish(simTime, load, loadBG float64, links map[int]LinkReading) Observation {
	if n.cfg.Origin < 0 {
		panic("gossip: consumer node (origin -1) cannot publish")
	}
	n.mu.Lock()
	n.seq++
	seq := n.seq
	n.mu.Unlock()
	obs := Observation{
		Origin: n.cfg.Origin,
		Seq:    seq,
		Stamp:  n.hlc.Now(),
		Time:   simTime,
		Load:   load,
		LoadBG: loadBG,
		Links:  cloneLinks(links),
	}
	if n.store.Put(obs) {
		n.cfg.Metrics.applied(1)
		n.markHot(obs.Origin)
	}
	return obs
}

// markHot (re)arms rumor mongering for an origin.
func (n *Node) markHot(origin int) {
	n.mu.Lock()
	n.hot[origin] = n.cfg.RumorRounds
	n.mu.Unlock()
}

// apply merges received observations, returning how many were fresh.
// Fresh entries become hot again so the rumor keeps spreading.
func (n *Node) apply(entries []Observation) int {
	applied := 0
	for _, obs := range entries {
		n.hlc.Observe(obs.Stamp)
		if n.store.Put(obs) {
			applied++
			n.markHot(obs.Origin)
		}
	}
	n.cfg.Metrics.applied(applied)
	return applied
}

// Handle answers one incoming frame. It never returns nil; protocol
// violations come back as TypeError frames.
func (n *Node) Handle(req *Frame) *Frame {
	if err := req.Validate(); err != nil {
		return &Frame{Type: TypeError, From: n.cfg.Name, Error: err.Error()}
	}
	switch req.Type {
	case TypePush:
		applied := n.apply(req.Entries)
		return &Frame{Type: TypeAck, From: n.cfg.Name, Applied: applied}
	case TypeDigest:
		// Answer with what the caller is missing plus our own digest so
		// the caller can push back what we are missing.
		return &Frame{
			Type:    TypeDelta,
			From:    n.cfg.Name,
			Entries: n.store.DeltaSince(req.Digest),
			Digest:  n.store.Digest(),
		}
	default:
		return &Frame{
			Type:  TypeError,
			From:  n.cfg.Name,
			Error: fmt.Sprintf("gossip: unexpected request type %q", req.Type),
		}
	}
}

// Tick runs one gossip round: rumor-monger hot entries to Fanout random
// live peers, then — every AntiEntropyEvery rounds — reconcile with one
// random peer (dead peers included, so healed partitions are found).
func (n *Node) Tick() {
	n.cfg.Metrics.incRounds()

	// Snapshot and age the hot set under the lock; exchange outside it.
	n.mu.Lock()
	n.rounds++
	round := n.rounds
	hotOrigins := make([]int, 0, len(n.hot))
	for origin, left := range n.hot {
		hotOrigins = append(hotOrigins, origin)
		if left <= 1 {
			delete(n.hot, origin)
		} else {
			n.hot[origin] = left - 1
		}
	}
	n.mu.Unlock()

	// The hot set is a map; its iteration order must not decide the wire.
	// Sorting keeps push-frame entry order — and thus the frame bytes two
	// identically seeded runs produce — deterministic.
	sort.Ints(hotOrigins)

	if len(hotOrigins) > 0 {
		entries := make([]Observation, 0, len(hotOrigins))
		for _, origin := range hotOrigins {
			if obs, ok := n.store.Get(origin); ok {
				entries = append(entries, obs)
			}
		}
		if len(entries) > 0 {
			for _, peer := range n.pickPeers(n.mem.alivePeers(), n.cfg.Fanout) {
				n.push(peer, entries)
			}
		}
	}

	if round%uint64(n.cfg.AntiEntropyEvery) == 0 {
		if peers := n.pickPeers(n.mem.allPeers(), 1); len(peers) == 1 {
			n.antiEntropy(peers[0])
		}
	}

	n.cfg.Metrics.peerCounts(n.mem.Counts())
}

// pickPeers draws up to k distinct peers from candidates, uniformly.
func (n *Node) pickPeers(candidates []string, k int) []string {
	if len(candidates) == 0 {
		return nil
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	n.mu.Lock()
	perm := n.rng.Perm(len(candidates))
	n.mu.Unlock()
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, candidates[i])
	}
	return out
}

// push sends entries to one peer and records the outcome.
func (n *Node) push(peer string, entries []Observation) {
	resp, err := n.cfg.Transport.Exchange(peer, &Frame{
		Type:    TypePush,
		From:    n.cfg.Name,
		Entries: entries,
	})
	if err != nil {
		n.mem.markFail(peer)
		n.cfg.Metrics.pushDone(false)
		return
	}
	_ = resp
	n.mem.markOK(peer)
	n.cfg.Metrics.pushDone(true)
}

// antiEntropy reconciles with one peer: send our digest, apply the delta
// it returns, then push back whatever its digest shows it is missing.
func (n *Node) antiEntropy(peer string) {
	resp, err := n.cfg.Transport.Exchange(peer, &Frame{
		Type:   TypeDigest,
		From:   n.cfg.Name,
		Digest: n.store.Digest(),
	})
	if err != nil || resp.Type != TypeDelta {
		n.mem.markFail(peer)
		n.cfg.Metrics.antiEntropyDone(false)
		return
	}
	n.apply(resp.Entries)
	if back := n.store.DeltaSince(resp.Digest); len(back) > 0 {
		if _, err := n.cfg.Transport.Exchange(peer, &Frame{
			Type:    TypePush,
			From:    n.cfg.Name,
			Entries: back,
		}); err != nil {
			n.mem.markFail(peer)
			n.cfg.Metrics.antiEntropyDone(false)
			return
		}
	}
	n.mem.markOK(peer)
	n.cfg.Metrics.antiEntropyDone(true)
}
