package gossip

import (
	"fmt"
	"testing"
	"time"

	"nodeselect/internal/measure"
	"nodeselect/internal/randx"
)

// TestRandomizedPartitionHeal is the convergence property test: under a
// randomized schedule of partitions, heals, node kills/revives and
// publishes, once the mesh is healed and quiet for a bounded number of
// anti-entropy rounds, every live node's store holds the max-stamp
// version of every published origin.
func TestRandomizedPartitionHeal(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			runPartitionTrial(t, int64(trial))
		})
	}
}

func runPartitionTrial(t *testing.T, seed int64) {
	const (
		n      = 12
		phases = 6
	)
	rng := randx.New(seed).Split("gossip/property")
	clk := measure.NewManual(time.Unix(2000, 0))
	net := NewMemNetwork(seed)
	nodes := buildMesh(n, net, clk, seed)
	names := meshNames(n)

	published := make(map[int]bool)
	publish := func(i int) {
		if net.Down(names[i]) {
			return
		}
		nodes[i].Publish(float64(i), rng.Float64()*4, rng.Float64(), map[int]LinkReading{
			i: {Bits: rng.Float64() * 1e9},
		})
		published[i] = true
	}

	// Chaos phases: random partitions, kills, revives, publishes, ticks.
	for phase := 0; phase < phases; phase++ {
		switch rng.Intn(3) {
		case 0: // random 2-way partition
			groups := make(map[string]int)
			for _, name := range names {
				groups[name] = rng.Intn(2)
			}
			net.SetPartition(groups)
		case 1: // kill one node
			net.Kill(names[rng.Intn(n)])
		case 2: // lossy network
			net.SetDrop(0.3)
		}
		for i := 0; i < 3; i++ {
			publish(rng.Intn(n))
		}
		for r := 0; r < 4; r++ {
			tickAll(nodes, clk)
		}
	}

	// Heal everything and run quiet rounds. Convergence must land within
	// a bounded number of anti-entropy cycles: each cycle every node
	// reconciles bidirectionally with one random peer, so the expected
	// number of cycles to full convergence is O(log n); 12 cycles of the
	// default every-4-rounds cadence is a generous deterministic bound.
	net.Heal()
	net.SetDrop(0)
	for _, name := range names {
		net.Revive(name)
	}
	const healRounds = 12 * DefaultAntiEntropyEvery
	for r := 0; r < healRounds && !fullyConverged(nodes, published); r++ {
		tickAll(nodes, clk)
	}
	if !fullyConverged(nodes, published) {
		t.Fatalf("seed %d: mesh not converged after %d rounds", seed, healRounds)
	}

	// Every replica of every published origin is the max-stamp version.
	for origin := range published {
		var want Observation
		for _, nd := range nodes {
			if obs, ok := nd.Store().Get(origin); ok && obs.Newer(want) {
				want = obs
			}
		}
		for _, nd := range nodes {
			got, ok := nd.Store().Get(origin)
			if !ok {
				t.Fatalf("seed %d: %s missing origin %d", seed, nd.Name(), origin)
			}
			if got.Stamp != want.Stamp || got.Seq != want.Seq {
				t.Fatalf("seed %d: %s holds %+v for origin %d, want max-stamp %+v",
					seed, nd.Name(), got.Stamp, origin, want.Stamp)
			}
		}
	}
}

// fullyConverged reports whether every node holds every published origin
// with identical digests.
func fullyConverged(nodes []*Node, published map[int]bool) bool {
	for origin := range published {
		if !allHave(nodes, origin) {
			return false
		}
	}
	return converged(nodes)
}
