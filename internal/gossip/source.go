package gossip

import (
	"nodeselect/internal/topology"
)

// DefaultFreshFor is how old (seconds) a gossiped observation may be and
// still count as a live reading in the freshness pipeline.
const DefaultFreshFor = 10.0

// SnapshotSource adapts a gossip store as a remos.Source, making the
// measurement collector one more consumer of the gossip stream: each
// origin's observation supplies its node's load and its owned links'
// counters, exactly the entities the poll-plane agent for that node
// would have answered for. It also implements remos.FreshnessReporter
// and remos.AgeReporter — an entry older than FreshFor counts as a
// stale carry-forward, and its true age flows into the collector's
// freshness accounting, so MaxStaleAge and the degraded /healthz states
// mean the same thing in gossip mode as in poll mode.
type SnapshotSource struct {
	graph     *topology.Graph
	store     *Store
	linkOwner []int // node owning each link (lower-numbered endpoint)

	// FreshFor is the age bound, in seconds, for a reading to count as
	// fresh. Zero takes DefaultFreshFor.
	FreshFor float64
}

// NewSnapshotSource returns a source answering for g from store.
func NewSnapshotSource(g *topology.Graph, store *Store) *SnapshotSource {
	s := &SnapshotSource{
		graph:     g,
		store:     store,
		linkOwner: make([]int, g.NumLinks()),
		FreshFor:  DefaultFreshFor,
	}
	// Same ownership rule as the agent fleet: a link belongs to its
	// lower-numbered endpoint.
	for l := 0; l < g.NumLinks(); l++ {
		link := g.Link(l)
		lo := link.A
		if link.B < lo {
			lo = link.B
		}
		s.linkOwner[l] = lo
	}
	return s
}

// Store exposes the backing gossip store.
func (s *SnapshotSource) Store() *Store { return s.store }

// Topology implements remos.Source.
func (s *SnapshotSource) Topology() *topology.Graph { return s.graph }

// Now implements remos.Source: the most recent measurement clock among
// all stored observations, like the poll plane's "latest agent clock".
func (s *SnapshotSource) Now() float64 {
	t := 0.0
	for _, obs := range s.store.Entries() {
		if obs.Time > t {
			t = obs.Time
		}
	}
	return t
}

// NodeLoad implements remos.Source. An origin never heard from reads as
// idle — and reports !NodeOK, so the collector grades it degraded rather
// than trusting the zero.
func (s *SnapshotSource) NodeLoad(node int, backgroundOnly bool) float64 {
	obs, ok := s.store.Get(node)
	if !ok {
		return 0
	}
	if backgroundOnly {
		return obs.LoadBG
	}
	return obs.Load
}

// LinkBits implements remos.Source from the owning origin's observation.
func (s *SnapshotSource) LinkBits(link int, backgroundOnly bool) float64 {
	obs, ok := s.store.Get(s.linkOwner[link])
	if !ok {
		return 0
	}
	reading, ok := obs.Links[link]
	if !ok {
		return 0
	}
	if backgroundOnly {
		return reading.BitsBG
	}
	return reading.Bits
}

// LinkUp implements remos.Source.
func (s *SnapshotSource) LinkUp(link int) bool {
	obs, ok := s.store.Get(s.linkOwner[link])
	if !ok {
		return true
	}
	reading, ok := obs.Links[link]
	return !ok || !reading.Down
}

func (s *SnapshotSource) freshFor() float64 {
	if s.FreshFor <= 0 {
		return DefaultFreshFor
	}
	return s.FreshFor
}

// NodeOK implements remos.FreshnessReporter: the node's observation
// exists and is younger than FreshFor.
func (s *SnapshotSource) NodeOK(node int) bool {
	return s.store.AgeSeconds(node) <= s.freshFor()
}

// LinkOK implements remos.FreshnessReporter via the owning origin.
func (s *SnapshotSource) LinkOK(link int) bool {
	return s.NodeOK(s.linkOwner[link])
}

// NodeAgeSeconds implements remos.AgeReporter: the wall-clock age of the
// node's observation (+Inf when never heard from).
func (s *SnapshotSource) NodeAgeSeconds(node int) float64 {
	return s.store.AgeSeconds(node)
}

// LinkAgeSeconds implements remos.AgeReporter via the owning origin.
func (s *SnapshotSource) LinkAgeSeconds(link int) float64 {
	return s.store.AgeSeconds(s.linkOwner[link])
}
