package gossip

import "nodeselect/internal/metrics"

// Metrics instruments one gossip node. All fields are optional as a
// group: a nil *Metrics disables instrumentation.
type Metrics struct {
	// Rounds counts Tick invocations.
	Rounds *metrics.Counter
	// PushesSent / PushesFailed count rumor pushes by outcome.
	PushesSent   *metrics.Counter
	PushesFailed *metrics.Counter
	// EntriesApplied counts observations merged as fresh (from pushes,
	// deltas, or local publishes).
	EntriesApplied *metrics.Counter
	// AntiEntropyRuns / AntiEntropyFailed count reconciliation exchanges.
	AntiEntropyRuns   *metrics.Counter
	AntiEntropyFailed *metrics.Counter
	// PeersAlive / PeersSuspect / PeersDead gauge the failure detector —
	// the gossip plane's analogue of the poll plane's circuit-breaker
	// state metrics.
	PeersAlive   *metrics.Gauge
	PeersSuspect *metrics.Gauge
	PeersDead    *metrics.Gauge
}

// NewMetrics registers the gossip metric family on r.
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		Rounds:            r.NewCounter("gossip_rounds_total", "Gossip protocol rounds run."),
		PushesSent:        r.NewCounter("gossip_pushes_sent_total", "Rumor push exchanges completed."),
		PushesFailed:      r.NewCounter("gossip_pushes_failed_total", "Rumor push exchanges that failed."),
		EntriesApplied:    r.NewCounter("gossip_entries_applied_total", "Observations merged as fresh."),
		AntiEntropyRuns:   r.NewCounter("gossip_anti_entropy_total", "Anti-entropy reconciliations completed."),
		AntiEntropyFailed: r.NewCounter("gossip_anti_entropy_failed_total", "Anti-entropy reconciliations that failed."),
		PeersAlive:        r.NewGauge("gossip_peers_alive", "Peers graded alive by the failure detector."),
		PeersSuspect:      r.NewGauge("gossip_peers_suspect", "Peers graded suspect by the failure detector."),
		PeersDead:         r.NewGauge("gossip_peers_dead", "Peers graded dead by the failure detector."),
	}
}

func (m *Metrics) incRounds() {
	if m != nil {
		m.Rounds.Inc()
	}
}

func (m *Metrics) pushDone(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.PushesSent.Inc()
	} else {
		m.PushesFailed.Inc()
	}
}

func (m *Metrics) applied(n int) {
	if m != nil && n > 0 {
		m.EntriesApplied.Add(float64(n))
	}
}

func (m *Metrics) antiEntropyDone(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.AntiEntropyRuns.Inc()
	} else {
		m.AntiEntropyFailed.Inc()
	}
}

func (m *Metrics) peerCounts(alive, suspect, dead int) {
	if m == nil {
		return
	}
	m.PeersAlive.Set(float64(alive))
	m.PeersSuspect.Set(float64(suspect))
	m.PeersDead.Set(float64(dead))
}
