package gossip

import (
	"testing"
	"time"

	"nodeselect/internal/remos/agent"
)

// startTCPPair brings up two gossip nodes with real TCP servers. The
// peers address each other by listen address; dialer timeouts are short
// so fault tests finish quickly.
func startTCPPair(t *testing.T) (a, b *Node, aAddr, bAddr string, cleanup func()) {
	t.Helper()
	// Bind servers first so each node can name the other's address as
	// its peer. Nodes are constructed with placeholder peers and rebuilt
	// once addresses are known — simplest with two staged servers.
	ta := &TCPTransport{ConnectTimeout: time.Second, IOTimeout: time.Second}
	tb := &TCPTransport{ConnectTimeout: time.Second, IOTimeout: time.Second}

	// Stage 1: serve placeholder nodes just to claim ports.
	tmpA := New(Config{Name: "a", Origin: 0, Transport: ta})
	tmpB := New(Config{Name: "b", Origin: 1, Transport: tb})
	sa, err := Serve(tmpA, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Serve(tmpB, "127.0.0.1:0")
	if err != nil {
		sa.Close()
		t.Fatal(err)
	}
	sa.Close()
	sb.Close()
	aAddr, bAddr = sa.Addr(), sb.Addr()

	// Stage 2: real nodes naming each other, served on the same ports.
	a = New(Config{Name: aAddr, Origin: 0, Peers: []string{bAddr}, Transport: ta, Seed: 4})
	b = New(Config{Name: bAddr, Origin: 1, Peers: []string{aAddr}, Transport: tb, Seed: 5})
	sa2, err := Serve(a, aAddr)
	if err != nil {
		t.Fatal(err)
	}
	sb2, err := Serve(b, bAddr)
	if err != nil {
		sa2.Close()
		t.Fatal(err)
	}
	return a, b, aAddr, bAddr, func() {
		sa2.Close()
		sb2.Close()
		ta.Close()
		tb.Close()
	}
}

func TestTCPReplication(t *testing.T) {
	a, b, _, _, cleanup := startTCPPair(t)
	defer cleanup()

	a.Publish(1.5, 2.0, 1.0, map[int]LinkReading{0: {Bits: 7e6}})
	b.Publish(1.5, 0.5, 0.25, nil)
	for r := 0; r < 8; r++ {
		a.Tick()
		b.Tick()
	}
	got, ok := b.Store().Get(0)
	if !ok || got.Load != 2.0 || got.Links[0].Bits != 7e6 {
		t.Fatalf("b did not replicate a's observation: %+v (ok=%v)", got, ok)
	}
	if got, ok := a.Store().Get(1); !ok || got.Load != 0.5 {
		t.Fatalf("a did not replicate b's observation: %+v (ok=%v)", got, ok)
	}
}

// TestChaosProxyOnGossip fronts one gossip listener with the PR 2 chaos
// proxy — the framing is identical, so the proxy forwards gossip frames
// unchanged. A paused proxy (crashed peer) blocks dissemination and
// degrades membership; a corrupting proxy mangles responses so the
// sender sees clean failures; with the faults lifted the mesh converges
// through the same proxy.
func TestChaosProxyOnGossip(t *testing.T) {
	// Backend node b with a real server.
	tb := &TCPTransport{ConnectTimeout: time.Second, IOTimeout: 500 * time.Millisecond}
	b := New(Config{Name: "b", Origin: 1, Transport: tb})
	sb, err := Serve(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()

	proxy, err := agent.NewChaosProxy(sb.Addr(), 11, agent.ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.Pause() // crashed peer: refuses service entirely

	// Node a only knows the proxy's address.
	ta := &TCPTransport{ConnectTimeout: time.Second, IOTimeout: 500 * time.Millisecond}
	defer ta.Close()
	a := New(Config{
		Name: "a", Origin: 0, Peers: []string{proxy.Addr()}, Transport: ta,
		Seed: 6, SuspectAfter: time.Nanosecond, DeadAfter: time.Hour,
	})

	a.Publish(1, 3, 2, nil)
	for r := 0; r < 6; r++ {
		a.Tick()
	}
	if _, ok := b.Store().Get(0); ok {
		t.Fatal("observation crossed a paused proxy")
	}
	if got := a.PeerState(proxy.Addr()); got != PeerSuspect {
		t.Fatalf("peer state behind paused proxy = %v, want suspect", got)
	}

	// Corrupting proxy: the push body reaches b (faults land on whole
	// responses), but a's decoder sees a mangled ack and must fail the
	// exchange cleanly rather than panic or mark the peer healthy.
	proxy.Resume()
	proxy.Set(agent.ChaosConfig{CorruptRate: 1})
	a.Publish(2, 3.25, 2.25, nil)
	for r := 0; r < 6; r++ {
		a.Tick()
	}
	if got := a.PeerState(proxy.Addr()); got != PeerSuspect {
		t.Fatalf("peer state under corruption = %v, want suspect", got)
	}

	// Lift the faults: the same proxy now forwards cleanly and the rumor
	// lands. Re-arm the rumor by republishing.
	proxy.Set(agent.ChaosConfig{})
	a.Publish(3, 3.5, 2.5, nil)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		a.Tick()
		if obs, ok := b.Store().Get(0); ok && obs.Load == 3.5 {
			break
		}
	}
	obs, ok := b.Store().Get(0)
	if !ok || obs.Load != 3.5 {
		t.Fatalf("mesh did not converge after faults lifted: %+v (ok=%v)", obs, ok)
	}
	if got := a.PeerState(proxy.Addr()); got != PeerAlive {
		t.Fatalf("peer state after recovery = %v, want alive", got)
	}
}
