package gossip

import (
	"sort"
	"sync"
	"time"

	"nodeselect/internal/measure"
)

// PeerState classifies a peer in the failure detector.
type PeerState int

const (
	// PeerAlive: the most recent exchange with the peer succeeded, or it
	// failed recently enough that no judgment is warranted yet.
	PeerAlive PeerState = iota
	// PeerSuspect: exchanges have been failing longer than SuspectAfter.
	PeerSuspect
	// PeerDead: exchanges have been failing longer than DeadAfter; the
	// peer is dropped from rumor targets and only probed by anti-entropy.
	PeerDead
)

// String names the state.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// membership is the per-node failure detector: it watches exchange
// outcomes and ages peers through alive → suspect → dead, mirroring the
// poll plane's circuit breaker (consecutive failures open it; time since
// the last success grades the severity).
type membership struct {
	clock        measure.Clock
	suspectAfter time.Duration
	deadAfter    time.Duration

	mu    sync.Mutex
	peers map[string]*peerHealth
}

// peerHealth tracks one peer's exchange history.
type peerHealth struct {
	lastOK    time.Time // zero until the first success
	failSince time.Time // zero while healthy; first failure of current run
	fails     int       // consecutive failures
}

func newMembership(clock measure.Clock, peers []string, suspectAfter, deadAfter time.Duration) *membership {
	m := &membership{
		clock:        clock,
		suspectAfter: suspectAfter,
		deadAfter:    deadAfter,
		peers:        make(map[string]*peerHealth, len(peers)),
	}
	// Peers start alive with the clock running: a peer never heard from
	// ages toward suspect/dead just like one that stopped answering.
	now := clock.Now()
	for _, p := range peers {
		m.peers[p] = &peerHealth{lastOK: now}
	}
	return m
}

// markOK records a successful exchange with peer.
func (m *membership) markOK(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ph := m.peer(peer)
	ph.lastOK = m.clock.Now()
	ph.failSince = time.Time{}
	ph.fails = 0
}

// markFail records a failed exchange with peer.
func (m *membership) markFail(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ph := m.peer(peer)
	if ph.fails == 0 {
		ph.failSince = m.clock.Now()
	}
	ph.fails++
}

// peer returns the health record, creating it for a previously unknown
// peer (one learned after startup). Callers hold m.mu.
func (m *membership) peer(name string) *peerHealth {
	ph, ok := m.peers[name]
	if !ok {
		ph = &peerHealth{lastOK: m.clock.Now()}
		m.peers[name] = ph
	}
	return ph
}

// state grades one peer. Callers hold m.mu.
func (m *membership) state(ph *peerHealth) PeerState {
	if ph.fails == 0 {
		return PeerAlive
	}
	down := m.clock.Now().Sub(ph.failSince)
	switch {
	case down >= m.deadAfter:
		return PeerDead
	case down >= m.suspectAfter:
		return PeerSuspect
	default:
		return PeerAlive
	}
}

// State grades one peer by name.
func (m *membership) State(peer string) PeerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state(m.peer(peer))
}

// alivePeers returns the peers not currently graded dead, sorted for
// deterministic selection.
func (m *membership) alivePeers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for name, ph := range m.peers {
		if m.state(ph) != PeerDead {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// allPeers returns every known peer, sorted. Anti-entropy draws from this
// set so a dead peer keeps being probed and a healed partition is
// discovered.
func (m *membership) allPeers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.peers))
	for name := range m.peers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Counts tallies peers by state.
func (m *membership) Counts() (alive, suspect, dead int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ph := range m.peers {
		switch m.state(ph) {
		case PeerAlive:
			alive++
		case PeerSuspect:
			suspect++
		default:
			dead++
		}
	}
	return
}
