package gossip

import (
	"math"
	"sort"
	"sync"

	"nodeselect/internal/measure"
)

// LinkReading is one owned link's counter state as carried by an
// observation — the same shape an agent's OpRead reports, duplicated here
// so the wire format of the gossip plane does not depend on the poll
// plane's protocol package.
type LinkReading struct {
	// Bits is the cumulative bits carried (both directions, all traffic).
	Bits float64 `json:"bits"`
	// BitsBG is the cumulative bits excluding measured-application
	// traffic.
	BitsBG float64 `json:"bits_bg"`
	// Down marks the link out of service.
	Down bool `json:"down,omitempty"`
}

// Observation is one agent's complete local reading: its node's load
// averages plus the counters of every link it owns, versioned by a
// per-origin sequence number and an HLC stamp. An origin's reading is
// replicated wholesale — the unit of convergence is the observation, so a
// digest of (origin → stamp) pairs is exact and reconciliation can never
// leave a peer holding half of a newer reading.
type Observation struct {
	// Origin is the dense node ID of the agent that measured this.
	Origin int `json:"origin"`
	// Seq is the origin's monotone publication counter; it breaks stamp
	// ties and survives within one process lifetime (the stamp dominates
	// across restarts).
	Seq uint64 `json:"seq"`
	// Stamp is the HLC stamp issued when the observation was published.
	Stamp Stamp `json:"stamp"`
	// Time is the origin's measurement clock in seconds (the simulation
	// or synthetic-source clock, not wall time).
	Time float64 `json:"time"`
	// Load and LoadBG are the node's load averages (all classes /
	// background only).
	Load   float64 `json:"load"`
	LoadBG float64 `json:"load_bg"`
	// Links maps owned link IDs to their counters.
	Links map[int]LinkReading `json:"links,omitempty"`
}

// Newer reports whether o supersedes old, comparing stamps first and
// sequence numbers as the tiebreak.
func (o Observation) Newer(old Observation) bool {
	if c := o.Stamp.Compare(old.Stamp); c != 0 {
		return c > 0
	}
	return o.Seq > old.Seq
}

// Store is a versioned, last-writer-wins replica of the fleet's
// observations, keyed by origin. Safe for concurrent use.
type Store struct {
	clock measure.Clock

	mu      sync.Mutex
	entries map[int]Observation
	version uint64 // bumped on every applied change, for change detection
}

// NewStore returns an empty store aging entries against clock (nil =
// system clock).
func NewStore(clock measure.Clock) *Store {
	return &Store{clock: measure.Or(clock), entries: make(map[int]Observation)}
}

// Put merges one observation, keeping the newer of the stored and offered
// versions. It reports whether the offered observation was fresh (applied).
func (s *Store) Put(obs Observation) bool {
	if obs.Origin < 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.entries[obs.Origin]; ok && !obs.Newer(cur) {
		return false
	}
	s.entries[obs.Origin] = obs
	s.version++
	return true
}

// Get returns the stored observation for origin, if any.
func (s *Store) Get(origin int) (Observation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	obs, ok := s.entries[origin]
	return obs, ok
}

// Len returns the number of origins with a stored observation.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Version returns a counter bumped by every applied change — cheap
// convergence detection for tests and experiments.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Digest summarizes the store as origin → stamp of the latest stored
// observation. Digests are what anti-entropy exchanges compare: per-origin
// stamps are exact (an origin's reading replicates wholesale), so the diff
// a digest induces is everything one side is missing, nothing more.
func (s *Store) Digest() map[int]Stamp {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := make(map[int]Stamp, len(s.entries))
	for origin, obs := range s.entries {
		d[origin] = obs.Stamp
	}
	return d
}

// DeltaSince returns the stored observations strictly newer than the
// given digest (or absent from it), in origin order — the frames to send
// a peer that advertised the digest.
func (s *Store) DeltaSince(digest map[int]Stamp) []Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Observation
	for origin, obs := range s.entries {
		if st, ok := digest[origin]; !ok || obs.Stamp.Compare(st) > 0 {
			out = append(out, obs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Origin < out[j].Origin })
	return out
}

// Entries returns every stored observation in origin order.
func (s *Store) Entries() []Observation {
	return s.DeltaSince(nil)
}

// AgeSeconds returns the age of origin's stored observation — wall time
// now minus the observation's stamp — or +Inf when the origin has never
// been heard from. The age is what bounded-staleness consumers compare
// against their budget.
func (s *Store) AgeSeconds(origin int) float64 {
	s.mu.Lock()
	obs, ok := s.entries[origin]
	s.mu.Unlock()
	if !ok {
		return math.Inf(1)
	}
	return obs.Stamp.AgeAt(s.clock.Now()).Seconds()
}

// MaxAgeSeconds returns the oldest entry's age in seconds (0 for an empty
// store), optionally restricted to the given origins (nil = all).
func (s *Store) MaxAgeSeconds(origins []int) float64 {
	s.mu.Lock()
	now := s.clock.Now()
	max := 0.0
	if origins == nil {
		for _, obs := range s.entries {
			if a := obs.Stamp.AgeAt(now).Seconds(); a > max {
				max = a
			}
		}
		s.mu.Unlock()
		return max
	}
	for _, origin := range origins {
		if obs, ok := s.entries[origin]; ok {
			if a := obs.Stamp.AgeAt(now).Seconds(); a > max {
				max = a
			}
		} else {
			max = math.Inf(1)
		}
	}
	s.mu.Unlock()
	return max
}

// clone returns a deep copy of one observation's link map so callers can
// mutate their copy without racing the store.
func cloneLinks(links map[int]LinkReading) map[int]LinkReading {
	if links == nil {
		return nil
	}
	out := make(map[int]LinkReading, len(links))
	for id, r := range links {
		out[id] = r
	}
	return out
}
