package gossip

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// The gossip wire protocol is length-prefixed JSON — deliberately the
// same outer framing as the agent poll protocol (4-byte big-endian length,
// bounded body), so the PR 2 chaos proxy can sit in front of a gossip
// listener unchanged and inject hangs, drops, delays and corrupt frames
// into the dissemination plane.

// maxFrame bounds a frame body so a malformed or malicious peer cannot
// force a huge allocation.
const maxFrame = 1 << 20

// Frame types.
const (
	// TypePush carries fresh observations, rumor-mongering style; the
	// receiver answers with an ack naming how many were news to it.
	TypePush = "push"
	// TypeAck answers a push.
	TypeAck = "ack"
	// TypeDigest opens an anti-entropy exchange: the sender's full
	// origin → stamp summary. The receiver answers with a delta.
	TypeDigest = "digest"
	// TypeDelta answers a digest: the observations the digest is missing,
	// plus the responder's own digest so the initiator can push back what
	// the responder is missing.
	TypeDelta = "delta"
	// TypeError reports a rejected request.
	TypeError = "error"
)

// Frame is one gossip message, request or response.
type Frame struct {
	// Type is one of TypePush, TypeAck, TypeDigest, TypeDelta, TypeError.
	Type string `json:"type"`
	// From names the sending peer (its address in a TCP mesh).
	From string `json:"from,omitempty"`
	// Digest carries origin → stamp summaries (TypeDigest, TypeDelta).
	Digest map[int]Stamp `json:"digest,omitempty"`
	// Entries carries observations (TypePush, TypeDelta).
	Entries []Observation `json:"entries,omitempty"`
	// Applied reports how many pushed entries were fresh (TypeAck).
	Applied int `json:"applied,omitempty"`
	// Error carries the rejection reason (TypeError).
	Error string `json:"error,omitempty"`
}

// Validate rejects frames no conforming peer would send: unknown types,
// negative origins, and entry counts that cannot fit a real fleet.
func (f *Frame) Validate() error {
	switch f.Type {
	case TypePush, TypeAck, TypeDigest, TypeDelta, TypeError:
	default:
		return fmt.Errorf("gossip: unknown frame type %q", f.Type)
	}
	for origin := range f.Digest {
		if origin < 0 {
			return fmt.Errorf("gossip: negative origin %d in digest", origin)
		}
	}
	for i := range f.Entries {
		e := &f.Entries[i]
		if e.Origin < 0 {
			return fmt.Errorf("gossip: negative origin %d in entry %d", e.Origin, i)
		}
		for link := range e.Links {
			if link < 0 {
				return fmt.Errorf("gossip: negative link %d in entry for origin %d", link, e.Origin)
			}
		}
	}
	return nil
}

// WriteFrame encodes f and writes one length-prefixed frame.
func WriteFrame(w io.Writer, f *Frame) error {
	body, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("gossip: encode: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("gossip: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("gossip: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("gossip: write body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame into f, enforcing the size
// bound and Validate. It must survive arbitrary bytes — truncated
// headers, oversized lengths, corrupt bodies — returning an error rather
// than panicking (the fuzz target holds it to that).
func ReadFrame(r io.Reader, f *Frame) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err // io.EOF passes through for clean shutdown detection
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("gossip: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("gossip: read body: %w", err)
	}
	if err := json.Unmarshal(body, f); err != nil {
		return fmt.Errorf("gossip: decode: %w", err)
	}
	return f.Validate()
}
