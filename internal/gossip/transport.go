package gossip

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nodeselect/internal/randx"
)

// Transport carries one request/response exchange to a named peer. The
// in-memory implementation backs deterministic tests and the convergence
// experiment; the TCP implementation backs real deployments (and routes
// through the chaos proxy, which speaks the same framing).
type Transport interface {
	Exchange(peer string, req *Frame) (*Frame, error)
}

// Mesh transport errors.
var (
	// ErrUnreachable reports an exchange that could not reach the peer —
	// killed, partitioned away, or its frame dropped by fault injection.
	ErrUnreachable = errors.New("gossip: peer unreachable")
)

// MemNetwork is an in-process gossip mesh with fault injection: peers
// exchange frames by direct call, and the network can kill peers, drop
// frames probabilistically, and split the mesh into partitions. All
// mutations are reproducible — the drop stream is seeded — so the
// convergence experiment and the partition/heal property test are
// deterministic.
type MemNetwork struct {
	mu    sync.Mutex
	nodes map[string]*Node
	group map[string]int // partition group; absent = group 0
	down  map[string]bool
	drop  float64
	rng   *randx.Source
}

// NewMemNetwork returns an empty mesh whose fault stream is seeded by
// seed.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		nodes: make(map[string]*Node),
		group: make(map[string]int),
		down:  make(map[string]bool),
		rng:   randx.New(seed).Split("gossip/mem"),
	}
}

// Join registers a node under its name. The node's transport must be
// m.TransportFor(name).
func (m *MemNetwork) Join(n *Node) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes[n.Name()] = n
}

// Kill takes a peer off the mesh: its exchanges fail and frames to it are
// refused. Revive undoes it.
func (m *MemNetwork) Kill(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down[name] = true
}

// Revive restores a killed peer.
func (m *MemNetwork) Revive(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.down, name)
}

// Down reports whether a peer is currently killed.
func (m *MemNetwork) Down(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down[name]
}

// SetPartition splits the mesh: peers exchange frames only within their
// group. Unlisted peers are group 0. Heal clears it.
func (m *MemNetwork) SetPartition(groups map[string]int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.group = make(map[string]int, len(groups))
	for name, g := range groups {
		m.group[name] = g
	}
}

// Heal removes the partition.
func (m *MemNetwork) Heal() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.group = make(map[string]int)
}

// SetDrop sets the probability that any one exchange is dropped (the
// request frame lost in flight).
func (m *MemNetwork) SetDrop(rate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drop = rate
}

// TransportFor returns the transport a node named from must use, so
// partitions can be enforced per sender/receiver pair.
func (m *MemNetwork) TransportFor(from string) Transport {
	return &memTransport{net: m, from: from}
}

type memTransport struct {
	net  *MemNetwork
	from string
}

// Exchange implements Transport with the mesh's fault model applied.
func (t *memTransport) Exchange(peer string, req *Frame) (*Frame, error) {
	m := t.net
	m.mu.Lock()
	target := m.nodes[peer]
	blocked := m.down[t.from] || m.down[peer] || m.group[t.from] != m.group[peer]
	if !blocked && m.drop > 0 && m.rng.Float64() < m.drop {
		blocked = true
	}
	m.mu.Unlock()
	if target == nil {
		return nil, fmt.Errorf("gossip: unknown peer %q", peer)
	}
	if blocked {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, t.from, peer)
	}
	resp := target.Handle(req)
	if resp.Type == TypeError {
		return nil, fmt.Errorf("gossip: peer %s rejected frame: %s", peer, resp.Error)
	}
	return resp, nil
}

// Server answers gossip frames for one node over TCP: each incoming
// frame gets exactly one response frame, the request/response shape the
// chaos proxy forwards.
type Server struct {
	node *Node
	ln   net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a gossip listener for n on addr (e.g. "127.0.0.1:0").
func Serve(n *Node, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gossip: listen: %w", err)
	}
	s := &Server{node: n, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *Server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		var req Frame
		if err := ReadFrame(conn, &req); err != nil {
			return // EOF, corrupt frame, or protocol error: drop the conn
		}
		if err := WriteFrame(conn, s.node.Handle(&req)); err != nil {
			return
		}
	}
}

// Close stops the listener and severs every connection.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// TCPTransport exchanges frames with peers addressed by "host:port",
// dialing on demand and reusing connections. Operations run under
// deadlines; a failed exchange drops the connection so the next one
// redials — the degradation model the membership detector expects.
type TCPTransport struct {
	// ConnectTimeout bounds one TCP connect (default 2s); IOTimeout
	// bounds one request/response round trip (default 2s).
	ConnectTimeout time.Duration
	IOTimeout      time.Duration

	mu    sync.Mutex
	conns map[string]net.Conn
}

func (t *TCPTransport) connectTimeout() time.Duration {
	if t.ConnectTimeout <= 0 {
		return 2 * time.Second
	}
	return t.ConnectTimeout
}

func (t *TCPTransport) ioTimeout() time.Duration {
	if t.IOTimeout <= 0 {
		return 2 * time.Second
	}
	return t.IOTimeout
}

// Exchange implements Transport.
func (t *TCPTransport) Exchange(peer string, req *Frame) (*Frame, error) {
	t.mu.Lock()
	if t.conns == nil {
		t.conns = make(map[string]net.Conn)
	}
	conn := t.conns[peer]
	t.mu.Unlock()
	if conn == nil {
		c, err := net.DialTimeout("tcp", peer, t.connectTimeout())
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, peer, err)
		}
		t.mu.Lock()
		// A racing exchange may have dialed first; keep one connection.
		if prev := t.conns[peer]; prev != nil {
			t.mu.Unlock()
			c.Close()
			conn = prev
		} else {
			t.conns[peer] = c
			t.mu.Unlock()
			conn = c
		}
	}
	resp, err := t.roundTrip(conn, req)
	if err != nil {
		t.dropConn(peer, conn)
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, peer, err)
	}
	if resp.Type == TypeError {
		return nil, fmt.Errorf("gossip: peer %s rejected frame: %s", peer, resp.Error)
	}
	return resp, nil
}

func (t *TCPTransport) roundTrip(conn net.Conn, req *Frame) (*Frame, error) {
	if err := conn.SetDeadline(time.Now().Add(t.ioTimeout())); err != nil {
		return nil, err
	}
	defer conn.SetDeadline(time.Time{})
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	var resp Frame
	if err := ReadFrame(conn, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// dropConn closes and forgets a failed connection (if still current).
func (t *TCPTransport) dropConn(peer string, conn net.Conn) {
	conn.Close()
	t.mu.Lock()
	if t.conns[peer] == conn {
		delete(t.conns, peer)
	}
	t.mu.Unlock()
}

// Close severs every cached connection.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for peer, conn := range t.conns {
		conn.Close()
		delete(t.conns, peer)
	}
}
