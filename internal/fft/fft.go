// Package fft implements radix-2 Cooley-Tukey fast Fourier transforms in
// one and two dimensions. The paper's first benchmark application is a 2D
// FFT; this package is the numeric kernel behind the FFT workload model and
// the examples, and its operation counts calibrate the simulated compute
// demand (an N-point transform performs (N/2)·log2(N) butterflies).
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// Forward computes the in-place forward FFT of x, whose length must be a
// power of two.
func Forward(x []complex128) error { return transform(x, false) }

// Inverse computes the in-place inverse FFT of x (including the 1/N
// normalization), whose length must be a power of two.
func Inverse(x []complex128) error { return transform(x, true) }

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if !IsPowerOfTwo(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return nil
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Iterative butterflies.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		angle := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
	return nil
}

// Matrix is a dense row-major complex matrix for 2D transforms.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at (r, c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at (r, c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a shared slice.
func (m *Matrix) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new transposed matrix. The 2D FFT's distributed
// implementation communicates exactly this transpose, which is why the
// paper's FFT is an all-to-all application.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			t.Set(c, r, m.At(r, c))
		}
	}
	return t
}

// Forward2D computes the 2D FFT of m in place: an FFT of every row, a
// transpose, an FFT of every (former) column, and a transpose back.
func Forward2D(m *Matrix) error { return transform2D(m, Forward) }

// Inverse2D computes the 2D inverse FFT of m in place.
func Inverse2D(m *Matrix) error { return transform2D(m, Inverse) }

func transform2D(m *Matrix, f func([]complex128) error) error {
	if !IsPowerOfTwo(m.Rows) || !IsPowerOfTwo(m.Cols) {
		return fmt.Errorf("fft: %dx%d dimensions must be powers of two", m.Rows, m.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		if err := f(m.Row(r)); err != nil {
			return err
		}
	}
	t := m.Transpose()
	for r := 0; r < t.Rows; r++ {
		if err := f(t.Row(r)); err != nil {
			return err
		}
	}
	back := t.Transpose()
	copy(m.Data, back.Data)
	return nil
}

// Butterflies1D returns the number of butterfly operations a 1D transform
// of length n performs: (n/2) * log2(n).
func Butterflies1D(n int) float64 {
	if !IsPowerOfTwo(n) || n < 2 {
		return 0
	}
	return float64(n) / 2 * float64(bits.Len(uint(n))-1)
}

// Butterflies2D returns the butterfly count of an n x n 2D transform:
// 2n transforms of length n.
func Butterflies2D(n int) float64 {
	return 2 * float64(n) * Butterflies1D(n)
}
