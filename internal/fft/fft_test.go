package fft

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"nodeselect/internal/randx"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := sign * 2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		if inverse {
			sum /= complex(float64(n), 0)
		}
		out[k] = sum
	}
	return out
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func randomVector(src *randx.Source, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(src.Uniform(-1, 1), src.Uniform(-1, 1))
	}
	return x
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	src := randx.New(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomVector(src, n)
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max deviation from naive DFT %v", n, d)
		}
	}
}

func TestInverseMatchesNaiveDFT(t *testing.T) {
	src := randx.New(2)
	for _, n := range []int{2, 8, 32} {
		x := randomVector(src, n)
		want := naiveDFT(x, true)
		got := append([]complex128(nil), x...)
		if err := Inverse(got); err != nil {
			t.Fatal(err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: inverse deviation %v", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	src := randx.New(3)
	x := randomVector(src, 1024)
	orig := append([]complex128(nil), x...)
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(x); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(x, orig); d > 1e-9 {
		t.Fatalf("round trip deviation %v", d)
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("length 3 accepted")
	}
	if err := Forward(nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestParsevalProperty(t *testing.T) {
	// Energy is preserved up to the 1/N convention: sum|x|^2 =
	// (1/N) sum|X|^2 for the unnormalized forward transform.
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 64
		x := randomVector(src, n)
		var inEnergy float64
		for _, v := range x {
			inEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		if err := Forward(x); err != nil {
			return false
		}
		var outEnergy float64
		for _, v := range x {
			outEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(outEnergy/float64(n)-inEnergy) < 1e-6*inEnergy+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLinearity(t *testing.T) {
	f := func(seed int64) bool {
		src := randx.New(seed)
		n := 32
		x := randomVector(src, n)
		y := randomVector(src, n)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		if Forward(x) != nil || Forward(y) != nil || Forward(sum) != nil {
			return false
		}
		for i := range sum {
			if cmplx.Abs(sum[i]-(x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestImpulseResponse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 16)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, complex(5, 0))
	if m.At(1, 2) != complex(5, 0) {
		t.Fatal("At/Set broken")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != complex(5, 0) {
		t.Fatal("Transpose broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == complex(9, 0) {
		t.Fatal("Clone shares storage")
	}
	if len(m.Row(1)) != 3 {
		t.Fatal("Row length wrong")
	}
}

func TestForward2DMatchesSeparableDFT(t *testing.T) {
	src := randx.New(4)
	const n = 8
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(src.Uniform(-1, 1), src.Uniform(-1, 1))
	}
	// Reference: naive DFT on rows, then on columns.
	ref := m.Clone()
	for r := 0; r < n; r++ {
		copy(ref.Row(r), naiveDFT(ref.Row(r), false))
	}
	reft := ref.Transpose()
	for r := 0; r < n; r++ {
		copy(reft.Row(r), naiveDFT(reft.Row(r), false))
	}
	want := reft.Transpose()

	if err := Forward2D(m); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(m.Data, want.Data); d > 1e-9 {
		t.Fatalf("2D FFT deviation %v", d)
	}
}

func TestRoundTrip2D(t *testing.T) {
	src := randx.New(5)
	m := NewMatrix(32, 32)
	for i := range m.Data {
		m.Data[i] = complex(src.Uniform(-1, 1), 0)
	}
	orig := m.Clone()
	if err := Forward2D(m); err != nil {
		t.Fatal(err)
	}
	if err := Inverse2D(m); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(m.Data, orig.Data); d > 1e-9 {
		t.Fatalf("2D round trip deviation %v", d)
	}
}

func TestForward2DRejectsBadDims(t *testing.T) {
	if err := Forward2D(NewMatrix(3, 4)); err == nil {
		t.Error("3x4 accepted")
	}
}

func TestButterflyCounts(t *testing.T) {
	if got := Butterflies1D(8); got != 12 { // 4 * 3
		t.Errorf("Butterflies1D(8) = %v, want 12", got)
	}
	if got := Butterflies1D(1024); got != 512*10 {
		t.Errorf("Butterflies1D(1024) = %v, want 5120", got)
	}
	if got := Butterflies2D(4); got != 2*4*4 { // 8 transforms of len 4 -> 8*4
		t.Errorf("Butterflies2D(4) = %v, want 32", got)
	}
	if Butterflies1D(3) != 0 || Butterflies1D(0) != 0 {
		t.Error("non-power-of-two butterfly count should be 0")
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 12, 1023} {
		if IsPowerOfTwo(n) {
			t.Errorf("IsPowerOfTwo(%d) = true", n)
		}
	}
}

func BenchmarkForward1K(b *testing.B) {
	src := randx.New(1)
	x := randomVector(src, 1024)
	work := make([]complex128, len(x))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		if err := Forward(work); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForward2D256(b *testing.B) {
	src := randx.New(2)
	m := NewMatrix(256, 256)
	for i := range m.Data {
		m.Data[i] = complex(src.Uniform(-1, 1), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := m.Clone()
		if err := Forward2D(work); err != nil {
			b.Fatal(err)
		}
	}
}
