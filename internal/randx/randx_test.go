package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("sources with identical seeds diverged at draw %d", i)
		}
	}
}

func TestSourceSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("sources with different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split("hosts")
	c2 := parent.Split("links")
	if c1.Seed() == c2.Seed() {
		t.Fatal("differently labeled splits share a seed")
	}
	// Splitting must not consume parent randomness.
	p2 := New(7)
	p2.Split("hosts")
	p2.Split("links")
	if parent.Float64() != p2.Float64() {
		t.Fatal("splitting consumed randomness from the parent stream")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := New(99).Split("x").Float64()
	b := New(99).Split("x").Float64()
	if a != b {
		t.Fatal("split streams with the same label are not deterministic")
	}
}

func TestSplitN(t *testing.T) {
	a := New(5).SplitN(3)
	b := New(5).SplitN(3)
	c := New(5).SplitN(4)
	if a.Float64() != b.Float64() {
		t.Fatal("SplitN with equal index not deterministic")
	}
	if a.Seed() == c.Seed() {
		t.Fatal("SplitN with different index shares seed")
	}
}

// sampleMean draws n variates and returns their mean.
func sampleMean(s Sampler, src *Source, n int) float64 {
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Sample(src)
	}
	return sum / float64(n)
}

func TestExponentialMean(t *testing.T) {
	src := New(1)
	for _, mean := range []float64{0.1, 1, 10, 250} {
		e := NewExponential(mean)
		got := sampleMean(e, src, 200000)
		if math.Abs(got-mean)/mean > 0.03 {
			t.Errorf("exponential(mean=%v): sample mean %v deviates >3%%", mean, got)
		}
		if e.Mean() != mean {
			t.Errorf("exponential Mean() = %v, want %v", e.Mean(), mean)
		}
	}
}

func TestExponentialPositive(t *testing.T) {
	src := New(2)
	e := NewExponential(1)
	for i := 0; i < 10000; i++ {
		if v := e.Sample(src); v <= 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("exponential produced invalid variate %v", v)
		}
	}
}

func TestExponentialPanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExponential(0) did not panic")
		}
	}()
	NewExponential(0)
}

func TestParetoBounds(t *testing.T) {
	src := New(3)
	p := NewPareto(1.5, 2.0)
	for i := 0; i < 10000; i++ {
		if v := p.Sample(src); v < p.XMin {
			t.Fatalf("pareto produced %v below xmin %v", v, p.XMin)
		}
	}
}

func TestParetoMean(t *testing.T) {
	src := New(4)
	p := NewPareto(3, 1) // mean = 1.5, finite variance
	got := sampleMean(p, src, 300000)
	want := p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("pareto sample mean %v, want near %v", got, want)
	}
	if inf := NewPareto(1, 1).Mean(); !math.IsInf(inf, 1) {
		t.Errorf("pareto alpha=1 Mean() = %v, want +Inf", inf)
	}
}

func TestBoundedParetoRange(t *testing.T) {
	src := New(5)
	p := NewBoundedPareto(1.0, 1, 1000)
	for i := 0; i < 20000; i++ {
		v := p.Sample(src)
		if v < p.XMin || v > p.XMax {
			t.Fatalf("bounded pareto produced %v outside [%v, %v]", v, p.XMin, p.XMax)
		}
	}
}

func TestBoundedParetoMean(t *testing.T) {
	src := New(6)
	p := NewBoundedPareto(1.2, 1, 100)
	got := sampleMean(p, src, 400000)
	want := p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("bounded pareto sample mean %v, want near %v", got, want)
	}
}

func TestBoundedParetoAlphaOneMean(t *testing.T) {
	src := New(7)
	p := NewBoundedPareto(1.0, 2, 50)
	got := sampleMean(p, src, 400000)
	want := p.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("bounded pareto alpha=1 sample mean %v, want near %v", got, want)
	}
}

func TestLogNormalMean(t *testing.T) {
	src := New(8)
	l := NewLogNormal(1, 0.5)
	got := sampleMean(l, src, 300000)
	want := l.Mean()
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("lognormal sample mean %v, want near %v", got, want)
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	src := New(9)
	m, sd := 40000.0, 60000.0
	l := LogNormalFromMoments(m, sd)
	if math.Abs(l.Mean()-m)/m > 1e-9 {
		t.Fatalf("LogNormalFromMoments mean %v, want %v", l.Mean(), m)
	}
	got := sampleMean(l, src, 500000)
	if math.Abs(got-m)/m > 0.05 {
		t.Errorf("lognormal-from-moments sample mean %v, want near %v", got, m)
	}
}

func TestLogNormalPositive(t *testing.T) {
	src := New(10)
	l := NewLogNormal(0, 2)
	for i := 0; i < 10000; i++ {
		if v := l.Sample(src); v <= 0 {
			t.Fatalf("lognormal produced non-positive %v", v)
		}
	}
}

func TestConstant(t *testing.T) {
	c := Constant{Value: 3.5}
	src := New(11)
	for i := 0; i < 10; i++ {
		if c.Sample(src) != 3.5 {
			t.Fatal("constant sampler varied")
		}
	}
	if c.Mean() != 3.5 {
		t.Fatal("constant Mean() wrong")
	}
}

func TestUniformDist(t *testing.T) {
	src := New(12)
	u := UniformDist{Lo: 2, Hi: 6}
	for i := 0; i < 10000; i++ {
		v := u.Sample(src)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform produced %v outside [2, 6)", v)
		}
	}
	got := sampleMean(u, src, 200000)
	if math.Abs(got-4) > 0.05 {
		t.Errorf("uniform sample mean %v, want near 4", got)
	}
}

func TestMixtureMean(t *testing.T) {
	src := New(13)
	m := NewMixture(
		[]Sampler{NewExponential(1), Constant{Value: 10}},
		[]float64{0.5, 0.5},
	)
	want := 5.5
	if math.Abs(m.Mean()-want) > 1e-12 {
		t.Fatalf("mixture Mean() = %v, want %v", m.Mean(), want)
	}
	got := sampleMean(m, src, 300000)
	if math.Abs(got-want)/want > 0.03 {
		t.Errorf("mixture sample mean %v, want near %v", got, want)
	}
}

func TestMixtureWeightsNormalized(t *testing.T) {
	// Weights 2:2 must behave like 0.5:0.5.
	a := NewMixture([]Sampler{Constant{1}, Constant{3}}, []float64{2, 2})
	if math.Abs(a.Mean()-2) > 1e-12 {
		t.Fatalf("unnormalized mixture Mean() = %v, want 2", a.Mean())
	}
}

func TestMixturePanics(t *testing.T) {
	cases := []func(){
		func() { NewMixture(nil, nil) },
		func() { NewMixture([]Sampler{Constant{1}}, []float64{1, 2}) },
		func() { NewMixture([]Sampler{Constant{1}}, []float64{-1}) },
		func() { NewMixture([]Sampler{Constant{1}}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("mixture case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPoissonProcessMeanInterarrival(t *testing.T) {
	src := New(14)
	p := NewPoissonProcess(4) // mean interarrival 0.25
	got := sampleMean(p, src, 200000)
	if math.Abs(got-0.25)/0.25 > 0.03 {
		t.Errorf("poisson interarrival mean %v, want near 0.25", got)
	}
}

func TestPoissonProcessCountStatistics(t *testing.T) {
	// The number of events in a window of length T should average rate*T.
	src := New(15)
	p := NewPoissonProcess(2)
	const horizon = 1000.0
	count := 0
	for tcur := p.NextInterarrival(src); tcur < horizon; tcur += p.NextInterarrival(src) {
		count++
	}
	want := 2 * horizon
	if math.Abs(float64(count)-want)/want > 0.1 {
		t.Errorf("poisson produced %d events in %v, want near %v", count, horizon, want)
	}
}

// Property: exponential and Pareto samples are always >= 0 and lognormal > 0
// for arbitrary seeds.
func TestQuickSamplersValid(t *testing.T) {
	f := func(seed int64) bool {
		src := New(seed)
		e := NewExponential(1.5)
		p := NewPareto(1.1, 0.5)
		l := NewLogNormal(0.3, 1.2)
		for i := 0; i < 50; i++ {
			if e.Sample(src) < 0 {
				return false
			}
			if p.Sample(src) < p.XMin {
				return false
			}
			if l.Sample(src) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split is a pure function of (seed, label).
func TestQuickSplitPure(t *testing.T) {
	f := func(seed int64, label string) bool {
		return New(seed).Split(label).Seed() == New(seed).Split(label).Seed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkExponentialSample(b *testing.B) {
	src := New(1)
	e := NewExponential(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.Sample(src)
	}
}

func BenchmarkBoundedParetoSample(b *testing.B) {
	src := New(1)
	p := NewBoundedPareto(1.0, 1, 1e6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = p.Sample(src)
	}
}

func BenchmarkLogNormalSample(b *testing.B) {
	src := New(1)
	l := NewLogNormal(10, 1.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.Sample(src)
	}
}
