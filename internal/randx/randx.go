// Package randx provides seeded, reproducible random number generation and
// the probability distributions used by the load and traffic models of the
// node selection framework: exponential, Pareto (plain and bounded),
// log-normal and uniform, together with Poisson-process helpers.
//
// All generators are deterministic functions of their seed so that every
// experiment in this repository is reproducible bit-for-bit.
package randx

import (
	"fmt"
	"math"
	"math/rand"
)

// Source is a deterministic random source. It wraps math/rand with a
// convenience API and supports splitting into independent substreams so
// that, e.g., each host's load generator has its own stream and adding a
// host does not perturb the others.
type Source struct {
	rng  *rand.Rand
	seed int64
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed this source was created with.
func (s *Source) Seed() int64 { return s.seed }

// Split returns a new independent Source derived deterministically from the
// parent seed and the given label. Splitting does not consume randomness
// from the parent stream.
func (s *Source) Split(label string) *Source {
	// Mix the label into the seed with an FNV-1a style hash. The exact
	// mixing function is unimportant as long as it is deterministic and
	// spreads labels across the seed space.
	h := uint64(1469598103934665603)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= uint64(s.seed)
	h *= 1099511628211
	return New(int64(h))
}

// SplitN returns a new independent Source derived from the parent seed and
// an integer index.
func (s *Source) SplitN(n int) *Source {
	return s.Split(fmt.Sprintf("#%d", n))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// NormFloat64 returns a standard normal variate.
func (s *Source) NormFloat64() float64 { return s.rng.NormFloat64() }

// Uniform returns a uniform value in [lo, hi).
func (s *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.rng.Float64()
}

// Sampler produces positive random variates, typically durations or sizes.
type Sampler interface {
	// Sample draws one variate using the supplied source.
	Sample(src *Source) float64
	// Mean returns the theoretical mean of the distribution, or +Inf if
	// the mean does not exist.
	Mean() float64
}

// Exponential is an exponential distribution with the given mean.
type Exponential struct {
	MeanValue float64
}

// NewExponential returns an exponential sampler with mean m. It panics if
// m <= 0.
func NewExponential(m float64) Exponential {
	if m <= 0 {
		panic("randx: exponential mean must be positive")
	}
	return Exponential{MeanValue: m}
}

// Sample draws an exponential variate.
func (e Exponential) Sample(src *Source) float64 {
	// Inverse transform on (0,1]: -mean * ln(u). Use 1-Float64 so the
	// argument is never zero.
	u := 1 - src.Float64()
	return -e.MeanValue * math.Log(u)
}

// Mean returns the distribution mean.
func (e Exponential) Mean() float64 { return e.MeanValue }

// Pareto is a Pareto (power-law) distribution with shape Alpha and scale
// (minimum value) XMin. Process lifetime studies such as Harchol-Balter and
// Downey's find CPU-bound process durations well modeled with alpha near 1.
type Pareto struct {
	Alpha float64
	XMin  float64
}

// NewPareto returns a Pareto sampler. It panics on non-positive parameters.
func NewPareto(alpha, xmin float64) Pareto {
	if alpha <= 0 || xmin <= 0 {
		panic("randx: pareto parameters must be positive")
	}
	return Pareto{Alpha: alpha, XMin: xmin}
}

// Sample draws a Pareto variate by inverse transform.
func (p Pareto) Sample(src *Source) float64 {
	u := 1 - src.Float64() // in (0, 1]
	return p.XMin / math.Pow(u, 1/p.Alpha)
}

// Mean returns alpha*xmin/(alpha-1) for alpha > 1 and +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.XMin / (p.Alpha - 1)
}

// BoundedPareto is a Pareto distribution truncated to [XMin, XMax]. Load
// generators use it so a single sampled job cannot exceed the simulation
// horizon, while preserving the heavy tail within range.
type BoundedPareto struct {
	Alpha float64
	XMin  float64
	XMax  float64
}

// NewBoundedPareto returns a bounded Pareto sampler. It panics if the
// parameters are not 0 < xmin < xmax or alpha <= 0.
func NewBoundedPareto(alpha, xmin, xmax float64) BoundedPareto {
	if alpha <= 0 || xmin <= 0 || xmax <= xmin {
		panic("randx: bounded pareto requires alpha > 0 and 0 < xmin < xmax")
	}
	return BoundedPareto{Alpha: alpha, XMin: xmin, XMax: xmax}
}

// Sample draws a bounded Pareto variate by inverse transform.
func (p BoundedPareto) Sample(src *Source) float64 {
	u := src.Float64()
	la := math.Pow(p.XMin, p.Alpha)
	ha := math.Pow(p.XMax, p.Alpha)
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.XMin {
		x = p.XMin
	}
	if x > p.XMax {
		x = p.XMax
	}
	return x
}

// Mean returns the theoretical mean of the bounded Pareto.
func (p BoundedPareto) Mean() float64 {
	a, l, h := p.Alpha, p.XMin, p.XMax
	if a == 1 {
		return h * l / (h - l) * math.Log(h/l)
	}
	la := math.Pow(l, a)
	return la / (1 - math.Pow(l/h, a)) * (a / (a - 1)) * (1/math.Pow(l, a-1) - 1/math.Pow(h, a-1))
}

// LogNormal is a log-normal distribution: exp(N(Mu, Sigma^2)). The paper's
// traffic generator draws message lengths from a log-normal distribution.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns a log-normal sampler with the given parameters of the
// underlying normal. It panics if sigma < 0.
func NewLogNormal(mu, sigma float64) LogNormal {
	if sigma < 0 {
		panic("randx: lognormal sigma must be non-negative")
	}
	return LogNormal{Mu: mu, Sigma: sigma}
}

// LogNormalFromMoments constructs a log-normal whose mean is m and whose
// standard deviation is sd. It panics on non-positive m or negative sd.
func LogNormalFromMoments(m, sd float64) LogNormal {
	if m <= 0 || sd < 0 {
		panic("randx: lognormal moments require m > 0 and sd >= 0")
	}
	v := sd * sd
	sigma2 := math.Log(1 + v/(m*m))
	mu := math.Log(m) - sigma2/2
	return LogNormal{Mu: mu, Sigma: math.Sqrt(sigma2)}
}

// Sample draws a log-normal variate.
func (l LogNormal) Sample(src *Source) float64 {
	return math.Exp(l.Mu + l.Sigma*src.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Constant always returns the same value. It is useful in tests and in
// deterministic workload configurations.
type Constant struct{ Value float64 }

// Sample returns the constant value.
func (c Constant) Sample(*Source) float64 { return c.Value }

// Mean returns the constant value.
func (c Constant) Mean() float64 { return c.Value }

// UniformDist is a uniform distribution over [Lo, Hi).
type UniformDist struct {
	Lo, Hi float64
}

// Sample draws a uniform variate in [Lo, Hi).
func (u UniformDist) Sample(src *Source) float64 { return src.Uniform(u.Lo, u.Hi) }

// Mean returns (Lo+Hi)/2.
func (u UniformDist) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Mixture samples from one of several component distributions, chosen with
// the given weights. The Harchol-Balter/Downey load model uses a mixture of
// exponential and Pareto durations.
type Mixture struct {
	Components []Sampler
	Weights    []float64
	total      float64
}

// NewMixture returns a mixture sampler. It panics if the slices differ in
// length, are empty, or any weight is negative.
func NewMixture(components []Sampler, weights []float64) *Mixture {
	if len(components) == 0 || len(components) != len(weights) {
		panic("randx: mixture needs equal, non-zero numbers of components and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("randx: mixture weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("randx: mixture weights must sum to a positive value")
	}
	return &Mixture{Components: components, Weights: weights, total: total}
}

// Sample draws from a randomly chosen component.
func (m *Mixture) Sample(src *Source) float64 {
	u := src.Float64() * m.total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(src)
		}
	}
	return m.Components[len(m.Components)-1].Sample(src)
}

// Mean returns the weighted mean of the component means.
func (m *Mixture) Mean() float64 {
	sum := 0.0
	for i, c := range m.Components {
		sum += m.Weights[i] / m.total * c.Mean()
	}
	return sum
}

// PoissonProcess generates interarrival times for a Poisson process with the
// given rate (events per unit time). It is a thin wrapper over an
// exponential interarrival distribution, named for clarity at call sites.
type PoissonProcess struct {
	Rate float64
}

// NewPoissonProcess returns a Poisson process with rate events per unit
// time. It panics if rate <= 0.
func NewPoissonProcess(rate float64) PoissonProcess {
	if rate <= 0 {
		panic("randx: poisson rate must be positive")
	}
	return PoissonProcess{Rate: rate}
}

// NextInterarrival draws the time until the next event.
func (p PoissonProcess) NextInterarrival(src *Source) float64 {
	u := 1 - src.Float64()
	return -math.Log(u) / p.Rate
}

// Sample implements Sampler by returning an interarrival time.
func (p PoissonProcess) Sample(src *Source) float64 { return p.NextInterarrival(src) }

// Mean returns the mean interarrival time 1/rate.
func (p PoissonProcess) Mean() float64 { return 1 / p.Rate }
