package reqtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// alwaysKeep retains every completed trace, so structural tests never
// race the sampler.
func alwaysKeep() *Tracer {
	return NewTracer(Config{SampleRate: 1})
}

func TestSpanTree(t *testing.T) {
	tr := alwaysKeep()
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "req-1")
	if root == nil {
		t.Fatal("root span is nil")
	}
	if got := TraceID(ctx); got != "req-1" {
		t.Fatalf("TraceID = %q, want req-1", got)
	}

	ctx2, child := StartSpan(ctx, "core.sweep")
	child.SetAttr("algo", "balanced")
	_, grand := StartSpan(ctx2, "wal.fsync")
	grand.Fail(errors.New("disk full"))
	grand.End()
	child.End()
	root.End()

	trace, ok := tr.Store().Get("req-1")
	if !ok {
		t.Fatal("trace not retained")
	}
	if trace.Status != StatusError {
		t.Fatalf("status = %q, want error (a span failed)", trace.Status)
	}
	if trace.Retained != RetainedError {
		t.Fatalf("retained = %q, want error", trace.Retained)
	}
	if len(trace.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(trace.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range trace.Spans {
		byName[s.Name] = s
	}
	if byName["select"].Parent != 0 {
		t.Fatal("root span should have parent 0")
	}
	if byName["core.sweep"].Parent != byName["select"].ID {
		t.Fatal("core.sweep should be a child of select")
	}
	if byName["wal.fsync"].Parent != byName["core.sweep"].ID {
		t.Fatal("wal.fsync should be a child of core.sweep")
	}
	if byName["wal.fsync"].Error != "disk full" {
		t.Fatalf("span error = %q", byName["wal.fsync"].Error)
	}
	if len(byName["core.sweep"].Attrs) != 1 || byName["core.sweep"].Attrs[0] != (Attr{"algo", "balanced"}) {
		t.Fatalf("attrs = %v", byName["core.sweep"].Attrs)
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatal("expected nil span for untraced context")
	}
	if ctx2 != ctx {
		t.Fatal("context should be unchanged")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	sp.Fail(errors.New("x"))
	sp.Graft([]SpanData{{ID: 1}})
	sp.End()
	if sp.Trace() != nil {
		t.Fatal("nil span has no trace")
	}
	if TraceID(ctx) != "" {
		t.Fatal("untraced context has no trace ID")
	}
}

func TestDisabledTracer(t *testing.T) {
	tr := NewTracer(Config{Disabled: true})
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "")
	if root != nil {
		t.Fatal("disabled tracer must return a nil root")
	}
	if Current(ctx) != nil {
		t.Fatal("disabled tracer must not install a span")
	}
	var nilTracer *Tracer
	if _, sp := nilTracer.StartTrace(ctx, "x", "x", ""); sp != nil {
		t.Fatal("nil tracer must return a nil root")
	}
}

func TestTailSamplingPolicy(t *testing.T) {
	tr := NewTracer(Config{SampleRate: -1, SlowThreshold: 10 * time.Millisecond})

	// Fast, healthy trace with rate 0: dropped.
	_, root := tr.StartTrace(context.Background(), "select", "select", "fast")
	root.End()
	if _, ok := tr.Store().Get("fast"); ok {
		t.Fatal("fast healthy trace should have been dropped at rate 0")
	}

	// Error trace: always kept.
	_, root = tr.StartTrace(context.Background(), "select", "select", "bad")
	root.Fail(errors.New("boom"))
	root.End()
	got, ok := tr.Store().Get("bad")
	if !ok || got.Retained != RetainedError {
		t.Fatalf("error trace not retained as error: %+v ok=%v", got, ok)
	}

	// Slow trace: always kept.
	_, root = tr.StartTrace(context.Background(), "select", "select", "slow")
	time.Sleep(15 * time.Millisecond)
	root.End()
	got, ok = tr.Store().Get("slow")
	if !ok || got.Retained != RetainedSlow {
		t.Fatalf("slow trace not retained as slow: %+v ok=%v", got, ok)
	}

	st := tr.Store().Stats()
	if st.Completed != 3 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want completed 3 dropped 1", st)
	}
}

func TestSampledRate(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Capacity: 2048})
	for i := 0; i < 100; i++ {
		_, root := tr.StartTrace(context.Background(), "select", "select", "")
		root.End()
	}
	if st := tr.Store().Stats(); st.RetainedSampled != 100 {
		t.Fatalf("rate 1 should retain everything, got %+v", st)
	}
}

func TestEvictionKeepsImportantTraces(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Capacity: 4})

	_, root := tr.StartTrace(context.Background(), "select", "select", "err-0")
	root.Fail(errors.New("boom"))
	root.End()

	// Flood with fast healthy traces far past capacity.
	for i := 0; i < 50; i++ {
		_, r := tr.StartTrace(context.Background(), "select", "select", fmt.Sprintf("ok-%d", i))
		r.End()
	}

	if _, ok := tr.Store().Get("err-0"); !ok {
		t.Fatal("error trace was evicted by healthy traffic")
	}
	st := tr.Store().Stats()
	if st.RetainedSampled != 4 {
		t.Fatalf("sampled ring should be at capacity 4, got %d", st.RetainedSampled)
	}
	if st.RetainedImportant != 1 {
		t.Fatalf("important ring should hold the error trace, got %d", st.RetainedImportant)
	}
	if st.Evicted != 46 {
		t.Fatalf("evicted = %d, want 46", st.Evicted)
	}
	// Eviction removes by-ID access too.
	if _, ok := tr.Store().Get("ok-0"); ok {
		t.Fatal("evicted trace still reachable by ID")
	}
}

func TestListFilters(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, SlowThreshold: 5 * time.Millisecond})

	_, a := tr.StartTrace(context.Background(), "select", "select", "a")
	a.End()
	_, b := tr.StartTrace(context.Background(), "poll", "collector.poll", "b")
	b.Fail(errors.New("agent down"))
	b.End()
	_, c := tr.StartTrace(context.Background(), "select", "select", "c")
	time.Sleep(8 * time.Millisecond)
	c.End()

	if got := tr.Store().List(Filter{}); len(got) != 3 {
		t.Fatalf("unfiltered list = %d traces, want 3", len(got))
	}
	if got := tr.Store().List(Filter{Kind: "poll"}); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("kind filter = %v", ids(got))
	}
	if got := tr.Store().List(Filter{Status: StatusError}); len(got) != 1 || got[0].ID != "b" {
		t.Fatalf("status filter = %v", ids(got))
	}
	if got := tr.Store().List(Filter{MinDuration: 5 * time.Millisecond}); len(got) != 1 || got[0].ID != "c" {
		t.Fatalf("min duration filter = %v", ids(got))
	}
	if got := tr.Store().List(Filter{Limit: 2}); len(got) != 2 {
		t.Fatalf("limit = %d traces, want 2", len(got))
	}
	// Newest first.
	got := tr.Store().List(Filter{})
	for i := 1; i < len(got); i++ {
		if got[i].Start.After(got[i-1].Start) {
			t.Fatal("list not newest-first")
		}
	}
}

func ids(ts []*Trace) []string {
	out := make([]string, len(ts))
	for i, tr := range ts {
		out[i] = tr.ID
	}
	return out
}

func TestGraft(t *testing.T) {
	tr := alwaysKeep()

	// A finished "poll" trace to graft from.
	ctxP, pollRoot := tr.StartTrace(context.Background(), "poll", "collector.poll", "poll-1")
	_, refresh := StartSpan(ctxP, "source.refresh")
	refresh.End()
	pollRoot.End()
	pollSpans := pollRoot.Trace().Spans

	ctx, root := tr.StartTrace(context.Background(), "select", "select", "sel-1")
	_, snap := StartSpan(ctx, "snapshot")
	snap.End()
	root.Graft(pollSpans)
	root.End()

	trace, ok := tr.Store().Get("sel-1")
	if !ok {
		t.Fatal("select trace not retained")
	}
	if len(trace.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root, snapshot, grafted poll root + child)", len(trace.Spans))
	}
	byName := map[string]SpanData{}
	seen := map[uint64]bool{}
	for _, s := range trace.Spans {
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d after graft", s.ID)
		}
		seen[s.ID] = true
		byName[s.Name] = s
	}
	if byName["collector.poll"].Parent != byName["select"].ID {
		t.Fatal("grafted poll root should hang under the select root")
	}
	if byName["source.refresh"].Parent != byName["collector.poll"].ID {
		t.Fatal("grafted child should keep its remapped parent")
	}
}

func TestLateChildEndIsDropped(t *testing.T) {
	tr := alwaysKeep()
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "late")
	_, child := StartSpan(ctx, "slowpoke")
	root.End()
	child.End() // after finalize: dropped
	trace, _ := tr.Store().Get("late")
	if len(trace.Spans) != 1 {
		t.Fatalf("late child should be dropped, got %d spans", len(trace.Spans))
	}
	// End is idempotent.
	root.End()
	if st := tr.Store().Stats(); st.Completed != 1 {
		t.Fatalf("double End finalized twice: %+v", st)
	}
}

// TestTraceJSONRoundTrip: a served trace decodes back losslessly enough
// for clients — attrs marshal as an object and unmarshal into the list.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := alwaysKeep()
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "rt-1")
	_, sp := StartSpan(ctx, "core.sweep")
	sp.SetAttr("algo", "balanced")
	sp.End()
	root.End()
	orig, _ := tr.Store().Get("rt-1")

	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var got Trace
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
	if got.ID != "rt-1" || len(got.Spans) != 2 {
		t.Fatalf("round-tripped trace %+v", got)
	}
	for _, s := range got.Spans {
		if s.Name == "core.sweep" {
			if len(s.Attrs) != 1 || s.Attrs[0] != (Attr{"algo", "balanced"}) {
				t.Fatalf("round-tripped attrs %v", s.Attrs)
			}
		}
	}
	if !json.Valid(data) || !bytes.Contains(data, []byte(`"attrs":{"algo":"balanced"}`)) {
		t.Fatalf("attrs not rendered as an object: %s", data)
	}
}

func TestNewIDShape(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if len(id) != 26 {
			t.Fatalf("ULID length %d, want 26: %q", len(id), id)
		}
		for _, c := range id {
			if !strings.ContainsRune(ulidAlphabet, c) {
				t.Fatalf("ULID %q contains %q outside the Crockford alphabet", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate ULID %q", id)
		}
		seen[id] = true
	}
	// Timestamp prefix sorts: an ID minted ≥2ms later compares greater.
	a := NewID()
	time.Sleep(3 * time.Millisecond)
	if b := NewID(); !(a < b) {
		t.Fatalf("ULIDs not time-ordered: %q then %q", a, b)
	}
}

func TestValidID(t *testing.T) {
	good := []string{"a", "req-123", "01J8ZXGVQH.ABC_def", strings.Repeat("x", 64)}
	for _, id := range good {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	bad := []string{"", strings.Repeat("x", 65), "has space", "new\nline", "semi;colon", "héllo"}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

// TestConcurrentRecordAndQuery hammers the tracer from many goroutines
// while readers list and get — the -race proof for the span store.
func TestConcurrentRecordAndQuery(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 1, Capacity: 32})
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartTrace(context.Background(), "select", "select", "")
				ctx2, sp := StartSpan(ctx, "core.sweep")
				sp.SetAttr("worker", fmt.Sprint(w))
				_, wal := StartSpan(ctx2, "wal.fsync")
				if i%7 == 0 {
					wal.Fail(errors.New("synthetic"))
				}
				wal.End()
				sp.End()
				root.End()
			}
		}(w)
	}
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, trc := range tr.Store().List(Filter{Limit: 10}) {
					tr.Store().Get(trc.ID)
				}
				tr.Store().Stats()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	if st := tr.Store().Stats(); st.Completed != 800 {
		t.Fatalf("completed = %d, want 800", st.Completed)
	}
}

// TestConcurrentSiblingSpans exercises sibling spans ended from separate
// goroutines under one trace (the SLO harness shape).
func TestConcurrentSiblingSpans(t *testing.T) {
	tr := alwaysKeep()
	ctx, root := tr.StartTrace(context.Background(), "poll", "collector.poll", "par")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, fmt.Sprintf("agent-%d", i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	trace, _ := tr.Store().Get("par")
	if len(trace.Spans) != 9 {
		t.Fatalf("got %d spans, want 9", len(trace.Spans))
	}
}

func TestRecycleReusesDroppedAllocation(t *testing.T) {
	tr := NewTracer(Config{SampleRate: -1}) // drop every healthy trace
	// Churn traces through the pool: each iteration must see a clean
	// trace even when its allocation was just recycled.
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("drop-%d", i)
		ctx, root := tr.StartTrace(context.Background(), "select", "select", id)
		a := StartChild(ctx, "snapshot")
		a.SetAttr("mode", "window")
		a.End()
		b := StartChild(ctx, "plan_cache")
		b.End()
		root.End()
		final := root.Trace()
		if final == nil || final.ID != id || len(final.Spans) != 3 {
			t.Fatalf("iter %d: trace = %+v, want 3 spans for %s", i, final, id)
		}
		for _, sd := range final.Spans {
			if sd.Name != "select" && sd.Name != "snapshot" && sd.Name != "plan_cache" {
				t.Fatalf("iter %d: stale span %q leaked into trace", i, sd.Name)
			}
		}
		root.Recycle()
	}
	if st := tr.Store().Stats(); st.RetainedImportant+st.RetainedSampled != 0 {
		t.Fatalf("retained %d traces, want 0", st.RetainedImportant+st.RetainedSampled)
	}
}

func TestRecycleNeverPoolsRetainedTrace(t *testing.T) {
	tr := alwaysKeep()
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "keep-1")
	c := StartChild(ctx, "core.sweep")
	c.SetAttr("algo", "balanced")
	c.End()
	root.End()
	root.Recycle() // must be a no-op: the store serves this trace

	// Churn more traces through the pool; if the retained trace's
	// allocation had been pooled, these would overwrite its spans.
	drop := NewTracer(Config{SampleRate: -1})
	for i := 0; i < 20; i++ {
		ctx2, r2 := drop.StartTrace(context.Background(), "poll", "poll", "")
		StartChild(ctx2, "collector.poll").End()
		r2.End()
		r2.Recycle()
	}

	got, ok := tr.Store().Get("keep-1")
	if !ok {
		t.Fatal("retained trace vanished")
	}
	if len(got.Spans) != 2 || got.Spans[0].Name != "core.sweep" {
		t.Fatalf("retained trace corrupted: %+v", got.Spans)
	}
	if len(got.Spans[0].Attrs) != 1 || got.Spans[0].Attrs[0] != (Attr{"algo", "balanced"}) {
		t.Fatalf("retained trace attrs corrupted: %v", got.Spans[0].Attrs)
	}
}

func TestRecycleSkipsTraceWithOutstandingSpans(t *testing.T) {
	tr := NewTracer(Config{SampleRate: -1})
	ctx, root := tr.StartTrace(context.Background(), "select", "select", "straggler-1")
	late := StartChild(ctx, "lease.sweep")
	root.End()
	root.Recycle() // must skip: late's handle is still outstanding
	late.End()     // dropped (after finalize), but must stay harmless

	// The next trace must not share state with the unrecycled one.
	ctx2, r2 := tr.StartTrace(context.Background(), "select", "select", "straggler-2")
	StartChild(ctx2, "snapshot").End()
	r2.End()
	if final := r2.Trace(); len(final.Spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(final.Spans), final.Spans)
	}

	// Recycle on non-root and nil spans is a no-op.
	late.Recycle()
	var nilSpan *Span
	nilSpan.Recycle()
}

func TestConcurrentTraceRecycle(t *testing.T) {
	tr := NewTracer(Config{SampleRate: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("c-%d-%d", g, i)
				ctx, root := tr.StartTrace(context.Background(), "select", "select", id)
				sp := StartChild(ctx, "core.sweep")
				sp.SetAttr("i", "x")
				sp.End()
				root.End()
				if final := root.Trace(); final == nil || final.ID != id {
					t.Errorf("goroutine %d iter %d: wrong trace %+v", g, i, final)
					return
				}
				root.Recycle()
			}
		}(g)
	}
	wg.Wait()
	// Every retained trace the store serves must still be intact.
	for _, sum := range tr.Store().List(Filter{}) {
		if got, ok := tr.Store().Get(sum.ID); !ok || len(got.Spans) != 2 {
			t.Fatalf("retained trace %s corrupted: %+v", sum.ID, got)
		}
	}
}
