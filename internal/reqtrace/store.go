package reqtrace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Store retains completed traces under the tail-sampling policy. Two
// independent FIFO rings back it: one for *important* traces (errors and
// slow requests) and one for probabilistically sampled fast traces. The
// split is the retention guarantee — however heavy the healthy traffic,
// sampled traces only ever evict other sampled traces, so the error that
// happened an hour ago is still there when someone goes looking.
type Store struct {
	mu        sync.Mutex
	important ring
	sampled   ring
	byID      map[string]*Trace

	completed atomic.Uint64
	dropped   atomic.Uint64
	evicted   atomic.Uint64
}

// ring is a bounded FIFO of traces.
type ring struct {
	buf []*Trace
	cap int
}

// push appends, returning the evicted oldest entry when full.
func (r *ring) push(tr *Trace) *Trace {
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, tr)
		return nil
	}
	old := r.buf[0]
	copy(r.buf, r.buf[1:])
	r.buf[len(r.buf)-1] = tr
	return old
}

func newStore(capacity int) *Store {
	return &Store{
		important: ring{cap: capacity},
		sampled:   ring{cap: capacity},
		byID:      map[string]*Trace{},
	}
}

// keep files a retained trace under its class.
func (s *Store) keep(tr *Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &s.sampled
	if tr.Retained == RetainedError || tr.Retained == RetainedSlow {
		r = &s.important
	}
	if old := r.push(tr); old != nil {
		delete(s.byID, old.ID)
		s.evicted.Add(1)
	}
	// Duplicate IDs (a client reusing an X-Request-ID) keep the newest
	// trace reachable by ID; the older one remains listable until evicted.
	s.byID[tr.ID] = tr
}

// Get returns one retained trace by ID.
func (s *Store) Get(id string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	tr, ok := s.byID[id]
	return tr, ok
}

// Filter selects traces for List. Zero values match everything.
type Filter struct {
	// Kind matches Trace.Kind exactly ("select", "poll", ...).
	Kind string
	// Status matches Trace.Status ("ok" or "error").
	Status string
	// MinDuration keeps only traces at least this slow.
	MinDuration time.Duration
	// Limit bounds the result (default 50, <= 0 means the default).
	Limit int
}

// List returns retained traces matching f, newest first.
func (s *Store) List(f Filter) []*Trace {
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	s.mu.Lock()
	out := make([]*Trace, 0, len(s.important.buf)+len(s.sampled.buf))
	for _, r := range []*ring{&s.important, &s.sampled} {
		for _, tr := range r.buf {
			if f.Kind != "" && tr.Kind != f.Kind {
				continue
			}
			if f.Status != "" && tr.Status != f.Status {
				continue
			}
			if tr.DurationSeconds < f.MinDuration.Seconds() {
				continue
			}
			out = append(out, tr)
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.After(out[j].Start) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Stats is a point-in-time reading of the store's sampling counters.
type Stats struct {
	// Completed counts every finished trace offered to the sampler;
	// Dropped the ones the sampler let go; Evicted the retained ones later
	// pushed out by ring capacity.
	Completed, Dropped, Evicted uint64
	// RetainedImportant and RetainedSampled are the live ring sizes.
	RetainedImportant, RetainedSampled int
}

// Stats reads the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	imp, smp := len(s.important.buf), len(s.sampled.buf)
	s.mu.Unlock()
	return Stats{
		Completed:         s.completed.Load(),
		Dropped:           s.dropped.Load(),
		Evicted:           s.evicted.Load(),
		RetainedImportant: imp,
		RetainedSampled:   smp,
	}
}
