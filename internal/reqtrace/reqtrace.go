// Package reqtrace is the control plane's request tracing layer: every
// request (and every background poll) runs under a trace identified by a
// ULID-style ID, and each subsystem it crosses — request handling, the
// plan cache, the selection sweep, the lease ledger's critical sections,
// WAL fsyncs, rebalance evaluation, collector polls — records a span with
// its wall-clock duration and a few attributes. The span tree answers the
// question the scalar latency histogram cannot: *where inside one slow
// request the time went*.
//
// Spans travel through context.Context. A handler (or the poll loop)
// opens the root span with Tracer.StartTrace; layers below open children
// with the package-level StartSpan, which is a cheap no-op when the
// context carries no trace — library code can instrument unconditionally.
//
// Completed traces land in a bounded in-memory Store with tail sampling:
// the keep/drop decision is made when the trace *finishes*, so error
// traces and traces slower than a threshold are always retained, while
// fast, healthy traces are kept only with a configurable probability.
// That inverts head sampling's blind spot — the interesting traces are
// exactly the slow and broken ones, and they are never the ones dropped.
package reqtrace

import (
	"context"
	"encoding/json"
	"math/rand/v2"
	"sync"
	"time"
)

// Attr is one span attribute. Attribute lists marshal as a JSON object.
type Attr struct {
	Key, Value string
}

// attrList renders as {"k":"v",...} so trace consumers see an object, not
// an array of pairs.
type attrList []Attr

func (a attrList) MarshalJSON() ([]byte, error) {
	m := make(map[string]string, len(a))
	for _, kv := range a {
		m[kv.Key] = kv.Value
	}
	return json.Marshal(m)
}

// UnmarshalJSON accepts the object form back, so clients (and tests) can
// round-trip a served trace. Key order is not preserved.
func (a *attrList) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*a = (*a)[:0]
	for k, v := range m {
		*a = append(*a, Attr{k, v})
	}
	return nil
}

// SpanData is the completed, stored form of a span.
type SpanData struct {
	// ID and Parent identify the span within its trace; the root span has
	// Parent 0. IDs are unique within a trace, not globally.
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	// Name says what ran: "select", "core.sweep", "lease.acquire",
	// "wal.fsync", "collector.poll", ...
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// DurationSeconds is the span's wall-clock duration.
	DurationSeconds float64 `json:"duration_seconds"`
	// Attrs carries small key/value annotations: cache=hit,
	// bottleneck=link, attempt=2.
	Attrs attrList `json:"attrs,omitempty"`
	// Error is the failure recorded with Fail, empty on success.
	Error string `json:"error,omitempty"`
}

// Retention reasons: why a completed trace was kept in the store.
const (
	// RetainedError: the trace recorded at least one span error.
	RetainedError = "error"
	// RetainedSlow: the root span outlived Config.SlowThreshold.
	RetainedSlow = "slow"
	// RetainedSampled: a fast, healthy trace kept by the probabilistic
	// sampler.
	RetainedSampled = "sampled"
)

// Trace is one completed request: its identity, outcome, and span tree.
type Trace struct {
	// ID is the trace's request ID — the value echoed in X-Request-ID,
	// stamped into audit entries and WAL records.
	ID string `json:"id"`
	// Kind groups traces by what they are: "select", "lease_renew",
	// "poll", ... — the /traces?kind= filter key.
	Kind  string    `json:"kind"`
	Start time.Time `json:"start"`
	// DurationSeconds is the root span's duration.
	DurationSeconds float64 `json:"duration_seconds"`
	// Status is "ok" or "error" (any span failed).
	Status string `json:"status"`
	// Retained says why the store kept this trace: error, slow, or
	// sampled.
	Retained string `json:"retained,omitempty"`
	// Spans is the span tree, in completion order; the root span has
	// Parent 0.
	Spans []SpanData `json:"spans"`
}

// StatusOK / StatusError are the two trace outcomes.
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// active is one in-flight trace accumulating finished spans.
type active struct {
	tracer *Tracer
	id     string
	kind   string
	start  time.Time
	ra     *rootAlloc // containing allocation, for the inline buffers

	mu       sync.Mutex
	nextID   uint64
	spanUsed int // spans handed out of ra.spbuf
	handles  int // *Span handles created (root + newSpan)
	finished int // End calls that consumed a handle
	spans    []SpanData
	errs     int
	final    *Trace // set when the root span ends
}

// newSpan allocates a child span, served from the trace's inline span
// buffer while it lasts.
func (a *active) newSpan(parent uint64, name string) *Span {
	a.mu.Lock()
	a.nextID++
	id := a.nextID
	a.handles++
	var s *Span
	if a.ra != nil && a.spanUsed < len(a.ra.spbuf) {
		s = &a.ra.spbuf[a.spanUsed]
		a.spanUsed++
	}
	a.mu.Unlock()
	if s == nil {
		s = &Span{}
	}
	*s = Span{t: a, id: id, parent: parent, name: name, start: time.Now()}
	return s
}

// Span is the in-flight handle for one span. All methods are safe on a
// nil receiver — code below an untraced entry point pays only a nil
// check. A Span's mutating methods (SetAttr, Fail, End) are meant for the
// goroutine that started it.
type Span struct {
	t      *active
	id     uint64
	parent uint64
	name   string
	start  time.Time
	attrs  []Attr
	// abuf backs the first attrs entries so the common one-or-two-attr
	// span allocates nothing for them (the Span outlives the trace's use
	// of the slice, so handing out its array is safe).
	abuf   [2]Attr
	errMsg string
	ended  bool
}

// SetAttr annotates the span. Last write wins is NOT implemented — repeat
// keys append; keep attributes one-shot.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = s.abuf[:0]
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Fail marks the span (and therefore its trace) as failed. A nil err is
// ignored.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.errMsg = err.Error()
}

// End completes the span and records it in its trace. Ending the root
// span finalizes the trace and offers it to the tracer's store; child
// spans ending after that are dropped. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	dur := time.Since(s.start)
	a := s.t
	a.mu.Lock()
	a.finished++
	if a.final != nil {
		a.mu.Unlock()
		return
	}
	a.spans = append(a.spans, SpanData{
		ID:              s.id,
		Parent:          s.parent,
		Name:            s.name,
		Start:           s.start,
		DurationSeconds: dur.Seconds(),
		Attrs:           s.attrs,
		Error:           s.errMsg,
	})
	if s.errMsg != "" {
		a.errs++
	}
	if s.parent != 0 {
		a.mu.Unlock()
		return
	}
	// Root span: finalize, reusing the root allocation's Trace slot.
	var tr *Trace
	if a.ra != nil {
		tr = &a.ra.tr
	} else {
		tr = new(Trace)
	}
	*tr = Trace{
		ID:              a.id,
		Kind:            a.kind,
		Start:           a.start,
		DurationSeconds: dur.Seconds(),
		Status:          StatusOK,
		Spans:           a.spans,
	}
	if a.errs > 0 {
		tr.Status = StatusError
	}
	a.final = tr
	a.mu.Unlock()
	a.tracer.offer(tr)
}

// Trace returns the finalized trace — valid on the root span after End,
// nil before (and on child spans or a nil receiver). It returns the trace
// whether or not the sampler retained it, which is how the poll loop
// keeps its latest span tree for grafting into degraded selects.
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	return s.t.final
}

// Graft copies another trace's completed spans into this span's trace as
// a subtree rooted under s: span IDs are re-allocated (parents remapped;
// orphans attach to s), so a degraded select can carry the measurement
// plane's last poll tree inside its own trace. No-op on a nil receiver.
func (s *Span) Graft(spans []SpanData) {
	if s == nil || len(spans) == 0 {
		return
	}
	a := s.t
	remap := make(map[uint64]uint64, len(spans))
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.final != nil {
		return
	}
	for _, sd := range spans {
		a.nextID++
		remap[sd.ID] = a.nextID
	}
	for _, sd := range spans {
		sd2 := sd
		sd2.ID = remap[sd.ID]
		if p, ok := remap[sd.Parent]; ok && sd.Parent != 0 {
			sd2.Parent = p
		} else {
			sd2.Parent = s.id
		}
		a.spans = append(a.spans, sd2)
	}
}

// ctxKey carries the current *Span.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying span as the current span.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, span)
}

// Current returns the context's current span, nil when untraced.
func Current(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// TraceID returns the context's trace (request) ID, "" when untraced.
func TraceID(ctx context.Context) string {
	if s := Current(ctx); s != nil {
		return s.t.id
	}
	return ""
}

// StartSpan opens a child of the context's current span. When the context
// carries no trace it returns ctx unchanged and a nil span, whose methods
// are all no-ops — instrumented library code needs no enabled check.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	s := StartChild(ctx, name)
	if s == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, s), s
}

// StartChild opens a child of the context's current span WITHOUT deriving
// a new context — for leaf sections that start no spans of their own
// (snapshot reads, fsyncs, sweep waits). Skipping the context allocation
// keeps these spans nearly free on the hot path. Nil when untraced.
func StartChild(ctx context.Context, name string) *Span {
	parent := Current(ctx)
	if parent == nil {
		return nil
	}
	return parent.t.newSpan(parent.id, name)
}

// Config tunes a Tracer.
type Config struct {
	// Disabled turns tracing off entirely: StartTrace returns a nil span
	// and nothing is recorded or stored.
	Disabled bool
	// Capacity bounds each retention class (error/slow traces and sampled
	// fast traces are evicted independently, so a flood of fast traffic
	// can never push an error trace out). Default 128 per class.
	Capacity int
	// SlowThreshold is the root-span duration at or beyond which a trace
	// is always retained (default 250ms).
	SlowThreshold time.Duration
	// SampleRate is the probability a fast, healthy trace is retained:
	// 0 means the default (0.1), negative keeps none, >= 1 keeps all.
	SampleRate float64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 128
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = 250 * time.Millisecond
	}
	switch {
	case c.SampleRate == 0:
		c.SampleRate = 0.1
	case c.SampleRate < 0:
		c.SampleRate = 0
	case c.SampleRate > 1:
		c.SampleRate = 1
	}
	return c
}

// Tracer creates traces and retains completed ones in its Store.
type Tracer struct {
	cfg   Config
	store *Store
}

// NewTracer builds a tracer with the given sampling policy.
func NewTracer(cfg Config) *Tracer {
	cfg = cfg.withDefaults()
	return &Tracer{cfg: cfg, store: newStore(cfg.Capacity)}
}

// Store returns the tracer's completed-trace store.
func (t *Tracer) Store() *Store { return t.store }

// StartTrace opens a new trace and its root span. id is the request ID to
// adopt (a client's X-Request-ID); empty generates a ULID-style one. The
// returned context carries the root span for StartSpan below. On a
// disabled tracer (or nil receiver) the span is nil and ctx is returned
// unchanged.
func (t *Tracer) StartTrace(ctx context.Context, kind, name, id string) (context.Context, *Span) {
	if t == nil || t.cfg.Disabled {
		return ctx, nil
	}
	if id == "" {
		id = NewID()
	}
	// One allocation covers the trace bookkeeping, its root span, and
	// space for a typical request's spans — the per-request floor of the
	// tracing overhead budget. Dropped traces hand it back via Recycle,
	// so the steady-state cached-select path allocates no trace memory.
	ra := raPool.Get().(*rootAlloc)
	a := &ra.a
	*a = active{tracer: t, id: id, kind: kind, start: time.Now(), ra: ra,
		nextID: 1, handles: 1, spans: ra.sbuf[:0]}
	root := &ra.root
	*root = Span{t: a, id: 1, name: name, start: a.start}
	return ContextWithSpan(ctx, root), root
}

// rootAlloc packs everything StartTrace needs into one heap object: the
// active trace, its root span, inline buffers for the first child spans
// and their records, and the finalized Trace.
type rootAlloc struct {
	a     active
	root  Span
	spbuf [2]Span
	sbuf  [3]SpanData
	tr    Trace
}

var raPool = sync.Pool{New: func() any { return new(rootAlloc) }}

// Recycle returns a dropped trace's backing allocation to the pool. Only
// the owner of the root span may call it, after End, and only when no
// references to the trace or its spans remain — in this codebase that is
// the HTTP middleware, which created the trace and outlives every handler
// span. Retained traces (the store serves them), traces with un-ended
// spans (a straggler still holds a handle), and unfinalized traces are
// left to the garbage collector. No-op on nil or non-root spans.
func (s *Span) Recycle() {
	if s == nil {
		return
	}
	a := s.t
	if a == nil || a.ra == nil || s != &a.ra.root {
		return
	}
	a.mu.Lock()
	ok := a.final != nil && a.final.Retained == "" && a.finished == a.handles
	a.mu.Unlock()
	if ok {
		raPool.Put(a.ra)
	}
}

// offer applies the tail-sampling decision to a completed trace. The
// decision is lock-free for dropped traces, so the hot path only touches
// the store mutex for the (typically small) retained fraction.
func (t *Tracer) offer(tr *Trace) {
	t.store.completed.Add(1)
	switch {
	case tr.Status == StatusError:
		tr.Retained = RetainedError
	case tr.DurationSeconds >= t.cfg.SlowThreshold.Seconds():
		tr.Retained = RetainedSlow
	case t.cfg.SampleRate > 0 && rand.Float64() < t.cfg.SampleRate:
		tr.Retained = RetainedSampled
	default:
		t.store.dropped.Add(1)
		return
	}
	t.store.keep(tr)
}

// Crockford base32, the ULID alphabet.
const ulidAlphabet = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

// NewID returns a 26-character ULID-style identifier: 48 bits of unix
// milliseconds followed by 80 random bits, Crockford-base32 encoded. IDs
// sort roughly by creation time, which keeps trace listings and log greps
// chronological for free.
func NewID() string {
	var b [16]byte
	ms := uint64(time.Now().UnixMilli())
	b[0] = byte(ms >> 40)
	b[1] = byte(ms >> 32)
	b[2] = byte(ms >> 24)
	b[3] = byte(ms >> 16)
	b[4] = byte(ms >> 8)
	b[5] = byte(ms)
	r1, r2 := rand.Uint64(), rand.Uint64()
	b[6] = byte(r1 >> 56)
	b[7] = byte(r1 >> 48)
	b[8] = byte(r1 >> 40)
	b[9] = byte(r1 >> 32)
	b[10] = byte(r1 >> 24)
	b[11] = byte(r1 >> 16)
	b[12] = byte(r1 >> 8)
	b[13] = byte(r1)
	b[14] = byte(r2 >> 8)
	b[15] = byte(r2)
	// 16 bytes = 128 bits; base32 needs 26 symbols for 130, so the first
	// symbol encodes only 3 bits (the ULID spec's layout).
	var out [26]byte
	out[0] = ulidAlphabet[b[0]>>5]
	bits, nbits, pos := uint64(b[0])&0x1f, 5, 1
	for i := 1; i < 16; i++ {
		bits = bits<<8 | uint64(b[i])
		nbits += 8
		for nbits >= 5 {
			nbits -= 5
			out[pos] = ulidAlphabet[(bits>>uint(nbits))&0x1f]
			pos++
		}
	}
	return string(out[:])
}

// ValidID reports whether a client-supplied request ID is acceptable to
// adopt as a trace ID: 1–64 characters drawn from [A-Za-z0-9._-]. Anything
// else (empty, oversized, control characters, header-splitting attempts)
// is rejected and a fresh ULID is generated instead.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}
