// Package testbed constructs the network topologies used in the paper's
// experiments and additional synthetic shapes for wider evaluation.
//
// CMU reconstructs the IP-based testbed of Figure 4: 18 DEC Alpha compute
// nodes (m-1 … m-18) attached to three Cisco routers (panama, gibraltar,
// suez) by 100 Mbps Ethernet links, with a 155 Mbps ATM link between
// gibraltar and suez.
package testbed

import (
	"fmt"

	"nodeselect/internal/randx"
	"nodeselect/internal/topology"
)

// Standard link capacities of the testbed.
const (
	// Ethernet100 is the 100 Mbps Ethernet capacity in bits/second.
	Ethernet100 = 100e6
	// ATM155 is the 155 Mbps ATM capacity in bits/second.
	ATM155 = 155e6
	// EthernetLatency is a nominal LAN Ethernet one-way latency.
	EthernetLatency = 100e-6
	// ATMLatency is a nominal ATM one-way latency.
	ATMLatency = 150e-6
)

// CMU builds the paper's Figure 4 testbed: m-1..m-6 on panama, m-7..m-12
// on gibraltar, m-13..m-18 on suez; panama-gibraltar over Ethernet and
// gibraltar-suez over ATM. All compute nodes are DEC Alphas (arch "alpha",
// unit speed).
func CMU() *topology.Graph {
	g := topology.NewGraph()
	panama := g.AddNetworkNode("panama")
	gibraltar := g.AddNetworkNode("gibraltar")
	suez := g.AddNetworkNode("suez")
	attach := func(router, first, last int) {
		for i := first; i <= last; i++ {
			id := g.AddComputeNodeSpec(fmt.Sprintf("m-%d", i), 1, "alpha")
			g.Connect(router, id, Ethernet100, topology.LinkOpts{Latency: EthernetLatency})
		}
	}
	attach(panama, 1, 6)
	attach(gibraltar, 7, 12)
	attach(suez, 13, 18)
	g.Connect(panama, gibraltar, Ethernet100, topology.LinkOpts{Latency: EthernetLatency})
	g.Connect(gibraltar, suez, ATM155, topology.LinkOpts{Latency: ATMLatency})
	return g
}

// Figure1 builds a small example network in the style of the paper's
// Figure 1 Remos topology graph: two switches bridging two pairs of
// compute nodes.
func Figure1() *topology.Graph {
	g := topology.NewGraph()
	s1 := g.AddNetworkNode("switch-1")
	s2 := g.AddNetworkNode("switch-2")
	for i, sw := range []int{s1, s1, s2, s2} {
		id := g.AddComputeNode(fmt.Sprintf("node-%d", i+1))
		g.Connect(sw, id, Ethernet100, topology.LinkOpts{Latency: EthernetLatency})
	}
	g.Connect(s1, s2, Ethernet100, topology.LinkOpts{Latency: EthernetLatency})
	return g
}

// Star builds n compute nodes attached to one switch with the given access
// capacity.
func Star(n int, accessBW float64) *topology.Graph {
	if n < 1 {
		panic("testbed: star needs at least one node")
	}
	g := topology.NewGraph()
	sw := g.AddNetworkNode("sw")
	for i := 0; i < n; i++ {
		id := g.AddComputeNode(fmt.Sprintf("n-%d", i+1))
		g.Connect(sw, id, accessBW, topology.LinkOpts{Latency: EthernetLatency})
	}
	return g
}

// Dumbbell builds two clusters of k nodes joined by a backbone link.
func Dumbbell(k int, accessBW, backboneBW float64) *topology.Graph {
	if k < 1 {
		panic("testbed: dumbbell needs at least one node per side")
	}
	g := topology.NewGraph()
	left := g.AddNetworkNode("sw-left")
	right := g.AddNetworkNode("sw-right")
	for i := 0; i < k; i++ {
		id := g.AddComputeNode(fmt.Sprintf("l-%d", i+1))
		g.Connect(left, id, accessBW, topology.LinkOpts{Latency: EthernetLatency})
	}
	for i := 0; i < k; i++ {
		id := g.AddComputeNode(fmt.Sprintf("r-%d", i+1))
		g.Connect(right, id, accessBW, topology.LinkOpts{Latency: EthernetLatency})
	}
	g.Connect(left, right, backboneBW, topology.LinkOpts{Latency: EthernetLatency})
	return g
}

// MultiCluster builds `clusters` switches, each with `perCluster` compute
// nodes, all switches attached to one core router.
func MultiCluster(clusters, perCluster int, accessBW, backboneBW float64) *topology.Graph {
	if clusters < 1 || perCluster < 1 {
		panic("testbed: multicluster needs positive dimensions")
	}
	g := topology.NewGraph()
	core := g.AddNetworkNode("core")
	for c := 0; c < clusters; c++ {
		sw := g.AddNetworkNode(fmt.Sprintf("sw-%d", c+1))
		g.Connect(core, sw, backboneBW, topology.LinkOpts{Latency: EthernetLatency})
		for i := 0; i < perCluster; i++ {
			id := g.AddComputeNode(fmt.Sprintf("c%d-n%d", c+1, i+1))
			g.Connect(sw, id, accessBW, topology.LinkOpts{Latency: EthernetLatency})
		}
	}
	return g
}

// HeteroClusters builds a heterogeneous three-cluster testbed for the
// §3.3 reference-capacity experiments: five nodes per cluster, with access
// links of 155 Mbps (ATM), 100 Mbps (Ethernet) and 10 Mbps (legacy
// Ethernet) respectively, joined by a 155 Mbps backbone. Node names are
// atm-1..5, eth-1..5, leg-1..5.
func HeteroClusters() *topology.Graph {
	g := topology.NewGraph()
	core := g.AddNetworkNode("core")
	clusters := []struct {
		prefix string
		bw     float64
	}{
		{"atm", ATM155},
		{"eth", Ethernet100},
		{"leg", 10e6},
	}
	for _, c := range clusters {
		sw := g.AddNetworkNode("sw-" + c.prefix)
		g.Connect(core, sw, ATM155, topology.LinkOpts{Latency: EthernetLatency})
		for i := 1; i <= 5; i++ {
			id := g.AddComputeNode(fmt.Sprintf("%s-%d", c.prefix, i))
			g.Connect(sw, id, c.bw, topology.LinkOpts{Latency: EthernetLatency})
		}
	}
	return g
}

// FatTree builds the canonical k-ary fat-tree (k even, k >= 2): (k/2)²
// core switches, k pods of k/2 aggregation and k/2 edge switches, and k/2
// hosts per edge switch — k³/4 hosts in total (k=16 → 1024, k=34 → 9826,
// k=58 → 48778). Hosts attach at hostBW; every fabric link (edge-agg,
// agg-core) carries fabricBW. With its uniform access tier the fat-tree is
// the natural large-scale input for hierarchical selection: every edge
// switch's hosts collapse into one logical cluster.
func FatTree(k int, hostBW, fabricBW float64) *topology.Graph {
	if k < 2 || k%2 != 0 {
		panic("testbed: fat-tree arity must be even and >= 2")
	}
	g := topology.NewGraph()
	half := k / 2
	cores := make([]int, half*half)
	for i := range cores {
		cores[i] = g.AddNetworkNode(fmt.Sprintf("core-%d", i+1))
	}
	for p := 0; p < k; p++ {
		aggs := make([]int, half)
		for j := 0; j < half; j++ {
			aggs[j] = g.AddNetworkNode(fmt.Sprintf("p%d-a%d", p+1, j+1))
			for c := 0; c < half; c++ {
				g.Connect(aggs[j], cores[j*half+c], fabricBW, topology.LinkOpts{Latency: EthernetLatency})
			}
		}
		for e := 0; e < half; e++ {
			edge := g.AddNetworkNode(fmt.Sprintf("p%d-e%d", p+1, e+1))
			for j := 0; j < half; j++ {
				g.Connect(edge, aggs[j], fabricBW, topology.LinkOpts{Latency: EthernetLatency})
			}
			for h := 0; h < half; h++ {
				id := g.AddComputeNode(fmt.Sprintf("p%d-e%d-h%d", p+1, e+1, h+1))
				g.Connect(edge, id, hostBW, topology.LinkOpts{Latency: EthernetLatency})
			}
		}
	}
	return g
}

// RandomTree builds a random tree of n compute nodes whose link capacities
// are drawn uniformly from the given choices (defaults to 100 Mbps only).
func RandomTree(src *randx.Source, n int, capacities []float64) *topology.Graph {
	if n < 1 {
		panic("testbed: random tree needs at least one node")
	}
	if len(capacities) == 0 {
		capacities = []float64{Ethernet100}
	}
	g := topology.NewGraph()
	for i := 0; i < n; i++ {
		g.AddComputeNode(fmt.Sprintf("t-%d", i+1))
	}
	for i := 1; i < n; i++ {
		parent := src.Intn(i)
		cap := capacities[src.Intn(len(capacities))]
		g.Connect(parent, i, cap, topology.LinkOpts{Latency: EthernetLatency})
	}
	return g
}

// Named returns a topology by name, for CLI tools: "cmu", "figure1",
// "star:<n>", "dumbbell:<k>", "multicluster:<clusters>x<per>",
// "tiered:<clusters>x<per>" (two-tier cluster fabric: gigabit backbone,
// 100 Mbps access) and "fattree:<k>" (k-ary fat-tree: gigabit fabric,
// 100 Mbps hosts). Large-scale presets: tiered:100x100 ≈ 10k nodes,
// fattree:16 → 1024 hosts, fattree:34 → 9826, fattree:58 → 48778.
func Named(name string) (*topology.Graph, error) {
	switch name {
	case "cmu":
		return CMU(), nil
	case "figure1":
		return Figure1(), nil
	default:
		var n, k int
		if _, err := fmt.Sscanf(name, "star:%d", &n); err == nil {
			return Star(n, Ethernet100), nil
		}
		if _, err := fmt.Sscanf(name, "dumbbell:%d", &n); err == nil {
			return Dumbbell(n, Ethernet100, Ethernet100), nil
		}
		if _, err := fmt.Sscanf(name, "multicluster:%dx%d", &n, &k); err == nil {
			return MultiCluster(n, k, Ethernet100, Ethernet100), nil
		}
		if _, err := fmt.Sscanf(name, "tiered:%dx%d", &n, &k); err == nil {
			return MultiCluster(n, k, Ethernet100, 1e9), nil
		}
		if _, err := fmt.Sscanf(name, "fattree:%d", &n); err == nil {
			if n < 2 || n%2 != 0 {
				return nil, fmt.Errorf("testbed: fat-tree arity %d must be even and >= 2", n)
			}
			return FatTree(n, Ethernet100, 1e9), nil
		}
		return nil, fmt.Errorf("testbed: unknown topology %q", name)
	}
}
