package testbed

import (
	"testing"

	"nodeselect/internal/randx"
)

func TestCMUStructure(t *testing.T) {
	g := CMU()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 18 {
		t.Fatalf("compute nodes = %d, want 18", g.NumComputeNodes())
	}
	if g.NumNodes() != 21 {
		t.Fatalf("total nodes = %d, want 21 (18 + 3 routers)", g.NumNodes())
	}
	if g.NumLinks() != 20 {
		t.Fatalf("links = %d, want 20 (18 access + 2 inter-router)", g.NumLinks())
	}
	if !g.IsTree() {
		t.Fatal("CMU testbed should be a tree")
	}
	// The ATM link is gibraltar-suez at 155 Mbps; everything else 100.
	atm := 0
	for _, l := range g.Links() {
		a, b := g.Node(l.A).Name, g.Node(l.B).Name
		if (a == "gibraltar" && b == "suez") || (a == "suez" && b == "gibraltar") {
			atm++
			if l.Capacity != ATM155 {
				t.Errorf("gibraltar-suez capacity = %v, want 155e6", l.Capacity)
			}
		} else if l.Capacity != Ethernet100 {
			t.Errorf("link %s-%s capacity = %v, want 100e6", a, b, l.Capacity)
		}
	}
	if atm != 1 {
		t.Fatalf("found %d ATM links, want 1", atm)
	}
	// All compute nodes are Alphas.
	for _, id := range g.ComputeNodes() {
		if g.Node(id).Arch != "alpha" {
			t.Errorf("node %s arch = %q, want alpha", g.Node(id).Name, g.Node(id).Arch)
		}
	}
	// Attachment: m-16 and m-18 both on suez (the Figure 4 stream is
	// internal to the suez subtree).
	suez := g.MustNode("suez")
	for _, name := range []string{"m-13", "m-16", "m-18"} {
		route := g.Route(g.MustNode(name), suez)
		if len(route) != 1 {
			t.Errorf("%s should attach directly to suez", name)
		}
	}
	// Cross-testbed routes traverse the routers.
	if got := g.HopCount(g.MustNode("m-1"), g.MustNode("m-18")); got != 4 {
		t.Errorf("m-1 to m-18 hops = %d, want 4", got)
	}
}

func TestFigure1(t *testing.T) {
	g := Figure1()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 4 || g.NumNodes() != 6 {
		t.Fatalf("figure1 has %d/%d nodes", g.NumComputeNodes(), g.NumNodes())
	}
}

func TestStar(t *testing.T) {
	g := Star(5, Ethernet100)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 5 || g.NumLinks() != 5 {
		t.Fatal("star structure wrong")
	}
	sw := g.MustNode("sw")
	if g.Degree(sw) != 5 {
		t.Fatal("hub degree wrong")
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(3, Ethernet100, ATM155)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 6 {
		t.Fatal("dumbbell node count wrong")
	}
	// Cross-side routes traverse the backbone.
	l, r := g.MustNode("l-1"), g.MustNode("r-1")
	if g.HopCount(l, r) != 3 {
		t.Fatalf("cross hops = %d, want 3", g.HopCount(l, r))
	}
}

func TestMultiCluster(t *testing.T) {
	g := MultiCluster(3, 4, Ethernet100, ATM155)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumComputeNodes() != 12 {
		t.Fatal("multicluster node count wrong")
	}
	a, b := g.MustNode("c1-n1"), g.MustNode("c3-n4")
	if g.HopCount(a, b) != 4 {
		t.Fatalf("cross-cluster hops = %d, want 4", g.HopCount(a, b))
	}
}

func TestRandomTree(t *testing.T) {
	src := randx.New(1)
	g := RandomTree(src, 25, []float64{Ethernet100, ATM155})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.IsTree() {
		t.Fatal("random tree is not a tree")
	}
	if g.NumComputeNodes() != 25 {
		t.Fatal("node count wrong")
	}
}

func TestFatTree(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		g := FatTree(k, Ethernet100, 1e9)
		if err := g.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		half := k / 2
		if got, want := g.NumComputeNodes(), k*k*k/4; got != want {
			t.Fatalf("k=%d: hosts = %d, want %d", k, got, want)
		}
		if got, want := g.NumNodes()-g.NumComputeNodes(), half*half+k*k; got != want {
			t.Fatalf("k=%d: switches = %d, want %d", k, got, want)
		}
		// k³/4 host links + k·(k/2)² edge-agg links + k·(k/2)² agg-core.
		if got, want := g.NumLinks(), k*k*k/4+2*k*half*half; got != want {
			t.Fatalf("k=%d: links = %d, want %d", k, got, want)
		}
		// Cross-pod hosts reach each other through the core: 6 hops.
		if k >= 4 {
			a, b := g.MustNode("p1-e1-h1"), g.MustNode("p2-e1-h1")
			if got := g.HopCount(a, b); got != 6 {
				t.Fatalf("k=%d: cross-pod hops = %d, want 6", k, got)
			}
			// Same-edge hosts are two hops apart.
			if got := g.HopCount(a, g.MustNode("p1-e1-h2")); got != 2 {
				t.Fatalf("k=%d: same-edge hops = %d, want 2", k, got)
			}
		}
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"cmu", "figure1", "star:6", "dumbbell:4", "multicluster:2x3", "tiered:3x4", "fattree:4"} {
		g, err := Named(name)
		if err != nil {
			t.Errorf("Named(%q): %v", name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("Named(%q) invalid: %v", name, err)
		}
	}
	if _, err := Named("bogus"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Named("fattree:3"); err == nil {
		t.Error("odd fat-tree arity accepted")
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { Star(0, 1e6) },
		func() { Dumbbell(0, 1e6, 1e6) },
		func() { MultiCluster(0, 1, 1e6, 1e6) },
		func() { RandomTree(randx.New(1), 0, nil) },
		func() { FatTree(3, 1e6, 1e6) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
