package loadgen

import (
	"math"
	"testing"

	"nodeselect/internal/netsim"
	"nodeselect/internal/randx"
	"nodeselect/internal/sim"
	"nodeselect/internal/topology"
)

func testNet(nodes int) (*sim.Engine, *netsim.Network) {
	g := topology.NewGraph()
	sw := g.AddNetworkNode("sw")
	for i := 0; i < nodes; i++ {
		id := g.AddComputeNode("m" + string(rune('a'+i)))
		g.Connect(sw, id, 100e6, topology.LinkOpts{})
	}
	e := sim.NewEngine()
	return e, netsim.New(e, g, netsim.Config{})
}

func TestDefaultDurationMean(t *testing.T) {
	src := randx.New(1)
	for _, mean := range []float64{1, 10, 40} {
		d := DefaultDuration(mean)
		if math.Abs(d.Mean()-mean)/mean > 1e-9 {
			t.Errorf("DefaultDuration(%v).Mean() = %v", mean, d.Mean())
		}
		sum := 0.0
		const n = 200000
		for i := 0; i < n; i++ {
			sum += d.Sample(src)
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.1 {
			t.Errorf("DefaultDuration(%v) sample mean %v deviates >10%%", mean, got)
		}
	}
}

func TestDefaultDurationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DefaultDuration(0) did not panic")
		}
	}()
	DefaultDuration(0)
}

func TestGeneratorArrivalCount(t *testing.T) {
	e, n := testNet(3)
	// Rate 0.5 jobs/s per node, short jobs so they complete.
	g := New(n, Config{
		ArrivalRate: 0.5,
		Duration:    randx.Constant{Value: 0.01},
	}, randx.New(42))
	g.Start()
	const horizon = 2000.0
	e.RunUntil(horizon)
	g.Stop()
	want := 0.5 * horizon * 3
	got := float64(g.JobsStarted())
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("started %v jobs over %v s on 3 nodes, want ~%v", got, horizon, want)
	}
}

func TestGeneratorDrivesLoadAverage(t *testing.T) {
	e, n := testNet(2)
	// Offered load = rate * mean duration = 0.2 * 10 = 2 competing jobs.
	g := New(n, Config{
		ArrivalRate: 0.2,
		Duration:    randx.NewExponential(10),
	}, randx.New(7))
	if math.Abs(g.OfferedLoad()-2) > 1e-9 {
		t.Fatalf("OfferedLoad = %v, want 2", g.OfferedLoad())
	}
	g.Start()
	e.RunUntil(4000)
	// Time-average the load over a long window by sampling.
	sum, count := 0.0, 0
	for ts := 4000.0; ts <= 8000; ts += 10 {
		e.RunUntil(ts)
		sum += n.Host(1).LoadAvg(false)
		count++
	}
	g.Stop()
	got := sum / float64(count)
	// An M/G/1-PS queue at offered load 2 is overloaded; the run queue
	// grows over the horizon, so we only require substantial load.
	if got < 1.0 {
		t.Fatalf("mean load average %v, want >= 1 for offered load 2", got)
	}
}

func TestGeneratorStableLoadLevel(t *testing.T) {
	// Offered load 0.5: stable M/M/1-PS queue; mean queue length is
	// rho/(1-rho) = 1. Check the measured load average is in a sane band.
	e, n := testNet(1)
	g := New(n, Config{
		ArrivalRate: 0.1,
		Duration:    randx.NewExponential(5),
	}, randx.New(9))
	g.Start()
	sum, count := 0.0, 0
	for ts := 2000.0; ts <= 20000; ts += 25 {
		e.RunUntil(ts)
		sum += n.Host(1).LoadAvg(false) // node 0 is the switch
		count++
	}
	g.Stop()
	got := sum / float64(count)
	if got < 0.5 || got > 2.0 {
		t.Fatalf("mean load average %v, want near 1 (rho=0.5 M/M/1)", got)
	}
}

func TestGeneratorStop(t *testing.T) {
	e, n := testNet(2)
	g := New(n, Config{ArrivalRate: 1, Duration: randx.Constant{Value: 0.01}}, randx.New(3))
	g.Start()
	e.RunUntil(100)
	g.Stop()
	at := g.JobsStarted()
	e.RunUntil(200)
	if g.JobsStarted() != at {
		t.Fatalf("jobs kept arriving after Stop: %d -> %d", at, g.JobsStarted())
	}
	g.Stop() // idempotent
}

func TestGeneratorRestrictedNodes(t *testing.T) {
	e, n := testNet(3)
	g := New(n, Config{
		ArrivalRate: 2,
		Duration:    randx.Constant{Value: 1e6}, // jobs never finish
		Nodes:       []int{1},                   // only the first compute node
	}, randx.New(5))
	g.Start()
	e.RunUntil(50)
	g.Stop()
	if n.Host(1).RunQueue(false) == 0 {
		t.Error("target node got no jobs")
	}
	if n.Host(2).RunQueue(false) != 0 || n.Host(3).RunQueue(false) != 0 {
		t.Error("non-target nodes received jobs")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() int {
		e, n := testNet(3)
		g := New(n, Config{ArrivalRate: 0.3}, randx.New(11))
		g.Start()
		e.RunUntil(500)
		return g.JobsStarted()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %d vs %d jobs", a, b)
	}
}

func TestGeneratorStartIdempotent(t *testing.T) {
	e, n := testNet(2)
	g := New(n, Config{ArrivalRate: 1, Duration: randx.Constant{Value: 0.01}}, randx.New(13))
	g.Start()
	g.Start() // must not double the arrival processes
	e.RunUntil(200)
	g.Stop()
	want := 1.0 * 200 * 2
	got := float64(g.JobsStarted())
	if got > want*1.3 {
		t.Fatalf("double Start produced %v jobs, want ~%v", got, want)
	}
}

func TestNewPanicsOnBadRate(t *testing.T) {
	_, n := testNet(2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero arrival rate did not panic")
		}
	}()
	New(n, Config{ArrivalRate: 0}, randx.New(1))
}
