package loadgen

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunSLOCountsAndPercentiles(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusOK)
	})
	rep, err := RunSLO(SLOConfig{
		Handler:     h,
		Requests:    200,
		Warmup:      10,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 210 {
		t.Errorf("handler called %d times, want 210 (200 measured + 10 warmup)", got)
	}
	if rep.Requests != 200 {
		t.Errorf("Requests = %d, want 200", rep.Requests)
	}
	if rep.Errors != 0 || rep.ErrorRate != 0 {
		t.Errorf("errors = %d rate %v, want 0", rep.Errors, rep.ErrorRate)
	}
	if rep.StatusClasses["2xx"] != 200 {
		t.Errorf("StatusClasses = %v, want 200 2xx", rep.StatusClasses)
	}
	l := rep.LatencyMs
	if !(l.P50 <= l.P90 && l.P90 <= l.P99 && l.P99 <= l.P999 && l.P999 <= l.Max) {
		t.Errorf("percentiles not monotone: %+v", l)
	}
	if l.P50 <= 0 || rep.ThroughputRPS <= 0 {
		t.Errorf("degenerate report: %+v", rep)
	}
}

func TestRunSLOErrorRate(t *testing.T) {
	var n atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Every 4th measured request fails server-side; 4xx is not an
		// "error" for SLO purposes, so throw some of those in too.
		switch n.Add(1) % 4 {
		case 0:
			w.WriteHeader(http.StatusInternalServerError)
		case 1:
			w.WriteHeader(http.StatusBadRequest)
		default:
			w.WriteHeader(http.StatusOK)
		}
	})
	rep, err := RunSLO(SLOConfig{Handler: h, Requests: 400, Warmup: -1, Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 100 {
		t.Errorf("Errors = %d, want 100 (5xx only)", rep.Errors)
	}
	if rep.ErrorRate != 0.25 {
		t.Errorf("ErrorRate = %v, want 0.25", rep.ErrorRate)
	}
	if rep.StatusClasses["4xx"] != 100 || rep.StatusClasses["5xx"] != 100 || rep.StatusClasses["2xx"] != 200 {
		t.Errorf("StatusClasses = %v", rep.StatusClasses)
	}
}

func TestRunSLOTailLatency(t *testing.T) {
	var n atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// One request in fifty stalls: p50 must stay fast while p99 shows
		// the stall — the exact separation an SLO pipeline exists to catch.
		if n.Add(1)%50 == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	})
	rep, err := RunSLO(SLOConfig{Handler: h, Requests: 500, Warmup: -1, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LatencyMs.P99 < 1 {
		t.Errorf("p99 = %.3fms, want >= 1ms from the injected stalls", rep.LatencyMs.P99)
	}
	if rep.LatencyMs.P50 > 1 {
		t.Errorf("p50 = %.3fms, want < 1ms (stalls are 2%% of traffic)", rep.LatencyMs.P50)
	}
}

func TestRunSLORequiresHandler(t *testing.T) {
	if _, err := RunSLO(SLOConfig{}); err == nil {
		t.Fatal("RunSLO without a handler did not error")
	}
}

func TestSLOReportCheck(t *testing.T) {
	rep := SLOReport{
		ErrorRate: 0.02,
		LatencyMs: SLOLatency{P99: 3.5, P999: 12},
	}
	if err := rep.Check(SLOBudget{}); err != nil {
		t.Errorf("empty budget enforced something: %v", err)
	}
	if err := rep.Check(SLOBudget{MaxP99Ms: 4, MaxP999Ms: 20, MaxErrorRate: 0.05}); err != nil {
		t.Errorf("within-budget report failed: %v", err)
	}
	err := rep.Check(SLOBudget{MaxP99Ms: 2, MaxP999Ms: 10, MaxErrorRate: 0.01})
	if err == nil {
		t.Fatal("blown budget passed")
	}
	for _, want := range []string{"p99", "p999", "error rate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Check error %q does not name %s", err, want)
		}
	}
}
