package loadgen

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"nodeselect/internal/stats"
)

// This file is the service-side counterpart of the simulation load
// generator: where Generator drives synthetic CPU load inside netsim, the
// SLO harness drives sustained HTTP load against a live (in-process)
// placement service and reduces the per-request latency samples to the
// percentile summary an SLO is written against.

// SLOConfig parameterizes one sustained-load run.
type SLOConfig struct {
	// Handler is the service under test, driven in-process — no sockets,
	// so the measured latency is the service's own cost. Required.
	Handler http.Handler
	// Method and Path address the endpoint (default POST /select).
	Method string
	Path   string
	// Body is the request body sent with every request.
	Body []byte
	// Header entries are added to every request.
	Header http.Header
	// Requests is the number of measured requests (default 2000).
	Requests int
	// Warmup requests run before measurement starts, unrecorded, so
	// one-time costs (first snapshot, cache fill) do not pollute the tail
	// (default 100; negative disables warmup).
	Warmup int
	// Concurrency is the number of parallel workers (default 4).
	Concurrency int
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Method == "" {
		c.Method = http.MethodPost
	}
	if c.Path == "" {
		c.Path = "/select"
	}
	if c.Requests <= 0 {
		c.Requests = 2000
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	} else if c.Warmup == 0 {
		c.Warmup = 100
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	return c
}

// SLOLatency is the latency summary, in milliseconds.
type SLOLatency struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// SLOReport is the machine-readable result of a run — the shape written to
// slo.json and consumed by the benchdiff -slo gate.
type SLOReport struct {
	Target          string         `json:"target"`
	Requests        int            `json:"requests"`
	Concurrency     int            `json:"concurrency"`
	Errors          int            `json:"errors"`
	ErrorRate       float64        `json:"error_rate"`
	DurationSeconds float64        `json:"duration_seconds"`
	ThroughputRPS   float64        `json:"throughput_rps"`
	LatencyMs       SLOLatency     `json:"latency_ms"`
	StatusClasses   map[string]int `json:"status_classes"`
}

// RunSLO drives Concurrency workers through Requests requests against the
// handler and reduces the per-request latency samples through
// internal/stats. A request counts as an error when its status is >= 500
// (4xx is the client's fault and would mask service regressions if it
// moved the error rate).
func RunSLO(cfg SLOConfig) (SLOReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Handler == nil {
		return SLOReport{}, errors.New("loadgen: SLOConfig.Handler is required")
	}

	do := func() (status int, seconds float64, err error) {
		req, err := http.NewRequest(cfg.Method, cfg.Path, bytes.NewReader(cfg.Body))
		if err != nil {
			return 0, 0, err
		}
		for k, vs := range cfg.Header {
			req.Header[k] = vs
		}
		w := &memResponse{header: make(http.Header)}
		t0 := time.Now()
		cfg.Handler.ServeHTTP(w, req)
		d := time.Since(t0)
		if w.status == 0 {
			w.status = http.StatusOK
		}
		return w.status, d.Seconds(), nil
	}

	for i := 0; i < cfg.Warmup; i++ {
		if _, _, err := do(); err != nil {
			return SLOReport{}, err
		}
	}

	// Workers keep private samples and merge after the run: stats.Sample
	// is not concurrency-safe, and a shared mutex on the hot path would
	// serialize exactly the contention the harness exists to measure.
	type workerOut struct {
		latency stats.Sample
		classes map[string]int
		errors  int
		err     error
	}
	per := cfg.Requests / cfg.Concurrency
	extra := cfg.Requests % cfg.Concurrency
	outs := make([]workerOut, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(out *workerOut, n int) {
			defer wg.Done()
			out.classes = make(map[string]int)
			for i := 0; i < n; i++ {
				status, seconds, err := do()
				if err != nil {
					out.err = err
					return
				}
				out.latency.Add(seconds)
				out.classes[statusClassOf(status)]++
				if status >= 500 {
					out.errors++
				}
			}
		}(&outs[w], n)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	var all stats.Sample
	classes := make(map[string]int)
	errs := 0
	for i := range outs {
		if outs[i].err != nil {
			return SLOReport{}, outs[i].err
		}
		all.AddAll(outs[i].latency.Values()...)
		for k, v := range outs[i].classes {
			classes[k] += v
		}
		errs += outs[i].errors
	}

	const ms = 1e3
	rep := SLOReport{
		Target:          cfg.Method + " " + cfg.Path,
		Requests:        all.N(),
		Concurrency:     cfg.Concurrency,
		Errors:          errs,
		ErrorRate:       float64(errs) / float64(all.N()),
		DurationSeconds: elapsed,
		ThroughputRPS:   float64(all.N()) / elapsed,
		LatencyMs: SLOLatency{
			Mean: all.Mean() * ms,
			P50:  all.Percentile(50) * ms,
			P90:  all.Percentile(90) * ms,
			P99:  all.Percentile(99) * ms,
			P999: all.Percentile(99.9) * ms,
			Max:  all.Max() * ms,
		},
		StatusClasses: classes,
	}
	return rep, nil
}

// SLOBudget is the pass/fail gate for a report. Zero fields are not
// enforced.
type SLOBudget struct {
	// MaxP99Ms and MaxP999Ms bound the latency tail, in milliseconds.
	MaxP99Ms  float64
	MaxP999Ms float64
	// MaxErrorRate bounds the fraction of requests answered >= 500.
	MaxErrorRate float64
}

// Check returns a joined error naming every budget the report blows, nil
// when all enforced budgets hold.
func (r SLOReport) Check(b SLOBudget) error {
	var errs []error
	if b.MaxP99Ms > 0 && r.LatencyMs.P99 > b.MaxP99Ms {
		errs = append(errs, fmt.Errorf("p99 %.3fms exceeds budget %.3fms", r.LatencyMs.P99, b.MaxP99Ms))
	}
	if b.MaxP999Ms > 0 && r.LatencyMs.P999 > b.MaxP999Ms {
		errs = append(errs, fmt.Errorf("p999 %.3fms exceeds budget %.3fms", r.LatencyMs.P999, b.MaxP999Ms))
	}
	if b.MaxErrorRate > 0 && r.ErrorRate > b.MaxErrorRate {
		errs = append(errs, fmt.Errorf("error rate %.4f exceeds budget %.4f", r.ErrorRate, b.MaxErrorRate))
	}
	return errors.Join(errs...)
}

// statusClassOf buckets a status for the report ("2xx", "5xx", ...).
func statusClassOf(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// memResponse is a minimal in-memory http.ResponseWriter: the harness
// cares about status and timing, not the body bytes.
type memResponse struct {
	header http.Header
	status int
}

func (m *memResponse) Header() http.Header { return m.header }

func (m *memResponse) WriteHeader(status int) {
	if m.status == 0 {
		m.status = status
	}
}

func (m *memResponse) Write(b []byte) (int, error) {
	if m.status == 0 {
		m.status = http.StatusOK
	}
	return len(b), nil
}
