package loadgen

import (
	"fmt"
	"math"

	"nodeselect/internal/stats"
)

// This file holds the report and gate types for the hierarchical-selection
// A/B benchmark: the same paired select sequence is timed against the flat
// union-find sweep and the collapsed quotient sweep on a large two-tier
// topology, and the per-rep mean latencies are compared with Welch's
// t-test. The benchmark itself lives in internal/experiment (RunHier);
// this layer is shared with cmd/benchdiff so the -hier gate can recompute
// the comparison from the raw samples without trusting the producer.

// HierModeReport summarizes one arm (flat or hierarchical) of the select
// latency A/B across its reps.
type HierModeReport struct {
	// Topology names the testbed preset the arm ran on and Nodes its size.
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	// Selects is the number of timed selects per rep; Reps the number of
	// independently repainted repetitions.
	Selects int `json:"selects"`
	Reps    int `json:"reps"`
	// LatencySamples is the per-rep mean select latency in seconds — the
	// input to the Welch comparison (kept raw so benchdiff can recompute
	// the test).
	LatencySamples []float64 `json:"latency_samples"`
	// MeanLatencyMs is the mean of the samples, in milliseconds.
	MeanLatencyMs float64 `json:"mean_latency_ms"`
}

// HierEquivalence summarizes the randomized equivalence/quality suite:
// every select on every ≤200-node topology is answered by both paths and
// compared field by field.
type HierEquivalence struct {
	// Topologies and Cases count the randomized topologies and the select
	// comparisons run over them.
	Topologies int `json:"topologies"`
	Cases      int `json:"cases"`
	// Exact counts comparisons whose outcomes (node sets, scores, and
	// errors alike) were identical. The gate requires Exact == Cases.
	Exact int `json:"exact"`
	// QuotientShare is the fraction of comparisons the hierarchical side
	// answered via the quotient path (the rest fell back, which still
	// must match but exercises no collapse).
	QuotientShare float64 `json:"quotient_share"`
	// QualityRatio is the worst hierarchical/flat minresource ratio over
	// the successful comparisons (1 when every outcome matched exactly).
	QualityRatio float64 `json:"quality_ratio"`
}

// HierScale is one ungated showcase row: how the quotient path behaves at
// a scale outside the gated comparison (the 1k fat-tree, where collapse
// buys little, and the 50k two-tier, where the flat path's all-pairs
// route table is no longer worth materializing).
type HierScale struct {
	Topology string `json:"topology"`
	Nodes    int    `json:"nodes"`
	// Clusters and CollapsedNodes describe the partition built there.
	Clusters       int `json:"clusters"`
	CollapsedNodes int `json:"collapsed_nodes"`
	// PartitionBuildMs is the one-time per-epoch partition cost.
	PartitionBuildMs float64 `json:"partition_build_ms"`
	// FlatMeanMs is zero when the flat arm was not run at this scale.
	FlatMeanMs float64 `json:"flat_mean_ms,omitempty"`
	HierMeanMs float64 `json:"hier_mean_ms"`
	// Speedup is FlatMeanMs/HierMeanMs, zero when flat was not run.
	Speedup float64 `json:"speedup,omitempty"`
}

// HierReport is the full benchmark outcome written to hier.json and gated
// by cmd/benchdiff -hier.
type HierReport struct {
	Equivalence HierEquivalence `json:"equivalence"`
	Flat        HierModeReport  `json:"flat"`
	Hier        HierModeReport  `json:"hier"`
	// Speedup is flat mean latency over hierarchical mean latency.
	Speedup float64 `json:"speedup"`
	// WelchP is the two-sided Welch t-test p-value over the per-rep
	// latency samples.
	WelchP float64 `json:"welch_p"`
	// Scales carries the ungated showcase rows.
	Scales []HierScale `json:"scales,omitempty"`
	// The thresholds the report was gated with, echoed for benchdiff.
	MinSpeedup float64 `json:"min_speedup"`
	Alpha      float64 `json:"alpha"`
	MinQuality float64 `json:"min_quality"`
	// Pass and Failures are GateHier's verdict.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// GateHier applies the acceptance thresholds: the equivalence suite must
// be exact, hierarchical minresource must stay within minQuality of flat,
// and the hierarchical arm must beat the flat arm by minSpeedup with
// Welch p below alpha. Degenerate latency samples (fewer than two reps,
// or zero variance in both arms) fail the gate explicitly rather than
// producing an unfalsifiable comparison.
func GateHier(eq HierEquivalence, flat, hier HierModeReport, scales []HierScale, minSpeedup, alpha, minQuality float64) HierReport {
	r := HierReport{
		Equivalence: eq, Flat: flat, Hier: hier, Scales: scales,
		MinSpeedup: minSpeedup, Alpha: alpha, MinQuality: minQuality,
	}
	if eq.Cases == 0 {
		r.Failures = append(r.Failures, "equivalence suite ran no comparisons")
	} else if eq.Exact != eq.Cases {
		r.Failures = append(r.Failures,
			fmt.Sprintf("equivalence suite: %d of %d comparisons diverged", eq.Cases-eq.Exact, eq.Cases))
	}
	if minQuality > 0 && eq.QualityRatio < minQuality {
		r.Failures = append(r.Failures,
			fmt.Sprintf("quality ratio %.4f below floor %.4f", eq.QualityRatio, minQuality))
	}

	var sF, sH stats.Sample
	sF.AddAll(flat.LatencySamples...)
	sH.AddAll(hier.LatencySamples...)
	if m := sH.Mean(); m > 0 {
		r.Speedup = sF.Mean() / m
	}
	r.WelchP = stats.WelchT(&sF, &sH).P

	switch {
	case sF.N() < 2 || sH.N() < 2:
		r.Failures = append(r.Failures,
			fmt.Sprintf("degenerate latency samples: flat n=%d, hier n=%d (need >= 2 each)", sF.N(), sH.N()))
	case sF.Min() == sF.Max() && sH.Min() == sH.Max():
		r.Failures = append(r.Failures,
			"degenerate latency samples: zero variance in both arms")
	default:
		if minSpeedup > 0 && r.Speedup < minSpeedup {
			r.Failures = append(r.Failures,
				fmt.Sprintf("speedup %.2fx below floor %.2fx", r.Speedup, minSpeedup))
		}
		if alpha > 0 {
			if math.IsNaN(r.WelchP) || r.WelchP >= alpha {
				r.Failures = append(r.Failures,
					fmt.Sprintf("welch p %.4g not significant at alpha %.4g", r.WelchP, alpha))
			} else if sH.Mean() >= sF.Mean() {
				r.Failures = append(r.Failures, "hierarchical mean latency does not beat flat")
			}
		}
	}
	r.Pass = len(r.Failures) == 0
	return r
}
