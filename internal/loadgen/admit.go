package loadgen

import (
	"errors"
	"fmt"
	"math"
	"net/http"

	"nodeselect/internal/stats"
)

// This file extends the SLO harness into an A/B throughput benchmark for
// admission: the same sustained leased-select load is driven against a
// serial-admission service and a batched-admission one, repeated across
// independent reps (each on a fresh service and ledger, so one rep's
// accumulated leases cannot bleed into the next), and the per-rep
// throughput samples are compared with Welch's t-test. This is the engine
// behind `expt -run admit` and the benchdiff -admit gate.

// AdmitConfig parameterizes one admission mode's rep loop.
type AdmitConfig struct {
	// NewHandler builds a fresh service for one rep and returns its
	// handler plus a teardown (drain pipelines, close WALs). Required: a
	// shared handler would accumulate leases across reps and measure an
	// ever-heavier ledger instead of steady-state admission cost.
	NewHandler func() (http.Handler, func(), error)
	// Body is the leased select request sent with every request.
	Body []byte
	// Requests, Warmup, Concurrency mirror SLOConfig, per rep.
	Requests    int
	Warmup      int
	Concurrency int
	// Reps is how many independent runs feed the throughput sample
	// (default 5; Welch needs at least 2).
	Reps int
}

func (c AdmitConfig) withDefaults() AdmitConfig {
	if c.Reps <= 0 {
		c.Reps = 5
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 64
	}
	return c
}

// AdmitModeReport summarizes one admission mode across its reps.
type AdmitModeReport struct {
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	Reps        int `json:"reps"`
	// ThroughputSamples is the per-rep selects/s — the input to the Welch
	// comparison (kept raw so benchdiff can recompute the test).
	ThroughputSamples []float64 `json:"throughput_samples"`
	// ThroughputRPS is the mean of the samples.
	ThroughputRPS float64 `json:"throughput_rps"`
	// LatencyMs averages each percentile across reps.
	LatencyMs SLOLatency `json:"latency_ms"`
	// ErrorRate is the worst rep's rate: one bad rep must not hide in the
	// mean.
	ErrorRate float64 `json:"error_rate"`
}

// RunAdmitMode runs one admission mode's rep loop.
func RunAdmitMode(cfg AdmitConfig) (AdmitModeReport, error) {
	cfg = cfg.withDefaults()
	if cfg.NewHandler == nil {
		return AdmitModeReport{}, errors.New("loadgen: AdmitConfig.NewHandler is required")
	}
	rep := AdmitModeReport{Concurrency: cfg.Concurrency, Reps: cfg.Reps}
	for r := 0; r < cfg.Reps; r++ {
		h, teardown, err := cfg.NewHandler()
		if err != nil {
			return AdmitModeReport{}, fmt.Errorf("loadgen: admit rep %d: %w", r, err)
		}
		slo, err := RunSLO(SLOConfig{
			Handler:     h,
			Body:        cfg.Body,
			Requests:    cfg.Requests,
			Warmup:      cfg.Warmup,
			Concurrency: cfg.Concurrency,
		})
		teardown()
		if err != nil {
			return AdmitModeReport{}, fmt.Errorf("loadgen: admit rep %d: %w", r, err)
		}
		rep.Requests = slo.Requests
		rep.ThroughputSamples = append(rep.ThroughputSamples, slo.ThroughputRPS)
		rep.LatencyMs.Mean += slo.LatencyMs.Mean
		rep.LatencyMs.P50 += slo.LatencyMs.P50
		rep.LatencyMs.P90 += slo.LatencyMs.P90
		rep.LatencyMs.P99 += slo.LatencyMs.P99
		rep.LatencyMs.P999 += slo.LatencyMs.P999
		if slo.LatencyMs.Max > rep.LatencyMs.Max {
			rep.LatencyMs.Max = slo.LatencyMs.Max
		}
		if slo.ErrorRate > rep.ErrorRate {
			rep.ErrorRate = slo.ErrorRate
		}
	}
	n := float64(cfg.Reps)
	rep.LatencyMs.Mean /= n
	rep.LatencyMs.P50 /= n
	rep.LatencyMs.P90 /= n
	rep.LatencyMs.P99 /= n
	rep.LatencyMs.P999 /= n
	var s stats.Sample
	s.AddAll(rep.ThroughputSamples...)
	rep.ThroughputRPS = s.Mean()
	return rep, nil
}

// AdmitReport is the A/B comparison written to admit.json and gated by
// cmd/benchdiff -admit.
type AdmitReport struct {
	Serial  AdmitModeReport `json:"serial"`
	Batched AdmitModeReport `json:"batched"`
	// Speedup is batched mean throughput over serial's.
	Speedup float64 `json:"speedup"`
	// WelchP is the two-sided Welch t-test p-value over the throughput
	// samples.
	WelchP float64 `json:"welch_p"`
	// P99Ratio is batched p99 latency over serial's.
	P99Ratio float64 `json:"p99_ratio"`
	// The thresholds the report was gated with, echoed for benchdiff.
	MinSpeedup  float64 `json:"min_speedup"`
	MaxP99Ratio float64 `json:"max_p99_ratio"`
	Alpha       float64 `json:"alpha"`
	// Pass and Failures are Gate's verdict.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// GateAdmit compares the two modes and applies the thresholds: batched
// throughput must beat serial by minSpeedup with Welch p below alpha, and
// batched p99 latency must stay within maxP99Ratio of serial's.
func GateAdmit(serial, batched AdmitModeReport, minSpeedup, maxP99Ratio, alpha float64) AdmitReport {
	r := AdmitReport{
		Serial: serial, Batched: batched,
		MinSpeedup: minSpeedup, MaxP99Ratio: maxP99Ratio, Alpha: alpha,
	}
	var sS, sB stats.Sample
	sS.AddAll(serial.ThroughputSamples...)
	sB.AddAll(batched.ThroughputSamples...)
	if m := sS.Mean(); m > 0 {
		r.Speedup = sB.Mean() / m
	}
	if p := serial.LatencyMs.P99; p > 0 {
		r.P99Ratio = batched.LatencyMs.P99 / p
	}
	r.WelchP = stats.WelchT(&sB, &sS).P

	if minSpeedup > 0 && r.Speedup < minSpeedup {
		r.Failures = append(r.Failures,
			fmt.Sprintf("speedup %.2fx below floor %.2fx", r.Speedup, minSpeedup))
	}
	if alpha > 0 {
		if math.IsNaN(r.WelchP) || r.WelchP >= alpha {
			r.Failures = append(r.Failures,
				fmt.Sprintf("welch p %.4g not significant at alpha %.4g", r.WelchP, alpha))
		} else if sB.Mean() <= sS.Mean() {
			r.Failures = append(r.Failures, "batched mean throughput does not exceed serial")
		}
	}
	if maxP99Ratio > 0 && r.P99Ratio > maxP99Ratio {
		r.Failures = append(r.Failures,
			fmt.Sprintf("batched p99 %.2fx serial exceeds cap %.2fx", r.P99Ratio, maxP99Ratio))
	}
	r.Pass = len(r.Failures) == 0
	return r
}
