// Package loadgen generates synthetic competing CPU load on simulated
// hosts, following the process model the paper uses for its experiments
// (§4.2): jobs arrive at each node as a Poisson process, and job durations
// are drawn from a combination of exponential and Pareto distributions, per
// the measurements of Harchol-Balter and Downey. The Pareto component gives
// the heavy tail observed for CPU-bound processes; it is bounded above so a
// single sampled job cannot dwarf the simulation horizon.
package loadgen

import (
	"fmt"

	"nodeselect/internal/netsim"
	"nodeselect/internal/randx"
)

// Config parameterizes a load generator.
type Config struct {
	// ArrivalRate is the Poisson job arrival rate per node, in jobs per
	// second. Required.
	ArrivalRate float64

	// Duration samples a job's CPU demand in seconds (at reference
	// speed). When nil, DefaultDuration(targetMean) semantics apply with
	// a mean of 10 seconds.
	Duration randx.Sampler

	// Nodes lists the node IDs to load. Nil means every compute node.
	Nodes []int
}

// DefaultDuration returns the paper's §4.2 duration model with the given
// mean: an equal mixture of an exponential distribution and a bounded
// Pareto with shape 1.0 (the Harchol-Balter/Downey heavy tail), both scaled
// to the requested mean.
func DefaultDuration(mean float64) randx.Sampler {
	if mean <= 0 {
		panic(fmt.Sprintf("loadgen: duration mean %v must be positive", mean))
	}
	// A bounded Pareto with alpha 1 over [xmin, 1000*xmin] has mean
	// xmin * ln(1000)/(1 - 1/1000) ≈ 6.9146 * xmin.
	bp := randx.NewBoundedPareto(1.0, 1, 1000)
	xmin := mean / bp.Mean()
	return randx.NewMixture(
		[]randx.Sampler{
			randx.NewExponential(mean),
			randx.NewBoundedPareto(1.0, xmin, 1000*xmin),
		},
		[]float64{0.5, 0.5},
	)
}

// Generator drives Poisson job arrivals on a set of nodes.
type Generator struct {
	net     *netsim.Network
	cfg     Config
	process randx.PoissonProcess
	src     *randx.Source
	nodes   []int
	cancels []func()
	started int // jobs started so far
	running bool
}

// New builds a generator. Each node draws from an independent random
// substream derived from src, so adding or removing nodes does not perturb
// the others.
func New(net *netsim.Network, cfg Config, src *randx.Source) *Generator {
	if cfg.ArrivalRate <= 0 {
		panic(fmt.Sprintf("loadgen: arrival rate %v must be positive", cfg.ArrivalRate))
	}
	if cfg.Duration == nil {
		cfg.Duration = DefaultDuration(10)
	}
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = net.Graph().ComputeNodes()
	}
	g := &Generator{
		net:     net,
		cfg:     cfg,
		process: randx.NewPoissonProcess(cfg.ArrivalRate),
		nodes:   nodes,
	}
	g.src = src
	return g
}

// Start begins generating load. It is idempotent.
func (g *Generator) Start() {
	if g.running {
		return
	}
	g.running = true
	for _, node := range g.nodes {
		node := node
		stream := g.src.Split("loadgen:" + g.net.Graph().Node(node).Name)
		stopped := false
		var schedule func()
		schedule = func() {
			if stopped {
				return
			}
			delay := g.process.NextInterarrival(stream)
			ev := g.net.Engine().After(delay, "load-arrival", func() {
				if stopped {
					return
				}
				demand := g.cfg.Duration.Sample(stream)
				if demand <= 0 {
					demand = 1e-3
				}
				g.net.StartTask(node, demand, netsim.Background, nil)
				g.started++
				schedule()
			})
			g.cancels = append(g.cancels, func() {
				stopped = true
				g.net.Engine().Cancel(ev)
			})
		}
		schedule()
	}
}

// Stop halts the generator; jobs already running continue to completion.
func (g *Generator) Stop() {
	if !g.running {
		return
	}
	g.running = false
	for _, c := range g.cancels {
		c()
	}
	g.cancels = nil
}

// JobsStarted returns the number of jobs launched so far.
func (g *Generator) JobsStarted() int { return g.started }

// OfferedLoad returns the long-run average number of competing jobs per
// node this configuration generates (arrival rate times mean duration, by
// Little's law). It is the load-average level the generator drives each
// node towards, and a guide for choosing parameters.
func (g *Generator) OfferedLoad() float64 {
	return g.cfg.ArrivalRate * g.cfg.Duration.Mean()
}
