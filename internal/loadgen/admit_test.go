package loadgen

import (
	"net/http"
	"strings"
	"testing"
)

func modeReport(samples []float64, p99 float64) AdmitModeReport {
	var mean float64
	for _, s := range samples {
		mean += s
	}
	return AdmitModeReport{
		ThroughputSamples: samples,
		ThroughputRPS:     mean / float64(len(samples)),
		LatencyMs:         SLOLatency{P99: p99},
		Reps:              len(samples),
	}
}

func TestGateAdmitPass(t *testing.T) {
	serial := modeReport([]float64{100, 102, 98, 101, 99}, 50)
	batched := modeReport([]float64{400, 410, 390, 405, 395}, 60)
	r := GateAdmit(serial, batched, 3.0, 2.0, 0.005)
	if !r.Pass {
		t.Fatalf("clear 4x win failed the gate: %v", r.Failures)
	}
	if r.Speedup < 3.9 || r.Speedup > 4.1 {
		t.Fatalf("speedup %.2f, want ~4", r.Speedup)
	}
	if r.WelchP >= 0.005 {
		t.Fatalf("welch p %.4g, want significant", r.WelchP)
	}
	if r.P99Ratio != 60.0/50.0 {
		t.Fatalf("p99 ratio %.3f", r.P99Ratio)
	}
}

func TestGateAdmitFailures(t *testing.T) {
	serial := modeReport([]float64{100, 102, 98, 101, 99}, 50)

	// Below the speedup floor.
	slow := modeReport([]float64{200, 205, 195, 198, 202}, 50)
	if r := GateAdmit(serial, slow, 3.0, 2.0, 0.005); r.Pass || !hasFailure(r, "speedup") {
		t.Fatalf("2x accepted at a 3x floor: %+v", r)
	}

	// Statistically indistinguishable: huge variance swamps the mean gap.
	noisy := modeReport([]float64{50, 900, 100, 700, 60}, 50)
	if r := GateAdmit(serial, noisy, 3.0, 2.0, 0.005); r.Pass || !hasFailure(r, "welch") {
		t.Fatalf("noisy samples passed significance: %+v", r)
	}

	// Tail blowup: fast but p99 over the cap.
	spiky := modeReport([]float64{400, 410, 390, 405, 395}, 150)
	if r := GateAdmit(serial, spiky, 3.0, 2.0, 0.005); r.Pass || !hasFailure(r, "p99") {
		t.Fatalf("3x p99 blowup passed a 2x cap: %+v", r)
	}

	// Too few samples for the t-test at all.
	thin := modeReport([]float64{400}, 50)
	if r := GateAdmit(serial, thin, 3.0, 2.0, 0.005); r.Pass {
		t.Fatalf("single-sample mode passed: %+v", r)
	}
}

func hasFailure(r AdmitReport, substr string) bool {
	for _, f := range r.Failures {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestRunAdmitModeFreshHandlerPerRep(t *testing.T) {
	builds, tears := 0, 0
	cfg := AdmitConfig{
		NewHandler: func() (http.Handler, func(), error) {
			builds++
			return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.WriteHeader(http.StatusOK)
			}), func() { tears++ }, nil
		},
		Requests:    40,
		Warmup:      1,
		Concurrency: 4,
		Reps:        3,
	}
	rep, err := RunAdmitMode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if builds != 3 || tears != 3 {
		t.Fatalf("handler built %d / torn down %d times, want 3/3", builds, tears)
	}
	if len(rep.ThroughputSamples) != 3 || rep.ThroughputRPS <= 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.ErrorRate != 0 {
		t.Fatalf("error rate %v from an all-200 handler", rep.ErrorRate)
	}
}

func TestRunAdmitModeRequiresHandler(t *testing.T) {
	if _, err := RunAdmitMode(AdmitConfig{}); err == nil {
		t.Fatal("nil NewHandler accepted")
	}
}
