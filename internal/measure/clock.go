// Package measure holds the clock seam shared by every component that
// ages measurement data: the Remos collector's stale carry-forward, the
// gossip store's per-entry ages, and the membership failure detector all
// read the same Clock, so a test (or the convergence experiment) can drive
// them deterministically with a Manual clock instead of sleeping real
// time.
package measure

import (
	"sync"
	"time"
)

// Clock supplies the current wall time. Production code uses System();
// tests and deterministic experiments use a Manual clock advanced by hand.
type Clock interface {
	Now() time.Time
}

// systemClock reads the real wall clock.
type systemClock struct{}

func (systemClock) Now() time.Time { return time.Now() }

// System returns the real wall clock.
func System() Clock { return systemClock{} }

// Or returns c, or the system clock when c is nil — the idiom for
// config structs whose zero value should mean "real time".
func Or(c Clock) Clock {
	if c == nil {
		return System()
	}
	return c
}

// Manual is a hand-driven clock for deterministic tests: time moves only
// when Advance or Set is called. Safe for concurrent use.
type Manual struct {
	mu  sync.Mutex
	now time.Time
}

// NewManual returns a Manual clock starting at start.
func NewManual(start time.Time) *Manual {
	return &Manual{now: start}
}

// Now implements Clock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

// Advance moves the clock forward by d. Negative advances panic: time
// never runs backwards, and a test that needs it is a broken test.
func (m *Manual) Advance(d time.Duration) {
	if d < 0 {
		panic("measure: negative clock advance")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = m.now.Add(d)
}

// Set jumps the clock to t.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = t
}
