package measure

import (
	"testing"
	"time"
)

func TestSystemClockAdvances(t *testing.T) {
	c := System()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

func TestOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) must return the system clock")
	}
	m := NewManual(time.Unix(100, 0))
	if Or(m) != Clock(m) {
		t.Fatal("Or must pass a non-nil clock through")
	}
}

func TestManual(t *testing.T) {
	start := time.Unix(1000, 0)
	m := NewManual(start)
	if !m.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", m.Now(), start)
	}
	m.Advance(3 * time.Second)
	if got := m.Now(); !got.Equal(start.Add(3 * time.Second)) {
		t.Fatalf("after Advance, Now = %v", got)
	}
	m.Set(time.Unix(2000, 0))
	if got := m.Now(); !got.Equal(time.Unix(2000, 0)) {
		t.Fatalf("after Set, Now = %v", got)
	}
}

func TestManualNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Advance must panic")
		}
	}()
	NewManual(time.Unix(0, 0)).Advance(-time.Second)
}
