package trace

import (
	"bytes"
	"strings"
	"testing"

	"nodeselect/internal/netsim"
	"nodeselect/internal/sim"
	"nodeselect/internal/topology"
)

func smallNet() (*sim.Engine, *netsim.Network) {
	g := topology.NewGraph()
	g.AddComputeNode("a")
	g.AddComputeNode("b")
	g.Connect(0, 1, 100e6, topology.LinkOpts{})
	e := sim.NewEngine()
	return e, netsim.New(e, g, netsim.Config{})
}

func TestRecorderCapturesLifecycle(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)

	n.StartTask(0, 1, netsim.Application, nil)
	n.StartFlow(0, 1, 12.5e6, netsim.Background, nil)
	cancelled := n.StartFlow(0, 1, 1e9, netsim.Background, nil)
	e.After(0.1, "cancel", func() { cancelled.Cancel() })
	n.FailLink(0)
	n.RepairLink(0)
	e.Run()

	want := map[netsim.EventKind]int{
		netsim.TaskStart:  1,
		netsim.TaskEnd:    1,
		netsim.FlowStart:  2,
		netsim.FlowEnd:    1,
		netsim.FlowCancel: 1,
		netsim.LinkFail:   1,
		netsim.LinkRepair: 1,
	}
	for kind, count := range want {
		if got := rec.Count(kind); got != count {
			t.Errorf("%v count = %d, want %d", kind, got, count)
		}
	}
	if rec.Count(netsim.TaskCancel) != 0 {
		t.Error("unexpected task cancel")
	}

	// Events are time-ordered (arrival order equals simulation order).
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestTaskCancelEvent(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)
	task := n.StartTask(0, 100, netsim.Background, nil)
	e.After(1, "cancel", func() { task.Cancel() })
	e.Run()
	if rec.Count(netsim.TaskCancel) != 1 {
		t.Fatal("task cancel not recorded")
	}
}

func TestFilterAndLimit(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), OnlyKinds(netsim.FlowEnd), 2)
	n.SetObserver(rec.Observe)
	for i := 0; i < 5; i++ {
		n.StartFlow(0, 1, 1e5, netsim.Background, nil)
	}
	e.Run()
	if rec.Count(netsim.FlowStart) != 0 {
		t.Error("filter leaked flow starts")
	}
	if rec.Count(netsim.FlowEnd) != 5 {
		t.Errorf("flow end count = %d, want 5", rec.Count(netsim.FlowEnd))
	}
	if rec.Len() != 2 {
		t.Errorf("retained %d events, want 2 (limit)", rec.Len())
	}
	if rec.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", rec.Dropped())
	}
}

func TestOnlyClassFilter(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), OnlyClass(netsim.Application), 0)
	n.SetObserver(rec.Observe)
	n.StartTask(0, 0.1, netsim.Application, nil)
	n.StartTask(0, 0.1, netsim.Background, nil)
	n.FailLink(0) // link events pass through class filters
	e.Run()
	if rec.Count(netsim.TaskStart) != 1 {
		t.Errorf("application task starts = %d, want 1", rec.Count(netsim.TaskStart))
	}
	if rec.Count(netsim.LinkFail) != 1 {
		t.Error("link event filtered out")
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)
	n.StartTask(0, 1, netsim.Application, nil)
	n.StartFlow(0, 1, 12.5e6, netsim.Background, nil)
	n.FailLink(0)
	e.RunUntil(0.5)

	var text bytes.Buffer
	if err := rec.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, wantStr := range []string{"task-start", "flow-start", "link-fail", "a -> b", "link a -- b"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("text output missing %q:\n%s", wantStr, out)
		}
	}

	var csvBuf bytes.Buffer
	if err := rec.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != rec.Len()+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), rec.Len()+1)
	}
	if !strings.HasPrefix(lines[0], "time,kind,class") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestTextReportsDropped(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 1)
	n.SetObserver(rec.Observe)
	n.StartFlow(0, 1, 1e5, netsim.Background, nil)
	n.StartFlow(0, 1, 1e5, netsim.Background, nil)
	e.Run()
	var text bytes.Buffer
	if err := rec.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "dropped") {
		t.Error("dropped notice missing")
	}
}

func TestSummaryAndReset(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)
	if rec.Summary() != "no events" {
		t.Errorf("empty summary = %q", rec.Summary())
	}
	n.StartTask(0, 0.1, netsim.Background, nil)
	e.Run()
	s := rec.Summary()
	if !strings.Contains(s, "task-start=1") || !strings.Contains(s, "task-end=1") {
		t.Errorf("summary = %q", s)
	}
	rec.Reset()
	if rec.Len() != 0 || rec.Summary() != "no events" {
		t.Error("reset incomplete")
	}
}

func TestZeroValueRecorder(t *testing.T) {
	var rec Recorder
	rec.Observe(netsim.Event{Kind: netsim.TaskStart, Node: 0})
	if rec.Len() != 1 || rec.Count(netsim.TaskStart) != 1 {
		t.Fatal("zero-value recorder broken")
	}
	var buf bytes.Buffer
	if err := rec.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestNilObserverIsCheap(t *testing.T) {
	// SetObserver(nil) must disable emission without breaking anything.
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)
	n.StartTask(0, 0.1, netsim.Background, nil)
	n.SetObserver(nil)
	n.StartTask(0, 0.1, netsim.Background, nil)
	e.Run()
	if rec.Count(netsim.TaskStart) != 1 {
		t.Fatalf("observer removal failed: %d starts", rec.Count(netsim.TaskStart))
	}
}
