package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"nodeselect/internal/netsim"
)

// TestJSONRoundTrip renders a real simulated timeline to JSON and parses
// it back, expecting an exact event-for-event match.
func TestJSONRoundTrip(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 0)
	n.SetObserver(rec.Observe)

	n.StartTask(0, 1, netsim.Application, nil)
	n.StartFlow(0, 1, 12.5e6, netsim.Background, nil)
	n.FailLink(0)
	n.RepairLink(0)
	e.Run()
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 {
		t.Errorf("dropped = %d", dropped)
	}
	if !reflect.DeepEqual(events, rec.Events()) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", events, rec.Events())
	}
}

func TestJSONDroppedCount(t *testing.T) {
	e, n := smallNet()
	rec := NewRecorder(n.Graph(), nil, 2)
	n.SetObserver(rec.Observe)
	for i := 0; i < 3; i++ {
		n.StartTask(0, 0.1, netsim.Background, nil)
	}
	e.Run()

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Errorf("events = %d, want 2", len(events))
	}
	if dropped != rec.Dropped() || dropped == 0 {
		t.Errorf("dropped = %d, want %d (nonzero)", dropped, rec.Dropped())
	}
}

func TestReadJSONRejectsUnknownNames(t *testing.T) {
	if _, _, err := ReadJSON(strings.NewReader(
		`{"events":[{"kind":"teleport","class":"background"}]}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := ReadJSON(strings.NewReader(
		`{"events":[{"kind":"task-start","class":"mystery"}]}`)); err == nil {
		t.Error("unknown class accepted")
	}
	if _, _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("truncated document accepted")
	}
}
