// Package trace records simulator lifecycle events (netsim.Event) into an
// inspectable timeline: filtered capture, per-kind counts, and text or CSV
// rendering. It is the observability layer a long simulation run is
// debugged with — which application phase stalled, when competing load
// arrived, when a link failed.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"nodeselect/internal/netsim"
	"nodeselect/internal/topology"
)

// Recorder collects netsim events. Install it with
// net.SetObserver(rec.Observe). The zero value records everything without
// limit; use NewRecorder for filtering and bounding.
type Recorder struct {
	graph  *topology.Graph
	filter func(netsim.Event) bool
	limit  int

	events  []netsim.Event
	dropped int
	counts  map[netsim.EventKind]int
}

// NewRecorder builds a recorder for a topology (used to render node names;
// nil is allowed and falls back to numeric IDs). filter, when non-nil,
// keeps only matching events. limit, when positive, bounds the retained
// events; excess events are counted as dropped but still tallied.
func NewRecorder(g *topology.Graph, filter func(netsim.Event) bool, limit int) *Recorder {
	return &Recorder{graph: g, filter: filter, limit: limit, counts: map[netsim.EventKind]int{}}
}

// Observe implements netsim.Observer.
func (r *Recorder) Observe(ev netsim.Event) {
	if r.filter != nil && !r.filter(ev) {
		return
	}
	if r.counts == nil {
		r.counts = map[netsim.EventKind]int{}
	}
	r.counts[ev.Kind]++
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the retained events in arrival order (shared slice; do
// not modify).
func (r *Recorder) Events() []netsim.Event { return r.events }

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events exceeded the retention limit.
func (r *Recorder) Dropped() int { return r.dropped }

// Count returns how many events of the kind were observed (including any
// dropped beyond the retention limit).
func (r *Recorder) Count(kind netsim.EventKind) int { return r.counts[kind] }

// Reset clears the recorder.
func (r *Recorder) Reset() {
	r.events = nil
	r.dropped = 0
	r.counts = map[netsim.EventKind]int{}
}

// name renders a node ID.
func (r *Recorder) name(id int) string {
	if id < 0 {
		return "-"
	}
	if r.graph != nil && id < r.graph.NumNodes() {
		return r.graph.Node(id).Name
	}
	return strconv.Itoa(id)
}

// describe renders the event's subject.
func (r *Recorder) describe(ev netsim.Event) string {
	switch ev.Kind {
	case netsim.TaskStart, netsim.TaskEnd, netsim.TaskCancel:
		return fmt.Sprintf("%s demand=%.3gs on %s", ev.Class, ev.Demand, r.name(ev.Node))
	case netsim.FlowStart, netsim.FlowEnd, netsim.FlowCancel:
		return fmt.Sprintf("%s %.4gB %s -> %s", ev.Class, ev.Bytes, r.name(ev.Src), r.name(ev.Dst))
	case netsim.LinkFail, netsim.LinkRepair:
		if r.graph != nil && ev.Link >= 0 && ev.Link < r.graph.NumLinks() {
			l := r.graph.Link(ev.Link)
			return fmt.Sprintf("link %s -- %s", r.name(l.A), r.name(l.B))
		}
		return fmt.Sprintf("link %d", ev.Link)
	default:
		return ""
	}
}

// WriteText renders the timeline as an aligned text table.
func (r *Recorder) WriteText(w io.Writer) error {
	for _, ev := range r.events {
		if _, err := fmt.Fprintf(w, "%12.4f  %-12s %s\n", ev.Time, ev.Kind, r.describe(ev)); err != nil {
			return err
		}
	}
	if r.dropped > 0 {
		if _, err := fmt.Fprintf(w, "... %d further events dropped (limit %d)\n", r.dropped, r.limit); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the timeline as CSV with a header row.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "kind", "class", "node", "src", "dst", "link", "demand_s", "bytes"}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, ev := range r.events {
		rec := []string{
			f(ev.Time), ev.Kind.String(), ev.Class.String(),
			r.name(ev.Node), r.name(ev.Src), r.name(ev.Dst),
			strconv.Itoa(ev.Link), f(ev.Demand), f(ev.Bytes),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Summary returns a one-line per-kind count rendering, kinds in a fixed
// order.
func (r *Recorder) Summary() string {
	kinds := []netsim.EventKind{
		netsim.TaskStart, netsim.TaskEnd, netsim.TaskCancel,
		netsim.FlowStart, netsim.FlowEnd, netsim.FlowCancel,
		netsim.LinkFail, netsim.LinkRepair,
	}
	var parts []string
	for _, k := range kinds {
		if c := r.counts[k]; c > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, c))
		}
	}
	if len(parts) == 0 {
		return "no events"
	}
	return strings.Join(parts, " ")
}

// OnlyKinds returns a filter keeping the listed kinds.
func OnlyKinds(kinds ...netsim.EventKind) func(netsim.Event) bool {
	set := map[netsim.EventKind]bool{}
	for _, k := range kinds {
		set[k] = true
	}
	return func(ev netsim.Event) bool { return set[ev.Kind] }
}

// OnlyClass returns a filter keeping task/flow events of one class (link
// events pass through).
func OnlyClass(cls netsim.Class) func(netsim.Event) bool {
	return func(ev netsim.Event) bool {
		switch ev.Kind {
		case netsim.LinkFail, netsim.LinkRepair:
			return true
		default:
			return ev.Class == cls
		}
	}
}
