package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"nodeselect/internal/netsim"
)

// jsonEvent is the wire form of one event: kinds and classes by name,
// endpoints by numeric ID (names are a rendering concern; IDs round-trip
// losslessly whether or not a topology is attached).
type jsonEvent struct {
	Time   float64 `json:"time"`
	Kind   string  `json:"kind"`
	Class  string  `json:"class"`
	Node   int     `json:"node"`
	Src    int     `json:"src"`
	Dst    int     `json:"dst"`
	Link   int     `json:"link"`
	Demand float64 `json:"demand_s,omitempty"`
	Bytes  float64 `json:"bytes,omitempty"`
}

// jsonTimeline is the document WriteJSON produces and ReadJSON consumes.
type jsonTimeline struct {
	Events  []jsonEvent `json:"events"`
	Dropped int         `json:"dropped,omitempty"`
}

// kindNames maps wire names back to kinds; built from the String forms so
// the two stay in sync.
var kindNames = func() map[string]netsim.EventKind {
	out := map[string]netsim.EventKind{}
	for _, k := range []netsim.EventKind{
		netsim.TaskStart, netsim.TaskEnd, netsim.TaskCancel,
		netsim.FlowStart, netsim.FlowEnd, netsim.FlowCancel,
		netsim.LinkFail, netsim.LinkRepair,
	} {
		out[k.String()] = k
	}
	return out
}()

// WriteJSON renders the timeline as a JSON document:
//
//	{"events": [{"time":..., "kind":"flow-start", ...}, ...], "dropped": 0}
//
// ReadJSON parses it back.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := jsonTimeline{Events: make([]jsonEvent, len(r.events)), Dropped: r.dropped}
	for i, ev := range r.events {
		doc.Events[i] = jsonEvent{
			Time: ev.Time, Kind: ev.Kind.String(), Class: ev.Class.String(),
			Node: ev.Node, Src: ev.Src, Dst: ev.Dst, Link: ev.Link,
			Demand: ev.Demand, Bytes: ev.Bytes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a WriteJSON document back into events and the dropped
// count. Unknown kind or class names are an error.
func ReadJSON(rd io.Reader) ([]netsim.Event, int, error) {
	var doc jsonTimeline
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, 0, fmt.Errorf("trace: bad JSON timeline: %w", err)
	}
	events := make([]netsim.Event, len(doc.Events))
	for i, je := range doc.Events {
		kind, ok := kindNames[je.Kind]
		if !ok {
			return nil, 0, fmt.Errorf("trace: unknown event kind %q", je.Kind)
		}
		var cls netsim.Class
		switch je.Class {
		case "background":
			cls = netsim.Background
		case "application":
			cls = netsim.Application
		default:
			return nil, 0, fmt.Errorf("trace: unknown class %q", je.Class)
		}
		events[i] = netsim.Event{
			Time: je.Time, Kind: kind, Class: cls,
			Node: je.Node, Src: je.Src, Dst: je.Dst, Link: je.Link,
			Demand: je.Demand, Bytes: je.Bytes,
		}
	}
	return events, doc.Dropped, nil
}
