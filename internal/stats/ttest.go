package stats

import (
	"math"
)

// TTestResult is the outcome of a two-sample Welch's t-test.
type TTestResult struct {
	// T is the t-statistic.
	T float64
	// DF is the Welch-Satterthwaite effective degrees of freedom.
	DF float64
	// P is the two-tailed p-value.
	P float64
}

// WelchT compares the means of two samples without assuming equal
// variances — the appropriate test for random-vs-automatic execution
// times, whose variances differ wildly. It returns a NaN-filled result
// when either sample has fewer than two observations.
func WelchT(x, y *Sample) TTestResult {
	nan := TTestResult{T: math.NaN(), DF: math.NaN(), P: math.NaN()}
	if x.N() < 2 || y.N() < 2 {
		return nan
	}
	nx, ny := float64(x.N()), float64(y.N())
	vx, vy := x.Var(), y.Var()
	sx, sy := vx/nx, vy/ny
	se := math.Sqrt(sx + sy)
	if se == 0 {
		if x.Mean() == y.Mean() {
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}
		}
		return TTestResult{T: math.Inf(1), DF: nx + ny - 2, P: 0}
	}
	t := (x.Mean() - y.Mean()) / se
	df := (sx + sy) * (sx + sy) / (sx*sx/(nx-1) + sy*sy/(ny-1))
	return TTestResult{T: t, DF: df, P: studentTwoTail(t, df)}
}

// studentTwoTail returns the two-tailed p-value of Student's t
// distribution with df degrees of freedom: P(|T| >= |t|) =
// I_{df/(df+t^2)}(df/2, 1/2), the regularized incomplete beta function.
func studentTwoTail(t, df float64) float64 {
	if math.IsNaN(t) || math.IsNaN(df) || df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	return regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularized incomplete beta function I_x(a, b)
// by the continued-fraction expansion (Numerical Recipes betacf form with
// modified Lentz's method).
func regIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	// Prefactor x^a (1-x)^b / (a B(a,b)) computed in log space.
	lbeta := lgamma(a) + lgamma(b) - lgamma(a+b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	var cf float64
	if x < (a+1)/(a+b+2) {
		cf = betacf(a, b, x)
		return front * cf / a
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	cf = betacf(b, a, 1-x)
	return 1 - front*cf/b
}

// betacf evaluates the continued fraction for the incomplete beta function
// by modified Lentz's method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// lgamma wraps math.Lgamma, discarding the sign (arguments here are
// always positive).
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}
