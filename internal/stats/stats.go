// Package stats provides the summary statistics the experiment harness
// uses: means, standard deviations, normal-approximation confidence
// intervals, and percentiles over replicated measurements. The paper's
// Table 1 reports means over many executions; this package standardizes
// that reduction.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	values []float64
}

// Add appends an observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// AddAll appends many observations.
func (s *Sample) AddAll(vs ...float64) { s.values = append(s.values, vs...) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.values...) }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Var returns the unbiased sample variance, or NaN with fewer than two
// observations.
func (s *Sample) Var() float64 {
	if len(s.values) < 2 {
		return math.NaN()
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(s.values)-1)
}

// Std returns the sample standard deviation.
func (s *Sample) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.values) < 2 {
		return math.NaN()
	}
	return s.Std() / math.Sqrt(float64(len(s.values)))
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval on the mean.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns NaN when empty.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 || p < 0 || p > 100 {
		return math.NaN()
	}
	sorted := s.Values()
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// String renders "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	if len(s.values) == 0 {
		return "n=0"
	}
	if len(s.values) == 1 {
		return fmt.Sprintf("%.4g (n=1)", s.Mean())
	}
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}

// PercentChange returns 100*(to-from)/from, the form Table 1 reports
// improvements in. It returns NaN when from is zero.
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return math.NaN()
	}
	return 100 * (to - from) / from
}
