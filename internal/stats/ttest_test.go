package stats

import (
	"math"
	"testing"

	"nodeselect/internal/randx"
)

func TestStudentTwoTailKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	cases := []struct {
		t, df, want float64
	}{
		{2.228, 10, 0.05}, // t_{0.975, 10}
		{1.812, 10, 0.10},
		{2.086, 20, 0.05},
		{1.96, 1e6, 0.05}, // converges to the normal
		{0, 10, 1.0},
	}
	for _, c := range cases {
		got := studentTwoTail(c.t, c.df)
		if math.Abs(got-c.want) > 0.002 {
			t.Errorf("studentTwoTail(%v, %v) = %v, want ~%v", c.t, c.df, got, c.want)
		}
	}
}

func TestRegIncBetaEdges(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Fatal("edges wrong")
	}
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-10 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	x := 0.3
	want := x * x * (3 - 2*x)
	if got := regIncBeta(2, 2, x); math.Abs(got-want) > 1e-10 {
		t.Errorf("I_0.3(2,2) = %v, want %v", got, want)
	}
}

func TestWelchTIdenticalSamples(t *testing.T) {
	var x, y Sample
	x.AddAll(1, 2, 3, 4, 5)
	y.AddAll(1, 2, 3, 4, 5)
	res := WelchT(&x, &y)
	if res.T != 0 || math.Abs(res.P-1) > 1e-12 {
		t.Fatalf("identical samples: %+v", res)
	}
}

func TestWelchTClearDifference(t *testing.T) {
	var x, y Sample
	x.AddAll(100, 101, 99, 100, 100, 101, 99, 100)
	y.AddAll(50, 51, 49, 50, 50, 51, 49, 50)
	res := WelchT(&x, &y)
	if res.P > 1e-6 {
		t.Fatalf("clearly different samples not significant: %+v", res)
	}
	if res.T < 10 {
		t.Fatalf("t-statistic %v too small", res.T)
	}
}

func TestWelchTSameDistribution(t *testing.T) {
	// Samples from the same distribution should usually not be
	// significant; check the p-value is roughly uniform by averaging.
	src := randx.New(42)
	e := randx.NewExponential(10)
	significant := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		var x, y Sample
		for i := 0; i < 20; i++ {
			x.Add(e.Sample(src))
			y.Add(e.Sample(src))
		}
		if WelchT(&x, &y).P < 0.05 {
			significant++
		}
	}
	// Expected false-positive rate 5%; allow generous slack.
	if significant > trials/5 {
		t.Fatalf("%d/%d same-distribution trials significant", significant, trials)
	}
}

func TestWelchTSmallSamples(t *testing.T) {
	var x, y Sample
	x.Add(1)
	y.AddAll(1, 2)
	if res := WelchT(&x, &y); !math.IsNaN(res.P) {
		t.Fatalf("n=1 sample should give NaN, got %+v", res)
	}
}

func TestWelchTZeroVariance(t *testing.T) {
	var x, y Sample
	x.AddAll(5, 5, 5)
	y.AddAll(5, 5, 5)
	if res := WelchT(&x, &y); res.P != 1 {
		t.Fatalf("equal constants: %+v", res)
	}
	var z Sample
	z.AddAll(7, 7, 7)
	if res := WelchT(&x, &z); res.P != 0 {
		t.Fatalf("different constants: %+v", res)
	}
}
