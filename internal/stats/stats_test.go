package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sample statistics should be NaN")
	}
	if !math.IsNaN(s.Percentile(50)) {
		t.Error("empty percentile should be NaN")
	}
	if s.String() != "n=0" {
		t.Errorf("String = %q", s.String())
	}
}

func TestBasicStatistics(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if math.Abs(s.Median()-4.5) > 1e-12 {
		t.Errorf("Median = %v, want 4.5", s.Median())
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 {
		t.Error("mean of one")
	}
	if !math.IsNaN(s.Var()) || !math.IsNaN(s.CI95()) {
		t.Error("variance of one observation should be NaN")
	}
	if s.Percentile(50) != 3 {
		t.Error("percentile of one")
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String = %q", s.String())
	}
}

func TestCI95Shrinks(t *testing.T) {
	var small, large Sample
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if !(large.CI95() < small.CI95()) {
		t.Fatalf("CI95 did not shrink with n: %v vs %v", small.CI95(), large.CI95())
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30, 40)
	if got := s.Percentile(0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := s.Percentile(100); got != 40 {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(50); math.Abs(got-25) > 1e-12 {
		t.Errorf("P50 = %v, want 25", got)
	}
	if !math.IsNaN(s.Percentile(-1)) || !math.IsNaN(s.Percentile(101)) {
		t.Error("out-of-range percentile should be NaN")
	}
}

func TestValuesCopy(t *testing.T) {
	var s Sample
	s.AddAll(1, 2)
	v := s.Values()
	v[0] = 99
	if s.Mean() != 1.5 {
		t.Fatal("Values leaked internal storage")
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(48, 142.6); math.Abs(got-197.08333) > 1e-3 {
		t.Errorf("PercentChange = %v", got)
	}
	if got := PercentChange(100, 80); got != -20 {
		t.Errorf("decrease = %v, want -20", got)
	}
	if !math.IsNaN(PercentChange(0, 5)) {
		t.Error("zero base should be NaN")
	}
}

// Property: mean lies within [min, max] and percentiles are monotone.
func TestQuickInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Bound magnitudes to avoid float overflow in variance.
			if v > 1e12 || v < -1e12 {
				continue
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		last := math.Inf(-1)
		for _, p := range []float64{0, 25, 50, 75, 100} {
			v := s.Percentile(p)
			if v < last-1e-9 {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
