package lease

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"nodeselect/internal/topology"
)

// fixedPlace is a PlaceFunc that ignores the residual view and returns a
// predetermined node set — handy for steering handovers in tests.
func fixedPlace(nodes ...int) PlaceFunc {
	return func(context.Context, *topology.Snapshot, float64) ([]int, error) {
		return append([]int(nil), nodes...), nil
	}
}

// Renewing a lease whose term has already passed — but which the TTL
// sweeper has not reclaimed yet — must reject with the typed expired
// error, not resurrect the reservation (regression for the issue-5
// satellite: drive the injected clock past expiry, renew before any sweep).
func TestRenewExpiredLeaseRejects(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 4, Options{Now: clock.Now})

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.8}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute) // past expiry; no sweep has run

	_, err = l.Renew(context.Background(), info.ID, time.Minute)
	if !errors.Is(err, ErrExpired) {
		t.Fatalf("renew after expiry: err = %v, want ErrExpired", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("expired lease misreported as never existing: %v", err)
	}
	// The reservation must not have been resurrected: the capacity is free
	// again, so a conflicting admission on the same nodes succeeds.
	if _, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.8}, time.Minute, fixedPlace(1, 2)); err != nil {
		t.Fatalf("capacity not reclaimed after rejected renew: %v", err)
	}
	if st := l.Stats(); st.Expired != 1 || st.Renewed != 0 {
		t.Fatalf("stats = %+v, want Expired=1 Renewed=0", st)
	}
}

func TestMigrateHandover(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})

	var ops []string
	l.SetOnEvent(func(op string, ls *Lease) { ops = append(ops, op) })

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.5, BW: 20e6}, 5*time.Minute, fixedPlace(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	v0 := l.Version()

	moved, err := l.Migrate(context.Background(), snap, info.ID, fixedPlace(4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if moved.ID != info.ID {
		t.Fatalf("migrate changed the lease ID: %q -> %q", info.ID, moved.ID)
	}
	if !moved.ExpiresAt.Equal(info.ExpiresAt) {
		t.Fatalf("migrate changed expiry: %v -> %v", info.ExpiresAt, moved.ExpiresAt)
	}
	want := []string{"n-4", "n-5", "n-6"}
	if len(moved.Nodes) != 3 || moved.Nodes[0] != want[0] || moved.Nodes[1] != want[1] || moved.Nodes[2] != want[2] {
		t.Fatalf("nodes after migrate = %v, want %v", moved.Nodes, want)
	}
	if l.Version() <= v0 {
		t.Fatal("migrate did not bump the ledger version")
	}
	if st := l.Stats(); st.Migrated != 1 {
		t.Fatalf("stats = %+v, want Migrated=1", st)
	}
	found := false
	for _, op := range ops {
		if op == "migrate" {
			found = true
		}
	}
	if !found {
		t.Fatalf("observer ops = %v, want a migrate event", ops)
	}

	// Every debit moved: the old nodes and their access links are fully
	// credited, the new ones carry exactly the lease's demand.
	nodeCPU, linkBW := l.Committed()
	for id := 1; id <= 3; id++ {
		if nodeCPU[id] != 0 {
			t.Fatalf("old node %d still holds %.2f cpu", id, nodeCPU[id])
		}
	}
	for id := 4; id <= 6; id++ {
		if math.Abs(nodeCPU[id]-0.5) > 1e-12 {
			t.Fatalf("new node %d holds %.2f cpu, want 0.5", id, nodeCPU[id])
		}
	}
	var total float64
	for _, bw := range linkBW {
		total += bw
	}
	// m=3 on a star: 3 access links x 2 flows x 20e6.
	if math.Abs(total-120e6) > 1 {
		t.Fatalf("total link debit %v, want 120e6 on the new links only", total)
	}
}

// The new set must fit *alongside* the old reservation; a shared node
// without headroom for both is the binding bottleneck and the lease keeps
// its current placement.
func TestMigrateRejectsWhenNewSetCannotFitAlongside(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 4, Options{Now: clock.Now})

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.6}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	v0 := l.Version()

	_, err = l.Migrate(context.Background(), snap, info.ID, fixedPlace(2, 3))
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("migrate onto an overlapping node: err = %v, want AdmissionError", err)
	}
	if adm.Kind != "node" || adm.Bottleneck != "n-2" {
		t.Fatalf("bottleneck = %s %q, want node n-2", adm.Kind, adm.Bottleneck)
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("admission error does not unwrap to ErrRejected: %v", err)
	}
	// Rejection leaves the ledger untouched.
	if l.Version() != v0 {
		t.Fatal("rejected migrate bumped the ledger version")
	}
	cur, ok := l.Get(info.ID)
	if !ok || len(cur.Nodes) != 2 || cur.Nodes[0] != "n-1" || cur.Nodes[1] != "n-2" {
		t.Fatalf("lease after rejected migrate = %+v", cur)
	}
	if st := l.Stats(); st.Rejected != 1 || st.Migrated != 0 {
		t.Fatalf("stats = %+v, want Rejected=1 Migrated=0", st)
	}
}

func TestMigrateSameNodesIsNoOp(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 4, Options{Now: clock.Now})

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.4, BW: 10e6}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	v0 := l.Version()

	same, err := l.Migrate(context.Background(), snap, info.ID, fixedPlace(2, 1)) // unsorted on purpose
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Nodes) != 2 || same.Nodes[0] != "n-1" || same.Nodes[1] != "n-2" {
		t.Fatalf("no-op migrate returned nodes %v", same.Nodes)
	}
	if l.Version() != v0 {
		t.Fatal("no-op migrate bumped the ledger version")
	}
	if st := l.Stats(); st.Migrated != 0 {
		t.Fatalf("stats = %+v, want Migrated=0 for a no-op", st)
	}
}

func TestMigrateErrors(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 4, Options{Now: clock.Now})

	if _, err := l.Migrate(context.Background(), snap, "lease-99", fixedPlace(1)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("migrate of unknown lease: err = %v, want ErrNotFound", err)
	}

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.3}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if _, err := l.Migrate(context.Background(), snap, info.ID, fixedPlace(3)); !errors.Is(err, ErrExpired) {
		t.Fatalf("migrate of expired lease: err = %v, want ErrExpired", err)
	}

	info2, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.3}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Migrate(context.Background(), snap, info2.ID, fixedPlace(3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("migrate on a closed ledger: err = %v, want ErrClosed", err)
	}
}

func TestResidualExcluding(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})

	a, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.5, BW: 30e6}, time.Minute, fixedPlace(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.3}, time.Minute, fixedPlace(2, 3))
	if err != nil {
		t.Fatal(err)
	}

	// Excluding A leaves only B's debits: node 2 keeps B's 0.3 CPU, node 1
	// and A's links are back at full capacity.
	resid, err := l.ResidualExcluding(snap, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := resid.CPU(1); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("node 1 residual cpu %v, want 1.0 with A excluded", got)
	}
	if got := resid.CPU(2); math.Abs(got-0.7) > 1e-9 {
		t.Fatalf("node 2 residual cpu %v, want 0.7 (B's debit only)", got)
	}
	for lid, bw := range resid.AvailBW {
		if math.Abs(bw-100e6) > 1 {
			t.Fatalf("link %d residual %v, want full capacity with A excluded", lid, bw)
		}
	}

	if _, err := l.ResidualExcluding(snap, "lease-99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("excluding unknown lease: err = %v, want ErrNotFound", err)
	}

	// Sole tenant: excluding the only lease yields the raw snapshot.
	if err := l.Release(context.Background(), b.ID); err != nil {
		t.Fatal(err)
	}
	resid, err = l.ResidualExcluding(snap, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resid != snap {
		t.Fatal("sole-tenant exclusion should return the raw snapshot")
	}
}

// The shape recorded at acquire time and the post-handover placement both
// survive a restart: replaying acquire + migrate lands on exactly the new
// node set, carrying the original request shape.
func TestWALPersistsShapeAndMigration(t *testing.T) {
	clock := newFakeClock()
	l, dir := newWALLedger(t, 6, clock)
	snap := newSnap(l)

	shape := &Shape{M: 3, Algo: "balanced", MinBW: 10e6, MinCPU: 0.4, Pin: []string{"n-1"}}
	info, err := l.AcquireShaped(context.Background(), snap, Demand{CPU: 0.4, BW: 10e6}, 10*time.Minute, shape, fixedPlace(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if info.Request == nil || info.Request.M != 3 || info.Request.Algo != "balanced" {
		t.Fatalf("acquire info shape = %+v", info.Request)
	}
	if _, err := l.Migrate(context.Background(), snap, info.ID, fixedPlace(4, 5, 6)); err != nil {
		t.Fatal(err)
	}

	l2 := reopen(t, l, dir, Options{Now: clock.Now})
	defer l2.Close()
	if st := l2.Stats(); st.Recovered != 1 {
		t.Fatalf("recovered stats = %+v, want Recovered=1", st)
	}
	got, ok := l2.Get(info.ID)
	if !ok {
		t.Fatalf("lease %s lost across restart", info.ID)
	}
	if len(got.Nodes) != 3 || got.Nodes[0] != "n-4" || got.Nodes[1] != "n-5" || got.Nodes[2] != "n-6" {
		t.Fatalf("recovered nodes = %v, want the post-migration set", got.Nodes)
	}
	if got.Request == nil || got.Request.M != 3 || got.Request.Algo != "balanced" ||
		got.Request.MinBW != 10e6 || len(got.Request.Pin) != 1 || got.Request.Pin[0] != "n-1" {
		t.Fatalf("recovered shape = %+v", got.Request)
	}
	// The recovered debits sit on the new nodes only.
	nodeCPU, _ := l2.Committed()
	for id := 1; id <= 3; id++ {
		if nodeCPU[id] != 0 {
			t.Fatalf("old node %d still debited %.2f after recovery", id, nodeCPU[id])
		}
	}
	for id := 4; id <= 6; id++ {
		if math.Abs(nodeCPU[id]-0.4) > 1e-12 {
			t.Fatalf("new node %d debited %.2f after recovery, want 0.4", id, nodeCPU[id])
		}
	}
}
