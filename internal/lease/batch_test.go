package lease

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// randomBatch builds a randomized request set: mixed demand sizes, node
// counts and keys, heavy enough that some items must be rejected.
func randomBatch(rng *rand.Rand, n int) []BatchItem {
	items := make([]BatchItem, n)
	for i := range items {
		cpu := 0.1 + 0.15*float64(rng.Intn(4))
		bw := float64(rng.Intn(3)) * 10e6
		m := 2 + rng.Intn(3)
		items[i] = BatchItem{
			Demand: Demand{CPU: cpu, BW: bw},
			TTL:    time.Minute,
			Place:  balancedPlace(m, cpu),
			Key:    fmt.Sprintf("req-%03d", rng.Intn(1000)),
			Seq:    uint64(i),
		}
	}
	return items
}

// TestBatchSerialEquivalence is the core correctness oracle: for
// randomized request sets, the batch's accept/reject outcomes, issued
// lease IDs and node sets, and the post-batch committed vectors must
// exactly match replaying the same requests one at a time, in the batch's
// priority order, on a fresh ledger.
func TestBatchSerialEquivalence(t *testing.T) {
	totalAccepted, totalRejected := 0, 0
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		clock := newFakeClock()
		g := testbed.Star(8, 100e6)
		snap := topology.NewSnapshot(g)
		for id := 0; id < g.NumNodes(); id++ {
			if g.Node(id).Kind == topology.Compute {
				snap.SetLoad(id, 2*rng.Float64())
			}
		}

		batched, err := New(g, Options{Now: clock.Now, CrossCheck: true})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := New(g, Options{Now: clock.Now, CrossCheck: true})
		if err != nil {
			t.Fatal(err)
		}

		items := randomBatch(rng, 12)
		results := batched.AcquireBatch(context.Background(), snap, items)

		// Replay one at a time in the batch's priority order.
		serialRes := make([]BatchResult, len(items))
		for _, idx := range batchOrder(items) {
			it := items[idx]
			info, err := serial.AcquireShaped(context.Background(), snap, it.Demand, it.TTL, it.Shape, it.Place)
			serialRes[idx] = BatchResult{Info: info, Err: err}
		}

		for i := range items {
			b, s := results[i], serialRes[i]
			if (b.Err == nil) != (s.Err == nil) {
				t.Fatalf("trial %d item %d: batch err %v, serial err %v", trial, i, b.Err, s.Err)
			}
			if b.Err != nil {
				if b.Err.Error() != s.Err.Error() {
					t.Fatalf("trial %d item %d: batch rejection %q, serial %q", trial, i, b.Err, s.Err)
				}
				totalRejected++
				continue
			}
			totalAccepted++
			if b.Info.ID != s.Info.ID {
				t.Fatalf("trial %d item %d: batch issued %s, serial %s", trial, i, b.Info.ID, s.Info.ID)
			}
			if fmt.Sprint(b.Info.Nodes) != fmt.Sprint(s.Info.Nodes) {
				t.Fatalf("trial %d item %d: batch nodes %v, serial %v", trial, i, b.Info.Nodes, s.Info.Nodes)
			}
		}
		bCPU, bBW := batched.Committed()
		sCPU, sBW := serial.Committed()
		for id := range bCPU {
			if bCPU[id] != sCPU[id] {
				t.Fatalf("trial %d: node %d committed %v batched, %v serial", trial, id, bCPU[id], sCPU[id])
			}
		}
		for lid := range bBW {
			if bBW[lid] != sBW[lid] {
				t.Fatalf("trial %d: link %d committed %v batched, %v serial", trial, lid, bBW[lid], sBW[lid])
			}
		}
		if batched.Version() != serial.Version() {
			t.Fatalf("trial %d: version %d batched, %d serial", trial, batched.Version(), serial.Version())
		}
	}
	if totalAccepted == 0 || totalRejected == 0 {
		t.Fatalf("degenerate corpus: %d accepted, %d rejected (want both paths exercised)",
			totalAccepted, totalRejected)
	}
}

// TestBatchShuffledArrivalDeterminism: the same request set, submitted in
// shuffled arrival order (different Seq stamps, different slice order),
// must produce the identical key→lease-ID assignment — the commit order
// is a function of the set, not of arrival.
func TestBatchShuffledArrivalDeterminism(t *testing.T) {
	base := rand.New(rand.NewSource(7))
	clock := newFakeClock()
	g := testbed.Star(8, 100e6)
	snap := topology.NewSnapshot(g)

	items := randomBatch(base, 10)
	for i := range items {
		items[i].Key = fmt.Sprintf("uniq-%02d", i) // distinct keys
	}

	assign := func(perm []int) map[string]string {
		l, err := New(g, Options{Now: clock.Now})
		if err != nil {
			t.Fatal(err)
		}
		shuffled := make([]BatchItem, len(items))
		for newPos, oldPos := range perm {
			shuffled[newPos] = items[oldPos]
			shuffled[newPos].Seq = uint64(newPos) // fresh arrival stamps
		}
		res := l.AcquireBatch(context.Background(), snap, shuffled)
		out := make(map[string]string)
		for i, r := range res {
			if r.Err == nil {
				out[shuffled[i].Key] = r.Info.ID
			} else {
				out[shuffled[i].Key] = "rejected"
			}
		}
		return out
	}

	identity := make([]int, len(items))
	for i := range identity {
		identity[i] = i
	}
	want := assign(identity)
	for trial := 0; trial < 5; trial++ {
		perm := base.Perm(len(items))
		got := assign(perm)
		for k, id := range want {
			if got[k] != id {
				t.Fatalf("perm %v: key %s got %s, want %s", perm, k, got[k], id)
			}
		}
	}
}

// TestIncrementalResidualCrossCheck hammers the delta-maintained residual
// vectors with 1k random acquire/release/expire/migrate transitions, with
// CrossCheck asserting after every derivation that the patched view is
// bitwise identical to a full residualFrom recompute.
func TestIncrementalResidualCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	clock := newFakeClock()
	g := testbed.Star(10, 100e6)
	snap := topology.NewSnapshot(g)
	l, err := New(g, Options{Now: clock.Now, CrossCheck: true})
	if err != nil {
		t.Fatal(err)
	}

	var live []string
	ctx := context.Background()
	for op := 0; op < 1000; op++ {
		switch r := rng.Intn(10); {
		case r < 5 || len(live) == 0: // acquire
			cpu := 0.05 + 0.1*rng.Float64()
			ttl := time.Duration(1+rng.Intn(5)) * time.Minute
			info, err := l.Acquire(ctx, snap, Demand{CPU: cpu, BW: 5e6}, ttl, balancedPlace(2+rng.Intn(2), cpu))
			if err == nil {
				live = append(live, info.ID)
			}
		case r < 7: // release
			i := rng.Intn(len(live))
			l.Release(ctx, live[i])
			live = append(live[:i], live[i+1:]...)
		case r < 8: // migrate
			i := rng.Intn(len(live))
			l.Migrate(ctx, snap, live[i], balancedPlace(2, 0))
		default: // expiry pressure
			clock.Advance(time.Duration(rng.Intn(90)) * time.Second)
			l.Sweep()
			var kept []string
			for _, id := range live {
				if _, ok := l.Get(id); ok {
					kept = append(kept, id)
				}
			}
			live = kept
		}
		// Derive the residual (and cross-check it) every step.
		l.Residual(snap)
	}
	// Drain everything: with all debits returned the fast path must engage.
	for _, id := range live {
		l.Release(ctx, id)
	}
	if got := l.Residual(snap); got != snap {
		t.Fatal("drained ledger still produces a derived residual view")
	}
}

// TestResidualEmptyNoClone: the empty-ledger path — and the
// zero-demand-lease path, where leases exist but debit nothing — must
// return the input snapshot itself, not a clone.
func TestResidualEmptyNoClone(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})
	if got := l.Residual(snap); got != snap {
		t.Fatal("empty ledger cloned the snapshot")
	}

	// A zero-demand lease reserves nothing: still the identity view.
	info, err := l.Acquire(context.Background(), snap, Demand{}, time.Minute, balancedPlace(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Residual(snap); got != snap {
		t.Fatal("zero-demand lease forced a clone")
	}

	// Real debits derive a view; returning them restores the identity.
	info2, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.3}, time.Minute, balancedPlace(2, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Residual(snap); got == snap {
		t.Fatal("committed CPU debit did not derive a residual view")
	}
	if err := l.Release(context.Background(), info2.ID); err != nil {
		t.Fatal(err)
	}
	if got := l.Residual(snap); got != snap {
		t.Fatal("released ledger still cloning")
	}
	_ = info
}

func BenchmarkResidualEmpty(b *testing.B) {
	g := testbed.CMU()
	l, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := topology.NewSnapshot(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Residual(snap) != snap {
			b.Fatal("unexpected clone")
		}
	}
}

func BenchmarkResidualZeroDemandLeases(b *testing.B) {
	g := testbed.CMU()
	l, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := topology.NewSnapshot(g)
	for i := 0; i < 8; i++ {
		if _, err := l.Acquire(context.Background(), snap, Demand{}, time.Hour, balancedPlace(2, 0)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if l.Residual(snap) != snap {
			b.Fatal("unexpected clone")
		}
	}
}

func BenchmarkResidualActiveLeases(b *testing.B) {
	g := testbed.CMU()
	l, err := New(g, Options{})
	if err != nil {
		b.Fatal(err)
	}
	snap := topology.NewSnapshot(g)
	for i := 0; i < 8; i++ {
		if _, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.05, BW: 1e6}, time.Hour, balancedPlace(2, 0.05)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Residual(snap)
	}
}

// TestBatchWALCrashAllOrNothing: a batch is one WAL line, so recovery
// after a crash mid-append replays either the whole batch or none of it —
// never a prefix.
func TestBatchWALCrashAllOrNothing(t *testing.T) {
	clock := newFakeClock()
	g := testbed.Star(8, 100e6)
	snap := topology.NewSnapshot(g)

	setup := func(t *testing.T, dir string) (pre Info, batchIDs []string) {
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		l, err := New(g, Options{Now: clock.Now, WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		// One serial acquire before the batch: it must survive every
		// truncation of the batch line.
		pre, err = l.Acquire(context.Background(), snap, Demand{CPU: 0.1}, time.Hour, balancedPlace(2, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		items := []BatchItem{
			{Demand: Demand{CPU: 0.2}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "a"},
			{Demand: Demand{CPU: 0.2}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "b"},
			{Demand: Demand{CPU: 0.2}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "c"},
		}
		for _, r := range l.AcquireBatch(context.Background(), snap, items) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			batchIDs = append(batchIDs, r.Info.ID)
		}
		// Simulate a crash: no Close (Close would compact), just drop the
		// ledger and reopen the directory.
		w.close()
		return pre, batchIDs
	}

	t.Run("intact", func(t *testing.T) {
		dir := t.TempDir()
		pre, batchIDs := setup(t, dir)
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		l, err := New(g, Options{Now: clock.Now, WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := l.Get(pre.ID); !ok {
			t.Fatalf("pre-batch lease %s lost", pre.ID)
		}
		for _, id := range batchIDs {
			if _, ok := l.Get(id); !ok {
				t.Fatalf("batch lease %s lost on intact replay", id)
			}
		}
	})

	t.Run("torn", func(t *testing.T) {
		dir := t.TempDir()
		pre, batchIDs := setup(t, dir)
		logPath := filepath.Join(dir, "ledger.wal.jsonl")
		data, err := os.ReadFile(logPath)
		if err != nil {
			t.Fatal(err)
		}
		// Cut into the middle of the batch line (the last line): the torn
		// suffix must take the whole batch with it.
		if err := os.WriteFile(logPath, data[:len(data)-10], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		w.Logf = func(string, ...any) {} // expected torn-tail warning
		l, err := New(g, Options{Now: clock.Now, WAL: w})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := l.Get(pre.ID); !ok {
			t.Fatalf("pre-batch lease %s lost to an unrelated torn line", pre.ID)
		}
		for _, id := range batchIDs {
			if _, ok := l.Get(id); ok {
				t.Fatalf("torn batch partially replayed: %s survived", id)
			}
		}
		if nodeCPU, _ := l.Committed(); len(batchIDs) > 0 {
			total := 0.0
			for _, c := range nodeCPU {
				total += c
			}
			if total > 0.1*2+1e-9 { // only the pre-batch lease's debits
				t.Fatalf("torn batch left debits behind: %v", nodeCPU)
			}
		}
	})
}

// TestBatchWALFailureRollsBack: a WAL append error fails every accepted
// item and leaves the ledger untouched.
func TestBatchWALFailureRollsBack(t *testing.T) {
	clock := newFakeClock()
	g := testbed.Star(8, 100e6)
	snap := topology.NewSnapshot(g)
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(g, Options{Now: clock.Now, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	w.close() // every append now fails

	items := []BatchItem{
		{Demand: Demand{CPU: 0.2}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "a"},
		{Demand: Demand{CPU: 0.2}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "b"},
	}
	for i, r := range l.AcquireBatch(context.Background(), snap, items) {
		if r.Err == nil {
			t.Fatalf("item %d admitted without durability", i)
		}
	}
	if l.Len() != 0 {
		t.Fatalf("%d leases installed after failed batch append", l.Len())
	}
	nodeCPU, linkBW := l.Committed()
	for id, c := range nodeCPU {
		if c != 0 {
			t.Fatalf("node %d keeps debit %v after rollback", id, c)
		}
	}
	for lid, bw := range linkBW {
		if bw != 0 {
			t.Fatalf("link %d keeps debit %v after rollback", lid, bw)
		}
	}
	if got := l.Residual(snap); got != snap {
		t.Fatal("rolled-back batch left the residual fast path disengaged")
	}
}

// FuzzBatchWALRecord fuzzes batch-record decode and replay: arbitrary log
// bytes (seeded with a real batch line, whole and truncated) must never
// panic recovery, and whatever recovery accepts must round-trip — writing
// the recovered active set back out and reloading it reproduces the same
// set (encode/decode/replay stability).
func FuzzBatchWALRecord(f *testing.F) {
	clock := newFakeClock()
	g := testbed.Star(6, 100e6)
	snap := topology.NewSnapshot(g)

	// Seed with a genuine batch line from the real append path.
	dir := f.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		f.Fatal(err)
	}
	l, err := New(g, Options{Now: clock.Now, WAL: w})
	if err != nil {
		f.Fatal(err)
	}
	res := l.AcquireBatch(context.Background(), snap, []BatchItem{
		{Demand: Demand{CPU: 0.2, BW: 10e6}, TTL: time.Hour, Place: balancedPlace(2, 0.2), Key: "a"},
		{Demand: Demand{CPU: 0.1}, TTL: time.Hour, Place: balancedPlace(3, 0.1), Key: "b"},
	})
	for _, r := range res {
		if r.Err != nil {
			f.Fatal(r.Err)
		}
	}
	seed, err := os.ReadFile(filepath.Join(dir, "ledger.wal.jsonl"))
	if err != nil {
		f.Fatal(err)
	}
	w.close()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte(`{"op":"batch","batch":[{"op":"acquire","id":"lease-0","nodes":["n-1","n-2"],"cpu":0.5,"expiry_unix_ms":9999999999999}]}` + "\n"))
	f.Add([]byte(`{"op":"batch"}` + "\n" + `{"op":"batch","batch":[{"op":"release"`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ledger.wal.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := OpenWAL(dir)
		if err != nil {
			t.Fatal(err)
		}
		w.Logf = func(string, ...any) {}
		l, err := New(g, Options{Now: clock.Now, WAL: w})
		if err != nil {
			// I/O errors only; decode garbage must degrade, not error.
			if strings.Contains(err.Error(), "wal recovery") {
				t.Fatalf("recovery rejected instead of degrading: %v", err)
			}
			return
		}
		first := l.Active()
		w.close()

		// Replay stability: re-encode whatever recovery accepted as one
		// synthetic batch record, replay that, and require the same active
		// set back — encode/decode/replay is a fixed point.
		if len(first) == 0 {
			return
		}
		nested := make([]Record, 0, len(first))
		for _, info := range first {
			nested = append(nested, Record{
				Op: OpAcquire, ID: info.ID, Nodes: info.Nodes,
				CPU: info.CPU, BW: info.BW,
				CreatedUnixMS: info.CreatedAt.UnixMilli(),
				ExpiryUnixMS:  info.ExpiresAt.UnixMilli(),
			})
		}
		line, err := json.Marshal(Record{Op: OpBatch, Batch: nested})
		if err != nil {
			t.Fatal(err)
		}
		dir2 := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir2, "ledger.wal.jsonl"), append(line, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(dir2)
		if err != nil {
			t.Fatal(err)
		}
		w2.Logf = func(string, ...any) {}
		l2, err := New(g, Options{Now: clock.Now, WAL: w2})
		if err != nil {
			t.Fatalf("round-trip replay failed: %v", err)
		}
		second := l2.Active()
		if len(second) != len(first) {
			t.Fatalf("round-trip replay recovered %d leases, want %d", len(second), len(first))
		}
		byID := make(map[string][]string, len(first))
		for _, info := range first {
			byID[info.ID] = info.Nodes
		}
		for _, info := range second {
			if fmt.Sprint(byID[info.ID]) != fmt.Sprint(info.Nodes) {
				t.Fatalf("round-trip changed %s nodes: %v vs %v", info.ID, byID[info.ID], info.Nodes)
			}
		}
		w2.close()
	})
}
