package lease

import (
	"context"
	"fmt"
	"sort"
	"time"

	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// Epoch-batch admission: AcquireBatch admits a whole window of concurrent
// select+admit requests in one critical section and commits them as ONE
// WAL record (one fsync; one replication round on a replicated ledger).
// The batch is solved strictly serially against the ledger's residual
// view — each item's placement sees every earlier item's debits — in a
// deterministic priority order, so the outcome is exactly what replaying
// the same requests one at a time in that order would produce. That
// serial-equivalence is the correctness contract (property-tested in
// batch_test.go); batching buys throughput only by amortizing the
// per-transition durability cost, never by relaxing admission.

// BatchItem is one admission request inside a batch.
type BatchItem struct {
	// Ctx carries the item's request trace; nil means context.Background.
	// Placement spans and the nested WAL record's RequestID come from it.
	Ctx context.Context
	// Demand, TTL, Shape and Place mean exactly what they mean on
	// AcquireShaped.
	Demand Demand
	TTL    time.Duration
	Shape  *Shape
	Place  PlaceFunc
	// Key is the deterministic tiebreak between items of equal demand —
	// canonically the client request ID. Ordering by Key before arrival
	// sequence is what makes the commit order a pure function of the
	// request set: shuffling arrival within a window cannot reorder items
	// with distinct keys.
	Key string
	// Seq is the arrival sequence within the window, the final tiebreak
	// for items whose demand and key both collide.
	Seq uint64
}

// BatchResult is the per-item outcome, in the same order the items were
// given (not priority order).
type BatchResult struct {
	Info Info
	Err  error
}

func (it *BatchItem) ctx() context.Context {
	if it.Ctx != nil {
		return it.Ctx
	}
	return context.Background()
}

// batchLess is the deterministic admission priority: larger demands first
// (CPU, then bandwidth — the hardest items get first pick of capacity,
// which also maximizes packing for the leftovers), then request Key, then
// arrival sequence. Key precedes Seq so that identical request sets
// arriving in shuffled order still commit identically.
func batchLess(a, b *BatchItem) bool {
	if a.Demand.CPU != b.Demand.CPU {
		return a.Demand.CPU > b.Demand.CPU
	}
	if a.Demand.BW != b.Demand.BW {
		return a.Demand.BW > b.Demand.BW
	}
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Seq < b.Seq
}

// batchOrder returns item indices in admission priority order.
func batchOrder(items []BatchItem) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return batchLess(&items[order[i]], &items[order[j]])
	})
	return order
}

// AcquireBatch admits every item of the batch in one critical section:
// expired leases are swept once, then each item runs the same
// place-then-admission-check sequence as Acquire — in priority order,
// against the residual view that already includes every earlier item's
// debits — and the accepted set commits as a single OpBatch WAL record.
// Rejected items carry their AdmissionError (or placer error) in their
// BatchResult; a WAL append failure fails the whole accepted set and
// rolls its debits back, leaving the ledger untouched (all-or-nothing,
// matching the one-line-one-fsync crash story).
//
// On a replicated ledger the batch is one proposal: every accepted item
// becomes a pending lease, the batch record goes through one quorum
// round, and Apply finalizes all of them in log order.
func (l *Ledger) AcquireBatch(ctx context.Context, snap *topology.Snapshot, items []BatchItem) []BatchResult {
	ctx, span := reqtrace.StartSpan(ctx, "lease.acquire_batch")
	span.SetAttr("items", fmt.Sprint(len(items)))
	defer span.End()

	res := make([]BatchResult, len(items))
	if snap == nil || snap.Graph != l.g {
		err := fmt.Errorf("lease: snapshot does not belong to the ledger's graph")
		for i := range res {
			res[i].Err = err
		}
		span.Fail(err)
		return res
	}
	// Malformed demands drop out before ordering, exactly as Acquire
	// rejects them before taking the lock.
	solvable := make([]bool, len(items))
	for i := range items {
		if err := items[i].Demand.Validate(); err != nil {
			res[i].Err = err
			continue
		}
		solvable[i] = true
	}
	order := batchOrder(items)

	if l.replicator() != nil {
		l.acquireBatchReplicated(ctx, snap, items, order, solvable, res)
		return res
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.opt.Now()
	l.sweepLocked(now)

	type accepted struct {
		idx int
		ls  *Lease
	}
	var acc []accepted
	var nested []Record
	startID := l.nextID
	for _, idx := range order {
		if !solvable[idx] {
			continue
		}
		it := &items[idx]
		nodes, debits, err := l.placeAdmitLocked(it.ctx(), snap, it.Demand, it.Place)
		if err != nil {
			res[idx].Err = err
			continue
		}
		ls := &Lease{
			ID:      fmt.Sprintf("lease-%d", l.nextID),
			Nodes:   append([]int(nil), nodes...),
			Demand:  it.Demand,
			Shape:   it.Shape.clone(),
			Created: now,
			Expiry:  now.Add(l.clampTTL(it.TTL)),
			linkBW:  debits,
		}
		sort.Ints(ls.Nodes)
		l.nextID++
		// Debit immediately so the next item's residual sees this one;
		// the lease itself stays out of the map until the batch is durable.
		for _, id := range ls.Nodes {
			l.addNodeCPU(id, it.Demand.CPU)
		}
		for lid, bw := range debits {
			l.addLinkBW(lid, bw)
		}
		acc = append(acc, accepted{idx, ls})
		rec := acquireRecord(l.g, ls)
		rec.RequestID = reqtrace.TraceID(it.ctx())
		nested = append(nested, rec)
	}
	if len(acc) == 0 {
		return res
	}
	if l.opt.WAL != nil {
		if err := l.opt.WAL.append(ctx, Record{Op: OpBatch, Batch: nested}); err != nil {
			// All-or-nothing: the batch never became durable, so no item
			// may be acked. Return every debit and the unissued IDs.
			for _, a := range acc {
				for _, id := range a.ls.Nodes {
					l.addNodeCPU(id, -a.ls.Demand.CPU)
				}
				for lid, bw := range a.ls.linkBW {
					l.addLinkBW(lid, -bw)
				}
				res[a.idx].Err = fmt.Errorf("lease: wal: %w", err)
			}
			l.nextID = startID
			return res
		}
	}
	for _, a := range acc {
		l.leases[a.ls.ID] = a.ls
		l.version++
		l.stats.Acquired++
		l.event("acquire", a.ls)
		res[a.idx].Info = l.infoLocked(a.ls)
	}
	l.stats.Batches++
	l.maybeCompactLocked()
	return res
}

// acquireBatchReplicated is the replicated batch path: phase 1 reserves a
// pending lease per accepted item (debits in place, invisible to reads),
// phase 2 proposes the whole batch as one record through one quorum
// round, phase 3 observes what Apply did — finalized pending leases on
// success, rollback of every still-pending reservation on failure.
func (l *Ledger) acquireBatchReplicated(ctx context.Context, snap *topology.Snapshot, items []BatchItem, order []int, solvable []bool, res []BatchResult) {
	l.mu.Lock()
	r := l.opt.Replicator
	now := l.opt.Now()

	type accepted struct {
		idx int
		id  string
	}
	var acc []accepted
	var nested []Record
	for _, idx := range order {
		if !solvable[idx] {
			continue
		}
		it := &items[idx]
		nodes, debits, err := l.placeAdmitLocked(it.ctx(), snap, it.Demand, it.Place)
		if err != nil {
			res[idx].Err = err
			continue
		}
		ls := &Lease{
			ID:      fmt.Sprintf("lease-%d", l.nextID),
			Nodes:   append([]int(nil), nodes...),
			Demand:  it.Demand,
			Shape:   it.Shape.clone(),
			Created: now,
			Expiry:  now.Add(l.clampTTL(it.TTL)),
			linkBW:  debits,
			pending: true,
		}
		sort.Ints(ls.Nodes)
		l.nextID++
		for _, id := range ls.Nodes {
			l.addNodeCPU(id, it.Demand.CPU)
		}
		for lid, bw := range debits {
			l.addLinkBW(lid, bw)
		}
		l.leases[ls.ID] = ls
		l.version++
		acc = append(acc, accepted{idx, ls.ID})
		rec := acquireRecord(l.g, ls)
		rec.RequestID = reqtrace.TraceID(it.ctx())
		nested = append(nested, rec)
	}
	if len(acc) == 0 {
		l.mu.Unlock()
		return
	}
	rec := Record{Op: OpBatch, Batch: nested, RequestID: reqtrace.TraceID(ctx)}
	l.mu.Unlock()

	err := r.Replicate(ctx, &rec)

	l.mu.Lock()
	defer l.mu.Unlock()
	for _, a := range acc {
		cur := l.leases[a.id]
		switch {
		case err != nil && cur != nil && cur.pending:
			// The commit did not (visibly) happen: return the reservation.
			// If the record commits after all, Apply re-installs from the
			// record — the IDs are burned either way.
			l.dropLocked(cur)
			res[a.idx].Err = err
		case cur != nil:
			// Apply finalized (possibly racing a proposal timeout): the
			// acked, replicated state wins over the error.
			res[a.idx].Info = l.infoLocked(cur)
		case err != nil:
			res[a.idx].Err = err
		default:
			res[a.idx].Err = fmt.Errorf("lease: %q vanished during commit", a.id)
		}
	}
	if err == nil {
		l.stats.Batches++
	}
}
