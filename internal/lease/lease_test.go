package lease

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/core"
	"nodeselect/internal/randx"
	"nodeselect/internal/testbed"
	"nodeselect/internal/topology"
)

// fakeClock is an adjustable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// balancedPlace adapts core's balanced algorithm to a PlaceFunc.
func balancedPlace(m int, cpuFloor float64) PlaceFunc {
	return func(_ context.Context, residual *topology.Snapshot, minBW float64) ([]int, error) {
		res, err := core.Balanced(residual, core.Request{M: m, MinBW: minBW, MinCPU: cpuFloor})
		if err != nil {
			return nil, err
		}
		return res.Nodes, nil
	}
}

func newStarLedger(t *testing.T, n int, opts Options) (*Ledger, *topology.Snapshot) {
	t.Helper()
	g := testbed.Star(n, 100e6)
	l, err := New(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l, topology.NewSnapshot(g)
}

func TestAcquireDebitsAndRelease(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})

	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.4, BW: 30e6}, time.Minute, balancedPlace(3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Nodes) != 3 {
		t.Fatalf("nodes = %v", info.Nodes)
	}
	if info.TTLSeconds != 60 {
		t.Fatalf("ttl = %v", info.TTLSeconds)
	}
	nodeCPU, linkBW := l.Committed()
	nCommitted, lCommitted := 0, 0
	for _, c := range nodeCPU {
		if c > 0 {
			if math.Abs(c-0.4) > 1e-12 {
				t.Fatalf("node cpu debit %v", c)
			}
			nCommitted++
		}
	}
	// Star, m=3: each selected node's access link carries flows to the
	// other two nodes -> debit 2 * 30e6.
	for _, bw := range linkBW {
		if bw > 0 {
			if math.Abs(bw-60e6) > 1 {
				t.Fatalf("link debit %v", bw)
			}
			lCommitted++
		}
	}
	if nCommitted != 3 || lCommitted != 3 {
		t.Fatalf("committed on %d nodes, %d links", nCommitted, lCommitted)
	}

	// Residual view reflects the debits.
	resid := l.Residual(snap)
	if resid == snap {
		t.Fatal("residual aliases the raw snapshot despite active leases")
	}
	seen := false
	for lid, bw := range resid.AvailBW {
		if linkBW[lid] > 0 {
			if math.Abs(bw-40e6) > 1 {
				t.Fatalf("residual avail %v", bw)
			}
			seen = true
		}
	}
	if !seen {
		t.Fatal("no residual link change")
	}
	for id, c := range nodeCPU {
		if c > 0 {
			if got := resid.CPU(id); math.Abs(got-0.6) > 1e-9 {
				t.Fatalf("residual cpu %v, want 0.6", got)
			}
		}
	}

	if err := l.Release(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 0 {
		t.Fatalf("leases after release: %d", l.Len())
	}
	if r := l.Residual(snap); r != snap {
		t.Fatal("empty ledger should return the snapshot unchanged")
	}
	if err := l.Release(context.Background(), info.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double release err = %v", err)
	}
}

// TestAdmissionRejectsAndNamesBottleneck fills the star and checks the
// rejection names the binding link with the right shortfall numbers.
func TestAdmissionRejectsAndNamesBottleneck(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})

	// Two 3-node apps exhaust all 6 access links (60e6 of 100e6 each).
	for i := 0; i < 2; i++ {
		if _, err := l.Acquire(context.Background(), snap, Demand{BW: 30e6}, time.Minute, balancedPlace(3, 0)); err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
	}
	_, err := l.Acquire(context.Background(), snap, Demand{BW: 30e6}, time.Minute, balancedPlace(3, 0))
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("err = %v, want ErrRejected", err)
	}
	var adm *AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("err %T does not carry AdmissionError", err)
	}
	if adm.Kind != "link" || adm.Bottleneck == "" {
		t.Fatalf("bottleneck = %+v", adm)
	}
	if math.Abs(adm.Need-60e6) > 1 || adm.Have > 40e6+1 {
		t.Fatalf("need %v have %v", adm.Need, adm.Have)
	}
	if l.Stats().Rejected != 1 {
		t.Fatalf("rejected stat = %d", l.Stats().Rejected)
	}
	// The ledger must be untouched by the rejection.
	if l.Len() != 2 {
		t.Fatalf("leases = %d", l.Len())
	}
}

func TestAdmissionRejectsOnCPU(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 3, Options{Now: clock.Now})
	if _, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.7}, time.Minute, balancedPlace(3, 0)); err != nil {
		t.Fatal(err)
	}
	// All three nodes hold only 0.3 uncommitted; the placer ignores the
	// CPU floor here, so the post-check must catch it.
	_, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.7}, time.Minute, balancedPlace(3, 0))
	var adm *AdmissionError
	if !errors.As(err, &adm) || adm.Kind != "node" {
		t.Fatalf("err = %v", err)
	}
	if math.Abs(adm.Need-0.7) > 1e-9 || math.Abs(adm.Have-0.3) > 1e-9 {
		t.Fatalf("need %v have %v", adm.Need, adm.Have)
	}
}

// TestFloorEscalation: with m=3 on a star, each access link needs 2 flows'
// worth; the first placement attempt under a single-flow floor picks
// partially committed links, and the escalated retry must route around
// them.
func TestFloorEscalation(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 12, Options{Now: clock.Now})
	for i := 0; i < 4; i++ {
		info, err := l.Acquire(context.Background(), snap, Demand{BW: 30e6}, time.Minute, balancedPlace(3, 0))
		if err != nil {
			t.Fatalf("app %d: %v", i, err)
		}
		if len(info.Nodes) != 3 {
			t.Fatalf("app %d nodes = %v", i, info.Nodes)
		}
	}
	// 12 nodes / 3 per app = full; the fifth is rejected.
	if _, err := l.Acquire(context.Background(), snap, Demand{BW: 30e6}, time.Minute, balancedPlace(3, 0)); !errors.Is(err, ErrRejected) {
		t.Fatalf("fifth app err = %v", err)
	}
	// No link ever oversubscribed.
	_, linkBW := l.Committed()
	for lid, bw := range linkBW {
		if cap := l.Graph().Link(lid).Capacity; bw > cap+1 {
			t.Fatalf("link %d committed %v > capacity %v", lid, bw, cap)
		}
	}
}

func TestRenewAndExpiry(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})
	info, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.5}, 10*time.Second, balancedPlace(2, 0))
	if err != nil {
		t.Fatal(err)
	}

	clock.Advance(8 * time.Second)
	renewed, err := l.Renew(context.Background(), info.ID, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := renewed.ExpiresAt.Sub(clock.Now()); got != 10*time.Second {
		t.Fatalf("renewed ttl = %v", got)
	}

	clock.Advance(9 * time.Second)
	if n := l.Sweep(); n != 0 {
		t.Fatalf("premature expiry of %d leases", n)
	}
	clock.Advance(2 * time.Second)
	if n := l.Sweep(); n != 1 {
		t.Fatalf("swept %d leases, want 1", n)
	}
	if _, err := l.Renew(context.Background(), info.ID, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("renew after expiry err = %v", err)
	}
	nodeCPU, _ := l.Committed()
	for id, c := range nodeCPU {
		if c != 0 {
			t.Fatalf("node %d still committed %v after expiry", id, c)
		}
	}
	if l.Stats().Expired != 1 {
		t.Fatalf("expired stat = %d", l.Stats().Expired)
	}
}

func TestTTLClamping(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 4, Options{
		Now: clock.Now, DefaultTTL: 7 * time.Second, MaxTTL: 20 * time.Second,
	})
	a, err := l.Acquire(context.Background(), snap, Demand{}, 0, balancedPlace(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if a.TTLSeconds != 7 {
		t.Fatalf("default ttl = %v", a.TTLSeconds)
	}
	b, err := l.Acquire(context.Background(), snap, Demand{}, time.Hour, balancedPlace(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if b.TTLSeconds != 20 {
		t.Fatalf("capped ttl = %v", b.TTLSeconds)
	}
}

func TestBadDemand(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 3, Options{Now: clock.Now})
	for _, d := range []Demand{{CPU: -0.1}, {CPU: 1.5}, {BW: -1}, {BW: math.Inf(1)}} {
		if _, err := l.Acquire(context.Background(), snap, d, 0, balancedPlace(1, 0)); !errors.Is(err, ErrBadDemand) {
			t.Fatalf("demand %+v err = %v", d, err)
		}
	}
}

func TestEvents(t *testing.T) {
	clock := newFakeClock()
	l, snap := newStarLedger(t, 6, Options{Now: clock.Now})
	var ops []string
	l.SetOnEvent(func(op string, _ *Lease) { ops = append(ops, op) })
	info, _ := l.Acquire(context.Background(), snap, Demand{}, time.Minute, balancedPlace(1, 0))
	l.Renew(context.Background(), info.ID, time.Minute)
	l.Release(context.Background(), info.ID)
	info2, _ := l.Acquire(context.Background(), snap, Demand{}, time.Second, balancedPlace(1, 0))
	_ = info2
	clock.Advance(2 * time.Second)
	l.Sweep()
	want := []string{"acquire", "renew", "release", "acquire", "expire"}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v", ops)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

// TestConcurrentAcquireNeverOversubscribes hammers one ledger from many
// goroutines (run under -race) and asserts the committed totals never
// exceed capacity on any node or link.
func TestConcurrentAcquireNeverOversubscribes(t *testing.T) {
	l, snap := newStarLedger(t, 16, Options{})
	const workers = 24
	demand := Demand{CPU: 0.6, BW: 35e6}
	var wg sync.WaitGroup
	var mu sync.Mutex
	admitted := 0
	rng := randx.New(7)
	sources := make([]*randx.Source, workers)
	for i := range sources {
		sources[i] = rng.SplitN(i)
	}
	for i := 0; i < workers; i++ {
		src := sources[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			place := func(_ context.Context, residual *topology.Snapshot, minBW float64) ([]int, error) {
				res, err := core.SelectOpt(core.AlgoBalanced, residual,
					core.Request{M: 2, MinBW: minBW, MinCPU: demand.CPU}, src, core.Options{})
				if err != nil {
					return nil, err
				}
				return res.Nodes, nil
			}
			if _, err := l.Acquire(context.Background(), snap, demand, time.Minute, place); err == nil {
				mu.Lock()
				admitted++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	nodeCPU, linkBW := l.Committed()
	for id, c := range nodeCPU {
		if c > 1+1e-9 {
			t.Fatalf("node %d committed cpu %v > 1", id, c)
		}
	}
	for lid, bw := range linkBW {
		if cap := l.Graph().Link(lid).Capacity; bw > cap+1 {
			t.Fatalf("link %d committed %v > capacity %v", lid, bw, cap)
		}
	}
	if admitted == 0 {
		t.Fatal("no application admitted")
	}
	if admitted > 16/2 {
		t.Fatalf("admitted %d apps, more than node capacity allows", admitted)
	}
	if st := l.Stats(); st.Acquired != int64(admitted) || st.Acquired+st.Rejected != workers {
		t.Fatalf("stats %+v vs admitted %d of %d", st, admitted, workers)
	}
}

func TestStartSweeper(t *testing.T) {
	l, snap := newStarLedger(t, 4, Options{})
	if _, err := l.Acquire(context.Background(), snap, Demand{}, 30*time.Millisecond, balancedPlace(1, 0)); err != nil {
		t.Fatal(err)
	}
	stop := l.StartSweeper(10 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for l.Len() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if l.Len() != 0 {
		t.Fatal("sweeper did not reclaim the expired lease")
	}
	stop()
	stop() // idempotent
}
