package lease

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"nodeselect/internal/topology"
)

// stubReplicator is a single-threaded stand-in for the quorum: proposals
// serialize through its mutex (that is the log order) and each committed
// record is applied to every attached ledger, leader first — exactly the
// contract replica.Node provides, minus the network.
type stubReplicator struct {
	mu      sync.Mutex
	targets []*Ledger
	log     []Record

	// delay sleeps before committing, simulating the quorum round-trip.
	delay time.Duration
	// fail, when set, rejects proposals without committing them.
	fail error
	// failAfterApply commits and applies, then reports an error anyway —
	// the "commit raced the timeout" case phase 3 must tolerate.
	failAfterApply bool
	// gate, when non-nil, is received from before each commit, letting a
	// test freeze a proposal mid-flight.
	gate chan struct{}
}

func (r *stubReplicator) Replicate(ctx context.Context, rec *Record) error {
	if d := r.delay; d > 0 {
		time.Sleep(d)
	}
	if r.gate != nil {
		<-r.gate
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fail != nil && !r.failAfterApply {
		return r.fail
	}
	rec.Index = uint64(len(r.log) + 1)
	r.log = append(r.log, *rec)
	for _, t := range r.targets {
		t.Apply(*rec)
	}
	if r.failAfterApply {
		return errors.New("commit acked after deadline")
	}
	return r.fail
}

// newReplicatedPair builds a leader and follower ledger over the same star
// graph, wired through a stubReplicator.
func newReplicatedPair(t *testing.T, n int, clock *fakeClock) (leader, follower *Ledger, r *stubReplicator) {
	t.Helper()
	g := starGraph(n)
	var err error
	leader, err = New(g, Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	follower, err = New(g, Options{Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	r = &stubReplicator{targets: []*Ledger{leader, follower}}
	leader.SetReplicator(r)
	// The follower is a replica too: its local sweeps must refuse to drop
	// (it can only propose, and proposals bounce with ErrNotLeader).
	follower.SetReplicator(&stubReplicator{fail: fmt.Errorf("%w (leader elsewhere)", ErrNotLeader)})
	return leader, follower, r
}

// assertConverged fails unless both ledgers hold identical active sets and
// committed capacity.
func assertConverged(t *testing.T, a, b *Ledger) {
	t.Helper()
	av, bv := a.Active(), b.Active()
	if len(av) != len(bv) {
		t.Fatalf("active sets diverged: %d vs %d leases", len(av), len(bv))
	}
	for i := range av {
		if av[i].ID != bv[i].ID || fmt.Sprint(av[i].Nodes) != fmt.Sprint(bv[i].Nodes) {
			t.Fatalf("lease %d diverged: %+v vs %+v", i, av[i], bv[i])
		}
	}
	acpu, abw := a.Committed()
	bcpu, bbw := b.Committed()
	for i := range acpu {
		if math.Abs(acpu[i]-bcpu[i]) > 1e-9 {
			t.Fatalf("node %d cpu diverged: %v vs %v", i, acpu[i], bcpu[i])
		}
	}
	for i := range abw {
		if math.Abs(abw[i]-bbw[i]) > 1e-3 {
			t.Fatalf("link %d bw diverged: %v vs %v", i, abw[i], bbw[i])
		}
	}
}

func TestReplicatedAcquireConverges(t *testing.T) {
	clock := newFakeClock()
	leader, follower, _ := newReplicatedPair(t, 6, clock)
	snap := topology.NewSnapshot(leader.Graph())

	info, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.3, BW: 10e6}, time.Minute, balancedPlace(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := follower.Get(info.ID); !ok {
		t.Fatal("committed acquire missing on follower")
	} else if fmt.Sprint(got.Nodes) != fmt.Sprint(info.Nodes) {
		t.Fatalf("follower placement %v != leader %v", got.Nodes, info.Nodes)
	}
	assertConverged(t, leader, follower)

	if _, err := leader.Renew(context.Background(), info.ID, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	fi, _ := follower.Get(info.ID)
	if want := clock.Now().Add(5 * time.Minute); !fi.ExpiresAt.Equal(want) {
		t.Fatalf("follower expiry %v, want %v", fi.ExpiresAt, want)
	}
	if err := leader.Release(context.Background(), info.ID); err != nil {
		t.Fatal(err)
	}
	if follower.Len() != 0 {
		t.Fatal("release did not reach follower")
	}
	assertConverged(t, leader, follower)
}

func TestReplicatedAcquireInvisibleUntilCommit(t *testing.T) {
	clock := newFakeClock()
	leader, _, r := newReplicatedPair(t, 4, clock)
	snap := topology.NewSnapshot(leader.Graph())
	r.gate = make(chan struct{})

	done := make(chan error, 1)
	go func() {
		_, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.5}, time.Minute, balancedPlace(2, 0))
		done <- err
	}()
	// Wait until the proposal is in flight (the pending debit is visible in
	// Committed but the lease must not be readable).
	deadline := time.After(2 * time.Second)
	for {
		cpu, _ := leader.Committed()
		var total float64
		for _, c := range cpu {
			total += c
		}
		if total > 0.9 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("pending debit never appeared")
		case <-time.After(time.Millisecond):
		}
	}
	if got := leader.Active(); len(got) != 0 {
		t.Fatalf("pending lease visible to readers: %+v", got)
	}
	close(r.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := leader.Active(); len(got) != 1 {
		t.Fatalf("committed lease not visible: %+v", got)
	}
}

func TestReplicatedAcquireRollsBackOnFailure(t *testing.T) {
	clock := newFakeClock()
	leader, follower, r := newReplicatedPair(t, 4, clock)
	snap := topology.NewSnapshot(leader.Graph())
	r.fail = fmt.Errorf("%w (leader is n-2)", ErrNotLeader)

	_, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.5}, time.Minute, balancedPlace(2, 0))
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
	if leader.Len() != 0 || follower.Len() != 0 {
		t.Fatal("failed proposal left a lease behind")
	}
	cpu, bw := leader.Committed()
	for i, c := range cpu {
		if c != 0 {
			t.Fatalf("node %d still debited %v after rollback", i, c)
		}
	}
	for i, b := range bw {
		if b != 0 {
			t.Fatalf("link %d still debited %v after rollback", i, b)
		}
	}
	// The burned ID must not be reissued even though the lease rolled back.
	r.fail = nil
	a, err := leader.Acquire(context.Background(), snap, Demand{}, time.Minute, balancedPlace(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if leaseSeq(a.ID) == 0 {
		t.Fatalf("rolled-back lease ID reused: %s", a.ID)
	}
}

func TestReplicatedAcquireLateCommitWins(t *testing.T) {
	clock := newFakeClock()
	leader, follower, r := newReplicatedPair(t, 4, clock)
	snap := topology.NewSnapshot(leader.Graph())
	r.failAfterApply = true

	// The record committed and applied everywhere, then the ack "timed out":
	// the replicated state is authoritative, so the caller still gets the
	// lease rather than an error contradicting every replica.
	info, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.2}, time.Minute, balancedPlace(2, 0))
	if err != nil {
		t.Fatalf("late commit must win: %v", err)
	}
	if _, ok := follower.Get(info.ID); !ok {
		t.Fatal("committed lease missing on follower")
	}
	assertConverged(t, leader, follower)
}

func TestReplicatedMigrateHandover(t *testing.T) {
	clock := newFakeClock()
	leader, follower, _ := newReplicatedPair(t, 6, clock)
	snap := topology.NewSnapshot(leader.Graph())

	info, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.4, BW: 5e6}, time.Minute, balancedPlace(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Force a different placement: exclude the current nodes.
	current := map[string]bool{}
	for _, n := range info.Nodes {
		current[n] = true
	}
	moved, err := leader.Migrate(context.Background(), snap, info.ID, func(_ context.Context, residual *topology.Snapshot, _ float64) ([]int, error) {
		g := residual.Graph
		var out []int
		for id := 0; id < g.NumNodes() && len(out) < 2; id++ {
			if g.Node(id).Kind == topology.Compute && !current[g.Node(id).Name] {
				out = append(out, id)
			}
		}
		return out, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range moved.Nodes {
		if current[n] {
			t.Fatalf("migrate kept old node %s", n)
		}
	}
	assertConverged(t, leader, follower)
	st := follower.Stats()
	if st.Migrated != 1 {
		t.Fatalf("follower stats %+v", st)
	}
}

func TestReplicatedSweepProposesExpiry(t *testing.T) {
	clock := newFakeClock()
	leader, follower, r := newReplicatedPair(t, 4, clock)
	snap := topology.NewSnapshot(leader.Graph())
	if _, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.2}, time.Minute, balancedPlace(1, 0)); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	// Reads never reclaim locally on a replicated ledger...
	if got := leader.Active(); len(got) != 1 {
		t.Fatalf("read-path sweep dropped a lease locally: %+v", got)
	}
	// ...the sweep proposes, and the commit reclaims everywhere.
	if n := leader.Sweep(); n != 1 {
		t.Fatalf("Sweep() = %d, want 1", n)
	}
	if leader.Len() != 0 || follower.Len() != 0 {
		t.Fatal("expiry did not reach both replicas")
	}
	last := r.log[len(r.log)-1]
	if last.Op != OpExpire || last.ExpiryUnixMS == 0 {
		t.Fatalf("expire record %+v lacks its expiry stamp", last)
	}
}

// TestApplyExpireVsRenewDeterminism drives the committed-log interleavings
// directly: whichever of renew/expire committed first must produce the
// same survivor set on every replica, decided by the expire record's
// stamp, never the local clock.
func TestApplyExpireVsRenewDeterminism(t *testing.T) {
	clock := newFakeClock()
	base := clock.Now()
	acq := Record{Op: OpAcquire, ID: "lease-0", Nodes: []string{"n-1"}, CPU: 0.1,
		CreatedUnixMS: base.UnixMilli(), ExpiryUnixMS: base.Add(time.Minute).UnixMilli()}
	renew := Record{Op: OpRenew, ID: "lease-0", ExpiryUnixMS: base.Add(10 * time.Minute).UnixMilli()}
	expire := Record{Op: OpExpire, ID: "lease-0", ExpiryUnixMS: base.Add(time.Minute).UnixMilli()}

	apply := func(recs ...Record) *Ledger {
		l, err := New(starGraph(4), Options{Now: clock.Now, Replicator: &stubReplicator{}})
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			l.Apply(rec)
		}
		return l
	}

	// Renew committed first: the expire's stamp is stale, the lease lives.
	if l := apply(acq, renew, expire); l.Len() != 1 {
		t.Fatal("stale expire dropped a renewed lease")
	}
	// Expire committed first: the lease dies; the late renew is a no-op.
	if l := apply(acq, expire, renew); l.Len() != 0 {
		t.Fatal("expire with a matching stamp failed to drop")
	}
	// An expire whose stamp matches the current term drops it.
	if l := apply(acq, expire); l.Len() != 0 {
		t.Fatal("plain expire failed")
	}
}

// TestSweepSkipsInFlightHandover is the TTL-vs-migration race regression
// (run under -race): a lease goes overdue *while* its
// reserve-new-alongside-old handover awaits the quorum. The sweeper must
// not expire it mid-handover — doing so would strand the reserved new
// debits and then resurrect the lease when the migrate record commits.
func TestSweepSkipsInFlightHandover(t *testing.T) {
	g := starGraph(6)
	leader, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	follower, err := New(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := &stubReplicator{targets: []*Ledger{leader, follower}}
	leader.SetReplicator(r)
	follower.SetReplicator(&stubReplicator{fail: fmt.Errorf("%w (leader elsewhere)", ErrNotLeader)})
	snap := topology.NewSnapshot(g)

	info, err := leader.Acquire(context.Background(), snap, Demand{CPU: 0.4, BW: 5e6}, 60*time.Millisecond, balancedPlace(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Quorum round-trips now take longer than the lease's remaining TTL, so
	// the handover is guaranteed to be in flight when the lease goes due.
	r.delay = 150 * time.Millisecond
	stop := leader.StartSweeper(5 * time.Millisecond)
	defer stop()

	current := map[string]bool{}
	for _, n := range info.Nodes {
		current[n] = true
	}
	moved, err := leader.Migrate(context.Background(), snap, info.ID, func(_ context.Context, residual *topology.Snapshot, _ float64) ([]int, error) {
		var out []int
		for id := 0; id < g.NumNodes() && len(out) < 2; id++ {
			if g.Node(id).Kind == topology.Compute && !current[g.Node(id).Name] {
				out = append(out, id)
			}
		}
		return out, nil
	})
	if err != nil {
		t.Fatalf("handover lost to the TTL sweep: %v", err)
	}
	if got, ok := leader.Get(info.ID); !ok {
		t.Fatal("lease expired despite in-flight handover")
	} else if fmt.Sprint(got.Nodes) != fmt.Sprint(moved.Nodes) {
		t.Fatalf("post-handover nodes %v, want %v", got.Nodes, moved.Nodes)
	}
	assertConverged(t, leader, follower)

	// Once the handover has committed the lease is fair game: the sweeper
	// reclaims it (it has been overdue all along) on both replicas, exactly
	// once.
	deadline := time.After(2 * time.Second)
	for leader.Len() != 0 || follower.Len() != 0 {
		select {
		case <-deadline:
			t.Fatalf("overdue lease never reclaimed post-handover (leader %d, follower %d)", leader.Len(), follower.Len())
		case <-time.After(5 * time.Millisecond):
		}
	}
	st := leader.Stats()
	if st.Expired != 1 || st.Migrated != 1 {
		t.Fatalf("stats %+v: want exactly one expiry after exactly one migration", st)
	}
	cpu, bw := leader.Committed()
	for i, c := range cpu {
		if c != 0 {
			t.Fatalf("node %d leaked %v cpu", i, c)
		}
	}
	for i, b := range bw {
		if b != 0 {
			t.Fatalf("link %d leaked %v bw", i, b)
		}
	}
}

func TestReplicatedLedgerRefusesWAL(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.close()
	if _, err := New(starGraph(2), Options{WAL: w, Replicator: &stubReplicator{}}); err == nil {
		t.Fatal("WAL + Replicator must be rejected")
	}
}
