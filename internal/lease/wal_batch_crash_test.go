package lease

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"nodeselect/internal/topology"
)

// captureWALState copies the WAL directory's files into a fresh dir — the
// exact bytes a crash at this instant would leave behind (appends are
// fsynced before the ledger acks, so the live file contents are the
// durable state).
func captureWALState(t *testing.T, dir string) string {
	t.Helper()
	out := t.TempDir()
	for _, name := range []string{"ledger.wal.jsonl", "ledger.snap.json"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(out, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// recoverWALState runs crash recovery over a captured state: open the WAL
// and build a fresh ledger, with no clean shutdown in between.
func recoverWALState(t *testing.T, dir string, g *topology.Graph, clock *fakeClock) (*Ledger, *WAL) {
	t.Helper()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, err := New(g, Options{Now: clock.Now, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	return l, w
}

func assertCommitted(t *testing.T, l *Ledger, wantCPU, wantBW []float64, label string) {
	t.Helper()
	gotCPU, gotBW := l.Committed()
	for i := range wantCPU {
		if math.Abs(gotCPU[i]-wantCPU[i]) > 1e-12 {
			t.Fatalf("%s: node %d cpu %v, want %v", label, i, gotCPU[i], wantCPU[i])
		}
	}
	for i := range wantBW {
		if math.Abs(gotBW[i]-wantBW[i]) > 1 {
			t.Fatalf("%s: link %d bw %v, want %v", label, i, gotBW[i], wantBW[i])
		}
	}
}

// TestWALCompactionBatchCrashMatrix pins the crash story around a WAL
// snapshot compaction racing an in-flight AcquireBatch. The dangerous
// window is compaction (snapshot rename + log truncate) immediately
// followed by the batch's single OpBatch append: a crash anywhere in that
// sequence must recover to the full pre-batch state or the full
// post-batch state — never a torn middle (a subset of the batch, or
// double-counted debits from replaying a live record over its own
// snapshot entry). Four captured disk states cover the window:
//
//	A: compaction finished, batch not yet appended    → pre-batch
//	B: compaction + intact batch line                 → post-batch
//	C: compaction + torn batch line (crash mid-fsync) → pre-batch, whole
//	D: snapshot renamed but log NOT truncated (crash
//	   inside compact between rename and truncate)    → pre-batch, debits
//	   counted once despite every record replaying over the snapshot
func TestWALCompactionBatchCrashMatrix(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	w, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := starGraph(8)
	l, err := New(g, Options{Now: clock.Now, WAL: w})
	if err != nil {
		t.Fatal(err)
	}
	snap := newSnap(l)

	// Pre-batch world: two live leases plus a burned ID from a released
	// one, so the compacted snapshot carries a NextSeq past the log's
	// visible history.
	a, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.3, BW: 20e6}, time.Hour, balancedPlace(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	churn, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.1}, time.Hour, balancedPlace(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Release(context.Background(), churn.ID); err != nil {
		t.Fatal(err)
	}
	b, err := l.Acquire(context.Background(), snap, Demand{CPU: 0.2}, time.Hour, balancedPlace(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	preIDs := map[string]bool{a.ID: true, b.ID: true}
	preCPU, preBW := l.Committed()
	preCPU = append([]float64(nil), preCPU...)
	preBW = append([]float64(nil), preBW...)

	// State D's log: the full pre-compaction history, as a crash between
	// the snapshot rename and the log truncate would leave it.
	stateD := captureWALState(t, dir)

	// Compact, exactly as maybeCompactLocked would.
	l.mu.Lock()
	active := l.activeRecordsLocked()
	l.mu.Unlock()
	if err := w.compact(active); err != nil {
		t.Fatal(err)
	}

	// State A: crash after compaction, before the batch commits.
	stateA := captureWALState(t, dir)
	// Finish state D: pair the post-compaction snapshot with the
	// untruncated log.
	snapDoc, err := os.ReadFile(filepath.Join(dir, "ledger.snap.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(stateD, "ledger.snap.json"), snapDoc, 0o644); err != nil {
		t.Fatal(err)
	}

	// The in-flight batch commits: one OpBatch line, one fsync.
	results := l.AcquireBatch(context.Background(), snap, []BatchItem{
		{Demand: Demand{CPU: 0.25, BW: 10e6}, TTL: 5 * time.Minute, Place: balancedPlace(2, 0), Key: "b1"},
		{Demand: Demand{CPU: 0.15}, TTL: 5 * time.Minute, Place: balancedPlace(2, 0), Key: "b2"},
		{Demand: Demand{CPU: 0.05}, TTL: 5 * time.Minute, Place: balancedPlace(1, 0), Key: "b3"},
	})
	batchIDs := map[string]bool{}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("batch item %d rejected: %v", i, r.Err)
		}
		batchIDs[r.Info.ID] = true
	}
	postCPU, postBW := l.Committed()

	// State B: crash after the batch's fsync completed.
	stateB := captureWALState(t, dir)
	// State C: crash mid-append — the batch line is torn. Chop into the
	// JSON so the line cannot parse; recovery must drop the batch whole.
	stateC := captureWALState(t, dir)
	logC := filepath.Join(stateC, "ledger.wal.jsonl")
	logData, err := os.ReadFile(logC)
	if err != nil {
		t.Fatal(err)
	}
	if len(logData) < 16 || !strings.Contains(string(logData), `"op":"batch"`) {
		t.Fatalf("state C log does not hold the batch line: %q", logData)
	}
	if err := os.WriteFile(logC, logData[:len(logData)-9], 0o644); err != nil {
		t.Fatal(err)
	}

	// A: full pre-batch state.
	lA, _ := recoverWALState(t, stateA, g, clock)
	if lA.Len() != len(preIDs) {
		t.Fatalf("state A recovered %d leases, want %d", lA.Len(), len(preIDs))
	}
	for id := range preIDs {
		if _, ok := lA.Get(id); !ok {
			t.Fatalf("state A lost pre-batch lease %s", id)
		}
	}
	assertCommitted(t, lA, preCPU, preBW, "state A")
	// The released lease's ID stays burned through the snapshot's NextSeq.
	if next, err := lA.Acquire(context.Background(), newSnap(lA), Demand{}, time.Hour, balancedPlace(1, 0)); err != nil {
		t.Fatal(err)
	} else if leaseSeq(next.ID) <= leaseSeq(churn.ID) {
		t.Fatalf("state A reissued ID %s at or below released %s", next.ID, churn.ID)
	}

	// B: full post-batch state.
	lB, _ := recoverWALState(t, stateB, g, clock)
	if lB.Len() != len(preIDs)+len(batchIDs) {
		t.Fatalf("state B recovered %d leases, want %d", lB.Len(), len(preIDs)+len(batchIDs))
	}
	for id := range batchIDs {
		info, ok := lB.Get(id)
		if !ok {
			t.Fatalf("state B lost batch lease %s", id)
		}
		if want := clock.Now().Add(5 * time.Minute); !info.ExpiresAt.Equal(want) {
			t.Fatalf("state B lease %s expiry %v, want %v", id, info.ExpiresAt, want)
		}
	}
	assertCommitted(t, lB, postCPU, postBW, "state B")

	// C: the torn batch drops whole — pre-batch state, never a subset.
	wC, err := OpenWAL(stateC)
	if err != nil {
		t.Fatal(err)
	}
	var warnings []string
	wC.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	lC, err := New(g, Options{Now: clock.Now, WAL: wC})
	if err != nil {
		t.Fatalf("torn batch line must not fail recovery: %v", err)
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "torn") {
		t.Fatalf("state C: want one torn-tail warning, got %q", warnings)
	}
	for id := range batchIDs {
		if _, ok := lC.Get(id); ok {
			t.Fatalf("state C recovered batch lease %s from a torn line", id)
		}
	}
	if lC.Len() != len(preIDs) {
		t.Fatalf("state C recovered %d leases, want the %d pre-batch ones", lC.Len(), len(preIDs))
	}
	assertCommitted(t, lC, preCPU, preBW, "state C")

	// D: every live record replays on top of its own snapshot entry; the
	// result must be the pre-batch state with debits counted exactly once.
	lD, _ := recoverWALState(t, stateD, g, clock)
	if lD.Len() != len(preIDs) {
		t.Fatalf("state D recovered %d leases, want %d", lD.Len(), len(preIDs))
	}
	if st := lD.Stats(); st.Recovered != int64(len(preIDs)) || st.RecoverySkipped != 0 {
		t.Fatalf("state D recovery stats %+v", st)
	}
	assertCommitted(t, lD, preCPU, preBW, "state D")
}
