package lease

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// The ledger's persistence is an append-only JSON-lines write-ahead log
// plus a periodic snapshot of the active leases. Every transition appends
// one record (synced to disk before the in-memory state changes, so an
// admitted lease is never lost); once enough records accumulate the log is
// compacted: the active set is written to a snapshot file and the log
// truncated. Recovery loads the snapshot and replays the log on top,
// tolerating a torn final line from a crash mid-append: the prefix is
// recovered, a warning is logged, and the file is truncated back to the
// last intact record so later appends never concatenate onto torn bytes.
//
// Records carry node *names* rather than IDs and no link debits: debits
// are recomputed from the current topology's routes at recovery, so a
// restart against a re-discovered (but equivalent) topology stays
// consistent, and one against a changed topology degrades by skipping
// leases whose nodes no longer exist.

// WAL record operations. The same record framing is the unit of log
// replication in internal/replica, so the constants are exported.
const (
	OpAcquire = "acquire"
	OpRenew   = "renew"
	OpRelease = "release"
	OpExpire  = "expire"
	// OpMigrate carries the full post-handover lease state (same ID, new
	// nodes): replay lands on exactly one of the two placements.
	OpMigrate = "migrate"
	// OpNoop is a replication barrier: a freshly elected leader appends one
	// to commit its predecessors' tail (a leader may only count replicas
	// for entries of its own term). It changes no ledger state.
	OpNoop = "noop"
	// OpBatch carries one epoch-batch admission: Batch holds one
	// acquire-shaped record per admitted lease, in the batch's priority
	// order. The whole batch is one log line and one fsync, so replay is
	// all-or-nothing — a crash mid-append tears the line and recovery
	// drops the entire batch, never a prefix of it.
	OpBatch = "batch"
)

// Record is one logged transition (and, for acquire/migrate, the full
// lease). It doubles as the replicated log entry streamed between selectd
// replicas: the leader stamps Term and Index before fsyncing, so every
// replica's log is comparable line-for-line.
type Record struct {
	Op    string   `json:"op"`
	ID    string   `json:"id,omitempty"`
	Nodes []string `json:"nodes,omitempty"`
	CPU   float64  `json:"cpu,omitempty"`
	BW    float64  `json:"bw,omitempty"`
	// Shape preserves the originating request across restarts so the
	// rebalance controller can keep re-placing recovered leases.
	Shape *Shape `json:"shape,omitempty"`
	// Timestamps are unix milliseconds so records are compact and
	// timezone-free. On an expire record, ExpiryUnixMS snapshots the
	// expiry the proposer saw: replicated replay drops the lease only if
	// its applied expiry is not newer, so a renew that committed first
	// deterministically wins on every replica.
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	ExpiryUnixMS  int64 `json:"expiry_unix_ms,omitempty"`
	// RequestID correlates the record with the request trace that caused
	// the transition — the same ID the service echoed in X-Request-ID.
	// Background transitions (expiry sweeps) log without one.
	RequestID string `json:"request_id,omitempty"`
	// Term and Index are the replication stamps: the leader's election term
	// and the record's position in the replicated log. Zero on a
	// single-node WAL.
	Term  uint64 `json:"term,omitempty"`
	Index uint64 `json:"index,omitempty"`
	// Batch holds the nested acquire records of an OpBatch commit, in
	// priority order. Empty for every other op.
	Batch []Record `json:"batch,omitempty"`
}

// Seq extracts the record's lease sequence number ("lease-N" → N), -1 when
// the ID is not ledger-issued. For a batch record it is the highest
// sequence among the nested acquires, so ID-counter advancement (leader
// failover, Apply) sees through the batching.
func (r Record) Seq() int64 {
	seq := leaseSeq(r.ID)
	for i := range r.Batch {
		if s := leaseSeq(r.Batch[i].ID); s > seq {
			seq = s
		}
	}
	return seq
}

// acquireRecord renders a lease as its WAL form.
func acquireRecord(g *topology.Graph, ls *Lease) Record {
	rec := Record{
		Op:            OpAcquire,
		ID:            ls.ID,
		Nodes:         make([]string, len(ls.Nodes)),
		CPU:           ls.Demand.CPU,
		BW:            ls.Demand.BW,
		Shape:         ls.Shape,
		CreatedUnixMS: ls.Created.UnixMilli(),
		ExpiryUnixMS:  ls.Expiry.UnixMilli(),
	}
	for i, id := range ls.Nodes {
		rec.Nodes[i] = g.Node(id).Name
	}
	return rec
}

// walSnapshot is the snapshot file's document.
type walSnapshot struct {
	// Active holds one acquire-shaped record per live lease.
	Active []Record `json:"active"`
	// NextSeq preserves the ID counter across compactions, so IDs are
	// never reused even when the log of issued leases is compacted away.
	NextSeq int64 `json:"next_seq"`
}

// ScanRecords reads JSON-lines records from f (which must be positioned at
// the start), returning the decoded prefix, the byte length of that intact
// prefix, and whether a torn (truncated or half-written) trailing line was
// found. A torn line ends the scan: everything before it is trustworthy
// because appends are synced in order. Shared by the ledger WAL and the
// replica log, whose on-disk framing is the same.
func ScanRecords(f *os.File) (recs []Record, goodLen int64, torn bool, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		// +1 for the newline the scanner stripped.
		lineLen := int64(len(line)) + 1
		if len(line) == 0 {
			goodLen += lineLen
			continue
		}
		var rec Record
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			return recs, goodLen, true, nil
		}
		recs = append(recs, rec)
		goodLen += lineLen
	}
	if serr := sc.Err(); serr != nil {
		// A line past the scanner's buffer ceiling is torn garbage, not a
		// reason to lose the intact prefix.
		if serr == bufio.ErrTooLong {
			return recs, goodLen, true, nil
		}
		return nil, 0, false, serr
	}
	return recs, goodLen, false, nil
}

// WAL persists ledger transitions under one directory.
type WAL struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	records int   // records in the current log segment
	maxSeq  int64 // highest lease sequence ever observed
	// CompactEvery is the record count that triggers snapshot+truncate
	// (default 256); settable before the ledger starts using the WAL.
	CompactEvery int
	// Logf receives recovery warnings (torn-tail truncation); defaults to
	// the standard logger. Settable before recovery runs.
	Logf func(format string, args ...any)
}

func (w *WAL) logPath() string  { return filepath.Join(w.dir, "ledger.wal.jsonl") }
func (w *WAL) snapPath() string { return filepath.Join(w.dir, "ledger.snap.json") }

// Dir returns the WAL's directory.
func (w *WAL) Dir() string { return w.dir }

// OpenWAL opens (creating as needed) the ledger persistence under dir.
// Hand the result to lease.New via Options.WAL; New performs recovery.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: wal dir: %w", err)
	}
	w := &WAL{dir: dir, CompactEvery: 256, Logf: log.Printf}
	f, err := os.OpenFile(w.logPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lease: wal log: %w", err)
	}
	w.f = f
	return w, nil
}

// load reads the snapshot and replays the log, returning the active
// acquire-shaped records and the highest lease sequence number observed
// anywhere (so the ledger resumes IDs without reuse).
func (w *WAL) load() (active []Record, maxSeq int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	maxSeq = -1
	live := make(map[string]*Record)
	var order []string

	note := func(id string) {
		if seq := leaseSeq(id); seq > maxSeq {
			maxSeq = seq
		}
	}

	if data, err := os.ReadFile(w.snapPath()); err == nil {
		var snap walSnapshot
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			return nil, 0, fmt.Errorf("snapshot %s: %w", w.snapPath(), jerr)
		}
		if snap.NextSeq-1 > maxSeq {
			maxSeq = snap.NextSeq - 1
		}
		for i := range snap.Active {
			rec := snap.Active[i]
			note(rec.ID)
			live[rec.ID] = &rec
			order = append(order, rec.ID)
		}
	} else if !os.IsNotExist(err) {
		return nil, 0, err
	}

	// Replay the log segment. A torn final line (crash mid-append) ends
	// the replay; everything before it is intact because appends are
	// synced in order. The torn bytes are truncated away so the next
	// append starts a fresh line instead of merging into garbage.
	if _, err := w.f.Seek(0, 0); err != nil {
		return nil, 0, err
	}
	recs, goodLen, torn, err := ScanRecords(w.f)
	if err != nil {
		return nil, 0, err
	}
	if torn {
		if w.Logf != nil {
			w.Logf("lease: wal %s: torn trailing record (crash mid-append); recovering %d intact records and truncating to %d bytes",
				w.logPath(), len(recs), goodLen)
		}
		if err := w.f.Truncate(goodLen); err != nil {
			return nil, 0, fmt.Errorf("truncating torn wal tail: %w", err)
		}
	}
	w.records = 0
	for i := range recs {
		rec := recs[i]
		w.records++
		note(rec.ID)
		switch rec.Op {
		case OpAcquire, OpMigrate:
			// A migrate record is a full replacement of the lease's state;
			// replaying it over the original acquire (or over a snapshot
			// entry) lands on the post-handover placement. The order slice
			// dedups on first occurrence, so re-appending the ID is safe.
			r := rec
			live[rec.ID] = &r
			order = append(order, rec.ID)
		case OpBatch:
			// Every nested acquire of an intact batch line replays; a torn
			// batch line never reaches here (ScanRecords drops it whole).
			for i := range rec.Batch {
				sub := rec.Batch[i]
				note(sub.ID)
				live[sub.ID] = &sub
				order = append(order, sub.ID)
			}
		case OpRenew:
			if cur, ok := live[rec.ID]; ok {
				cur.ExpiryUnixMS = rec.ExpiryUnixMS
			}
		case OpRelease, OpExpire:
			delete(live, rec.ID)
		}
	}
	if _, err := w.f.Seek(0, 2); err != nil {
		return nil, 0, err
	}

	seen := make(map[string]bool, len(live))
	for _, id := range order {
		if rec, ok := live[id]; ok && !seen[id] {
			seen[id] = true
			active = append(active, *rec)
		}
	}
	w.maxSeq = maxSeq
	return active, maxSeq, nil
}

// append writes one record and syncs it to disk. The ledger calls this
// *before* mutating in-memory state, so a crash never loses an
// acknowledged transition. The record is stamped with the context's
// trace ID, and the write+fsync is timed as a "wal.fsync" span — fsync is
// the one disk wait on the admission path, so it gets its own span.
func (w *WAL) append(ctx context.Context, rec Record) error {
	if rec.RequestID == "" {
		rec.RequestID = reqtrace.TraceID(ctx)
	}
	span := reqtrace.StartChild(ctx, "wal.fsync")
	defer span.End()
	err := w.appendRecord(rec)
	if err != nil {
		span.Fail(err)
	}
	return err
}

func (w *WAL) appendRecord(rec Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal closed")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records++
	if seq := leaseSeq(rec.ID); seq > w.maxSeq {
		w.maxSeq = seq
	}
	for i := range rec.Batch {
		if seq := leaseSeq(rec.Batch[i].ID); seq > w.maxSeq {
			w.maxSeq = seq
		}
	}
	return nil
}

// due reports whether the log segment has grown past the compaction
// threshold.
func (w *WAL) due() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f != nil && w.records >= w.CompactEvery
}

// compact writes the active set to the snapshot file (atomically, via a
// temp file and rename) and truncates the log segment.
func (w *WAL) compact(active []Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal closed")
	}
	nextSeq := w.maxSeq + 1
	for _, rec := range active {
		if seq := leaseSeq(rec.ID); seq >= nextSeq {
			nextSeq = seq + 1
		}
	}
	doc, err := json.Marshal(walSnapshot{Active: active, NextSeq: nextSeq})
	if err != nil {
		return err
	}
	tmp := w.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.snapPath()); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.records = 0
	w.maxSeq = nextSeq - 1
	return nil
}

// close releases the log file handle.
func (w *WAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
