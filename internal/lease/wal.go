package lease

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"nodeselect/internal/reqtrace"
	"nodeselect/internal/topology"
)

// The ledger's persistence is an append-only JSON-lines write-ahead log
// plus a periodic snapshot of the active leases. Every transition appends
// one record (synced to disk before the in-memory state changes, so an
// admitted lease is never lost); once enough records accumulate the log is
// compacted: the active set is written to a snapshot file and the log
// truncated. Recovery loads the snapshot and replays the log on top,
// tolerating a torn final line from a crash mid-append.
//
// Records carry node *names* rather than IDs and no link debits: debits
// are recomputed from the current topology's routes at recovery, so a
// restart against a re-discovered (but equivalent) topology stays
// consistent, and one against a changed topology degrades by skipping
// leases whose nodes no longer exist.

// WAL record operations.
const (
	opAcquire = "acquire"
	opRenew   = "renew"
	opRelease = "release"
	opExpire  = "expire"
	// opMigrate carries the full post-handover lease state (same ID, new
	// nodes): replay lands on exactly one of the two placements.
	opMigrate = "migrate"
)

// walRecord is one logged transition (and, for acquire/migrate, the full
// lease).
type walRecord struct {
	Op    string   `json:"op"`
	ID    string   `json:"id"`
	Nodes []string `json:"nodes,omitempty"`
	CPU   float64  `json:"cpu,omitempty"`
	BW    float64  `json:"bw,omitempty"`
	// Shape preserves the originating request across restarts so the
	// rebalance controller can keep re-placing recovered leases.
	Shape *Shape `json:"shape,omitempty"`
	// Timestamps are unix milliseconds so records are compact and
	// timezone-free.
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	ExpiryUnixMS  int64 `json:"expiry_unix_ms,omitempty"`
	// RequestID correlates the record with the request trace that caused
	// the transition — the same ID the service echoed in X-Request-ID.
	// Background transitions (expiry sweeps) log without one.
	RequestID string `json:"request_id,omitempty"`
}

// acquireRecord renders a lease as its WAL form.
func acquireRecord(g *topology.Graph, ls *Lease) walRecord {
	rec := walRecord{
		Op:            opAcquire,
		ID:            ls.ID,
		Nodes:         make([]string, len(ls.Nodes)),
		CPU:           ls.Demand.CPU,
		BW:            ls.Demand.BW,
		Shape:         ls.Shape,
		CreatedUnixMS: ls.Created.UnixMilli(),
		ExpiryUnixMS:  ls.Expiry.UnixMilli(),
	}
	for i, id := range ls.Nodes {
		rec.Nodes[i] = g.Node(id).Name
	}
	return rec
}

// walSnapshot is the snapshot file's document.
type walSnapshot struct {
	// Active holds one acquire-shaped record per live lease.
	Active []walRecord `json:"active"`
	// NextSeq preserves the ID counter across compactions, so IDs are
	// never reused even when the log of issued leases is compacted away.
	NextSeq int64 `json:"next_seq"`
}

// WAL persists ledger transitions under one directory.
type WAL struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	records int   // records in the current log segment
	maxSeq  int64 // highest lease sequence ever observed
	// CompactEvery is the record count that triggers snapshot+truncate
	// (default 256); settable before the ledger starts using the WAL.
	CompactEvery int
}

func (w *WAL) logPath() string  { return filepath.Join(w.dir, "ledger.wal.jsonl") }
func (w *WAL) snapPath() string { return filepath.Join(w.dir, "ledger.snap.json") }

// Dir returns the WAL's directory.
func (w *WAL) Dir() string { return w.dir }

// OpenWAL opens (creating as needed) the ledger persistence under dir.
// Hand the result to lease.New via Options.WAL; New performs recovery.
func OpenWAL(dir string) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lease: wal dir: %w", err)
	}
	w := &WAL{dir: dir, CompactEvery: 256}
	f, err := os.OpenFile(w.logPath(), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("lease: wal log: %w", err)
	}
	w.f = f
	return w, nil
}

// load reads the snapshot and replays the log, returning the active
// acquire-shaped records and the highest lease sequence number observed
// anywhere (so the ledger resumes IDs without reuse).
func (w *WAL) load() (active []walRecord, maxSeq int64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	maxSeq = -1
	live := make(map[string]*walRecord)
	var order []string

	note := func(id string) {
		if seq := leaseSeq(id); seq > maxSeq {
			maxSeq = seq
		}
	}

	if data, err := os.ReadFile(w.snapPath()); err == nil {
		var snap walSnapshot
		if jerr := json.Unmarshal(data, &snap); jerr != nil {
			return nil, 0, fmt.Errorf("snapshot %s: %w", w.snapPath(), jerr)
		}
		if snap.NextSeq-1 > maxSeq {
			maxSeq = snap.NextSeq - 1
		}
		for i := range snap.Active {
			rec := snap.Active[i]
			note(rec.ID)
			live[rec.ID] = &rec
			order = append(order, rec.ID)
		}
	} else if !os.IsNotExist(err) {
		return nil, 0, err
	}

	// Replay the log segment. A torn final line (crash mid-append) ends
	// the replay; everything before it is intact because appends are
	// synced in order.
	if _, err := w.f.Seek(0, 0); err != nil {
		return nil, 0, err
	}
	sc := bufio.NewScanner(w.f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	w.records = 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec walRecord
		if jerr := json.Unmarshal(line, &rec); jerr != nil {
			break
		}
		w.records++
		note(rec.ID)
		switch rec.Op {
		case opAcquire, opMigrate:
			// A migrate record is a full replacement of the lease's state;
			// replaying it over the original acquire (or over a snapshot
			// entry) lands on the post-handover placement. The order slice
			// dedups on first occurrence, so re-appending the ID is safe.
			r := rec
			live[rec.ID] = &r
			order = append(order, rec.ID)
		case opRenew:
			if cur, ok := live[rec.ID]; ok {
				cur.ExpiryUnixMS = rec.ExpiryUnixMS
			}
		case opRelease, opExpire:
			delete(live, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if _, err := w.f.Seek(0, 2); err != nil {
		return nil, 0, err
	}

	seen := make(map[string]bool, len(live))
	for _, id := range order {
		if rec, ok := live[id]; ok && !seen[id] {
			seen[id] = true
			active = append(active, *rec)
		}
	}
	w.maxSeq = maxSeq
	return active, maxSeq, nil
}

// append writes one record and syncs it to disk. The ledger calls this
// *before* mutating in-memory state, so a crash never loses an
// acknowledged transition. The record is stamped with the context's
// trace ID, and the write+fsync is timed as a "wal.fsync" span — fsync is
// the one disk wait on the admission path, so it gets its own span.
func (w *WAL) append(ctx context.Context, rec walRecord) error {
	if rec.RequestID == "" {
		rec.RequestID = reqtrace.TraceID(ctx)
	}
	span := reqtrace.StartChild(ctx, "wal.fsync")
	defer span.End()
	err := w.appendRecord(rec)
	if err != nil {
		span.Fail(err)
	}
	return err
}

func (w *WAL) appendRecord(rec walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal closed")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records++
	if seq := leaseSeq(rec.ID); seq > w.maxSeq {
		w.maxSeq = seq
	}
	return nil
}

// due reports whether the log segment has grown past the compaction
// threshold.
func (w *WAL) due() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f != nil && w.records >= w.CompactEvery
}

// compact writes the active set to the snapshot file (atomically, via a
// temp file and rename) and truncates the log segment.
func (w *WAL) compact(active []walRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("wal closed")
	}
	nextSeq := w.maxSeq + 1
	for _, rec := range active {
		if seq := leaseSeq(rec.ID); seq >= nextSeq {
			nextSeq = seq + 1
		}
	}
	doc, err := json.Marshal(walSnapshot{Active: active, NextSeq: nextSeq})
	if err != nil {
		return err
	}
	tmp := w.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, doc, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, w.snapPath()); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, 0); err != nil {
		return err
	}
	w.records = 0
	w.maxSeq = nextSeq - 1
	return nil
}

// close releases the log file handle.
func (w *WAL) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}
